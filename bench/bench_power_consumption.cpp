// §4.8 power-consumption table: component-level tag energy budget per LTE
// bandwidth, for both the crystal-oscillator prototype and the
// ring-oscillator IC option. Anchors from the paper: comparator 10 uW,
// RF switch 57 uW @20 MHz, FPGA 82 uW, LTC6990 588 uW @1.92 MHz,
// CSX-252F 4.5 mW @30.72 MHz, ring oscillators 4 uW @30 MHz.

#include <cstdio>

#include "bench_common.hpp"
#include "channel/pathloss.hpp"
#include "tag/power_model.hpp"

int main() {
  using namespace lscatter;
  benchutil::print_header("Tag power consumption", "paper §4.8");

  const tag::PowerModel model;
  for (const auto clock :
       {tag::ClockSource::kCrystal, tag::ClockSource::kRingOscillator}) {
    for (const auto bw : lte::kAllBandwidths) {
      const auto p = model.breakdown(bw, clock);
      std::printf("%s\n", tag::format_power_row(bw, clock, p).c_str());
    }
    std::printf("\n");
  }

  const auto p20 =
      model.breakdown(lte::Bandwidth::kMHz20, tag::ClockSource::kCrystal);
  const auto p14 =
      model.breakdown(lte::Bandwidth::kMHz1_4, tag::ClockSource::kCrystal);
  std::printf("paper anchors: 20 MHz crystal clock = 4.5 mW (ours: %.2f mW); "
              "1.4 MHz clock = 588 uW (ours: %.0f uW)\n",
              p20.clock_uw / 1e3, p14.clock_uw);
  std::printf("ring-oscillator total @20 MHz: %.1f uW — tens of microwatts, "
              "~1000x below an active radio\n",
              model.breakdown(lte::Bandwidth::kMHz20,
                              tag::ClockSource::kRingOscillator)
                  .total_uw());

  // Extension: can the tag be battery-free from harvested LTE energy?
  std::printf("\n--- battery-free budget (extension): harvest vs distance "
              "from a 10 dBm eNodeB ---\n");
  const tag::HarvestModel harvest;
  const auto p_ring = model.breakdown(lte::Bandwidth::kMHz20,
                                      tag::ClockSource::kRingOscillator);
  channel::PathLossModel pl;
  pl.exponent = 2.5;  // smart home
  std::printf("%10s %14s %14s %12s\n", "d (ft)", "incident dBm",
              "harvest (uW)", "duty cycle");
  for (const double d_ft : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double incident =
        10.0 + 2.0 -
        pl.median_db(d_ft * 0.3048, dsp::Hz{680e6}).value();  // 2 dBi antenna
    std::printf("%10.0f %14.1f %14.2f %12.2f\n", d_ft, incident,
                harvest.harvested_uw(incident),
                harvest.sustainable_duty_cycle(incident, p_ring));
  }
  std::printf("(with the ring-oscillator budget the tag runs battery-free "
              "within a few feet of a\n small cell; beyond that it duty-"
              "cycles — the deployment model §4.5.4 anticipates)\n");
  return 0;
}
