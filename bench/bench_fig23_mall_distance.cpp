// Figures 23/24: shopping mall, throughput and BER vs tag-to-UE distance
// for three systems: WiFi backscatter, symbol-level LTE backscatter, and
// LScatter. Paper shapes to reproduce:
//   - LScatter is ~2-3 orders of magnitude above WiFi backscatter at all
//     distances (Fig. 23, log scale).
//   - symbol-level LTE is *below* WiFi backscatter at short range (7 kbps
//     vs tens of kbps) but crosses above it around ~80 ft thanks to the
//     680 MHz carrier (Fig. 23).
//   - BERs are comparable within ~90 ft; beyond, the 2.4 GHz WiFi link
//     degrades first (Fig. 24); LScatter < 0.1% within 40 ft, < 1% within
//     150 ft.

#include <cstdio>

#include "baselines/symbol_level_lte.hpp"
#include "baselines/wifi_backscatter.hpp"
#include "bench_common.hpp"
#include "traffic/occupancy_model.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header(
      "Figures 23/24: mall, 3 systems vs distance",
      "paper §4.4.2/§4.4.3 (eNB/WiFi sender ~10 ft from tag, 10 dBm)");
  const std::uint64_t seed = 2323;
  const double kEnbTagFt = 10.0;
  const std::size_t drops = 5;
  std::printf("seed=%llu, eNB-to-tag fixed at %.0f ft\n\n",
              static_cast<unsigned long long>(seed), kEnbTagFt);

  // Busy-hour mall occupancy gates the WiFi baseline.
  const traffic::OccupancyModel wifi_occ(traffic::Technology::kWifi,
                                         traffic::Site::kMall);
  const double occupancy = wifi_occ.mean_occupancy(20);

  std::printf("%6s | %12s %12s %12s | %10s %10s %10s\n", "d(ft)",
              "WiFi(kbps)", "symLTE(kbps)", "LScat(Mbps)", "WiFi BER",
              "symLTE BER", "LScat BER");

  for (const double d : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 150.0,
                         180.0}) {
    // --- LScatter ---
    core::ScenarioOptions opt;
    opt.seed = seed + static_cast<std::uint64_t>(d * 7);
    core::LinkConfig cfg = core::make_scenario(core::Scene::kMall, opt);
    cfg.geometry.enb_tag_ft = kEnbTagFt;
    cfg.geometry.tag_ue_ft = d;
    const auto ls = benchutil::run_drops(cfg, drops, 10);

    // --- WiFi backscatter (same geometry, 2.437 GHz) ---
    baselines::WifiBackscatterConfig wcfg;
    wcfg.pathloss = cfg.env.pathloss;
    // 2.4 GHz propagates worse through mall clutter (people, kiosks) than
    // the 680 MHz carrier the UHF exponent was calibrated for.
    wcfg.pathloss.exponent = cfg.env.pathloss.exponent + 0.7;
    wcfg.budget = cfg.env.budget;
    wcfg.enb_tag_ft = kEnbTagFt;
    wcfg.tag_ue_ft = d;
    wcfg.rician_k_db = dsp::Db{3.0};  // weak LoS at 2.4 GHz in clutter
    wcfg.seed = opt.seed ^ 0xAAAA;
    baselines::WifiBackscatterLink wifi(wcfg);
    core::LinkMetrics wm;
    double wifi_bps = 0.0;
    for (std::size_t k = 0; k < 8; ++k) {
      wifi_bps += wifi.hourly_throughput_bps(occupancy, 1500) / 8.0;
      wm += wifi.run_burst(400);
    }

    // --- symbol-level LTE backscatter (680 MHz, whole-symbol bits) ---
    baselines::SymbolLevelLteConfig scfg;
    scfg.enodeb = cfg.enodeb;
    scfg.pathloss = cfg.env.pathloss;
    scfg.budget = cfg.env.budget;
    scfg.enb_tag_ft = kEnbTagFt;
    scfg.tag_ue_ft = d;
    scfg.rician_k_db = cfg.env.fading.rician_k_db;
    scfg.seed = opt.seed ^ 0x5555;
    baselines::SymbolLevelLteLink sym(scfg);
    core::LinkMetrics sm;
    for (std::size_t k = 0; k < drops; ++k) sm += sym.run(10);
    const double sym_bps = sym.instantaneous_rate_bps() *
                           std::max(0.0, 1.0 - 2.0 * sm.ber());

    std::printf("%6.0f | %12.2f %12.2f %12.3f | %10.2e %10.2e %10.2e\n", d,
                wifi_bps / 1e3, sym_bps / 1e3,
                ls.mean_throughput_bps / 1e6, wm.ber(), sm.ber(), ls.ber);
  }

  std::printf("\nexpected shapes: LScatter 2-3 orders above WiFi "
              "backscatter everywhere;\nsymbol-level LTE below WiFi "
              "backscatter near, crossing above around ~80-120 ft;\n"
              "LScatter BER < 1e-3 at 40 ft and ~1e-2 by 150-180 ft.\n");
  return 0;
}
