// Figure 32: impact of the backscatter on the original LTE transmission.
// LTE downlink throughput CDFs with and without an active LScatter tag,
// for 1.4 / 5 / 20 MHz. The scattered signal lives at f_c + 1/Ts (outside
// the band) and is far below the direct signal, so the curves should
// overlap — "negligible impact".

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "channel/awgn.hpp"
#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "dsp/db.hpp"
#include "lte/enodeb.hpp"
#include "lte/ue_rx.hpp"
#include "tag/modulator.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;

// LTE throughput over `n_sf` subframes at the given direct SNR, with an
// optional backscatter interferer `int_power` (relative to direct power 1).
double lte_throughput_bps(lte::Bandwidth bw, double snr_db,
                          lte::Modulation mcs, bool with_backscatter,
                          double int_rel_power, std::uint64_t seed) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = bw;
  ecfg.modulation = mcs;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);
  lte::UeReceiver ue(ecfg.cell);
  tag::TagScheduleConfig sched;
  tag::TagController ctl(ecfg.cell, sched);
  dsp::Rng noise_rng(seed ^ 0x32);
  dsp::Rng pattern_rng(seed ^ 0x64);

  std::size_t delivered = 0;
  const std::size_t n_sf = 10;
  for (std::size_t sf = 0; sf < n_sf; ++sf) {
    lte::SubframeTx tx = enb.next_subframe();
    dsp::cvec rx = tx.samples;

    if (with_backscatter) {
      // In-band residue of the scattered signal: the wanted sideband sits
      // 1/Ts away; what lands in-band is the un-cancelled image plus
      // switching spectral splatter, all far below the direct signal.
      std::vector<std::uint8_t> pattern(
          ecfg.cell.samples_per_subframe());
      for (auto& b : pattern)
        b = static_cast<std::uint8_t>(pattern_rng.next_u32() & 1u);
      const float amp = static_cast<float>(std::sqrt(int_rel_power));
      const dsp::cvec scat = tag::apply_pattern(
          tx.samples, pattern, 0, dsp::cf32{amp, 0.0f});
      for (std::size_t n = 0; n < rx.size(); ++n) rx[n] += scat[n];
    }

    channel::add_awgn_snr(rx, dsp::Db{snr_db}, noise_rng);
    const auto res = ue.receive_subframe(rx, tx, mcs);
    delivered += res.bits_delivered;  // per-code-block accounting
  }
  return static_cast<double>(delivered) /
         (static_cast<double>(n_sf) * 1e-3);
}

}  // namespace

int main() {
  using namespace lscatter;
  benchutil::print_header(
      "Figure 32: LTE throughput with/without backscatter",
      "paper §4.7");
  const std::uint64_t seed = 3232;
  // Backscatter-to-direct in-band power ratio at the UE: double path loss
  // + tag losses + image rejection put it ~45 dB under the direct signal.
  const double int_rel = dsp::db_to_lin(-45.0);
  std::printf("seed=%llu, in-band backscatter residue at -45 dB rel. "
              "direct\n\n",
              static_cast<unsigned long long>(seed));

  for (const auto bw :
       {lte::Bandwidth::kMHz1_4, lte::Bandwidth::kMHz5,
        lte::Bandwidth::kMHz20}) {
    std::vector<double> without;
    std::vector<double> with_bs;
    dsp::Rng snr_rng(seed + static_cast<std::uint64_t>(bw));
    for (int run = 0; run < 15; ++run) {
      // The UE moves around, so SNR and the scheduled MCS vary run to
      // run: QPSK at low SNR, up to 64QAM when the link is good.
      const double snr = snr_rng.uniform(10.0, 30.0);
      const lte::Modulation mcs =
          snr < 14.0 ? lte::Modulation::kQpsk
          : snr < 22.0 ? lte::Modulation::kQam16
                       : lte::Modulation::kQam64;
      const std::uint64_t s = seed + 100 * run;
      without.push_back(
          lte_throughput_bps(bw, snr, mcs, false, int_rel, s) / 1e6);
      with_bs.push_back(
          lte_throughput_bps(bw, snr, mcs, true, int_rel, s) / 1e6);
    }
    const auto b0 = dsp::box_stats(without);
    const auto b1 = dsp::box_stats(with_bs);
    std::printf("%-7s w/o backscatter: %s Mbps\n",
                lte::to_string(bw).c_str(),
                dsp::format_box(b0).c_str());
    std::printf("%-7s w/  backscatter: %s Mbps\n",
                lte::to_string(bw).c_str(), dsp::format_box(b1).c_str());
    std::printf("        median delta: %+.2f%%\n\n",
                100.0 * (b1.median - b0.median) /
                    (b0.median > 0 ? b0.median : 1.0));
  }

  std::printf("paper: the CDF pairs overlap (negligible impact), because "
              "the scattered signal is\nshifted out of band and is much "
              "weaker than the direct transmission.\n");
  return 0;
}
