// Figure 19: throughput matrix over (eNodeB-to-tag) x (tag-to-UE)
// distances in the smart home, 10 dBm. The paper: 4-13 Mbps as long as
// the tag is within ~15 ft of either end; quick drop beyond.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header(
      "Figure 19: throughput vs eNB-tag x tag-UE distance",
      "paper §4.3.3 (smart home, 10 dBm)");
  const std::uint64_t seed = 1919;
  const double dists[] = {1, 5, 10, 15, 20, 25};
  const std::size_t drops = 6;
  std::printf("seed=%llu, %zu drops x 10 subframes per cell, Mbps\n\n",
              static_cast<unsigned long long>(seed), drops);

  std::printf("tag-to-UE \\ eNB-to-tag (ft)\n%8s", "");
  for (const double d1 : dists) std::printf("%7.0f", d1);
  std::printf("\n");

  double near_min = 1e12;
  double corner = 0.0;
  for (const double d2 : dists) {
    std::printf("%8.0f", d2);
    for (const double d1 : dists) {
      core::ScenarioOptions opt;
      opt.seed = seed + static_cast<std::uint64_t>(d1 * 131 + d2 * 17);
      core::LinkConfig cfg =
          core::make_scenario(core::Scene::kSmartHome, opt);
      cfg.geometry.enb_tag_ft = d1;
      cfg.geometry.tag_ue_ft = d2;
      const auto p = benchutil::run_drops(cfg, drops, 10);
      std::printf("%7.2f", p.mean_throughput_bps / 1e6);
      if ((d1 <= 15.0 || d2 <= 15.0) && d1 <= 15.0 && d2 <= 15.0) {
        near_min = std::min(near_min, p.mean_throughput_bps);
      }
      if (d1 == 25.0 && d2 == 25.0) corner = p.mean_throughput_bps;
    }
    std::printf("\n");
  }

  std::printf("\npaper: 4-13 Mbps while within 15 ft of either end; "
              "quick drop at the far corner.\nours : the gradient runs "
              "the same way but is shallower — our chance-corrected\n"
              "throughput metric only collapses once BER nears 0.5, while "
              "the paper's testbed\nloses packets earlier (see "
              "EXPERIMENTS.md).\n");
  std::printf("ours : min within the 15 ft box = %.2f Mbps; far corner "
              "(25,25) = %.2f Mbps\n",
              near_min / 1e6, corner / 1e6);
  return 0;
}
