// Figure 33b: continuous-authentication update rate (EMG samples/s
// delivered) vs tag-to-source distance. Paper: 136 sps at 2 ft, ~5 sps at
// 40 ft.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace lscatter;
  benchutil::print_header(
      "Figure 33b: continuous-auth update rate vs distance",
      "paper §5 (EMG wearable, one-symbol packets)");
  const std::uint64_t seed = 3333;
  constexpr double kSensorRateSps = 136.0;
  const std::size_t drops = 12;
  std::printf("seed=%llu, sensor rate %.0f sps, %zu drops per point\n\n",
              static_cast<unsigned long long>(seed), kSensorRateSps,
              drops);

  std::printf("%14s %10s %14s\n", "tag-src (ft)", "PDR", "update (sps)");
  double first = 0.0;
  double last = 0.0;
  for (const double d : {2.0, 8.0, 16.0, 24.0, 32.0, 40.0}) {
    core::ScenarioOptions opt;
    opt.seed = seed + static_cast<std::uint64_t>(d * 37);
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
    cfg.geometry.enb_tag_ft = d;
    cfg.geometry.tag_ue_ft = 4.0;
    cfg.schedule.max_data_symbols_per_packet = 1;

    std::size_t sent = 0;
    std::size_t ok = 0;
    for (std::size_t k = 0; k < drops; ++k) {
      core::LinkConfig c = cfg;
      c.seed = cfg.seed + 7919 * (k + 1);
      core::LinkSimulator sim(c);
      const auto m = sim.run(20);
      sent += m.packets_sent;
      ok += m.packets_ok;
    }
    const double pdr =
        sent == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(sent);
    const double sps = kSensorRateSps * pdr;
    std::printf("%14.0f %10.3f %14.1f\n", d, pdr, sps);
    if (d == 2.0) first = sps;
    if (d == 40.0) last = sps;
  }

  std::printf("\npaper: 136 sps at 2 ft -> ~5 sps at 40 ft. ours: %.0f -> "
              "%.0f sps. A handful of samples\nper second still "
              "re-authenticates the wearer several times a second.\n",
              first, last);
  return 0;
}
