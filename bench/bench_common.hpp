#pragma once
// Shared helpers for the figure-regeneration benches: multi-drop averaging
// of LScatter links and consistent row printing. Every bench prints its
// seed so runs are reproducible.

#include <cstdio>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "dsp/stats.hpp"

namespace lscatter::benchutil {

struct SweepPoint {
  double mean_throughput_bps = 0.0;
  double median_throughput_bps = 0.0;
  double ber = 0.0;  // pooled over drops
  double pdr = 0.0;
  double detect = 0.0;
};

/// Run `drops` independent channel drops of `subframes` each and pool.
inline SweepPoint run_drops(const core::LinkConfig& base, std::size_t drops,
                            std::size_t subframes) {
  SweepPoint p;
  std::vector<double> tputs;
  core::LinkMetrics total;
  for (std::size_t d = 0; d < drops; ++d) {
    core::LinkConfig cfg = base;
    cfg.seed = base.seed + 0x9E37 * (d + 1);
    cfg.enodeb.seed = cfg.seed ^ 0xBEEF;
    core::LinkSimulator sim(cfg);
    const core::LinkMetrics m = sim.run(subframes);
    tputs.push_back(m.throughput_bps());
    total += m;
  }
  p.mean_throughput_bps = dsp::mean(tputs);
  p.median_throughput_bps = dsp::median(tputs);
  p.ber = total.ber();
  p.pdr = total.packet_delivery_ratio();
  p.detect = total.preamble_detection_ratio();
  return p;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace lscatter::benchutil
