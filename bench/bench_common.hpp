#pragma once
// Shared helpers for the figure-regeneration benches: multi-drop averaging
// of LScatter links, consistent row printing, and JSON report emission
// through the observability exporter (`LSCATTER_OBS_JSON=<path>`). Every
// bench prints its seed so runs are reproducible.
//
// Drops run through the parallel sim pool (core/sim_pool.hpp). Results
// are bit-identical at any thread count, so the worker count is purely a
// wall-clock knob: `--threads=N` on any figure bench, else the
// LSCATTER_THREADS env var, else hardware concurrency.

#include <ctime>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "core/sim_pool.hpp"
#include "dsp/simd.hpp"
#include "dsp/stats.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/run_registry.hpp"

namespace lscatter::benchutil {

/// Bench-wide worker count: 0 = auto (LSCATTER_THREADS, else hardware).
inline std::size_t& bench_threads() {
  static std::size_t threads = 0;
  return threads;
}

/// Run-registry destination set by `--registry=PATH`; empty = only the
/// `LSCATTER_OBS_REGISTRY` env var can enable recording.
inline std::string& bench_registry_flag() {
  static std::string path;
  return path;
}

/// True when this run should append to the run registry: either the
/// `--registry=` flag or the `LSCATTER_OBS_REGISTRY` env var is set.
inline bool bench_registry_enabled() {
  if (!bench_registry_flag().empty()) return true;
  const char* env = std::getenv("LSCATTER_OBS_REGISTRY");
  return env != nullptr && env[0] != '\0';
}

/// Parse `--threads=N` and `--registry[=PATH]` (the flags every figure
/// bench takes) and print the resolved worker count so runs are
/// self-describing.
inline void init_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long v = std::strtol(argv[i] + 10, nullptr, 10);
      if (v > 0) bench_threads() = static_cast<std::size_t>(v);
    } else if (std::strncmp(argv[i], "--registry=", 11) == 0 &&
               argv[i][11] != '\0') {
      bench_registry_flag() = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--registry") == 0) {
      bench_registry_flag() = obs::kDefaultRegistryPath;
    }
  }
  std::printf("threads=%zu (results are thread-count independent)\n",
              core::resolve_threads(bench_threads()));
}

struct SweepPoint {
  double mean_throughput_bps = 0.0;
  double median_throughput_bps = 0.0;
  double p90_throughput_bps = 0.0;
  double p99_throughput_bps = 0.0;
  double ber = 0.0;  // pooled over drops
  double pdr = 0.0;
  double detect = 0.0;
};

/// Run `drops` independent channel drops of `subframes` each and pool.
/// Fans out across the sim pool; bit-identical at any thread count.
inline SweepPoint run_drops(const core::LinkConfig& base, std::size_t drops,
                            std::size_t subframes,
                            std::size_t threads = 0) {
  SweepPoint p;
  const core::DropSweep sweep = core::run_drops_parallel(
      base, drops, subframes, threads > 0 ? threads : bench_threads());
  const std::vector<double>& tputs = sweep.throughputs_bps;
  const core::LinkMetrics& total = sweep.total;
  p.mean_throughput_bps = dsp::mean(tputs);
  const dsp::QuantileSummary q = dsp::summary_quantiles(tputs);
  p.median_throughput_bps = q.p50;
  p.p90_throughput_bps = q.p90;
  p.p99_throughput_bps = q.p99;
  p.ber = total.ber();
  p.pdr = total.packet_delivery_ratio();
  p.detect = total.preamble_detection_ratio();
  return p;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

/// Accumulates sweep rows and writes them — together with the registry
/// snapshot — as one JSON report on destruction. Rows land under
/// `extra.rows`; per-bench parameters (seed, drops, ...) under
/// `extra.params`. Destination: `LSCATTER_OBS_JSON`, else `default_path`,
/// else nothing is written.
class BenchReport {
 public:
  explicit BenchReport(std::string name, std::string default_path = "")
      : name_(std::move(name)), default_path_(std::move(default_path)) {
    extra_["rows"].make_array();
    extra_["params"].make_object();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  obs::json::Object& params() { return extra_["params"].make_object(); }

  /// Whole `extra` payload, for attachments beyond rows/params (e.g. a
  /// SnapshotSeries dump under `extra.snapshot`).
  obs::json::Value& extra() { return extra_; }

  /// Append a row; fill in the returned object.
  obs::json::Object& add_row() {
    obs::json::Array& rows = extra_["rows"].as_array();
    rows.emplace_back(obs::json::Object{});
    return rows.back().make_object();
  }

  /// Append a row pre-populated from a SweepPoint.
  obs::json::Object& add_row(const std::string& label,
                             const SweepPoint& point) {
    obs::json::Object& row = add_row();
    row["label"] = label;
    row["mean_throughput_bps"] = point.mean_throughput_bps;
    row["median_throughput_bps"] = point.median_throughput_bps;
    row["p90_throughput_bps"] = point.p90_throughput_bps;
    row["p99_throughput_bps"] = point.p99_throughput_bps;
    row["ber"] = point.ber;
    row["pdr"] = point.pdr;
    row["detect"] = point.detect;
    return row;
  }

  /// Write now (idempotent; the destructor is a no-op afterwards). When
  /// a run registry is configured (`--registry=` flag or
  /// `LSCATTER_OBS_REGISTRY`), the same report — compacted — is also
  /// appended there with provenance.
  void write() {
    if (written_) return;
    written_ = true;
    const auto path =
        obs::write_report_from_env(name_, default_path_, &extra_);
    if (path) std::printf("\nJSON report: %s\n", path->c_str());
    if (bench_registry_enabled()) record_to_registry();
  }

 private:
  void record_to_registry() {
    const std::string registry =
        obs::registry_path_from_env(bench_registry_flag());
    obs::RunRecord rec;
    rec.report = obs::compact_report(
        obs::build_report(name_, obs::report_options_from_env(), &extra_));
    rec.provenance.bench = name_;
    // Git state is the driver's business (scripts/bench_gate.sh exports
    // it); a bench binary must not shell out.
    if (const char* sha = std::getenv("LSCATTER_GIT_SHA")) {
      rec.provenance.git_sha = sha;
    }
    if (const char* dirty = std::getenv("LSCATTER_GIT_DIRTY")) {
      rec.provenance.dirty = !(dirty[0] == '0' && dirty[1] == '\0');
    }
    rec.provenance.config_hash = obs::config_hash(extra_["params"]);
    rec.provenance.hostname = obs::local_hostname();
    rec.provenance.threads = core::resolve_threads(bench_threads());
    rec.provenance.simd_tier = dsp::to_string(dsp::simd_tier());
    // Caller-side wall-clock stamp: the obs library itself never reads
    // clocks (DESIGN.md §11); the bench binary is the caller here.
    rec.provenance.unix_time_s = static_cast<double>(std::time(nullptr));
    std::string error;
    if (obs::append_record(registry, rec, &error)) {
      std::printf("registry: appended %s to %s\n", name_.c_str(),
                  registry.c_str());
    } else {
      // Non-fatal by design: a missing registry record only weakens the
      // trend baseline, it must not fail the bench. But it has to be
      // loud — CI artifacts need to show exactly which path refused the
      // record and why, or a silently thinning registry looks like a
      // healthy one.
      std::fprintf(stderr,
                   "registry: FAILED to append %s to %s: %s "
                   "(non-fatal; run not recorded)\n",
                   name_.c_str(), registry.c_str(),
                   error.empty() ? "unknown error" : error.c_str());
    }
  }

  std::string name_;
  std::string default_path_;
  obs::json::Value extra_;
  bool written_ = false;
};

}  // namespace lscatter::benchutil
