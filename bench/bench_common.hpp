#pragma once
// Shared helpers for the figure-regeneration benches: multi-drop averaging
// of LScatter links, consistent row printing, and JSON report emission
// through the observability exporter (`LSCATTER_OBS_JSON=<path>`). Every
// bench prints its seed so runs are reproducible.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "dsp/stats.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace lscatter::benchutil {

struct SweepPoint {
  double mean_throughput_bps = 0.0;
  double median_throughput_bps = 0.0;
  double p90_throughput_bps = 0.0;
  double p99_throughput_bps = 0.0;
  double ber = 0.0;  // pooled over drops
  double pdr = 0.0;
  double detect = 0.0;
};

/// Run `drops` independent channel drops of `subframes` each and pool.
inline SweepPoint run_drops(const core::LinkConfig& base, std::size_t drops,
                            std::size_t subframes) {
  SweepPoint p;
  std::vector<double> tputs;
  core::LinkMetrics total;
  for (std::size_t d = 0; d < drops; ++d) {
    core::LinkConfig cfg = base;
    cfg.seed = base.seed + 0x9E37 * (d + 1);
    cfg.enodeb.seed = cfg.seed ^ 0xBEEF;
    core::LinkSimulator sim(cfg);
    const core::LinkMetrics m = sim.run(subframes);
    tputs.push_back(m.throughput_bps());
    total += m;
  }
  p.mean_throughput_bps = dsp::mean(tputs);
  const dsp::QuantileSummary q = dsp::summary_quantiles(tputs);
  p.median_throughput_bps = q.p50;
  p.p90_throughput_bps = q.p90;
  p.p99_throughput_bps = q.p99;
  p.ber = total.ber();
  p.pdr = total.packet_delivery_ratio();
  p.detect = total.preamble_detection_ratio();
  return p;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

/// Accumulates sweep rows and writes them — together with the registry
/// snapshot — as one JSON report on destruction. Rows land under
/// `extra.rows`; per-bench parameters (seed, drops, ...) under
/// `extra.params`. Destination: `LSCATTER_OBS_JSON`, else `default_path`,
/// else nothing is written.
class BenchReport {
 public:
  explicit BenchReport(std::string name, std::string default_path = "")
      : name_(std::move(name)), default_path_(std::move(default_path)) {
    extra_["rows"].make_array();
    extra_["params"].make_object();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  obs::json::Object& params() { return extra_["params"].make_object(); }

  /// Append a row; fill in the returned object.
  obs::json::Object& add_row() {
    obs::json::Array& rows = extra_["rows"].as_array();
    rows.emplace_back(obs::json::Object{});
    return rows.back().make_object();
  }

  /// Append a row pre-populated from a SweepPoint.
  obs::json::Object& add_row(const std::string& label,
                             const SweepPoint& point) {
    obs::json::Object& row = add_row();
    row["label"] = label;
    row["mean_throughput_bps"] = point.mean_throughput_bps;
    row["median_throughput_bps"] = point.median_throughput_bps;
    row["p90_throughput_bps"] = point.p90_throughput_bps;
    row["p99_throughput_bps"] = point.p99_throughput_bps;
    row["ber"] = point.ber;
    row["pdr"] = point.pdr;
    row["detect"] = point.detect;
    return row;
  }

  /// Write now (idempotent; the destructor is a no-op afterwards).
  void write() {
    if (written_) return;
    written_ = true;
    const auto path =
        obs::write_report_from_env(name_, default_path_, &extra_);
    if (path) std::printf("\nJSON report: %s\n", path->c_str());
  }

 private:
  std::string name_;
  std::string default_path_;
  obs::json::Value extra_;
  bool written_ = false;
};

}  // namespace lscatter::benchutil
