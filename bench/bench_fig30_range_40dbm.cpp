// Figure 30: maximum tag-to-UE distance vs eNodeB-to-tag distance with the
// RF5110 power amplifier (40 dBm). Paper anchors: eNB-tag 2 ft -> tag-UE
// 320 ft; eNB-tag 24 ft -> tag-UE 160 ft.
//
// "Maximum" = largest distance where the link still delivers (mean BER
// under 10% and most preambles detected), found by walking the tag-UE
// distance outward.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace lscatter;

bool link_alive(double enb_tag_ft, double tag_ue_ft, std::uint64_t seed) {
  core::ScenarioOptions opt;
  opt.tx_power_dbm = dsp::Dbm{40.0};  // RF5110 PA
  opt.seed = seed;
  core::LinkConfig cfg = core::make_scenario(core::Scene::kOutdoor, opt);
  cfg.geometry.enb_tag_ft = enb_tag_ft;
  cfg.geometry.tag_ue_ft = tag_ue_ft;
  const auto p = benchutil::run_drops(cfg, 4, 8);
  return p.ber < 0.02 && p.detect > 0.8;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header(
      "Figure 30: eNB-to-tag vs max tag-to-UE distance @ 40 dBm",
      "paper §4.5.4");
  const std::uint64_t seed = 3030;
  std::printf("seed=%llu, outdoor, alive = BER<2%% and detect>80%%\n\n",
              static_cast<unsigned long long>(seed));

  std::printf("%14s %20s\n", "eNB-tag (ft)", "max tag-UE (ft)");
  for (const double d1 : {2.0, 8.0, 16.0, 24.0, 32.0, 40.0}) {
    // Walk outward in 60 ft steps until the link dies twice in a row.
    double best = 0.0;
    int dead = 0;
    for (double d2 = 60.0; d2 <= 2400.0 && dead < 2; d2 += 60.0) {
      if (link_alive(d1, d2,
                     seed + static_cast<std::uint64_t>(d1 * 997 + d2))) {
        best = d2;
        dead = 0;
      } else {
        ++dead;
      }
    }
    std::printf("%14.0f %20.0f\n", d1, best);
  }

  std::printf("\npaper anchors: (2 ft -> 320 ft), (24 ft -> 160 ft). The "
              "*shape* to reproduce is the\nmonotone tradeoff from the "
              "double path loss of passive links. Our absolute ranges\n"
              "run longer: the simulated front end has no saturation or "
              "self-interference at\n+40 dBm (see EXPERIMENTS.md). "
              "Small-cell deployments put eNodeBs close enough for\n"
              "this range to cover homes and offices.\n");
  return 0;
}
