// Table 1: features of existing backscatter systems' excitation signals.
// The three columns (ambient / continuous / ubiquitous) are exactly the
// requirements §1 derives; only LScatter checks all three.

#include <cstdio>

#include "baselines/taxonomy.hpp"
#include "bench_common.hpp"

int main() {
  using namespace lscatter;
  benchutil::print_header("Table 1: excitation-signal features",
                          "paper Table 1 (§1)");

  std::printf("%-20s %-22s %-8s %-11s %-10s\n", "Technology", "carrier",
              "Ambient", "Continuous", "Ubiquitous");
  std::size_t all_three = 0;
  for (const auto& s : baselines::table1_systems()) {
    std::printf("%-20s %-22s %-8s %-11s %-10s\n",
                std::string(s.name).c_str(), std::string(s.carrier).c_str(),
                s.ambient ? "yes" : "-", s.continuous ? "yes" : "-",
                s.ubiquitous ? "yes" : "-");
    if (s.ambient && s.continuous && s.ubiquitous) ++all_three;
  }
  std::printf("\nsystems satisfying all three requirements: %zu "
              "(paper: only LScatter)\n", all_three);
  return all_three == 1 ? 0 : 1;
}
