// Figures 26a/26b/27: outdoor street study, 24 hours, 10 dBm.
//   26a: WiFi backscatter throughput (sparser outdoor WiFi -> avg drops
//        to ~16.9 kbps)
//   26b: LScatter throughput (still flat: LTE occupancy 100%)
//   27:  occupancy ratios

#include <cstdio>

#include "baselines/day_study.hpp"
#include "bench_common.hpp"

int main() {
  using namespace lscatter;
  benchutil::print_header("Figures 26a/26b/27: outdoor, 24 hours, 10 dBm",
                          "paper §4.5.1");

  baselines::DayStudyConfig cfg;
  cfg.scene = core::Scene::kOutdoor;
  cfg.samples_per_hour = 8;
  cfg.seed = 2626;
  std::printf("seed=%llu, %zu samples/hour\n\n",
              static_cast<unsigned long long>(cfg.seed),
              cfg.samples_per_hour);

  const auto results = baselines::run_day_study(cfg);

  std::printf("--- Fig. 26a: WiFi backscatter throughput (kbps) ---\n");
  std::printf("%4s %8s %8s %8s %8s %8s\n", "hour", "min", "q1", "med", "q3",
              "max");
  for (const auto& r : results) {
    const auto& b = r.wifi_backscatter_bps;
    std::printf("%4zu %8.1f %8.1f %8.1f %8.1f %8.1f\n", r.hour, b.min / 1e3,
                b.q1 / 1e3, b.median / 1e3, b.q3 / 1e3, b.max / 1e3);
  }

  std::printf("\n--- Fig. 26b: LScatter throughput (Mbps) ---\n");
  std::printf("%4s %8s %8s %8s %8s %8s\n", "hour", "min", "q1", "med", "q3",
              "max");
  for (const auto& r : results) {
    const auto& b = r.lscatter_bps;
    std::printf("%4zu %8.2f %8.2f %8.2f %8.2f %8.2f\n", r.hour, b.min / 1e6,
                b.q1 / 1e6, b.median / 1e6, b.q3 / 1e6, b.max / 1e6);
  }

  std::printf("\n--- Fig. 27: traffic occupancy ratio ---\n");
  std::printf("%4s %6s %6s\n", "hour", "WiFi", "LTE");
  for (const auto& r : results) {
    std::printf("%4zu %6.2f %6.2f\n", r.hour, r.wifi_occupancy_mean,
                r.lte_occupancy_mean);
  }

  std::printf("\naverages: WiFi backscatter %.1f kbps (paper: 16.9 kbps), "
              "LScatter %.2f Mbps (flat, paper Fig. 26b)\n",
              baselines::mean_of_medians_wifi(results) / 1e3,
              baselines::mean_of_medians_lscatter(results) / 1e6);
  return 0;
}
