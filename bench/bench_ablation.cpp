// Ablation studies for the design choices DESIGN.md calls out (not a
// paper figure — library extensions):
//   A. resync period: sync-maintenance duty cycle vs throughput
//   B. repetition factor: rate vs BER/packet-delivery diversity gain
//   C. adjacent-channel rejection (ACIR): the close-range SNR ceiling
//   D. preamble search range: tail losses when it under-covers the
//      residual sync error distribution

#include <cstdio>

#include "baselines/wifi_unit_level.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header("Ablations: schedule / repetition / ACIR / search",
                          "library design choices (DESIGN.md §4)");
  const std::uint64_t seed = 777;
  std::printf("seed=%llu, smart home\n\n",
              static_cast<unsigned long long>(seed));

  std::printf("--- A. resync period (subframes) vs throughput ---\n");
  std::printf("%8s %14s %12s\n", "period", "tput (Mbps)", "detect");
  for (const std::size_t period : {2, 5, 10, 20, 50}) {
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome,
                                               {.seed = seed + period});
    cfg.schedule.resync_period_subframes = period;
    const auto p = benchutil::run_drops(cfg, 4, 2 * period);
    std::printf("%8zu %14.2f %12.3f\n", period,
                p.mean_throughput_bps / 1e6, p.detect);
  }
  std::printf("(longer periods raise the PHY rate ceiling but let clock "
              "drift eat the offset margin)\n\n");

  std::printf("--- B. repetition factor at 16 ft / 12 ft ---\n");
  std::printf("%4s %14s %10s %8s\n", "r", "tput (Mbps)", "BER", "PDR");
  for (const std::size_t rep : {1, 2, 4, 8, 16}) {
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome,
                                               {.seed = seed + 31 * rep});
    cfg.geometry.enb_tag_ft = 16.0;
    cfg.geometry.tag_ue_ft = 12.0;
    cfg.schedule.repetition = rep;
    const auto p = benchutil::run_drops(cfg, 6, 10);
    std::printf("%4zu %14.3f %10.2e %8.3f\n", rep,
                p.mean_throughput_bps / 1e6, p.ber, p.pdr);
  }
  std::printf("(r=1 is the paper's scheme; soft-combining trades rate 1/r "
              "for a Gamma(r) diversity\n gain against the OFDM-envelope "
              "BER floor — CRC packets only survive mid-range with r>1)\n\n");

  std::printf("--- C. ACIR (adjacent-channel rejection) at 3 ft / 3 ft ---\n");
  std::printf("%8s %10s %14s\n", "ACIR dB", "BER", "tput (Mbps)");
  for (const double acir : {40.0, 50.0, 60.0, 70.0, 80.0}) {
    core::LinkConfig cfg = core::make_scenario(
        core::Scene::kSmartHome,
        {.seed = seed + static_cast<std::uint64_t>(acir)});
    cfg.env.acir_db = dsp::Db{acir};
    const auto p = benchutil::run_drops(cfg, 4, 10);
    std::printf("%8.0f %10.2e %14.2f\n", acir, p.ber,
                p.mean_throughput_bps / 1e6);
  }
  std::printf("(the original band's residue — not thermal noise — caps "
              "close-range SNR;\n commodity-UE filtering (~45 dB) would "
              "cost two orders of magnitude in BER)\n\n");

  std::printf("--- D. preamble search range vs sync sigma 2 us ---\n");
  std::printf("%12s %10s %10s\n", "range(units)", "detect", "BER");
  for (const std::size_t range : {32, 64, 128, 256, 512}) {
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome,
                                               {.seed = seed + range});
    cfg.search.range_units = range;
    const auto p = benchutil::run_drops(cfg, 6, 20);
    std::printf("%12zu %10.3f %10.2e\n", range, p.detect, p.ber);
  }
  std::printf("(the search must cover the residual-sync tails: 2 us sigma "
              "= 61 units at 30.72 Msps;\n under-covering silently drops "
              "whole packets)\n\n");

  std::printf("--- E'. modulation window placement (paper §3.2.3 / "
              "Fig. 10) ---\n");
  std::printf("%14s %10s %10s\n", "offset(units)", "BER", "PDR");
  for (const std::ptrdiff_t off : {-724, -524, -424, -200, 0, 200, 424}) {
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome,
                                               {.seed = seed + 5});
    cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
    cfg.schedule.window_offset_units = off;
    cfg.sync.sigma_s = 0.2e-6;
    cfg.search.range_units = 80;
    const auto p = benchutil::run_drops(cfg, 3, 8);
    std::printf("%14td %10.2e %10.2f\n", off, p.ber, p.pdr);
  }
  std::printf("(offset -424 puts the window flush against the CP; beyond "
              "that, modulated units fall\n into the CP and are discarded "
              "by the UE's FFT window — why the paper centers the\n window "
              "and reserves 38.8%% of the symbol as slack)\n\n");

  std::printf("--- E. generalization: unit-level modulation on WiFi OFDM "
              "(paper SS6) ---\n");
  {
    baselines::WifiUnitLevelConfig wcfg;
    wcfg.pathloss.exponent = 2.0;
    wcfg.seed = seed;
    baselines::WifiUnitLevelLink wifi(wcfg);
    const auto m = wifi.run_burst(60);
    std::printf("instantaneous rate: %.1f Mbps  burst BER: %.2e\n",
                wifi.instantaneous_rate_bps() / 1e6, m.ber());
    std::printf("%10s %16s\n", "occupancy", "avg tput (Mbps)");
    for (const double occ : {0.1, 0.3, 0.6, 1.0}) {
      std::printf("%10.1f %16.2f\n", occ,
                  wifi.hourly_throughput_bps(occ, 60) / 1e6);
    }
    std::printf("(the same basic-timing-unit scheme hits 13 Mbps on "
                "802.11g symbols, but bursty\n ambient WiFi gates the "
                "average — the quantified reason the paper builds on "
                "LTE)\n");
  }
  return 0;
}
