// Figure 31: synchronization accuracy of the tag's analog circuit.
// Error = time between the true PSS arrival (the "LTE receiver" baseline,
// which our simulation knows exactly) and the comparator's rising edge.
// The paper reports ~90% of errors within 30-40 us, normal-ish.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "channel/awgn.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/signal_map.hpp"
#include "tag/analog_frontend.hpp"
#include "tag/sync_detector.hpp"

int main() {
  using namespace lscatter;
  const std::uint64_t seed = 3131;
  benchutil::print_header("Figure 31: sync-circuit accuracy CDF",
                          "paper Fig. 31 (§4.6)");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  std::vector<double> errors_us;
  std::size_t pss_windows = 0;
  std::size_t detected = 0;
  std::size_t false_alarms = 0;

  for (int trial = 0; trial < 40; ++trial) {
    lte::Enodeb::Config ecfg;
    ecfg.cell.bandwidth = lte::Bandwidth::kMHz20;
    ecfg.seed = seed + static_cast<std::uint64_t>(trial);
    lte::Enodeb enb(ecfg);

    dsp::cvec s;
    const std::size_t n_sf = 40;
    for (std::size_t sf = 0; sf < n_sf; ++sf) {
      const auto tx = enb.next_subframe();
      s.insert(s.end(), tx.samples.begin(), tx.samples.end());
    }
    dsp::Rng noise(seed + 1000 + static_cast<std::uint64_t>(trial));
    channel::add_awgn(s, 1e-3, noise);  // ~30 dB at the envelope detector

    tag::AnalogFrontend frontend({}, ecfg.cell.sample_rate_hz());
    const auto trace = frontend.process(s);
    const auto edges = tag::AnalogFrontend::rising_edges(trace);

    const double sym6 =
        static_cast<double>(
            lte::symbol_offset_in_subframe(ecfg.cell, lte::kPssSymbolIndex) +
            ecfg.cell.cp_samples()) /
        ecfg.cell.sample_rate_hz();

    // Skip the first 10 ms (averager warm-up in a cold-start sim).
    for (std::size_t k = 2; k < n_sf / 5; ++k) ++pss_windows;
    for (const double e : edges) {
      if (e < 10e-3) continue;
      bool matched = false;
      for (std::size_t k = 2; k < n_sf / 5; ++k) {
        const double err =
            e - (static_cast<double>(k) * 5e-3 + sym6);
        if (err >= -20e-6 && err < 250e-6) {
          matched = true;
          ++detected;
          errors_us.push_back(err * 1e6);
          break;
        }
      }
      if (!matched) ++false_alarms;
    }
  }

  std::printf("PSS events: %zu, detected: %zu (%.1f%%), false alarms: %zu\n",
              pss_windows, detected,
              100.0 * static_cast<double>(detected) /
                  static_cast<double>(pss_windows),
              false_alarms);

  const dsp::EmpiricalCdf cdf(errors_us);
  std::printf("\nsync (detection-latency) error CDF (us):\n");
  for (double x = -30.0; x <= 60.01; x += 10.0) {
    std::printf("  err <= %4.0f us : %.3f\n", x, cdf.evaluate(x));
  }
  std::printf("\npercentiles: p10=%.1f us p50=%.1f us p90=%.1f us\n",
              cdf.quantile(0.10), cdf.quantile(0.50), cdf.quantile(0.90));
  std::printf(
      "paper: detection latencies cluster in 30-40 us (their RC constants "
      "place the\ncomparator crossing high on the envelope rise). Our "
      "circuit crosses lower on the\nrise to minimize jitter, so the raw "
      "latency centers near %.0f us with a similar\nspread — the "
      "*deviation shape* (normal-ish, ~90%% within a 25 us band) is what\n"
      "the modulation-offset margin consumes.\n",
      cdf.quantile(0.50));

  // The quantity the link actually cares about: residual after the FPGA
  // subtracts the nominal latency and ring-buffer-averages 8 edges.
  const double nominal = cdf.quantile(0.50);
  std::vector<double> residuals;
  for (std::size_t i = 0; i + 8 <= errors_us.size(); i += 8) {
    double mean8 = 0.0;
    for (std::size_t j = 0; j < 8; ++j) mean8 += errors_us[i + j] / 8.0;
    residuals.push_back(mean8 - nominal);
  }
  if (!residuals.empty()) {
    const dsp::EmpiricalCdf rcdf(residuals);
    std::printf(
        "residual after FPGA compensation + 8-edge averaging: p10=%+.1f "
        "us p90=%+.1f us\n(the +-13.8 us one-sided tolerance of the "
        "modulation window absorbs this easily)\n",
        rcdf.quantile(0.10), rcdf.quantile(0.90));
  }
  return 0;
}
