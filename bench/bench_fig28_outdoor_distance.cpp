// Figures 28/29: outdoor street, throughput and BER vs tag-to-UE distance
// (10 dBm). Paper shapes: higher throughput than indoors at the same
// distance (less multipath), WiFi backscatter's BER blows up past ~120 ft
// while both LTE systems stay under 1% out to ~200 ft.

#include <cstdio>

#include "baselines/symbol_level_lte.hpp"
#include "baselines/wifi_backscatter.hpp"
#include "bench_common.hpp"
#include "traffic/occupancy_model.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header(
      "Figures 28/29: outdoor, 3 systems vs distance, 10 dBm",
      "paper §4.5.2/§4.5.3 (eNB/WiFi sender ~10 ft from tag)");
  const std::uint64_t seed = 2828;
  const double kEnbTagFt = 10.0;
  const std::size_t drops = 5;
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  const traffic::OccupancyModel wifi_occ(traffic::Technology::kWifi,
                                         traffic::Site::kOutdoor);
  const double occupancy = wifi_occ.mean_occupancy(17);

  std::printf("%6s | %12s %12s %12s | %10s %10s %10s\n", "d(ft)",
              "WiFi(kbps)", "symLTE(kbps)", "LScat(Mbps)", "WiFi BER",
              "symLTE BER", "LScat BER");

  for (const double d :
       {20.0, 50.0, 80.0, 120.0, 160.0, 200.0, 250.0, 300.0}) {
    core::ScenarioOptions opt;
    opt.seed = seed + static_cast<std::uint64_t>(d * 13);
    core::LinkConfig cfg = core::make_scenario(core::Scene::kOutdoor, opt);
    cfg.geometry.enb_tag_ft = kEnbTagFt;
    cfg.geometry.tag_ue_ft = d;
    const auto ls = benchutil::run_drops(cfg, drops, 10);

    baselines::WifiBackscatterConfig wcfg;
    wcfg.pathloss = cfg.env.pathloss;
    wcfg.pathloss.exponent = cfg.env.pathloss.exponent + 0.5;  // 2.4 GHz
    wcfg.budget = cfg.env.budget;
    wcfg.enb_tag_ft = kEnbTagFt;
    wcfg.tag_ue_ft = d;
    wcfg.rician_k_db = dsp::Db{4.0};
    wcfg.seed = opt.seed ^ 0xAAAA;
    baselines::WifiBackscatterLink wifi(wcfg);
    core::LinkMetrics wm;
    double wifi_bps = 0.0;
    for (std::size_t k = 0; k < 8; ++k) {
      wifi_bps += wifi.hourly_throughput_bps(occupancy, 1200) / 8.0;
      wm += wifi.run_burst(400);
    }

    baselines::SymbolLevelLteConfig scfg;
    scfg.enodeb = cfg.enodeb;
    scfg.pathloss = cfg.env.pathloss;
    scfg.budget = cfg.env.budget;
    scfg.enb_tag_ft = kEnbTagFt;
    scfg.tag_ue_ft = d;
    scfg.rician_k_db = cfg.env.fading.rician_k_db;
    scfg.seed = opt.seed ^ 0x5555;
    baselines::SymbolLevelLteLink sym(scfg);
    core::LinkMetrics sm;
    for (std::size_t k = 0; k < drops; ++k) sm += sym.run(10);
    const double sym_bps = sym.instantaneous_rate_bps() *
                           std::max(0.0, 1.0 - 2.0 * sm.ber());

    std::printf("%6.0f | %12.2f %12.2f %12.3f | %10.2e %10.2e %10.2e\n", d,
                wifi_bps / 1e3, sym_bps / 1e3,
                ls.mean_throughput_bps / 1e6, wm.ber(), sm.ber(), ls.ber);
  }

  std::printf("\nexpected: WiFi backscatter BER spikes past ~120 ft "
              "(2.4 GHz); LTE systems < 1%%\nto ~200 ft; LScatter "
              "throughput 2-3 orders above both at every distance.\n");
  return 0;
}
