// Figure 8: stage-by-stage outputs of the tag's analog synchronization
// circuit over 20 ms of ambient LTE — RC filter envelope, averaging
// circuit, and comparator, with the 5 ms PSS cadence visible as peaks.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "channel/awgn.hpp"
#include "lte/enodeb.hpp"
#include "tag/analog_frontend.hpp"

int main() {
  using namespace lscatter;
  const std::uint64_t seed = 88;
  benchutil::print_header("Figure 8: sync-circuit stage outputs",
                          "paper Fig. 8 (§3.1)");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  // 20 MHz cell as seen by a tag a few feet from the eNodeB (high SNR at
  // the envelope detector).
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz20;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);

  dsp::cvec samples;
  const std::size_t n_subframes = 20;
  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const auto tx = enb.next_subframe();
    samples.insert(samples.end(), tx.samples.begin(), tx.samples.end());
  }
  dsp::Rng noise(seed + 1);
  channel::add_awgn(samples, 1e-3, noise);  // 30 dB envelope SNR

  tag::AnalogFrontendConfig fcfg;
  tag::AnalogFrontend frontend(fcfg, ecfg.cell.sample_rate_hz());
  const auto trace = frontend.process(samples);

  // Normalize the RC output like the paper's figure.
  float rc_max = 1e-9f;
  for (const float v : trace.rc) rc_max = std::max(rc_max, v);

  std::printf("time(ms)  RC-filter  average  comparator\n");
  const std::size_t stride =
      static_cast<std::size_t>(0.25e-3 / trace.dt_s);
  for (std::size_t i = 0; i < trace.rc.size(); i += stride) {
    std::printf("%7.2f   %8.3f  %7.3f  %d\n",
                static_cast<double>(i) * trace.dt_s * 1e3,
                trace.rc[i] / rc_max, trace.average[i] / rc_max,
                trace.comparator[i]);
  }

  const auto edges = tag::AnalogFrontend::rising_edges(trace);
  std::printf("\ncomparator rising edges (ms):");
  for (const double e : edges) std::printf(" %.3f", e * 1e3);
  std::printf("\n");

  // PSS truth: useful part of symbol 6 of subframes 0,5,10,15 —
  // the circuit should fire once per 5 ms, shortly after each.
  std::printf("true PSS starts (ms): 0.500 5.500 10.500 15.500 (approx)\n");
  if (edges.size() >= 2) {
    double sum = 0.0;
    for (std::size_t i = 1; i < edges.size(); ++i) {
      sum += edges[i] - edges[i - 1];
    }
    std::printf("mean edge period: %.3f ms (expect ~5 ms)\n",
                sum / static_cast<double>(edges.size() - 1) * 1e3);
  } else {
    std::printf("WARNING: fewer than 2 comparator edges detected\n");
  }
  return 0;
}
