// Figures 18a/18b: LScatter throughput vs LTE bandwidth, LoS and NLoS.
// The paper's observations: throughput is directly proportional to the
// bandwidth (the modulation uses every subcarrier's timing unit), and the
// NLoS penalty is below 10%. `LSCATTER_OBS_JSON=<path>` additionally
// writes the rows plus the pipeline's counters/timings as JSON.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header("Figures 18a/18b: throughput vs LTE bandwidth",
                          "paper §4.3.2");
  const std::uint64_t seed = 1818;
  const std::size_t drops = 6;
  const std::size_t subframes = 20;
  std::printf("seed=%llu, %zu drops x %zu subframes, smart-home 3ft/3ft\n\n",
              static_cast<unsigned long long>(seed), drops, subframes);

  benchutil::BenchReport report("bench_fig18_bandwidth");
  report.params()["seed"] = static_cast<std::uint64_t>(seed);
  report.params()["drops"] = static_cast<std::uint64_t>(drops);
  report.params()["subframes"] = static_cast<std::uint64_t>(subframes);

  std::printf("%-8s %14s %14s %9s\n", "BW", "LoS (Mbps)", "NLoS (Mbps)",
              "NLoS drop");
  double prev_los = 0.0;
  double prev_bw = 0.0;
  bool proportional = true;
  for (const auto bw : lte::kAllBandwidths) {
    double tput[2] = {0.0, 0.0};
    for (const bool nlos : {false, true}) {
      core::ScenarioOptions opt;
      opt.bandwidth = bw;
      opt.line_of_sight = !nlos;
      opt.seed = seed + static_cast<std::uint64_t>(bw) * 31 + nlos;
      const core::LinkConfig cfg =
          core::make_scenario(core::Scene::kSmartHome, opt);
      const benchutil::SweepPoint point =
          benchutil::run_drops(cfg, drops, subframes);
      tput[nlos] = point.mean_throughput_bps;
      obs::json::Object& row = report.add_row(
          lte::to_string(bw) + (nlos ? " NLoS" : " LoS"), point);
      row["bandwidth_hz"] = lte::bandwidth_hz(bw);
      row["line_of_sight"] = !nlos;
    }
    const double drop_pct = 100.0 * (1.0 - tput[1] / tput[0]);
    std::printf("%-8s %14.2f %14.2f %8.1f%%\n",
                lte::to_string(bw).c_str(), tput[0] / 1e6, tput[1] / 1e6,
                drop_pct);

    const double bw_hz = lte::bandwidth_hz(bw);
    if (prev_bw > 0.0) {
      const double ratio = (tput[0] / prev_los) / (bw_hz / prev_bw);
      // Per-subcarrier rate should be constant across bandwidths. The RB
      // count is not exactly proportional to nominal bandwidth (6 RB for
      // 1.4 MHz), so allow slack.
      if (ratio < 0.6 || ratio > 1.4) proportional = false;
    }
    prev_los = tput[0];
    prev_bw = bw_hz;
  }

  std::printf("\npaper claims -> measured:\n");
  std::printf("  throughput proportional to bandwidth : %s\n",
              proportional ? "yes" : "NO");
  std::printf("  20 MHz LoS ~13.6 Mbps, 1.4 MHz ~0.8 Mbps, NLoS drop < "
              "10%%\n");
  return 0;
}
