// Figure 12: the demodulated backscatter constellation rotates by the
// phase offset phi (tag switching delay + channel response); eliminating
// it with reference units (Eq. 6) restores the ideal BPSK constellation.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "channel/awgn.hpp"
#include "core/lscatter_rx.hpp"
#include "core/phase_offset.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "tag/modulator.hpp"
#include "tag/tag_controller.hpp"

int main() {
  using namespace lscatter;
  using dsp::cf32;
  const std::uint64_t seed = 1212;
  benchutil::print_header("Figure 12: phase offset on the constellation",
                          "paper Fig. 12 (§3.3.1) + Eq. 5/6");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz20;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);
  const auto cell = ecfg.cell;

  tag::TagScheduleConfig sched;
  tag::TagController ctl(cell, sched);

  for (const double phi_deg : {0.0, 25.0, 60.0, -40.0}) {
    const double phi = phi_deg * dsp::kPi / 180.0;
    const cf32 gain{static_cast<float>(1e-3 * std::cos(phi)),
                    static_cast<float>(1e-3 * std::sin(phi))};

    const auto tx = enb.make_subframe(1);
    const std::size_t cap = ctl.packet_raw_bits(1);
    const core::PacketCodec codec(cap);
    dsp::Rng prng(seed + 7);
    const auto payload = prng.bits(codec.payload_bits());
    const auto chunks =
        core::split_bits(codec.encode(payload), ctl.bits_per_symbol());
    const auto plan = ctl.plan_subframe(1, true, chunks);
    const auto pattern = tag::expand_to_units(cell, plan);
    auto rx = tag::apply_pattern(tx.samples, pattern, 0, gain);
    dsp::Rng nrng(seed + 9);
    channel::add_awgn(rx, 1e-10, nrng);

    // Products over the first data symbol's modulation window.
    const std::size_t l = 1;  // symbol 0 carries the preamble
    const std::size_t useful =
        lte::symbol_offset_in_subframe(cell, l) + cell.cp_samples();
    const std::size_t w0 = useful + ctl.modulation_start_unit();

    // Mean angle of the '1' (theta=0) cluster before correction.
    dsp::cf64 centroid{};
    for (std::size_t n = 0; n < ctl.units_per_symbol(); ++n) {
      const cf32 z = rx[w0 + n] * std::conj(tx.samples[w0 + n]);
      const bool bit_one = plan.symbols[l].bits[n] != 0;
      const dsp::cf64 zz{z.real(), z.imag()};
      centroid += bit_one ? zz : -zz;
    }
    const double measured_deg =
        std::atan2(centroid.imag(), centroid.real()) * 180.0 / dsp::kPi;

    // Eliminate with the filler-unit gain estimate (Eq. 6 equivalent).
    dsp::cvec z_ref;
    for (std::size_t n = 0;
         n < static_cast<std::size_t>(ctl.modulation_start_unit()); ++n) {
      z_ref.push_back(rx[useful + n] * std::conj(tx.samples[useful + n]));
    }
    const cf32 g_hat = core::estimate_gain(z_ref);
    dsp::cf64 corrected = centroid;
    {
      const cf32 unit = std::conj(g_hat) / std::abs(g_hat);
      corrected *= dsp::cf64{unit.real(), unit.imag()};
    }
    const double residual_deg =
        std::atan2(corrected.imag(), corrected.real()) * 180.0 / dsp::kPi;

    std::printf("injected phi = %+7.1f deg -> constellation rotated by "
                "%+7.1f deg; after Eq.6 elimination: %+6.2f deg residual\n",
                phi_deg, measured_deg, residual_deg);
  }

  std::printf("\nthe ideal constellation (Fig. 12a) is recovered to within "
              "a fraction of a degree,\nso UE slicing operates on axis-"
              "aligned BPSK exactly as §3.3.3 assumes.\n");
  return 0;
}
