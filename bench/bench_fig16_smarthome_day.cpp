// Figures 16a/16b/17: smart-home 24-hour study.
//   16a: WiFi backscatter throughput per hour (box plots, fluctuating)
//   16b: LScatter throughput per hour (flat boxes at ~13.6 Mbps)
//   17:  WiFi vs LTE traffic occupancy per hour
// Headline: LScatter's average is 368x the WiFi backscatter's (13.63 Mbps
// vs ~37 kbps).

#include <cstdio>

#include "baselines/day_study.hpp"
#include "bench_common.hpp"
#include "obs/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::print_header("Figures 16a/16b/17: smart home, 24 hours",
                          "paper §4.3.1");
  benchutil::init_threads(argc, argv);

  baselines::DayStudyConfig cfg;
  cfg.scene = core::Scene::kSmartHome;
  cfg.samples_per_hour = 8;
  cfg.seed = 1616;
  std::printf("seed=%llu, %zu samples/hour\n\n",
              static_cast<unsigned long long>(cfg.seed),
              cfg.samples_per_hour);

  benchutil::BenchReport report("bench_fig16_smarthome_day",
                                "BENCH_fig16.json");
  report.params()["seed"] = static_cast<std::uint64_t>(cfg.seed);
  report.params()["samples_per_hour"] =
      static_cast<std::uint64_t>(cfg.samples_per_hour);

  // Decode latency over the replayed day: one sample per measurement
  // run, tagged with the simulated time of day (DESIGN.md §11).
  obs::SnapshotSeries series({.capacity = 256, .every = 1});
  series.add_histogram_quantile("core.demod.packet.seconds", 0.50);
  series.add_histogram_quantile("core.demod.packet.seconds", 0.99);
  series.add_counter("core.demod.crc_ok");
  series.add_counter("core.link.subframes");
  cfg.snapshot = &series;

  const auto results = baselines::run_day_study(cfg);

  std::printf("--- Fig. 16a: WiFi backscatter throughput (kbps) ---\n");
  std::printf("%4s %8s %8s %8s %8s %8s %9s\n", "hour", "min", "q1", "med",
              "q3", "max", "outliers");
  for (const auto& r : results) {
    const auto& b = r.wifi_backscatter_bps;
    std::printf("%4zu %8.1f %8.1f %8.1f %8.1f %8.1f %9zu\n", r.hour,
                b.min / 1e3, b.q1 / 1e3, b.median / 1e3, b.q3 / 1e3,
                b.max / 1e3, b.n_outliers);
  }

  std::printf("\n--- Fig. 16b: LScatter throughput (Mbps) ---\n");
  std::printf("%4s %8s %8s %8s %8s %8s\n", "hour", "min", "q1", "med", "q3",
              "max");
  for (const auto& r : results) {
    const auto& b = r.lscatter_bps;
    std::printf("%4zu %8.2f %8.2f %8.2f %8.2f %8.2f\n", r.hour, b.min / 1e6,
                b.q1 / 1e6, b.median / 1e6, b.q3 / 1e6, b.max / 1e6);
  }

  std::printf("\n--- Fig. 17: traffic occupancy ratio ---\n");
  std::printf("%4s %6s %6s\n", "hour", "WiFi", "LTE");
  for (const auto& r : results) {
    std::printf("%4zu %6.2f %6.2f\n", r.hour, r.wifi_occupancy_mean,
                r.lte_occupancy_mean);
  }

  const double wifi_avg = baselines::mean_of_medians_wifi(results);
  const double ls_avg = baselines::mean_of_medians_lscatter(results);
  std::printf("\naverages: WiFi backscatter %.1f kbps (paper ~37 kbps), "
              "LScatter %.2f Mbps (paper 13.63 Mbps)\n",
              wifi_avg / 1e3, ls_avg / 1e6);
  std::printf("ratio: %.0fx (paper: 368x)\n", ls_avg / wifi_avg);

  for (const auto& r : results) {
    obs::json::Object& row = report.add_row();
    row["hour"] = static_cast<std::uint64_t>(r.hour);
    row["wifi_median_bps"] = r.wifi_backscatter_bps.median;
    row["lscatter_median_bps"] = r.lscatter_bps.median;
    row["wifi_occupancy"] = r.wifi_occupancy_mean;
    row["lte_occupancy"] = r.lte_occupancy_mean;
  }
  report.extra()["snapshot"] = series.to_json();
  std::printf("snapshot series: %llu sample(s), %zu channel(s)\n",
              static_cast<unsigned long long>(series.total_samples()),
              series.channel_count());
  return 0;
}
