// 24-hour streaming soak: replay a full smart-home + mall traffic day
// through the lock-free DecodePipeline faster than real time (DESIGN.md
// §15, ROADMAP item 3).
//
// The bench answers three questions the figure benches cannot:
//   1. Throughput headroom — what aggregate realtime multiple (total
//      IQ-seconds decoded per wall-second, all carriers) does the
//      pipelined decoder sustain? (gate: --min-realtime, default 20x)
//   2. Bounded latency — p99 end-to-end decode latency (push timestamp to
//      packet emission) over the whole day, sampled per simulated hour
//      into a SnapshotSeries.
//   3. Zero steady-state allocation — after a warmup covering at least
//      one full LTE frame (one simulated hour at the default --sph), the
//      entire process (producer + every worker) must perform exactly
//      ZERO heap allocations for the remaining hours. Enforced by the
//      counting operator-new hook in obs/alloc_probe.hpp; any violation
//      is a non-zero exit.
//
// Day model: each simulated hour is `--sph` subframes of IQ per carrier.
// The tag's duty cycle follows the site's hour-of-day activity profile
// (traffic::OccupancyModel) — a home tag chatters in the evening, a mall
// tag around 8 pm — so ring fill and decode load vary across the day the
// way a deployment's would. All IQ is pre-generated untimed; only
// push -> ring -> decode is timed.
//
// CI: scripts/bench_gate.sh runs a short smoke slice (--sph=8); the
// nightly TSan lane runs a fuller day with --min-realtime=0 (sanitizer
// timing is not a perf statement) and records p99 into the run registry.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "core/decode_pipeline.hpp"
#include "core/framing.hpp"
#include "core/scenario.hpp"
#include "lte/enodeb.hpp"
#include "obs/alloc_probe.hpp"
#include "obs/snapshot.hpp"
#include "tag/modulator.hpp"
#include "tag/tag_controller.hpp"
#include "traffic/occupancy_model.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CarrierDay {
  cvec rx;
  cvec ambient;
  std::size_t packets_sent = 0;
};

/// Pre-generate one carrier's whole day of IQ. `site` shapes the tag's
/// hourly duty cycle; every hour keeps a >= 30% floor so no hour is
/// silent.
CarrierDay make_day(const lte::CellConfig& cell,
                    const tag::TagScheduleConfig& sched, traffic::Site site,
                    std::size_t hours, std::size_t sph,
                    std::uint64_t seed) {
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);
  tag::TagController ctl(cell, sched);
  dsp::Rng prng(seed + 1);
  const traffic::OccupancyModel activity(traffic::Technology::kWifi, site);

  CarrierDay day;
  day.rx.reserve(hours * sph * cell.samples_per_subframe());
  day.ambient.reserve(hours * sph * cell.samples_per_subframe());
  std::size_t sf = 0;
  for (std::size_t hour = 0; hour < hours; ++hour) {
    const double duty =
        0.3 + 0.7 * activity.mean_occupancy(hour % 24);
    for (std::size_t k = 0; k < sph; ++k, ++sf) {
      const auto tx = enb.next_subframe();
      const std::size_t cap = ctl.packet_raw_bits(sf);
      tag::SubframePlan plan;
      if (!ctl.is_listening_subframe(sf) && cap > 32 &&
          prng.uniform() < duty) {
        const core::PacketCodec codec(cap);
        plan = ctl.plan_subframe(
            sf, true,
            core::split_bits(codec.encode(prng.bits(codec.payload_bits())),
                             ctl.bits_per_symbol()));
        ++day.packets_sent;
      } else {
        plan = ctl.plan_subframe(sf, false, {});
      }
      const auto pattern = tag::expand_to_units(cell, plan);
      const auto scat =
          tag::apply_pattern(tx.samples, pattern, 7, cf32{1e-3f, 4e-4f});
      day.rx.insert(day.rx.end(), scat.begin(), scat.end());
      day.ambient.insert(day.ambient.end(), tx.samples.begin(),
                         tx.samples.end());
    }
  }
  return day;
}

/// Push one subframe-aligned slice of every carrier's day, throttling
/// when a ring nears capacity so the replay is lossless (drop handling
/// is exercised by the unit tests; the soak measures decode throughput).
void push_slice(core::DecodePipeline& pipe,
                const std::vector<CarrierDay>& days, std::size_t begin,
                std::size_t end, std::size_t chunk) {
  for (std::size_t pos = begin; pos < end; pos += chunk) {
    const std::size_t n = std::min(chunk, end - pos);
    for (std::size_t c = 0; c < days.size(); ++c) {
      while (pipe.ring(c).fill() + 2 >= pipe.ring(c).capacity_chunks()) {
        std::this_thread::yield();
      }
      pipe.push(c,
                std::span<const cf32>(days[c].rx).subspan(pos, n),
                std::span<const cf32>(days[c].ambient).subspan(pos, n));
    }
  }
}

/// Block until every ring is empty and the decode side has gone quiet.
void drain(const core::DecodePipeline& pipe) {
  for (;;) {
    bool empty = true;
    for (std::size_t c = 0; c < pipe.carriers(); ++c) {
      if (pipe.ring(c).fill() != 0) {
        empty = false;
        break;
      }
    }
    if (!empty) {
      std::this_thread::yield();
      continue;
    }
    // Rings are empty; wait for in-flight feeds to finish emitting.
    const std::uint64_t before = pipe.packets_decoded();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (pipe.packets_decoded() == before) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::print_header(
      "Streaming soak: 24h smart-home + mall day through DecodePipeline",
      "DESIGN.md §15 (bounded-latency always-on receiver)");
  benchutil::init_threads(argc, argv);

  std::size_t hours = 24;
  std::size_t sph = 100;       // subframes (= ms of IQ) per simulated hour
  std::size_t carriers = 2;    // smart-home + mall
  std::size_t ring_chunks = 64;
  double min_realtime = 20.0;  // 0 disables the gate (sanitizer lanes)
  std::uint64_t seed = 2020;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--hours=", 8) == 0) {
      hours = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--sph=", 6) == 0) {
      sph = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--carriers=", 11) == 0) {
      carriers = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--ring-chunks=", 14) == 0) {
      ring_chunks = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--min-realtime=", 15) == 0) {
      min_realtime = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  if (carriers < 1) carriers = 1;
  if (sph < 1) sph = 1;
  // Warmup must visit every subframe phase mod 10: the per-phase packet
  // capacities select distinct codec-cache entries and buffer sizes, and
  // any phase first seen after warmup would allocate inside the timed
  // region. Thin smoke runs (--sph < 10) therefore warm up for several
  // hours until one whole frame has passed.
  const std::size_t warmup_hours =
      (lte::kSubframesPerFrame + sph - 1) / sph;
  if (hours < warmup_hours + 1) hours = warmup_hours + 1;

  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const std::size_t spsf = cell.samples_per_subframe();

  std::printf("hours=%zu sph=%zu carriers=%zu ring=%zu chunks seed=%llu\n",
              hours, sph, carriers, ring_chunks,
              static_cast<unsigned long long>(seed));
  std::printf("IQ per carrier: %.1f s (%.1f MB rx+ambient)\n",
              1e-3 * static_cast<double>(hours * sph),
              static_cast<double>(hours * sph * spsf * 2 * sizeof(cf32)) /
                  1e6);

  // ---- untimed: pre-generate every carrier's day -------------------
  const traffic::Site sites[] = {traffic::Site::kHome, traffic::Site::kMall,
                                 traffic::Site::kOffice,
                                 traffic::Site::kOutdoor};
  std::vector<CarrierDay> days;
  std::size_t sent_total = 0;
  for (std::size_t c = 0; c < carriers; ++c) {
    days.push_back(make_day(cell, sched, sites[c % 4], hours, sph,
                            seed + 1000 * c));
    sent_total += days.back().packets_sent;
  }
  std::printf("generated %zu packets across %zu carrier(s)\n\n", sent_total,
              carriers);

  benchutil::BenchReport report("bench_soak_day", "BENCH_soak.json");
  report.params()["hours"] = static_cast<std::uint64_t>(hours);
  report.params()["sph"] = static_cast<std::uint64_t>(sph);
  report.params()["carriers"] = static_cast<std::uint64_t>(carriers);
  report.params()["seed"] = seed;

  obs::SnapshotSeries series({.capacity = 64, .every = 1});
  series.add_histogram_quantile("core.pipeline.e2e.seconds", 0.50);
  series.add_histogram_quantile("core.pipeline.e2e.seconds", 0.99);
  series.add_counter("core.stream.dropped");
  series.add_counter("core.demod.crc_ok");

  core::DecodePipeline::Config pcfg;
  for (std::size_t c = 0; c < carriers; ++c) {
    core::StreamingReceiver::Config rcfg;
    rcfg.cell = cell;
    rcfg.schedule = sched;
    pcfg.carriers.push_back(rcfg);
  }
  pcfg.ring_chunks = ring_chunks;
  pcfg.threads = benchutil::bench_threads();
  std::atomic<std::uint64_t> crc_ok{0};
  pcfg.on_packet = [&crc_ok](std::size_t, const auto& ev) {
    if (ev.result.payload.has_value()) crc_ok.fetch_add(1, std::memory_order_relaxed);
  };
  core::DecodePipeline pipe(pcfg);
  pipe.start();
  std::printf("pipeline: %zu worker(s) for %zu carrier(s)\n", pipe.threads(),
              pipe.carriers());

  // ---- warmup (grows every buffer, caches, FFT scratch) ------------
  push_slice(pipe, days, 0, warmup_hours * sph * spsf, spsf);
  drain(pipe);
  series.tick(0.0);

  // ---- remaining hours: the timed, allocation-free soak ------------
  const std::uint64_t alloc_before = obs::alloc_probe_count();
  const double t0 = wall_seconds();
  for (std::size_t hour = warmup_hours; hour < hours; ++hour) {
    push_slice(pipe, days, hour * sph * spsf, (hour + 1) * sph * spsf,
               spsf);
    if (hour + 1 < hours) series.tick(static_cast<double>(hour));
  }
  drain(pipe);
  const double wall = wall_seconds() - t0;
  const std::uint64_t alloc_delta = obs::alloc_probe_count() - alloc_before;
  series.tick(static_cast<double>(hours - 1));
  pipe.stop();

  // ---- results -----------------------------------------------------
  const double iq_seconds =  // per carrier, timed hours only
      1e-3 * static_cast<double>((hours - warmup_hours) * sph);
  const double per_carrier = iq_seconds / wall;
  // The gate is on aggregate throughput — total IQ-seconds decoded per
  // wall-second across every carrier. On a single core, N carriers each
  // run at aggregate/N; the machine's decode capacity is what bounds an
  // always-on deployment.
  const double realtime = per_carrier * static_cast<double>(carriers);
  std::uint64_t dropped = 0;
  for (std::size_t c = 0; c < carriers; ++c) {
    dropped += pipe.ring(c).dropped_samples();
  }
  const auto rep = obs::build_report("bench_soak_day");
  const double p99 =
      obs::metric_value(rep, "histograms.core.pipeline.e2e.seconds.p99")
          .value_or(0.0);
  const double p50 =
      obs::metric_value(rep, "histograms.core.pipeline.e2e.seconds.p50")
          .value_or(0.0);

  std::printf("\nsoak: %.2f s of IQ per carrier in %.2f s wall\n",
              iq_seconds, wall);
  std::printf("realtime multiple: %.1fx aggregate (%.1fx per carrier, "
              "%zu carriers concurrently)\n",
              realtime, per_carrier, carriers);
  std::printf("e2e decode latency: p50 %.3f ms, p99 %.3f ms\n", p50 * 1e3,
              p99 * 1e3);
  std::printf("packets: %zu sent, %llu crc_ok (%llu subframes demodulated), "
              "%llu samples dropped\n",
              sent_total, static_cast<unsigned long long>(crc_ok.load()),
              static_cast<unsigned long long>(pipe.packets_decoded()),
              static_cast<unsigned long long>(dropped));
  std::printf("steady-state allocations (hours %zu..%zu): %llu\n",
              warmup_hours, hours - 1,
              static_cast<unsigned long long>(alloc_delta));

  obs::json::Object& row = report.add_row();
  row["realtime_multiple"] = realtime;
  row["realtime_per_carrier"] = per_carrier;
  row["e2e_p50_s"] = p50;
  row["e2e_p99_s"] = p99;
  row["packets_sent"] = static_cast<std::uint64_t>(sent_total);
  row["packets_crc_ok"] = crc_ok.load();
  row["subframes_demodulated"] = pipe.packets_decoded();
  row["dropped_samples"] = dropped;
  row["steady_state_allocs"] = alloc_delta;
  report.extra()["snapshot"] = series.to_json();

  bool ok = true;
  if (alloc_delta != 0) {
    std::printf("FAIL: %llu heap allocation(s) after warmup — the soak "
                "steady state must allocate exactly zero\n",
                static_cast<unsigned long long>(alloc_delta));
    ok = false;
  }
  if (min_realtime > 0.0 && realtime < min_realtime) {
    std::printf("FAIL: realtime multiple %.1fx below the --min-realtime=%g "
                "gate\n",
                realtime, min_realtime);
    ok = false;
  }
  // The replay is lossless, so every sent packet reaches the decoder;
  // packets that START on a sync subframe (PSS/SSS steal two symbols)
  // decode marginally at this SNR, so allow a small CRC-miss tail — but
  // never a CRC pass the tag did not transmit.
  if (crc_ok.load() > sent_total ||
      static_cast<double>(crc_ok.load()) <
          0.95 * static_cast<double>(sent_total)) {
    std::printf("FAIL: %llu crc_ok of %zu packets sent in a lossless "
                "replay (need >= 95%% and no false positives)\n",
                static_cast<unsigned long long>(crc_ok.load()), sent_total);
    ok = false;
  }
  if (dropped != 0) {
    std::printf("FAIL: %llu samples dropped despite producer throttling\n",
                static_cast<unsigned long long>(dropped));
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
