// Micro-benchmarks (google-benchmark): the DSP substrate's hot loops —
// FFTs at every LTE size, OFDM modulation, PSS correlation — to show the
// simulator's building blocks run at practical speeds. On exit the
// observability registry is written as JSON to `LSCATTER_OBS_JSON` or,
// by default, BENCH_micro_dsp.json.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/ue_sync.hpp"
#include "obs/report.hpp"

namespace {

using namespace lscatter;

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan(n);
  dsp::Rng rng(1);
  dsp::cvec x(n);
  for (auto& v : x) v = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.forward(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(128)->Arg(512)->Arg(1536)->Arg(2048);

void BM_EnodebSubframe(benchmark::State& state) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth =
      static_cast<lte::Bandwidth>(static_cast<int>(state.range(0)));
  lte::Enodeb enb(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enb.next_subframe());
  }
}
BENCHMARK(BM_EnodebSubframe)
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz1_4))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz20));

void BM_PssSearch(benchmark::State& state) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(0);
  lte::CellSearcher searcher(cell);
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search(tx.samples));
  }
}
BENCHMARK(BM_PssSearch);

void BM_CrossCorrelate(benchmark::State& state) {
  dsp::Rng rng(2);
  dsp::cvec sig(8192);
  dsp::cvec pat(128);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::cross_correlate(sig, pat));
  }
}
BENCHMARK(BM_CrossCorrelate);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto path = lscatter::obs::write_report_from_env(
      "bench_micro_dsp", "BENCH_micro_dsp.json");
  if (path) std::printf("JSON report: %s\n", path->c_str());
  return 0;
}
