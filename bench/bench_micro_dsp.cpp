// Micro-benchmarks (google-benchmark): the DSP substrate's hot loops —
// FFTs at every LTE size, OFDM modulation, PSS correlation — to show the
// simulator's building blocks run at practical speeds. On exit the
// observability registry is written as JSON to `LSCATTER_OBS_JSON` or,
// by default, BENCH_micro_dsp.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/simd.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/qam.hpp"
#include "lte/resource_grid.hpp"
#include "lte/ue_sync.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace {

using namespace lscatter;

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan(n);
  dsp::Rng rng(1);
  dsp::cvec x(n);
  for (auto& v : x) v = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.forward(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(128)->Arg(512)->Arg(1536)->Arg(2048);

// The allocation-free path: in-place transform through a caller-owned
// Workspace. The gap between this and BM_FftForward is the allocator +
// conversion tax the _into APIs remove (DESIGN.md §10).
void BM_FftForwardWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan(n);
  dsp::FftPlan::Workspace ws = plan.make_workspace();
  dsp::Rng rng(1);
  dsp::cvec pristine(n);
  for (auto& v : pristine) v = rng.complex_normal();
  dsp::cvec x(n);
  for (auto _ : state) {
    // Refresh the buffer each iteration: transforming the transform's
    // output over and over drives the magnitudes to inf and the float
    // ops off the fast path.
    std::copy(pristine.begin(), pristine.end(), x.begin());
    plan.forward_inplace(x, ws);
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftForwardWorkspace)->Arg(512)->Arg(1536)->Arg(2048);

void BM_EnodebSubframe(benchmark::State& state) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth =
      static_cast<lte::Bandwidth>(static_cast<int>(state.range(0)));
  lte::Enodeb enb(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enb.next_subframe());
  }
}
BENCHMARK(BM_EnodebSubframe)
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz1_4))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz20));

void BM_PssSearch(benchmark::State& state) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(0);
  lte::CellSearcher searcher(cell);
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search(tx.samples));
  }
}
BENCHMARK(BM_PssSearch);

// Naive vs FFT correlation on the same input. Arg is the pattern length;
// 512 is the PSS-replica length at 5 MHz (the cell-search hot case), 128
// matches the historical micro-bench. Signal length is one 5 MHz
// subframe (7680 samples at 7.68 Msps).
void BM_CrossCorrelate(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(2);
  dsp::cvec sig(7680);
  dsp::cvec pat(m);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::cross_correlate(sig, pat));
  }
}
BENCHMARK(BM_CrossCorrelate)->Arg(128)->Arg(512);

void BM_FastCorrelate(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(2);
  dsp::cvec sig(7680);
  dsp::cvec pat(m);
  dsp::cvec out(sig.size() - pat.size() + 1);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  for (auto _ : state) {
    dsp::fast_correlate_into(sig, pat, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FastCorrelate)->Arg(128)->Arg(512);

// One full subframe through the allocation-free OFDM path: grid ->
// modulate_into -> demodulate_into. This is the per-drop inner loop of
// every Monte-Carlo bench, and the headline number for the ≥2× round-trip
// acceptance gate. 10 MHz numerology (K = 1024, 600 subcarriers).
void BM_OfdmRoundTrip(benchmark::State& state) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz10;
  lte::ResourceGrid grid(cell);
  dsp::Rng rng(3);
  for (std::size_t l = 0; l < grid.n_symbols(); ++l)
    for (auto& re : grid.symbol(l)) re = rng.complex_normal();
  lte::OfdmModulator mod(cell);
  lte::OfdmDemodulator demod(cell);
  dsp::cvec samples(cell.samples_per_subframe());
  lte::ResourceGrid rx(cell);
  for (auto _ : state) {
    mod.modulate_into(grid, samples);
    demod.demodulate_into(samples, rx);
    benchmark::DoNotOptimize(rx.symbol(0).data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(samples.size()));
}
BENCHMARK(BM_OfdmRoundTrip);

// The batched demodulation path: N subframes through one
// demodulate_batch_into call sharing a single FFT workspace. The gap to
// N separate demodulate_into calls is the per-call scratch/plan overhead
// the batch API removes.
void BM_OfdmDemodBatch(benchmark::State& state) {
  const auto nbatch = static_cast<std::size_t>(state.range(0));
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz10;
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  lte::Enodeb enb(ecfg);
  dsp::cvec samples;
  for (std::size_t b = 0; b < nbatch; ++b) {
    const auto tx = enb.next_subframe();
    samples.insert(samples.end(), tx.samples.begin(), tx.samples.end());
  }
  lte::OfdmDemodulator demod(cell);
  dsp::FftPlan::Workspace ws = demod.plan().make_workspace();
  std::vector<lte::ResourceGrid> grids(nbatch, lte::ResourceGrid(cell));
  for (auto _ : state) {
    demod.demodulate_batch_into(samples, grids, ws);
    benchmark::DoNotOptimize(grids.front().symbol(0).data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(samples.size()));
}
BENCHMARK(BM_OfdmDemodBatch)->Arg(1)->Arg(8);

// ---------------------------------------------------------------------
// Scalar-vs-SIMD speedups (DESIGN.md §14). Each workload is timed
// best-of-N at the scalar tier and at the best tier the host supports;
// the ratios land in fixed-name gauges so the run registry can trend
// them and `lscatter-obs regress` can gate them:
//
//   dsp.simd.tier                      best tier (0 scalar, 1 sse2, 2 avx2)
//   dsp.simd.speedup.fft1024           1024-pt forward FFT (workspace path)
//   dsp.simd.speedup.corr_mac512       direct correlation, 512-tap pattern
//   dsp.simd.speedup.qam_demap64       64-QAM hard-decision demap
//   dsp.simd.speedup.ofdm_round_trip   10 MHz subframe mod + batch demod
//
// On a scalar-only host every ratio is 1.0 by construction, so the
// gauges stay comparable across machines.

template <typename F>
double best_seconds(F&& body, int reps) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    body();
    const std::chrono::duration<double> dt = clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

template <typename F>
double tier_speedup(F&& body, int reps) {
  dsp::set_simd_tier(dsp::SimdTier::kScalar);
  body();  // warm caches and thread-local scratch before timing
  const double scalar_s = best_seconds(body, reps);
  dsp::set_simd_tier(dsp::simd_best_supported());
  body();
  const double simd_s = best_seconds(body, reps);
  return simd_s > 0.0 ? scalar_s / simd_s : 1.0;
}

void record_simd_speedups() {
  const dsp::SimdTier best = dsp::simd_best_supported();
  const dsp::SimdTier prev = dsp::simd_tier();
  dsp::Rng rng(11);

  // 1024-pt forward FFT through the allocation-free workspace path.
  dsp::FftPlan plan(1024);
  dsp::FftPlan::Workspace ws = plan.make_workspace();
  dsp::cvec fft_src(1024), fft_buf(1024);
  for (auto& v : fft_src) v = rng.complex_normal();
  const double fft_speedup = tier_speedup(
      [&] {
        for (int k = 0; k < 200; ++k) {
          std::copy(fft_src.begin(), fft_src.end(), fft_buf.begin());
          plan.forward_inplace(fft_buf, ws);
          benchmark::DoNotOptimize(fft_buf.data());
        }
      },
      5);

  // Direct correlation MACs: 512-tap pattern over a 5 MHz subframe.
  dsp::cvec sig(7680), pat(512);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  dsp::cvec corr_out(sig.size() - pat.size() + 1);
  const double corr_speedup = tier_speedup(
      [&] {
        dsp::cross_correlate_into(sig, pat, corr_out);
        benchmark::DoNotOptimize(corr_out.data());
      },
      5);

  // 64-QAM hard decisions over ~100k symbols.
  const std::size_t nsym = 100000;
  std::vector<std::uint8_t> bits(nsym * 6);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u32() & 1);
  dsp::cvec sym(nsym);
  lte::qam_modulate_into(bits, lte::Modulation::kQam64, sym);
  for (auto& v : sym) v += rng.complex_normal(0.03);
  const double qam_speedup = tier_speedup(
      [&] {
        lte::qam_demodulate_into(sym, lte::Modulation::kQam64, bits);
        benchmark::DoNotOptimize(bits.data());
      },
      5);

  // Full 10 MHz subframe round trip: modulate + batch demodulate.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz10;
  lte::ResourceGrid grid(cell);
  for (std::size_t l = 0; l < grid.n_symbols(); ++l)
    for (auto& re : grid.symbol(l)) re = rng.complex_normal();
  lte::OfdmModulator mod(cell);
  lte::OfdmDemodulator demod(cell);
  dsp::FftPlan::Workspace dws = demod.plan().make_workspace();
  dsp::cvec samples(cell.samples_per_subframe());
  std::vector<lte::ResourceGrid> rx(1, lte::ResourceGrid(cell));
  const double rt_speedup = tier_speedup(
      [&] {
        for (int k = 0; k < 20; ++k) {
          mod.modulate_into(grid, samples);
          demod.demodulate_batch_into(samples, rx, dws);
          benchmark::DoNotOptimize(rx.front().symbol(0).data());
        }
      },
      5);

  dsp::set_simd_tier(prev);

  LSCATTER_OBS_GAUGE_SET("dsp.simd.tier", static_cast<double>(best));
  LSCATTER_OBS_GAUGE_SET("dsp.simd.speedup.fft1024", fft_speedup);
  LSCATTER_OBS_GAUGE_SET("dsp.simd.speedup.corr_mac512", corr_speedup);
  LSCATTER_OBS_GAUGE_SET("dsp.simd.speedup.qam_demap64", qam_speedup);
  LSCATTER_OBS_GAUGE_SET("dsp.simd.speedup.ofdm_round_trip", rt_speedup);

  std::printf("\nSIMD speedups (scalar -> %s):\n",
              dsp::to_string(best));
  std::printf("  fft1024         %6.2fx\n", fft_speedup);
  std::printf("  corr_mac512     %6.2fx\n", corr_speedup);
  std::printf("  qam_demap64     %6.2fx\n", qam_speedup);
  std::printf("  ofdm_round_trip %6.2fx\n", rt_speedup);
}

// Per-tier google-benchmark rows for the dispatch-sensitive kernels —
// registered only for tiers the host supports, so the row set is exactly
// the tiers that can run (a forced-scalar CI lane gets scalar-only rows).
void register_tier_benchmarks() {
  for (const dsp::SimdTier t :
       {dsp::SimdTier::kScalar, dsp::SimdTier::kSse2,
        dsp::SimdTier::kAvx2}) {
    if (!dsp::simd_tier_supported(t)) continue;
    const std::string suffix = dsp::to_string(t);

    benchmark::RegisterBenchmark(
        ("BM_FftForwardWorkspace1024/" + suffix).c_str(),
        [t](benchmark::State& state) {
          const dsp::SimdTier prev = dsp::simd_tier();
          dsp::set_simd_tier(t);
          dsp::FftPlan plan(1024);
          dsp::FftPlan::Workspace ws = plan.make_workspace();
          dsp::Rng rng(1);
          dsp::cvec src(1024), buf(1024);
          for (auto& v : src) v = rng.complex_normal();
          for (auto _ : state) {
            std::copy(src.begin(), src.end(), buf.begin());
            plan.forward_inplace(buf, ws);
            benchmark::DoNotOptimize(buf.data());
            benchmark::ClobberMemory();
          }
          dsp::set_simd_tier(prev);
        });

    benchmark::RegisterBenchmark(
        ("BM_CrossCorrelate512/" + suffix).c_str(),
        [t](benchmark::State& state) {
          const dsp::SimdTier prev = dsp::simd_tier();
          dsp::set_simd_tier(t);
          dsp::Rng rng(2);
          dsp::cvec sig(7680), pat(512);
          for (auto& v : sig) v = rng.complex_normal();
          for (auto& v : pat) v = rng.complex_normal();
          dsp::cvec out(sig.size() - pat.size() + 1);
          for (auto _ : state) {
            dsp::cross_correlate_into(sig, pat, out);
            benchmark::DoNotOptimize(out.data());
            benchmark::ClobberMemory();
          }
          dsp::set_simd_tier(prev);
        });

    benchmark::RegisterBenchmark(
        ("BM_QamDemap64/" + suffix).c_str(),
        [t](benchmark::State& state) {
          const dsp::SimdTier prev = dsp::simd_tier();
          dsp::set_simd_tier(t);
          dsp::Rng rng(4);
          const std::size_t nsym = 10000;
          std::vector<std::uint8_t> bits(nsym * 6);
          for (auto& b : bits)
            b = static_cast<std::uint8_t>(rng.next_u32() & 1);
          dsp::cvec sym(nsym);
          lte::qam_modulate_into(bits, lte::Modulation::kQam64, sym);
          for (auto _ : state) {
            lte::qam_demodulate_into(sym, lte::Modulation::kQam64, bits);
            benchmark::DoNotOptimize(bits.data());
            benchmark::ClobberMemory();
          }
          dsp::set_simd_tier(prev);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_tier_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  record_simd_speedups();
  const auto path = lscatter::obs::write_report_from_env(
      "bench_micro_dsp", "BENCH_micro_dsp.json");
  if (path) std::printf("JSON report: %s\n", path->c_str());
  return 0;
}
