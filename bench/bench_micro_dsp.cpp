// Micro-benchmarks (google-benchmark): the DSP substrate's hot loops —
// FFTs at every LTE size, OFDM modulation, PSS correlation — to show the
// simulator's building blocks run at practical speeds. On exit the
// observability registry is written as JSON to `LSCATTER_OBS_JSON` or,
// by default, BENCH_micro_dsp.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/resource_grid.hpp"
#include "lte/ue_sync.hpp"
#include "obs/report.hpp"

namespace {

using namespace lscatter;

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan(n);
  dsp::Rng rng(1);
  dsp::cvec x(n);
  for (auto& v : x) v = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.forward(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(128)->Arg(512)->Arg(1536)->Arg(2048);

// The allocation-free path: in-place transform through a caller-owned
// Workspace. The gap between this and BM_FftForward is the allocator +
// conversion tax the _into APIs remove (DESIGN.md §10).
void BM_FftForwardWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan(n);
  dsp::FftPlan::Workspace ws = plan.make_workspace();
  dsp::Rng rng(1);
  dsp::cvec pristine(n);
  for (auto& v : pristine) v = rng.complex_normal();
  dsp::cvec x(n);
  for (auto _ : state) {
    // Refresh the buffer each iteration: transforming the transform's
    // output over and over drives the magnitudes to inf and the float
    // ops off the fast path.
    std::copy(pristine.begin(), pristine.end(), x.begin());
    plan.forward_inplace(x, ws);
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftForwardWorkspace)->Arg(512)->Arg(1536)->Arg(2048);

void BM_EnodebSubframe(benchmark::State& state) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth =
      static_cast<lte::Bandwidth>(static_cast<int>(state.range(0)));
  lte::Enodeb enb(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enb.next_subframe());
  }
}
BENCHMARK(BM_EnodebSubframe)
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz1_4))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz20));

void BM_PssSearch(benchmark::State& state) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(0);
  lte::CellSearcher searcher(cell);
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search(tx.samples));
  }
}
BENCHMARK(BM_PssSearch);

// Naive vs FFT correlation on the same input. Arg is the pattern length;
// 512 is the PSS-replica length at 5 MHz (the cell-search hot case), 128
// matches the historical micro-bench. Signal length is one 5 MHz
// subframe (7680 samples at 7.68 Msps).
void BM_CrossCorrelate(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(2);
  dsp::cvec sig(7680);
  dsp::cvec pat(m);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::cross_correlate(sig, pat));
  }
}
BENCHMARK(BM_CrossCorrelate)->Arg(128)->Arg(512);

void BM_FastCorrelate(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(2);
  dsp::cvec sig(7680);
  dsp::cvec pat(m);
  dsp::cvec out(sig.size() - pat.size() + 1);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  for (auto _ : state) {
    dsp::fast_correlate_into(sig, pat, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FastCorrelate)->Arg(128)->Arg(512);

// One full subframe through the allocation-free OFDM path: grid ->
// modulate_into -> demodulate_into. This is the per-drop inner loop of
// every Monte-Carlo bench, and the headline number for the ≥2× round-trip
// acceptance gate. 10 MHz numerology (K = 1024, 600 subcarriers).
void BM_OfdmRoundTrip(benchmark::State& state) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz10;
  lte::ResourceGrid grid(cell);
  dsp::Rng rng(3);
  for (std::size_t l = 0; l < grid.n_symbols(); ++l)
    for (auto& re : grid.symbol(l)) re = rng.complex_normal();
  lte::OfdmModulator mod(cell);
  lte::OfdmDemodulator demod(cell);
  dsp::cvec samples(cell.samples_per_subframe());
  lte::ResourceGrid rx(cell);
  for (auto _ : state) {
    mod.modulate_into(grid, samples);
    demod.demodulate_into(samples, rx);
    benchmark::DoNotOptimize(rx.symbol(0).data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(samples.size()));
}
BENCHMARK(BM_OfdmRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto path = lscatter::obs::write_report_from_env(
      "bench_micro_dsp", "BENCH_micro_dsp.json");
  if (path) std::printf("JSON report: %s\n", path->c_str());
  return 0;
}
