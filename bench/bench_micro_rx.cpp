// Micro-benchmarks (google-benchmark): the LScatter receive pipeline —
// per-packet demodulation (preamble search + phase elimination + slicing)
// and the tag's analog front end — to quantify simulator throughput.

#include <benchmark/benchmark.h>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "tag/analog_frontend.hpp"
#include "tag/modulator.hpp"

namespace {

using namespace lscatter;

void BM_LscatterPacketDemod(benchmark::State& state) {
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome);
  cfg.enodeb.cell.bandwidth =
      static_cast<lte::Bandwidth>(static_cast<int>(state.range(0)));
  const auto& cell = cfg.enodeb.cell;
  lte::Enodeb enb(cfg.enodeb);
  tag::TagController ctl(cell, cfg.schedule);
  core::LscatterDemodulator demod(cell, cfg.schedule, cfg.search);

  const auto tx = enb.make_subframe(1);
  const std::size_t cap = ctl.packet_raw_bits(1);
  const core::PacketCodec codec(cap);
  dsp::Rng rng(3);
  const auto payload = rng.bits(codec.payload_bits());
  const auto chunks =
      core::split_bits(codec.encode(payload), ctl.bits_per_symbol());
  const auto plan = ctl.plan_subframe(1, true, chunks);
  const auto pattern = tag::expand_to_units(cell, plan);
  const auto rx =
      tag::apply_pattern(tx.samples, pattern, 17, dsp::cf32{1e-3f, 2e-4f});

  for (auto _ : state) {
    benchmark::DoNotOptimize(demod.demodulate_packet(rx, tx.samples, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cap));
}
BENCHMARK(BM_LscatterPacketDemod)
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz1_4))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz5))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz20));

void BM_AnalogFrontend20ms(benchmark::State& state) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz20;
  lte::Enodeb enb(ecfg);
  dsp::cvec s;
  for (int sf = 0; sf < 20; ++sf) {
    const auto tx = enb.next_subframe();
    s.insert(s.end(), tx.samples.begin(), tx.samples.end());
  }
  for (auto _ : state) {
    tag::AnalogFrontend fe({}, ecfg.cell.sample_rate_hz());
    benchmark::DoNotOptimize(fe.process(s));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_AnalogFrontend20ms);

void BM_LinkSimulatorSubframe(benchmark::State& state) {
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome);
  core::LinkSimulator sim(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(2));
  }
}
BENCHMARK(BM_LinkSimulatorSubframe);

}  // namespace

BENCHMARK_MAIN();
