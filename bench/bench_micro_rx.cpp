// Micro-benchmarks (google-benchmark): the LScatter receive pipeline —
// per-packet demodulation (preamble search + phase elimination + slicing),
// the tag's analog front end, and the tag-side PSS sync detector — to
// quantify simulator throughput. On exit the observability registry
// (per-stage demod timings, tag sync counters) is written as JSON to
// `LSCATTER_OBS_JSON` or, by default, BENCH_micro_rx.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "core/streaming_receiver.hpp"
#include "obs/report.hpp"
#include "tag/analog_frontend.hpp"
#include "tag/modulator.hpp"
#include "tag/sync_detector.hpp"

namespace {

using namespace lscatter;

void BM_LscatterPacketDemod(benchmark::State& state) {
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome);
  cfg.enodeb.cell.bandwidth =
      static_cast<lte::Bandwidth>(static_cast<int>(state.range(0)));
  const auto& cell = cfg.enodeb.cell;
  lte::Enodeb enb(cfg.enodeb);
  tag::TagController ctl(cell, cfg.schedule);
  core::LscatterDemodulator demod(cell, cfg.schedule, cfg.search);

  const auto tx = enb.make_subframe(1);
  const std::size_t cap = ctl.packet_raw_bits(1);
  const core::PacketCodec codec(cap);
  dsp::Rng rng(3);
  const auto payload = rng.bits(codec.payload_bits());
  const auto chunks =
      core::split_bits(codec.encode(payload), ctl.bits_per_symbol());
  const auto plan = ctl.plan_subframe(1, true, chunks);
  const auto pattern = tag::expand_to_units(cell, plan);
  const auto rx =
      tag::apply_pattern(tx.samples, pattern, 17, dsp::cf32{1e-3f, 2e-4f});

  for (auto _ : state) {
    benchmark::DoNotOptimize(demod.demodulate_packet(rx, tx.samples, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cap));
}
BENCHMARK(BM_LscatterPacketDemod)
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz1_4))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz5))
    ->Arg(static_cast<int>(lte::Bandwidth::kMHz20));

void BM_AnalogFrontend20ms(benchmark::State& state) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz20;
  lte::Enodeb enb(ecfg);
  dsp::cvec s;
  for (int sf = 0; sf < 20; ++sf) {
    const auto tx = enb.next_subframe();
    s.insert(s.end(), tx.samples.begin(), tx.samples.end());
  }
  for (auto _ : state) {
    tag::AnalogFrontend fe({}, ecfg.cell.sample_rate_hz());
    benchmark::DoNotOptimize(fe.process(s));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_AnalogFrontend20ms);

void BM_SyncDetectorFeed(benchmark::State& state) {
  // 200 ms of comparator edges: the 5 ms PSS cadence with realistic
  // jitter, plus comparator chatter (caught by the refractory window) and
  // data-symbol false alarms (rejected by cadence tracking).
  dsp::Rng rng(7);
  std::vector<double> edges;
  for (int k = 0; k < 40; ++k) {
    const double t = 5e-3 * k + 30e-6 + rng.normal(0.0, 5e-6);
    edges.push_back(t);
    if (k % 3 == 0) edges.push_back(t + 0.4e-3);  // chatter
    if (k % 5 == 0) edges.push_back(t + 2.6e-3);  // false alarm
  }
  std::sort(edges.begin(), edges.end());
  for (auto _ : state) {
    tag::SyncDetector det({});
    det.feed_edges(edges);
    benchmark::DoNotOptimize(det.last_pss_estimate_s());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_SyncDetectorFeed);

// Cold-start frame acquisition on an unaligned stream: the PSS/SSS cell
// search (the fast_normalized_correlation_batch_into matched-filter bank
// over all three PSS replicas) plus the buffered carve-up. One iteration
// feeds a full frame + slack with a half-subframe misalignment, so the
// searcher must actually find the boundary each time.
void BM_StreamingAcquire(benchmark::State& state) {
  core::StreamingReceiver::Config cfg;
  cfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  cfg.acquire_alignment = true;
  lte::Enodeb::Config ecfg;
  ecfg.cell = cfg.cell;
  lte::Enodeb enb(ecfg);
  dsp::cvec stream;
  for (int sf = 0; sf < 12; ++sf) {
    const auto tx = enb.next_subframe();
    stream.insert(stream.end(), tx.samples.begin(), tx.samples.end());
  }
  // Misalign by half a subframe so acquisition has real work to do.
  const std::size_t skew = cfg.cell.samples_per_subframe() / 2;
  const std::span<const dsp::cf32> rx(stream.data() + skew,
                                      stream.size() - skew);
  for (auto _ : state) {
    core::StreamingReceiver receiver(cfg);
    benchmark::DoNotOptimize(receiver.feed(rx, rx));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rx.size()));
}
BENCHMARK(BM_StreamingAcquire);

void BM_LinkSimulatorSubframe(benchmark::State& state) {
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome);
  core::LinkSimulator sim(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(2));
  }
}
BENCHMARK(BM_LinkSimulatorSubframe);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto path = lscatter::obs::write_report_from_env(
      "bench_micro_rx", "BENCH_micro_rx.json");
  if (path) std::printf("JSON report: %s\n", path->c_str());
  return 0;
}
