// Micro-benchmark for the parallel Monte-Carlo drop engine
// (core/sim_pool.hpp): wall-clock of the same fixed drop sweep at 1, 2,
// 4, and 8 workers, the serial-relative speedup at each count, and a
// bit-identical cross-check of every parallel run against the serial
// one. On exit the registry is written as JSON to `LSCATTER_OBS_JSON`
// or, by default, BENCH_micro_pool.json — gauge `core.pool.speedup_4t`
// is the headline number (>= 2x expected on >= 4 hardware threads; on
// fewer cores the sweep still must stay bit-identical, just not
// faster). Methodology: EXPERIMENTS.md "sim-pool speedup".
//
// Usage: bench_micro_pool [--drops=N] [--subframes=N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/sim_pool.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"

namespace {

std::size_t flag_value(int argc, char** argv, const char* name,
                       std::size_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      const long v = std::strtol(argv[i] + len + 1, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::print_header("Micro: sim-pool serial vs parallel drop sweep",
                          "DESIGN.md §9 (not a paper figure)");
  const std::uint64_t seed = 4242;
  const std::size_t drops = flag_value(argc, argv, "--drops", 8);
  const std::size_t subframes = flag_value(argc, argv, "--subframes", 6);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("seed=%llu, %zu drops x %zu subframes, smart-home 5 MHz, "
              "%u hardware threads\n\n",
              static_cast<unsigned long long>(seed), drops, subframes, hw);

  core::ScenarioOptions opt;
  opt.bandwidth = lte::Bandwidth::kMHz5;
  opt.seed = seed;
  const core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);

  benchutil::BenchReport report("bench_micro_pool", "BENCH_micro_pool.json");
  report.params()["seed"] = static_cast<std::uint64_t>(seed);
  report.params()["drops"] = static_cast<std::uint64_t>(drops);
  report.params()["subframes"] = static_cast<std::uint64_t>(subframes);
  report.params()["hardware_threads"] = static_cast<std::uint64_t>(hw);

  // Warm the FFT plan cache and page in the binary off the clock.
  (void)core::run_drops_parallel(cfg, 1, 1, 1);

  std::printf("%8s %12s %9s %10s\n", "threads", "wall (s)", "speedup",
              "identical");
  core::DropSweep serial;
  double serial_s = 0.0;
  bool all_identical = true;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    // Best of two runs: drops the one-off cost of spawning the team on a
    // loaded machine without burning bench time on long repetitions.
    double best_s = 0.0;
    core::DropSweep sweep;
    for (int rep = 0; rep < 2; ++rep) {
      obs::Stopwatch clock;
      clock.start();
      sweep = core::run_drops_parallel(cfg, drops, subframes, threads);
      clock.stop();
      if (rep == 0 || clock.elapsed_s() < best_s) best_s = clock.elapsed_s();
    }
    if (threads == 1) {
      serial = sweep;
      serial_s = best_s;
    }
    const bool identical = sweep.total == serial.total &&
                           sweep.throughputs_bps == serial.throughputs_bps;
    all_identical = all_identical && identical;
    const double speedup = best_s > 0.0 ? serial_s / best_s : 0.0;
    std::printf("%8zu %12.3f %8.2fx %10s\n", threads, best_s, speedup,
                identical ? "yes" : "NO");

    obs::json::Object& row = report.add_row();
    row["threads"] = static_cast<std::uint64_t>(threads);
    row["wall_seconds"] = best_s;
    row["speedup_vs_serial"] = speedup;
    row["identical_to_serial"] = identical;
    if (threads == 1) {
      LSCATTER_OBS_GAUGE_SET("core.pool.bench.serial_seconds", best_s);
    } else if (threads == 2) {
      LSCATTER_OBS_GAUGE_SET("core.pool.speedup_2t", speedup);
    } else if (threads == 4) {
      LSCATTER_OBS_GAUGE_SET("core.pool.speedup_4t", speedup);
    } else {
      LSCATTER_OBS_GAUGE_SET("core.pool.speedup_8t", speedup);
    }
  }

  std::printf("\nserial vs parallel bit-identical : %s\n",
              all_identical ? "yes" : "NO");
  if (!all_identical) {
    std::fprintf(stderr, "bench_micro_pool: determinism violation\n");
    return 1;
  }
  return 0;
}
