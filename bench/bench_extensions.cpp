// Library extensions beyond the paper's evaluation (all flagged as such):
//   A. multi-tag TDMA: per-tag and aggregate throughput vs slot count,
//      plus the collision/capture case that motivates slotting
//   B. ambient reconstruction: genie vs decode-and-regenerate UE
//   C. FEC: uncoded vs rate-1/2 convolutional at increasing distance

#include <cstdio>

#include "bench_common.hpp"
#include "core/multi_tag.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::init_threads(argc, argv);
  benchutil::print_header("Extensions: multi-tag / reconstruction / FEC",
                          "library extensions (DESIGN.md §6)");
  const std::uint64_t seed = 888;
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  // The multi-tag sections populate the per-tag labeled counters
  // (core.multi_tag.packets_ok{tag=N} etc., DESIGN.md §12), so this
  // bench's report is the reference artifact for the label surface.
  benchutil::BenchReport report("bench_extensions",
                                "BENCH_extensions.json");
  report.params()["seed"] = seed;

  std::printf("--- A. multi-tag TDMA (smart home, tags at 3-6 ft) ---\n");
  std::printf("%7s %7s %16s %16s\n", "slots", "tags", "per-tag (Mbps)",
              "aggregate (Mbps)");
  for (const std::size_t n : {1u, 2u, 4u}) {
    core::MultiTagConfig cfg;
    cfg.base = core::make_scenario(core::Scene::kSmartHome, {.seed = seed});
    cfg.base.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
    cfg.n_slots = n;
    for (std::size_t i = 0; i < n; ++i) {
      cfg.tags.push_back({{3.0 + static_cast<double>(i), 3.0, -1.0}, i});
    }
    const auto res = core::run_multi_tag(cfg, 20);
    double per_tag = 0.0;
    for (const auto& p : res.per_tag) {
      per_tag += p.metrics.throughput_bps() /
                 static_cast<double>(res.per_tag.size());
    }
    std::printf("%7zu %7zu %16.2f %16.2f\n", n, n, per_tag / 1e6,
                res.aggregate_throughput_bps() / 1e6);
  }
  {
    core::MultiTagConfig cfg;
    cfg.base = core::make_scenario(core::Scene::kSmartHome, {.seed = seed});
    cfg.base.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
    cfg.n_slots = 1;
    cfg.tags.push_back({{3.0, 3.0, -1.0}, 0});
    cfg.tags.push_back({{4.0, 4.0, -1.0}, 0});  // collision
    const auto res = core::run_multi_tag(cfg, 20);
    std::printf("collision (2 tags, 1 slot): BER %.2e / %.2e, PDR %.2f / "
                "%.2f — capture effect;\nslot assignment is what makes "
                "dense deployments work\n\n",
                res.per_tag[0].metrics.ber(), res.per_tag[1].metrics.ber(),
                res.per_tag[0].metrics.packet_delivery_ratio(),
                res.per_tag[1].metrics.packet_delivery_ratio());
  }

  std::printf("--- B. ambient source: genie vs reconstructed vs blind ---\n");
  std::printf("%16s %14s %10s\n", "ambient", "tput (Mbps)", "BER");
  const core::AmbientSource sources[] = {
      core::AmbientSource::kGenie, core::AmbientSource::kReconstructed,
      core::AmbientSource::kBlind};
  const char* names[] = {"genie", "reconstructed", "blind (DCI)"};
  for (int i = 0; i < 3; ++i) {
    core::LinkConfig cfg =
        core::make_scenario(core::Scene::kSmartHome, {.seed = seed + 1});
    cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
    cfg.ambient = sources[i];
    const auto p = benchutil::run_drops(cfg, 4, 10);
    std::printf("%16s %14.2f %10.2e\n", names[i],
                p.mean_throughput_bps / 1e6, p.ber);
  }
  std::printf("(blind = the UE derives everything — RE layout, MCS, known "
              "signals — from its own\n PSS/SSS/PBCH/PDCCH decode; the "
              "paper's record-and-playback genie is a fair proxy)\n\n");

  std::printf("--- C. FEC at increasing range (full-subframe packets) ---\n");
  std::printf("%7s | %12s %8s | %12s %8s\n", "d2(ft)", "uncoded Mbps",
              "PDR", "conv Mbps", "PDR");
  for (const double d : {6.0, 12.0, 16.0, 20.0}) {
    double tput[2];
    double pdr[2];
    for (const bool coded : {false, true}) {
      core::LinkConfig cfg = core::make_scenario(
          core::Scene::kSmartHome,
          {.seed = seed + static_cast<std::uint64_t>(d)});
      cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
      cfg.geometry.enb_tag_ft = 14.0;
      cfg.geometry.tag_ue_ft = d;
      cfg.fec = coded ? core::Fec::kConvolutional : core::Fec::kNone;
      const auto p = benchutil::run_drops(cfg, 4, 10);
      tput[coded] = p.mean_throughput_bps;
      pdr[coded] = p.pdr;
    }
    std::printf("%7.0f | %12.2f %8.2f | %12.2f %8.2f\n", d,
                tput[0] / 1e6, pdr[0], tput[1] / 1e6, pdr[1]);
  }
  std::printf("(rate 1/2 halves the ceiling but keeps CRC-clean packets "
              "flowing well past the\n point where uncoded full-subframe "
              "packets die — complementary to repetition)\n\n");

  std::printf("--- D. frequency-selective channel + per-subcarrier "
              "equalization (paper §3.3.1) ---\n");
  std::printf("%22s %14s %10s\n", "config", "tput (Mbps)", "BER");
  struct Case {
    const char* name;
    bool selective;
    std::size_t eq_taps;
  };
  for (const Case c : {Case{"flat (DESIGN §4)", false, 0},
                       Case{"multipath, no EQ", true, 0},
                       Case{"multipath + 8-tap EQ", true, 8}}) {
    core::LinkConfig cfg =
        core::make_scenario(core::Scene::kSmartHome, {.seed = seed + 9});
    cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
    cfg.env.frequency_selective = c.selective;
    cfg.search.equalizer_taps = c.eq_taps;
    const auto p = benchutil::run_drops(cfg, 4, 8);
    std::printf("%22s %14.2f %10.2e\n", c.name,
                p.mean_throughput_bps / 1e6, p.ber);
  }
  std::printf("(per-unit BPSK cannot survive even 50 ns of delay spread "
              "raw; the preamble-trained\n frequency-domain equalizer — "
              "the paper's per-subcarrier correction — restores it)\n");
  return 0;
}
