// Figure 4: traffic comparison among LoRa, WiFi, and LTE.
//   4a: spectrogram of a WiFi channel (bursty, shared with narrowband
//       devices)
//   4b: spectrogram of an LTE band (continuous, PSS every 5 ms)
//   4c: CDF of the traffic occupancy ratio over a week, per tech x site

#include <cstdio>

#include "bench_common.hpp"
#include "dsp/rng.hpp"
#include "traffic/spectrum_survey.hpp"

int main() {
  using namespace lscatter;
  const std::uint64_t seed = 20200810;
  benchutil::print_header("Figure 4: WiFi vs LTE vs LoRa ambient traffic",
                          "paper Fig. 4a/4b/4c (§2.1)");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));
  dsp::Rng rng(seed);

  std::printf("--- Fig. 4a: WiFi channel, 20 ms (rows=time, cols=freq) ---\n");
  const auto wifi = traffic::survey_wifi(20e-3, 0.5, rng);
  std::printf("%s", wifi.render(16).c_str());
  std::printf("WiFi time occupancy over the window: %.2f\n\n",
              wifi.time_occupancy());

  std::printf("--- Fig. 4b: LTE band, 20 ms ---\n");
  const auto lte_sg = traffic::survey_lte(20e-3, rng);
  std::printf("%s", lte_sg.render(16).c_str());
  std::printf("LTE time occupancy over the window: %.2f (PSS highlighted "
              "in center cells every 5 ms)\n\n",
              lte_sg.time_occupancy());

  std::printf("--- Fig. 4c: occupancy-ratio CDF, one week ---\n");
  std::printf("%-18s", "occupancy x:");
  for (int i = 0; i <= 10; ++i) std::printf("%6.1f", 0.1 * i);
  std::printf("\n");

  const struct {
    traffic::Technology tech;
    traffic::Site site;
  } series[] = {
      {traffic::Technology::kLte, traffic::Site::kHome},
      {traffic::Technology::kWifi, traffic::Site::kOffice},
      {traffic::Technology::kWifi, traffic::Site::kClassroom},
      {traffic::Technology::kWifi, traffic::Site::kHome},
      {traffic::Technology::kLora, traffic::Site::kHome},
      {traffic::Technology::kLora, traffic::Site::kOffice},
      {traffic::Technology::kLora, traffic::Site::kClassroom},
  };
  for (const auto& s : series) {
    const auto cdf = traffic::weekly_occupancy_cdf(s.tech, s.site, rng);
    char label[48];
    std::snprintf(label, sizeof(label), "%s %s",
                  traffic::to_string(s.tech), traffic::to_string(s.site));
    std::printf("%-18s", label);
    for (int i = 0; i <= 10; ++i) {
      std::printf("%6.2f", cdf.evaluate(0.1 * i + 1e-9));
    }
    std::printf("\n");
  }

  // The §2.1 claims, as checks:
  dsp::Rng check_rng(seed + 1);
  const auto office = traffic::weekly_occupancy_cdf(
      traffic::Technology::kWifi, traffic::Site::kOffice, check_rng);
  const auto lte = traffic::weekly_occupancy_cdf(
      traffic::Technology::kLte, traffic::Site::kHome, check_rng);
  std::printf("\npaper claims -> measured:\n");
  std::printf("  office WiFi < 0.5 for 80%% of time -> P[occ<=0.5] = %.2f\n",
              office.evaluate(0.5));
  std::printf("  office WiFi < 0.7 for 90%% of time -> P[occ<=0.7] = %.2f\n",
              office.evaluate(0.7));
  std::printf("  LTE occupancy == 1.0 always        -> P[occ>=1.0] = %.2f\n",
              1.0 - lte.evaluate(0.999));
  return 0;
}
