// Figures 21a/21b/22: shopping-mall study, 10 am - 9 pm.
//   21a: WiFi backscatter throughput (best median ~55 kbps at 8 pm,
//        unstable with outliers)
//   21b: LScatter throughput (flat boxes, stable)
//   22:  occupancy ratios (WiFi peaks ~0.5 at 8 pm; LTE pegged at 1.0)

#include <cstdio>

#include "baselines/day_study.hpp"
#include "bench_common.hpp"
#include "obs/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::print_header("Figures 21a/21b/22: shopping mall, 10am-9pm",
                          "paper §4.4.1");
  benchutil::init_threads(argc, argv);

  baselines::DayStudyConfig cfg;
  cfg.scene = core::Scene::kMall;
  cfg.hour_begin = 10;
  cfg.hour_end = 22;
  cfg.samples_per_hour = 8;
  cfg.seed = 2121;
  std::printf("seed=%llu, %zu samples/hour, tag geometry %.0f/%.0f ft\n\n",
              static_cast<unsigned long long>(cfg.seed),
              cfg.samples_per_hour, 3.0, 3.0);

  benchutil::BenchReport report("bench_fig21_mall_day", "BENCH_fig21.json");
  report.params()["seed"] = static_cast<std::uint64_t>(cfg.seed);
  report.params()["samples_per_hour"] =
      static_cast<std::uint64_t>(cfg.samples_per_hour);

  // Mall-day decode latency over simulated time, mirroring fig16
  // (DESIGN.md §11).
  obs::SnapshotSeries series({.capacity = 256, .every = 1});
  series.add_histogram_quantile("core.demod.packet.seconds", 0.50);
  series.add_histogram_quantile("core.demod.packet.seconds", 0.99);
  series.add_counter("core.demod.crc_ok");
  series.add_counter("core.link.subframes");
  cfg.snapshot = &series;

  const auto results = baselines::run_day_study(cfg);

  std::printf("--- Fig. 21a: WiFi backscatter throughput (kbps) ---\n");
  std::printf("%4s %8s %8s %8s %8s %8s %9s\n", "hour", "min", "q1", "med",
              "q3", "max", "outliers");
  for (const auto& r : results) {
    const auto& b = r.wifi_backscatter_bps;
    std::printf("%4zu %8.1f %8.1f %8.1f %8.1f %8.1f %9zu\n", r.hour,
                b.min / 1e3, b.q1 / 1e3, b.median / 1e3, b.q3 / 1e3,
                b.max / 1e3, b.n_outliers);
  }

  std::printf("\n--- Fig. 21b: LScatter throughput (Mbps) ---\n");
  std::printf("%4s %8s %8s %8s %8s %8s\n", "hour", "min", "q1", "med", "q3",
              "max");
  for (const auto& r : results) {
    const auto& b = r.lscatter_bps;
    std::printf("%4zu %8.2f %8.2f %8.2f %8.2f %8.2f\n", r.hour, b.min / 1e6,
                b.q1 / 1e6, b.median / 1e6, b.q3 / 1e6, b.max / 1e6);
  }

  std::printf("\n--- Fig. 22: traffic occupancy ratio ---\n");
  std::printf("%4s %6s %6s\n", "hour", "WiFi", "LTE");
  double best_med = 0.0;
  std::size_t best_hour = 0;
  for (const auto& r : results) {
    std::printf("%4zu %6.2f %6.2f\n", r.hour, r.wifi_occupancy_mean,
                r.lte_occupancy_mean);
    if (r.wifi_backscatter_bps.median > best_med) {
      best_med = r.wifi_backscatter_bps.median;
      best_hour = r.hour;
    }
  }
  std::printf("\nbest WiFi backscatter hour: %zu:00 with median %.1f kbps "
              "(paper: 8pm, ~55 kbps at occupancy ~0.5)\n",
              best_hour, best_med / 1e3);
  std::printf("LScatter stays flat at %.2f Mbps across the whole day\n",
              baselines::mean_of_medians_lscatter(results) / 1e6);

  for (const auto& r : results) {
    obs::json::Object& row = report.add_row();
    row["hour"] = static_cast<std::uint64_t>(r.hour);
    row["wifi_median_bps"] = r.wifi_backscatter_bps.median;
    row["lscatter_median_bps"] = r.lscatter_bps.median;
    row["wifi_occupancy"] = r.wifi_occupancy_mean;
    row["lte_occupancy"] = r.lte_occupancy_mean;
  }
  report.extra()["snapshot"] = series.to_json();
  std::printf("snapshot series: %llu sample(s), %zu channel(s)\n",
              static_cast<unsigned long long>(series.total_samples()),
              series.channel_count());
  return 0;
}
