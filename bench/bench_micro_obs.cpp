// Micro-benchmark for the observability hot path: per-increment cost of
// a shared-atomic obs::Counter vs a thread-sharded obs::ShardedCounter
// (obs/sharded.hpp) at 1, 2, 4, and 8 threads. The shared counter makes
// every worker RMW one cache line, so its per-increment cost grows with
// the thread count; the sharded cells stay uncontended, so theirs must
// not. Headline gauges: `obs.bench.shared_ns_8t`, `obs.bench.sharded_ns_8t`
// and `obs.bench.sharded_speedup_8t` (the ≥5x acceptance bar lives in
// the latter; EXPERIMENTS.md "obs contention" explains how to read the
// numbers on busy or small machines). Both counters are self-checked:
// the merged value must equal threads x iters, or the bench fails.
//
// Usage: bench_micro_obs [--iters=N]

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace {

std::size_t flag_value(int argc, char** argv, const char* name,
                       std::size_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      const long long v = std::strtoll(argv[i] + len + 1, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

// One timed pass: `threads` workers each hammer `hit` iters times.
// Returns wall nanoseconds per increment (per thread — contention shows
// up as this number growing with the thread count, since the total work
// per thread is fixed).
template <typename Hit>
double timed_pass(std::size_t threads, std::size_t iters, Hit hit) {
  lscatter::obs::Stopwatch clock;
  std::vector<std::thread> team;
  team.reserve(threads);
  clock.start();
  for (std::size_t t = 0; t < threads; ++t) {
    team.emplace_back([iters, &hit] {
      for (std::size_t i = 0; i < iters; ++i) hit();
    });
  }
  for (auto& worker : team) worker.join();
  clock.stop();
  return static_cast<double>(clock.elapsed_ns()) /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lscatter;
  benchutil::print_header(
      "Micro: obs counter contention, shared atomic vs thread-sharded",
      "DESIGN.md §12 (not a paper figure)");
  const std::size_t iters = flag_value(argc, argv, "--iters", 2'000'000);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("%zu increments per thread per pass, best of 3, "
              "%u hardware threads\n\n",
              iters, hw);

  benchutil::BenchReport report("bench_micro_obs", "BENCH_micro_obs.json");
  report.params()["iters"] = static_cast<std::uint64_t>(iters);
  report.params()["hardware_threads"] = static_cast<std::uint64_t>(hw);

  obs::Counter& shared =
      obs::Registry::instance().counter("obs.bench.shared_hits");
  obs::ShardedCounter& sharded =
      obs::Registry::instance().sharded_counter("obs.bench.sharded_hits");

  std::printf("%8s %14s %14s %9s\n", "threads", "shared ns/op",
              "sharded ns/op", "ratio");
  bool totals_ok = true;
  double speedup_8t = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    double shared_ns = 0.0;
    double sharded_ns = 0.0;
    // Best of three passes per variant: keeps a background-noise spike
    // on a loaded CI machine from reading as contention.
    for (int rep = 0; rep < 3; ++rep) {
      shared.reset();
      const double a =
          timed_pass(threads, iters, [&shared] { shared.add(1); });
      totals_ok = totals_ok &&
                  shared.value() == static_cast<std::uint64_t>(threads) *
                                        static_cast<std::uint64_t>(iters);
      sharded.reset();
      const double b = timed_pass(threads, iters, [&sharded] {
        // Mirrors LSCATTER_OBS_SHARDED_COUNTER_ADD: the thread's cell is
        // resolved once, every hit is one uncontended relaxed RMW.
        thread_local std::atomic<std::uint64_t>* const cell =
            &sharded.cell();
        cell->fetch_add(1, std::memory_order_relaxed);
      });
      totals_ok = totals_ok &&
                  sharded.value() == static_cast<std::uint64_t>(threads) *
                                         static_cast<std::uint64_t>(iters);
      if (rep == 0 || a < shared_ns) shared_ns = a;
      if (rep == 0 || b < sharded_ns) sharded_ns = b;
    }
    const double ratio = sharded_ns > 0.0 ? shared_ns / sharded_ns : 0.0;
    std::printf("%8zu %14.2f %14.2f %8.2fx\n", threads, shared_ns,
                sharded_ns, ratio);

    obs::json::Object& row = report.add_row();
    row["threads"] = static_cast<std::uint64_t>(threads);
    row["shared_ns_per_inc"] = shared_ns;
    row["sharded_ns_per_inc"] = sharded_ns;
    row["shared_over_sharded"] = ratio;
    if (threads == 8) {
      speedup_8t = ratio;
      LSCATTER_OBS_GAUGE_SET("obs.bench.shared_ns_8t", shared_ns);
      LSCATTER_OBS_GAUGE_SET("obs.bench.sharded_ns_8t", sharded_ns);
      LSCATTER_OBS_GAUGE_SET("obs.bench.sharded_speedup_8t", ratio);
    } else if (threads == 1) {
      LSCATTER_OBS_GAUGE_SET("obs.bench.shared_ns_1t", shared_ns);
      LSCATTER_OBS_GAUGE_SET("obs.bench.sharded_ns_1t", sharded_ns);
    }
  }
  // The timing counters end reset-and-refilled from the last pass; zero
  // them so the report's counter section stays pass-count independent.
  shared.reset();
  sharded.reset();

  std::printf("\nmerged totals correct            : %s\n",
              totals_ok ? "yes" : "NO");
  std::printf("sharded speedup at 8 threads     : %.2fx\n", speedup_8t);
  if (!totals_ok) {
    std::fprintf(stderr, "bench_micro_obs: merge mismatch — a sharded "
                         "counter lost or duplicated increments\n");
    return 1;
  }
  return 0;
}
