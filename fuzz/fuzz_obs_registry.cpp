// Fuzz target: the run-registry line parser (obs/run_registry.hpp) must
// treat arbitrary bytes as at worst a corrupt line — never crash, hang,
// or accept a record its own writer cannot round-trip. This is the
// reader's promise in DESIGN.md §11: strict per line, lenient per file,
// so torn tails and hand edits can't brick a registry.
// Seed corpus: fuzz/corpus/obs_registry/.
//
// Built two ways (fuzz/CMakeLists.txt):
//   clang: -fsanitize=fuzzer,address  -> a real libFuzzer binary
//   gcc:   LSCATTER_FUZZ_STANDALONE  -> corpus-replay main() below

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/run_registry.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace obs = lscatter::obs;
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  const auto rec = obs::parse_record_line(line);
  if (!rec.has_value()) return 0;

  // Any line the parser accepts must survive serialize -> parse, and the
  // re-parsed provenance must match field-for-field.
  const std::string out = rec->to_json().dump(-1);
  const auto again = obs::parse_record_line(out);
  if (!again.has_value()) {
    __builtin_trap();  // accepted input, but our own output is rejected
  }
  const obs::Provenance& a = rec->provenance;
  const obs::Provenance& b = again->provenance;
  if (a.bench != b.bench || a.git_sha != b.git_sha || a.dirty != b.dirty ||
      a.config_hash != b.config_hash || a.hostname != b.hostname ||
      a.threads != b.threads) {
    __builtin_trap();  // provenance did not round-trip
  }
  return 0;
}

#ifdef LSCATTER_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("fuzz_obs_registry: replayed %d input(s), no crash\n",
              argc - 1);
  return 0;
}
#endif
