// Fuzz target: the packet decoder walks attacker-controlled on-air bits.
// Whatever the bytes, decode()/decode_soft() must either return a payload
// or nullopt — contract violations are thrown (and accepted) because the
// harness runs in throw mode; anything else is a crash. Seed corpus:
// fuzz/corpus/framing/.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"
#include "core/framing.hpp"

namespace {

// First bytes parameterize the codec, the rest become on-air bits; this
// lets the fuzzer explore FEC on/off and odd packet sizes, not just
// payload content.
struct Params {
  lscatter::core::Fec fec;
  std::size_t coded_bits;
};

Params draw_params(const std::uint8_t* data, std::size_t size) {
  Params p;
  p.fec = (data[0] & 1) ? lscatter::core::Fec::kConvolutional
                        : lscatter::core::Fec::kNone;
  // 33..~4k coded bits: below the contract floor (32) is the contract
  // test's job, and huge sizes only slow exploration down.
  p.coded_bits = 33 + (static_cast<std::size_t>(data[1]) |
                       (static_cast<std::size_t>(size > 2 ? data[2] : 0)
                        << 8)) % 4000;
  return p;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  lscatter::core::contracts::ScopedFailureMode mode(
      lscatter::core::contracts::FailureMode::kThrow);
  try {
    const Params p = draw_params(data, size);
    const lscatter::core::PacketCodec codec(p.coded_bits, p.fec);

    // Expand the remaining bytes to exactly coded_bits bits (wrapping).
    const std::uint8_t* body = data + 3;
    const std::size_t body_size = size > 3 ? size - 3 : 0;
    std::vector<std::uint8_t> coded(p.coded_bits);
    std::vector<float> soft(p.coded_bits);
    for (std::size_t i = 0; i < p.coded_bits; ++i) {
      const std::uint8_t byte =
          body_size == 0 ? 0xA5 : body[(i / 8) % body_size];
      const std::uint8_t bit = (byte >> (i % 8)) & 1;
      coded[i] = bit;
      soft[i] = bit ? 1.0f + static_cast<float>(i % 7) * 0.25f : -0.5f;
    }

    (void)codec.decode(coded);
    (void)codec.decode_soft(soft);
    (void)codec.decode_soft_bits(soft);

    // Round trip: a well-formed payload must always survive.
    std::vector<std::uint8_t> payload(codec.payload_bits());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = coded[i % coded.size()];
    }
    const auto onair = codec.encode(payload);
    const auto back = codec.decode(onair);
    if (!back.has_value() || *back != payload) {
      __builtin_trap();  // encode -> decode must be the identity
    }
  } catch (const lscatter::core::ContractViolation&) {
    // A rejected precondition is a pass: hostile input was refused loudly.
  }
  return 0;
}

#ifdef LSCATTER_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("fuzz_framing: replayed %d input(s), no crash\n", argc - 1);
  return 0;
}
#endif
