// Fuzz target: the obs JSON parser must reject or round-trip arbitrary
// bytes — never crash, hang, or produce a value its own writer cannot
// re-parse. Seed corpus: fuzz/corpus/obs_json/.
//
// Built two ways (fuzz/CMakeLists.txt):
//   clang: -fsanitize=fuzzer,address  -> a real libFuzzer binary
//   gcc:   LSCATTER_FUZZ_STANDALONE  -> corpus-replay main() below

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto v = lscatter::obs::json::parse(text);
  if (!v.has_value()) return 0;

  // Anything we accept must survive a write -> parse round trip, both
  // pretty-printed and compact.
  for (const int indent : {2, -1}) {
    const std::string out = v->dump(indent);
    const auto again = lscatter::obs::json::parse(out);
    if (!again.has_value()) {
      __builtin_trap();  // accepted input, but our own output is rejected
    }
  }
  return 0;
}

#ifdef LSCATTER_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("fuzz_obs_json: replayed %d input(s), no crash\n", argc - 1);
  return 0;
}
#endif
