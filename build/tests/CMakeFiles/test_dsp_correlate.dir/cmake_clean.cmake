file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_correlate.dir/test_dsp_correlate.cpp.o"
  "CMakeFiles/test_dsp_correlate.dir/test_dsp_correlate.cpp.o.d"
  "test_dsp_correlate"
  "test_dsp_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
