file(REMOVE_RECURSE
  "CMakeFiles/test_tag_controller.dir/test_tag_controller.cpp.o"
  "CMakeFiles/test_tag_controller.dir/test_tag_controller.cpp.o.d"
  "test_tag_controller"
  "test_tag_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
