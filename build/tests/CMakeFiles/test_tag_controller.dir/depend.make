# Empty dependencies file for test_tag_controller.
# This may be replaced when dependencies are built.
