# Empty dependencies file for test_tag_analog.
# This may be replaced when dependencies are built.
