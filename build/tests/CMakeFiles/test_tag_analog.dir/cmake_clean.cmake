file(REMOVE_RECURSE
  "CMakeFiles/test_tag_analog.dir/test_tag_analog.cpp.o"
  "CMakeFiles/test_tag_analog.dir/test_tag_analog.cpp.o.d"
  "test_tag_analog"
  "test_tag_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
