# Empty dependencies file for test_tag_power.
# This may be replaced when dependencies are built.
