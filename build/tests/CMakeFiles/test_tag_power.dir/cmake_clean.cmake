file(REMOVE_RECURSE
  "CMakeFiles/test_tag_power.dir/test_tag_power.cpp.o"
  "CMakeFiles/test_tag_power.dir/test_tag_power.cpp.o.d"
  "test_tag_power"
  "test_tag_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
