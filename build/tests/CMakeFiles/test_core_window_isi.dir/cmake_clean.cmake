file(REMOVE_RECURSE
  "CMakeFiles/test_core_window_isi.dir/test_core_window_isi.cpp.o"
  "CMakeFiles/test_core_window_isi.dir/test_core_window_isi.cpp.o.d"
  "test_core_window_isi"
  "test_core_window_isi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_window_isi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
