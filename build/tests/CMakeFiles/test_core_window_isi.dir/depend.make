# Empty dependencies file for test_core_window_isi.
# This may be replaced when dependencies are built.
