# Empty dependencies file for test_lte_signal_map.
# This may be replaced when dependencies are built.
