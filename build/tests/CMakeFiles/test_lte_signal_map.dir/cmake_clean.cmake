file(REMOVE_RECURSE
  "CMakeFiles/test_lte_signal_map.dir/test_lte_signal_map.cpp.o"
  "CMakeFiles/test_lte_signal_map.dir/test_lte_signal_map.cpp.o.d"
  "test_lte_signal_map"
  "test_lte_signal_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_signal_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
