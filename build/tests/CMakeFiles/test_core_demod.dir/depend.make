# Empty dependencies file for test_core_demod.
# This may be replaced when dependencies are built.
