file(REMOVE_RECURSE
  "CMakeFiles/test_core_demod.dir/test_core_demod.cpp.o"
  "CMakeFiles/test_core_demod.dir/test_core_demod.cpp.o.d"
  "test_core_demod"
  "test_core_demod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_demod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
