# Empty dependencies file for test_dsp_linalg.
# This may be replaced when dependencies are built.
