# Empty compiler generated dependencies file for test_lte_grid_ofdm.
# This may be replaced when dependencies are built.
