file(REMOVE_RECURSE
  "CMakeFiles/test_lte_grid_ofdm.dir/test_lte_grid_ofdm.cpp.o"
  "CMakeFiles/test_lte_grid_ofdm.dir/test_lte_grid_ofdm.cpp.o.d"
  "test_lte_grid_ofdm"
  "test_lte_grid_ofdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_grid_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
