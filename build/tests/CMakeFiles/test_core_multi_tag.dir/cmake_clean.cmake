file(REMOVE_RECURSE
  "CMakeFiles/test_core_multi_tag.dir/test_core_multi_tag.cpp.o"
  "CMakeFiles/test_core_multi_tag.dir/test_core_multi_tag.cpp.o.d"
  "test_core_multi_tag"
  "test_core_multi_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multi_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
