file(REMOVE_RECURSE
  "CMakeFiles/test_lte_pdcch.dir/test_lte_pdcch.cpp.o"
  "CMakeFiles/test_lte_pdcch.dir/test_lte_pdcch.cpp.o.d"
  "test_lte_pdcch"
  "test_lte_pdcch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_pdcch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
