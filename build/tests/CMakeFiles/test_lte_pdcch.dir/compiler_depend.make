# Empty compiler generated dependencies file for test_lte_pdcch.
# This may be replaced when dependencies are built.
