file(REMOVE_RECURSE
  "CMakeFiles/test_lte_sequences.dir/test_lte_sequences.cpp.o"
  "CMakeFiles/test_lte_sequences.dir/test_lte_sequences.cpp.o.d"
  "test_lte_sequences"
  "test_lte_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
