# Empty compiler generated dependencies file for test_lte_sequences.
# This may be replaced when dependencies are built.
