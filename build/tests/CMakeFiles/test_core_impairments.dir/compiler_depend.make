# Empty compiler generated dependencies file for test_core_impairments.
# This may be replaced when dependencies are built.
