file(REMOVE_RECURSE
  "CMakeFiles/test_core_impairments.dir/test_core_impairments.cpp.o"
  "CMakeFiles/test_core_impairments.dir/test_core_impairments.cpp.o.d"
  "test_core_impairments"
  "test_core_impairments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_impairments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
