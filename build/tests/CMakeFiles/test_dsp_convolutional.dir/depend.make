# Empty dependencies file for test_dsp_convolutional.
# This may be replaced when dependencies are built.
