file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_convolutional.dir/test_dsp_convolutional.cpp.o"
  "CMakeFiles/test_dsp_convolutional.dir/test_dsp_convolutional.cpp.o.d"
  "test_dsp_convolutional"
  "test_dsp_convolutional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_convolutional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
