# Empty dependencies file for test_tag_modulator.
# This may be replaced when dependencies are built.
