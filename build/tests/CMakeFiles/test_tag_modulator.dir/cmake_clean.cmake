file(REMOVE_RECURSE
  "CMakeFiles/test_tag_modulator.dir/test_tag_modulator.cpp.o"
  "CMakeFiles/test_tag_modulator.dir/test_tag_modulator.cpp.o.d"
  "test_tag_modulator"
  "test_tag_modulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_modulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
