file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_rng.dir/test_dsp_rng.cpp.o"
  "CMakeFiles/test_dsp_rng.dir/test_dsp_rng.cpp.o.d"
  "test_dsp_rng"
  "test_dsp_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
