file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_crc.dir/test_dsp_crc.cpp.o"
  "CMakeFiles/test_dsp_crc.dir/test_dsp_crc.cpp.o.d"
  "test_dsp_crc"
  "test_dsp_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
