# Empty dependencies file for test_dsp_crc.
# This may be replaced when dependencies are built.
