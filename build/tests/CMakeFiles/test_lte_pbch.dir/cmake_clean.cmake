file(REMOVE_RECURSE
  "CMakeFiles/test_lte_pbch.dir/test_lte_pbch.cpp.o"
  "CMakeFiles/test_lte_pbch.dir/test_lte_pbch.cpp.o.d"
  "test_lte_pbch"
  "test_lte_pbch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_pbch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
