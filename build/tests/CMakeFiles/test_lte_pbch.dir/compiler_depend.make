# Empty compiler generated dependencies file for test_lte_pbch.
# This may be replaced when dependencies are built.
