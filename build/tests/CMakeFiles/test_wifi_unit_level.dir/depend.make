# Empty dependencies file for test_wifi_unit_level.
# This may be replaced when dependencies are built.
