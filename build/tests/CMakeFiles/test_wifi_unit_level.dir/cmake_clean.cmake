file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_unit_level.dir/test_wifi_unit_level.cpp.o"
  "CMakeFiles/test_wifi_unit_level.dir/test_wifi_unit_level.cpp.o.d"
  "test_wifi_unit_level"
  "test_wifi_unit_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_unit_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
