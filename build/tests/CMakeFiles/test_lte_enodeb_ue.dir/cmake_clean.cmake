file(REMOVE_RECURSE
  "CMakeFiles/test_lte_enodeb_ue.dir/test_lte_enodeb_ue.cpp.o"
  "CMakeFiles/test_lte_enodeb_ue.dir/test_lte_enodeb_ue.cpp.o.d"
  "test_lte_enodeb_ue"
  "test_lte_enodeb_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_enodeb_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
