# Empty compiler generated dependencies file for test_lte_enodeb_ue.
# This may be replaced when dependencies are built.
