# Empty dependencies file for test_core_ambient.
# This may be replaced when dependencies are built.
