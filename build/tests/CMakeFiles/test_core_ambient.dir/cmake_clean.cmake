file(REMOVE_RECURSE
  "CMakeFiles/test_core_ambient.dir/test_core_ambient.cpp.o"
  "CMakeFiles/test_core_ambient.dir/test_core_ambient.cpp.o.d"
  "test_core_ambient"
  "test_core_ambient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ambient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
