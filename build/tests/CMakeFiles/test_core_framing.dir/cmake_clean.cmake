file(REMOVE_RECURSE
  "CMakeFiles/test_core_framing.dir/test_core_framing.cpp.o"
  "CMakeFiles/test_core_framing.dir/test_core_framing.cpp.o.d"
  "test_core_framing"
  "test_core_framing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_framing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
