# Empty compiler generated dependencies file for test_core_framing.
# This may be replaced when dependencies are built.
