# Empty dependencies file for test_lte_cellsearch.
# This may be replaced when dependencies are built.
