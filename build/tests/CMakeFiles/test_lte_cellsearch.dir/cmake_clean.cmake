file(REMOVE_RECURSE
  "CMakeFiles/test_lte_cellsearch.dir/test_lte_cellsearch.cpp.o"
  "CMakeFiles/test_lte_cellsearch.dir/test_lte_cellsearch.cpp.o.d"
  "test_lte_cellsearch"
  "test_lte_cellsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_cellsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
