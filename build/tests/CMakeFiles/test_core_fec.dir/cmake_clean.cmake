file(REMOVE_RECURSE
  "CMakeFiles/test_core_fec.dir/test_core_fec.cpp.o"
  "CMakeFiles/test_core_fec.dir/test_core_fec.cpp.o.d"
  "test_core_fec"
  "test_core_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
