# Empty compiler generated dependencies file for test_lte_qam.
# This may be replaced when dependencies are built.
