file(REMOVE_RECURSE
  "CMakeFiles/test_lte_qam.dir/test_lte_qam.cpp.o"
  "CMakeFiles/test_lte_qam.dir/test_lte_qam.cpp.o.d"
  "test_lte_qam"
  "test_lte_qam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_qam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
