file(REMOVE_RECURSE
  "liblscatter_tag.a"
)
