
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tag/analog_frontend.cpp" "src/CMakeFiles/lscatter_tag.dir/tag/analog_frontend.cpp.o" "gcc" "src/CMakeFiles/lscatter_tag.dir/tag/analog_frontend.cpp.o.d"
  "/root/repo/src/tag/modulator.cpp" "src/CMakeFiles/lscatter_tag.dir/tag/modulator.cpp.o" "gcc" "src/CMakeFiles/lscatter_tag.dir/tag/modulator.cpp.o.d"
  "/root/repo/src/tag/power_model.cpp" "src/CMakeFiles/lscatter_tag.dir/tag/power_model.cpp.o" "gcc" "src/CMakeFiles/lscatter_tag.dir/tag/power_model.cpp.o.d"
  "/root/repo/src/tag/sync_detector.cpp" "src/CMakeFiles/lscatter_tag.dir/tag/sync_detector.cpp.o" "gcc" "src/CMakeFiles/lscatter_tag.dir/tag/sync_detector.cpp.o.d"
  "/root/repo/src/tag/tag_controller.cpp" "src/CMakeFiles/lscatter_tag.dir/tag/tag_controller.cpp.o" "gcc" "src/CMakeFiles/lscatter_tag.dir/tag/tag_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
