# Empty dependencies file for lscatter_tag.
# This may be replaced when dependencies are built.
