file(REMOVE_RECURSE
  "CMakeFiles/lscatter_tag.dir/tag/analog_frontend.cpp.o"
  "CMakeFiles/lscatter_tag.dir/tag/analog_frontend.cpp.o.d"
  "CMakeFiles/lscatter_tag.dir/tag/modulator.cpp.o"
  "CMakeFiles/lscatter_tag.dir/tag/modulator.cpp.o.d"
  "CMakeFiles/lscatter_tag.dir/tag/power_model.cpp.o"
  "CMakeFiles/lscatter_tag.dir/tag/power_model.cpp.o.d"
  "CMakeFiles/lscatter_tag.dir/tag/sync_detector.cpp.o"
  "CMakeFiles/lscatter_tag.dir/tag/sync_detector.cpp.o.d"
  "CMakeFiles/lscatter_tag.dir/tag/tag_controller.cpp.o"
  "CMakeFiles/lscatter_tag.dir/tag/tag_controller.cpp.o.d"
  "liblscatter_tag.a"
  "liblscatter_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
