# Empty dependencies file for lscatter_traffic.
# This may be replaced when dependencies are built.
