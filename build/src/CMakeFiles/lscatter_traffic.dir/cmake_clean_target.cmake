file(REMOVE_RECURSE
  "liblscatter_traffic.a"
)
