
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/burst_process.cpp" "src/CMakeFiles/lscatter_traffic.dir/traffic/burst_process.cpp.o" "gcc" "src/CMakeFiles/lscatter_traffic.dir/traffic/burst_process.cpp.o.d"
  "/root/repo/src/traffic/occupancy_model.cpp" "src/CMakeFiles/lscatter_traffic.dir/traffic/occupancy_model.cpp.o" "gcc" "src/CMakeFiles/lscatter_traffic.dir/traffic/occupancy_model.cpp.o.d"
  "/root/repo/src/traffic/spectrum_survey.cpp" "src/CMakeFiles/lscatter_traffic.dir/traffic/spectrum_survey.cpp.o" "gcc" "src/CMakeFiles/lscatter_traffic.dir/traffic/spectrum_survey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
