file(REMOVE_RECURSE
  "CMakeFiles/lscatter_traffic.dir/traffic/burst_process.cpp.o"
  "CMakeFiles/lscatter_traffic.dir/traffic/burst_process.cpp.o.d"
  "CMakeFiles/lscatter_traffic.dir/traffic/occupancy_model.cpp.o"
  "CMakeFiles/lscatter_traffic.dir/traffic/occupancy_model.cpp.o.d"
  "CMakeFiles/lscatter_traffic.dir/traffic/spectrum_survey.cpp.o"
  "CMakeFiles/lscatter_traffic.dir/traffic/spectrum_survey.cpp.o.d"
  "liblscatter_traffic.a"
  "liblscatter_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
