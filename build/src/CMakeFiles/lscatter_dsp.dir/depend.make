# Empty dependencies file for lscatter_dsp.
# This may be replaced when dependencies are built.
