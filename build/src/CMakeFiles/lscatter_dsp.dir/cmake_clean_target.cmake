file(REMOVE_RECURSE
  "liblscatter_dsp.a"
)
