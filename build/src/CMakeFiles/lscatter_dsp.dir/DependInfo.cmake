
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/convolutional.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/convolutional.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/convolutional.cpp.o.d"
  "/root/repo/src/dsp/correlate.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/correlate.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/correlate.cpp.o.d"
  "/root/repo/src/dsp/crc.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/crc.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/crc.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/fir.cpp.o.d"
  "/root/repo/src/dsp/linalg.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/linalg.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/linalg.cpp.o.d"
  "/root/repo/src/dsp/rng.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/rng.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/rng.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/stats.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/stats.cpp.o.d"
  "/root/repo/src/dsp/types.cpp" "src/CMakeFiles/lscatter_dsp.dir/dsp/types.cpp.o" "gcc" "src/CMakeFiles/lscatter_dsp.dir/dsp/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
