file(REMOVE_RECURSE
  "CMakeFiles/lscatter_dsp.dir/dsp/convolutional.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/convolutional.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/correlate.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/correlate.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/crc.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/crc.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/fir.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/fir.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/linalg.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/linalg.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/rng.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/rng.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/stats.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/stats.cpp.o.d"
  "CMakeFiles/lscatter_dsp.dir/dsp/types.cpp.o"
  "CMakeFiles/lscatter_dsp.dir/dsp/types.cpp.o.d"
  "liblscatter_dsp.a"
  "liblscatter_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
