# Empty compiler generated dependencies file for lscatter_core.
# This may be replaced when dependencies are built.
