file(REMOVE_RECURSE
  "CMakeFiles/lscatter_core.dir/core/ambient_reconstructor.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/ambient_reconstructor.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/framing.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/framing.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/link_simulator.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/link_simulator.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/lscatter_rx.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/lscatter_rx.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/metrics.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/modulation_offset.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/modulation_offset.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/multi_tag.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/multi_tag.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/phase_offset.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/phase_offset.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/scenario.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/scenario.cpp.o.d"
  "CMakeFiles/lscatter_core.dir/core/streaming_receiver.cpp.o"
  "CMakeFiles/lscatter_core.dir/core/streaming_receiver.cpp.o.d"
  "liblscatter_core.a"
  "liblscatter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
