file(REMOVE_RECURSE
  "liblscatter_core.a"
)
