
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ambient_reconstructor.cpp" "src/CMakeFiles/lscatter_core.dir/core/ambient_reconstructor.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/ambient_reconstructor.cpp.o.d"
  "/root/repo/src/core/framing.cpp" "src/CMakeFiles/lscatter_core.dir/core/framing.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/framing.cpp.o.d"
  "/root/repo/src/core/link_simulator.cpp" "src/CMakeFiles/lscatter_core.dir/core/link_simulator.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/link_simulator.cpp.o.d"
  "/root/repo/src/core/lscatter_rx.cpp" "src/CMakeFiles/lscatter_core.dir/core/lscatter_rx.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/lscatter_rx.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/lscatter_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/modulation_offset.cpp" "src/CMakeFiles/lscatter_core.dir/core/modulation_offset.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/modulation_offset.cpp.o.d"
  "/root/repo/src/core/multi_tag.cpp" "src/CMakeFiles/lscatter_core.dir/core/multi_tag.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/multi_tag.cpp.o.d"
  "/root/repo/src/core/phase_offset.cpp" "src/CMakeFiles/lscatter_core.dir/core/phase_offset.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/phase_offset.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/lscatter_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/streaming_receiver.cpp" "src/CMakeFiles/lscatter_core.dir/core/streaming_receiver.cpp.o" "gcc" "src/CMakeFiles/lscatter_core.dir/core/streaming_receiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
