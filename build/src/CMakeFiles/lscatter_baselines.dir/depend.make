# Empty dependencies file for lscatter_baselines.
# This may be replaced when dependencies are built.
