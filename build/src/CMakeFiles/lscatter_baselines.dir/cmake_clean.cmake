file(REMOVE_RECURSE
  "CMakeFiles/lscatter_baselines.dir/baselines/day_study.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/day_study.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/lora_backscatter.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/lora_backscatter.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/lora_phy_lite.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/lora_phy_lite.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/symbol_level_lte.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/symbol_level_lte.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/taxonomy.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/taxonomy.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/wifi_backscatter.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/wifi_backscatter.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/wifi_phy_lite.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/wifi_phy_lite.cpp.o.d"
  "CMakeFiles/lscatter_baselines.dir/baselines/wifi_unit_level.cpp.o"
  "CMakeFiles/lscatter_baselines.dir/baselines/wifi_unit_level.cpp.o.d"
  "liblscatter_baselines.a"
  "liblscatter_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
