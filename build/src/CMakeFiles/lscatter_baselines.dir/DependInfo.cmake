
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/day_study.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/day_study.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/day_study.cpp.o.d"
  "/root/repo/src/baselines/lora_backscatter.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/lora_backscatter.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/lora_backscatter.cpp.o.d"
  "/root/repo/src/baselines/lora_phy_lite.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/lora_phy_lite.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/lora_phy_lite.cpp.o.d"
  "/root/repo/src/baselines/symbol_level_lte.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/symbol_level_lte.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/symbol_level_lte.cpp.o.d"
  "/root/repo/src/baselines/taxonomy.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/taxonomy.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/taxonomy.cpp.o.d"
  "/root/repo/src/baselines/wifi_backscatter.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/wifi_backscatter.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/wifi_backscatter.cpp.o.d"
  "/root/repo/src/baselines/wifi_phy_lite.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/wifi_phy_lite.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/wifi_phy_lite.cpp.o.d"
  "/root/repo/src/baselines/wifi_unit_level.cpp" "src/CMakeFiles/lscatter_baselines.dir/baselines/wifi_unit_level.cpp.o" "gcc" "src/CMakeFiles/lscatter_baselines.dir/baselines/wifi_unit_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_tag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
