file(REMOVE_RECURSE
  "liblscatter_baselines.a"
)
