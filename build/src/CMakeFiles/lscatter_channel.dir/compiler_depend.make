# Empty compiler generated dependencies file for lscatter_channel.
# This may be replaced when dependencies are built.
