
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/awgn.cpp" "src/CMakeFiles/lscatter_channel.dir/channel/awgn.cpp.o" "gcc" "src/CMakeFiles/lscatter_channel.dir/channel/awgn.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "src/CMakeFiles/lscatter_channel.dir/channel/fading.cpp.o" "gcc" "src/CMakeFiles/lscatter_channel.dir/channel/fading.cpp.o.d"
  "/root/repo/src/channel/link_budget.cpp" "src/CMakeFiles/lscatter_channel.dir/channel/link_budget.cpp.o" "gcc" "src/CMakeFiles/lscatter_channel.dir/channel/link_budget.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "src/CMakeFiles/lscatter_channel.dir/channel/pathloss.cpp.o" "gcc" "src/CMakeFiles/lscatter_channel.dir/channel/pathloss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
