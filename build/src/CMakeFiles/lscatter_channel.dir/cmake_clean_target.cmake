file(REMOVE_RECURSE
  "liblscatter_channel.a"
)
