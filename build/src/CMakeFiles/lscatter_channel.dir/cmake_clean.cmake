file(REMOVE_RECURSE
  "CMakeFiles/lscatter_channel.dir/channel/awgn.cpp.o"
  "CMakeFiles/lscatter_channel.dir/channel/awgn.cpp.o.d"
  "CMakeFiles/lscatter_channel.dir/channel/fading.cpp.o"
  "CMakeFiles/lscatter_channel.dir/channel/fading.cpp.o.d"
  "CMakeFiles/lscatter_channel.dir/channel/link_budget.cpp.o"
  "CMakeFiles/lscatter_channel.dir/channel/link_budget.cpp.o.d"
  "CMakeFiles/lscatter_channel.dir/channel/pathloss.cpp.o"
  "CMakeFiles/lscatter_channel.dir/channel/pathloss.cpp.o.d"
  "liblscatter_channel.a"
  "liblscatter_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
