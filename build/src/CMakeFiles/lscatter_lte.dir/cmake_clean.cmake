file(REMOVE_RECURSE
  "CMakeFiles/lscatter_lte.dir/lte/cell_config.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/cell_config.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/enodeb.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/enodeb.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/ofdm.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/ofdm.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/pbch.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/pbch.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/pdcch.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/pdcch.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/qam.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/qam.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/resource_grid.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/resource_grid.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/sequences.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/sequences.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/signal_map.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/signal_map.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/transport.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/transport.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/ue_rx.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/ue_rx.cpp.o.d"
  "CMakeFiles/lscatter_lte.dir/lte/ue_sync.cpp.o"
  "CMakeFiles/lscatter_lte.dir/lte/ue_sync.cpp.o.d"
  "liblscatter_lte.a"
  "liblscatter_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lscatter_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
