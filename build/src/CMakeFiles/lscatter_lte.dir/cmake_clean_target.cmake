file(REMOVE_RECURSE
  "liblscatter_lte.a"
)
