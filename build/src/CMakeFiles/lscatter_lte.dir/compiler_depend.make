# Empty compiler generated dependencies file for lscatter_lte.
# This may be replaced when dependencies are built.
