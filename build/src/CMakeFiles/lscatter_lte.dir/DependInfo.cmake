
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/cell_config.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/cell_config.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/cell_config.cpp.o.d"
  "/root/repo/src/lte/enodeb.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/enodeb.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/enodeb.cpp.o.d"
  "/root/repo/src/lte/ofdm.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/ofdm.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/ofdm.cpp.o.d"
  "/root/repo/src/lte/pbch.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/pbch.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/pbch.cpp.o.d"
  "/root/repo/src/lte/pdcch.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/pdcch.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/pdcch.cpp.o.d"
  "/root/repo/src/lte/qam.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/qam.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/qam.cpp.o.d"
  "/root/repo/src/lte/resource_grid.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/resource_grid.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/resource_grid.cpp.o.d"
  "/root/repo/src/lte/sequences.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/sequences.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/sequences.cpp.o.d"
  "/root/repo/src/lte/signal_map.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/signal_map.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/signal_map.cpp.o.d"
  "/root/repo/src/lte/transport.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/transport.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/transport.cpp.o.d"
  "/root/repo/src/lte/ue_rx.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/ue_rx.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/ue_rx.cpp.o.d"
  "/root/repo/src/lte/ue_sync.cpp" "src/CMakeFiles/lscatter_lte.dir/lte/ue_sync.cpp.o" "gcc" "src/CMakeFiles/lscatter_lte.dir/lte/ue_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
