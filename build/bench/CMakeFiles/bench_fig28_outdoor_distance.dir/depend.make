# Empty dependencies file for bench_fig28_outdoor_distance.
# This may be replaced when dependencies are built.
