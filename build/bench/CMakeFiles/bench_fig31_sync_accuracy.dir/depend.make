# Empty dependencies file for bench_fig31_sync_accuracy.
# This may be replaced when dependencies are built.
