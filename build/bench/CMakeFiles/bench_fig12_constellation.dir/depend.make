# Empty dependencies file for bench_fig12_constellation.
# This may be replaced when dependencies are built.
