file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_constellation.dir/bench_fig12_constellation.cpp.o"
  "CMakeFiles/bench_fig12_constellation.dir/bench_fig12_constellation.cpp.o.d"
  "bench_fig12_constellation"
  "bench_fig12_constellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_constellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
