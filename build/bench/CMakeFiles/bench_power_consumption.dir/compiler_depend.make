# Empty compiler generated dependencies file for bench_power_consumption.
# This may be replaced when dependencies are built.
