# Empty compiler generated dependencies file for bench_fig26_outdoor_day.
# This may be replaced when dependencies are built.
