file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_outdoor_day.dir/bench_fig26_outdoor_day.cpp.o"
  "CMakeFiles/bench_fig26_outdoor_day.dir/bench_fig26_outdoor_day.cpp.o.d"
  "bench_fig26_outdoor_day"
  "bench_fig26_outdoor_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_outdoor_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
