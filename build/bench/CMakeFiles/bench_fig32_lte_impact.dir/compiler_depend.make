# Empty compiler generated dependencies file for bench_fig32_lte_impact.
# This may be replaced when dependencies are built.
