# Empty dependencies file for bench_fig23_mall_distance.
# This may be replaced when dependencies are built.
