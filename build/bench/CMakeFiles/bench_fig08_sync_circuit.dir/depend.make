# Empty dependencies file for bench_fig08_sync_circuit.
# This may be replaced when dependencies are built.
