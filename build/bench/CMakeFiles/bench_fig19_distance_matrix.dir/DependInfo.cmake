
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig19_distance_matrix.cpp" "bench/CMakeFiles/bench_fig19_distance_matrix.dir/bench_fig19_distance_matrix.cpp.o" "gcc" "bench/CMakeFiles/bench_fig19_distance_matrix.dir/bench_fig19_distance_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lscatter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lscatter_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
