# Empty compiler generated dependencies file for bench_fig19_distance_matrix.
# This may be replaced when dependencies are built.
