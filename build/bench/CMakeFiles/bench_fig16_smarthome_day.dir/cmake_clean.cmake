file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_smarthome_day.dir/bench_fig16_smarthome_day.cpp.o"
  "CMakeFiles/bench_fig16_smarthome_day.dir/bench_fig16_smarthome_day.cpp.o.d"
  "bench_fig16_smarthome_day"
  "bench_fig16_smarthome_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_smarthome_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
