# Empty dependencies file for bench_fig16_smarthome_day.
# This may be replaced when dependencies are built.
