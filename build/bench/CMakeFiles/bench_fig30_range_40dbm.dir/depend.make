# Empty dependencies file for bench_fig30_range_40dbm.
# This may be replaced when dependencies are built.
