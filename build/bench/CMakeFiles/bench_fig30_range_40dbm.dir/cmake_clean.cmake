file(REMOVE_RECURSE
  "CMakeFiles/bench_fig30_range_40dbm.dir/bench_fig30_range_40dbm.cpp.o"
  "CMakeFiles/bench_fig30_range_40dbm.dir/bench_fig30_range_40dbm.cpp.o.d"
  "bench_fig30_range_40dbm"
  "bench_fig30_range_40dbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig30_range_40dbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
