# Empty dependencies file for bench_micro_rx.
# This may be replaced when dependencies are built.
