file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rx.dir/bench_micro_rx.cpp.o"
  "CMakeFiles/bench_micro_rx.dir/bench_micro_rx.cpp.o.d"
  "bench_micro_rx"
  "bench_micro_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
