file(REMOVE_RECURSE
  "CMakeFiles/bench_fig33_continuous_auth.dir/bench_fig33_continuous_auth.cpp.o"
  "CMakeFiles/bench_fig33_continuous_auth.dir/bench_fig33_continuous_auth.cpp.o.d"
  "bench_fig33_continuous_auth"
  "bench_fig33_continuous_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig33_continuous_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
