# Empty dependencies file for bench_fig33_continuous_auth.
# This may be replaced when dependencies are built.
