# Empty dependencies file for bench_fig04_traffic.
# This may be replaced when dependencies are built.
