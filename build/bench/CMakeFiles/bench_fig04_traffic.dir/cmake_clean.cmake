file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_traffic.dir/bench_fig04_traffic.cpp.o"
  "CMakeFiles/bench_fig04_traffic.dir/bench_fig04_traffic.cpp.o.d"
  "bench_fig04_traffic"
  "bench_fig04_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
