file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_mall_day.dir/bench_fig21_mall_day.cpp.o"
  "CMakeFiles/bench_fig21_mall_day.dir/bench_fig21_mall_day.cpp.o.d"
  "bench_fig21_mall_day"
  "bench_fig21_mall_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_mall_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
