# Empty dependencies file for bench_fig21_mall_day.
# This may be replaced when dependencies are built.
