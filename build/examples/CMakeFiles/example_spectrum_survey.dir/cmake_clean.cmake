file(REMOVE_RECURSE
  "CMakeFiles/example_spectrum_survey.dir/spectrum_survey.cpp.o"
  "CMakeFiles/example_spectrum_survey.dir/spectrum_survey.cpp.o.d"
  "example_spectrum_survey"
  "example_spectrum_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spectrum_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
