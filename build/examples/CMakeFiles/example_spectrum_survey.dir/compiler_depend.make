# Empty compiler generated dependencies file for example_spectrum_survey.
# This may be replaced when dependencies are built.
