# Empty compiler generated dependencies file for example_continuous_auth.
# This may be replaced when dependencies are built.
