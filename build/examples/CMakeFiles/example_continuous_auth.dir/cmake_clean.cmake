file(REMOVE_RECURSE
  "CMakeFiles/example_continuous_auth.dir/continuous_auth.cpp.o"
  "CMakeFiles/example_continuous_auth.dir/continuous_auth.cpp.o.d"
  "example_continuous_auth"
  "example_continuous_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_continuous_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
