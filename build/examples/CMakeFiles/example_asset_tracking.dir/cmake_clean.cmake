file(REMOVE_RECURSE
  "CMakeFiles/example_asset_tracking.dir/asset_tracking.cpp.o"
  "CMakeFiles/example_asset_tracking.dir/asset_tracking.cpp.o.d"
  "example_asset_tracking"
  "example_asset_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_asset_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
