# Empty dependencies file for example_asset_tracking.
# This may be replaced when dependencies are built.
