file(REMOVE_RECURSE
  "CMakeFiles/example_smart_home_sensors.dir/smart_home_sensors.cpp.o"
  "CMakeFiles/example_smart_home_sensors.dir/smart_home_sensors.cpp.o.d"
  "example_smart_home_sensors"
  "example_smart_home_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smart_home_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
