# Empty dependencies file for example_smart_home_sensors.
# This may be replaced when dependencies are built.
