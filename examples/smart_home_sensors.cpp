// Smart-home sensor network over ambient LTE (paper §1 motivation +
// §4.3 setup): a thermostat, two motion sensors, and a door sensor share
// one LScatter uplink from different rooms of an 800 sqft apartment. The
// example runs a simulated evening hour and reports per-sensor delivery —
// contrast it with a WiFi-backscatter deployment, which at 7 pm would be
// fighting for ~60% channel occupancy.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/wifi_backscatter.hpp"
#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "traffic/occupancy_model.hpp"

namespace {

struct Sensor {
  std::string name;
  double tag_ue_ft;       // distance from the sensor's tag to the hub
  double enb_tag_ft;      // distance from the window-side eNB signal
  double report_hz;       // application reporting rate
  std::size_t report_bits;
};

}  // namespace

int main() {
  using namespace lscatter;

  const std::vector<Sensor> sensors = {
      {"thermostat (hall)", 6.0, 7.0, 0.2, 64},
      {"motion (living)", 4.0, 5.0, 2.0, 32},
      {"motion (bedroom)", 8.0, 9.0, 2.0, 32},
      {"door (far corner)", 12.0, 14.0, 0.5, 48},
  };

  std::printf("Smart-home LScatter sensor network — one simulated evening "
              "hour (7 pm)\n\n");
  std::printf("%-20s %-9s %-8s %-9s %-12s %s\n", "sensor", "d_eNB", "d_hub",
              "BER", "PDR", "reports/h delivered");

  double total_reports = 0.0;
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    const Sensor& s = sensors[i];
    core::ScenarioOptions opt;
    opt.seed = 500 + i;
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
    cfg.geometry.enb_tag_ft = s.enb_tag_ft;
    cfg.geometry.tag_ue_ft = s.tag_ue_ft;
    cfg.schedule.max_data_symbols_per_packet = 1;  // short reports
    // Sensors don't need Mbps: trade rate for diversity so reports
    // survive the per-unit BER floor deep into the apartment.
    cfg.schedule.repetition = 8;

    core::LinkSimulator sim(cfg);
    core::LinkMetrics m;
    for (int drop = 0; drop < 5; ++drop) m += sim.run(20);

    const double reports_per_hour =
        s.report_hz * 3600.0 * m.packet_delivery_ratio();
    total_reports += reports_per_hour;
    std::printf("%-20s %-9.0f %-8.0f %-9.1e %-12.3f %.0f of %.0f\n",
                s.name.c_str(), s.enb_tag_ft, s.tag_ue_ft, m.ber(),
                m.packet_delivery_ratio(), reports_per_hour,
                s.report_hz * 3600.0);
  }

  // What the same hour looks like for a WiFi-backscatter deployment.
  const traffic::OccupancyModel wifi_occ(traffic::Technology::kWifi,
                                         traffic::Site::kHome);
  core::LinkConfig base = core::make_scenario(core::Scene::kSmartHome);
  baselines::WifiBackscatterConfig wcfg;
  wcfg.pathloss = base.env.pathloss;
  wcfg.budget = base.env.budget;
  wcfg.enb_tag_ft = 8.0;
  wcfg.tag_ue_ft = 6.0;
  baselines::WifiBackscatterLink wifi(wcfg);
  const double occ = wifi_occ.mean_occupancy(19);
  std::printf("\nFor reference, ambient-WiFi backscatter at 7 pm (occupancy "
              "%.2f): %.1f kbps\nshared by all sensors, and zero when the "
              "channel goes quiet after midnight.\n",
              occ, wifi.hourly_throughput_bps(occ, 1000) / 1e3);
  std::printf("Total sensor reports delivered over LScatter: %.0f/hour.\n",
              total_reports);
  return 0;
}
