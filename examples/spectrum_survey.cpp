// Spectrum survey (paper §2, Fig. 4): why LTE is the right ambient carrier.
//
// Renders ASCII spectrograms of a bursty WiFi channel and a continuous LTE
// band over 20 ms, then prints the weekly occupancy CDFs for WiFi / LoRa /
// LTE across three sites — the measurement that motivates LScatter.

#include <cstdio>

#include "dsp/rng.hpp"
#include "traffic/spectrum_survey.hpp"

int main() {
  using namespace lscatter;
  dsp::Rng rng(4242);

  std::printf("=== 20 ms of a WiFi channel (office, ~55%% occupancy) ===\n");
  std::printf("rows: time (0.25 ms bins, subsampled)   cols: 20 MHz\n");
  const traffic::Spectrogram wifi = traffic::survey_wifi(20e-3, 0.55, rng);
  std::printf("%s", wifi.render(16).c_str());
  std::printf("time occupancy: %.2f — bursty and shared with narrowband "
              "(ZigBee-like) devices\n\n",
              wifi.time_occupancy());

  std::printf("=== 20 ms of an LTE downlink band ===\n");
  const traffic::Spectrogram lte = traffic::survey_lte(20e-3, rng);
  std::printf("%s", lte.render(16).c_str());
  std::printf("time occupancy: %.2f — continuous; bright center cells are "
              "the 5 ms PSS cadence\n\n",
              lte.time_occupancy());

  std::printf("=== One week of hourly occupancy (Fig. 4c) ===\n");
  std::printf("%-18s %8s %8s %8s %8s\n", "series", "P10", "median", "P90",
              "mean-ish");
  const struct {
    traffic::Technology tech;
    traffic::Site site;
  } series[] = {
      {traffic::Technology::kLte, traffic::Site::kHome},
      {traffic::Technology::kWifi, traffic::Site::kOffice},
      {traffic::Technology::kWifi, traffic::Site::kClassroom},
      {traffic::Technology::kWifi, traffic::Site::kHome},
      {traffic::Technology::kLora, traffic::Site::kHome},
      {traffic::Technology::kLora, traffic::Site::kOffice},
      {traffic::Technology::kLora, traffic::Site::kClassroom},
  };
  for (const auto& s : series) {
    const auto cdf = traffic::weekly_occupancy_cdf(s.tech, s.site, rng);
    char label[64];
    std::snprintf(label, sizeof(label), "%s %s",
                  traffic::to_string(s.tech), traffic::to_string(s.site));
    std::printf("%-18s %8.3f %8.3f %8.3f %8.3f\n", label,
                cdf.quantile(0.10), cdf.quantile(0.50), cdf.quantile(0.90),
                (cdf.quantile(0.25) + cdf.quantile(0.75)) / 2.0);
  }
  std::printf("\nLTE pins the CDF at 1.0 at every site; WiFi stays below "
              "0.7 for 90%% of hours\neven in the busiest office; LoRa "
              "barely registers. Continuous + ubiquitous wins.\n");
  return 0;
}
