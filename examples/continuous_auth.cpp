// Continuous authentication over LScatter (paper §5, Fig. 33).
//
// A wearable EMG (electromyography) pad samples muscle activity at 136 sps
// and ships each reading through the backscatter tag in a short packet
// (one modulated data symbol). A laptop-side verifier keeps a rolling
// biometric template and flags user changes. The interesting systems
// number is the *update rate*: EMG samples delivered per second as the tag
// moves away from the excitation source — the paper measures 136 sps at
// 2 ft falling to ~5 sps at 40 ft.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter;

// Synthetic EMG: bandpassed bursty noise whose RMS envelope tracks muscle
// activation; each user has a characteristic activation rhythm.
struct EmgSensor {
  double user_rhythm_hz;
  dsp::Rng rng;

  double sample(double t_s) {
    const double activation =
        0.5 + 0.5 * std::sin(2.0 * M_PI * user_rhythm_hz * t_s);
    return activation * rng.normal();
  }
};

// Rolling-window verifier: accepts while incoming envelope statistics stay
// near the enrolled template.
struct Verifier {
  double enrolled_rms = 0.0;
  double window_acc = 0.0;
  std::size_t window_n = 0;

  void enroll(double rms) { enrolled_rms = rms; }
  void feed(double v) {
    window_acc += v * v;
    ++window_n;
  }
  bool accept() const {
    if (window_n < 8) return true;  // not enough evidence yet
    const double rms =
        std::sqrt(window_acc / static_cast<double>(window_n));
    return std::abs(rms - enrolled_rms) < 0.5 * enrolled_rms;
  }
  void reset() {
    window_acc = 0.0;
    window_n = 0;
  }
};

}  // namespace

int main() {
  using namespace lscatter;
  constexpr double kSensorRateSps = 136.0;

  std::printf("Continuous authentication over LScatter (paper Fig. 33)\n");
  std::printf("%-14s %-12s %-12s %s\n", "tag-src (ft)", "PDR", "sps",
              "verdict");

  for (const double d_ft : {2.0, 8.0, 16.0, 24.0, 32.0, 40.0}) {
    core::ScenarioOptions opt;
    opt.seed = 99 + static_cast<std::uint64_t>(d_ft);
    core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
    // Fig. 33b varies the tag-to-source distance; the laptop stays close.
    cfg.geometry.enb_tag_ft = d_ft;
    cfg.geometry.tag_ue_ft = 4.0;
    // One EMG reading (16-bit sample + sequence number) fits easily in a
    // single modulated symbol; short packets keep the CRC alive at range.
    cfg.schedule.max_data_symbols_per_packet = 1;

    core::LinkSimulator sim(cfg);

    // Average packet delivery over several channel drops.
    std::size_t sent = 0;
    std::size_t ok = 0;
    for (int drop = 0; drop < 6; ++drop) {
      const core::LinkMetrics m = sim.run(20);
      sent += m.packets_sent;
      ok += m.packets_ok;
    }
    const double pdr =
        sent == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(sent);
    const double update_rate = kSensorRateSps * pdr;

    // Feed the delivered samples through the verifier.
    EmgSensor sensor{1.3, dsp::Rng(7)};
    Verifier verifier;
    verifier.enroll(0.5);
    dsp::Rng loss_rng(3);
    std::size_t delivered = 0;
    for (int i = 0; i < 272; ++i) {  // 2 s of sensor data
      const double v = sensor.sample(i / kSensorRateSps);
      if (loss_rng.bernoulli(pdr)) {
        verifier.feed(v);
        ++delivered;
      }
    }
    std::printf("%-14.0f %-12.3f %-12.1f %s\n", d_ft, pdr, update_rate,
                verifier.accept() ? "user verified" : "REJECT");
  }

  std::printf("\nAt 2 ft every sensor reading arrives (136 sps); even at "
              "40 ft a few samples\nper second still reach the verifier — "
              "enough to re-authenticate continuously.\n");
  return 0;
}
