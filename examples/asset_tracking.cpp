// Warehouse asset tracking over ambient LTE (multi-tag + streaming API).
//
// A warehouse near a cell tower sticks an LScatter tag on every pallet.
// All tags ride the same downlink: each is assigned a TDMA slot derived
// from the PSS frame cadence, sends a heartbeat packet (asset id +
// sequence number) in its slot, and the dock reader demodulates them all
// from one antenna. Pallets that stop heartbeating are flagged.
//
// Demonstrates the two extension APIs: core::run_multi_tag (slotted
// coexistence) and core::StreamingReceiver (chunked stream consumption —
// shown on a single-tag feed the way an SDR app would use it).

#include <cstdio>
#include <string>
#include <vector>

#include "core/multi_tag.hpp"
#include "core/scenario.hpp"
#include "core/streaming_receiver.hpp"
#include "lte/enodeb.hpp"
#include "tag/modulator.hpp"

namespace {

using namespace lscatter;

struct Pallet {
  std::string label;
  double enb_tag_ft;
  double tag_ue_ft;
};

}  // namespace

int main() {
  using namespace lscatter;

  const std::vector<Pallet> pallets = {
      {"pallet-A (dock)", 6.0, 4.0},
      {"pallet-B (aisle 1)", 9.0, 7.0},
      {"pallet-C (aisle 2)", 12.0, 9.0},
      {"pallet-D (deep rack)", 15.0, 12.0},
  };

  std::printf("Warehouse asset tracking: %zu tags share one LTE downlink\n\n",
              pallets.size());

  // --- Slotted multi-tag heartbeats -------------------------------------
  core::MultiTagConfig cfg;
  cfg.base = core::make_scenario(core::Scene::kMall, {.seed = 1234});
  // Deep racks: short packets with repetition so far pallets stay heard.
  cfg.base.schedule.max_data_symbols_per_packet = 1;
  cfg.base.schedule.repetition = 8;
  cfg.n_slots = pallets.size();
  for (std::size_t i = 0; i < pallets.size(); ++i) {
    cfg.tags.push_back({{pallets[i].enb_tag_ft, pallets[i].tag_ue_ft, -1.0},
                        i});
  }

  const auto res = core::run_multi_tag(cfg, 80);  // 80 ms of traffic
  std::printf("%-22s %-7s %-12s %-10s %s\n", "asset", "slot", "heartbeats",
              "PDR", "status");
  for (std::size_t i = 0; i < pallets.size(); ++i) {
    const auto& m = res.per_tag[i].metrics;
    const bool present = m.packet_delivery_ratio() > 0.5;
    std::printf("%-22s %-7zu %zu/%-10zu %-10.2f %s\n",
                pallets[i].label.c_str(), i, m.packets_ok, m.packets_sent,
                m.packet_delivery_ratio(),
                present ? "present" : "MISSING?");
  }
  std::printf("aggregate backscatter goodput: %.2f Mbps shared by %zu "
              "tags, zero infrastructure\n\n",
              res.aggregate_throughput_bps() / 1e6, pallets.size());

  // --- Streaming consumption at the dock reader -------------------------
  // One tag's slot, consumed from a continuous sample stream in 2048-
  // sample chunks, the way an SDR front end delivers them.
  lte::CellConfig cell = cfg.base.enodeb.cell;
  lte::Enodeb::Config ecfg = cfg.base.enodeb;
  lte::Enodeb enb(ecfg);
  tag::TagScheduleConfig sched;  // full-rate single tag
  tag::TagController ctl(cell, sched);
  dsp::Rng prng(55);

  core::StreamingReceiver::Config rx_cfg;
  rx_cfg.cell = cell;
  rx_cfg.schedule = sched;
  core::StreamingReceiver reader(rx_cfg);

  std::size_t delivered = 0;
  std::size_t events = 0;
  for (std::size_t sf = 0; sf < 10; ++sf) {
    const auto tx = enb.next_subframe();
    const std::size_t cap = ctl.packet_raw_bits(sf);
    tag::SubframePlan plan;
    if (!ctl.is_listening_subframe(sf) && cap > 32) {
      const core::PacketCodec codec(cap);
      const auto payload = prng.bits(codec.payload_bits());
      plan = ctl.plan_subframe(
          sf, true,
          core::split_bits(codec.encode(payload), ctl.bits_per_symbol()));
    } else {
      plan = ctl.plan_subframe(sf, false, {});
    }
    const auto pattern = tag::expand_to_units(cell, plan);
    const auto scat = tag::apply_pattern(tx.samples, pattern, 11,
                                         dsp::cf32{1e-3f, 2e-4f});
    // Feed in SDR-sized chunks.
    for (std::size_t pos = 0; pos < scat.size(); pos += 2048) {
      const std::size_t n = std::min<std::size_t>(2048, scat.size() - pos);
      for (const auto& ev : reader.feed(
               std::span<const dsp::cf32>(scat).subspan(pos, n),
               std::span<const dsp::cf32>(tx.samples).subspan(pos, n))) {
        ++events;
        if (ev.result.payload) delivered += ev.result.payload->size();
      }
    }
  }
  std::printf("streaming reader: %zu packet events, %.0f kbit delivered "
              "from 10 ms of chunked samples\n",
              events, static_cast<double>(delivered) / 1e3);
  return 0;
}
