// Quickstart: send bits over an ambient-LTE backscatter link.
//
// Builds the paper's smart-home setup (20 MHz LTE cell at 680 MHz, tag 3 ft
// from the eNodeB, UE 3 ft from the tag), runs 50 ms of traffic, and prints
// the link metrics. This touches the whole public API surface:
//
//   core::make_scenario  -> calibrated LinkConfig
//   core::LinkSimulator  -> eNodeB + channel + tag + UE end to end
//   core::LinkMetrics    -> BER / throughput / packet statistics

#include <cstdio>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace lscatter;

  core::ScenarioOptions options;
  options.bandwidth = lte::Bandwidth::kMHz20;
  options.tx_power_dbm = dsp::Dbm{10.0};  // a USRP-class eNodeB, not a macro tower
  options.seed = 2020;

  core::LinkConfig config =
      core::make_scenario(core::Scene::kSmartHome, options);
  std::printf("cell   : %s\n", config.enodeb.cell.describe().c_str());

  core::LinkSimulator sim(config);
  std::printf("PHY    : scheduled rate %.2f Mbps (paper: 13.63 Mbps)\n",
              sim.scheduled_phy_rate_bps() / 1e6);

  const core::LinkMetrics m = sim.run(/*n_subframes=*/50);
  const core::DropState& drop = sim.last_drop();

  std::printf("budget : backscatter rx %.1f dBm, noise %.1f dBm, "
              "SNR %.1f dB\n",
              drop.backscatter_rx_dbm.value(), drop.noise_dbm.value(),
              drop.mean_snr_db.value());
  std::printf("link   : %s\n", m.describe().c_str());
  std::printf("\nLScatter moved %.0f kbit over 50 ms of ambient LTE — no "
              "radio of its own.\n",
              static_cast<double>(m.bits_delivered) / 1e3);
  return 0;
}
