#pragma once
// Spectrum-survey tooling behind the paper's Figure 4: time-frequency
// occupancy grids ("spectrograms") for a WiFi ISM channel and an LTE band,
// and occupancy-ratio CDFs per technology/site over a simulated week.

#include <string>
#include <vector>

#include "dsp/stats.hpp"
#include "traffic/burst_process.hpp"
#include "traffic/occupancy_model.hpp"

namespace lscatter::traffic {

/// A coarse time x frequency occupancy grid; cell values in [0, 1] are
/// fraction-of-cell-occupied (1 = strong signal).
struct Spectrogram {
  double duration_s = 0.0;
  double bandwidth_hz = 0.0;  // lint-ok: units — survey record mirrors external CSV schema
  std::size_t time_bins = 0;
  std::size_t freq_bins = 0;
  std::vector<float> cells;  // row-major [time][freq]

  float& at(std::size_t t, std::size_t f) {
    return cells[t * freq_bins + f];
  }
  float at(std::size_t t, std::size_t f) const {
    return cells[t * freq_bins + f];
  }

  /// ASCII rendering (rows = time, cols = frequency), for bench output.
  std::string render(std::size_t max_rows = 20) const;

  /// Fraction of time bins with any occupied frequency cell.
  double time_occupancy() const;
};

/// WiFi channel spectrogram: bursty full-channel (or sub-band) packets per
/// an on/off process + interfering narrowband (ZigBee/BLE-like) bursts —
/// the Fig. 4a picture.
Spectrogram survey_wifi(double duration_s, double occupancy,
                        dsp::Rng& rng);

/// LTE downlink spectrogram: continuously occupied band with the
/// narrowband PSS visible every 5 ms in the central cells — Fig. 4b.
Spectrogram survey_lte(double duration_s, dsp::Rng& rng);

/// One week of hourly occupancy samples for (tech, site), as an
/// EmpiricalCdf — the Fig. 4c series.
dsp::EmpiricalCdf weekly_occupancy_cdf(Technology tech, Site site,
                                       dsp::Rng& rng);

}  // namespace lscatter::traffic
