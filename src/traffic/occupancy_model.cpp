#include "traffic/occupancy_model.hpp"

#include <algorithm>
#include <cassert>

namespace lscatter::traffic {

const char* to_string(Technology t) {
  switch (t) {
    case Technology::kWifi: return "WiFi";
    case Technology::kLora: return "LoRa";
    case Technology::kLte: return "LTE";
  }
  return "?";
}

const char* to_string(Site s) {
  switch (s) {
    case Site::kHome: return "Home";
    case Site::kOffice: return "Office";
    case Site::kClassroom: return "Classroom";
    case Site::kMall: return "Mall";
    case Site::kOutdoor: return "Outdoor";
  }
  return "?";
}

namespace {

// Hour-of-day WiFi occupancy means, parameterized from the paper's Figs.
// 17 (home), 22 (mall, 10am-9pm), 27 (outdoor) and the Fig. 4c CDFs
// (office / classroom). Values are fractions of the hour occupied.
constexpr std::array<double, 24> kWifiHome = {
    0.08, 0.06, 0.05, 0.05, 0.06, 0.08, 0.15, 0.22,  // 0-7
    0.25, 0.25, 0.28, 0.32, 0.38, 0.33, 0.30, 0.32,  // 8-15
    0.45, 0.55, 0.60, 0.62, 0.58, 0.50, 0.35, 0.18}; // 16-23

constexpr std::array<double, 24> kWifiOffice = {
    0.05, 0.04, 0.04, 0.04, 0.05, 0.08, 0.15, 0.30,
    0.45, 0.55, 0.58, 0.60, 0.55, 0.58, 0.60, 0.58,
    0.52, 0.45, 0.32, 0.20, 0.14, 0.10, 0.08, 0.06};

constexpr std::array<double, 24> kWifiClassroom = {
    0.03, 0.03, 0.03, 0.03, 0.03, 0.05, 0.10, 0.22,
    0.38, 0.48, 0.50, 0.46, 0.40, 0.46, 0.48, 0.44,
    0.35, 0.25, 0.18, 0.12, 0.08, 0.05, 0.04, 0.03};

constexpr std::array<double, 24> kWifiMall = {
    0.04, 0.03, 0.03, 0.03, 0.03, 0.04, 0.06, 0.10,
    0.15, 0.22, 0.28, 0.33, 0.38, 0.36, 0.35, 0.38,
    0.40, 0.42, 0.45, 0.48, 0.50, 0.35, 0.15, 0.07};

constexpr std::array<double, 24> kWifiOutdoor = {
    0.03, 0.03, 0.02, 0.02, 0.03, 0.04, 0.07, 0.12,
    0.15, 0.17, 0.19, 0.22, 0.23, 0.22, 0.20, 0.22,
    0.25, 0.26, 0.23, 0.19, 0.15, 0.10, 0.07, 0.04};

const std::array<double, 24>& wifi_profile(Site site) {
  switch (site) {
    case Site::kHome: return kWifiHome;
    case Site::kOffice: return kWifiOffice;
    case Site::kClassroom: return kWifiClassroom;
    case Site::kMall: return kWifiMall;
    case Site::kOutdoor: return kWifiOutdoor;
  }
  return kWifiHome;
}

}  // namespace

OccupancyModel::OccupancyModel(Technology tech, Site site)
    : tech_(tech), site_(site) {
  switch (tech) {
    case Technology::kLte:
      profile_.fill(1.0);  // dedicated continuous downlink
      jitter_ = 0.0;
      break;
    case Technology::kLora:
      profile_.fill(0.02);  // "traffic rate is only 0.02 for most of the
                            // time" (paper §2.1)
      jitter_ = 0.01;
      break;
    case Technology::kWifi:
      profile_ = wifi_profile(site);
      jitter_ = 0.12;  // bursty: wide within-hour scatter (Fig. 16a)
      break;
  }
}

double OccupancyModel::mean_occupancy(std::size_t hour) const {
  assert(hour < 24);
  return profile_[hour];
}

double OccupancyModel::sample_occupancy(std::size_t hour,
                                        dsp::Rng& rng) const {
  const double base = mean_occupancy(hour);
  if (jitter_ <= 0.0) return base;
  const double v = base + rng.normal(0.0, jitter_ * (0.3 + base));
  return std::clamp(v, 0.0, 1.0);
}

std::vector<double> OccupancyModel::week_of_samples(dsp::Rng& rng) const {
  std::vector<double> out;
  out.reserve(7 * 24);
  for (std::size_t day = 0; day < 7; ++day) {
    // Weekends shift home traffic up and office traffic down a bit.
    const bool weekend = day >= 5;
    for (std::size_t hour = 0; hour < 24; ++hour) {
      double v = sample_occupancy(hour, rng);
      if (tech_ == Technology::kWifi && weekend) {
        if (site_ == Site::kHome) v = std::min(1.0, v * 1.2);
        if (site_ == Site::kOffice || site_ == Site::kClassroom) v *= 0.3;
      }
      out.push_back(std::clamp(v, 0.0, 1.0));
    }
  }
  return out;
}

}  // namespace lscatter::traffic
