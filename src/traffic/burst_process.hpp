#pragma once
// On/off burst processes for shared-band traffic (paper §2: WiFi/LoRa are
// "bursty and intermittent"). An exponential on/off renewal process whose
// duty cycle equals the target occupancy; WiFi bursts are packet trains of
// a few ms, LoRa events are sparse ~100 ms chirpy frames.

#include <vector>

#include "dsp/rng.hpp"

namespace lscatter::traffic {

struct Burst {
  double start_s = 0.0;
  double duration_s = 0.0;
  double end_s() const { return start_s + duration_s; }
};

struct BurstProcessConfig {
  /// Long-run fraction of time the channel is busy.
  double occupancy = 0.3;

  /// Mean burst (on-period) duration [s].
  double mean_burst_s = 3e-3;

  /// Floor for off periods [s] (DIFS/backoff-ish spacing).
  double min_gap_s = 50e-6;
};

/// Generate bursts covering [0, horizon_s).
std::vector<Burst> generate_bursts(const BurstProcessConfig& config,
                                   double horizon_s, dsp::Rng& rng);

/// Fraction of [0, horizon_s) covered by the bursts.
double measure_occupancy(const std::vector<Burst>& bursts, double horizon_s);

/// True if time t falls inside any burst (bursts sorted by start).
bool is_busy(const std::vector<Burst>& bursts, double t_s);

}  // namespace lscatter::traffic
