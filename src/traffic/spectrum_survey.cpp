#include "traffic/spectrum_survey.hpp"

#include <algorithm>
#include <cmath>

namespace lscatter::traffic {

std::string Spectrogram::render(std::size_t max_rows) const {
  static const char* kShades[] = {" ", ".", ":", "+", "#"};
  std::string out;
  const std::size_t stride =
      std::max<std::size_t>(1, time_bins / std::max<std::size_t>(max_rows, 1));
  for (std::size_t t = 0; t < time_bins; t += stride) {
    out += "|";
    for (std::size_t f = 0; f < freq_bins; ++f) {
      const float v = at(t, f);
      const auto idx = static_cast<std::size_t>(
          std::clamp(v, 0.0f, 1.0f) * 4.0f + 0.5f);
      out += kShades[idx];
    }
    out += "|\n";
  }
  return out;
}

double Spectrogram::time_occupancy() const {
  if (time_bins == 0) return 0.0;
  std::size_t busy = 0;
  for (std::size_t t = 0; t < time_bins; ++t) {
    for (std::size_t f = 0; f < freq_bins; ++f) {
      if (at(t, f) > 0.25f) {
        ++busy;
        break;
      }
    }
  }
  return static_cast<double>(busy) / static_cast<double>(time_bins);
}

Spectrogram survey_wifi(double duration_s, double occupancy,
                        dsp::Rng& rng) {
  Spectrogram sg;
  sg.duration_s = duration_s;
  sg.bandwidth_hz = 20e6;
  sg.time_bins = static_cast<std::size_t>(duration_s / 0.25e-3);
  sg.freq_bins = 48;
  sg.cells.assign(sg.time_bins * sg.freq_bins, 0.0f);

  // WiFi packet bursts occupy the whole channel.
  BurstProcessConfig wifi_cfg;
  wifi_cfg.occupancy = occupancy;
  wifi_cfg.mean_burst_s = 2e-3;
  const auto wifi_bursts = generate_bursts(wifi_cfg, duration_s, rng);

  // Heterogeneous sharers (ZigBee/BLE): narrowband, sparser (paper Fig. 1).
  BurstProcessConfig nb_cfg;
  nb_cfg.occupancy = occupancy * 0.3;
  nb_cfg.mean_burst_s = 4e-3;
  const auto nb_bursts = generate_bursts(nb_cfg, duration_s, rng);
  // Fixed narrowband slot per survey (a ZigBee channel inside the WiFi
  // channel).
  const std::size_t nb_first =
      4 + rng.uniform_int(static_cast<std::uint32_t>(sg.freq_bins - 12));
  const std::size_t nb_width = 5;  // ~2 MHz of 20 MHz

  for (std::size_t t = 0; t < sg.time_bins; ++t) {
    const double ts = (static_cast<double>(t) + 0.5) * 0.25e-3;
    if (is_busy(wifi_bursts, ts)) {
      for (std::size_t f = 0; f < sg.freq_bins; ++f) {
        sg.at(t, f) = 0.9f;
      }
    }
    if (is_busy(nb_bursts, ts)) {
      for (std::size_t f = nb_first;
           f < std::min(nb_first + nb_width, sg.freq_bins); ++f) {
        sg.at(t, f) = std::max(sg.at(t, f), 0.6f);
      }
    }
  }
  return sg;
}

Spectrogram survey_lte(double duration_s, dsp::Rng& rng) {
  (void)rng;
  Spectrogram sg;
  sg.duration_s = duration_s;
  sg.bandwidth_hz = 10e6;
  sg.time_bins = static_cast<std::size_t>(duration_s / 0.25e-3);
  sg.freq_bins = 48;
  sg.cells.assign(sg.time_bins * sg.freq_bins, 0.0f);

  for (std::size_t t = 0; t < sg.time_bins; ++t) {
    const double ts = (static_cast<double>(t) + 0.5) * 0.25e-3;
    for (std::size_t f = 0; f < sg.freq_bins; ++f) {
      sg.at(t, f) = 0.7f;  // continuous downlink
    }
    // PSS every 5 ms: the central ~0.93 MHz lights up brighter for one
    // symbol-scale time bin.
    const double phase = std::fmod(ts, 5e-3);
    if (phase < 0.25e-3) {
      const std::size_t c0 = sg.freq_bins / 2 - 2;
      for (std::size_t f = c0; f < c0 + 4; ++f) sg.at(t, f) = 1.0f;
    }
  }
  return sg;
}

dsp::EmpiricalCdf weekly_occupancy_cdf(Technology tech, Site site,
                                       dsp::Rng& rng) {
  const OccupancyModel model(tech, site);
  return dsp::EmpiricalCdf(model.week_of_samples(rng));
}

}  // namespace lscatter::traffic
