#pragma once
// Ambient-traffic occupancy models (paper §2, Figs. 4c/17/22/27).
//
// "Traffic occupancy ratio" = fraction of time the band carries a signal,
// measured per hour. LTE is a dedicated downlink band -> 1.0 always. WiFi
// shares the ISM band and is bursty -> strongly time-of-day and site
// dependent. LoRa is barely deployed -> ~0.02 everywhere.
//
// The hour-of-day profiles below are parameterized from the curves the
// paper reports: home peaks in the evening, office peaks during work
// hours, the mall peaks around 8 pm at ~0.5, outdoor is sparse.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dsp/rng.hpp"

namespace lscatter::traffic {

enum class Technology : std::uint8_t { kWifi, kLora, kLte };
enum class Site : std::uint8_t {
  kHome,
  kOffice,
  kClassroom,
  kMall,
  kOutdoor,
};

const char* to_string(Technology t);
const char* to_string(Site s);

class OccupancyModel {
 public:
  OccupancyModel(Technology tech, Site site);

  Technology technology() const { return tech_; }
  Site site() const { return site_; }

  /// Mean occupancy ratio for an hour of day (0..23).
  double mean_occupancy(std::size_t hour) const;

  /// One measured occupancy sample for that hour: mean plus bounded
  /// burstiness jitter (WiFi measurements within an hour scatter widely;
  /// LTE does not).
  double sample_occupancy(std::size_t hour, dsp::Rng& rng) const;

  /// A week of hourly samples (7*24), the Fig. 4c workload.
  std::vector<double> week_of_samples(dsp::Rng& rng) const;

 private:
  Technology tech_;
  Site site_;
  std::array<double, 24> profile_{};
  double jitter_ = 0.0;
};

}  // namespace lscatter::traffic
