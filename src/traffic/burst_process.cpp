#include "traffic/burst_process.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"

namespace lscatter::traffic {

std::vector<Burst> generate_bursts(const BurstProcessConfig& config,
                                   double horizon_s, dsp::Rng& rng) {
  assert(horizon_s > 0.0);
  std::vector<Burst> bursts;
  if (config.occupancy <= 0.0) return bursts;
  if (config.occupancy >= 1.0) {
    bursts.push_back(Burst{0.0, horizon_s});
    return bursts;
  }

  // Mean off period for the target duty cycle:
  //   occupancy = on / (on + off)  =>  off = on * (1 - occ) / occ
  const double mean_gap_s = std::max(
      config.mean_burst_s * (1.0 - config.occupancy) / config.occupancy,
      config.min_gap_s);

  double t = rng.exponential(mean_gap_s);  // start idle
  while (t < horizon_s) {
    const double on = std::max(rng.exponential(config.mean_burst_s), 1e-5);
    bursts.push_back(Burst{t, std::min(on, horizon_s - t)});
    t += on;
    t += std::max(rng.exponential(mean_gap_s), config.min_gap_s);
  }
  LSCATTER_OBS_COUNTER_ADD("traffic.burst.bursts_generated", bursts.size());
  LSCATTER_OBS_HISTOGRAM_RECORD("traffic.burst.measured_occupancy",
                                measure_occupancy(bursts, horizon_s));
  return bursts;
}

double measure_occupancy(const std::vector<Burst>& bursts,
                         double horizon_s) {
  double busy = 0.0;
  for (const Burst& b : bursts) {
    const double end = std::min(b.end_s(), horizon_s);
    if (end > b.start_s) busy += end - b.start_s;
  }
  return horizon_s > 0.0 ? busy / horizon_s : 0.0;
}

bool is_busy(const std::vector<Burst>& bursts, double t_s) {
  // Binary search on start times.
  auto it = std::upper_bound(
      bursts.begin(), bursts.end(), t_s,
      [](double t, const Burst& b) { return t < b.start_s; });
  if (it == bursts.begin()) return false;
  --it;
  return t_s < it->end_s();
}

}  // namespace lscatter::traffic
