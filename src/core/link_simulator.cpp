#include "core/link_simulator.hpp"

#include <cassert>
#include <cmath>

#include "channel/awgn.hpp"
#include "dsp/db.hpp"
#include "obs/obs.hpp"
#include "tag/modulator.hpp"

namespace lscatter::core {

using dsp::cf32;
using dsp::cvec;

LinkSimulator::LinkSimulator(const LinkConfig& config)
    : config_(config),
      enodeb_(config.enodeb),
      controller_(config.enodeb.cell, config.schedule),
      demodulator_(config.enodeb.cell, config.schedule, config.search,
                   config.fec),
      reconstructor_(config.enodeb.cell),
      rng_(config.seed, 0xa02bdbf7bb3c0a7ULL) {}

double LinkSimulator::scheduled_phy_rate_bps() const {
  // Average payload bits per subframe over a full 10-subframe resync
  // period times the frame structure (sync subframes lose 2 symbols).
  const auto& cell = config_.enodeb.cell;
  const std::size_t n = cell.n_subcarriers();
  const std::size_t period =
      config_.schedule.resync_period_subframes;

  double bits = 0.0;
  const std::size_t horizon =
      std::max<std::size_t>(period * lte::kSubframesPerFrame, 20);
  for (std::size_t sf = 0; sf < horizon; ++sf) {
    if (controller_.is_listening_subframe(sf)) continue;
    const std::size_t symbols = controller_.modulatable_symbols(sf).size();
    if (symbols <= config_.schedule.preamble_symbols) continue;
    bits += static_cast<double>(
        (symbols - config_.schedule.preamble_symbols) * n);
  }
  return bits / (static_cast<double>(horizon) * 1e-3);
}

void LinkSimulator::draw_drop(dsp::Rng& rng) {
  drop_ = DropState{};
  const auto& env = config_.env;
  const auto& geo = config_.geometry;
  const dsp::Hz f{config_.enodeb.cell.carrier_hz};

  drop_.pl1_db = env.pathloss.sample_db(
      dsp::feet_to_meters(geo.enb_tag_ft), f, rng);
  drop_.pl2_db = env.pathloss.sample_db(
      dsp::feet_to_meters(geo.tag_ue_ft), f, rng);
  const dsp::Db pl_direct = env.pathloss.sample_db(
      dsp::feet_to_meters(geo.direct_ft()), f, rng);

  drop_.backscatter_rx_dbm =
      env.budget.backscatter_rx_dbm(drop_.pl1_db, drop_.pl2_db);
  drop_.direct_rx_dbm = env.budget.direct_rx_dbm(pl_direct);

  // Noise: thermal over the occupied bandwidth plus the adjacent-channel
  // residue of the (much stronger) direct LTE signal.
  const dsp::Hz occupied =
      static_cast<double>(config_.enodeb.cell.n_subcarriers()) *
      dsp::Hz{lte::kSubcarrierSpacingHz};
  const double thermal_mw = dsp::to_mw(
      channel::noise_floor_dbm(occupied, env.budget.noise_figure_db));
  const double leak_mw = dsp::to_mw(drop_.direct_rx_dbm - env.acir_db);
  drop_.noise_dbm = dsp::from_mw(thermal_mw + leak_mw);

  // Double-hop small-scale fading: product of two independent unit-power
  // scalars (flat within the band; see DESIGN.md). Each hop is Rician with
  // the profile's K-factor (LoS) or Rayleigh (NLoS).
  const auto draw_scalar = [&](bool los) -> cf32 {
    if (!los) return rng.complex_normal(1.0);
    const double k = env.fading.rician_k_db.linear();
    const double los_amp = std::sqrt(k / (k + 1.0));
    return cf32{static_cast<float>(los_amp), 0.0f} +
           rng.complex_normal(1.0 / (k + 1.0));
  };
  drop_.fade = draw_scalar(env.fading.los) * draw_scalar(env.fading.los);
  drop_.direct_fade = draw_scalar(env.fading.los);

  drop_.mean_snr_db = drop_.backscatter_rx_dbm - drop_.noise_dbm;
}

LinkMetrics LinkSimulator::run(std::size_t n_subframes) {
  LSCATTER_OBS_SPAN("core.link.run");
  LSCATTER_OBS_COUNTER_INC("core.link.drops");
  LSCATTER_OBS_COUNTER_ADD("core.link.subframes", n_subframes);
  dsp::Rng drop_rng = rng_.fork();
  dsp::Rng noise_rng = rng_.fork();
  dsp::Rng sync_rng = rng_.fork();
  dsp::Rng payload_rng = rng_.fork();
  draw_drop(drop_rng);

  const auto& cell = config_.enodeb.cell;
  const std::size_t sf_samples = cell.samples_per_subframe();
  const double amp_bs =
      channel::amplitude(drop_.backscatter_rx_dbm);
  const double noise_mw = dsp::to_mw(drop_.noise_dbm);

  // Tag RF gain: amplitude (budget already includes conversion loss) times
  // fade, plus the switching-delay phase, constant over the run.
  const double tag_phase = sync_rng.uniform(0.0, dsp::kTwoPi);
  const cf32 gain =
      drop_.fade *
      cf32{static_cast<float>(amp_bs * std::cos(tag_phase)),
           static_cast<float>(amp_bs * std::sin(tag_phase))};

  // Optional frequency-selective tag->UE hop: one TDL realization per
  // drop, unit average power (the link budget keeps the path loss).
  std::optional<channel::TdlChannel> selective;
  if (config_.env.frequency_selective) {
    selective.emplace(config_.env.fading,
                      dsp::Hz{config_.enodeb.cell.sample_rate_hz()},
                      drop_rng);
  }

  // Tag sync state.
  double sync_error_s = config_.sync.sample_error_s(sync_rng);
  double since_resync_s = 0.0;

  LinkMetrics metrics;
  metrics.elapsed_s = static_cast<double>(n_subframes) * 1e-3;

  const std::size_t packet_sfs = config_.schedule.packet_subframes;
  for (std::size_t sf0 = 0; sf0 + packet_sfs <= n_subframes;
       sf0 += packet_sfs) {
    // Gather the packet's subframes.
    cvec ambient;
    cvec rx;
    ambient.reserve(packet_sfs * sf_samples);
    rx.reserve(packet_sfs * sf_samples);

    const std::size_t capacity = controller_.packet_raw_bits(sf0);
    const bool sends_data = capacity > 32;

    std::vector<std::uint8_t> payload;
    std::vector<std::vector<std::uint8_t>> symbol_payloads;
    if (sends_data) {
      const PacketCodec codec(capacity, config_.fec);
      payload = payload_rng.bits(codec.payload_bits());
      symbol_payloads =
          split_bits(codec.encode(payload), controller_.bits_per_symbol());
    }

    bool first_of_packet = true;
    std::size_t payload_cursor = 0;
    for (std::size_t s = 0; s < packet_sfs; ++s) {
      const std::size_t sf = sf0 + s;
      lte::SubframeTx tx = enodeb_.next_subframe();

      // Resync bookkeeping: a listening subframe refreshes the error.
      if (controller_.is_listening_subframe(sf)) {
        sync_error_s = config_.sync.sample_error_s(sync_rng);
        since_resync_s = 0.0;
      }
      const double err_now =
          config_.sync.drifted_error_s(sync_error_s, since_resync_s);
      since_resync_s += 1e-3;

      // Tag plan for this subframe.
      std::vector<std::vector<std::uint8_t>> sf_payloads;
      if (sends_data) {
        const std::size_t mod_symbols =
            controller_.is_listening_subframe(sf)
                ? 0
                : controller_.modulatable_symbols(sf).size();
        std::size_t data_symbols = mod_symbols;
        if (first_of_packet && mod_symbols > 0) {
          data_symbols -= std::min<std::size_t>(
              config_.schedule.preamble_symbols, mod_symbols);
        }
        for (std::size_t i = 0;
             i < data_symbols && payload_cursor < symbol_payloads.size();
             ++i) {
          sf_payloads.push_back(symbol_payloads[payload_cursor++]);
        }
      }
      const tag::SubframePlan plan = controller_.plan_subframe(
          sf, first_of_packet && sends_data, sf_payloads);
      if (!plan.listening) first_of_packet = false;

      const auto pattern = tag::expand_to_units(
          cell, plan, config_.schedule.window_offset_units);
      const auto err_units = static_cast<std::ptrdiff_t>(
          std::llround(err_now * cell.sample_rate_hz()));
      cvec scattered =
          tag::apply_pattern(tx.samples, pattern, err_units, gain);
      if (selective) {
        scattered = selective->apply(scattered);
      }
      if (config_.env.ue_cfo_hz.value() != 0.0) {
        // Continuous phase ramp across the run (phase tracked in
        // cfo_phase_ so subframe boundaries stay continuous).
        const double step =
            dsp::kTwoPi * config_.env.ue_cfo_hz.value() /
            cell.sample_rate_hz();
        for (auto& v : scattered) {
          v *= cf32{static_cast<float>(std::cos(cfo_phase_)),
                    static_cast<float>(std::sin(cfo_phase_))};
          cfo_phase_ += step;
          if (cfo_phase_ > dsp::kTwoPi) cfo_phase_ -= dsp::kTwoPi;
        }
      }
      channel::add_awgn(scattered, noise_mw, noise_rng);

      if (config_.ambient == AmbientSource::kGenie) {
        ambient.insert(ambient.end(), tx.samples.begin(),
                       tx.samples.end());
      } else {
        // UE original-band receive chain: direct path + thermal noise,
        // then decode-and-regenerate.
        const float amp_d = static_cast<float>(
            channel::amplitude(drop_.direct_rx_dbm));
        cvec rx_direct(tx.samples.size());
        for (std::size_t n = 0; n < rx_direct.size(); ++n) {
          rx_direct[n] = drop_.direct_fade * amp_d * tx.samples[n];
        }
        const double thermal_mw = dsp::to_mw(channel::noise_floor_dbm(
            static_cast<double>(cell.n_subcarriers()) *
                dsp::Hz{lte::kSubcarrierSpacingHz},
            config_.env.budget.noise_figure_db));
        channel::add_awgn(rx_direct, thermal_mw, noise_rng);

        if (config_.ambient == AmbientSource::kBlind) {
          const auto rec = reconstructor_.reconstruct_blind(
              rx_direct, sf, config_.enodeb.enable_pbch,
              config_.enodeb.sync_boost_db);
          if (rec) {
            drop_.ambient_re_total += rec->re_total;
            ambient.insert(ambient.end(), rec->samples.begin(),
                           rec->samples.end());
          } else {
            // DCI lost: no usable ambient reference for this subframe.
            ambient.insert(ambient.end(), tx.samples.size(), cf32{});
          }
        } else {
          const ReconstructionResult rec = reconstructor_.reconstruct(
              rx_direct, tx, config_.enodeb.modulation);
          drop_.ambient_re_errors += rec.re_errors;
          drop_.ambient_re_total += rec.re_total;
          ambient.insert(ambient.end(), rec.samples.begin(),
                         rec.samples.end());
        }
      }
      rx.insert(rx.end(), scattered.begin(), scattered.end());
    }

    if (!sends_data) continue;

    metrics.packets_sent += 1;
    metrics.bits_sent += payload.size();

    const PacketDemodResult res =
        demodulator_.demodulate_packet(rx, ambient, sf0);
    if (!res.preamble_found) {
      metrics.bit_errors += payload.size() / 2;  // chance level
      continue;
    }
    metrics.packets_detected += 1;

    // BER over the decoded payload bits (after FEC when enabled).
    const PacketCodec codec(capacity, config_.fec);
    const auto plain =
        config_.fec == Fec::kNone
            ? codec.dewhiten(res.coded_bits)
            : codec.decode_soft_bits(res.soft_bits);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      if (plain[i] != payload[i]) ++errors;
    }
    metrics.bit_errors += errors;

    const std::size_t correct = payload.size() - errors;
    metrics.bits_delivered +=
        correct > errors ? correct - errors : 0;  // chance-corrected

    if (res.payload && *res.payload == payload) {
      metrics.packets_ok += 1;
      metrics.bits_crc_ok += payload.size();
    }
  }
  return metrics;
}

}  // namespace lscatter::core
