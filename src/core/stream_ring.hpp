#pragma once
// Lock-free SPSC ring buffer for IQ sample ingestion (DESIGN.md §15).
//
// A real-time producer (the SDR read thread) must never block and never
// allocate, yet a decode worker that falls behind must not corrupt the
// stream — it must lose the *oldest* samples, explicitly counted. The
// ring therefore holds fixed-size chunks of (rx, ambient) sample pairs,
// each tagged with its absolute stream position, and implements
// overwrite-oldest backpressure:
//
//   * the producer owns `head_` (a monotonically increasing chunk
//     sequence number, release-published after the slot is written);
//   * the consumer claims the oldest chunk by CAS on `tail_` and copies
//     it out; `head_ - tail_` is the current fill;
//   * when the ring is full the producer CASes `tail_` forward itself,
//     dropping the oldest chunk (drop-oldest policy) and counting its
//     samples into dropped_samples();
//   * the consumer announces the slot it is copying through `reading_`
//     *before* its claim-CAS; in the pathological case where the
//     producer laps the whole ring onto the very slot being copied, the
//     producer drops the *incoming* chunk instead (push_rejected) rather
//     than tearing the read or blocking. This is the only deviation from
//     strict drop-oldest and it requires the consumer to be a full ring
//     behind mid-copy.
//
// Memory ordering: slot payloads are plain arrays, synchronized solely by
// the release-store of `head_` (producer) and acquire-loads of it
// (consumer) — a consumer that claimed chunk `t` has observed
// `head_ > t` and therefore the slot write. The claim/drop CASes on
// `tail_` and the `reading_` announcements use seq_cst so the producer's
// "is the consumer inside my write target" check and the consumer's
// announcement cannot reorder past each other. head_/tail_ live on
// separate cache lines so the producer and consumer do not false-share.
//
// Gap detection is the consumer's job: chunks carry `stream_pos` (the
// absolute index of their first sample), so a jump past the expected
// position is exactly the number of samples dropped between two pops.
//
// Counters/gauges (through obs): `core.stream.dropped` (samples lost to
// drop-oldest or a rejected push), `core.stream.ring_high_water` (max
// observed fill in chunks).

#include <atomic>
#include <cstdint>
#include <span>

#include "dsp/types.hpp"

namespace lscatter::core {

class StreamRing {
 public:
  /// One popped chunk, copied into consumer-owned storage. rx/ambient
  /// are parallel and `size` samples long (<= chunk_samples()).
  struct Chunk {
    std::uint64_t stream_pos = 0;  // absolute index of rx[0]
    double push_time_s = 0.0;      // producer's monotonic timestamp
    std::size_t size = 0;
    dsp::cvec rx;
    dsp::cvec ambient;
  };

  /// `chunk_samples` is the slot granularity (pushes are split across
  /// slots); `chunks` is the ring capacity in slots. All slot storage is
  /// allocated here — push/pop never touch the heap.
  StreamRing(std::size_t chunk_samples, std::size_t chunks);

  StreamRing(const StreamRing&) = delete;
  StreamRing& operator=(const StreamRing&) = delete;

  std::size_t chunk_samples() const { return chunk_samples_; }
  std::size_t capacity_chunks() const { return n_; }

  /// Producer side (exactly one thread). Appends `rx`/`ambient` (equal
  /// length) at `push_time_s` (monotonic seconds, caller-supplied so the
  /// ring itself reads no clocks), splitting across as many slots as
  /// needed. Never blocks: a full ring drops the oldest chunk per slot
  /// written; a slot the consumer is mid-copying rejects the incoming
  /// chunk instead. Returns the number of samples accepted.
  std::size_t push(std::span<const dsp::cf32> rx,
                   std::span<const dsp::cf32> ambient, double push_time_s);

  /// Consumer side (exactly one thread). Copies the oldest available
  /// chunk into `out` (rx/ambient are resized once to chunk_samples()
  /// and reused). Returns false when the ring is empty.
  bool pop(Chunk& out);

  /// Chunks currently buffered (producer + consumer callable; racy by
  /// nature, exact when quiescent).
  std::size_t fill() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(h - t);
  }

  /// Total samples accepted by push().
  std::uint64_t pushed_samples() const {
    return pushed_samples_.load(std::memory_order_relaxed);
  }
  /// Samples lost: drop-oldest laps plus rejected pushes.
  std::uint64_t dropped_samples() const {
    return dropped_samples_.load(std::memory_order_relaxed);
  }
  /// Incoming chunks rejected because the consumer was mid-copy of the
  /// producer's write target (the pathological full-lap case).
  std::uint64_t push_rejected() const {
    return push_rejected_.load(std::memory_order_relaxed);
  }
  /// Highest fill (in chunks) ever observed by the producer.
  std::size_t high_water_chunks() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Absolute stream position of the next pushed sample. Producer-thread
  /// only (plain read of producer-owned state).
  std::uint64_t producer_position() const { return stream_pos_; }

 private:
  struct Slot {
    std::uint64_t stream_pos = 0;
    double push_time_s = 0.0;
    std::uint32_t size = 0;
  };

  /// Write one slot's worth (n <= chunk_samples_). Returns samples
  /// accepted (0 when the push was rejected).
  std::size_t push_slot(const dsp::cf32* rx, const dsp::cf32* ambient,
                        std::size_t n, double push_time_s);

  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  const std::size_t chunk_samples_;
  const std::size_t n_;

  // Slot metadata + payload, indexed by sequence % n_. Payload lives in
  // two flat arrays so a slot copy is two contiguous memcpys.
  std::vector<Slot> slots_;
  dsp::cvec rx_store_;
  dsp::cvec ambient_store_;

  /// Producer-owned running stream position (samples).
  std::uint64_t stream_pos_ = 0;

  // head_: next sequence the producer will write (producer-owned,
  // release-published). tail_: oldest unconsumed sequence (CAS-shared:
  // consumer claims, producer drops). reading_: sequence the consumer is
  // currently copying, kIdle otherwise. Cache-line padding keeps the
  // producer's head_ writes off the consumer's tail_ line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> reading_{kIdle};

  alignas(64) std::atomic<std::uint64_t> pushed_samples_{0};
  std::atomic<std::uint64_t> dropped_samples_{0};
  std::atomic<std::uint64_t> push_rejected_{0};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace lscatter::core
