#include "core/stream_ring.hpp"

#include <algorithm>
#include <cstring>

#include "core/contracts.hpp"
#include "obs/obs.hpp"

namespace lscatter::core {

StreamRing::StreamRing(std::size_t chunk_samples, std::size_t chunks)
    : chunk_samples_(chunk_samples), n_(chunks) {
  LSCATTER_EXPECT(chunk_samples_ > 0, "stream_ring: chunk_samples must be > 0");
  LSCATTER_EXPECT(n_ >= 2, "stream_ring: need at least 2 chunks");
  slots_.resize(n_);
  rx_store_.resize(n_ * chunk_samples_);
  ambient_store_.resize(n_ * chunk_samples_);
}

std::size_t StreamRing::push(std::span<const dsp::cf32> rx,
                             std::span<const dsp::cf32> ambient,
                             double push_time_s) {
  LSCATTER_EXPECT(rx.size() == ambient.size(),
                  "stream_ring: rx/ambient length mismatch");
  std::size_t accepted = 0;
  std::size_t off = 0;
  while (off < rx.size()) {
    const std::size_t n = std::min(chunk_samples_, rx.size() - off);
    accepted += push_slot(rx.data() + off, ambient.data() + off, n,
                          push_time_s);
    off += n;
  }
  return accepted;
}

std::size_t StreamRing::push_slot(const dsp::cf32* rx,
                                  const dsp::cf32* ambient, std::size_t n,
                                  double push_time_s) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);

  // Backpressure: ring full -> drop the oldest chunk ourselves. The CAS
  // races with the consumer's claim; whoever wins advances tail_, so on
  // failure the ring is no longer full and we proceed.
  std::uint64_t t = tail_.load(std::memory_order_seq_cst);
  if (h - t == n_) {
    const std::uint32_t lost = slots_[t % n_].size;
    if (tail_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
      dropped_samples_.fetch_add(lost, std::memory_order_relaxed);
      LSCATTER_OBS_COUNTER_ADD("core.stream.dropped", lost);
    }
  }

  // The consumer may still be copying the slot we are about to reuse (it
  // claimed it, then we lapped the entire ring). Writing would tear its
  // read, blocking would break the real-time producer — so drop the
  // *incoming* chunk. reading_ is published seq_cst before the
  // consumer's claim-CAS, so either we see it here or the consumer's
  // claim already advanced tail_ past the full condition above.
  const std::uint64_t r = reading_.load(std::memory_order_seq_cst);
  if (r != kIdle && r % n_ == h % n_) {
    dropped_samples_.fetch_add(n, std::memory_order_relaxed);
    push_rejected_.fetch_add(1, std::memory_order_relaxed);
    LSCATTER_OBS_COUNTER_ADD("core.stream.dropped", n);
    LSCATTER_OBS_COUNTER_INC("core.stream.push_rejected");
    // The stream position still advances: the samples existed, the
    // consumer will see them as a gap.
    stream_pos_ += n;
    return 0;
  }

  Slot& slot = slots_[h % n_];
  slot.stream_pos = stream_pos_;
  slot.push_time_s = push_time_s;
  slot.size = static_cast<std::uint32_t>(n);
  std::memcpy(rx_store_.data() + (h % n_) * chunk_samples_, rx,
              n * sizeof(dsp::cf32));
  std::memcpy(ambient_store_.data() + (h % n_) * chunk_samples_, ambient,
              n * sizeof(dsp::cf32));
  head_.store(h + 1, std::memory_order_release);

  stream_pos_ += n;
  pushed_samples_.fetch_add(n, std::memory_order_relaxed);

  const std::size_t fill_now =
      static_cast<std::size_t>(h + 1 - tail_.load(std::memory_order_relaxed));
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (fill_now > hw &&
         !high_water_.compare_exchange_weak(hw, fill_now,
                                            std::memory_order_relaxed)) {
  }
  LSCATTER_OBS_GAUGE_MAX("core.stream.ring_high_water",
                         static_cast<double>(fill_now));
  return n;
}

bool StreamRing::pop(Chunk& out) {
  for (;;) {
    std::uint64_t t = tail_.load(std::memory_order_seq_cst);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t == h) return false;  // empty

    // Announce the slot we are about to copy BEFORE claiming it, so a
    // producer lapping onto this slot sees the announcement and backs
    // off (push_slot's reading_ check).
    reading_.store(t, std::memory_order_seq_cst);
    if (!tail_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
      // Producer dropped this chunk first; retry with the new tail.
      reading_.store(kIdle, std::memory_order_seq_cst);
      continue;
    }

    const Slot& slot = slots_[t % n_];
    out.stream_pos = slot.stream_pos;
    out.push_time_s = slot.push_time_s;
    out.size = slot.size;
    if (out.rx.size() != chunk_samples_) out.rx.resize(chunk_samples_);
    if (out.ambient.size() != chunk_samples_)
      out.ambient.resize(chunk_samples_);
    std::memcpy(out.rx.data(),
                rx_store_.data() + (t % n_) * chunk_samples_,
                slot.size * sizeof(dsp::cf32));
    std::memcpy(out.ambient.data(),
                ambient_store_.data() + (t % n_) * chunk_samples_,
                slot.size * sizeof(dsp::cf32));
    reading_.store(kIdle, std::memory_order_release);
    return true;
  }
}

}  // namespace lscatter::core
