#pragma once
// Pipelined multi-cell streaming decode (DESIGN.md §15).
//
// The chassis of the always-on receiver (ROADMAP item 3): one lock-free
// StreamRing plus one StreamingReceiver per monitored carrier, decoded by
// a pool of worker threads. Carriers are statically sharded — worker
// w owns every carrier c with c % threads == w — so each carrier's
// decode stays strictly serial and the emitted packet stream is
// bit-identical to feeding the same IQ through a lone StreamingReceiver,
// at any thread count (the sim_pool determinism guarantee, extended to
// streaming).
//
//   core::DecodePipeline::Config cfg;
//   cfg.carriers.push_back(receiver_config);   // one per carrier
//   cfg.on_packet = [](std::size_t carrier, const auto& ev) { ... };
//   core::DecodePipeline pipe(cfg);
//   pipe.start();
//   pipe.push(carrier, rx, ambient);           // SDR thread, never blocks
//   ...
//   pipe.stop();                               // drains rings, joins
//
// Backpressure is the ring's oldest-first drop policy: a producer never
// blocks, a slow consumer loses the oldest chunks, and the receiver is
// told about the hole via notify_gap() so it re-phases (or re-acquires)
// instead of decoding across the discontinuity.
//
// The hot path takes no locks: rings are SPSC atomics, receivers are
// worker-owned, and workers poll with a yield/short-sleep backoff that
// bounds wake latency without burning an idle core. The FFT plan cache
// (dsp::cached_fft_plan) is the only shared read path, behind its
// shared_mutex. on_packet is invoked from worker threads — it must be
// thread-safe if it shares state across carriers.
//
// Latency accounting: each chunk carries its push() timestamp; when a
// packet completes, now - push_time of the chunk that completed it is
// recorded into `core.pipeline.e2e.seconds`, and push/decode spans share
// a flow id (carrier, stream position) so Perfetto renders the
// cross-thread hop as a connected arc.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/stream_ring.hpp"
#include "core/streaming_receiver.hpp"

namespace lscatter::core {

class DecodePipeline {
 public:
  /// Called from a worker thread for every demodulated packet.
  using PacketSink = std::function<void(
      std::size_t carrier, const StreamingReceiver::PacketEvent& event)>;

  struct Config {
    /// One receiver configuration per carrier (>= 1).
    std::vector<StreamingReceiver::Config> carriers;

    /// Ring slot granularity in samples. 0 = one subframe of the first
    /// carrier's numerology.
    std::size_t ring_chunk_samples = 0;

    /// Ring capacity in chunks (per carrier).
    std::size_t ring_chunks = 64;

    /// Worker count. 0 = auto (LSCATTER_THREADS / hardware concurrency,
    /// via core::resolve_threads); always capped at the carrier count.
    std::size_t threads = 0;

    PacketSink on_packet;
  };

  explicit DecodePipeline(const Config& config);
  ~DecodePipeline();

  DecodePipeline(const DecodePipeline&) = delete;
  DecodePipeline& operator=(const DecodePipeline&) = delete;

  /// Launch the worker threads. Idempotent.
  void start();

  /// Drain every ring, then stop and join the workers. Idempotent.
  void stop();

  /// Producer entry (one producer thread per carrier): append IQ to the
  /// carrier's ring. Never blocks; under backpressure the oldest chunks
  /// are dropped and surface as a decode gap. Returns samples accepted.
  std::size_t push(std::size_t carrier, std::span<const dsp::cf32> rx,
                   std::span<const dsp::cf32> ambient);

  std::size_t carriers() const { return rings_.size(); }
  std::size_t threads() const { return threads_; }

  const StreamRing& ring(std::size_t carrier) const {
    return *rings_[carrier];
  }

  /// The carrier's receiver. Safe to inspect after stop() (or before
  /// start()); while workers run it is worker-owned.
  const StreamingReceiver& receiver(std::size_t carrier) const {
    return *receivers_[carrier];
  }

  /// Packets demodulated across all carriers (relaxed running count).
  std::uint64_t packets_decoded() const {
    return packets_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t worker_index);
  /// Drain + decode whatever is available on one carrier's ring.
  /// Returns the number of chunks consumed.
  std::size_t service_carrier(std::size_t carrier);

  Config config_;
  std::size_t threads_;
  std::vector<std::unique_ptr<StreamRing>> rings_;
  std::vector<std::unique_ptr<StreamingReceiver>> receivers_;
  /// Per-carrier decode cursor: the absolute stream position the next
  /// popped chunk should start at; a jump past it is a drop gap.
  std::vector<std::uint64_t> expected_pos_;
  /// Per-carrier reused pop target (worker-owned).
  std::vector<StreamRing::Chunk> chunks_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  std::atomic<std::uint64_t> packets_{0};
};

}  // namespace lscatter::core
