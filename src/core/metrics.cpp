#include "core/metrics.hpp"

#include <cstdio>

namespace lscatter::core {

LinkMetrics& LinkMetrics::operator+=(const LinkMetrics& other) {
  bits_sent += other.bits_sent;
  bit_errors += other.bit_errors;
  bits_delivered += other.bits_delivered;
  bits_crc_ok += other.bits_crc_ok;
  packets_sent += other.packets_sent;
  packets_detected += other.packets_detected;
  packets_ok += other.packets_ok;
  elapsed_s += other.elapsed_s;
  return *this;
}

std::string LinkMetrics::describe() const {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "bits=%zu errors=%zu BER=%.3e throughput=%.3f Mbps goodput=%.3f Mbps "
      "PDR=%.3f detect=%.3f (%zu pkts)",
      bits_sent, bit_errors, ber(), throughput_bps() / 1e6,
      goodput_bps() / 1e6, packet_delivery_ratio(),
      preamble_detection_ratio(), packets_sent);
  return buf;
}

}  // namespace lscatter::core
