#include "core/ambient_reconstructor.hpp"

#include <cmath>

#include "dsp/db.hpp"
#include "lte/pbch.hpp"
#include "lte/pdcch.hpp"
#include "lte/qam.hpp"
#include "lte/sequences.hpp"
#include "lte/signal_map.hpp"

namespace lscatter::core {

using dsp::cf32;

AmbientReconstructor::AmbientReconstructor(const lte::CellConfig& cell)
    : cell_(cell), ue_(cell), remod_(cell) {}

ReconstructionResult AmbientReconstructor::reconstruct(
    std::span<const cf32> rx_direct, const lte::SubframeTx& truth,
    lte::Modulation modulation) const {
  ReconstructionResult out;

  const lte::ResourceGrid rx_grid = ue_.demodulate_grid(rx_direct);
  const lte::ChannelEstimate est =
      ue_.estimate_channel(rx_grid, truth.subframe_index);

  // Rebuild the grid: known signals from their generators, data REs from
  // hard decisions on the equalized symbols.
  lte::ResourceGrid rebuilt(cell_);
  const float sync_amp = std::abs(
      truth.grid.at(lte::kPssSymbolIndex,
                    cell_.n_subcarriers() / 2));  // boost used by the eNB

  // Slice each data RE through the _into demap/map pair on a stack
  // buffer — the allocating qam_demodulate/qam_modulate forms cost two
  // heap vectors per resource element here.
  const std::size_t bps = lte::bits_per_symbol(modulation);
  std::uint8_t re_bits[6];
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < cell_.n_subcarriers(); ++k) {
      const lte::ReType type = truth.grid.type_at(l, k);
      switch (type) {
        case lte::ReType::kUnused:
          break;
        case lte::ReType::kPss:
        case lte::ReType::kSss:
        case lte::ReType::kCrs:
        case lte::ReType::kPbch:
        case lte::ReType::kPdcch:
          // Deterministic once the UE has acquired the cell (identity,
          // frame timing, MIB, DCI).
          rebuilt.at(l, k) = truth.grid.at(l, k);
          break;
        case lte::ReType::kData: {
          const cf32 h = est.h[k];
          const float p = std::norm(h);
          const cf32 y = rx_grid.at(l, k);
          const cf32 eq = p > 1e-12f ? y * std::conj(h) / p : y;
          lte::qam_demodulate_into(std::span<const cf32>(&eq, 1), modulation,
                                   std::span<std::uint8_t>(re_bits, bps));
          cf32 decided;
          lte::qam_modulate_into(std::span<const std::uint8_t>(re_bits, bps),
                                 modulation, std::span<cf32>(&decided, 1));
          rebuilt.at(l, k) = decided;
          ++out.re_total;
          if (std::abs(decided - truth.grid.at(l, k)) > 1e-3f) {
            ++out.re_errors;
          }
          break;
        }
      }
    }
  }
  (void)sync_amp;

  out.samples = remod_.modulate(rebuilt);
  return out;
}

std::optional<ReconstructionResult> AmbientReconstructor::reconstruct_blind(
    std::span<const cf32> rx_direct, std::size_t subframe_index,
    bool pbch_enabled, dsp::Db sync_boost_db) const {
  const lte::ResourceGrid rx_grid = ue_.demodulate_grid(rx_direct);
  const lte::ChannelEstimate est =
      ue_.estimate_channel(rx_grid, subframe_index);

  auto equalize = [&](std::size_t l, std::size_t k) -> cf32 {
    const cf32 h = est.h[k];
    const float p = std::norm(h);
    const cf32 y = rx_grid.at(l, k);
    return p > 1e-12f ? y * std::conj(h) / p : y;
  };

  // 1) Decode the DCI from the control region.
  lte::ResourceGrid eq_ctrl(cell_);
  for (const std::size_t k : lte::pdcch_subcarriers(cell_)) {
    eq_ctrl.at(lte::kPdcchSymbolIndex, k) =
        equalize(lte::kPdcchSymbolIndex, k);
  }
  const auto dci = lte::decode_pdcch(cell_, eq_ctrl);
  if (!dci) return std::nullopt;

  // 2) Derive the RE layout and regenerate everything deterministic.
  const auto types =
      lte::derive_re_types(cell_, subframe_index, *dci, pbch_enabled);
  const std::size_t n_sc = cell_.n_subcarriers();

  lte::ResourceGrid rebuilt(cell_);
  // Known signals.
  const float sync_amp = static_cast<float>(sync_boost_db.amplitude());
  lte::map_sync_signals(cell_, subframe_index % lte::kSubframesPerFrame,
                        rebuilt, sync_amp);
  lte::map_crs(cell_, subframe_index, rebuilt);
  if (pbch_enabled &&
      subframe_index % lte::kSubframesPerFrame == 0) {
    lte::Mib mib;
    mib.bandwidth = cell_.bandwidth;
    mib.sfn = static_cast<std::uint16_t>(
        (subframe_index / lte::kSubframesPerFrame) & 0x3FF);
    lte::map_pbch(cell_, mib, rebuilt);
  }
  lte::map_pdcch(cell_, *dci, rebuilt);

  // Data REs: hard decisions at the announced MCS, sliced through the
  // _into demap/map pair on a stack buffer (no per-RE heap traffic).
  ReconstructionResult out;
  const std::size_t bps = lte::bits_per_symbol(dci->mcs);
  std::uint8_t re_bits[6];
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < n_sc; ++k) {
      if (types[l * n_sc + k] != lte::ReType::kData) continue;
      const cf32 eq = equalize(l, k);
      lte::qam_demodulate_into(std::span<const cf32>(&eq, 1), dci->mcs,
                               std::span<std::uint8_t>(re_bits, bps));
      cf32 decided;
      lte::qam_modulate_into(std::span<const std::uint8_t>(re_bits, bps),
                             dci->mcs, std::span<cf32>(&decided, 1));
      rebuilt.at(l, k) = decided;
      ++out.re_total;
    }
  }
  out.samples = remod_.modulate(rebuilt);
  return out;
}

}  // namespace lscatter::core
