#pragma once
// Backscatter packet framing: CRC-32 protection + whitening.
//
// A packet's bit budget is fixed by the tag schedule (number of modulated
// symbols x N_sc bits), so no length header is needed; the payload is
// always capacity - 32 bits. Whitening XORs the coded bits with a Gold
// sequence so the on-air unit pattern has no long constant runs even for
// degenerate payloads (long runs would look like filler to the receiver's
// phase estimator).

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/types.hpp"

namespace lscatter::core {

/// Forward error correction applied to the backscatter packet. kNone is
/// the paper's scheme (uncoded BPSK units); kConvolutional adds the
/// rate-1/2 K=7 code with soft Viterbi decoding — ~5 dB of coding gain
/// for half the rate (library extension; see the ablation bench).
enum class Fec : std::uint8_t { kNone, kConvolutional };

class PacketCodec {
 public:
  /// `coded_bits` is the on-air packet size in modulated units.
  explicit PacketCodec(std::size_t coded_bits, Fec fec = Fec::kNone);

  std::size_t coded_bits() const { return coded_bits_; }
  Fec fec() const { return fec_; }

  /// Application payload capacity (CRC-32 and FEC overhead removed).
  std::size_t payload_bits() const { return payload_bits_; }

  /// payload (payload_bits() long) -> whitened on-air bits
  /// (coded_bits() long; FEC-encoded when enabled, padded to size).
  std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> payload) const;

  /// Hard-decision inverse of encode(); nullopt when the CRC fails.
  std::optional<std::vector<std::uint8_t>> decode(
      std::span<const std::uint8_t> coded) const;

  /// Allocation-free hard decode for the streaming hot path: de-whitens
  /// `coded` through `scratch` (resized once, reused across calls) and,
  /// on CRC pass, assigns the payload into `payload_out` (likewise
  /// reused). Returns false on CRC failure (payload_out untouched).
  /// kNone only — kConvolutional falls back to the allocating path
  /// internally.
  bool decode_hard_into(std::span<const std::uint8_t> coded,
                        std::vector<std::uint8_t>& scratch,
                        std::vector<std::uint8_t>& payload_out) const;

  /// Soft-decision decode from per-unit metrics (positive = bit 1, the
  /// slicer convention). Only meaningful with FEC; falls back to hard
  /// slicing for kNone.
  std::optional<std::vector<std::uint8_t>> decode_soft(
      std::span<const float> soft) const;

  /// Soft decode to the info block (payload + CRC32) *without* CRC
  /// enforcement — for BER accounting on packets that fail the check.
  std::vector<std::uint8_t> decode_soft_bits(
      std::span<const float> soft) const;

  /// De-whiten without CRC/FEC (for raw BER counting on bad packets).
  std::vector<std::uint8_t> dewhiten(
      std::span<const std::uint8_t> coded) const;

 private:
  std::optional<std::vector<std::uint8_t>> finish_decode(
      std::vector<std::uint8_t> crc_block) const;

  std::size_t coded_bits_;
  Fec fec_;
  std::size_t payload_bits_;
  std::vector<std::uint8_t> whitening_;
};

/// Split `bits` into consecutive chunks of `chunk` bits; the last chunk is
/// padded with alternating 1/0 filler. Precondition: chunk > 0.
std::vector<std::vector<std::uint8_t>> split_bits(
    std::span<const std::uint8_t> bits, std::size_t chunk);

/// Concatenate chunks back into a flat bit vector, keeping only the first
/// `total` bits.
std::vector<std::uint8_t> join_bits(
    const std::vector<std::vector<std::uint8_t>>& chunks, std::size_t total);

}  // namespace lscatter::core
