#include "core/modulation_offset.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace lscatter::core {

using dsp::cf32;

std::optional<OffsetResult> find_modulation_offset(
    std::span<const cf32> z, std::span<const std::uint8_t> pattern,
    std::ptrdiff_t nominal_start, const OffsetSearch& search) {
  const std::size_t n = pattern.size();
  LSCATTER_EXPECT(n > 0, "offset search needs a non-empty pattern");
  LSCATTER_EXPECT(z.size() >= n,
                  "product vector must cover the pattern");

  const auto lo = -static_cast<std::ptrdiff_t>(search.range_units);
  const auto hi = static_cast<std::ptrdiff_t>(search.range_units);

  OffsetResult best;
  bool found = false;
  for (std::ptrdiff_t d = lo; d <= hi; ++d) {
    const std::ptrdiff_t start = nominal_start + d;
    if (start < 0 ||
        start + static_cast<std::ptrdiff_t>(n) >
            static_cast<std::ptrdiff_t>(z.size())) {
      continue;
    }
    dsp::cf64 acc{};
    double abs_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const cf32 v = z[static_cast<std::size_t>(start) + i];
      const double sgn = pattern[i] ? 1.0 : -1.0;
      acc += dsp::cf64{v.real() * sgn, v.imag() * sgn};
      abs_sum += std::abs(v);
    }
    if (abs_sum <= 0.0) continue;
    const float metric = static_cast<float>(std::abs(acc) / abs_sum);
    if (!found || metric > best.metric) {
      found = true;
      best.metric = metric;
      best.offset_units = d;
      best.gain = cf32{static_cast<float>(acc.real()),
                       static_cast<float>(acc.imag())};
    }
  }
  if (!found || best.metric < search.detect_threshold) return std::nullopt;
  return best;
}

}  // namespace lscatter::core
