#include "core/modulation_offset.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "dsp/simd.hpp"

namespace lscatter::core {

using dsp::cf32;

std::optional<OffsetResult> find_modulation_offset(
    std::span<const cf32> z, std::span<const std::uint8_t> pattern,
    std::ptrdiff_t nominal_start, const OffsetSearch& search) {
  const std::size_t n = pattern.size();
  LSCATTER_EXPECT(n > 0, "offset search needs a non-empty pattern");
  LSCATTER_EXPECT(z.size() >= n,
                  "product vector must cover the pattern");

  const auto lo = -static_cast<std::ptrdiff_t>(search.range_units);
  const auto hi = static_cast<std::ptrdiff_t>(search.range_units);

  OffsetResult best;
  bool found = false;
  const dsp::SimdKernels& k = dsp::simd_kernels();
  for (std::ptrdiff_t d = lo; d <= hi; ++d) {
    const std::ptrdiff_t start = nominal_start + d;
    if (start < 0 ||
        start + static_cast<std::ptrdiff_t>(n) >
            static_cast<std::ptrdiff_t>(z.size())) {
      continue;
    }
    // The ±1-signed Eq. 7 correlation Σ sgn(pattern)·v rewrites as
    // 2·(sum over pattern==1) − (sum over all), which the pattern_sums
    // kernel computes in one pass along with Σ|v|.
    double sel_r = 0.0, sel_i = 0.0;
    double all_r = 0.0, all_i = 0.0;
    double abs_sum = 0.0;
    k.pattern_sums(z.data() + start, pattern.data(), n, &sel_r, &sel_i,
                   &all_r, &all_i, &abs_sum);
    const double acc_r = 2.0 * sel_r - all_r;
    const double acc_i = 2.0 * sel_i - all_i;
    if (abs_sum <= 0.0) continue;
    const float metric =
        static_cast<float>(std::hypot(acc_r, acc_i) / abs_sum);
    if (!found || metric > best.metric) {
      found = true;
      best.metric = metric;
      best.offset_units = d;
      best.gain = cf32{static_cast<float>(acc_r), static_cast<float>(acc_i)};
    }
  }
  if (!found || best.metric < search.detect_threshold) return std::nullopt;
  return best;
}

}  // namespace lscatter::core
