#pragma once
// Parallel Monte-Carlo drop engine (DESIGN.md §9).
//
// Every figure bench and sweep pools N independent channel drops of the
// same LinkConfig. Drops share nothing — each gets its own LinkSimulator
// seeded by dsp::derive_seed(base_seed, drop_index) — so the sweep is
// embarrassingly parallel. The pool fans the drop indices out across a
// worker team while keeping the results *bit-identical to the serial
// loop at any thread count*:
//
//   - the per-drop config is a pure function of (base config, index);
//   - workers claim indices from a shared cursor but deliver finished
//     results through a bounded reorder window, so the consumer always
//     observes drops in index order — floating-point accumulation order
//     is therefore independent of scheduling;
//   - the reorder window doubles as backpressure: a worker that runs too
//     far ahead of the consumer blocks until the window advances, so a
//     million-drop sweep holds O(threads + window) results, not O(drops).
//
// threads <= 1 (or unknown hardware concurrency) degrades gracefully to
// an inline serial loop over the same seed derivation and delivery
// order. Observability: gauge `core.pool.workers`, thread-sharded
// counters `core.pool.drops_completed` / `core.pool.drops_failed`
// (uncontended per-worker cells, merged in reports), gauge
// `core.pool.window_high_water`, and per-drop flow tracing — each drop
// carries a process-unique flow id through its three legs,
// `core.pool.enqueue` (claim + backpressure wait, worker thread),
// `core.pool.drop` (execute, worker thread) and `core.pool.deliver`
// (in-order consume, caller thread), each with a `.seconds` histogram;
// trace_export links the legs into one connected arc in Perfetto.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/metrics.hpp"

namespace lscatter::core {

struct PoolOptions {
  /// Worker count. 0 = auto: LSCATTER_THREADS env var when set, else
  /// std::thread::hardware_concurrency() (1 when unknown).
  std::size_t threads = 0;

  /// Reorder-window capacity (completed drops buffered ahead of the
  /// consumer). 0 = auto: max(2 * threads, 8). Smaller windows bound
  /// memory tighter at the cost of more worker stalls.
  std::size_t window = 0;
};

/// Resolve a requested thread count per the PoolOptions::threads rules.
/// Always returns >= 1.
std::size_t resolve_threads(std::size_t requested);

/// Per-drop config: `base` with seeds re-derived for `drop_index`
/// (cfg.seed = derive_seed(base.seed, index); enodeb.seed derived from
/// that). Exposed so tests and custom sweeps reproduce any single drop.
LinkConfig config_for_drop(const LinkConfig& base, std::size_t drop_index);

struct DropOutcome {
  std::size_t drop_index = 0;
  LinkMetrics metrics;
};

/// Run `drops` independent drops of `subframes` each and hand every
/// outcome to `consume` strictly in drop-index order, on the calling
/// thread. Exceptions from a worker (e.g. a contract violation in throw
/// mode) or from `consume` stop the pool, join the workers, and
/// propagate to the caller.
void for_each_drop(const LinkConfig& base, std::size_t drops,
                   std::size_t subframes, const PoolOptions& options,
                   const std::function<void(const DropOutcome&)>& consume);

/// As above, but drop `d` simulates `make_config(d)` instead of
/// `config_for_drop(base, d)` — for sweeps whose per-drop seeds are not
/// derivable from one base seed (the day studies draw each sample's
/// seed from a shared rng stream). `make_config` is called from worker
/// threads, possibly concurrently and in any index order: it must be a
/// pure function of the index.
void for_each_drop(std::size_t drops, std::size_t subframes,
                   const PoolOptions& options,
                   const std::function<LinkConfig(std::size_t)>& make_config,
                   const std::function<void(const DropOutcome&)>& consume);

/// Pooled result of a sweep: metrics summed in drop order plus the
/// per-drop throughput samples (index order) for quantile summaries.
struct DropSweep {
  LinkMetrics total;
  std::vector<double> throughputs_bps;
};

/// Convenience wrapper over for_each_drop; `threads` as PoolOptions.
DropSweep run_drops_parallel(const LinkConfig& base, std::size_t drops,
                             std::size_t subframes,
                             std::size_t threads = 0);

}  // namespace lscatter::core
