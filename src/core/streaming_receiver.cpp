#include "core/streaming_receiver.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"
#if LSCATTER_OBS_ENABLED
#include "obs/family.hpp"
#include "obs/span.hpp"
#endif

namespace lscatter::core {

#if LSCATTER_OBS_ENABLED
namespace {

// Per-stage latency breakdown as one labeled histogram family
// (DESIGN.md §12): core.stream.stage.seconds{stage=acquire|demod|feed}.
// Cells are resolved once at first use and cached — the feed loop below
// must never take the family mutex per packet (lscatter-lint obs-loop).
obs::Histogram& stream_stage_cell(const char* stage) {
  static obs::HistogramFamily family("core.stream.stage.seconds", "stage");
  return family.cell(std::string_view(stage));
}

}  // namespace
#endif

StreamingReceiver::StreamingReceiver(const Config& config)
    : config_(config),
      demodulator_(config.cell, config.schedule, config.search),
      samples_per_packet_(config.schedule.packet_subframes *
                          config.cell.samples_per_subframe()),
      next_subframe_(config.first_subframe_index) {
  if (config_.acquire_alignment) {
    aligned_ = false;
    searcher_.emplace(config_.cell);
  }
}

bool StreamingReceiver::try_acquire() {
#if LSCATTER_OBS_ENABLED
  static obs::Histogram& acquire_latency = stream_stage_cell("acquire");
  obs::ScopedTimer stage_timer(acquire_latency);
#endif
  const std::size_t frame_len = config_.cell.samples_per_frame();
  const std::size_t min_needed =
      config_.acquire_min_samples != 0
          ? config_.acquire_min_samples
          : frame_len + config_.cell.fft_size();
  if (buffered_samples() < min_needed) return false;

  const std::span<const dsp::cf32> window(rx_buffer_.data() + consumed_,
                                          buffered_samples());
  const auto res = searcher_->search(window, config_.acquire_min_metric);
  if (res) {
    // frame_start is modulo one frame relative to the window start; drop
    // everything before it so the next carved sample is subframe 0.
    consumed_ += res->frame_start;
    next_subframe_ = 0;
    aligned_ = true;
    LSCATTER_OBS_COUNTER_INC("core.stream.acquired");
    return true;
  }

  // No PSS in this window. Keep only the most recent frame so the buffer
  // stays bounded while we wait for a stronger signal.
  LSCATTER_OBS_COUNTER_INC("core.stream.acquire_failed");
  if (buffered_samples() > frame_len) {
    consumed_ += buffered_samples() - frame_len;
  }
  return false;
}

void StreamingReceiver::notify_gap(std::uint64_t gap_samples) {
  if (gap_samples == 0) return;
  ++gaps_;
  LSCATTER_OBS_COUNTER_INC("core.stream.gaps");
  LSCATTER_OBS_COUNTER_ADD("core.stream.gap_samples", gap_samples);
  // Buffered pre-gap samples can no longer complete a packet: the
  // continuation they were waiting for is the hole. clear() keeps the
  // vectors' capacity, so this path stays allocation-free.
  rx_buffer_.clear();
  ambient_buffer_.clear();
  consumed_ = 0;
  stream_pos_ += gap_samples;

  if (config_.acquire_alignment) {
    // Real SDR timing is lost with the samples — go back to cold PSS
    // reacquisition from the post-gap stream.
    aligned_ = false;
    skip_ = 0;
    return;
  }

  // Aligned mode: the stream's frame phase is positional (sample 0 =
  // start of first_subframe_index), so advance deterministically to the
  // next packet boundary after the gap and resume carving there.
  const std::uint64_t spp = samples_per_packet_;
  skip_ = (spp - stream_pos_ % spp) % spp;
  const std::uint64_t sps = config_.cell.samples_per_subframe();
  next_subframe_ =
      config_.first_subframe_index +
      static_cast<std::size_t>((stream_pos_ + skip_) / sps);
}

std::span<const StreamingReceiver::PacketEvent> StreamingReceiver::feed(
    std::span<const dsp::cf32> rx, std::span<const dsp::cf32> ambient) {
#if LSCATTER_OBS_ENABLED
  static obs::Histogram& feed_latency = stream_stage_cell("feed");
  static obs::Histogram& demod_latency = stream_stage_cell("demod");
  obs::ScopedTimer stage_timer(feed_latency);
#endif
#if LSCATTER_CHECKS_ENABLED
  // Thread-affinity check for the single-owner contract (see header):
  // the first feed() pins the owner thread, every later call must match.
  if (owner_thread_ == std::thread::id{}) {
    owner_thread_ = std::this_thread::get_id();
  }
  LSCATTER_EXPECT(owner_thread_ == std::this_thread::get_id(),
                  "StreamingReceiver::feed called from a second thread; "
                  "the receiver is single-owner (wrap it in a lock or use "
                  "one receiver per stream)");
#endif
  LSCATTER_OBS_COUNTER_INC("core.stream.feeds");
  assert(rx.size() == ambient.size());
  // Release builds tolerate a mismatched call by truncating to the
  // common prefix: losing the tail of one chunk beats silently carving
  // packets out of misaligned (rx, ambient) pairs.
  const std::size_t n = std::min(rx.size(), ambient.size());
  if (rx.size() != ambient.size()) {
    LSCATTER_OBS_COUNTER_INC("core.stream.length_mismatch");
  }
  if (n == 0) {
    LSCATTER_OBS_COUNTER_INC("core.stream.empty_feeds");
  }
  stream_pos_ += n;

  // Post-gap phase restore: discard up to the next packet boundary.
  std::size_t off = 0;
  if (skip_ > 0) {
    off = static_cast<std::size_t>(
        std::min<std::uint64_t>(skip_, static_cast<std::uint64_t>(n)));
    skip_ -= off;
  }
  rx_buffer_.insert(rx_buffer_.end(), rx.begin() + off, rx.begin() + n);
  ambient_buffer_.insert(ambient_buffer_.end(), ambient.begin() + off,
                         ambient.begin() + n);

  buffered_hwm_ = std::max(buffered_hwm_, buffered_samples());
  LSCATTER_OBS_GAUGE_MAX("core.stream.buffered_hwm_samples",
                         buffered_hwm_);

  // Event slots are reused across feeds (grow-only; never clear(), which
  // would free the inner payload vectors) — steady state allocates
  // nothing.
  std::size_t events_used = 0;
  // Fall through to the compaction below even when unaligned: a failed
  // acquisition may have consumed (trimmed) old samples.
  const bool ready = skip_ == 0 && (aligned_ || try_acquire());
  while (ready && buffered_samples() >= samples_per_packet_) {
    const std::span<const dsp::cf32> prx(rx_buffer_.data() + consumed_,
                                         samples_per_packet_);
    const std::span<const dsp::cf32> pam(
        ambient_buffer_.data() + consumed_, samples_per_packet_);

    // Listening / empty slots produce no packet but still consume time.
    const std::size_t capacity =
        demodulator_.controller().packet_raw_bits(next_subframe_);
    if (capacity > 32) {
      if (events_used == events_.size()) {
        events_.emplace_back();
        payload_spares_.emplace_back();
      }
      PacketEvent& ev = events_[events_used];
      std::vector<std::uint8_t>& spare = payload_spares_[events_used];
      ++events_used;
      ev.first_subframe_index = next_subframe_;
      PacketDemodStatus status;
      {
#if LSCATTER_OBS_ENABLED
        obs::ScopedTimer demod_timer(demod_latency);
#endif
        status = demodulator_.demodulate_packet_into(prx, pam,
                                                     next_subframe_, ws_);
      }
      ev.result.preamble_found = status.preamble_found;
      ev.result.offset_units = status.offset_units;
      ev.result.preamble_metric = status.preamble_metric;
      ev.result.coded_bits.assign(ws_.coded.begin(), ws_.coded.end());
      ev.result.soft_bits.assign(ws_.soft.begin(), ws_.soft.end());
      if (status.crc_ok) {
        // Re-engage the optional with the slot's parked buffer so its
        // capacity survives crc-fail gaps between clean packets.
        if (!ev.result.payload) {
          ev.result.payload.emplace(std::move(spare));
        }
        ev.result.payload->assign(ws_.payload.begin(), ws_.payload.end());
      } else {
        if (ev.result.payload) spare = std::move(*ev.result.payload);
        ev.result.payload.reset();
      }
      ++packets_;
      LSCATTER_OBS_COUNTER_INC("core.stream.packets");
    } else {
      LSCATTER_OBS_COUNTER_INC("core.stream.idle_slots");
    }

    consumed_ += samples_per_packet_;
    next_subframe_ += config_.schedule.packet_subframes;
  }

  // Compact lazily: dropping the consumed prefix once per drained packet
  // batch keeps feed() amortized O(chunk) even for 1-sample feeds (the
  // old erase-per-packet front-trim was O(buffer) per packet).
  if (consumed_ > 0 && consumed_ >= buffered_samples()) {
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() +
                         static_cast<std::ptrdiff_t>(consumed_));
    ambient_buffer_.erase(
        ambient_buffer_.begin(),
        ambient_buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return std::span<const PacketEvent>(events_.data(), events_used);
}

}  // namespace lscatter::core
