#include "core/streaming_receiver.hpp"

#include <cassert>

namespace lscatter::core {

StreamingReceiver::StreamingReceiver(const Config& config)
    : config_(config),
      demodulator_(config.cell, config.schedule, config.search),
      samples_per_packet_(config.schedule.packet_subframes *
                          config.cell.samples_per_subframe()),
      next_subframe_(config.first_subframe_index) {}

std::vector<StreamingReceiver::PacketEvent> StreamingReceiver::feed(
    std::span<const dsp::cf32> rx, std::span<const dsp::cf32> ambient) {
  assert(rx.size() == ambient.size());
  rx_buffer_.insert(rx_buffer_.end(), rx.begin(), rx.end());
  ambient_buffer_.insert(ambient_buffer_.end(), ambient.begin(),
                         ambient.end());

  std::vector<PacketEvent> events;
  while (rx_buffer_.size() >= samples_per_packet_) {
    const std::span<const dsp::cf32> prx(rx_buffer_.data(),
                                         samples_per_packet_);
    const std::span<const dsp::cf32> pam(ambient_buffer_.data(),
                                         samples_per_packet_);

    // Listening / empty slots produce no packet but still consume time.
    const std::size_t capacity =
        demodulator_.controller().packet_raw_bits(next_subframe_);
    if (capacity > 32) {
      PacketEvent ev;
      ev.first_subframe_index = next_subframe_;
      ev.result = demodulator_.demodulate_packet(prx, pam, next_subframe_);
      ++packets_;
      events.push_back(std::move(ev));
    }

    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() +
                         static_cast<std::ptrdiff_t>(samples_per_packet_));
    ambient_buffer_.erase(
        ambient_buffer_.begin(),
        ambient_buffer_.begin() +
            static_cast<std::ptrdiff_t>(samples_per_packet_));
    next_subframe_ += config_.schedule.packet_subframes;
  }
  return events;
}

}  // namespace lscatter::core
