#include "core/streaming_receiver.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"
#if LSCATTER_OBS_ENABLED
#include "obs/family.hpp"
#include "obs/span.hpp"
#endif

namespace lscatter::core {

#if LSCATTER_OBS_ENABLED
namespace {

// Per-stage latency breakdown as one labeled histogram family
// (DESIGN.md §12): core.stream.stage.seconds{stage=acquire|demod|feed}.
// Cells are resolved once at first use and cached — the feed loop below
// must never take the family mutex per packet (lscatter-lint obs-loop).
obs::Histogram& stream_stage_cell(const char* stage) {
  static obs::HistogramFamily family("core.stream.stage.seconds", "stage");
  return family.cell(std::string_view(stage));
}

}  // namespace
#endif

StreamingReceiver::StreamingReceiver(const Config& config)
    : config_(config),
      demodulator_(config.cell, config.schedule, config.search),
      samples_per_packet_(config.schedule.packet_subframes *
                          config.cell.samples_per_subframe()),
      next_subframe_(config.first_subframe_index) {
  if (config_.acquire_alignment) {
    aligned_ = false;
    searcher_.emplace(config_.cell);
  }
}

bool StreamingReceiver::try_acquire() {
#if LSCATTER_OBS_ENABLED
  static obs::Histogram& acquire_latency = stream_stage_cell("acquire");
  obs::ScopedTimer stage_timer(acquire_latency);
#endif
  const std::size_t frame_len = config_.cell.samples_per_frame();
  const std::size_t min_needed =
      config_.acquire_min_samples != 0
          ? config_.acquire_min_samples
          : frame_len + config_.cell.fft_size();
  if (buffered_samples() < min_needed) return false;

  const std::span<const dsp::cf32> window(rx_buffer_.data() + consumed_,
                                          buffered_samples());
  const auto res = searcher_->search(window, config_.acquire_min_metric);
  if (res) {
    // frame_start is modulo one frame relative to the window start; drop
    // everything before it so the next carved sample is subframe 0.
    consumed_ += res->frame_start;
    next_subframe_ = 0;
    aligned_ = true;
    LSCATTER_OBS_COUNTER_INC("core.stream.acquired");
    return true;
  }

  // No PSS in this window. Keep only the most recent frame so the buffer
  // stays bounded while we wait for a stronger signal.
  LSCATTER_OBS_COUNTER_INC("core.stream.acquire_failed");
  if (buffered_samples() > frame_len) {
    consumed_ += buffered_samples() - frame_len;
  }
  return false;
}

std::vector<StreamingReceiver::PacketEvent> StreamingReceiver::feed(
    std::span<const dsp::cf32> rx, std::span<const dsp::cf32> ambient) {
#if LSCATTER_OBS_ENABLED
  static obs::Histogram& feed_latency = stream_stage_cell("feed");
  static obs::Histogram& demod_latency = stream_stage_cell("demod");
  obs::ScopedTimer stage_timer(feed_latency);
#endif
#if LSCATTER_CHECKS_ENABLED
  // Thread-affinity check for the single-owner contract (see header):
  // the first feed() pins the owner thread, every later call must match.
  if (owner_thread_ == std::thread::id{}) {
    owner_thread_ = std::this_thread::get_id();
  }
  LSCATTER_EXPECT(owner_thread_ == std::this_thread::get_id(),
                  "StreamingReceiver::feed called from a second thread; "
                  "the receiver is single-owner (wrap it in a lock or use "
                  "one receiver per stream)");
#endif
  LSCATTER_OBS_COUNTER_INC("core.stream.feeds");
  assert(rx.size() == ambient.size());
  // Release builds tolerate a mismatched call by truncating to the
  // common prefix: losing the tail of one chunk beats silently carving
  // packets out of misaligned (rx, ambient) pairs.
  const std::size_t n = std::min(rx.size(), ambient.size());
  if (rx.size() != ambient.size()) {
    LSCATTER_OBS_COUNTER_INC("core.stream.length_mismatch");
  }
  if (n == 0) {
    LSCATTER_OBS_COUNTER_INC("core.stream.empty_feeds");
  }
  rx_buffer_.insert(rx_buffer_.end(), rx.begin(), rx.begin() + n);
  ambient_buffer_.insert(ambient_buffer_.end(), ambient.begin(),
                         ambient.begin() + n);

  buffered_hwm_ = std::max(buffered_hwm_, buffered_samples());
  LSCATTER_OBS_GAUGE_MAX("core.stream.buffered_hwm_samples",
                         buffered_hwm_);

  std::vector<PacketEvent> events;
  // Fall through to the compaction below even when unaligned: a failed
  // acquisition may have consumed (trimmed) old samples.
  const bool ready = aligned_ || try_acquire();
  while (ready && buffered_samples() >= samples_per_packet_) {
    const std::span<const dsp::cf32> prx(rx_buffer_.data() + consumed_,
                                         samples_per_packet_);
    const std::span<const dsp::cf32> pam(
        ambient_buffer_.data() + consumed_, samples_per_packet_);

    // Listening / empty slots produce no packet but still consume time.
    const std::size_t capacity =
        demodulator_.controller().packet_raw_bits(next_subframe_);
    if (capacity > 32) {
      PacketEvent ev;
      ev.first_subframe_index = next_subframe_;
      {
#if LSCATTER_OBS_ENABLED
        obs::ScopedTimer demod_timer(demod_latency);
#endif
        ev.result =
            demodulator_.demodulate_packet(prx, pam, next_subframe_);
      }
      ++packets_;
      LSCATTER_OBS_COUNTER_INC("core.stream.packets");
      events.push_back(std::move(ev));
    } else {
      LSCATTER_OBS_COUNTER_INC("core.stream.idle_slots");
    }

    consumed_ += samples_per_packet_;
    next_subframe_ += config_.schedule.packet_subframes;
  }

  // Compact lazily: dropping the consumed prefix once per drained packet
  // batch keeps feed() amortized O(chunk) even for 1-sample feeds (the
  // old erase-per-packet front-trim was O(buffer) per packet).
  if (consumed_ > 0 && consumed_ >= buffered_samples()) {
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() +
                         static_cast<std::ptrdiff_t>(consumed_));
    ambient_buffer_.erase(
        ambient_buffer_.begin(),
        ambient_buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return events;
}

}  // namespace lscatter::core
