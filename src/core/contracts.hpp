#pragma once
// Machine-checked invariants for the demod chain (DESIGN.md §8).
//
// The pipeline is numerics all the way down — dB/Hz/sample-index
// quantities that silently degrade BER when an invariant is violated
// instead of failing loudly. These macros make the invariants explicit:
//
//   LSCATTER_EXPECT(cond, "msg")   precondition (caller broke the contract)
//   LSCATTER_ENSURE(cond, "msg")   postcondition (callee broke its promise)
//   LSCATTER_ASSERT(cond, "msg")   internal invariant
//
// Failure behaviour is configurable at runtime — abort (default), throw
// lscatter::core::ContractViolation, or log-and-continue — via
// set_failure_mode() or the LSCATTER_CONTRACTS environment variable
// (abort|throw|log). The fuzz harnesses run in throw mode so a violated
// precondition on hostile input is a caught rejection, not a crash.
//
// Compile-time knob: -DLSCATTER_CHECKS=OFF defines
// LSCATTER_CHECKS_ENABLED=0 and compiles every check out entirely (the
// condition is not evaluated); release builds pay nothing. This header is
// dependency-free on purpose: every layer (dsp upward) may include it
// without creating a link edge.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#ifndef LSCATTER_CHECKS_ENABLED
#define LSCATTER_CHECKS_ENABLED 1
#endif

namespace lscatter::core {

/// Thrown on contract failure in FailureMode::kThrow.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace contracts {

enum class FailureMode {
  kAbort,  // print and std::abort() — the default; stacks stay intact
  kThrow,  // throw ContractViolation — used by tests and fuzz harnesses
  kLog,    // print and continue — for best-effort production telemetry
};

namespace detail {
inline FailureMode& mode_storage() {
  static FailureMode mode = [] {
    if (const char* env = std::getenv("LSCATTER_CONTRACTS")) {
      const std::string v(env);
      if (v == "throw") return FailureMode::kThrow;
      if (v == "log") return FailureMode::kLog;
    }
    return FailureMode::kAbort;
  }();
  return mode;
}
}  // namespace detail

inline FailureMode failure_mode() { return detail::mode_storage(); }
inline void set_failure_mode(FailureMode m) { detail::mode_storage() = m; }

/// RAII override, so a test can opt into kThrow without leaking the mode
/// into later tests in the same process.
class ScopedFailureMode {
 public:
  explicit ScopedFailureMode(FailureMode m) : prev_(failure_mode()) {
    set_failure_mode(m);
  }
  ~ScopedFailureMode() { set_failure_mode(prev_); }
  ScopedFailureMode(const ScopedFailureMode&) = delete;
  ScopedFailureMode& operator=(const ScopedFailureMode&) = delete;

 private:
  FailureMode prev_;
};

[[noreturn]] inline void abort_with(const char* text) {
  std::fputs(text, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

inline void fail(const char* kind, const char* expr, const char* file,
                 int line, const char* msg) {
  std::string text = std::string("lscatter contract: ") + kind +
                     " failed: (" + expr + ") at " + file + ":" +
                     std::to_string(line);
  if (msg != nullptr && msg[0] != '\0') {
    text += " — ";
    text += msg;
  }
  switch (failure_mode()) {
    case FailureMode::kThrow:
      throw ContractViolation(text);
    case FailureMode::kLog:
      std::fputs(text.c_str(), stderr);
      std::fputc('\n', stderr);
      return;
    case FailureMode::kAbort:
      break;
  }
  abort_with(text.c_str());
}

}  // namespace contracts
}  // namespace lscatter::core

#if LSCATTER_CHECKS_ENABLED

#define LSCATTER_CONTRACT_CHECK_(kind, cond, msg)                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lscatter::core::contracts::fail(kind, #cond, __FILE__,          \
                                        __LINE__, msg);                 \
    }                                                                   \
  } while (false)

#define LSCATTER_EXPECT(cond, msg) \
  LSCATTER_CONTRACT_CHECK_("precondition", cond, msg)
#define LSCATTER_ENSURE(cond, msg) \
  LSCATTER_CONTRACT_CHECK_("postcondition", cond, msg)
#define LSCATTER_ASSERT(cond, msg) \
  LSCATTER_CONTRACT_CHECK_("invariant", cond, msg)

#else  // checks compiled out: conditions are not evaluated.

#define LSCATTER_EXPECT(cond, msg) do { } while (false)
#define LSCATTER_ENSURE(cond, msg) do { } while (false)
#define LSCATTER_ASSERT(cond, msg) do { } while (false)

#endif  // LSCATTER_CHECKS_ENABLED
