#pragma once
// End-to-end LScatter link simulation:
//
//   Enodeb -> (path loss + fading) -> TagController/modulator
//          -> (path loss + fading) -> + noise & adjacent-channel leak
//          -> LscatterDemodulator -> LinkMetrics
//
// The backscatter double-hop is modelled as a per-drop scalar complex gain
// (product of two independent Rician/Rayleigh fades) on top of the
// deterministic link budget; DESIGN.md §2 explains why this preserves the
// figures' shapes. The tag's residual synchronization error comes from
// StatisticalSync (fast mode, default) or can be injected explicitly.

#include <optional>

#include "channel/fading.hpp"
#include "channel/link_budget.hpp"
#include "core/ambient_reconstructor.hpp"
#include "core/lscatter_rx.hpp"
#include "core/metrics.hpp"
#include "lte/enodeb.hpp"
#include "tag/sync_detector.hpp"
#include "tag/tag_controller.hpp"

namespace lscatter::core {

struct LinkGeometry {
  double enb_tag_ft = 3.0;
  double tag_ue_ft = 3.0;

  /// Direct eNodeB->UE distance; <= 0 derives it as enb_tag + tag_ue.
  double enb_ue_ft = -1.0;

  double direct_ft() const {
    return enb_ue_ft > 0.0 ? enb_ue_ft : enb_tag_ft + tag_ue_ft;
  }
};

struct RadioEnvironment {
  channel::PathLossModel pathloss;      // shared by all three links
  channel::FadingProfile fading;        // per-hop small-scale model
  channel::LinkBudget budget;           // powers, gains, NF, tag RF

  /// Adjacent-channel rejection of the original LTE band at the UE's
  /// shifted-carrier receiver; its residue raises the noise floor.
  dsp::Db acir_db{45.0};

  /// Residual carrier frequency offset between the eNodeB and the UE's
  /// shifted-carrier receiver. The tag adds none (it has no carrier,
  /// only the switch clock, whose offset appears as timing drift). The
  /// demodulator's per-symbol gain re-estimation absorbs CFOs up to
  /// ~1 kHz; see the robustness tests.
  dsp::Hz ue_cfo_hz{0.0};

  /// When true, the tag->UE hop convolves the scattered signal with an
  /// actual tapped-delay-line realization of `fading` instead of the flat
  /// per-drop scalar (DESIGN.md §4). The per-unit demodulator does not
  /// equalize across units, so this measures the real ISI penalty of the
  /// flat-fading substitution — see the ablation bench.
  bool frequency_selective = false;
};

struct LinkConfig {
  lte::Enodeb::Config enodeb;
  tag::TagScheduleConfig schedule;
  tag::StatisticalSync sync;
  OffsetSearch search;
  RadioEnvironment env;
  LinkGeometry geometry;

  /// How the UE obtains the ambient baseband for the conjugate products:
  /// genie (record-and-playback, the paper's evaluation mode) or
  /// reconstructed from its own original-band receive chain.
  AmbientSource ambient = AmbientSource::kGenie;

  /// Packet FEC: none (the paper's uncoded units) or the rate-1/2
  /// convolutional code with soft Viterbi decoding.
  Fec fec = Fec::kNone;

  std::uint64_t seed = 42;
};

/// Static per-drop radio state (for diagnostics / tests).
struct DropState {
  dsp::Db pl1_db{0.0};           // eNB -> tag
  dsp::Db pl2_db{0.0};           // tag -> UE
  dsp::Dbm backscatter_rx_dbm{0.0};
  dsp::Dbm direct_rx_dbm{0.0};   // eNB -> UE (original band)
  dsp::Dbm noise_dbm{0.0};       // thermal + ACIR residue
  dsp::Db mean_snr_db{0.0};      // average over the fade
  dsp::cf32 fade;                // chi1 * chi2 (unit mean power)
  dsp::cf32 direct_fade;         // single-hop fade of the direct path

  /// Reconstruction diagnostics (kReconstructed only).
  std::size_t ambient_re_errors = 0;
  std::size_t ambient_re_total = 0;
};

class LinkSimulator {
 public:
  explicit LinkSimulator(const LinkConfig& config);

  /// Simulate `n_subframes` (1 ms each) as one drop: path loss shadowing
  /// and fading are drawn once, the tag re-syncs on its schedule, every
  /// packet is demodulated and scored against the transmitted payload.
  LinkMetrics run(std::size_t n_subframes);

  /// Radio state of the most recent run().
  const DropState& last_drop() const { return drop_; }

  const LinkConfig& config() const { return config_; }

  /// PHY raw bit rate the schedule supports (long-run average, bit/s) —
  /// the §4.3 "13.63 Mbps at 20 MHz" headline number.
  double scheduled_phy_rate_bps() const;

 private:
  void draw_drop(dsp::Rng& rng);

  LinkConfig config_;
  lte::Enodeb enodeb_;
  tag::TagController controller_;
  LscatterDemodulator demodulator_;
  AmbientReconstructor reconstructor_;
  DropState drop_;
  dsp::Rng rng_;
  double cfo_phase_ = 0.0;
};

}  // namespace lscatter::core
