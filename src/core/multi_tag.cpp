#include "core/multi_tag.hpp"

#include <cmath>

#include "channel/awgn.hpp"
#include "core/contracts.hpp"
#include "dsp/db.hpp"
#include "obs/obs.hpp"
#if LSCATTER_OBS_ENABLED
#include "obs/family.hpp"
#endif
#include "tag/modulator.hpp"

namespace lscatter::core {

using dsp::cf32;
using dsp::cvec;

namespace {

struct TagState {
  tag::TagController controller;
  cf32 gain;
  double sync_error_s = 0.0;
  // Per-packet bookkeeping: payload for the packet being transmitted.
  std::vector<std::uint8_t> payload;
  std::vector<std::vector<std::uint8_t>> symbol_payloads;
};

}  // namespace

MultiTagResult run_multi_tag(const MultiTagConfig& config,
                             std::size_t n_subframes) {
  LSCATTER_EXPECT(!config.tags.empty(), "multi-tag run needs tags");
  LSCATTER_EXPECT(config.n_slots >= 1, "TDMA needs at least one slot");
  LSCATTER_OBS_SPAN("core.multi_tag.run");
  LSCATTER_OBS_COUNTER_ADD("core.multi_tag.tags", config.tags.size());
  LSCATTER_OBS_COUNTER_ADD("core.multi_tag.subframes", n_subframes);

  const LinkConfig& base = config.base;
  const auto& cell = base.enodeb.cell;
  lte::Enodeb enodeb(base.enodeb);
  LscatterDemodulator demod(cell, base.schedule, base.search);

  dsp::Rng rng(base.seed, 0x3713371337ULL);
  dsp::Rng noise_rng = rng.fork();
  dsp::Rng payload_rng = rng.fork();

  // Per-tag radio state: budget from each tag's geometry, one drop.
  std::vector<TagState> tags;
  tags.reserve(config.tags.size());
  double worst_noise_mw = 0.0;
  for (const auto& t : config.tags) {
    const dsp::Hz f{cell.carrier_hz};
    const dsp::Db pl1 = base.env.pathloss.sample_db(
        dsp::feet_to_meters(t.geometry.enb_tag_ft), f, rng);
    const dsp::Db pl2 = base.env.pathloss.sample_db(
        dsp::feet_to_meters(t.geometry.tag_ue_ft), f, rng);
    const dsp::Dbm rx_dbm =
        base.env.budget.backscatter_rx_dbm(pl1, pl2);
    const double k = base.env.fading.rician_k_db.linear();
    const auto fade = [&]() -> cf32 {
      return cf32{static_cast<float>(std::sqrt(k / (k + 1.0))), 0.0f} +
             rng.complex_normal(1.0 / (k + 1.0));
    };
    const double phase = rng.uniform(0.0, dsp::kTwoPi);
    const double amp = channel::amplitude(rx_dbm);
    TagState st{tag::TagController(cell, base.schedule),
                fade() * fade() *
                    cf32{static_cast<float>(amp * std::cos(phase)),
                         static_cast<float>(amp * std::sin(phase))},
                base.sync.sample_error_s(rng),
                {},
                {}};
    tags.push_back(std::move(st));

    const dsp::Db pl_direct = base.env.pathloss.sample_db(
        dsp::feet_to_meters(t.geometry.direct_ft()), f, rng);
    const dsp::Hz occupied =
        static_cast<double>(cell.n_subcarriers()) *
        dsp::Hz{lte::kSubcarrierSpacingHz};
    const double noise_mw =
        dsp::to_mw(channel::noise_floor_dbm(
            occupied, base.env.budget.noise_figure_db)) +
        dsp::to_mw(base.env.budget.direct_rx_dbm(pl_direct) -
                   base.env.acir_db);
    worst_noise_mw = std::max(worst_noise_mw, noise_mw);
  }

  MultiTagResult result;
  result.per_tag.resize(config.tags.size());
  for (std::size_t i = 0; i < config.tags.size(); ++i) {
    result.per_tag[i].tag_index = i;
    result.per_tag[i].metrics.elapsed_s =
        static_cast<double>(n_subframes) * 1e-3;
  }

#if LSCATTER_OBS_ENABLED
  // Per-entity accounting as labeled families (DESIGN.md §12): decode
  // outcomes broken out per tag, collisions per TDMA slot. Cells are
  // resolved here, once, before the subframe loop — cell() takes the
  // family mutex, so per-iteration lookups are banned (lscatter-lint
  // obs-loop) — and hit through the cached pointers below. Beyond the
  // family's cardinality cap, extra tags share the {tag=__other__}
  // overflow cell and obs.labels.dropped counts them.
  static obs::CounterFamily mt_ok("core.multi_tag.packets_ok", "tag");
  static obs::CounterFamily mt_err("core.multi_tag.bit_errors", "tag");
  static obs::CounterFamily mt_coll("core.multi_tag.collisions", "slot");
  std::vector<obs::Counter*> tag_ok_cells;
  std::vector<obs::Counter*> tag_err_cells;
  tag_ok_cells.reserve(config.tags.size());
  tag_err_cells.reserve(config.tags.size());
  for (std::size_t i = 0; i < config.tags.size(); ++i) {
    tag_ok_cells.push_back(&mt_ok.cell(std::uint64_t{i}));
    tag_err_cells.push_back(&mt_err.cell(std::uint64_t{i}));
  }
  std::vector<obs::Counter*> slot_cells;
  slot_cells.reserve(config.n_slots);
  for (std::size_t s = 0; s < config.n_slots; ++s) {
    slot_cells.push_back(&mt_coll.cell(std::uint64_t{s}));
  }
#endif

  const std::size_t sf_samples = cell.samples_per_subframe();
  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const lte::SubframeTx tx = enodeb.next_subframe();
    const std::size_t slot = sf % config.n_slots;

    // Tags outside their slot switch to the absorbing impedance state
    // (a tag reflecting even unmodulated filler would plant a constant
    // term in everyone else's conjugate products and flip their '0'
    // decisions). Tags sharing a slot scatter simultaneously — the
    // collision case.
    cvec rx(sf_samples, cf32{});
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < config.tags.size(); ++i) {
      TagState& st = tags[i];
      if (config.tags[i].slot != slot) continue;  // absorbing
      if (st.controller.is_listening_subframe(sf)) continue;
      const std::size_t cap = st.controller.packet_raw_bits(sf);
      if (cap <= 32) continue;

      const PacketCodec codec(cap);
      st.payload = payload_rng.bits(codec.payload_bits());
      st.symbol_payloads = split_bits(codec.encode(st.payload),
                                      st.controller.bits_per_symbol());
      const auto plan =
          st.controller.plan_subframe(sf, true, st.symbol_payloads);
      active.push_back(i);

      const auto pattern = tag::expand_to_units(cell, plan);
      const auto err_units = static_cast<std::ptrdiff_t>(
          std::llround(st.sync_error_s * cell.sample_rate_hz()));
      const cvec scat =
          tag::apply_pattern(tx.samples, pattern, err_units, st.gain);
      for (std::size_t n = 0; n < sf_samples; ++n) rx[n] += scat[n];
    }
    if (active.size() > 1) {
      LSCATTER_OBS_COUNTER_INC("core.multi_tag.collision_subframes");
#if LSCATTER_OBS_ENABLED
      slot_cells[slot]->add(1);
#endif
    }
    channel::add_awgn(rx, worst_noise_mw, noise_rng);

    // Demodulate each active tag's packet from the superposition.
    for (const std::size_t i : active) {
      TagState& st = tags[i];
      LinkMetrics& m = result.per_tag[i].metrics;
      m.packets_sent += 1;
      m.bits_sent += st.payload.size();

      const auto res = demod.demodulate_packet(rx, tx.samples, sf);
      if (!res.preamble_found) {
        m.bit_errors += st.payload.size() / 2;
#if LSCATTER_OBS_ENABLED
        tag_err_cells[i]->add(st.payload.size() / 2);
#endif
        continue;
      }
      m.packets_detected += 1;
      const PacketCodec codec(st.payload.size() + 32);
      const auto plain = codec.dewhiten(res.coded_bits);
      std::size_t errors = 0;
      for (std::size_t b = 0; b < st.payload.size(); ++b) {
        if (plain[b] != st.payload[b]) ++errors;
      }
      m.bit_errors += errors;
      const std::size_t correct = st.payload.size() - errors;
      m.bits_delivered += correct > errors ? correct - errors : 0;
#if LSCATTER_OBS_ENABLED
      if (errors > 0) tag_err_cells[i]->add(errors);
#endif
      if (res.payload && *res.payload == st.payload) {
        m.packets_ok += 1;
        m.bits_crc_ok += st.payload.size();
#if LSCATTER_OBS_ENABLED
        tag_ok_cells[i]->add(1);
#endif
      }
    }
  }
  return result;
}

}  // namespace lscatter::core
