#include "core/scenario.hpp"

namespace lscatter::core {

const char* to_string(Scene s) {
  switch (s) {
    case Scene::kSmartHome: return "SmartHome";
    case Scene::kMall: return "Mall";
    case Scene::kOutdoor: return "Outdoor";
  }
  return "?";
}

traffic::Site scene_site(Scene s) {
  switch (s) {
    case Scene::kSmartHome: return traffic::Site::kHome;
    case Scene::kMall: return traffic::Site::kMall;
    case Scene::kOutdoor: return traffic::Site::kOutdoor;
  }
  return traffic::Site::kHome;
}

LinkConfig make_scenario(Scene scene, const ScenarioOptions& options) {
  LinkConfig cfg;
  cfg.seed = options.seed;

  cfg.enodeb.cell.bandwidth = options.bandwidth;
  cfg.enodeb.cell.carrier_hz = 680e6;  // white space next to US carriers
  cfg.enodeb.cell.n_id_1 = 12;
  cfg.enodeb.cell.n_id_2 = 1;
  cfg.enodeb.tx_power_dbm = options.tx_power_dbm;
  cfg.enodeb.seed = options.seed ^ 0x1111;

  cfg.env.budget.tx_power_dbm = options.tx_power_dbm;
  cfg.env.budget.noise_figure_db = dsp::Db{6.0};

  // Calibration anchors (see EXPERIMENTS.md):
  //  - home 3ft/3ft @10 dBm   -> SNR high enough for ~0 BER (Fig. 16b)
  //  - mall 10ft/40ft         -> BER < 0.1% (Fig. 24)
  //  - mall 10ft/150ft        -> BER ~ 1%   (Fig. 24)
  //  - outdoor 10ft/200ft     -> BER < 1%   (Fig. 29)
  //  - outdoor 2ft/320ft @40 dBm reaches the BER cliff (Fig. 30)
  switch (scene) {
    case Scene::kSmartHome:
      // 800 sqft apartment, many walls: higher exponent, rich multipath.
      cfg.env.pathloss.exponent = 2.5;
      cfg.env.pathloss.shadowing_sigma_db = dsp::Db{2.5};
      cfg.env.fading.rms_delay_spread_s = dsp::Seconds{50e-9};
      cfg.env.fading.rician_k_db = dsp::Db{8.0};
      cfg.env.budget.tx_antenna_gain_db = dsp::Db{3.0};
      cfg.env.budget.rx_antenna_gain_db = dsp::Db{3.0};
      cfg.env.budget.tag_antenna_gain_db = dsp::Db{2.0};
      break;
    case Scene::kMall:
      // Large open corridor: UHF waveguiding pulls the exponent below 2.
      cfg.env.pathloss.exponent = 1.7;
      cfg.env.pathloss.shadowing_sigma_db = dsp::Db{2.0};
      cfg.env.fading.rms_delay_spread_s = dsp::Seconds{150e-9};
      cfg.env.fading.rician_k_db = dsp::Db{9.0};
      cfg.env.budget.tx_antenna_gain_db = dsp::Db{5.0};
      cfg.env.budget.rx_antenna_gain_db = dsp::Db{5.0};
      cfg.env.budget.tag_antenna_gain_db = dsp::Db{2.0};
      break;
    case Scene::kOutdoor:
      // Open street: near free space up to the two-ray breakpoint
      // (~25 m for 1.5 m antennas at 680 MHz), then ground-reflection
      // steepening — this is what bounds the 40 dBm range (Fig. 30).
      cfg.env.pathloss.exponent = 1.9;
      cfg.env.pathloss.breakpoint_m = 25.0;
      cfg.env.pathloss.beyond_exponent = 3.6;
      cfg.env.pathloss.shadowing_sigma_db = dsp::Db{1.5};
      cfg.env.fading.rms_delay_spread_s = dsp::Seconds{200e-9};
      cfg.env.fading.rician_k_db = dsp::Db{10.0};
      cfg.env.budget.tx_antenna_gain_db = dsp::Db{6.0};
      cfg.env.budget.rx_antenna_gain_db = dsp::Db{6.0};
      cfg.env.budget.tag_antenna_gain_db = dsp::Db{2.0};
      break;
  }
  cfg.env.fading.los = options.line_of_sight;
  if (!options.line_of_sight) {
    // NLoS: Rayleigh small-scale fading plus a blocking loss.
    cfg.env.pathloss.extra_loss_db += dsp::Db{4.0};
  }
  cfg.env.budget.tag.reflection_loss_db = dsp::Db{5.0};
  // Residue of the original LTE band at the UE's shifted carrier. The
  // paper's receiver is a USRP with digital channelization 30.72 MHz away
  // from a band-limited (record-and-playback) transmit signal, so the
  // rejection is filter-grade (~70 dB), not commodity-UE ACS (~45 dB).
  // This is what lets close-range BER reach the paper's 1e-4 regime; the
  // ablation bench sweeps it.
  cfg.env.acir_db = dsp::Db{70.0};

  cfg.geometry.enb_tag_ft = 3.0;
  cfg.geometry.tag_ue_ft = 3.0;
  return cfg;
}

}  // namespace lscatter::core
