#include "core/decode_pipeline.hpp"

#include <chrono>

#include "core/contracts.hpp"
#include "core/sim_pool.hpp"
#include "obs/obs.hpp"

namespace lscatter::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Flow id shared by a chunk's push and decode spans: nonzero, unique
/// per (carrier, stream position).
std::uint64_t chunk_flow(std::size_t carrier, std::uint64_t stream_pos) {
  return (static_cast<std::uint64_t>(carrier) << 48) ^ (stream_pos + 1);
}

}  // namespace

DecodePipeline::DecodePipeline(const Config& config) : config_(config) {
  LSCATTER_EXPECT(!config_.carriers.empty(),
                  "decode_pipeline: need at least one carrier");
  const std::size_t chunk =
      config_.ring_chunk_samples != 0
          ? config_.ring_chunk_samples
          : config_.carriers.front().cell.samples_per_subframe();
  threads_ = std::min(resolve_threads(config_.threads),
                      config_.carriers.size());
  rings_.reserve(config_.carriers.size());
  receivers_.reserve(config_.carriers.size());
  for (const auto& carrier_cfg : config_.carriers) {
    rings_.push_back(
        std::make_unique<StreamRing>(chunk, config_.ring_chunks));
    receivers_.push_back(std::make_unique<StreamingReceiver>(carrier_cfg));
  }
  expected_pos_.assign(config_.carriers.size(), 0);
  chunks_.resize(config_.carriers.size());
  // Pre-size the pop targets so the first pop on the worker is already
  // allocation-free.
  for (auto& c : chunks_) {
    c.rx.resize(chunk);
    c.ambient.resize(chunk);
  }
}

DecodePipeline::~DecodePipeline() { stop(); }

void DecodePipeline::start() {
  if (running_) return;
  stopping_.store(false, std::memory_order_relaxed);
  workers_.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  running_ = true;
}

void DecodePipeline::stop() {
  if (!running_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& t : workers_) t.join();
  workers_.clear();
  running_ = false;
}

std::size_t DecodePipeline::push(std::size_t carrier,
                                 std::span<const dsp::cf32> rx,
                                 std::span<const dsp::cf32> ambient) {
  LSCATTER_EXPECT(carrier < rings_.size(),
                  "decode_pipeline: carrier index out of range");
  StreamRing& ring = *rings_[carrier];
  LSCATTER_OBS_SPAN_FLOW("core.pipeline.push",
                         chunk_flow(carrier, ring.producer_position()));
  return ring.push(rx, ambient, now_seconds());
}

std::size_t DecodePipeline::service_carrier(std::size_t carrier) {
  StreamRing& ring = *rings_[carrier];
  StreamingReceiver& rxr = *receivers_[carrier];
  StreamRing::Chunk& chunk = chunks_[carrier];
  std::size_t consumed = 0;
  while (ring.pop(chunk)) {
    ++consumed;
    LSCATTER_OBS_SPAN_FLOW("core.pipeline.decode",
                           chunk_flow(carrier, chunk.stream_pos));
    if (chunk.stream_pos != expected_pos_[carrier]) {
      // The ring dropped chunks under backpressure (drop-oldest) — tell
      // the receiver about the hole so it re-phases instead of decoding
      // across the discontinuity.
      LSCATTER_ASSERT(chunk.stream_pos > expected_pos_[carrier],
                      "stream position moved backwards");
      rxr.notify_gap(chunk.stream_pos - expected_pos_[carrier]);
    }
    expected_pos_[carrier] = chunk.stream_pos + chunk.size;
    const auto events =
        rxr.feed(std::span<const dsp::cf32>(chunk.rx.data(), chunk.size),
                 std::span<const dsp::cf32>(chunk.ambient.data(),
                                            chunk.size));
    if (!events.empty()) {
      // End-to-end latency of the chunk that completed these packets:
      // ring residency + decode, measured against the producer's push
      // timestamp.
      const double e2e = now_seconds() - chunk.push_time_s;
      for (const auto& ev : events) {
        LSCATTER_OBS_HISTOGRAM_RECORD("core.pipeline.e2e.seconds", e2e);
        packets_.fetch_add(1, std::memory_order_relaxed);
        if (config_.on_packet) config_.on_packet(carrier, ev);
      }
    }
  }
  return consumed;
}

void DecodePipeline::worker_loop(std::size_t worker_index) {
  // Yield/short-sleep backoff: an idle worker re-checks its rings within
  // ~a few hundred microseconds (bounded wake latency) without spinning
  // a core at 100%.
  unsigned idle_rounds = 0;
  for (;;) {
    std::size_t consumed = 0;
    for (std::size_t c = worker_index; c < rings_.size(); c += threads_) {
      consumed += service_carrier(c);
    }
    if (consumed != 0) {
      idle_rounds = 0;
      continue;
    }
    // Empty pass: before sleeping, check for shutdown. stop() sets the
    // flag after producers quiesce (the caller's contract), so one more
    // full empty scan *after* seeing the flag proves the rings are
    // drained — a chunk pushed between our empty pass and the flag
    // check is still caught.
    if (stopping_.load(std::memory_order_acquire)) {
      std::size_t final_consumed = 0;
      for (std::size_t c = worker_index; c < rings_.size();
           c += threads_) {
        final_consumed += service_carrier(c);
      }
      if (final_consumed == 0) return;
      continue;
    }
    ++idle_rounds;
    if (idle_rounds < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

}  // namespace lscatter::core
