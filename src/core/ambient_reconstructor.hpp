#pragma once
// Reconstruction of the ambient baseband x_n at the UE (paper §3.3).
//
// The backscatter demodulator needs the ambient LTE waveform to form the
// products z_n = r_n conj(x_n). Two sources are supported:
//
//   * genie — use the eNodeB's transmitted samples directly. This matches
//     the paper's record-and-playback evaluation, where the excitation is
//     known bit-exactly.
//   * reconstructed — the realistic path: the UE demodulates the original
//     band it receives on its main antenna, hard-decides every resource
//     element (data REs via the QAM slicer; CRS/PSS/SSS are known
//     sequences), and re-synthesizes the time-domain waveform with the
//     OFDM modulator. Decision errors on the original band turn into
//     localized mismatches in x̂_n.
//
// The reconstructor needs the RE-type map (which REs are data / pilots /
// sync) — in real LTE that comes from the PDCCH; here it comes from the
// transmitted grid, as DESIGN.md §6 documents.

#include "dsp/units.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/ue_rx.hpp"

namespace lscatter::core {

enum class AmbientSource : std::uint8_t {
  kGenie,          // perfect knowledge (record-and-playback)
  kReconstructed,  // decode-and-regenerate; RE layout from the TX grid
  kBlind,          // decode-and-regenerate; RE layout from the decoded
                   // PDCCH-lite DCI — no genie inputs at all
};

struct ReconstructionResult {
  dsp::cvec samples;           // re-synthesized subframe, unit power scale
  std::size_t re_errors = 0;   // data REs whose hard decision was wrong
  std::size_t re_total = 0;
};

class AmbientReconstructor {
 public:
  explicit AmbientReconstructor(const lte::CellConfig& cell);

  /// Rebuild the ambient waveform from the UE's original-band samples
  /// (one subframe, aligned to the subframe boundary, any amplitude).
  /// `truth` supplies the RE-type map and the reference for re_errors.
  ReconstructionResult reconstruct(std::span<const dsp::cf32> rx_direct,
                                   const lte::SubframeTx& truth,
                                   lte::Modulation modulation) const;

  /// Fully blind variant: no genie inputs at all. The UE decodes the
  /// PDCCH-lite DCI from its own grid, derives the complete RE-type map
  /// (lte::derive_re_types), regenerates PSS/SSS/CRS/PBCH/PDCCH from the
  /// cell identity + frame position, and hard-decides the data REs with
  /// the MCS the DCI announced. Returns nullopt when the DCI CRC fails.
  /// `sync_boost_db` must match the eNodeB's PSS/SSS boost (a static
  /// deployment parameter).
  std::optional<ReconstructionResult> reconstruct_blind(
      std::span<const dsp::cf32> rx_direct, std::size_t subframe_index,
      bool pbch_enabled = true, dsp::Db sync_boost_db = dsp::Db{6.0}) const;

 private:
  lte::CellConfig cell_;
  lte::UeReceiver ue_;
  lte::OfdmModulator remod_;
};

}  // namespace lscatter::core
