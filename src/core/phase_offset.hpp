#pragma once
// Phase-offset elimination (paper §3.3.1, Eq. 5/6).
//
// The tag's switching delay plus the two-hop channel rotate every basic
// timing unit by a common phase phi; on top of that the backscatter gain
// has an unknown amplitude. The receiver therefore works on the products
//
//     z_n = r_n * conj(x_n)  =  g * e^{j(theta_n + phi)} * |x_n|^2 + noise
//
// where x_n is the known ambient baseband (the genie equivalent of the
// paper's LTE reference signals — see DESIGN.md §4). Summing z_n over
// units with known theta_n = 0 estimates g*e^{j phi} exactly the way
// Eq. 6's conjugate-multiplication removes phi, and the frequency-domain
// form of Eq. 6 itself is provided for validation.

#include "dsp/types.hpp"

namespace lscatter::core {

/// Estimate the complex backscatter gain g*e^{j phi} from products z_n on
/// units known to carry theta = 0 ('1' filler / preamble-corrected units).
/// The |x_n|^2 weighting is implicit in z. Returns the *sum* normalized by
/// the reference energy sum_n |x_n|^2 when it is supplied (> 0), else the
/// raw sum.
dsp::cf32 estimate_gain(std::span<const dsp::cf32> z_reference,
                        double reference_energy = 0.0);

/// Remove a phase/gain estimate from products in place: z <- z * conj(g)/|g|.
void derotate(std::span<dsp::cf32> z, dsp::cf32 gain);

/// Paper Eq. 6, frequency domain: Y_k * conj(Y_r) for all k != r, where Y
/// is the FFT of the hybrid useful symbol. The common phase e^{j phi}
/// cancels in the product. Returned vector has Y_k Y_r* at index k (index
/// r holds |Y_r|^2).
dsp::cvec eq6_reference_products(std::span<const dsp::cf32> y,
                                 std::size_t reference_index);

}  // namespace lscatter::core
