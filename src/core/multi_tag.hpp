#pragma once
// Multi-tag operation (library extension; the paper's §1 vision is
// city-scale deployments but its evaluation is single-tag).
//
// Because every tag locks to the same PSS cadence, the frame itself is a
// natural TDMA structure: tag i modulates only the subframes whose index
// satisfies (sf % n_slots) == slot_i and fills the rest. A UE demodulates
// each tag's packets from its slots. Tags that (mis)share a slot collide:
// their scattered signals superpose and both packets see heavy errors —
// also modelled here, as the motivation for slot assignment.

#include <vector>

#include "core/link_simulator.hpp"

namespace lscatter::core {

struct MultiTagConfig {
  /// Shared radio scene (geometry is per-tag below).
  LinkConfig base;

  /// Number of TDMA slots (subframe-granular).
  std::size_t n_slots = 2;

  struct Tag {
    LinkGeometry geometry;
    std::size_t slot = 0;  // which subframe slot this tag modulates in
  };
  std::vector<Tag> tags;
};

struct PerTagMetrics {
  std::size_t tag_index = 0;
  LinkMetrics metrics;
};

struct MultiTagResult {
  std::vector<PerTagMetrics> per_tag;

  double aggregate_throughput_bps() const {
    double t = 0.0;
    for (const auto& p : per_tag) t += p.metrics.throughput_bps();
    return t;
  }
};

/// Simulate `n_subframes` of a multi-tag cell: every tag scatters in its
/// slot (colliding tags scatter simultaneously), the UE demodulates each
/// tag's packets. One channel drop per call.
MultiTagResult run_multi_tag(const MultiTagConfig& config,
                             std::size_t n_subframes);

}  // namespace lscatter::core
