#pragma once
// Calibrated deployment scenarios for the paper's three evaluation sites
// (§4.3 smart home, §4.4 shopping mall, §4.5 outdoor street). Each preset
// packages the path-loss exponent, fading profile, antenna gains and tag RF
// constants that make our simulated link budgets land on the paper's
// reported operating points; EXPERIMENTS.md records the calibration
// anchors per figure.

#include "core/link_simulator.hpp"
#include "traffic/occupancy_model.hpp"

namespace lscatter::core {

enum class Scene { kSmartHome, kMall, kOutdoor };

const char* to_string(Scene s);

/// The traffic-model site corresponding to a scene.
traffic::Site scene_site(Scene s);

struct ScenarioOptions {
  lte::Bandwidth bandwidth = lte::Bandwidth::kMHz20;
  dsp::Dbm tx_power_dbm{10.0};  // paper: 10 dBm USRP, 40 dBm with the PA
  bool line_of_sight = true;
  std::uint64_t seed = 42;
};

/// Build a fully-populated LinkConfig for a scene. Geometry defaults to
/// the paper's close-range setup (3 ft / 3 ft); callers override
/// `config.geometry` for the distance sweeps.
LinkConfig make_scenario(Scene scene, const ScenarioOptions& options = {});

}  // namespace lscatter::core
