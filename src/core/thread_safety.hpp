#pragma once
// Compile-time thread-safety capabilities + runtime lock-order
// validation (DESIGN.md §13).
//
// Two enforcement layers share this header:
//
//  1. Clang Thread Safety Analysis (the Capability/GUARDED_BY model from
//     Hutchins et al., enabled by -Wthread-safety). The LSCATTER_*
//     macros below expand to the __attribute__((...)) spellings under
//     clang and to nothing elsewhere, so annotations cost nothing on gcc
//     and become build errors on the clang `-DLSCATTER_THREAD_SAFETY=ON`
//     lane (-Werror=thread-safety-analysis). Which mutex guards which
//     field, and which functions require which locks, is stated in the
//     types and checked on every build instead of sampled by TSan.
//
//  2. A runtime lock-order validator inside the lscatter::Mutex /
//     SharedMutex wrappers: each thread keeps a held-lock stack, and a
//     process-global acquired-before graph records every nested
//     acquisition. The first acquisition that would close a cycle
//     (classic AB/BA deadlock order inversion), and any same-thread
//     re-acquisition (self-deadlock on a non-recursive mutex), fails a
//     contract immediately — even when the schedule that would actually
//     deadlock never happens in the test run. Static analysis cannot see
//     runtime-conditional acquisition orders; this can. The validator is
//     active whenever contracts are (default build) and compiles out
//     entirely under -DLSCATTER_CHECKS=OFF; failures route through
//     core/contracts.hpp, so LSCATTER_CONTRACTS=throw turns an inversion
//     into a catchable lscatter::core::ContractViolation for tests.
//
// Migration is mechanical: std::mutex -> lscatter::Mutex,
// std::shared_mutex -> lscatter::SharedMutex,
// std::lock_guard<std::mutex> -> lscatter::LockGuard,
// std::shared_lock -> lscatter::SharedLockGuard,
// std::unique_lock + std::condition_variable ->
// lscatter::UniqueLock + lscatter::CondVar. The lscatter-lint
// `raw-mutex` rule bans the std spellings in src/ outside this header
// so the whole tree stays on the checked wrappers.
//
// Like core/contracts.hpp this header is deliberately header-only and
// dependency-free so every layer (dsp upward) may include it without
// creating a link edge.

// The std primitives below are the implementation substrate of the
// wrappers; lscatter-lint's raw-mutex rule exempts this file (and only
// this file) from the std::mutex/std::lock_guard ban.
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/contracts.hpp"

// ---- Clang Thread Safety Analysis attribute macros ----------------------
// Spellings follow the canonical mutex.h from the Clang TSA docs; the
// LSCATTER_ prefix keeps them greppable and avoids colliding with other
// libraries' THREAD_ANNOTATION macros.

#if defined(__clang__) && !defined(SWIG)
#define LSCATTER_TSA_(x) __attribute__((x))
#else
#define LSCATTER_TSA_(x)  // no-op: gcc/msvc do not implement the analysis
#endif

/// A type whose instances can be held: `class LSCATTER_CAPABILITY("mutex")
/// Mutex { ... };`.
#define LSCATTER_CAPABILITY(x) LSCATTER_TSA_(capability(x))

/// RAII types that acquire in the constructor and release in the
/// destructor (LockGuard & friends below).
#define LSCATTER_SCOPED_CAPABILITY LSCATTER_TSA_(scoped_lockable)

/// Data member readable/writable only while the given capability is held.
#define LSCATTER_GUARDED_BY(x) LSCATTER_TSA_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define LSCATTER_PT_GUARDED_BY(x) LSCATTER_TSA_(pt_guarded_by(x))

/// Function may only be called while the caller holds the capability
/// exclusively (shared variant: while holding at least shared).
#define LSCATTER_REQUIRES(...) \
  LSCATTER_TSA_(requires_capability(__VA_ARGS__))
#define LSCATTER_REQUIRES_SHARED(...) \
  LSCATTER_TSA_(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the capability (on `this` when no
/// argument is given — the wrapper-method form).
#define LSCATTER_ACQUIRE(...) \
  LSCATTER_TSA_(acquire_capability(__VA_ARGS__))
#define LSCATTER_ACQUIRE_SHARED(...) \
  LSCATTER_TSA_(acquire_shared_capability(__VA_ARGS__))
#define LSCATTER_RELEASE(...) \
  LSCATTER_TSA_(release_capability(__VA_ARGS__))
#define LSCATTER_RELEASE_SHARED(...) \
  LSCATTER_TSA_(release_shared_capability(__VA_ARGS__))
#define LSCATTER_RELEASE_GENERIC(...) \
  LSCATTER_TSA_(release_generic_capability(__VA_ARGS__))
#define LSCATTER_TRY_ACQUIRE(...) \
  LSCATTER_TSA_(try_acquire_capability(__VA_ARGS__))
#define LSCATTER_TRY_ACQUIRE_SHARED(...) \
  LSCATTER_TSA_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it
/// itself — calling it while held is a self-deadlock, caught at compile
/// time).
#define LSCATTER_EXCLUDES(...) LSCATTER_TSA_(locks_excluded(__VA_ARGS__))

/// Declared lock-rank edges, checked under -Wthread-safety-beta.
#define LSCATTER_ACQUIRED_BEFORE(...) \
  LSCATTER_TSA_(acquired_before(__VA_ARGS__))
#define LSCATTER_ACQUIRED_AFTER(...) \
  LSCATTER_TSA_(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (for call graphs the
/// analysis cannot follow).
#define LSCATTER_ASSERT_CAPABILITY(x) LSCATTER_TSA_(assert_capability(x))
#define LSCATTER_ASSERT_SHARED_CAPABILITY(x) \
  LSCATTER_TSA_(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define LSCATTER_RETURN_CAPABILITY(x) LSCATTER_TSA_(lock_returned(x))

/// Escape hatch. Every use must carry a comment justifying why the
/// analysis cannot model the function (the acceptance bar for this
/// repo: condition-variable wait is the only known-legitimate case).
#define LSCATTER_NO_THREAD_SAFETY_ANALYSIS \
  LSCATTER_TSA_(no_thread_safety_analysis)

namespace lscatter {

// ---- runtime lock-order validator ---------------------------------------

namespace lock_order {

#if LSCATTER_CHECKS_ENABLED

inline constexpr bool kEnabled = true;

/// One entry of a thread's held-lock stack.
struct HeldLock {
  const void* mutex = nullptr;
  const char* name = nullptr;  // optional diagnostic label (or null)
  bool shared = false;
};

namespace detail {

inline const char* display_name(const char* name) {
  return name != nullptr ? name : "<unnamed>";
}

/// Process-global acquired-before graph. Edge A -> B means "B was
/// acquired while A was held" somewhere in the process's history; a new
/// nested acquisition that can already reach a currently-held lock
/// through the graph closes a cycle — the order inversion a deadlock
/// needs. Protected by a raw std::mutex on purpose: the validator must
/// not instrument (and recurse into) itself.
class Graph {
 public:
  static Graph& instance() {
    static Graph* const graph = new Graph();  // never destroyed: mutexes
    // may be released from static destructors of client code.
    return *graph;
  }

  /// Called with the acquiring thread's held stack just before the
  /// blocking acquisition of `next`. Fails a contract on inversion.
  void before_acquire(const HeldLock* held, std::size_t n_held,
                      const void* next, const char* next_name) {
    std::string inversion;
    {
      std::lock_guard<std::mutex> lk(mu_);
      names_[next] = next_name;
      for (std::size_t i = 0; i < n_held; ++i) {
        names_[held[i].mutex] = held[i].name;
      }
      for (std::size_t i = 0; i < n_held; ++i) {
        if (held[i].mutex == next) continue;  // re-acquire: caught earlier
        if (reaches_locked(next, held[i].mutex)) {
          inversion = "acquiring " + describe_locked(next) +
                      " while holding " + describe_locked(held[i].mutex) +
                      ", but the opposite order was recorded earlier "
                      "(acquired-before cycle) — potential deadlock";
          break;
        }
      }
      if (inversion.empty()) {
        for (std::size_t i = 0; i < n_held; ++i) {
          adj_[held[i].mutex].insert(next);
        }
      }
    }
    if (!inversion.empty()) {
      core::contracts::fail("lock-order", "acquired-before graph is acyclic",
                            __FILE__, __LINE__, inversion.c_str());
    }
  }

  /// Drop every edge touching `m` — called from the mutex destructor so
  /// a new mutex constructed at a recycled address (per-sweep PoolState
  /// on the stack) never inherits stale ordering history.
  void forget(const void* m) {
    std::lock_guard<std::mutex> lk(mu_);
    adj_.erase(m);
    names_.erase(m);
    for (auto& [from, to] : adj_) to.erase(m);
  }

  /// Directed edges currently recorded (test introspection).
  std::size_t edge_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto& [from, to] : adj_) n += to.size();
    return n;
  }

 private:
  Graph() = default;

  bool reaches_locked(const void* from, const void* to) const {
    if (from == to) return true;
    std::vector<const void*> stack{from};
    std::set<const void*> visited;
    while (!stack.empty()) {
      const void* cur = stack.back();
      stack.pop_back();
      if (!visited.insert(cur).second) continue;
      const auto it = adj_.find(cur);
      if (it == adj_.end()) continue;
      for (const void* next : it->second) {
        if (next == to) return true;
        stack.push_back(next);
      }
    }
    return false;
  }

  std::string describe_locked(const void* m) const {
    const auto it = names_.find(m);
    const char* name =
        it != names_.end() ? display_name(it->second) : "<unnamed>";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%p", m);
    return std::string("mutex '") + name + "' (" + buf + ")";
  }

  mutable std::mutex mu_;  // raw by design: see class comment
  std::map<const void*, std::set<const void*>> adj_;
  std::map<const void*, const char*> names_;
};

struct ThreadState {
  static constexpr std::size_t kMaxHeld = 32;
  HeldLock held[kMaxHeld];
  std::size_t depth = 0;
};

inline ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

}  // namespace detail

/// Pre-acquisition check: self-deadlock (same-thread re-acquisition of a
/// non-recursive lock, shared or exclusive) and order inversion against
/// the global acquired-before graph. Runs BEFORE the real lock call so
/// the bug reports instead of wedging. `blocking` is false for try_*
/// acquisitions, which cannot deadlock and therefore record no edges.
inline void check_acquire(const void* m, const char* name, bool blocking) {
  detail::ThreadState& st = detail::thread_state();
  for (std::size_t i = 0; i < st.depth; ++i) {
    if (st.held[i].mutex == m) {
      const std::string msg =
          std::string("same-thread re-acquisition of mutex '") +
          detail::display_name(name) +
          "' — self-deadlock on a non-recursive lock";
      core::contracts::fail("lock-order", "no re-entrant locking", __FILE__,
                            __LINE__, msg.c_str());
      return;  // kLog mode: keep going
    }
  }
  if (blocking && st.depth > 0) {
    detail::Graph::instance().before_acquire(st.held, st.depth, m, name);
  }
}

/// Post-acquisition bookkeeping: push onto the thread's held stack.
inline void acquired(const void* m, const char* name, bool shared) {
  detail::ThreadState& st = detail::thread_state();
  LSCATTER_ASSERT(st.depth < detail::ThreadState::kMaxHeld,
                  "lock nesting exceeds the validator's held-stack bound");
  if (st.depth < detail::ThreadState::kMaxHeld) {
    st.held[st.depth++] = {m, name, shared};
  }
}

/// Release bookkeeping: drop `m` from the held stack (out-of-order
/// release of hand-over-hand patterns is legal, so search, don't pop).
inline void released(const void* m) {
  detail::ThreadState& st = detail::thread_state();
  for (std::size_t i = st.depth; i-- > 0;) {
    if (st.held[i].mutex == m) {
      for (std::size_t j = i; j + 1 < st.depth; ++j) {
        st.held[j] = st.held[j + 1];
      }
      --st.depth;
      return;
    }
  }
  LSCATTER_ASSERT(false, "released a lock the validator never saw acquired");
}

inline void destroyed(const void* m) { detail::Graph::instance().forget(m); }

/// Locks the calling thread currently holds (test introspection).
inline std::size_t held_count() { return detail::thread_state().depth; }

/// Directed acquired-before edges recorded so far (test introspection —
/// and the anti-neutering probe: tests assert this grows when locks
/// nest, so a build that silently compiled the validator out fails).
inline std::size_t edge_count() {
  return detail::Graph::instance().edge_count();
}

#else  // !LSCATTER_CHECKS_ENABLED — everything compiles to nothing.

inline constexpr bool kEnabled = false;

inline void check_acquire(const void*, const char*, bool) {}
inline void acquired(const void*, const char*, bool) {}
inline void released(const void*) {}
inline void destroyed(const void*) {}
inline std::size_t held_count() { return 0; }
inline std::size_t edge_count() { return 0; }

#endif  // LSCATTER_CHECKS_ENABLED

}  // namespace lock_order

// ---- annotated drop-in lock wrappers -------------------------------------

/// std::mutex with a TSA capability and lock-order validation. Pass a
/// string-literal name ("obs.registry") for readable inversion reports;
/// the name is stored by pointer.
class LSCATTER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept = default;
  explicit Mutex(const char* name) noexcept : name_(name) {}
  ~Mutex() { lock_order::destroyed(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LSCATTER_ACQUIRE() {
    lock_order::check_acquire(this, name_, /*blocking=*/true);
    m_.lock();
    lock_order::acquired(this, name_, /*shared=*/false);
  }

  bool try_lock() LSCATTER_TRY_ACQUIRE(true) {
    lock_order::check_acquire(this, name_, /*blocking=*/false);
    const bool ok = m_.try_lock();
    if (ok) lock_order::acquired(this, name_, /*shared=*/false);
    return ok;
  }

  void unlock() LSCATTER_RELEASE() {
    lock_order::released(this);
    m_.unlock();
  }

  const char* name() const { return name_; }

 private:
  std::mutex m_;
  const char* name_ = nullptr;
};

/// std::shared_mutex with a TSA capability and lock-order validation.
/// Shared acquisitions participate in the acquired-before graph too: a
/// reader-held lock still deadlocks against a writer in a cycle.
class LSCATTER_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() noexcept = default;
  explicit SharedMutex(const char* name) noexcept : name_(name) {}
  ~SharedMutex() { lock_order::destroyed(this); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LSCATTER_ACQUIRE() {
    lock_order::check_acquire(this, name_, /*blocking=*/true);
    m_.lock();
    lock_order::acquired(this, name_, /*shared=*/false);
  }

  bool try_lock() LSCATTER_TRY_ACQUIRE(true) {
    lock_order::check_acquire(this, name_, /*blocking=*/false);
    const bool ok = m_.try_lock();
    if (ok) lock_order::acquired(this, name_, /*shared=*/false);
    return ok;
  }

  void unlock() LSCATTER_RELEASE() {
    lock_order::released(this);
    m_.unlock();
  }

  void lock_shared() LSCATTER_ACQUIRE_SHARED() {
    lock_order::check_acquire(this, name_, /*blocking=*/true);
    m_.lock_shared();
    lock_order::acquired(this, name_, /*shared=*/true);
  }

  bool try_lock_shared() LSCATTER_TRY_ACQUIRE_SHARED(true) {
    lock_order::check_acquire(this, name_, /*blocking=*/false);
    const bool ok = m_.try_lock_shared();
    if (ok) lock_order::acquired(this, name_, /*shared=*/true);
    return ok;
  }

  void unlock_shared() LSCATTER_RELEASE_SHARED() {
    lock_order::released(this);
    m_.unlock_shared();
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex m_;
  const char* name_ = nullptr;
};

/// Drop-in for std::lock_guard<std::mutex>: exclusive for the scope.
class LSCATTER_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) LSCATTER_ACQUIRE(m) : mutex_(m) {
    mutex_.lock();
  }
  ~LockGuard() LSCATTER_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Drop-in for std::shared_lock<std::shared_mutex>: shared (reader) for
/// the scope.
class LSCATTER_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& m) LSCATTER_ACQUIRE_SHARED(m)
      : mutex_(m) {
    mutex_.lock_shared();
  }
  ~SharedLockGuard() LSCATTER_RELEASE() { mutex_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Exclusive scoped lock on a SharedMutex (the write side of a
/// double-checked read-mostly cache: dsp/fft.cpp's plan cache).
class LSCATTER_SCOPED_CAPABILITY ExclusiveLockGuard {
 public:
  explicit ExclusiveLockGuard(SharedMutex& m) LSCATTER_ACQUIRE(m)
      : mutex_(m) {
    mutex_.lock();
  }
  ~ExclusiveLockGuard() LSCATTER_RELEASE() { mutex_.unlock(); }

  ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
  ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Drop-in for std::unique_lock<std::mutex>: relockable scope, the shape
/// condition-variable waits need. Always constructed locked.
class LSCATTER_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) LSCATTER_ACQUIRE(m) : mutex_(m) {
    mutex_.lock();
    owned_ = true;
  }
  ~UniqueLock() LSCATTER_RELEASE() {
    if (owned_) mutex_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() LSCATTER_ACQUIRE() {
    mutex_.lock();
    owned_ = true;
  }
  void unlock() LSCATTER_RELEASE() {
    mutex_.unlock();
    owned_ = false;
  }

  bool owns_lock() const { return owned_; }

 private:
  Mutex& mutex_;
  bool owned_ = false;
};

/// Condition variable paired with lscatter::Mutex/UniqueLock. Built on
/// condition_variable_any so the wait path re-enters the wrapper's
/// lock()/unlock() — the lock-order validator's held stack stays exact
/// across waits. Express wait predicates as named functions annotated
/// LSCATTER_REQUIRES(mutex) and loop at the call site:
///
///   while (!slot_ready(state)) state.result_ready.wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, and re-acquires before
  /// returning. NO_THREAD_SAFETY_ANALYSIS is justified here and only
  /// here: the analysis cannot model a function that releases and
  /// re-acquires a caller's scoped capability mid-body — the caller's
  /// view ("held before, held after") stays consistent, which is what
  /// the analysis checks at the call site.
  void wait(UniqueLock& lock) LSCATTER_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace lscatter
