#pragma once
// Streaming UE front end for LScatter.
//
// LscatterDemodulator works on one aligned packet at a time; real
// receivers see an unbroken sample stream in arbitrary chunk sizes. This
// wrapper buffers (rx, ambient) pairs, tracks the subframe phase, carves
// out whole packets as they complete, demodulates them, and emits packet
// events — the API a downstream SDR application would actually use:
//
//   core::StreamingReceiver ue(config);
//   while (sdr.read(chunk_rx, chunk_ambient)) {
//     for (const auto& ev : ue.feed(chunk_rx, chunk_ambient)) {
//       if (ev.result.payload) deliver(*ev.result.payload);
//     }
//   }
//
// The stream is assumed subframe-aligned at sample 0 (the UE's LTE sync
// — CellSearcher — provides that alignment; see tests).
//
// Hot-path memory discipline (DESIGN.md §15): feed() returns a span over
// an internal event buffer whose slots (including their payload vectors)
// are reused across calls, and demodulation runs through a persistent
// DemodWorkspace — after a warmup of a few packets the steady-state feed
// path performs zero heap allocations. The returned span is valid until
// the next feed() call.

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/contracts.hpp"
#include "core/lscatter_rx.hpp"
#include "lte/ue_sync.hpp"

namespace lscatter::core {

class StreamingReceiver {
 public:
  struct Config {
    lte::CellConfig cell;
    tag::TagScheduleConfig schedule;
    OffsetSearch search;

    /// Subframe index of the first sample fed (frame phase from LTE
    /// sync). Ignored when acquire_alignment is set.
    std::size_t first_subframe_index = 0;

    /// When true, the receiver does NOT assume the stream is
    /// subframe-aligned: it buffers samples and runs the PSS/SSS cell
    /// search (FFT-based correlation, see lte::CellSearcher) until a
    /// frame boundary is found, drops everything before that boundary,
    /// and only then starts carving packets. The first carved subframe
    /// is subframe 0 of the acquired frame.
    bool acquire_alignment = false;

    /// Minimum buffered samples before attempting acquisition
    /// (0 = one frame plus one FFT size).
    std::size_t acquire_min_samples = 0;

    /// Minimum normalized PSS metric to accept alignment.
    float acquire_min_metric = 0.5f;
  };

  struct PacketEvent {
    std::size_t first_subframe_index = 0;  // packet's first subframe
    PacketDemodResult result;
  };

  explicit StreamingReceiver(const Config& config);

  /// Feed the next chunk of the aligned streams (any length, including
  /// zero; rx and ambient must be the same length — mismatched calls are
  /// truncated to the common prefix and counted). Returns the packets
  /// completed within this chunk, in order. The span points into an
  /// internal buffer reused by the next feed() call — copy events that
  /// must outlive it.
  std::span<const PacketEvent> feed(std::span<const dsp::cf32> rx,
                                    std::span<const dsp::cf32> ambient);

  /// Declare a hole in the stream (e.g. the ingestion ring dropped
  /// chunks under backpressure): `gap_samples` samples that will never
  /// arrive. Buffered samples before the gap are discarded — they can no
  /// longer complete a packet. In aligned mode the receiver advances the
  /// stream phase deterministically and resumes carving at the next
  /// packet boundary; in acquire_alignment mode it goes back to a cold
  /// PSS reacquisition (a real gap invalidates the frame timing).
  void notify_gap(std::uint64_t gap_samples);

  /// Samples currently buffered (always < one packet's worth after
  /// feed() returns).
  std::size_t buffered_samples() const {
    return rx_buffer_.size() - consumed_;
  }

  /// Highest buffered_samples() ever observed (just after an insert,
  /// before packet extraction) — the receiver's memory footprint
  /// requirement. Also exported as `core.stream.buffered_hwm_samples`.
  std::size_t buffered_samples_high_water() const { return buffered_hwm_; }

  std::size_t packets_demodulated() const { return packets_; }
  std::size_t next_subframe_index() const { return next_subframe_; }

  /// Absolute stream position (samples) of the next sample to be fed —
  /// advances through both feed() and notify_gap().
  std::uint64_t stream_position() const { return stream_pos_; }

  /// Gaps declared via notify_gap() so far.
  std::uint64_t gaps_notified() const { return gaps_; }

  /// False only while acquire_alignment is set and no frame boundary has
  /// been found yet (or a gap forced reacquisition).
  bool aligned() const { return aligned_; }

 private:
  /// Attempt PSS/SSS acquisition on the buffered stream. Returns true
  /// once the stream is aligned (consumed_ advanced to the frame start).
  bool try_acquire();

  Config config_;
  LscatterDemodulator demodulator_;
  std::optional<lte::CellSearcher> searcher_;
  bool aligned_ = true;
  std::size_t samples_per_packet_;
  std::size_t next_subframe_;
  std::size_t packets_ = 0;
  std::size_t consumed_ = 0;  // read offset into the buffers
  std::size_t buffered_hwm_ = 0;
  std::uint64_t stream_pos_ = 0;
  std::uint64_t gaps_ = 0;
  /// Samples still to discard after a gap before carving resumes (the
  /// distance to the next packet boundary in aligned mode).
  std::uint64_t skip_ = 0;
  dsp::cvec rx_buffer_;
  dsp::cvec ambient_buffer_;
  /// Reused demod scratch + event slots (grow-only; inner vectors keep
  /// their capacity across feeds).
  DemodWorkspace ws_;
  std::vector<PacketEvent> events_;
  /// Parking lot for the payload vectors of CRC-failed slots: resetting
  /// the optional would free the vector's capacity and force a fresh
  /// allocation on the next clean packet, so the buffer is moved here
  /// first and moved back on the next crc_ok (one spare per event slot).
  std::vector<std::vector<std::uint8_t>> payload_spares_;
#if LSCATTER_CHECKS_ENABLED
  // Single-owner contract: the receiver holds unguarded stream state, so
  // all feed() calls must come from one thread (whichever calls first).
  // Checked in debug builds; compiled out under -DLSCATTER_CHECKS=OFF.
  std::thread::id owner_thread_{};
#endif
};

}  // namespace lscatter::core
