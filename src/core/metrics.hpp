#pragma once
// Link-level metrics the evaluation reports.
//
// The paper's definitions (§4.2):
//   BER        = bit errors / total transferred bits
//   throughput = correctly demodulated data bits per second
//
// `bits_delivered` implements the throughput numerator chance-corrected:
// a packet whose preamble was found contributes max(0, correct - wrong)
// bits, so a 50%-BER packet contributes ~0 instead of "half right by
// luck"; an undetected packet contributes 0. CRC-clean goodput is kept as
// a second, stricter metric.

#include <cstddef>
#include <string>

namespace lscatter::core {

struct LinkMetrics {
  std::size_t bits_sent = 0;
  std::size_t bit_errors = 0;
  std::size_t bits_delivered = 0;   // chance-corrected correct bits
  std::size_t bits_crc_ok = 0;      // payload bits inside CRC-clean packets
  std::size_t packets_sent = 0;
  std::size_t packets_detected = 0; // preamble found
  std::size_t packets_ok = 0;       // CRC clean
  double elapsed_s = 0.0;

  double ber() const {
    return bits_sent == 0
               ? 0.0
               : static_cast<double>(bit_errors) /
                     static_cast<double>(bits_sent);
  }

  /// Paper-style throughput [bit/s].
  double throughput_bps() const {
    return elapsed_s <= 0.0
               ? 0.0
               : static_cast<double>(bits_delivered) / elapsed_s;
  }

  /// CRC-clean goodput [bit/s].
  double goodput_bps() const {
    return elapsed_s <= 0.0
               ? 0.0
               : static_cast<double>(bits_crc_ok) / elapsed_s;
  }

  double packet_delivery_ratio() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(packets_ok) /
                     static_cast<double>(packets_sent);
  }

  double preamble_detection_ratio() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(packets_detected) /
                     static_cast<double>(packets_sent);
  }

  LinkMetrics& operator+=(const LinkMetrics& other);

  /// Exact equality, elapsed_s included bit-for-bit — what the sim
  /// pool's serial-vs-parallel determinism tests assert.
  friend bool operator==(const LinkMetrics& a, const LinkMetrics& b) {
    return a.bits_sent == b.bits_sent && a.bit_errors == b.bit_errors &&
           a.bits_delivered == b.bits_delivered &&
           a.bits_crc_ok == b.bits_crc_ok &&
           a.packets_sent == b.packets_sent &&
           a.packets_detected == b.packets_detected &&
           a.packets_ok == b.packets_ok && a.elapsed_s == b.elapsed_s;
  }
  friend bool operator!=(const LinkMetrics& a, const LinkMetrics& b) {
    return !(a == b);
  }

  std::string describe() const;
};

}  // namespace lscatter::core
