#pragma once
// Modulation-offset determination (paper §3.3.2, Eq. 7).
//
// The tag's residual sync error shifts its modulation window by an unknown
// number of basic timing units; the packet preamble (a known ±1 pattern of
// length N) lets the receiver find that shift. Correlating the products
// z_n = r_n conj(x_n) against the pattern is the tractable equivalent of
// Eq. 7's arg-min: at the true offset the terms add coherently as
// g e^{j phi} sum |x|^2, any other offset decorrelates. An exhaustive
// Eq. 7 search over all theta sequences is implemented for tiny N in the
// tests to validate this estimator.

#include <cstdint>
#include <optional>

#include "dsp/types.hpp"

namespace lscatter::core {

struct OffsetSearch {
  /// Offsets tried: [-range, +range] units around the nominal window.
  /// Must cover the residual-sync-error distribution *including tails*
  /// (StatisticalSync sigma = 2 us is ~61 units at 20 MHz; 256 units is
  /// > 4 sigma plus clock drift) — a miss here loses whole packets.
  std::size_t range_units = 256;

  /// Detection threshold on the normalized metric (|correlation| divided
  /// by the sum of |z| in the window; noise-only floors near 1/sqrt(N)).
  float detect_threshold = 0.2f;

  /// Per-subcarrier equalization of the backscatter hop (paper §3.3.1:
  /// "the phase offset is varying on different subcarriers"): estimate an
  /// FIR channel of this many taps from the preamble symbol and divide it
  /// out in the frequency domain before slicing. 0 disables (flat-fading
  /// deployments don't need it); ~8 taps handles indoor delay spreads.
  std::size_t equalizer_taps = 0;
};

struct OffsetResult {
  std::ptrdiff_t offset_units = 0;  // estimated shift of the tag window
  float metric = 0.0f;              // normalized, [0, 1]
  dsp::cf32 gain;                   // g*e^{j phi} estimated at the peak
};

/// Search for the preamble in `z` (products over one useful symbol,
/// z.size() == K). `nominal_start` is where the modulation window would
/// begin with zero sync error ((K - N)/2 plus any configured window
/// offset); `pattern` holds N bits (1 -> +1, 0 -> -1). Returns nullopt if
/// no candidate clears the threshold.
std::optional<OffsetResult> find_modulation_offset(
    std::span<const dsp::cf32> z, std::span<const std::uint8_t> pattern,
    std::ptrdiff_t nominal_start, const OffsetSearch& search);

}  // namespace lscatter::core
