#include "core/lscatter_rx.hpp"

#include <cassert>
#include <cmath>

#include "core/phase_offset.hpp"
#include "dsp/linalg.hpp"
#include "dsp/simd.hpp"
#include "lte/signal_map.hpp"
#include "obs/obs.hpp"

namespace lscatter::core {

using dsp::cf32;
using dsp::cvec;

LscatterDemodulator::LscatterDemodulator(
    const lte::CellConfig& cell, const tag::TagScheduleConfig& schedule,
    const OffsetSearch& search, Fec fec)
    : cell_(cell),
      controller_(cell, schedule),
      search_(search),
      fec_(fec),
      plan_(&dsp::cached_fft_plan(cell.fft_size())) {}

std::vector<dsp::cf64> LscatterDemodulator::estimate_channel_fir(
    std::span<const cf32> rx, std::span<const cf32> ambient,
    std::size_t subframe_offset_samples, std::size_t l,
    std::ptrdiff_t offset_units) const {
  const std::size_t k = cell_.fft_size();
  const std::size_t useful =
      subframe_offset_samples + lte::symbol_offset_in_subframe(cell_, l) +
      cell_.cp_length(l % lte::kSymbolsPerSlot);

  // Regressor: the transmitted hybrid signal, reconstructed from the
  // known ambient and the preamble's full unit pattern at the estimated
  // offset (filler '1' outside the window).
  const auto& pre = controller_.preamble_pattern();
  const std::ptrdiff_t start =
      controller_.modulation_start_unit() + offset_units;
  cvec u(k);
  for (std::size_t n = 0; n < k; ++n) {
    const std::ptrdiff_t rel = static_cast<std::ptrdiff_t>(n) - start;
    const bool one =
        (rel < 0 || rel >= static_cast<std::ptrdiff_t>(pre.size()))
            ? true
            : pre[static_cast<std::size_t>(rel)] != 0;
    const cf32 x = ambient[useful + n];
    u[n] = one ? x : -x;
  }
  // The offset search locks onto the channel's group-delay centroid, so
  // the effective channel relative to `u` has *pre-cursor* taps. Model
  // r[n] = sum_l h_l u[n - l + pre] with pre = taps/2 by advancing the
  // regressor; equalize_window() places tap l at delay (l - pre).
  const std::size_t taps = search_.equalizer_taps;
  const std::size_t precursor = taps / 2;
  const std::span<const cf32> v(u.data() + precursor, k - precursor);
  const std::span<const cf32> r(rx.data() + useful, k - precursor);
  return dsp::fir_least_squares(v, r, taps);
}

dsp::cvec LscatterDemodulator::equalize_window(
    std::span<const cf32> rx_window, std::span<const dsp::cf64> h) const {
  const std::size_t k = cell_.fft_size();
  assert(rx_window.size() == k);

  // Frequency response of the estimated FIR; tap l sits at delay
  // (l - pre) with pre = taps/2 (see estimate_channel_fir).
  const std::size_t precursor = search_.equalizer_taps / 2;
  cvec h_pad(k, cf32{});
  for (std::size_t t = 0; t < h.size(); ++t) {
    const std::size_t idx = (t + k - precursor) % k;
    h_pad[idx] = cf32{static_cast<float>(h[t].real()),
                      static_cast<float>(h[t].imag())};
  }
  plan_->forward_inplace(h_pad);

  cvec r(rx_window.begin(), rx_window.end());
  plan_->forward_inplace(r);
  // Regularized zero-forcing: divide by H, flooring |H|^2.
  double mean_h2 = 0.0;
  for (const cf32 v : h_pad) mean_h2 += std::norm(v);
  mean_h2 /= static_cast<double>(k);
  const float eps = static_cast<float>(1e-3 * mean_h2);
  for (std::size_t i = 0; i < k; ++i) {
    const float p = std::norm(h_pad[i]) + eps;
    r[i] = r[i] * std::conj(h_pad[i]) / p;
  }
  plan_->inverse_inplace(r);
  return r;
}

void LscatterDemodulator::symbol_products_into(
    std::span<const cf32> rx, std::span<const cf32> ambient,
    std::size_t subframe_offset_samples, std::size_t l, cvec& z_out,
    std::span<const dsp::cf64> h) const {
  const std::size_t k = cell_.fft_size();
  const std::size_t useful =
      subframe_offset_samples + lte::symbol_offset_in_subframe(cell_, l) +
      cell_.cp_length(l % lte::kSymbolsPerSlot);
  assert(useful + k <= rx.size());
  assert(useful + k <= ambient.size());

  // z[n] = r[n] · conj(ambient[n]) through the dispatched kernel — the
  // per-unit product is the §3.2 demodulation front end and dominates the
  // data-symbol path.
  if (z_out.size() != k) z_out.resize(k);
  const dsp::SimdKernels& kern = dsp::simd_kernels();
  if (h.empty()) {
    kern.conj_mul(rx.data() + useful, ambient.data() + useful, z_out.data(),
                  k);
  } else {
    const cvec r_eq =
        equalize_window(std::span<const cf32>(rx.data() + useful, k), h);
    kern.conj_mul(r_eq.data(), ambient.data() + useful, z_out.data(), k);
  }
}

cf32 LscatterDemodulator::estimate_symbol_gain(std::span<const cf32> z,
                                               std::ptrdiff_t offset_units,
                                               cf32 fallback) const {
  const std::size_t n_sc = cell_.n_subcarriers();
  const std::ptrdiff_t start =
      static_cast<std::ptrdiff_t>(controller_.modulation_start_unit()) +
      offset_units;
  const std::ptrdiff_t stop = start + static_cast<std::ptrdiff_t>(n_sc);

  // A few guard units around the window absorb edge uncertainty. The
  // kept filler is the two contiguous runs outside the guarded window,
  // each summed by the dispatched sum_abs kernel.
  constexpr std::ptrdiff_t kGuard = 4;
  const auto size = static_cast<std::ptrdiff_t>(z.size());
  const auto clamp = [size](std::ptrdiff_t v) {
    return v < 0 ? std::ptrdiff_t{0} : (v > size ? size : v);
  };
  const std::ptrdiff_t head_end = clamp(start - kGuard);
  const std::ptrdiff_t tail_begin = clamp(stop + kGuard);
  double ar = 0.0;
  double ai = 0.0;
  double abs_sum = 0.0;
  const dsp::SimdKernels& kern = dsp::simd_kernels();
  if (head_end > 0) {
    kern.sum_abs(z.data(), static_cast<std::size_t>(head_end), &ar, &ai,
                 &abs_sum);
  }
  if (tail_begin < size) {
    kern.sum_abs(z.data() + tail_begin,
                 static_cast<std::size_t>(size - tail_begin), &ar, &ai,
                 &abs_sum);
  }
  const std::size_t count =
      static_cast<std::size_t>(head_end + (size - tail_begin));
  if (count < 16 || abs_sum <= 0.0) return fallback;
  const cf32 g{static_cast<float>(ar), static_cast<float>(ai)};
  // Very incoherent filler (magnitude far below what its energy allows)
  // means the estimate is noise-dominated; trust the preamble instead.
  if (std::abs(g) < 0.1 * abs_sum) return fallback;
  return g;
}

void LscatterDemodulator::slice_symbol(std::span<const cf32> z,
                                       std::ptrdiff_t offset_units,
                                       cf32 gain,
                                       std::vector<std::uint8_t>& bits,
                                       std::vector<float>& soft) const {
  const std::size_t rep = controller_.schedule().repetition;
  const std::size_t n_bits = controller_.bits_per_symbol();
  const std::ptrdiff_t start =
      static_cast<std::ptrdiff_t>(controller_.modulation_start_unit()) +
      offset_units;
  const float mag = std::abs(gain);
  const cf32 unit = mag > 0.0f ? std::conj(gain) / mag : cf32{1.0f, 0.0f};
  // Keep soft metrics on a comparable scale across symbols/packets.
  const float norm = mag > 0.0f ? 1.0f / mag : 1.0f;

  for (std::size_t i = 0; i < n_bits; ++i) {
    // Soft-combine the bit's `rep` consecutive units (maximum-ratio:
    // z already carries the |x_n|^2 weighting).
    cf32 v{};
    for (std::size_t r = 0; r < rep; ++r) {
      const std::ptrdiff_t idx =
          start + static_cast<std::ptrdiff_t>(i * rep + r);
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(z.size())) {
        v += z[static_cast<std::size_t>(idx)] * unit;
      }
    }
    bits.push_back(v.real() >= 0.0f ? 1 : 0);
    soft.push_back(v.real() * norm);
  }
}

PacketDemodStatus LscatterDemodulator::demodulate_packet_into(
    std::span<const cf32> rx, std::span<const cf32> ambient,
    std::size_t first_subframe_index, DemodWorkspace& ws) const {
  LSCATTER_OBS_SPAN("core.demod.packet");
  LSCATTER_OBS_COUNTER_INC("core.demod.packets");
  PacketDemodStatus status;
  const auto& sched = controller_.schedule();
  const std::size_t sf_samples = cell_.samples_per_subframe();
  assert(rx.size() >= sched.packet_subframes * sf_samples);
  assert(ambient.size() == rx.size());

  const std::ptrdiff_t nominal = controller_.modulation_start_unit();
  const auto& preamble = controller_.preamble_pattern();

  // Walk the packet's modulated symbols in schedule order: the first
  // preamble_symbols are preamble, the rest data.
  std::size_t preambles_expected = sched.preamble_symbols;
  std::size_t data_symbols_expected =
      controller_.packet_raw_bits(first_subframe_index) /
      controller_.bits_per_symbol();
  std::optional<OffsetResult> offset;
  cf32 gain{};
  ws.coded.clear();  // capacity retained: no allocation once warm
  ws.soft.clear();
  std::pair<std::size_t, std::size_t> best_preamble{0, 0};  // (sf_off, l)
  std::vector<dsp::cf64> h;  // equalizer FIR, estimated lazily (taps > 0)

  for (std::size_t s = 0; s < sched.packet_subframes; ++s) {
    const std::size_t sf = first_subframe_index + s;
    if (controller_.is_listening_subframe(sf)) continue;
    const std::size_t sf_off = s * sf_samples;

    for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
      if (!controller_.symbol_modulatable(sf, l)) continue;
      if (preambles_expected > 0) {
        --preambles_expected;
        LSCATTER_OBS_TIMER("core.demod.offset_search");
        symbol_products_into(rx, ambient, sf_off, l, ws.z);
        auto found =
            find_modulation_offset(ws.z, preamble, nominal, search_);
        if (found && (!offset || found->metric > offset->metric)) {
          offset = *found;
          gain = found->gain;
          best_preamble = {sf_off, l};
        }
        continue;
      }
      if (!offset) {
        // Preamble missed: the packet is lost; stop early.
        LSCATTER_OBS_COUNTER_INC("core.demod.preamble_missed");
        return status;
      }
      if (search_.equalizer_taps > 0 && h.empty()) {
        LSCATTER_OBS_TIMER("core.demod.equalizer_fit");
        // Under ISI the correlation peak can be off by a unit or two, and
        // a timing slip between the ambient and the pattern is *not*
        // expressible as an LTI channel (they shift independently), so
        // refine the offset jointly with the channel fit: pick the
        // candidate whose least-squares residual is smallest.
        cvec zd;
        double best_residual = 0.0;
        for (std::ptrdiff_t d = offset->offset_units - 2;
             d <= offset->offset_units + 2; ++d) {
          auto cand = estimate_channel_fir(
              rx, ambient, best_preamble.first, best_preamble.second, d);
          if (cand.empty()) continue;
          // Residual via the equalized preamble: slice against the known
          // pattern and count soft disagreement energy.
          symbol_products_into(rx, ambient, best_preamble.first,
                               best_preamble.second, zd, cand);
          double agree = 0.0;
          const std::ptrdiff_t start =
              controller_.modulation_start_unit() + d;
          for (std::size_t i = 0; i < preamble.size(); ++i) {
            const std::ptrdiff_t idx =
                start + static_cast<std::ptrdiff_t>(i);
            if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(zd.size())) {
              continue;
            }
            const float sgn = preamble[i] ? 1.0f : -1.0f;
            agree += sgn * zd[static_cast<std::size_t>(idx)].real();
          }
          if (h.empty() || agree > best_residual) {
            best_residual = agree;
            h = std::move(cand);
            offset->offset_units = d;
          }
        }
      }
      if (data_symbols_expected == 0) break;
      --data_symbols_expected;
      {
        // Conjugate products (and equalization when fitted) + slicing
        // together are the paper's unit-level demodulation (§3.2/§3.3).
        LSCATTER_OBS_TIMER("core.demod.unit_demod");
        symbol_products_into(rx, ambient, sf_off, l, ws.z, h);
      }
      cf32 g;
      {
        // Per-symbol gain re-estimate = the §3.3.1 phase-offset
        // elimination step.
        LSCATTER_OBS_TIMER("core.demod.phase_offset");
        g = estimate_symbol_gain(ws.z, offset->offset_units, gain);
      }
      {
        LSCATTER_OBS_TIMER("core.demod.unit_demod");
        slice_symbol(ws.z, offset->offset_units, g, ws.coded, ws.soft);
      }
    }
  }

  if (!offset) {
    LSCATTER_OBS_COUNTER_INC("core.demod.preamble_missed");
    return status;
  }
  LSCATTER_OBS_COUNTER_INC("core.demod.preamble_found");
  status.preamble_found = true;
  status.offset_units = offset->offset_units;
  status.preamble_metric = offset->metric;
  if (ws.coded.size() > 32) {
    LSCATTER_OBS_TIMER("core.demod.fec_crc");
    // Codec cached per on-air size: the whitening sequence is derived
    // from the size alone, so a handful of entries covers the stream.
    const PacketCodec* codec = nullptr;
    for (const auto& [size, c] : ws.codecs) {
      if (size == ws.coded.size()) {
        codec = &c;
        break;
      }
    }
    if (codec == nullptr) {
      ws.codecs.emplace_back(ws.coded.size(),
                             PacketCodec(ws.coded.size(), fec_));
      codec = &ws.codecs.back().second;
    }
    if (fec_ == Fec::kNone) {
      status.crc_ok =
          codec->decode_hard_into(ws.coded, ws.crc_scratch, ws.payload);
    } else if (auto decoded = codec->decode_soft(ws.soft)) {
      ws.payload.assign(decoded->begin(), decoded->end());
      status.crc_ok = true;
    }
    if (status.crc_ok) {
      LSCATTER_OBS_COUNTER_INC("core.demod.crc_ok");
    } else {
      LSCATTER_OBS_COUNTER_INC("core.demod.crc_fail");
    }
  }
  return status;
}

PacketDemodResult LscatterDemodulator::demodulate_packet(
    std::span<const cf32> rx, std::span<const cf32> ambient,
    std::size_t first_subframe_index) const {
  DemodWorkspace ws;
  const PacketDemodStatus status =
      demodulate_packet_into(rx, ambient, first_subframe_index, ws);
  PacketDemodResult result;
  result.preamble_found = status.preamble_found;
  result.offset_units = status.offset_units;
  result.preamble_metric = status.preamble_metric;
  result.coded_bits = std::move(ws.coded);
  result.soft_bits = std::move(ws.soft);
  if (status.crc_ok) result.payload = std::move(ws.payload);
  return result;
}

}  // namespace lscatter::core
