#include "core/phase_offset.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace lscatter::core {

using dsp::cf32;
using dsp::cvec;

cf32 estimate_gain(std::span<const cf32> z_reference,
                   double reference_energy) {
  const cf32 s = dsp::sum(z_reference);
  if (reference_energy > 0.0) {
    return cf32{static_cast<float>(s.real() / reference_energy),
                static_cast<float>(s.imag() / reference_energy)};
  }
  return s;
}

void derotate(std::span<cf32> z, cf32 gain) {
  const float mag = std::abs(gain);
  if (mag <= 0.0f) return;
  const cf32 unit = std::conj(gain) / mag;
  for (cf32& v : z) v *= unit;
}

cvec eq6_reference_products(std::span<const cf32> y,
                            std::size_t reference_index) {
  LSCATTER_EXPECT(reference_index < y.size(),
                  "phase reference must be inside the window");
  const cf32 yr = std::conj(y[reference_index]);
  cvec out(y.size());
  for (std::size_t k = 0; k < y.size(); ++k) out[k] = y[k] * yr;
  return out;
}

}  // namespace lscatter::core
