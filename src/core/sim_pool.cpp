#include "core/sim_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "core/contracts.hpp"
#include "core/thread_safety.hpp"
#include "dsp/rng.hpp"
#include "obs/obs.hpp"

namespace lscatter::core {
namespace {

// One finished drop parked in the reorder window: either metrics or the
// exception that killed it (never both).
struct Slot {
  LinkMetrics metrics;
  std::exception_ptr error;
};

// Shared pool state. A single mutex is deliberate: drops cost
// milliseconds to seconds each, so claim/deliver contention is noise
// next to the simulation work. The cursor/window/stop fields are
// GUARDED_BY the pool mutex (checked on the clang thread-safety lane);
// window/drops/flow_base are set before the team starts and never
// mutated after, so workers may read them unlocked.
struct PoolState {
  lscatter::Mutex mutex{"core.pool.state"};
  lscatter::CondVar window_open;   // workers: window advanced
  lscatter::CondVar result_ready;  // consumer: in-order slot landed
  std::size_t next_claim LSCATTER_GUARDED_BY(mutex) = 0;  // next handout
  std::size_t next_emit LSCATTER_GUARDED_BY(mutex) = 0;   // consumer wants
  std::size_t window = 1;       // immutable after team start
  std::size_t drops = 0;        // immutable after team start
  std::uint64_t flow_base = 0;  // immutable; drop d's trace flow id is
                                // flow_base + d (see below)
  std::map<std::size_t, Slot> ready
      LSCATTER_GUARDED_BY(mutex);  // finished, awaiting emission
  bool stop LSCATTER_GUARDED_BY(mutex) = false;  // failure: drain + exit
};

// Condition-variable wait predicates, named and annotated REQUIRES so
// the thread-safety analysis checks the guarded reads (a lambda body
// would be analyzed without the lock context and rejected).

/// Worker admission: drop `index` may run once it is inside the reorder
/// window, i.e. fewer than `window` drops ahead of the consumer cursor.
bool admission_open(const PoolState& state, std::size_t index)
    LSCATTER_REQUIRES(state.mutex) {
  return state.stop || index < state.next_emit + state.window;
}

/// Consumer wake: the next in-order slot has landed in the window.
bool next_slot_ready(const PoolState& state)
    LSCATTER_REQUIRES(state.mutex) {
  return state.ready.count(state.next_emit) != 0;
}

// Process-unique flow-id block for a sweep of `drops` drops: drop d gets
// flow id base + d, so the claim/execute/deliver spans of one drop share
// one id and trace_export links them into a connected Perfetto arc,
// while concurrent or repeated sweeps never collide. Starts at 1 — flow
// id 0 means "no flow".
std::uint64_t claim_flow_block(std::size_t drops) {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(drops, std::memory_order_relaxed);
}

using DropConfigFn = std::function<LinkConfig(std::size_t)>;

LinkMetrics run_one_drop(const DropConfigFn& make_config,
                         std::size_t drop_index, std::size_t subframes,
                         std::uint64_t flow) {
  LSCATTER_OBS_SPAN_FLOW("core.pool.drop", flow);
  LinkSimulator sim(make_config(drop_index));
  return sim.run(subframes);
}

void worker_loop(PoolState& state, const DropConfigFn& make_config,
                 std::size_t subframes) {
  for (;;) {
    std::size_t index = 0;
    {
      lscatter::UniqueLock lock(state.mutex);
      if (state.stop || state.next_claim >= state.drops) return;
      index = state.next_claim++;
      // Flow leg 1: the claim-to-admission wait. Its duration is the
      // backpressure stall (core.pool.enqueue.seconds), and the span's
      // flow id ties it to this drop's execute and deliver legs.
      LSCATTER_OBS_SPAN_FLOW("core.pool.enqueue",
                             state.flow_base + index);
      // Backpressure: never run more than `window` drops ahead of the
      // consumer. Indices below ours are claimed (the cursor is
      // contiguous), so the window is guaranteed to advance.
      while (!admission_open(state, index)) state.window_open.wait(lock);
      if (state.stop) return;
    }

    Slot slot;
    try {
      slot.metrics = run_one_drop(make_config, index, subframes,
                                  state.flow_base + index);
      LSCATTER_OBS_SHARDED_COUNTER_INC("core.pool.drops_completed");
    } catch (...) {
      slot.error = std::current_exception();
      LSCATTER_OBS_SHARDED_COUNTER_INC("core.pool.drops_failed");
    }

    {
      lscatter::LockGuard lock(state.mutex);
      state.ready.emplace(index, std::move(slot));
      LSCATTER_OBS_GAUGE_MAX("core.pool.window_high_water",
                             state.ready.size());
    }
    state.result_ready.notify_one();
  }
}

void run_serial(const DropConfigFn& make_config, std::size_t drops,
                std::size_t subframes,
                const std::function<void(const DropOutcome&)>& consume) {
  const std::uint64_t flow_base = claim_flow_block(drops);
  for (std::size_t d = 0; d < drops; ++d) {
    DropOutcome outcome;
    outcome.drop_index = d;
    outcome.metrics = run_one_drop(make_config, d, subframes, flow_base + d);
    LSCATTER_OBS_SHARDED_COUNTER_INC("core.pool.drops_completed");
    {
      LSCATTER_OBS_SPAN_FLOW("core.pool.deliver", flow_base + d);
      consume(outcome);
    }
  }
}

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LSCATTER_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

LinkConfig config_for_drop(const LinkConfig& base, std::size_t drop_index) {
  LinkConfig cfg = base;
  cfg.seed = dsp::derive_seed(base.seed, drop_index);
  cfg.enodeb.seed = dsp::derive_seed(cfg.seed, 1);
  return cfg;
}

void for_each_drop(const LinkConfig& base, std::size_t drops,
                   std::size_t subframes, const PoolOptions& options,
                   const std::function<void(const DropOutcome&)>& consume) {
  for_each_drop(
      drops, subframes, options,
      [&base](std::size_t d) { return config_for_drop(base, d); }, consume);
}

void for_each_drop(std::size_t drops, std::size_t subframes,
                   const PoolOptions& options,
                   const std::function<LinkConfig(std::size_t)>& make_config,
                   const std::function<void(const DropOutcome&)>& consume) {
  LSCATTER_EXPECT(static_cast<bool>(make_config),
                  "for_each_drop needs a per-drop config");
  LSCATTER_EXPECT(static_cast<bool>(consume),
                  "for_each_drop needs a consumer");
  if (drops == 0) return;

  std::size_t threads = resolve_threads(options.threads);
  if (threads > drops) threads = drops;
  LSCATTER_OBS_GAUGE_SET("core.pool.workers", threads);

  if (threads <= 1) {
    run_serial(make_config, drops, subframes, consume);
    return;
  }

  PoolState state;
  state.drops = drops;
  state.flow_base = claim_flow_block(drops);
  state.window =
      options.window > 0 ? options.window : std::max<std::size_t>(2 * threads, 8);

  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    team.emplace_back([&state, &make_config, subframes] {
      worker_loop(state, make_config, subframes);
    });
  }

  std::exception_ptr failure;
  {
    lscatter::UniqueLock lock(state.mutex);
    while (state.next_emit < drops) {
      while (!next_slot_ready(state)) state.result_ready.wait(lock);
      auto node = state.ready.extract(state.next_emit);
      DropOutcome outcome;
      outcome.drop_index = state.next_emit;
      ++state.next_emit;
      state.window_open.notify_all();

      Slot slot = std::move(node.mapped());
      if (slot.error) {
        failure = slot.error;
        state.stop = true;
        break;
      }
      outcome.metrics = slot.metrics;
      lock.unlock();
      try {
        // Flow leg 3: in-order delivery on the consumer thread.
        LSCATTER_OBS_SPAN_FLOW("core.pool.deliver",
                               state.flow_base + outcome.drop_index);
        consume(outcome);
      } catch (...) {
        failure = std::current_exception();
        lock.lock();
        state.stop = true;
        break;
      }
      lock.lock();
    }
    state.stop = state.stop || failure != nullptr;
  }
  state.window_open.notify_all();
  for (auto& worker : team) worker.join();
  if (failure) std::rethrow_exception(failure);
}

DropSweep run_drops_parallel(const LinkConfig& base, std::size_t drops,
                             std::size_t subframes, std::size_t threads) {
  DropSweep sweep;
  sweep.throughputs_bps.reserve(drops);
  PoolOptions options;
  options.threads = threads;
  for_each_drop(base, drops, subframes, options,
                [&sweep](const DropOutcome& outcome) {
                  sweep.total += outcome.metrics;
                  sweep.throughputs_bps.push_back(
                      outcome.metrics.throughput_bps());
                });
  LSCATTER_ENSURE(sweep.throughputs_bps.size() == drops,
                  "every drop must deliver exactly once");
  return sweep;
}

}  // namespace lscatter::core
