#pragma once
// UE-side backscatter demodulator (paper §3.3).
//
// For every modulated symbol of a packet the receiver forms the products
// z_n = r_n conj(x_n) over the useful window (x_n: known ambient
// baseband), finds the modulation offset from the preamble symbol
// (modulation_offset.*), eliminates the phase offset per symbol from the
// filler units (phase_offset.*), and slices each unit's BPSK phase. The
// collected bits are de-whitened and CRC-checked by the PacketCodec.

#include <optional>

#include "core/framing.hpp"
#include "core/modulation_offset.hpp"
#include "dsp/fft.hpp"
#include "lte/ofdm.hpp"
#include "tag/tag_controller.hpp"

namespace lscatter::core {

struct PacketDemodResult {
  bool preamble_found = false;
  std::ptrdiff_t offset_units = 0;
  float preamble_metric = 0.0f;
  std::vector<std::uint8_t> coded_bits;  // on-air bits (still whitened)
  std::vector<float> soft_bits;          // per-unit metric, + = bit 1
  std::optional<std::vector<std::uint8_t>> payload;  // CRC-clean payload
};

class LscatterDemodulator {
 public:
  LscatterDemodulator(const lte::CellConfig& cell,
                      const tag::TagScheduleConfig& schedule,
                      const OffsetSearch& search = {},
                      Fec fec = Fec::kNone);

  /// Demodulate one packet. `rx` and `ambient` are aligned sample spans
  /// that begin at the boundary of the packet's first subframe and cover
  /// packet_subframes() full subframes. `first_subframe_index` is that
  /// subframe's running index (for the PSS/SSS avoidance schedule).
  PacketDemodResult demodulate_packet(std::span<const dsp::cf32> rx,
                                      std::span<const dsp::cf32> ambient,
                                      std::size_t first_subframe_index) const;

  const tag::TagController& controller() const { return controller_; }
  const OffsetSearch& search() const { return search_; }

 private:
  /// z products over the useful window of subframe symbol `l`; when `h`
  /// is non-empty the window is channel-equalized first.
  dsp::cvec symbol_products(std::span<const dsp::cf32> rx,
                            std::span<const dsp::cf32> ambient,
                            std::size_t subframe_offset_samples,
                            std::size_t l,
                            std::span<const dsp::cf64> h = {}) const;

  /// Slice the symbol's info bits (and their soft metrics) given offset
  /// and gain; repetition units are soft-combined.
  void slice_symbol(std::span<const dsp::cf32> z,
                    std::ptrdiff_t offset_units, dsp::cf32 gain,
                    std::vector<std::uint8_t>& bits,
                    std::vector<float>& soft) const;

  /// Per-symbol gain re-estimate from units outside the (shifted)
  /// modulation window; falls back to `fallback` if too little energy.
  dsp::cf32 estimate_symbol_gain(std::span<const dsp::cf32> z,
                                 std::ptrdiff_t offset_units,
                                 dsp::cf32 fallback) const;

  /// Least-squares FIR estimate of the backscatter channel from a symbol
  /// whose full unit pattern is known (the preamble at offset d).
  std::vector<dsp::cf64> estimate_channel_fir(
      std::span<const dsp::cf32> rx, std::span<const dsp::cf32> ambient,
      std::size_t subframe_offset_samples, std::size_t l,
      std::ptrdiff_t offset_units) const;

  /// Divide the channel out of one useful window in the frequency domain.
  dsp::cvec equalize_window(std::span<const dsp::cf32> rx_window,
                            std::span<const dsp::cf64> h) const;

  lte::CellConfig cell_;
  tag::TagController controller_;
  OffsetSearch search_;
  Fec fec_;
  dsp::FftPlan plan_;
};

}  // namespace lscatter::core
