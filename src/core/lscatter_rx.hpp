#pragma once
// UE-side backscatter demodulator (paper §3.3).
//
// For every modulated symbol of a packet the receiver forms the products
// z_n = r_n conj(x_n) over the useful window (x_n: known ambient
// baseband), finds the modulation offset from the preamble symbol
// (modulation_offset.*), eliminates the phase offset per symbol from the
// filler units (phase_offset.*), and slices each unit's BPSK phase. The
// collected bits are de-whitened and CRC-checked by the PacketCodec.

#include <optional>
#include <utility>

#include "core/framing.hpp"
#include "core/modulation_offset.hpp"
#include "dsp/fft.hpp"
#include "lte/ofdm.hpp"
#include "tag/tag_controller.hpp"

namespace lscatter::core {

struct PacketDemodResult {
  bool preamble_found = false;
  std::ptrdiff_t offset_units = 0;
  float preamble_metric = 0.0f;
  std::vector<std::uint8_t> coded_bits;  // on-air bits (still whitened)
  std::vector<float> soft_bits;          // per-unit metric, + = bit 1
  std::optional<std::vector<std::uint8_t>> payload;  // CRC-clean payload
};

/// Reusable scratch for demodulate_packet_into(). All buffers grow to
/// their steady-state size on the first few packets and are then reused,
/// so the streaming hot path performs zero heap allocations (DESIGN.md
/// §15). One workspace per decoding thread; never shared concurrently.
struct DemodWorkspace {
  dsp::cvec z;                        // symbol-product scratch (K samples)
  std::vector<std::uint8_t> coded;    // on-air bits of the current packet
  std::vector<float> soft;            // per-unit soft metrics
  std::vector<std::uint8_t> payload;  // CRC-clean payload (crc_ok only)
  std::vector<std::uint8_t> crc_scratch;
  /// Codecs cached per on-air size (listening slots change packet
  /// capacity, so a stream sees a small set of sizes — each is built
  /// once, during warmup).
  std::vector<std::pair<std::size_t, PacketCodec>> codecs;
};

/// Result of the allocation-free demod path; the bit/payload buffers
/// live in the DemodWorkspace that produced it.
struct PacketDemodStatus {
  bool preamble_found = false;
  bool crc_ok = false;
  std::ptrdiff_t offset_units = 0;
  float preamble_metric = 0.0f;
};

class LscatterDemodulator {
 public:
  LscatterDemodulator(const lte::CellConfig& cell,
                      const tag::TagScheduleConfig& schedule,
                      const OffsetSearch& search = {},
                      Fec fec = Fec::kNone);

  /// Demodulate one packet. `rx` and `ambient` are aligned sample spans
  /// that begin at the boundary of the packet's first subframe and cover
  /// packet_subframes() full subframes. `first_subframe_index` is that
  /// subframe's running index (for the PSS/SSS avoidance schedule).
  PacketDemodResult demodulate_packet(std::span<const dsp::cf32> rx,
                                      std::span<const dsp::cf32> ambient,
                                      std::size_t first_subframe_index) const;

  /// Allocation-free variant for the streaming pipeline: identical
  /// decode (bit-for-bit) but all intermediates live in `ws`. On return
  /// ws.coded/ws.soft hold the sliced bits and, when the status reports
  /// crc_ok, ws.payload holds the CRC-clean payload. With the default
  /// Fec::kNone and equalizer_taps == 0 this path performs no heap
  /// allocation once ws is warm.
  PacketDemodStatus demodulate_packet_into(
      std::span<const dsp::cf32> rx, std::span<const dsp::cf32> ambient,
      std::size_t first_subframe_index, DemodWorkspace& ws) const;

  const tag::TagController& controller() const { return controller_; }
  const OffsetSearch& search() const { return search_; }

 private:
  /// z products over the useful window of subframe symbol `l`, written
  /// into `z_out` (resized to the FFT size, reused across calls); when
  /// `h` is non-empty the window is channel-equalized first.
  void symbol_products_into(std::span<const dsp::cf32> rx,
                            std::span<const dsp::cf32> ambient,
                            std::size_t subframe_offset_samples,
                            std::size_t l, dsp::cvec& z_out,
                            std::span<const dsp::cf64> h = {}) const;

  /// Slice the symbol's info bits (and their soft metrics) given offset
  /// and gain; repetition units are soft-combined.
  void slice_symbol(std::span<const dsp::cf32> z,
                    std::ptrdiff_t offset_units, dsp::cf32 gain,
                    std::vector<std::uint8_t>& bits,
                    std::vector<float>& soft) const;

  /// Per-symbol gain re-estimate from units outside the (shifted)
  /// modulation window; falls back to `fallback` if too little energy.
  dsp::cf32 estimate_symbol_gain(std::span<const dsp::cf32> z,
                                 std::ptrdiff_t offset_units,
                                 dsp::cf32 fallback) const;

  /// Least-squares FIR estimate of the backscatter channel from a symbol
  /// whose full unit pattern is known (the preamble at offset d).
  std::vector<dsp::cf64> estimate_channel_fir(
      std::span<const dsp::cf32> rx, std::span<const dsp::cf32> ambient,
      std::size_t subframe_offset_samples, std::size_t l,
      std::ptrdiff_t offset_units) const;

  /// Divide the channel out of one useful window in the frequency domain.
  dsp::cvec equalize_window(std::span<const dsp::cf32> rx_window,
                            std::span<const dsp::cf64> h) const;

  lte::CellConfig cell_;
  tag::TagController controller_;
  OffsetSearch search_;
  Fec fec_;
  /// Shared process-wide plan (dsp::cached_fft_plan): multi-cell
  /// receivers on the same numerology reuse one set of twiddles behind
  /// the cache's shared_mutex read path instead of building one each.
  const dsp::FftPlan* plan_;
};

}  // namespace lscatter::core
