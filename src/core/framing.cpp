#include "core/framing.hpp"

#include "core/contracts.hpp"
#include "dsp/convolutional.hpp"
#include "dsp/crc.hpp"
#include "lte/sequences.hpp"

namespace lscatter::core {

PacketCodec::PacketCodec(std::size_t coded_bits, Fec fec)
    : coded_bits_(coded_bits), fec_(fec) {
  LSCATTER_EXPECT(coded_bits > 32,
                  "a packet must carry more than the 32-bit CRC");
  switch (fec_) {
    case Fec::kNone:
      payload_bits_ = coded_bits_ - 32;
      break;
    case Fec::kConvolutional: {
      const std::size_t info = dsp::conv_info_capacity(coded_bits_);
      LSCATTER_ASSERT(info > 32,
                      "FEC info capacity must still exceed the CRC");
      payload_bits_ = info - 32;
      break;
    }
  }
  whitening_ = lte::gold_sequence(0x2A2A2A2Au & 0x7FFFFFFFu, coded_bits);
}

std::vector<std::uint8_t> PacketCodec::encode(
    std::span<const std::uint8_t> payload) const {
  LSCATTER_EXPECT(payload.size() == payload_bits_,
                  "payload length must match the codec layout");
  auto block = dsp::attach_crc32(payload);
  std::vector<std::uint8_t> coded;
  switch (fec_) {
    case Fec::kNone:
      coded = std::move(block);
      break;
    case Fec::kConvolutional:
      coded = dsp::conv_encode(block);
      break;
  }
  // Pad to the on-air size (FEC sizes rarely land exactly on capacity).
  LSCATTER_ENSURE(coded.size() <= coded_bits_,
                  "encoder output cannot exceed the on-air size");
  while (coded.size() < coded_bits_) {
    coded.push_back(static_cast<std::uint8_t>(coded.size() % 2));
  }
  for (std::size_t i = 0; i < coded.size(); ++i) coded[i] ^= whitening_[i];
  return coded;
}

std::vector<std::uint8_t> PacketCodec::dewhiten(
    std::span<const std::uint8_t> coded) const {
  LSCATTER_EXPECT(coded.size() == coded_bits_,
                  "coded length must match the on-air size");
  std::vector<std::uint8_t> out(coded.begin(), coded.end());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= whitening_[i];
  return out;
}

std::optional<std::vector<std::uint8_t>> PacketCodec::finish_decode(
    std::vector<std::uint8_t> crc_block) const {
  if (!dsp::check_crc32(crc_block)) return std::nullopt;
  crc_block.resize(payload_bits_);
  return crc_block;
}

std::optional<std::vector<std::uint8_t>> PacketCodec::decode(
    std::span<const std::uint8_t> coded) const {
  auto plain = dewhiten(coded);
  switch (fec_) {
    case Fec::kNone:
      plain.resize(payload_bits_ + 32);
      return finish_decode(std::move(plain));
    case Fec::kConvolutional: {
      const std::size_t n_info = payload_bits_ + 32;
      plain.resize(dsp::conv_encoded_bits(n_info));
      return finish_decode(dsp::conv_decode_hard(plain, n_info));
    }
  }
  return std::nullopt;
}

bool PacketCodec::decode_hard_into(std::span<const std::uint8_t> coded,
                                   std::vector<std::uint8_t>& scratch,
                                   std::vector<std::uint8_t>& payload_out)
    const {
  LSCATTER_EXPECT(coded.size() == coded_bits_,
                  "coded length must match the on-air size");
  if (fec_ != Fec::kNone) {
    auto decoded = decode(coded);
    if (!decoded) return false;
    payload_out.assign(decoded->begin(), decoded->end());
    return true;
  }
  const std::size_t n_info = payload_bits_ + 32;
  scratch.resize(n_info);  // grow-only across calls: capacity is retained
  for (std::size_t i = 0; i < n_info; ++i) {
    scratch[i] = static_cast<std::uint8_t>(coded[i] ^ whitening_[i]);
  }
  if (!dsp::check_crc32(scratch)) return false;
  payload_out.assign(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(
                                           payload_bits_));
  return true;
}

std::vector<std::uint8_t> PacketCodec::decode_soft_bits(
    std::span<const float> soft) const {
  LSCATTER_EXPECT(soft.size() == coded_bits_,
                  "soft-bit length must match the on-air size");
  // De-whitening in the soft domain: a whitening '1' flips the sign.
  std::vector<float> llr(soft.begin(), soft.end());
  for (std::size_t i = 0; i < llr.size(); ++i) {
    if (whitening_[i]) llr[i] = -llr[i];
  }
  const std::size_t n_info = payload_bits_ + 32;
  switch (fec_) {
    case Fec::kNone: {
      std::vector<std::uint8_t> bits(n_info);
      for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] = llr[i] >= 0.0f ? 1 : 0;
      }
      return bits;
    }
    case Fec::kConvolutional: {
      llr.resize(dsp::conv_encoded_bits(n_info));
      return dsp::conv_decode_soft(llr, n_info);
    }
  }
  return {};
}

std::optional<std::vector<std::uint8_t>> PacketCodec::decode_soft(
    std::span<const float> soft) const {
  return finish_decode(decode_soft_bits(soft));
}

std::vector<std::vector<std::uint8_t>> split_bits(
    std::span<const std::uint8_t> bits, std::size_t chunk) {
  LSCATTER_EXPECT(chunk > 0, "chunk size must be positive");
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t pos = 0; pos < bits.size(); pos += chunk) {
    const std::size_t n = std::min(chunk, bits.size() - pos);
    std::vector<std::uint8_t> c(bits.begin() + pos, bits.begin() + pos + n);
    while (c.size() < chunk) {
      c.push_back(static_cast<std::uint8_t>(c.size() % 2));
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<std::uint8_t> join_bits(
    const std::vector<std::vector<std::uint8_t>>& chunks,
    std::size_t total) {
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (const auto& c : chunks) {
    for (const std::uint8_t b : c) {
      if (out.size() >= total) return out;
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace lscatter::core
