#pragma once
// Link-budget composition for the backscatter geometry:
//
//   eNodeB --PL1--> tag --(reflect: conversion + reflection loss)--> UE
//      \________________PL2____________________________/
//       \_____________direct PL_d_____________________/
//
// Converts dBm budgets into the linear amplitude scale factors the
// sample-domain simulation applies. Signal samples are generated at unit
// mean power; multiplying by `amplitude(rx_dbm)` expresses them in
// sqrt-milliwatt units so they can be summed with noise at the physical
// floor.
//
// All quantities carry their unit in the type (dsp/units.hpp): absolute
// powers are Dbm, gains/losses are Db, bandwidths are Hz. Mixing them
// wrongly (adding two Dbm, passing a loss where a bandwidth goes) is a
// compile error, not a BER degradation.

#include "channel/pathloss.hpp"
#include "dsp/db.hpp"
#include "dsp/units.hpp"

namespace lscatter::channel {

/// Tag reflection characteristics (paper §3.2.2 / HitchHike [53]).
struct TagRf {
  /// First-harmonic conversion of a square-wave mixer: amplitude 2/pi
  /// (-3.92 dB in power).
  dsp::Db conversion_loss_db{3.92};

  /// Antenna reflection efficiency |Gamma| of the RF switch network.
  dsp::Db reflection_loss_db{6.0};

  /// Residual power leaking into the unwanted sideband, relative to the
  /// wanted one, after the HitchHike-style sideband cancellation.
  dsp::Db image_rejection_db{20.0};

  dsp::Db total_loss_db() const {
    return conversion_loss_db + reflection_loss_db;
  }
};

struct LinkBudget {
  dsp::Dbm tx_power_dbm{10.0};
  dsp::Db tx_antenna_gain_db{0.0};
  dsp::Db rx_antenna_gain_db{0.0};
  dsp::Db tag_antenna_gain_db{0.0};
  dsp::Db noise_figure_db{7.0};
  TagRf tag;

  /// Received power of the direct eNodeB->UE signal.
  dsp::Dbm direct_rx_dbm(dsp::Db pl_direct) const;

  /// Received power of the backscatter (eNB->tag->UE) signal.
  dsp::Dbm backscatter_rx_dbm(dsp::Db pl1, dsp::Db pl2) const;

  /// Backscatter SNR over `bandwidth`. Precondition: bandwidth > 0.
  dsp::Db backscatter_snr_db(dsp::Db pl1, dsp::Db pl2,
                             dsp::Hz bandwidth) const;
};

/// Linear amplitude factor turning a unit-power stream into `power`.
inline double amplitude(dsp::Dbm power) {
  return std::sqrt(power.milliwatts());
}

}  // namespace lscatter::channel
