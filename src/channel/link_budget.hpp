#pragma once
// Link-budget composition for the backscatter geometry:
//
//   eNodeB --PL1--> tag --(reflect: conversion + reflection loss)--> UE
//      \________________PL2____________________________/
//       \_____________direct PL_d_____________________/
//
// Converts dBm budgets into the linear amplitude scale factors the
// sample-domain simulation applies. Signal samples are generated at unit
// mean power; multiplying by `amplitude(rx_dbm)` expresses them in
// sqrt-milliwatt units so they can be summed with noise at the physical
// floor.

#include "channel/pathloss.hpp"
#include "dsp/db.hpp"

namespace lscatter::channel {

/// Tag reflection characteristics (paper §3.2.2 / HitchHike [53]).
struct TagRf {
  /// First-harmonic conversion of a square-wave mixer: amplitude 2/pi
  /// (-3.92 dB in power).
  double conversion_loss_db = 3.92;

  /// Antenna reflection efficiency |Gamma| of the RF switch network.
  double reflection_loss_db = 6.0;

  /// Residual power leaking into the unwanted sideband, relative to the
  /// wanted one, after the HitchHike-style sideband cancellation [dB].
  double image_rejection_db = 20.0;

  double total_loss_db() const {
    return conversion_loss_db + reflection_loss_db;
  }
};

struct LinkBudget {
  double tx_power_dbm = 10.0;
  double tx_antenna_gain_db = 0.0;
  double rx_antenna_gain_db = 0.0;
  double tag_antenna_gain_db = 0.0;
  double noise_figure_db = 7.0;
  TagRf tag;

  /// Received power of the direct eNodeB->UE signal [dBm].
  double direct_rx_dbm(double pl_direct_db) const;

  /// Received power of the backscatter (eNB->tag->UE) signal [dBm].
  double backscatter_rx_dbm(double pl1_db, double pl2_db) const;

  /// Backscatter SNR [dB] over `bandwidth_hz`.
  double backscatter_snr_db(double pl1_db, double pl2_db,
                            double bandwidth_hz) const;
};

/// Linear amplitude factor turning a unit-power stream into `power_dbm`.
inline double amplitude(double power_dbm) {
  return std::sqrt(dsp::dbm_to_mw(power_dbm));
}

}  // namespace lscatter::channel
