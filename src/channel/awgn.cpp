#include "channel/awgn.hpp"

#include "dsp/db.hpp"
#include "obs/obs.hpp"

namespace lscatter::channel {

void add_awgn(std::span<dsp::cf32> x, double noise_power, dsp::Rng& rng) {
  if (noise_power <= 0.0) return;
  LSCATTER_OBS_TIMER("channel.awgn.add");
  LSCATTER_OBS_COUNTER_ADD("channel.awgn.samples", x.size());
  for (auto& v : x) v += rng.complex_normal(noise_power);
}

void add_awgn_snr(std::span<dsp::cf32> x, dsp::Db snr, dsp::Rng& rng) {
  const double sig = dsp::mean_power(x);
  add_awgn(x, sig / snr.linear(), rng);
}

}  // namespace lscatter::channel
