#include "channel/awgn.hpp"

#include "dsp/db.hpp"

namespace lscatter::channel {

void add_awgn(std::span<dsp::cf32> x, double noise_power, dsp::Rng& rng) {
  if (noise_power <= 0.0) return;
  for (auto& v : x) v += rng.complex_normal(noise_power);
}

void add_awgn_snr(std::span<dsp::cf32> x, double snr_db, dsp::Rng& rng) {
  const double sig = dsp::mean_power(x);
  add_awgn(x, sig / dsp::db_to_lin(snr_db), rng);
}

}  // namespace lscatter::channel
