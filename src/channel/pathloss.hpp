#pragma once
// Large-scale propagation: log-distance path loss anchored at the 1 m
// free-space loss, plus log-normal shadowing. Exponents / sigmas are per
// deployment site and calibrated so the paper's distance figures hold in
// shape (see core/scenario.*).
//
// Losses are dsp::Db, frequencies dsp::Hz (see dsp/units.hpp); distances
// stay raw doubles in meters.

#include "dsp/rng.hpp"
#include "dsp/units.hpp"

namespace lscatter::channel {

struct PathLossModel {
  /// Path-loss exponent gamma (2 = free space; indoor corridors at UHF can
  /// waveguide below 2; cluttered NLoS above 3).
  double exponent = 2.0;

  /// Log-normal shadowing standard deviation; 0 disables.
  dsp::Db shadowing_sigma_db{0.0};

  /// Extra fixed loss (walls, body, polarization mismatch).
  dsp::Db extra_loss_db{0.0};

  /// Two-slope (two-ray ground reflection) option: beyond `breakpoint_m`
  /// the exponent steepens to `beyond_exponent` (0 disables). Outdoors at
  /// UHF with ~1.5 m antennas the breakpoint 4*h_tx*h_rx/lambda lands
  /// around 20-30 m.
  double breakpoint_m = 0.0;
  double beyond_exponent = 4.0;

  /// Free-space path loss at distance d [m]. Preconditions: d > 0, f > 0.
  static dsp::Db free_space_db(double distance_m, dsp::Hz freq);

  /// Median path loss (no shadowing) at distance d [m].
  dsp::Db median_db(double distance_m, dsp::Hz freq) const;

  /// One shadowing realization added to the median.
  dsp::Db sample_db(double distance_m, dsp::Hz freq, dsp::Rng& rng) const;
};

/// Thermal noise power over `bandwidth` with the given receiver noise
/// figure. Precondition: bandwidth > 0.
dsp::Dbm noise_floor_dbm(dsp::Hz bandwidth, dsp::Db noise_figure);

}  // namespace lscatter::channel
