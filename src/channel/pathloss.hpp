#pragma once
// Large-scale propagation: log-distance path loss anchored at the 1 m
// free-space loss, plus log-normal shadowing. Exponents / sigmas are per
// deployment site and calibrated so the paper's distance figures hold in
// shape (see core/scenario.*).

#include "dsp/rng.hpp"

namespace lscatter::channel {

struct PathLossModel {
  /// Path-loss exponent gamma (2 = free space; indoor corridors at UHF can
  /// waveguide below 2; cluttered NLoS above 3).
  double exponent = 2.0;

  /// Log-normal shadowing standard deviation [dB]; 0 disables.
  double shadowing_sigma_db = 0.0;

  /// Extra fixed loss [dB] (walls, body, polarization mismatch).
  double extra_loss_db = 0.0;

  /// Two-slope (two-ray ground reflection) option: beyond `breakpoint_m`
  /// the exponent steepens to `beyond_exponent` (0 disables). Outdoors at
  /// UHF with ~1.5 m antennas the breakpoint 4*h_tx*h_rx/lambda lands
  /// around 20-30 m.
  double breakpoint_m = 0.0;
  double beyond_exponent = 4.0;

  /// Free-space path loss at distance d [m], frequency f [Hz].
  static double free_space_db(double distance_m, double freq_hz);

  /// Median path loss (no shadowing) at distance d [m].
  double median_db(double distance_m, double freq_hz) const;

  /// One shadowing realization added to the median.
  double sample_db(double distance_m, double freq_hz, dsp::Rng& rng) const;
};

/// Thermal noise power over `bandwidth_hz` with the given receiver noise
/// figure [dBm].
double noise_floor_dbm(double bandwidth_hz, double noise_figure_db);

}  // namespace lscatter::channel
