#include "channel/link_budget.hpp"

#include "core/contracts.hpp"

namespace lscatter::channel {

dsp::Dbm LinkBudget::direct_rx_dbm(dsp::Db pl_direct) const {
  LSCATTER_EXPECT(pl_direct.value() >= 0.0, "path loss cannot be a gain");
  return tx_power_dbm + tx_antenna_gain_db + rx_antenna_gain_db - pl_direct;
}

dsp::Dbm LinkBudget::backscatter_rx_dbm(dsp::Db pl1, dsp::Db pl2) const {
  LSCATTER_EXPECT(pl1.value() >= 0.0 && pl2.value() >= 0.0,
                  "path loss cannot be a gain");
  return tx_power_dbm + tx_antenna_gain_db + 2.0 * tag_antenna_gain_db +
         rx_antenna_gain_db - pl1 - tag.total_loss_db() - pl2;
}

dsp::Db LinkBudget::backscatter_snr_db(dsp::Db pl1, dsp::Db pl2,
                                       dsp::Hz bandwidth) const {
  LSCATTER_EXPECT(bandwidth.value() > 0.0,
                  "SNR needs a positive noise bandwidth");
  return backscatter_rx_dbm(pl1, pl2) -
         noise_floor_dbm(bandwidth, noise_figure_db);
}

}  // namespace lscatter::channel
