#include "channel/link_budget.hpp"

namespace lscatter::channel {

double LinkBudget::direct_rx_dbm(double pl_direct_db) const {
  return tx_power_dbm + tx_antenna_gain_db + rx_antenna_gain_db -
         pl_direct_db;
}

double LinkBudget::backscatter_rx_dbm(double pl1_db, double pl2_db) const {
  return tx_power_dbm + tx_antenna_gain_db + 2.0 * tag_antenna_gain_db +
         rx_antenna_gain_db - pl1_db - tag.total_loss_db() - pl2_db;
}

double LinkBudget::backscatter_snr_db(double pl1_db, double pl2_db,
                                      double bandwidth_hz) const {
  return backscatter_rx_dbm(pl1_db, pl2_db) -
         noise_floor_dbm(bandwidth_hz, noise_figure_db);
}

}  // namespace lscatter::channel
