#include "channel/fading.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "dsp/db.hpp"
#include "obs/obs.hpp"

namespace lscatter::channel {

using dsp::cf32;
using dsp::cvec;

FadingProfile FadingProfile::flat() {
  FadingProfile p;
  p.n_taps = 1;
  p.rms_delay_spread_s = dsp::Seconds{0.0};
  p.los = true;
  p.rician_k_db = dsp::Db{60.0};  // essentially deterministic
  return p;
}

TdlChannel::TdlChannel(const FadingProfile& profile, dsp::Hz sample_rate,
                       dsp::Rng& rng) {
  LSCATTER_EXPECT(profile.n_taps >= 1, "a TDL channel needs >= 1 tap");
  LSCATTER_EXPECT(sample_rate.value() > 0.0,
                  "tap delays need a positive sample rate");
  const double ts = period(sample_rate).value();

  // Exponential PDP sampled at multiples of ~ half the delay spread; tap 0
  // at delay 0.
  const double tau = std::max(profile.rms_delay_spread_s.value(), 0.0);
  delays_.resize(profile.n_taps);
  std::vector<double> powers(profile.n_taps);
  double total = 0.0;
  for (std::size_t i = 0; i < profile.n_taps; ++i) {
    const double delay_s =
        (profile.n_taps == 1 || tau == 0.0)
            ? 0.0
            : static_cast<double>(i) * (2.0 * tau /
                                        static_cast<double>(profile.n_taps));
    delays_[i] = static_cast<std::size_t>(std::llround(delay_s / ts));
    powers[i] = (tau == 0.0 && i > 0)
                    ? 0.0
                    : std::exp(-delay_s / std::max(tau, 1e-12));
    if (profile.n_taps == 1) powers[i] = 1.0;
    total += powers[i];
  }
  for (auto& p : powers) p /= total;

  gains_.resize(profile.n_taps);
  for (std::size_t i = 0; i < profile.n_taps; ++i) {
    if (i == 0 && profile.los) {
      // Rician: deterministic LoS component + diffuse part.
      const double k = profile.rician_k_db.linear();
      const double los_amp = std::sqrt(powers[0] * k / (k + 1.0));
      const cf32 diffuse = rng.complex_normal(powers[0] / (k + 1.0));
      gains_[i] = cf32{static_cast<float>(los_amp), 0.0f} + diffuse;
    } else {
      gains_[i] = rng.complex_normal(powers[i]);
    }
  }
}

cvec TdlChannel::apply(std::span<const cf32> x) const {
  LSCATTER_OBS_TIMER("channel.fading.tdl_apply");
  LSCATTER_OBS_COUNTER_ADD("channel.fading.samples", x.size());
  cvec out(x.size(), cf32{});
  for (std::size_t t = 0; t < gains_.size(); ++t) {
    const std::size_t d = delays_[t];
    const cf32 g = gains_[t];
    if (g == cf32{}) continue;
    for (std::size_t n = d; n < x.size(); ++n) {
      out[n] += g * x[n - d];
    }
  }
  return out;
}

cvec TdlChannel::frequency_response(std::size_t n_bins) const {
  cvec h(n_bins, cf32{});
  for (std::size_t k = 0; k < n_bins; ++k) {
    cf32 acc{};
    for (std::size_t t = 0; t < gains_.size(); ++t) {
      const double ang = -dsp::kTwoPi * static_cast<double>(k) *
                         static_cast<double>(delays_[t]) /
                         static_cast<double>(n_bins);
      acc += gains_[t] * cf32{static_cast<float>(std::cos(ang)),
                              static_cast<float>(std::sin(ang))};
    }
    h[k] = acc;
  }
  return h;
}

double TdlChannel::power_gain() const {
  double p = 0.0;
  for (const cf32 g : gains_) p += std::norm(g);
  return p;
}

}  // namespace lscatter::channel
