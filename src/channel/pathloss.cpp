#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "dsp/db.hpp"
#include "dsp/types.hpp"
#include "obs/obs.hpp"

namespace lscatter::channel {

dsp::Db PathLossModel::free_space_db(double distance_m, dsp::Hz freq) {
  LSCATTER_EXPECT(distance_m > 0.0, "free-space loss needs d > 0");
  LSCATTER_EXPECT(freq.value() > 0.0, "free-space loss needs f > 0");
  const double lambda = dsp::kSpeedOfLight / freq.value();
  return dsp::Db{20.0 * std::log10(4.0 * dsp::kPi * distance_m / lambda)};
}

dsp::Db PathLossModel::median_db(double distance_m, dsp::Hz freq) const {
  LSCATTER_EXPECT(distance_m > 0.0, "path loss needs d > 0");
  // Anchor at 1 m free space, extend with the site exponent; optionally
  // steepen beyond the two-ray breakpoint.
  const double d = std::max(distance_m, 0.1);
  const dsp::Db pl0 = free_space_db(1.0, freq);
  dsp::Db pl = pl0 + extra_loss_db;
  if (d < 1.0) {
    // Below 1 m fall back to free-space scaling so the model stays
    // monotone instead of clamping to pl0.
    return pl + dsp::Db{20.0 * std::log10(d)};
  }
  if (breakpoint_m > 1.0 && d > breakpoint_m) {
    pl += dsp::Db{10.0 * exponent * std::log10(breakpoint_m)};
    pl += dsp::Db{10.0 * beyond_exponent * std::log10(d / breakpoint_m)};
  } else {
    pl += dsp::Db{10.0 * exponent * std::log10(d)};
  }
  return pl;
}

dsp::Db PathLossModel::sample_db(double distance_m, dsp::Hz freq,
                                 dsp::Rng& rng) const {
  dsp::Db pl = median_db(distance_m, freq);
  if (shadowing_sigma_db.value() > 0.0) {
    pl += dsp::Db{rng.normal(0.0, shadowing_sigma_db.value())};
  }
  LSCATTER_OBS_COUNTER_INC("channel.pathloss.samples");
  LSCATTER_OBS_HISTOGRAM_RECORD("channel.pathloss.loss_db", pl.value());
  return pl;
}

dsp::Dbm noise_floor_dbm(dsp::Hz bandwidth, dsp::Db noise_figure) {
  LSCATTER_EXPECT(bandwidth.value() > 0.0,
                  "noise floor needs a positive bandwidth");
  return dsp::Dbm{dsp::kThermalNoiseDbmHz +
                  10.0 * std::log10(bandwidth.value())} +
         noise_figure;
}

}  // namespace lscatter::channel
