#include "channel/pathloss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/db.hpp"
#include "dsp/types.hpp"
#include "obs/obs.hpp"

namespace lscatter::channel {

double PathLossModel::free_space_db(double distance_m, double freq_hz) {
  assert(distance_m > 0.0 && freq_hz > 0.0);
  const double lambda = dsp::kSpeedOfLight / freq_hz;
  return 20.0 * std::log10(4.0 * dsp::kPi * distance_m / lambda);
}

double PathLossModel::median_db(double distance_m, double freq_hz) const {
  // Anchor at 1 m free space, extend with the site exponent; optionally
  // steepen beyond the two-ray breakpoint.
  const double d = std::max(distance_m, 0.1);
  const double pl0 = free_space_db(1.0, freq_hz);
  double pl = pl0 + extra_loss_db;
  if (d < 1.0) {
    // Below 1 m fall back to free-space scaling so the model stays
    // monotone instead of clamping to pl0.
    return pl + 20.0 * std::log10(d);
  }
  if (breakpoint_m > 1.0 && d > breakpoint_m) {
    pl += 10.0 * exponent * std::log10(breakpoint_m);
    pl += 10.0 * beyond_exponent * std::log10(d / breakpoint_m);
  } else {
    pl += 10.0 * exponent * std::log10(d);
  }
  return pl;
}

double PathLossModel::sample_db(double distance_m, double freq_hz,
                                dsp::Rng& rng) const {
  double pl = median_db(distance_m, freq_hz);
  if (shadowing_sigma_db > 0.0) {
    pl += rng.normal(0.0, shadowing_sigma_db);
  }
  LSCATTER_OBS_COUNTER_INC("channel.pathloss.samples");
  LSCATTER_OBS_HISTOGRAM_RECORD("channel.pathloss.loss_db", pl);
  return pl;
}

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  return dsp::kThermalNoiseDbmHz + 10.0 * std::log10(bandwidth_hz) +
         noise_figure_db;
}

}  // namespace lscatter::channel
