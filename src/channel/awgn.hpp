#pragma once
// Additive white Gaussian noise.

#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "dsp/types.hpp"

namespace lscatter::channel {

/// Add complex AWGN with total power `noise_power` (linear, same units as
/// the signal's power) to x in place.
void add_awgn(std::span<dsp::cf32> x, double noise_power, dsp::Rng& rng);

/// Add AWGN at a given SNR relative to the *measured* mean power of x.
void add_awgn_snr(std::span<dsp::cf32> x, dsp::Db snr, dsp::Rng& rng);

}  // namespace lscatter::channel
