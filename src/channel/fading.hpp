#pragma once
// Small-scale fading: a tapped-delay-line channel with an exponential power
// delay profile. Taps are Rayleigh (NLoS) or Rician (LoS, K-factor on the
// first tap). A channel instance is one static realization ("drop"); the
// evaluation harness redraws per measurement point, which is how the paper
// collects its per-hour / per-distance distributions.

#include <cstddef>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "dsp/units.hpp"

namespace lscatter::channel {

struct FadingProfile {
  /// RMS delay spread. Typical: 50 ns home, 150 ns mall, 200 ns
  /// outdoor street.
  dsp::Seconds rms_delay_spread_s{50e-9};

  /// Number of taps in the delay line.
  std::size_t n_taps = 8;

  /// Rician K-factor applied to the first tap; -inf (use `los=false`)
  /// for pure Rayleigh.
  dsp::Db rician_k_db{10.0};
  bool los = true;

  /// A single-tap unity channel (for calibration / unit tests).
  static FadingProfile flat();
};

class TdlChannel {
 public:
  /// Draw one realization at the given sample rate. Average power gain is
  /// normalized to 1 so path loss stays in PathLossModel.
  TdlChannel(const FadingProfile& profile, dsp::Hz sample_rate,
             dsp::Rng& rng);

  /// Convolve the channel with `x` ("same"-length output, no leading
  /// transient trimming: tap 0 has zero delay).
  dsp::cvec apply(std::span<const dsp::cf32> x) const;

  /// Frequency response at `n_bins` uniformly spaced baseband bins.
  dsp::cvec frequency_response(std::size_t n_bins) const;

  const std::vector<std::size_t>& tap_delays() const { return delays_; }
  const dsp::cvec& tap_gains() const { return gains_; }

  /// |h|^2 summed — should be ~1 in expectation.
  double power_gain() const;

 private:
  std::vector<std::size_t> delays_;  // in samples
  dsp::cvec gains_;
};

}  // namespace lscatter::channel
