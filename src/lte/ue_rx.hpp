#pragma once
// UE downlink receiver: OFDM demodulation, CRS-based least-squares channel
// estimation with frequency interpolation, zero-forcing equalization, QAM
// demapping, and transport-block CRC check.
//
// The receiver is an *evaluation* receiver: it is handed the transmitted
// SubframeTx so it knows the RE layout (in real LTE the PDCCH carries
// that) and so it can count bit errors against the true payload.

#include "dsp/types.hpp"
#include "lte/cell_config.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"

namespace lscatter::lte {

struct SubframeRxResult {
  bool crc_ok = false;          // every code block passed
  std::size_t blocks_total = 0;
  std::size_t blocks_ok = 0;
  std::size_t bits_delivered = 0;  // info bits in CRC-clean blocks
  std::size_t bit_errors = 0;
  std::size_t n_bits = 0;
  double evm_rms = 0.0;

  double ber() const {
    return n_bits == 0 ? 0.0
                       : static_cast<double>(bit_errors) /
                             static_cast<double>(n_bits);
  }
};

/// Per-subcarrier channel estimate for one subframe.
struct ChannelEstimate {
  dsp::cvec h;  // size = n_subcarriers
};

class UeReceiver {
 public:
  explicit UeReceiver(const CellConfig& cfg);

  /// FFT the whole subframe into a grid (samples start at the subframe
  /// boundary).
  ResourceGrid demodulate_grid(std::span<const dsp::cf32> samples) const;

  /// Least-squares CRS channel estimate, linearly interpolated across
  /// frequency, averaged over the subframe's four CRS symbols.
  ChannelEstimate estimate_channel(const ResourceGrid& rx_grid,
                                   std::size_t subframe_index) const;

  /// Full receive chain for one subframe.
  SubframeRxResult receive_subframe(std::span<const dsp::cf32> samples,
                                    const SubframeTx& truth,
                                    Modulation modulation) const;

  const CellConfig& cell() const { return cfg_; }

 private:
  CellConfig cfg_;
  OfdmDemodulator demod_;
};

}  // namespace lscatter::lte
