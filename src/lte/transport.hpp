#pragma once
// Transport-block handling: LTE-style code-block segmentation (TS 36.212
// §5.1.2 in spirit): a subframe's data bits are split into blocks of at
// most kMaxCodeBlockBits, each protected by its own CRC-24, so one bit
// error costs one block rather than the whole subframe. Channel coding
// itself (turbo) is out of scope; see DESIGN.md §6.

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace lscatter::lte {

inline constexpr std::size_t kMaxCodeBlockBits = 6144;
inline constexpr std::size_t kBlockCrcBits = 24;

struct CodeBlock {
  std::size_t info_bits = 0;  // payload bits in this block (CRC excluded)
};

/// Split `coded_capacity` on-air bits into code blocks; every block is
/// info + 24 CRC, blocks as even as possible, total exactly
/// coded_capacity. Requires coded_capacity > kBlockCrcBits.
std::vector<CodeBlock> segment(std::size_t coded_capacity);

/// Total info bits across the layout.
std::size_t info_bits(const std::vector<CodeBlock>& layout);

/// Encode: info bits (info_bits(layout) long) -> coded bits (capacity
/// long) with per-block CRC-24 attached.
std::vector<std::uint8_t> encode_blocks(
    const std::vector<CodeBlock>& layout,
    std::span<const std::uint8_t> info);

struct BlockDecodeResult {
  std::vector<std::uint8_t> info;   // concatenated info bits (best effort)
  std::size_t blocks_total = 0;
  std::size_t blocks_ok = 0;
  std::size_t info_bits_ok = 0;     // info bits inside CRC-clean blocks

  bool all_ok() const { return blocks_ok == blocks_total; }
};

/// Decode: coded bits -> per-block CRC check + info extraction.
BlockDecodeResult decode_blocks(const std::vector<CodeBlock>& layout,
                                std::span<const std::uint8_t> coded);

}  // namespace lscatter::lte
