#include "lte/pbch.hpp"

#include <cassert>

#include "dsp/crc.hpp"
#include "lte/qam.hpp"
#include "lte/signal_map.hpp"

namespace lscatter::lte {

using dsp::cf32;

std::array<std::uint8_t, 24> mib_to_bits(const Mib& mib) {
  std::array<std::uint8_t, 24> bits{};
  const auto bw = static_cast<std::uint8_t>(mib.bandwidth);
  for (int i = 0; i < 3; ++i) bits[i] = (bw >> (2 - i)) & 1u;
  for (int i = 0; i < 10; ++i) bits[3 + i] = (mib.sfn >> (9 - i)) & 1u;
  return bits;
}

std::optional<Mib> bits_to_mib(std::span<const std::uint8_t> bits) {
  assert(bits.size() >= 24);
  std::uint8_t bw = 0;
  for (int i = 0; i < 3; ++i) bw = static_cast<std::uint8_t>((bw << 1) | bits[i]);
  if (bw > 5) return std::nullopt;
  std::uint16_t sfn = 0;
  for (int i = 0; i < 10; ++i) {
    sfn = static_cast<std::uint16_t>((sfn << 1) | bits[3 + i]);
  }
  Mib mib;
  mib.bandwidth = static_cast<Bandwidth>(bw);
  mib.sfn = sfn;
  return mib;
}

std::vector<std::size_t> pbch_subcarriers(const CellConfig& cfg,
                                          std::size_t l) {
  // Central 6 RB = 72 subcarriers, minus CRS positions in CRS-bearing
  // symbols (of the kPbchSymbolIndices, only l == 7 carries CRS).
  const std::size_t first = cfg.n_subcarriers() / 2 - 36;
  std::vector<std::size_t> out;
  out.reserve(72);
  const bool has_crs = l == 7;
  const std::size_t v_shift = cfg.cell_id() % 6;
  for (std::size_t i = 0; i < 72; ++i) {
    const std::size_t k = first + i;
    if (has_crs && (k % 6) == (v_shift % 6)) continue;
    out.push_back(k);
  }
  return out;
}

namespace {

constexpr std::size_t kCodewordBits = 24 + 16;  // MIB + CRC16

std::vector<std::uint8_t> pbch_codeword(const Mib& mib) {
  const auto mib_bits = mib_to_bits(mib);
  return dsp::attach_crc16(mib_bits);
}

}  // namespace

void map_pbch(const CellConfig& cfg, const Mib& mib, ResourceGrid& grid) {
  const auto codeword = pbch_codeword(mib);
  std::size_t bit_cursor = 0;
  for (const std::size_t l : kPbchSymbolIndices) {
    for (const std::size_t k : pbch_subcarriers(cfg, l)) {
      std::uint8_t pair[2] = {
          codeword[bit_cursor % kCodewordBits],
          codeword[(bit_cursor + 1) % kCodewordBits],
      };
      bit_cursor += 2;
      grid.at(l, k) = qam_modulate(std::span<const std::uint8_t>(pair, 2),
                                   Modulation::kQpsk)[0];
      grid.type_at(l, k) = ReType::kPbch;
    }
  }
}

std::optional<Mib> decode_pbch(const CellConfig& cfg,
                               const ResourceGrid& equalized_grid) {
  // Soft majority combining of the repeated codeword: accumulate the
  // I (even bits) and Q (odd bits) of each RE into its codeword slot.
  std::array<double, kCodewordBits> acc{};
  std::size_t bit_cursor = 0;
  for (const std::size_t l : kPbchSymbolIndices) {
    for (const std::size_t k : pbch_subcarriers(cfg, l)) {
      const cf32 v = equalized_grid.at(l, k);
      acc[bit_cursor % kCodewordBits] += v.real();
      acc[(bit_cursor + 1) % kCodewordBits] += v.imag();
      bit_cursor += 2;
    }
  }
  std::vector<std::uint8_t> bits(kCodewordBits);
  for (std::size_t i = 0; i < kCodewordBits; ++i) {
    bits[i] = acc[i] < 0.0 ? 1 : 0;  // QPSK: positive axis = bit 0
  }
  if (!dsp::check_crc16(bits)) return std::nullopt;
  return bits_to_mib(bits);
}

}  // namespace lscatter::lte
