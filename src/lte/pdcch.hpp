#pragma once
// Control channel (PDCCH-lite). Real LTE announces each subframe's
// scheduling on the PDCCH; without it a UE cannot tell data REs from
// unallocated ones. This simplified DCI carries exactly what our
// scheduler randomizes — the per-symbol center-RB activity mask and the
// MCS — QPSK-mapped with repetition + CRC-16 onto the first OFDM symbol's
// non-CRS REs (the spec's control region).
//
// With this, the UE (and the ambient reconstructor) can derive the
// complete RE-type map of a subframe from decoded broadcast information
// alone: PSS/SSS positions are fixed, CRS comes from the cell identity,
// PBCH from the frame structure, and data/unused from the DCI.

#include <cstdint>
#include <optional>

#include "lte/cell_config.hpp"
#include "lte/qam.hpp"
#include "lte/resource_grid.hpp"

namespace lscatter::lte {

struct Dci {
  /// Bit l set => the central 6 RBs carry PDSCH in subframe symbol l.
  std::uint16_t center_active_mask = 0x3FFF;
  Modulation mcs = Modulation::kQam16;

  bool operator==(const Dci&) const = default;
  bool center_active(std::size_t l) const {
    return (center_active_mask >> l) & 1u;
  }
};

/// The control-region symbol (first symbol of the subframe).
inline constexpr std::size_t kPdcchSymbolIndex = 0;

/// 16 DCI payload bits: 14 mask + 2 MCS.
std::array<std::uint8_t, 16> dci_to_bits(const Dci& dci);
std::optional<Dci> bits_to_dci(std::span<const std::uint8_t> bits);

/// Map the DCI into the grid's control region (tags REs as kPdcch).
void map_pdcch(const CellConfig& cfg, const Dci& dci, ResourceGrid& grid);

/// Blind decode from an equalized grid; nullopt on CRC failure.
std::optional<Dci> decode_pdcch(const CellConfig& cfg,
                                const ResourceGrid& equalized_grid);

/// Control-region subcarriers (symbol 0, CRS excluded), mapping order.
std::vector<std::size_t> pdcch_subcarriers(const CellConfig& cfg);

/// Rebuild the full RE-type map of a subframe from broadcast knowledge:
/// cell identity + subframe index + decoded DCI (+ PBCH presence).
/// This is the non-genie counterpart of reading SubframeTx::grid types.
std::vector<ReType> derive_re_types(const CellConfig& cfg,
                                    std::size_t subframe_index,
                                    const Dci& dci, bool pbch_enabled);

}  // namespace lscatter::lte
