#include "lte/ofdm.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "obs/obs.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

std::size_t symbol_offset_in_subframe(const CellConfig& cfg, std::size_t l) {
  LSCATTER_EXPECT(l < kSymbolsPerSubframe,
                  "symbol index exceeds the 14-symbol subframe");
  const std::size_t slot = l / kSymbolsPerSlot;
  const std::size_t in_slot = l % kSymbolsPerSlot;
  return slot * cfg.samples_per_slot() + cfg.symbol_offset_in_slot(in_slot);
}

OfdmModulator::OfdmModulator(const CellConfig& cfg)
    : cfg_(cfg),
      plan_(cfg.fft_size()),
      scale_(static_cast<float>(
          std::sqrt(static_cast<double>(cfg.fft_size()) /
                    static_cast<double>(cfg.n_subcarriers())))) {}

cvec OfdmModulator::modulate(const ResourceGrid& grid) const {
  LSCATTER_OBS_TIMER("lte.ofdm.modulate");
  LSCATTER_OBS_COUNTER_INC("lte.ofdm.subframes_modulated");
  cvec out(cfg_.samples_per_subframe(), cf32{});
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    const cvec sym = modulate_symbol(grid, l);
    const std::size_t off = symbol_offset_in_subframe(cfg_, l);
    std::copy(sym.begin(), sym.end(), out.begin() + off);
  }
  return out;
}

cvec OfdmModulator::modulate_symbol(const ResourceGrid& grid,
                                    std::size_t l) const {
  const std::size_t cp = cfg_.cp_length(l % kSymbolsPerSlot);
  const std::size_t k = cfg_.fft_size();

  cvec bins = grid.to_fft_bins(l);
  plan_.inverse_inplace(bins);
  // The IFFT divides by K; undo part of it so time samples have comparable
  // power to the grid.
  for (cf32& v : bins) v *= scale_ * static_cast<float>(k) /
                            static_cast<float>(std::sqrt(k));

  cvec sym(cp + k);
  std::copy(bins.end() - static_cast<std::ptrdiff_t>(cp), bins.end(),
            sym.begin());
  std::copy(bins.begin(), bins.end(), sym.begin() + cp);
  return sym;
}

OfdmDemodulator::OfdmDemodulator(const CellConfig& cfg)
    : cfg_(cfg),
      plan_(cfg.fft_size()),
      scale_(static_cast<float>(
          std::sqrt(static_cast<double>(cfg.fft_size()) /
                    static_cast<double>(cfg.n_subcarriers())))) {}

std::size_t OfdmDemodulator::useful_start(std::size_t l) const {
  return symbol_offset_in_subframe(cfg_, l) +
         cfg_.cp_length(l % kSymbolsPerSlot);
}

ResourceGrid OfdmDemodulator::demodulate(
    std::span<const cf32> samples) const {
  LSCATTER_OBS_TIMER("lte.ofdm.demodulate");
  LSCATTER_EXPECT(samples.size() >= cfg_.samples_per_subframe(),
                  "need at least one full subframe of samples");
  ResourceGrid grid(cfg_);
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    const cvec sym = demodulate_symbol(samples, l);
    auto dst = grid.symbol(l);
    std::copy(sym.begin(), sym.end(), dst.begin());
  }
  return grid;
}

cvec OfdmDemodulator::demodulate_symbol(std::span<const cf32> samples,
                                        std::size_t l) const {
  const std::size_t k = cfg_.fft_size();
  const std::size_t start = useful_start(l);
  LSCATTER_EXPECT(samples.size() >= start + k,
                  "useful window must lie inside the sample buffer");

  cvec bins(samples.begin() + static_cast<std::ptrdiff_t>(start),
            samples.begin() + static_cast<std::ptrdiff_t>(start + k));
  plan_.forward_inplace(bins);
  const float inv = 1.0f /
                    (scale_ * static_cast<float>(std::sqrt(
                                  static_cast<double>(k))));
  for (cf32& v : bins) v *= inv;

  // Gather subcarriers.
  cvec out(cfg_.n_subcarriers());
  for (std::size_t sc = 0; sc < out.size(); ++sc)
    out[sc] = bins[subcarrier_to_bin(sc, out.size(), k)];
  return out;
}

}  // namespace lscatter::lte
