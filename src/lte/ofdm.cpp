#include "lte/ofdm.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "obs/obs.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

namespace {

/// Per-thread FFT-length staging buffer for demodulation (the output span
/// holds n_subcarriers < K elements, so the transform needs its own K
/// samples of scratch). Grows to the largest K seen, then is reused.
cvec& demod_scratch(std::size_t k) {
  thread_local cvec bins;
  if (bins.size() < k) bins.resize(k);
  return bins;
}

}  // namespace

std::size_t symbol_offset_in_subframe(const CellConfig& cfg, std::size_t l) {
  LSCATTER_EXPECT(l < kSymbolsPerSubframe,
                  "symbol index exceeds the 14-symbol subframe");
  const std::size_t slot = l / kSymbolsPerSlot;
  const std::size_t in_slot = l % kSymbolsPerSlot;
  return slot * cfg.samples_per_slot() + cfg.symbol_offset_in_slot(in_slot);
}

OfdmModulator::OfdmModulator(const CellConfig& cfg)
    : cfg_(cfg),
      plan_(&dsp::cached_fft_plan(cfg.fft_size())),
      scale_(static_cast<float>(
          std::sqrt(static_cast<double>(cfg.fft_size()) /
                    static_cast<double>(cfg.n_subcarriers())))),
      time_scale_(static_cast<float>(
          static_cast<double>(scale_) *
          std::sqrt(static_cast<double>(cfg.fft_size())))) {}

cvec OfdmModulator::modulate(const ResourceGrid& grid) const {
  cvec out(cfg_.samples_per_subframe(), cf32{});
  modulate_into(grid, out);
  return out;
}

void OfdmModulator::modulate_into(const ResourceGrid& grid,
                                  std::span<cf32> out) const {
  LSCATTER_OBS_TIMER("lte.ofdm.modulate");
  LSCATTER_OBS_COUNTER_INC("lte.ofdm.subframes_modulated");
  LSCATTER_EXPECT(out.size() == cfg_.samples_per_subframe(),
                  "output must hold exactly one subframe of samples");
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    const std::size_t off = symbol_offset_in_subframe(cfg_, l);
    const std::size_t len =
        cfg_.cp_length(l % kSymbolsPerSlot) + cfg_.fft_size();
    modulate_symbol_into(grid, l, out.subspan(off, len));
  }
}

cvec OfdmModulator::modulate_symbol(const ResourceGrid& grid,
                                    std::size_t l) const {
  const std::size_t cp = cfg_.cp_length(l % kSymbolsPerSlot);
  cvec out(cp + cfg_.fft_size());
  modulate_symbol_into(grid, l, out);
  return out;
}

void OfdmModulator::modulate_symbol_into(const ResourceGrid& grid,
                                         std::size_t l,
                                         std::span<cf32> out) const {
  const std::size_t cp = cfg_.cp_length(l % kSymbolsPerSlot);
  const std::size_t k = cfg_.fft_size();
  LSCATTER_EXPECT(out.size() == cp + k,
                  "output must hold CP + FFT-size samples");

  // IFFT directly in the useful part of the output; the CP then needs
  // only the single tail copy (the old path staged through a `bins`
  // vector and copied twice).
  const std::span<cf32> useful = out.subspan(cp, k);
  grid.to_fft_bins_into(l, useful);
  plan_->inverse_inplace(useful);
  // The IFFT divides by K; time_scale_ undoes part of it so time samples
  // have comparable power to the grid.
  for (cf32& v : useful) v *= time_scale_;
  std::copy(useful.end() - static_cast<std::ptrdiff_t>(cp), useful.end(),
            out.begin());
}

OfdmDemodulator::OfdmDemodulator(const CellConfig& cfg)
    : cfg_(cfg),
      plan_(&dsp::cached_fft_plan(cfg.fft_size())),
      scale_(static_cast<float>(
          std::sqrt(static_cast<double>(cfg.fft_size()) /
                    static_cast<double>(cfg.n_subcarriers())))),
      bin_scale_(static_cast<float>(
          1.0 / (static_cast<double>(scale_) *
                 std::sqrt(static_cast<double>(cfg.fft_size()))))) {}

std::size_t OfdmDemodulator::useful_start(std::size_t l) const {
  return symbol_offset_in_subframe(cfg_, l) +
         cfg_.cp_length(l % kSymbolsPerSlot);
}

ResourceGrid OfdmDemodulator::demodulate(
    std::span<const cf32> samples) const {
  ResourceGrid grid(cfg_);
  demodulate_into(samples, grid);
  return grid;
}

void OfdmDemodulator::demodulate_into(std::span<const cf32> samples,
                                      ResourceGrid& grid) const {
  LSCATTER_OBS_TIMER("lte.ofdm.demodulate");
  LSCATTER_EXPECT(samples.size() >= cfg_.samples_per_subframe(),
                  "need at least one full subframe of samples");
  LSCATTER_EXPECT(grid.n_subcarriers() == cfg_.n_subcarriers(),
                  "grid must be built for the demodulator's CellConfig");
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    demodulate_symbol_into(samples, l, grid.symbol(l));
  }
}

void OfdmDemodulator::demodulate_into(std::span<const cf32> samples,
                                      ResourceGrid& grid,
                                      dsp::FftPlan::Workspace& ws) const {
  LSCATTER_OBS_TIMER("lte.ofdm.demodulate");
  LSCATTER_EXPECT(samples.size() >= cfg_.samples_per_subframe(),
                  "need at least one full subframe of samples");
  LSCATTER_EXPECT(grid.n_subcarriers() == cfg_.n_subcarriers(),
                  "grid must be built for the demodulator's CellConfig");
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    demod_symbol_with(samples, l, grid.symbol(l), &ws);
  }
}

void OfdmDemodulator::demodulate_batch_into(
    std::span<const cf32> samples, std::span<ResourceGrid> grids,
    dsp::FftPlan::Workspace& ws) const {
  const std::size_t spf = cfg_.samples_per_subframe();
  LSCATTER_EXPECT(samples.size() >= grids.size() * spf,
                  "need grids.size() full subframes of samples");
  for (std::size_t b = 0; b < grids.size(); ++b) {
    demodulate_into(samples.subspan(b * spf), grids[b], ws);
  }
}

cvec OfdmDemodulator::demodulate_symbol(std::span<const cf32> samples,
                                        std::size_t l) const {
  cvec out(cfg_.n_subcarriers());
  demodulate_symbol_into(samples, l, out);
  return out;
}

void OfdmDemodulator::demodulate_symbol_into(std::span<const cf32> samples,
                                             std::size_t l,
                                             std::span<cf32> out) const {
  demod_symbol_with(samples, l, out, nullptr);
}

void OfdmDemodulator::demodulate_symbol_into(
    std::span<const cf32> samples, std::size_t l, std::span<cf32> out,
    dsp::FftPlan::Workspace& ws) const {
  demod_symbol_with(samples, l, out, &ws);
}

void OfdmDemodulator::demod_symbol_with(std::span<const cf32> samples,
                                        std::size_t l, std::span<cf32> out,
                                        dsp::FftPlan::Workspace* ws) const {
  const std::size_t k = cfg_.fft_size();
  const std::size_t start = useful_start(l);
  LSCATTER_EXPECT(samples.size() >= start + k,
                  "useful window must lie inside the sample buffer");
  LSCATTER_EXPECT(out.size() == cfg_.n_subcarriers(),
                  "output must hold exactly n_subcarriers elements");

  cvec& scratch = demod_scratch(k);
  const std::span<cf32> bins(scratch.data(), k);
  std::copy(samples.begin() + static_cast<std::ptrdiff_t>(start),
            samples.begin() + static_cast<std::ptrdiff_t>(start + k),
            bins.begin());
  // ws == nullptr falls back to the per-thread FFT scratch.
  if (ws != nullptr) {
    plan_->forward_inplace(bins, *ws);
  } else {
    plan_->forward_inplace(bins);
  }

  // Gather subcarriers, applying the inverse scaling at the gather so the
  // full K-bin pass is skipped.
  for (std::size_t sc = 0; sc < out.size(); ++sc)
    out[sc] = bins[subcarrier_to_bin(sc, out.size(), k)] * bin_scale_;
}

}  // namespace lscatter::lte
