#pragma once
// LTE FDD downlink numerology (3GPP TS 36.211, normal cyclic prefix).
//
// Everything downstream — OFDM sizing, the tag's basic-timing unit, the
// backscatter modulation schedule — derives from this table:
//
//   bandwidth   1.4    3     5     10     15     20   MHz
//   N_RB          6   15    25     50     75    100
//   N_sc         72  180   300    600    900   1200
//   FFT size K  128  256   512   1024   1536   2048
//   fs         1.92 3.84  7.68  15.36  23.04  30.72  Msps
//
// A slot (0.5 ms) carries 7 OFDM symbols; the first has an extended CP of
// 10*K/128 samples and the rest 9*K/128. A subframe is 2 slots (1 ms), a
// frame 10 subframes.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace lscatter::lte {

enum class Bandwidth : std::uint8_t {
  kMHz1_4 = 0,
  kMHz3,
  kMHz5,
  kMHz10,
  kMHz15,
  kMHz20,
};

inline constexpr std::array<Bandwidth, 6> kAllBandwidths = {
    Bandwidth::kMHz1_4, Bandwidth::kMHz3,  Bandwidth::kMHz5,
    Bandwidth::kMHz10,  Bandwidth::kMHz15, Bandwidth::kMHz20};

/// Subcarrier spacing [Hz].
inline constexpr double kSubcarrierSpacingHz = 15e3;

/// Useful OFDM symbol duration [s] (1 / 15 kHz = 66.67 us).
inline constexpr double kUsefulSymbolS = 1.0 / kSubcarrierSpacingHz;

inline constexpr std::size_t kSymbolsPerSlot = 7;    // normal CP
inline constexpr std::size_t kSlotsPerSubframe = 2;
inline constexpr std::size_t kSymbolsPerSubframe =
    kSymbolsPerSlot * kSlotsPerSubframe;
inline constexpr std::size_t kSubframesPerFrame = 10;
inline constexpr std::size_t kSubcarriersPerRb = 12;

/// PSS/SSS occupy the central 62 subcarriers (0.93 MHz), regardless of the
/// cell bandwidth — the property the tag's sync circuit relies on.
inline constexpr std::size_t kSyncSubcarriers = 62;

struct CellConfig {
  Bandwidth bandwidth = Bandwidth::kMHz20;

  /// Physical cell identity N_ID^cell = 3*N_ID1 + N_ID2.
  std::uint16_t n_id_1 = 0;  // 0..167
  std::uint8_t n_id_2 = 0;   // 0..2

  /// Carrier frequency [Hz]. The paper runs at 680 MHz white space.
  double carrier_hz = 680e6;  // lint-ok: units — sample-domain boundary; wrapped as dsp::Hz by users

  std::uint16_t cell_id() const {
    return static_cast<std::uint16_t>(3 * n_id_1 + n_id_2);
  }

  std::size_t n_rb() const;          // resource blocks
  std::size_t n_subcarriers() const; // occupied subcarriers (excl. DC)
  std::size_t fft_size() const;      // K
  double sample_rate_hz() const;     // K * 15 kHz
  double bandwidth_hz() const;       // nominal channel bandwidth

  /// CP lengths in samples: first symbol of a slot vs the other six.
  std::size_t cp0_samples() const;   // 10*K/128
  std::size_t cp_samples() const;    // 9*K/128

  std::size_t samples_per_slot() const;      // = fs * 0.5 ms
  std::size_t samples_per_subframe() const;  // = fs * 1 ms
  std::size_t samples_per_frame() const;     // = fs * 10 ms

  /// Sample offset of OFDM symbol `l` (0..6) within a slot, pointing at the
  /// start of its CP.
  std::size_t symbol_offset_in_slot(std::size_t l) const;

  /// CP length of symbol l within a slot.
  std::size_t cp_length(std::size_t l) const;

  /// Duration of the basic timing unit Ts = 66.7us / K = 1 / fs [s].
  /// This is the unit at which the LScatter tag modulates (paper §3.2.2).
  double basic_timing_unit_s() const { return 1.0 / sample_rate_hz(); }

  std::string describe() const;
};

/// Nominal channel bandwidth in Hz for a Bandwidth enum.
double bandwidth_hz(Bandwidth bw);

/// Short label like "20MHz".
std::string to_string(Bandwidth bw);

}  // namespace lscatter::lte
