#include "lte/resource_grid.hpp"

#include <algorithm>
#include <cassert>

#include "core/contracts.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

ResourceGrid::ResourceGrid(const CellConfig& cfg)
    : n_sc_(cfg.n_subcarriers()),
      fft_size_(cfg.fft_size()),
      re_(kSymbolsPerSubframe * n_sc_, cf32{}),
      types_(kSymbolsPerSubframe * n_sc_, ReType::kData) {}

cf32& ResourceGrid::at(std::size_t symbol, std::size_t subcarrier) {
  assert(symbol < kSymbolsPerSubframe && subcarrier < n_sc_);
  return re_[symbol * n_sc_ + subcarrier];
}

cf32 ResourceGrid::at(std::size_t symbol, std::size_t subcarrier) const {
  assert(symbol < kSymbolsPerSubframe && subcarrier < n_sc_);
  return re_[symbol * n_sc_ + subcarrier];
}

ReType& ResourceGrid::type_at(std::size_t symbol, std::size_t subcarrier) {
  assert(symbol < kSymbolsPerSubframe && subcarrier < n_sc_);
  return types_[symbol * n_sc_ + subcarrier];
}

ReType ResourceGrid::type_at(std::size_t symbol,
                             std::size_t subcarrier) const {
  assert(symbol < kSymbolsPerSubframe && subcarrier < n_sc_);
  return types_[symbol * n_sc_ + subcarrier];
}

std::span<cf32> ResourceGrid::symbol(std::size_t l) {
  assert(l < kSymbolsPerSubframe);
  return std::span<cf32>(re_).subspan(l * n_sc_, n_sc_);
}

std::span<const cf32> ResourceGrid::symbol(std::size_t l) const {
  assert(l < kSymbolsPerSubframe);
  return std::span<const cf32>(re_).subspan(l * n_sc_, n_sc_);
}

std::span<const ReType> ResourceGrid::symbol_types(std::size_t l) const {
  assert(l < kSymbolsPerSubframe);
  return std::span<const ReType>(types_).subspan(l * n_sc_, n_sc_);
}

void ResourceGrid::clear() {
  std::fill(re_.begin(), re_.end(), cf32{});
  std::fill(types_.begin(), types_.end(), ReType::kData);
}

std::size_t subcarrier_to_bin(std::size_t subcarrier, std::size_t n_sc,
                              std::size_t fft_size) {
  assert(subcarrier < n_sc);
  const std::size_t half = n_sc / 2;
  if (subcarrier < half) {
    // Negative frequencies: subcarrier 0 is the lowest, bin K - half.
    return fft_size - half + subcarrier;
  }
  // Positive frequencies start at bin 1 (DC skipped).
  return subcarrier - half + 1;
}

std::size_t ResourceGrid::subcarrier_to_bin(std::size_t subcarrier) const {
  return lte::subcarrier_to_bin(subcarrier, n_sc_, fft_size_);
}

cvec ResourceGrid::to_fft_bins(std::size_t l) const {
  cvec bins(fft_size_, cf32{});
  to_fft_bins_into(l, bins);
  return bins;
}

void ResourceGrid::to_fft_bins_into(std::size_t l,
                                    std::span<cf32> bins) const {
  LSCATTER_EXPECT(bins.size() == fft_size_,
                  "bin buffer must hold exactly fft_size elements");
  std::fill(bins.begin(), bins.end(), cf32{});
  const auto sym = symbol(l);
  for (std::size_t k = 0; k < n_sc_; ++k) bins[subcarrier_to_bin(k)] = sym[k];
}

void ResourceGrid::from_fft_bins(std::size_t l,
                                 std::span<const cf32> bins) {
  assert(bins.size() == fft_size_);
  auto sym = symbol(l);
  for (std::size_t k = 0; k < n_sc_; ++k) sym[k] = bins[subcarrier_to_bin(k)];
}

}  // namespace lscatter::lte
