#include "lte/ue_sync.hpp"

#include <array>
#include <cassert>
#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "lte/ofdm.hpp"
#include "lte/sequences.hpp"
#include "lte/signal_map.hpp"
#include "obs/obs.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

namespace {

// Frequency-domain sequence -> time-domain useful symbol at the cell rate.
cvec sync_replica(const CellConfig& cfg, const cvec& d) {
  const std::size_t k = cfg.fft_size();
  const std::size_t n_sc = cfg.n_subcarriers();
  const std::size_t first = sync_band_first_subcarrier(cfg);
  cvec bins(k, cf32{});
  for (std::size_t n = 0; n < d.size(); ++n) {
    bins[subcarrier_to_bin(first + n, n_sc, k)] = d[n];
  }
  cvec t = dsp::ifft(bins);
  dsp::normalize_power(t);
  return t;
}

}  // namespace

CellSearcher::CellSearcher(const CellConfig& cfg) : cfg_(cfg) {
  for (std::uint8_t id2 = 0; id2 < 3; ++id2) {
    replicas_[id2] = sync_replica(cfg, pss_sequence(id2));
  }
}

const cvec& CellSearcher::pss_replica(std::uint8_t n_id_2) const {
  assert(n_id_2 < 3);
  return replicas_[n_id_2];
}

std::optional<CellSearchResult> CellSearcher::search(
    std::span<const cf32> samples, float min_metric) const {
  LSCATTER_OBS_SPAN("lte.cellsearch.search");
  LSCATTER_OBS_COUNTER_INC("lte.cellsearch.searches");
  const std::size_t k = cfg_.fft_size();
  if (samples.size() < k + 1) return std::nullopt;

  CellSearchResult best;
  // Overlap-save FFT correlation of all three PSS replicas as one
  // matched-filter bank: each segment's forward FFT is shared across the
  // bank (the replica is FFT-size long, so the direct kernel's O(N·K)
  // dominated the whole search before — DESIGN.md §10).
  const std::size_t lags = samples.size() - k + 1;
  thread_local dsp::fvec metrics;
  if (metrics.size() < 3 * lags) metrics.resize(3 * lags);
  const std::array<std::span<const cf32>, 3> patterns{
      std::span<const cf32>(replicas_[0]),
      std::span<const cf32>(replicas_[1]),
      std::span<const cf32>(replicas_[2])};
  const std::array<std::span<float>, 3> outs{
      std::span<float>(metrics.data(), lags),
      std::span<float>(metrics.data() + lags, lags),
      std::span<float>(metrics.data() + 2 * lags, lags)};
  dsp::fast_normalized_correlation_batch_into(samples, patterns, outs);
  for (std::uint8_t id2 = 0; id2 < 3; ++id2) {
    const auto pk = dsp::peak(outs[id2]);
    if (pk.value > best.pss_metric) {
      best.pss_metric = pk.value;
      best.n_id_2 = id2;
      best.pss_useful_start = pk.index;
    }
  }
  if (best.pss_metric < min_metric) {
    LSCATTER_OBS_COUNTER_INC("lte.cellsearch.pss_below_threshold");
    return std::nullopt;
  }
  LSCATTER_OBS_COUNTER_INC("lte.cellsearch.pss_found");

  // SSS sits one symbol earlier: its useful part starts one (K + CP)
  // before the PSS useful start.
  const std::size_t cp = cfg_.cp_samples();
  if (best.pss_useful_start < k + cp) {
    // Not enough room to read the SSS; report PSS-only with cell unknown.
    best.cell_id = best.n_id_2;
    best.frame_start = 0;
    return best;
  }
  const std::size_t sss_start = best.pss_useful_start - k - cp;
  cvec sss_bins(samples.begin() + static_cast<std::ptrdiff_t>(sss_start),
                samples.begin() + static_cast<std::ptrdiff_t>(sss_start + k));
  sss_bins = dsp::fft(sss_bins);

  const std::size_t first = sync_band_first_subcarrier(cfg_);
  cvec sss_rx(kSyncSubcarriers);
  for (std::size_t n = 0; n < kSyncSubcarriers; ++n) {
    sss_rx[n] = sss_bins[subcarrier_to_bin(first + n, cfg_.n_subcarriers(),
                                           k)];
  }

  // Equalize the SSS by the PSS channel estimate (they're adjacent in time
  // and share subcarriers): H ≈ rx_pss / tx_pss. For speed just correlate
  // coherently against all candidates; the channel phase is common.
  cvec pss_bins(
      samples.begin() + static_cast<std::ptrdiff_t>(best.pss_useful_start),
      samples.begin() +
          static_cast<std::ptrdiff_t>(best.pss_useful_start + k));
  pss_bins = dsp::fft(pss_bins);
  const cvec pss_tx = pss_sequence(best.n_id_2);
  cvec equalized(kSyncSubcarriers);
  for (std::size_t n = 0; n < kSyncSubcarriers; ++n) {
    const cf32 h = pss_bins[subcarrier_to_bin(first + n,
                                              cfg_.n_subcarriers(), k)] *
                   std::conj(pss_tx[n]);
    equalized[n] = sss_rx[n] * std::conj(h);
  }

  float best_sss = -1.0f;
  std::uint16_t best_id1 = 0;
  bool best_sf5 = false;
  for (std::uint16_t id1 = 0; id1 < 168; ++id1) {
    for (const bool sf5 : {false, true}) {
      const cvec cand = sss_sequence(id1, best.n_id_2, sf5);
      const cf32 corr = dsp::inner_product(equalized, cand);
      const float m = std::abs(corr);
      if (m > best_sss) {
        best_sss = m;
        best_id1 = id1;
        best_sf5 = sf5;
      }
    }
  }
  const double norm = std::sqrt(dsp::energy(equalized) *
                                static_cast<double>(kSyncSubcarriers));
  best.sss_metric = norm > 0.0
                        ? static_cast<float>(best_sss / norm)
                        : 0.0f;
  best.n_id_1 = best_id1;
  best.found_in_subframe5 = best_sf5;
  best.cell_id = static_cast<std::uint16_t>(3 * best_id1 + best.n_id_2);

  // Frame start: PSS useful part begins at
  //   frame_start + offset(symbol 6 of subframe 0 or 5) + cp
  const std::size_t sym6 = symbol_offset_in_subframe(cfg_, kPssSymbolIndex);
  const std::size_t pss_off =
      sym6 + cfg_.cp_samples() +
      (best_sf5 ? 5 * cfg_.samples_per_subframe() : 0);
  const std::size_t frame_len = cfg_.samples_per_frame();
  best.frame_start =
      (best.pss_useful_start + frame_len - (pss_off % frame_len)) %
      frame_len;
  return best;
}

}  // namespace lscatter::lte
