#pragma once
// QAM modulation mappers from TS 36.211 §7.1 (QPSK, 16QAM, 64QAM), unit
// average power, plus hard-decision demappers.

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace lscatter::lte {

enum class Modulation : std::uint8_t { kQpsk, kQam16, kQam64 };

/// Bits consumed per modulated symbol.
std::size_t bits_per_symbol(Modulation m);

const char* to_string(Modulation m);

/// Map bits (one per byte, values 0/1) to symbols. bits.size() must be a
/// multiple of bits_per_symbol(m).
dsp::cvec qam_modulate(std::span<const std::uint8_t> bits, Modulation m);

/// Same, into a caller buffer of exactly bits.size() / bits_per_symbol(m)
/// symbols — constellation-LUT mapping, allocation-free (DESIGN.md §10).
void qam_modulate_into(std::span<const std::uint8_t> bits, Modulation m,
                       std::span<dsp::cf32> out);

/// Hard-decision demap back to bits.
std::vector<std::uint8_t> qam_demodulate(std::span<const dsp::cf32> symbols,
                                         Modulation m);

/// Same, into a caller buffer of exactly symbols.size() *
/// bits_per_symbol(m) bytes (one bit per byte) — runs the dispatched
/// SIMD demap kernels (dsp/simd.hpp), allocation-free.
void qam_demodulate_into(std::span<const dsp::cf32> symbols, Modulation m,
                         std::span<std::uint8_t> bits);

/// Error vector magnitude (RMS, relative to unit-power reference grid) —
/// used by the Fig. 32 impact study to quantify distortion.
double evm_rms(std::span<const dsp::cf32> received,
               std::span<const dsp::cf32> reference);

}  // namespace lscatter::lte
