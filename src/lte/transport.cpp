#include "lte/transport.hpp"

#include <cassert>

#include "dsp/crc.hpp"

namespace lscatter::lte {

std::vector<CodeBlock> segment(std::size_t coded_capacity) {
  assert(coded_capacity > kBlockCrcBits);
  const std::size_t n_blocks =
      (coded_capacity + kMaxCodeBlockBits - 1) / kMaxCodeBlockBits;
  std::vector<CodeBlock> layout(n_blocks);
  const std::size_t base = coded_capacity / n_blocks;
  std::size_t remainder = coded_capacity % n_blocks;
  for (auto& b : layout) {
    std::size_t coded = base;
    if (remainder > 0) {
      ++coded;
      --remainder;
    }
    assert(coded > kBlockCrcBits);
    b.info_bits = coded - kBlockCrcBits;
  }
  return layout;
}

std::size_t info_bits(const std::vector<CodeBlock>& layout) {
  std::size_t total = 0;
  for (const auto& b : layout) total += b.info_bits;
  return total;
}

std::vector<std::uint8_t> encode_blocks(
    const std::vector<CodeBlock>& layout,
    std::span<const std::uint8_t> info) {
  assert(info.size() == info_bits(layout));
  std::vector<std::uint8_t> coded;
  std::size_t pos = 0;
  for (const auto& b : layout) {
    const auto block = info.subspan(pos, b.info_bits);
    const auto with_crc = dsp::attach_crc24a(block);
    coded.insert(coded.end(), with_crc.begin(), with_crc.end());
    pos += b.info_bits;
  }
  return coded;
}

BlockDecodeResult decode_blocks(const std::vector<CodeBlock>& layout,
                                std::span<const std::uint8_t> coded) {
  BlockDecodeResult res;
  res.blocks_total = layout.size();
  std::size_t pos = 0;
  for (const auto& b : layout) {
    const std::size_t coded_len = b.info_bits + kBlockCrcBits;
    assert(pos + coded_len <= coded.size());
    const auto block = coded.subspan(pos, coded_len);
    if (dsp::check_crc24a(block)) {
      ++res.blocks_ok;
      res.info_bits_ok += b.info_bits;
    }
    res.info.insert(res.info.end(), block.begin(),
                    block.end() - kBlockCrcBits);
    pos += coded_len;
  }
  return res;
}

}  // namespace lscatter::lte
