#pragma once
// OFDM modulation / demodulation with LTE's normal cyclic prefix.
//
// The modulator turns one ResourceGrid subframe into samples_per_subframe()
// time samples (IFFT + CP per symbol); the demodulator inverts it given the
// subframe start. Scaling: IFFT output is multiplied by sqrt(K)/sqrt(N_sc)
// so a unit-power grid yields roughly unit-power time samples, and
// demodulation divides it back — forward+inverse is exact.

#include "dsp/fft.hpp"
#include "lte/cell_config.hpp"
#include "lte/resource_grid.hpp"

namespace lscatter::lte {

class OfdmModulator {
 public:
  explicit OfdmModulator(const CellConfig& cfg);

  /// Modulate a full subframe (14 symbols).
  dsp::cvec modulate(const ResourceGrid& grid) const;

  /// Modulate a single symbol (CP included). `l` in [0, 13].
  dsp::cvec modulate_symbol(const ResourceGrid& grid, std::size_t l) const;

 private:
  CellConfig cfg_;
  dsp::FftPlan plan_;
  float scale_;
};

class OfdmDemodulator {
 public:
  explicit OfdmDemodulator(const CellConfig& cfg);

  /// Demodulate samples of one subframe into a grid. `samples` must hold at
  /// least samples_per_subframe() samples starting at the subframe boundary.
  ResourceGrid demodulate(std::span<const dsp::cf32> samples) const;

  /// FFT of the useful part of symbol `l` (0..13) of a subframe that starts
  /// at `samples[0]`, returned in subcarrier order.
  dsp::cvec demodulate_symbol(std::span<const dsp::cf32> samples,
                              std::size_t l) const;

  /// Sample offset of the *useful part* (after CP) of subframe symbol `l`.
  std::size_t useful_start(std::size_t l) const;

 private:
  CellConfig cfg_;
  dsp::FftPlan plan_;
  float scale_;
};

/// Sample offset of subframe symbol `l` (0..13) counted from the subframe
/// start, pointing at the CP.
std::size_t symbol_offset_in_subframe(const CellConfig& cfg, std::size_t l);

}  // namespace lscatter::lte
