#pragma once
// OFDM modulation / demodulation with LTE's normal cyclic prefix.
//
// The modulator turns one ResourceGrid subframe into samples_per_subframe()
// time samples (IFFT + CP per symbol); the demodulator inverts it given the
// subframe start. Scaling: IFFT output is multiplied by sqrt(K)/sqrt(N_sc)
// so a unit-power grid yields roughly unit-power time samples, and
// demodulation divides it back — forward+inverse is exact.
//
// The `_into` overloads are the hot path (DESIGN.md §10): they write into
// caller-provided buffers, run the IFFT directly in the output span, and
// insert the CP with a single copy — zero heap allocations after the
// calling thread's FFT scratch has warmed up. The allocating signatures
// delegate to them.

#include "dsp/fft.hpp"
#include "lte/cell_config.hpp"
#include "lte/resource_grid.hpp"

namespace lscatter::lte {

class OfdmModulator {
 public:
  explicit OfdmModulator(const CellConfig& cfg);

  /// Modulate a full subframe (14 symbols).
  dsp::cvec modulate(const ResourceGrid& grid) const;

  /// Same, into a caller buffer of exactly samples_per_subframe().
  void modulate_into(const ResourceGrid& grid,
                     std::span<dsp::cf32> out) const;

  /// Modulate a single symbol (CP included). `l` in [0, 13].
  dsp::cvec modulate_symbol(const ResourceGrid& grid, std::size_t l) const;

  /// Same, into a caller buffer of exactly cp_length(l) + fft_size().
  void modulate_symbol_into(const ResourceGrid& grid, std::size_t l,
                            std::span<dsp::cf32> out) const;

 private:
  CellConfig cfg_;
  /// Shared process-wide plan (dsp::cached_fft_plan): every modulator /
  /// demodulator on the same numerology reuses one immutable twiddle set
  /// behind the cache's shared_mutex read path.
  const dsp::FftPlan* plan_;
  float scale_;
  /// Post-IFFT gain applied per sample: scale_ · K / sqrt(K). Hoisted to
  /// construction time so the per-symbol loop is a bare multiply.
  float time_scale_;
};

class OfdmDemodulator {
 public:
  explicit OfdmDemodulator(const CellConfig& cfg);

  /// Demodulate samples of one subframe into a grid. `samples` must hold at
  /// least samples_per_subframe() samples starting at the subframe boundary.
  ResourceGrid demodulate(std::span<const dsp::cf32> samples) const;

  /// Same, into a caller-owned grid built for the same CellConfig.
  void demodulate_into(std::span<const dsp::cf32> samples,
                       ResourceGrid& grid) const;

  /// Same, with caller-owned FFT scratch instead of the per-thread
  /// workspace — for tight loops that want deterministic memory
  /// ownership (DESIGN.md §10).
  void demodulate_into(std::span<const dsp::cf32> samples, ResourceGrid& grid,
                       dsp::FftPlan::Workspace& ws) const;

  /// Demodulate grids.size() back-to-back subframes (samples must hold at
  /// least grids.size() * samples_per_subframe() samples starting at the
  /// first subframe boundary) through ONE caller-owned workspace: all
  /// 14 * N transforms reuse the same scratch, so long captures stream
  /// through the FFT with zero allocation and warm caches.
  void demodulate_batch_into(std::span<const dsp::cf32> samples,
                             std::span<ResourceGrid> grids,
                             dsp::FftPlan::Workspace& ws) const;

  /// FFT of the useful part of symbol `l` (0..13) of a subframe that starts
  /// at `samples[0]`, returned in subcarrier order.
  dsp::cvec demodulate_symbol(std::span<const dsp::cf32> samples,
                              std::size_t l) const;

  /// Same, into a caller buffer of exactly n_subcarriers() elements.
  void demodulate_symbol_into(std::span<const dsp::cf32> samples,
                              std::size_t l, std::span<dsp::cf32> out) const;

  /// Same, with caller-owned FFT scratch.
  void demodulate_symbol_into(std::span<const dsp::cf32> samples,
                              std::size_t l, std::span<dsp::cf32> out,
                              dsp::FftPlan::Workspace& ws) const;

  /// Sample offset of the *useful part* (after CP) of subframe symbol `l`.
  std::size_t useful_start(std::size_t l) const;

  /// The demodulator's FFT plan — callers make_workspace() from it to
  /// feed the workspace overloads above.
  const dsp::FftPlan& plan() const { return *plan_; }

 private:
  void demod_symbol_with(std::span<const dsp::cf32> samples, std::size_t l,
                         std::span<dsp::cf32> out,
                         dsp::FftPlan::Workspace* ws) const;

  CellConfig cfg_;
  const dsp::FftPlan* plan_;
  float scale_;
  /// Post-FFT gain applied per bin: 1 / (scale_ · sqrt(K)), hoisted to
  /// construction time.
  float bin_scale_;
};

/// Sample offset of subframe symbol `l` (0..13) counted from the subframe
/// start, pointing at the CP.
std::size_t symbol_offset_in_subframe(const CellConfig& cfg, std::size_t l);

}  // namespace lscatter::lte
