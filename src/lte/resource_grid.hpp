#pragma once
// One subframe (14 OFDM symbols x N_sc subcarriers) of frequency-domain
// resource elements, plus the mapping between subcarrier indices and FFT
// bins (DC subcarrier unused, spectrum centered on the carrier).

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"
#include "lte/cell_config.hpp"

namespace lscatter::lte {

/// Identifies what occupies a resource element — used by the eNodeB mapper
/// and by the UE when deciding which REs are data.
enum class ReType : std::uint8_t {
  kData = 0,
  kCrs,
  kPss,
  kSss,
  kPbch,
  kPdcch,
  kUnused,
};

/// Map subcarrier index (0..n_sc-1, lowest frequency first) to FFT bin
/// (0..fft_size-1). The DC bin 0 is skipped: the lower half of the band
/// occupies the top (negative-frequency) bins, the upper half bins
/// 1..n_sc/2.
std::size_t subcarrier_to_bin(std::size_t subcarrier, std::size_t n_sc,
                              std::size_t fft_size);

class ResourceGrid {
 public:
  explicit ResourceGrid(const CellConfig& cfg);

  std::size_t n_symbols() const { return kSymbolsPerSubframe; }
  std::size_t n_subcarriers() const { return n_sc_; }

  dsp::cf32& at(std::size_t symbol, std::size_t subcarrier);
  dsp::cf32 at(std::size_t symbol, std::size_t subcarrier) const;

  ReType& type_at(std::size_t symbol, std::size_t subcarrier);
  ReType type_at(std::size_t symbol, std::size_t subcarrier) const;

  /// Whole-symbol views.
  std::span<dsp::cf32> symbol(std::size_t l);
  std::span<const dsp::cf32> symbol(std::size_t l) const;
  std::span<const ReType> symbol_types(std::size_t l) const;

  void clear();

  /// Member convenience wrapper for the free subcarrier_to_bin().
  std::size_t subcarrier_to_bin(std::size_t subcarrier) const;

  /// Spread a frequency-domain symbol into a zero-padded FFT input of
  /// length K.
  dsp::cvec to_fft_bins(std::size_t l) const;

  /// Same, into a caller buffer of exactly fft_size elements (zeroed and
  /// filled in place; no allocation).
  void to_fft_bins_into(std::size_t l, std::span<dsp::cf32> bins) const;

  /// Gather from FFT output back into subcarrier order.
  void from_fft_bins(std::size_t l, std::span<const dsp::cf32> bins);

 private:
  std::size_t n_sc_;
  std::size_t fft_size_;
  std::vector<dsp::cf32> re_;
  std::vector<ReType> types_;
};

}  // namespace lscatter::lte
