#include "lte/cell_config.hpp"

#include <cstdio>

#include "core/contracts.hpp"

namespace lscatter::lte {
namespace {

struct Numerology {
  std::size_t n_rb;
  std::size_t fft_size;
  double bandwidth_hz;  // lint-ok: units — numerology table literal; typed at call boundaries
};

constexpr std::array<Numerology, 6> kNumerology = {{
    {6, 128, 1.4e6},
    {15, 256, 3.0e6},
    {25, 512, 5.0e6},
    {50, 1024, 10.0e6},
    {75, 1536, 15.0e6},
    {100, 2048, 20.0e6},
}};

const Numerology& numerology(Bandwidth bw) {
  return kNumerology[static_cast<std::size_t>(bw)];
}

}  // namespace

std::size_t CellConfig::n_rb() const { return numerology(bandwidth).n_rb; }

std::size_t CellConfig::n_subcarriers() const {
  return n_rb() * kSubcarriersPerRb;
}

std::size_t CellConfig::fft_size() const {
  return numerology(bandwidth).fft_size;
}

double CellConfig::sample_rate_hz() const {
  return static_cast<double>(fft_size()) * kSubcarrierSpacingHz;
}

double CellConfig::bandwidth_hz() const {
  return numerology(bandwidth).bandwidth_hz;
}

std::size_t CellConfig::cp0_samples() const { return 10 * fft_size() / 128; }

std::size_t CellConfig::cp_samples() const { return 9 * fft_size() / 128; }

std::size_t CellConfig::samples_per_slot() const {
  return cp0_samples() + (kSymbolsPerSlot - 1) * cp_samples() +
         kSymbolsPerSlot * fft_size();
}

std::size_t CellConfig::samples_per_subframe() const {
  return kSlotsPerSubframe * samples_per_slot();
}

std::size_t CellConfig::samples_per_frame() const {
  return kSubframesPerFrame * samples_per_subframe();
}

std::size_t CellConfig::symbol_offset_in_slot(std::size_t l) const {
  LSCATTER_EXPECT(l < kSymbolsPerSlot, "symbol index exceeds the 7-symbol slot");
  if (l == 0) return 0;
  return cp0_samples() + fft_size() +
         (l - 1) * (cp_samples() + fft_size());
}

std::size_t CellConfig::cp_length(std::size_t l) const {
  LSCATTER_EXPECT(l < kSymbolsPerSlot, "CP length is defined per slot symbol 0..6");
  return l == 0 ? cp0_samples() : cp_samples();
}

std::string CellConfig::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "LTE %s cell_id=%u K=%zu N_sc=%zu fs=%.2f Msps @ %.1f MHz",
                to_string(bandwidth).c_str(), cell_id(), fft_size(),
                n_subcarriers(), sample_rate_hz() / 1e6, carrier_hz / 1e6);
  return buf;
}

double bandwidth_hz(Bandwidth bw) { return numerology(bw).bandwidth_hz; }

std::string to_string(Bandwidth bw) {
  switch (bw) {
    case Bandwidth::kMHz1_4: return "1.4MHz";
    case Bandwidth::kMHz3: return "3MHz";
    case Bandwidth::kMHz5: return "5MHz";
    case Bandwidth::kMHz10: return "10MHz";
    case Bandwidth::kMHz15: return "15MHz";
    case Bandwidth::kMHz20: return "20MHz";
  }
  return "?";
}

}  // namespace lscatter::lte
