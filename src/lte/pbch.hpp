#pragma once
// Physical Broadcast Channel (simplified from TS 36.211 §6.6): the MIB —
// downlink bandwidth and system frame number — QPSK-mapped onto the
// central 6 RB of subframe 0, symbols 7..10, skipping CRS positions.
// Instead of the spec's tail-biting convolutional code spread over four
// frames, the 40-bit MIB+CRC16 codeword is repetition-filled across the
// region and majority-combined at the UE; the acquisition behaviour
// (find cell -> read MIB -> learn bandwidth) is preserved.

#include <cstdint>
#include <optional>

#include "lte/cell_config.hpp"
#include "lte/resource_grid.hpp"

namespace lscatter::lte {

struct Mib {
  Bandwidth bandwidth = Bandwidth::kMHz20;
  std::uint16_t sfn = 0;  // system frame number, 10 bits

  bool operator==(const Mib&) const = default;
};

/// Subframe-symbol indices (0..13) carrying PBCH.
inline constexpr std::array<std::size_t, 4> kPbchSymbolIndices = {7, 8, 9,
                                                                  10};

/// 24 MIB bits: 3 bandwidth + 10 SFN + 11 spare (zero).
std::array<std::uint8_t, 24> mib_to_bits(const Mib& mib);
std::optional<Mib> bits_to_mib(std::span<const std::uint8_t> bits);

/// Map the MIB into a subframe-0 grid (QPSK, repetition-filled, CRS REs
/// skipped); tags the REs as kPbch.
void map_pbch(const CellConfig& cfg, const Mib& mib, ResourceGrid& grid);

/// Decode the MIB from an *equalized* subframe-0 grid (each kPbch RE
/// already divided by the channel estimate). Returns nullopt on CRC
/// failure. The RE layout is derived from the cell config alone, so a UE
/// that found the cell via PSS/SSS can call this blindly.
std::optional<Mib> decode_pbch(const CellConfig& cfg,
                               const ResourceGrid& equalized_grid);

/// Subcarrier positions (within the full grid) used by PBCH in symbol l,
/// in mapping order.
std::vector<std::size_t> pbch_subcarriers(const CellConfig& cfg,
                                          std::size_t l);

}  // namespace lscatter::lte
