#pragma once
// UE cell search: PSS time-domain correlation to find symbol timing and
// N_ID2, then SSS matching to find N_ID1 and the frame boundary. This is
// the "full-power" reference synchronizer — the baseline Fig. 31 measures
// the tag's low-power analog circuit against.

#include <cstdint>
#include <optional>

#include "dsp/types.hpp"
#include "lte/cell_config.hpp"

namespace lscatter::lte {

struct CellSearchResult {
  std::uint16_t n_id_1 = 0;
  std::uint8_t n_id_2 = 0;
  std::uint16_t cell_id = 0;

  /// Sample index (within the searched buffer) of the start of the PSS
  /// symbol's useful part.
  std::size_t pss_useful_start = 0;

  /// Sample index of the start of the frame (subframe 0, symbol 0 CP),
  /// possibly computed to be before the buffer (then it is modulo frame).
  std::size_t frame_start = 0;

  /// True if the PSS was found in subframe 5 rather than subframe 0.
  bool found_in_subframe5 = false;

  /// Peak normalized correlation in [0, 1].
  float pss_metric = 0.0f;
  float sss_metric = 0.0f;
};

class CellSearcher {
 public:
  /// `bandwidth` sets the FFT size the searcher assumes. PSS detection only
  /// needs the central 0.93 MHz, so the searcher is bandwidth-agnostic in
  /// principle; we correlate at the cell's native rate for simplicity.
  explicit CellSearcher(const CellConfig& cfg);

  /// Search a buffer of at least 5 ms + one symbol of samples.
  /// Returns nullopt when no PSS exceeds `min_metric`.
  std::optional<CellSearchResult> search(std::span<const dsp::cf32> samples,
                                         float min_metric = 0.3f) const;

  /// Time-domain PSS replica (useful part, no CP) for a given N_ID2.
  const dsp::cvec& pss_replica(std::uint8_t n_id_2) const;

 private:
  CellConfig cfg_;
  std::array<dsp::cvec, 3> replicas_;
};

}  // namespace lscatter::lte
