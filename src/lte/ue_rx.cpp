#include "lte/ue_rx.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lte/signal_map.hpp"
#include "lte/transport.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

UeReceiver::UeReceiver(const CellConfig& cfg) : cfg_(cfg), demod_(cfg) {}

ResourceGrid UeReceiver::demodulate_grid(
    std::span<const cf32> samples) const {
  return demod_.demodulate(samples);
}

ChannelEstimate UeReceiver::estimate_channel(
    const ResourceGrid& rx_grid, std::size_t subframe_index) const {
  const std::size_t n_sc = cfg_.n_subcarriers();

  // Accumulate LS estimates (rx * conj(tx) / |tx|^2) per subcarrier.
  std::vector<cf32> acc(n_sc, cf32{});
  std::vector<int> count(n_sc, 0);
  for (const std::size_t l : kCrsSymbolIndices) {
    const auto positions = crs_subcarriers(cfg_, l);
    const cvec values = crs_values_for_symbol(cfg_, subframe_index, l);
    for (std::size_t m = 0; m < positions.size(); ++m) {
      const std::size_t k = positions[m];
      const cf32 tx = values[m];
      const float p = std::norm(tx);
      if (p <= 0.0f) continue;
      acc[k] += rx_grid.at(l, k) * std::conj(tx) / p;
      count[k]++;
    }
  }

  // Collect the pilot subcarriers in order and linearly interpolate.
  std::vector<std::size_t> pk;
  cvec pv;
  for (std::size_t k = 0; k < n_sc; ++k) {
    if (count[k] > 0) {
      pk.push_back(k);
      pv.push_back(acc[k] / static_cast<float>(count[k]));
    }
  }
  ChannelEstimate est;
  est.h.assign(n_sc, cf32{1.0f, 0.0f});
  if (pk.empty()) return est;

  std::size_t seg = 0;
  for (std::size_t k = 0; k < n_sc; ++k) {
    if (k <= pk.front()) {
      est.h[k] = pv.front();
      continue;
    }
    if (k >= pk.back()) {
      est.h[k] = pv.back();
      continue;
    }
    while (seg + 1 < pk.size() && pk[seg + 1] < k) ++seg;
    const std::size_t k0 = pk[seg];
    const std::size_t k1 = pk[seg + 1];
    const float t = static_cast<float>(k - k0) /
                    static_cast<float>(k1 - k0);
    est.h[k] = pv[seg] * (1.0f - t) + pv[seg + 1] * t;
  }
  return est;
}

SubframeRxResult UeReceiver::receive_subframe(
    std::span<const cf32> samples, const SubframeTx& truth,
    Modulation modulation) const {
  SubframeRxResult res;
  const ResourceGrid rx = demodulate_grid(samples);
  const ChannelEstimate est = estimate_channel(rx, truth.subframe_index);

  // Equalize and gather data REs in the same symbol-major order the eNodeB
  // used when mapping.
  const std::size_t n_sc = cfg_.n_subcarriers();
  cvec eq;
  cvec ref;
  eq.reserve(kSymbolsPerSubframe * n_sc);
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < n_sc; ++k) {
      if (truth.grid.type_at(l, k) != ReType::kData) continue;
      const cf32 h = est.h[k];
      const float p = std::norm(h);
      const cf32 y = rx.at(l, k);
      eq.push_back(p > 1e-12f ? y * std::conj(h) / p : y);
      ref.push_back(truth.grid.at(l, k));
    }
  }

  res.evm_rms = evm_rms(eq, ref);

  const auto bits = qam_demodulate(eq, modulation);
  const auto layout = segment(bits.size());
  const auto blocks = decode_blocks(layout, bits);
  res.crc_ok = blocks.all_ok();
  res.blocks_total = blocks.blocks_total;
  res.blocks_ok = blocks.blocks_ok;
  res.bits_delivered = blocks.info_bits_ok;

  // Bit errors against the true payload (CRC bits excluded on both
  // sides; the layouts match because capacity matches).
  const std::size_t n_payload = truth.payload_bits.size();
  assert(blocks.info.size() == n_payload);
  res.n_bits = n_payload;
  for (std::size_t i = 0; i < n_payload; ++i) {
    if (blocks.info[i] != truth.payload_bits[i]) ++res.bit_errors;
  }
  return res;
}

}  // namespace lscatter::lte
