#include "lte/enodeb.hpp"

#include <cassert>

#include "dsp/db.hpp"
#include "lte/pbch.hpp"
#include "lte/signal_map.hpp"
#include "lte/transport.hpp"
#include "obs/obs.hpp"

namespace lscatter::lte {

using dsp::cf32;

Enodeb::Enodeb(const Config& config)
    : config_(config),
      modulator_(config.cell),
      rng_(config.seed, 0x9e3779b97f4a7c15ULL) {}

std::size_t Enodeb::data_res_per_subframe(std::size_t subframe_index) const {
  const CellConfig& cell = config_.cell;
  const std::size_t n_sc = cell.n_subcarriers();

  // CRS: 4 symbols x 2 per RB.
  std::size_t crs = 4 * 2 * cell.n_rb();
  std::size_t sync = 0;
  if (is_sync_subframe(subframe_index)) {
    // PSS + SSS occupy the central 6 RB (62 used + 10 guards) in 2 symbols.
    sync = 2 * (kSyncSubcarriers + 10);
  }
  return kSymbolsPerSubframe * n_sc - crs - sync;
}

std::size_t Enodeb::payload_bits_per_subframe(
    std::size_t subframe_index) const {
  const std::size_t bits =
      data_res_per_subframe(subframe_index) *
      bits_per_symbol(config_.modulation);
  assert(bits > kBlockCrcBits);
  return info_bits(segment(bits));
}

SubframeTx Enodeb::make_subframe(std::size_t subframe_index) {
  LSCATTER_OBS_TIMER("lte.enodeb.subframe");
  LSCATTER_OBS_COUNTER_INC("lte.enodeb.subframes");
  const CellConfig& cell = config_.cell;
  SubframeTx tx{subframe_index, ResourceGrid(cell), {}, {}, {}};

  const float sync_amp =
      static_cast<float>(config_.sync_boost_db.amplitude());
  map_sync_signals(cell, subframe_index, tx.grid, sync_amp);
  map_crs(cell, subframe_index, tx.grid);
  if (config_.enable_pbch && subframe_index % kSubframesPerFrame == 0) {
    Mib mib;
    mib.bandwidth = cell.bandwidth;
    mib.sfn = static_cast<std::uint16_t>(
        (subframe_index / kSubframesPerFrame) & 0x3FF);
    map_pbch(cell, mib, tx.grid);
  }

  // Scheduler: decide whether the central 6 RBs carry data in each of
  // this subframe's symbols (models partial loading seen by the tag's
  // narrowband envelope detector), announce the decision in the DCI, and
  // mark the resulting gaps kUnused.
  const std::size_t n_sc = cell.n_subcarriers();
  const std::size_t center_first = n_sc / 2 - 36;
  const std::size_t center_count = 72;

  // At 1.4 MHz the "center 6 RB" are the whole band; partial loading there
  // would contradict the paper's continuous-LTE observation, so skip it.
  const bool allow_center_gaps = n_sc > 72;

  tx.dci.mcs = config_.modulation;
  tx.dci.center_active_mask = 0x3FFF;
  for (std::size_t l = 0; allow_center_gaps && l < kSymbolsPerSubframe; ++l) {
    const bool is_sync_symbol =
        is_sync_subframe(subframe_index) &&
        (l == kPssSymbolIndex || l == kSssSymbolIndex);
    if (is_sync_symbol) continue;  // center there is sync/guard already
    if (!rng_.bernoulli(config_.center_rb_activity)) {
      tx.dci.center_active_mask = static_cast<std::uint16_t>(
          tx.dci.center_active_mask & ~(1u << l));
      for (std::size_t k = 0; k < center_count; ++k) {
        const std::size_t sc = center_first + k;
        if (tx.grid.type_at(l, sc) == ReType::kData) {
          tx.grid.type_at(l, sc) = ReType::kUnused;
        }
      }
    }
  }

  if (config_.enable_pdcch) map_pdcch(cell, tx.dci, tx.grid);

  // Count data REs after scheduling, draw the transport block, attach CRC,
  // modulate, and map in symbol-major order.
  std::size_t n_data = 0;
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < n_sc; ++k) {
      if (tx.grid.type_at(l, k) == ReType::kData) ++n_data;
    }
  }
  const std::size_t bps = bits_per_symbol(config_.modulation);
  const std::size_t n_bits = n_data * bps;
  assert(n_bits > kBlockCrcBits);

  const auto layout = segment(n_bits);
  tx.payload_bits = rng_.bits(info_bits(layout));
  const auto coded = encode_blocks(layout, tx.payload_bits);
  const auto symbols = qam_modulate(coded, config_.modulation);

  std::size_t si = 0;
  for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < n_sc; ++k) {
      if (tx.grid.type_at(l, k) == ReType::kData) {
        tx.grid.at(l, k) = symbols[si++];
      }
    }
  }
  assert(si == symbols.size());

  tx.samples = modulator_.modulate(tx.grid);
  return tx;
}

SubframeTx Enodeb::next_subframe() { return make_subframe(next_index_++); }

}  // namespace lscatter::lte
