#pragma once
// Deterministic sequences from TS 36.211: Zadoff-Chu (PSS), the SSS
// m-sequence construction, and the length-31 Gold pseudo-random generator
// behind the cell-specific reference signals.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace lscatter::lte {

/// Zadoff-Chu sequence of length `n` with root `u` (gcd(u, n) == 1):
///   zc[k] = exp(-j pi u k (k+1) / n)        (odd n)
/// Constant amplitude, zero cyclic autocorrelation.
dsp::cvec zadoff_chu(std::uint32_t root, std::size_t n);  // lint-ok: into — sequences are generated once and cached by callers

/// PSS frequency-domain sequence d_u(n), n = 0..61 (TS 36.211 §6.11.1.1).
/// N_ID2 in {0,1,2} selects root u in {25, 29, 34}. The length-63 ZC is
/// punctured at its middle element (which would land on DC).
dsp::cvec pss_sequence(std::uint8_t n_id_2);  // lint-ok: into — generated once and cached by callers

/// SSS frequency-domain sequence d(0..61) (TS 36.211 §6.11.2.1).
/// Differs between subframe 0 and subframe 5 — that difference is what
/// lets a UE find the frame boundary.
// lint-ok: into — generated once and cached by callers
dsp::cvec sss_sequence(std::uint16_t n_id_1, std::uint8_t n_id_2,
                       bool subframe5);

/// Length-31 Gold sequence c(n) (TS 36.211 §7.2), n = 0..len-1, for the
/// given c_init. Returned one bit per byte.
std::vector<std::uint8_t> gold_sequence(std::uint32_t c_init,
                                        std::size_t len);

/// Cell-specific reference-signal symbol values r_{l,ns}(m) for antenna
/// port 0 (TS 36.211 §6.10.1.1): QPSK from the Gold sequence with
///   c_init = 2^10 (7(ns+1) + l + 1)(2 N_cell + 1) + 2 N_cell + 1
/// (normal CP). `ns` is the slot number 0..19, `l` the symbol in the slot.
/// Returns 2*kMaxRb values; the cell maps a centered window of them.
dsp::cvec crs_values(std::uint16_t cell_id, std::size_t ns, std::size_t l);  // lint-ok: into — per-symbol values memoized by signal_map

inline constexpr std::size_t kMaxRb = 110;  // N_RB^max,DL

}  // namespace lscatter::lte
