#include "lte/signal_map.hpp"

#include <cassert>

#include "lte/sequences.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

bool is_sync_subframe(std::size_t subframe_index) {
  const std::size_t sf = subframe_index % kSubframesPerFrame;
  return sf == 0 || sf == 5;
}

std::size_t sync_band_first_subcarrier(const CellConfig& cfg) {
  return cfg.n_subcarriers() / 2 - 31;
}

void map_sync_signals(const CellConfig& cfg, std::size_t subframe_index,
                      ResourceGrid& grid, float amplitude) {
  if (!is_sync_subframe(subframe_index)) return;
  const bool sf5 = (subframe_index % kSubframesPerFrame) == 5;
  const std::size_t first = sync_band_first_subcarrier(cfg);

  const cvec pss = pss_sequence(cfg.n_id_2);
  const cvec sss = sss_sequence(cfg.n_id_1, cfg.n_id_2, sf5);
  for (std::size_t n = 0; n < kSyncSubcarriers; ++n) {
    grid.at(kPssSymbolIndex, first + n) = pss[n] * amplitude;
    grid.type_at(kPssSymbolIndex, first + n) = ReType::kPss;
    grid.at(kSssSymbolIndex, first + n) = sss[n] * amplitude;
    grid.type_at(kSssSymbolIndex, first + n) = ReType::kSss;
  }

  // The 5 guard subcarriers on each side of PSS/SSS within the central 6 RB
  // are left empty (TS 36.211 maps nothing there).
  for (std::size_t g = 1; g <= 5; ++g) {
    for (const std::size_t l : {kPssSymbolIndex, kSssSymbolIndex}) {
      if (first >= g) {
        grid.at(l, first - g) = cf32{};
        grid.type_at(l, first - g) = ReType::kUnused;
      }
      const std::size_t hi = first + kSyncSubcarriers + g - 1;
      if (hi < cfg.n_subcarriers()) {
        grid.at(l, hi) = cf32{};
        grid.type_at(l, hi) = ReType::kUnused;
      }
    }
  }
}

std::vector<std::size_t> crs_subcarriers(const CellConfig& cfg,
                                         std::size_t l) {
  const std::size_t v = (l == 4 || l == 11) ? 3 : 0;  // port 0
  const std::size_t v_shift = cfg.cell_id() % 6;
  std::vector<std::size_t> out;
  out.reserve(2 * cfg.n_rb());
  for (std::size_t m = 0; m < 2 * cfg.n_rb(); ++m) {
    out.push_back(6 * m + (v + v_shift) % 6);
  }
  return out;
}

dsp::cvec crs_values_for_symbol(const CellConfig& cfg,
                                std::size_t subframe_index, std::size_t l) {
  assert(l == 0 || l == 4 || l == 7 || l == 11);
  const std::size_t ns =
      2 * (subframe_index % kSubframesPerFrame) + (l >= kSymbolsPerSlot);
  const std::size_t l_in_slot = l % kSymbolsPerSlot;
  const cvec all = crs_values(cfg.cell_id(), ns, l_in_slot);

  // Center the cell's 2*N_RB CRS values within the 2*kMaxRb master set.
  const std::size_t offset = kMaxRb - cfg.n_rb();
  cvec out(2 * cfg.n_rb());
  for (std::size_t m = 0; m < out.size(); ++m) out[m] = all[m + offset];
  return out;
}

void map_crs(const CellConfig& cfg, std::size_t subframe_index,
             ResourceGrid& grid) {
  for (const std::size_t l : kCrsSymbolIndices) {
    const auto positions = crs_subcarriers(cfg, l);
    const cvec values = crs_values_for_symbol(cfg, subframe_index, l);
    assert(positions.size() == values.size());
    for (std::size_t m = 0; m < positions.size(); ++m) {
      grid.at(l, positions[m]) = values[m];
      grid.type_at(l, positions[m]) = ReType::kCrs;
    }
  }
}

}  // namespace lscatter::lte
