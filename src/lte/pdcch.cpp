#include "lte/pdcch.hpp"

#include <cassert>

#include "dsp/crc.hpp"
#include "lte/pbch.hpp"
#include "lte/signal_map.hpp"

namespace lscatter::lte {

using dsp::cf32;

std::array<std::uint8_t, 16> dci_to_bits(const Dci& dci) {
  std::array<std::uint8_t, 16> bits{};
  for (int l = 0; l < 14; ++l) {
    bits[l] = static_cast<std::uint8_t>((dci.center_active_mask >> l) & 1u);
  }
  const auto mcs = static_cast<std::uint8_t>(dci.mcs);
  bits[14] = (mcs >> 1) & 1u;
  bits[15] = mcs & 1u;
  return bits;
}

std::optional<Dci> bits_to_dci(std::span<const std::uint8_t> bits) {
  assert(bits.size() >= 16);
  Dci dci;
  dci.center_active_mask = 0;
  for (int l = 0; l < 14; ++l) {
    dci.center_active_mask = static_cast<std::uint16_t>(
        dci.center_active_mask | (static_cast<std::uint16_t>(bits[l] & 1u)
                                  << l));
  }
  const std::uint8_t mcs =
      static_cast<std::uint8_t>((bits[14] << 1) | bits[15]);
  if (mcs > 2) return std::nullopt;
  dci.mcs = static_cast<Modulation>(mcs);
  return dci;
}

std::vector<std::size_t> pdcch_subcarriers(const CellConfig& cfg) {
  const std::size_t v_shift = cfg.cell_id() % 6;
  std::vector<std::size_t> out;
  out.reserve(cfg.n_subcarriers());
  for (std::size_t k = 0; k < cfg.n_subcarriers(); ++k) {
    if ((k % 6) == (v_shift % 6)) continue;  // CRS at l = 0, v = 0
    out.push_back(k);
  }
  return out;
}

namespace {
constexpr std::size_t kDciCodeword = 16 + 16;  // DCI + CRC16
}

void map_pdcch(const CellConfig& cfg, const Dci& dci, ResourceGrid& grid) {
  const auto codeword = dsp::attach_crc16(dci_to_bits(dci));
  std::size_t cursor = 0;
  for (const std::size_t k : pdcch_subcarriers(cfg)) {
    const std::uint8_t pair[2] = {codeword[cursor % kDciCodeword],
                                  codeword[(cursor + 1) % kDciCodeword]};
    cursor += 2;
    grid.at(kPdcchSymbolIndex, k) =
        qam_modulate(std::span<const std::uint8_t>(pair, 2),
                     Modulation::kQpsk)[0];
    grid.type_at(kPdcchSymbolIndex, k) = ReType::kPdcch;
  }
}

std::optional<Dci> decode_pdcch(const CellConfig& cfg,
                                const ResourceGrid& equalized_grid) {
  std::array<double, kDciCodeword> acc{};
  std::size_t cursor = 0;
  for (const std::size_t k : pdcch_subcarriers(cfg)) {
    const cf32 v = equalized_grid.at(kPdcchSymbolIndex, k);
    acc[cursor % kDciCodeword] += v.real();
    acc[(cursor + 1) % kDciCodeword] += v.imag();
    cursor += 2;
  }
  std::vector<std::uint8_t> bits(kDciCodeword);
  for (std::size_t i = 0; i < kDciCodeword; ++i) {
    bits[i] = acc[i] < 0.0 ? 1 : 0;
  }
  if (!dsp::check_crc16(bits)) return std::nullopt;
  return bits_to_dci(bits);
}

std::vector<ReType> derive_re_types(const CellConfig& cfg,
                                    std::size_t subframe_index,
                                    const Dci& dci, bool pbch_enabled) {
  const std::size_t n_sc = cfg.n_subcarriers();
  std::vector<ReType> types(kSymbolsPerSubframe * n_sc, ReType::kData);
  auto at = [&](std::size_t l, std::size_t k) -> ReType& {
    return types[l * n_sc + k];
  };

  // Sync signals + guards.
  if (is_sync_subframe(subframe_index)) {
    const std::size_t first = sync_band_first_subcarrier(cfg);
    for (std::size_t n = 0; n < kSyncSubcarriers; ++n) {
      at(kPssSymbolIndex, first + n) = ReType::kPss;
      at(kSssSymbolIndex, first + n) = ReType::kSss;
    }
    for (std::size_t g = 1; g <= 5; ++g) {
      for (const std::size_t l : {kPssSymbolIndex, kSssSymbolIndex}) {
        if (first >= g) at(l, first - g) = ReType::kUnused;
        if (first + kSyncSubcarriers + g - 1 < n_sc) {
          at(l, first + kSyncSubcarriers + g - 1) = ReType::kUnused;
        }
      }
    }
  }

  // CRS lattice.
  for (const std::size_t l : kCrsSymbolIndices) {
    for (const std::size_t k : crs_subcarriers(cfg, l)) {
      at(l, k) = ReType::kCrs;
    }
  }

  // PBCH region.
  if (pbch_enabled && subframe_index % kSubframesPerFrame == 0) {
    for (const std::size_t l : kPbchSymbolIndices) {
      for (const std::size_t k : pbch_subcarriers(cfg, l)) {
        at(l, k) = ReType::kPbch;
      }
    }
  }

  // Control region.
  for (const std::size_t k : pdcch_subcarriers(cfg)) {
    at(kPdcchSymbolIndex, k) = ReType::kPdcch;
  }

  // Center-RB scheduling gaps (skipped entirely at 1.4 MHz, matching the
  // eNodeB).
  if (n_sc > 72) {
    const std::size_t center_first = n_sc / 2 - 36;
    for (std::size_t l = 0; l < kSymbolsPerSubframe; ++l) {
      if (dci.center_active(l)) continue;
      for (std::size_t i = 0; i < 72; ++i) {
        const std::size_t k = center_first + i;
        if (at(l, k) == ReType::kData) at(l, k) = ReType::kUnused;
      }
    }
  }
  return types;
}

}  // namespace lscatter::lte
