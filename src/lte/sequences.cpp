#include "lte/sequences.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;
using dsp::kPi;

cvec zadoff_chu(std::uint32_t root, std::size_t n) {
  assert(n > 0);
  cvec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Argument computed modulo 2n to avoid precision loss for large k.
    const std::size_t q = (root * k * (k + 1)) % (2 * n);
    const double ang = -kPi * static_cast<double>(q) / static_cast<double>(n);
    out[k] = cf32{static_cast<float>(std::cos(ang)),
                  static_cast<float>(std::sin(ang))};
  }
  return out;
}

cvec pss_sequence(std::uint8_t n_id_2) {
  assert(n_id_2 < 3);
  static constexpr std::array<std::uint32_t, 3> kRoots = {25, 29, 34};
  const std::uint32_t u = kRoots[n_id_2];
  cvec d(62);
  for (std::size_t n = 0; n < 31; ++n) {
    const std::size_t q = (u * n * (n + 1)) % 126;
    const double ang = -kPi * static_cast<double>(q) / 63.0;
    d[n] = cf32{static_cast<float>(std::cos(ang)),
                static_cast<float>(std::sin(ang))};
  }
  for (std::size_t n = 31; n < 62; ++n) {
    const std::size_t q = (u * (n + 1) * (n + 2)) % 126;
    const double ang = -kPi * static_cast<double>(q) / 63.0;
    d[n] = cf32{static_cast<float>(std::cos(ang)),
                static_cast<float>(std::sin(ang))};
  }
  return d;
}

namespace {

// Generic length-31 m-sequence: x(i+5) = sum of selected taps mod 2,
// x(0..4) = 0,0,0,0,1; returns s̃(i) = 1 - 2 x(i).
std::array<int, 31> m_sequence(std::array<int, 5> tap_indices,
                               std::size_t n_taps) {
  std::array<int, 31> x{};
  x[4] = 1;
  for (std::size_t i = 0; i + 5 < 31; ++i) {
    int v = 0;
    for (std::size_t t = 0; t < n_taps; ++t) v += x[i + tap_indices[t]];
    x[i + 5] = v % 2;
  }
  std::array<int, 31> s{};
  for (std::size_t i = 0; i < 31; ++i) s[i] = 1 - 2 * x[i];
  return s;
}

}  // namespace

cvec sss_sequence(std::uint16_t n_id_1, std::uint8_t n_id_2, bool subframe5) {
  assert(n_id_1 < 168);
  assert(n_id_2 < 3);

  // m0/m1 derivation, TS 36.211 Table 6.11.2.1-1 formulae.
  const int q_prime = n_id_1 / 30;
  const int q = (n_id_1 + q_prime * (q_prime + 1) / 2) / 30;
  const int m_prime = n_id_1 + q * (q + 1) / 2;
  const int m0 = m_prime % 31;
  const int m1 = (m0 + m_prime / 31 + 1) % 31;

  // s̃: x5 + x2 + 1  -> x(i+5) = x(i+2) + x(i)
  static const auto s_tilde = m_sequence({0, 2, 0, 0, 0}, 2);
  // c̃: x5 + x3 + 1  -> x(i+5) = x(i+3) + x(i)
  static const auto c_tilde = m_sequence({0, 3, 0, 0, 0}, 2);
  // z̃: x5 + x4 + x2 + x + 1 -> x(i+5) = x(i+4)+x(i+2)+x(i+1)+x(i)
  static const auto z_tilde = m_sequence({0, 1, 2, 4, 0}, 4);

  auto s = [&](int m, int n) { return s_tilde[(n + m) % 31]; };
  auto c0 = [&](int n) { return c_tilde[(n + n_id_2) % 31]; };
  auto c1 = [&](int n) { return c_tilde[(n + n_id_2 + 3) % 31]; };
  auto z1 = [&](int m, int n) { return z_tilde[(n + (m % 8)) % 31]; };

  cvec d(62);
  for (int n = 0; n < 31; ++n) {
    int even = 0;
    int odd = 0;
    if (!subframe5) {
      even = s(m0, n) * c0(n);
      odd = s(m1, n) * c1(n) * z1(m0, n);
    } else {
      even = s(m1, n) * c0(n);
      odd = s(m0, n) * c1(n) * z1(m1, n);
    }
    d[2 * n] = cf32{static_cast<float>(even), 0.0f};
    d[2 * n + 1] = cf32{static_cast<float>(odd), 0.0f};
  }
  return d;
}

std::vector<std::uint8_t> gold_sequence(std::uint32_t c_init,
                                        std::size_t len) {
  constexpr std::size_t kNc = 1600;
  const std::size_t total = kNc + len + 31;

  std::vector<std::uint8_t> x1(total, 0);
  std::vector<std::uint8_t> x2(total, 0);
  x1[0] = 1;
  for (std::size_t i = 0; i < 31; ++i)
    x2[i] = static_cast<std::uint8_t>((c_init >> i) & 1u);

  for (std::size_t n = 0; n + 31 < total; ++n) {
    x1[n + 31] = static_cast<std::uint8_t>((x1[n + 3] + x1[n]) & 1u);
    x2[n + 31] = static_cast<std::uint8_t>(
        (x2[n + 3] + x2[n + 2] + x2[n + 1] + x2[n]) & 1u);
  }

  std::vector<std::uint8_t> c(len);
  for (std::size_t n = 0; n < len; ++n)
    c[n] = static_cast<std::uint8_t>((x1[n + kNc] + x2[n + kNc]) & 1u);
  return c;
}

cvec crs_values(std::uint16_t cell_id, std::size_t ns, std::size_t l) {
  assert(ns < 20);
  constexpr std::uint32_t kNcp = 1;  // normal CP
  const std::uint32_t c_init = static_cast<std::uint32_t>(
      (1u << 10) * (7 * (ns + 1) + l + 1) * (2u * cell_id + 1) +
      2u * cell_id + kNcp);
  const std::size_t n_vals = 2 * kMaxRb;
  const auto c = gold_sequence(c_init, 2 * n_vals);
  cvec r(n_vals);
  const float inv_sqrt2 = static_cast<float>(1.0 / std::sqrt(2.0));
  for (std::size_t m = 0; m < n_vals; ++m) {
    r[m] = cf32{inv_sqrt2 * (1.0f - 2.0f * c[2 * m]),
                inv_sqrt2 * (1.0f - 2.0f * c[2 * m + 1])};
  }
  return r;
}

}  // namespace lscatter::lte
