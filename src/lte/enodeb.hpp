#pragma once
// eNodeB downlink transmitter: builds subframes (sync signals + CRS +
// CRC-protected transport blocks on the data REs) and OFDM-modulates them.
//
// This is the simulation stand-in for the paper's USRP B210 running srsLTE:
// the tag and UE only ever see the emitted waveform, whose structure this
// class reproduces (continuous occupancy, PSS every 5 ms, CRS lattice,
// QAM-filled PDSCH).

#include <cstdint>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "lte/cell_config.hpp"
#include "lte/ofdm.hpp"
#include "lte/pdcch.hpp"
#include "lte/qam.hpp"
#include "lte/resource_grid.hpp"

namespace lscatter::lte {

/// Everything the eNodeB emitted for one subframe. The grid and payload are
/// kept so tests and the UE-side "genie" mode can compare against truth.
struct SubframeTx {
  std::size_t subframe_index = 0;  // running counter; %10 = position in frame
  ResourceGrid grid;
  dsp::cvec samples;                        // unit mean power
  std::vector<std::uint8_t> payload_bits;   // transport block before CRC
  Dci dci;                                  // the scheduling announced
};

class Enodeb {
 public:
  struct Config {
    CellConfig cell;
    Modulation modulation = Modulation::kQam16;
    dsp::Dbm tx_power_dbm{10.0};  // paper: USRP default 10 dBm, PA 40 dBm

    /// Power boost applied to PSS/SSS REs (linear amplitude derived from
    /// this dB figure). Real deployments boost sync signals; this is also
    /// what gives the tag's envelope detector its contrast.
    dsp::Db sync_boost_db{6.0};

    /// Probability that the central 6 RBs carry PDSCH in any given data
    /// symbol. Models scheduler behaviour; < 1 increases the PSS contrast
    /// seen by the tag's narrowband envelope detector.
    double center_rb_activity = 0.25;

    /// Broadcast the MIB on PBCH in subframe 0 of every frame.
    bool enable_pbch = true;

    /// Announce each subframe's scheduling (center-RB mask + MCS) on the
    /// PDCCH-lite control region in symbol 0.
    bool enable_pdcch = true;

    std::uint64_t seed = 1;
  };

  explicit Enodeb(const Config& config);

  /// Generate the next subframe and advance the internal counter.
  SubframeTx next_subframe();

  /// Generate a specific subframe index without advancing internal state
  /// (payload is still drawn from the internal RNG).
  SubframeTx make_subframe(std::size_t subframe_index);

  const CellConfig& cell() const { return config_.cell; }
  const Config& config() const { return config_; }

  /// Number of payload bits (before CRC-24A) a subframe carries.
  std::size_t payload_bits_per_subframe(std::size_t subframe_index) const;

  /// Number of kData REs in a subframe.
  std::size_t data_res_per_subframe(std::size_t subframe_index) const;

 private:
  Config config_;
  OfdmModulator modulator_;
  dsp::Rng rng_;
  std::size_t next_index_ = 0;
};

}  // namespace lscatter::lte
