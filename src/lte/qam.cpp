#include "lte/qam.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 2;
}

const char* to_string(Modulation m) {
  switch (m) {
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16QAM";
    case Modulation::kQam64: return "64QAM";
  }
  return "?";
}

namespace {

constexpr double kSqrt2 = 1.41421356237309515;
constexpr double kSqrt10 = 3.16227766016837952;
constexpr double kSqrt42 = 6.48074069840786023;

inline float axis16(std::uint8_t b_hi, std::uint8_t b_lo) {
  // TS 36.211 Table 7.1.3-1: value in {1, 3} with sign from b_hi.
  const double mag = 2.0 - (1.0 - 2.0 * b_lo);
  return static_cast<float>((1.0 - 2.0 * b_hi) * mag / kSqrt10);
}

inline float axis64(std::uint8_t b_hi, std::uint8_t b_mid,
                    std::uint8_t b_lo) {
  // TS 36.211 Table 7.1.4-1: value in {1, 3, 5, 7}.
  const double mag = 4.0 - (1.0 - 2.0 * b_mid) * (2.0 - (1.0 - 2.0 * b_lo));
  return static_cast<float>((1.0 - 2.0 * b_hi) * mag / kSqrt42);
}

}  // namespace

cvec qam_modulate(std::span<const std::uint8_t> bits, Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  assert(bits.size() % bps == 0);
  const std::size_t n = bits.size() / bps;
  cvec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* b = &bits[i * bps];
    switch (m) {
      case Modulation::kQpsk:
        out[i] = cf32{static_cast<float>((1.0 - 2.0 * b[0]) / kSqrt2),
                      static_cast<float>((1.0 - 2.0 * b[1]) / kSqrt2)};
        break;
      case Modulation::kQam16:
        out[i] = cf32{axis16(b[0], b[2]), axis16(b[1], b[3])};
        break;
      case Modulation::kQam64:
        out[i] = cf32{axis64(b[0], b[2], b[4]), axis64(b[1], b[3], b[5])};
        break;
    }
  }
  return out;
}

namespace {

inline void demap_axis16(float v, std::uint8_t& b_hi, std::uint8_t& b_lo) {
  b_hi = v < 0.0f ? 1 : 0;
  b_lo = std::abs(v) > static_cast<float>(2.0 / kSqrt10) ? 1 : 0;
}

inline void demap_axis64(float v, std::uint8_t& b_hi, std::uint8_t& b_mid,
                         std::uint8_t& b_lo) {
  b_hi = v < 0.0f ? 1 : 0;
  const float a = std::abs(v);
  b_mid = a > static_cast<float>(4.0 / kSqrt42) ? 1 : 0;
  // Inner pair {1,3}: b_lo=1 selects the outer of the pair on each side of 4.
  const float dist_from_4 = std::abs(a - static_cast<float>(4.0 / kSqrt42));
  b_lo = dist_from_4 > static_cast<float>(2.0 / kSqrt42) ? 1 : 0;
}

}  // namespace

std::vector<std::uint8_t> qam_demodulate(std::span<const cf32> symbols,
                                         Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  std::vector<std::uint8_t> bits(symbols.size() * bps);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    std::uint8_t* b = &bits[i * bps];
    const cf32 s = symbols[i];
    switch (m) {
      case Modulation::kQpsk:
        b[0] = s.real() < 0.0f ? 1 : 0;
        b[1] = s.imag() < 0.0f ? 1 : 0;
        break;
      case Modulation::kQam16:
        demap_axis16(s.real(), b[0], b[2]);
        demap_axis16(s.imag(), b[1], b[3]);
        break;
      case Modulation::kQam64:
        demap_axis64(s.real(), b[0], b[2], b[4]);
        demap_axis64(s.imag(), b[1], b[3], b[5]);
        break;
    }
  }
  return bits;
}

double evm_rms(std::span<const cf32> received,
               std::span<const cf32> reference) {
  assert(received.size() == reference.size());
  if (received.empty()) return 0.0;
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    err += std::norm(received[i] - reference[i]);
    ref += std::norm(reference[i]);
  }
  return ref > 0.0 ? std::sqrt(err / ref) : 0.0;
}

}  // namespace lscatter::lte
