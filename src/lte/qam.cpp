#include "lte/qam.hpp"

#include <cassert>
#include <cmath>

#include "dsp/simd.hpp"

namespace lscatter::lte {

using dsp::cf32;
using dsp::cvec;

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 2;
}

const char* to_string(Modulation m) {
  switch (m) {
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16QAM";
    case Modulation::kQam64: return "64QAM";
  }
  return "?";
}

namespace {

constexpr double kSqrt2 = 1.41421356237309515;
constexpr double kSqrt10 = 3.16227766016837952;
constexpr double kSqrt42 = 6.48074069840786023;

inline float axis16(std::uint8_t b_hi, std::uint8_t b_lo) {
  // TS 36.211 Table 7.1.3-1: value in {1, 3} with sign from b_hi.
  const double mag = 2.0 - (1.0 - 2.0 * b_lo);
  return static_cast<float>((1.0 - 2.0 * b_hi) * mag / kSqrt10);
}

inline float axis64(std::uint8_t b_hi, std::uint8_t b_mid,
                    std::uint8_t b_lo) {
  // TS 36.211 Table 7.1.4-1: value in {1, 3, 5, 7}.
  const double mag = 4.0 - (1.0 - 2.0 * b_mid) * (2.0 - (1.0 - 2.0 * b_lo));
  return static_cast<float>((1.0 - 2.0 * b_hi) * mag / kSqrt42);
}

/// Per-axis constellation LUTs, built once with the exact axis16/axis64
/// formulas so LUT mapping is bit-identical to the closed forms. Indexed
/// by the axis bits packed MSB-first ((b_hi<<1)|b_lo etc.).
struct QamLuts {
  float qpsk[2];
  float ax16[4];
  float ax64[8];
};

const QamLuts& qam_luts() {
  static const QamLuts t = [] {
    QamLuts l{};
    for (std::uint8_t b = 0; b < 2; ++b) {
      l.qpsk[b] = static_cast<float>((1.0 - 2.0 * b) / kSqrt2);
    }
    for (std::uint8_t hi = 0; hi < 2; ++hi) {
      for (std::uint8_t lo = 0; lo < 2; ++lo) {
        l.ax16[(hi << 1) | lo] = axis16(hi, lo);
        for (std::uint8_t mid = 0; mid < 2; ++mid) {
          l.ax64[(hi << 2) | (mid << 1) | lo] = axis64(hi, mid, lo);
        }
      }
    }
    return l;
  }();
  return t;
}

}  // namespace

cvec qam_modulate(std::span<const std::uint8_t> bits, Modulation m) {
  cvec out(bits.size() / bits_per_symbol(m));
  qam_modulate_into(bits, m, out);
  return out;
}

void qam_modulate_into(std::span<const std::uint8_t> bits, Modulation m,
                       std::span<cf32> out) {
  const std::size_t bps = bits_per_symbol(m);
  assert(bits.size() % bps == 0);
  assert(out.size() == bits.size() / bps);
  const std::size_t n = out.size();
  const QamLuts& lut = qam_luts();
  // Bits are 0/1 by contract; the & 1 below makes a stray byte select a
  // wrong constellation point instead of reading past the table.
  switch (m) {
    case Modulation::kQpsk:
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t* b = &bits[i * 2];
        out[i] = cf32{lut.qpsk[b[0] & 1], lut.qpsk[b[1] & 1]};
      }
      break;
    case Modulation::kQam16:
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t* b = &bits[i * 4];
        out[i] = cf32{lut.ax16[((b[0] & 1) << 1) | (b[2] & 1)],
                      lut.ax16[((b[1] & 1) << 1) | (b[3] & 1)]};
      }
      break;
    case Modulation::kQam64:
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t* b = &bits[i * 6];
        out[i] = cf32{
            lut.ax64[((b[0] & 1) << 2) | ((b[2] & 1) << 1) | (b[4] & 1)],
            lut.ax64[((b[1] & 1) << 2) | ((b[3] & 1) << 1) | (b[5] & 1)]};
      }
      break;
  }
}

std::vector<std::uint8_t> qam_demodulate(std::span<const cf32> symbols,
                                         Modulation m) {
  std::vector<std::uint8_t> bits(symbols.size() * bits_per_symbol(m));
  qam_demodulate_into(symbols, m, bits);
  return bits;
}

void qam_demodulate_into(std::span<const cf32> symbols, Modulation m,
                         std::span<std::uint8_t> bits) {
  assert(bits.size() == symbols.size() * bits_per_symbol(m));
  // The demap thresholds live beside the kernels (dsp/simd_tables.hpp)
  // and mirror the constellation constants above; every tier is
  // bit-exact, so which one runs is unobservable here.
  const dsp::SimdKernels& k = dsp::simd_kernels();
  switch (m) {
    case Modulation::kQpsk:
      k.qam_demap_qpsk(symbols.data(), symbols.size(), bits.data());
      break;
    case Modulation::kQam16:
      k.qam_demap16(symbols.data(), symbols.size(), bits.data());
      break;
    case Modulation::kQam64:
      k.qam_demap64(symbols.data(), symbols.size(), bits.data());
      break;
  }
}

double evm_rms(std::span<const cf32> received,
               std::span<const cf32> reference) {
  assert(received.size() == reference.size());
  if (received.empty()) return 0.0;
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    err += std::norm(received[i] - reference[i]);
    ref += std::norm(reference[i]);
  }
  return ref > 0.0 ? std::sqrt(err / ref) : 0.0;
}

}  // namespace lscatter::lte
