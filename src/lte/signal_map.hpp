#pragma once
// Placement of physical signals into a subframe grid:
//   - PSS: last symbol of slot 0 / slot 10 (subframes 0 and 5, symbol 6)
//   - SSS: the symbol before the PSS (symbol 5)
//   - CRS: antenna port 0, symbols {0, 4} of each slot
// These are the positions the LScatter tag must avoid and the reference
// signals the UE uses for channel estimation / phase-offset elimination.

#include <cstddef>
#include <vector>

#include "lte/cell_config.hpp"
#include "lte/resource_grid.hpp"

namespace lscatter::lte {

/// True iff this subframe carries PSS/SSS (subframe 0 or 5).
bool is_sync_subframe(std::size_t subframe_index);

/// Subframe-symbol indices (0..13) holding PSS / SSS.
inline constexpr std::size_t kPssSymbolIndex = 6;
inline constexpr std::size_t kSssSymbolIndex = 5;

/// CRS symbol indices within a subframe (port 0, normal CP).
inline constexpr std::array<std::size_t, 4> kCrsSymbolIndices = {0, 4, 7, 11};

/// First subcarrier of the 62-wide central sync band.
std::size_t sync_band_first_subcarrier(const CellConfig& cfg);

/// Write PSS + SSS into a sync subframe's grid (also tags RE types).
/// `amplitude` scales the sequences (PSS power boost).
void map_sync_signals(const CellConfig& cfg, std::size_t subframe_index,
                      ResourceGrid& grid, float amplitude = 1.0f);

/// Write port-0 CRS into all four CRS symbols of subframe `subframe_index`
/// (slot numbers 2*sf and 2*sf+1 select the Gold sequence).
void map_crs(const CellConfig& cfg, std::size_t subframe_index,
             ResourceGrid& grid);

/// Subcarrier indices of the CRS in subframe-symbol `l` (l must be one of
/// kCrsSymbolIndices).
std::vector<std::size_t> crs_subcarriers(const CellConfig& cfg,
                                         std::size_t l);

/// CRS values (in subcarrier order matching crs_subcarriers) for subframe
/// symbol `l` of subframe `subframe_index`.
// lint-ok: into — memoized per (subframe, symbol) by the callers
dsp::cvec crs_values_for_symbol(const CellConfig& cfg,
                                std::size_t subframe_index, std::size_t l);

}  // namespace lscatter::lte
