#pragma once
// Process-wide metric registry: named counters, gauges, and log-bucketed
// histograms (naming scheme `subsystem.stage.metric`; see DESIGN.md §7).
//
// Hot-path cost model: the instrumentation macros in obs.hpp resolve a
// metric's name to a stable pointer once (function-local static), so every
// subsequent hit is a single relaxed atomic RMW — safe from any thread,
// and cheap enough for per-symbol call sites. Registration itself takes a
// mutex but only runs on first use of each call site.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_safety.hpp"
#include "dsp/stats.hpp"
#include "obs/sharded.hpp"

namespace lscatter::obs {

class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double, plus a monotonic high-water-mark update.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Raise to `v` if it exceeds the current value (high-water mark).
  void update_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram for positive values spanning many decades
/// (typical use: stage latencies in seconds). `kBucketsPerDecade` buckets
/// per power of ten between 1e-10 and 1e11; values at or below zero land
/// in a dedicated underflow bucket. Records are a handful of relaxed
/// atomics; summaries (quantiles) are computed lazily by the exporter.
///
/// The header atomics and the bucket array are cacheline-aligned (and
/// the class alignment rounds the allocation to a 64-byte multiple), so
/// a hammered histogram never false-shares with whatever metric the
/// allocator placed next to it.
class alignas(64) Histogram {
 public:
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kMinDecade = -10;
  static constexpr int kMaxDecade = 11;
  static constexpr std::size_t kNumBuckets = static_cast<std::size_t>(
      (kMaxDecade - kMinDecade) * kBucketsPerDecade);

  void record(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  std::uint64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }

  /// Bucket `i` covers (lower_edge(i), upper_edge(i)].
  static double lower_edge(std::size_t i);
  static double upper_edge(std::size_t i);
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate quantile (p in [0, 1]) from the bucket counts with
  /// geometric interpolation; 0 when empty. Exact for min/max endpoints.
  double quantile(double p) const;

  /// Same estimate through a caller-owned scratch buffer, so repeated
  /// sampling (obs/snapshot.hpp ticks every N drops for a whole replayed
  /// day) stays allocation-free once the scratch has grown to the
  /// non-empty-bucket count (<= kNumBuckets + 1).
  double quantile(double p, std::vector<dsp::BucketSpan>& scratch) const;

  void reset();

 private:
  static std::size_t bucket_index(double v);

  // Hot atomics on their own cache line, bucket array on the next:
  // every record() touches the header block plus one bucket, and
  // keeping both 64-byte aligned stops the legacy unsharded path from
  // false-sharing with neighboring heap allocations.
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_minmax_{false};
  std::atomic<std::uint64_t> underflow_{0};
  alignas(64) std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// Name -> metric map. Metric objects live for the process lifetime and
/// their addresses are stable, so call sites may cache references.
/// Every public method takes the registry mutex itself, so all are
/// annotated LSCATTER_EXCLUDES(mutex_): calling one while already
/// holding the registry lock is a self-deadlock, rejected at compile
/// time on the clang thread-safety lane. The returned metric references
/// outlive the lock on purpose — metric objects are never destroyed and
/// are internally atomic, so caching them is the intended hot-path use.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name) LSCATTER_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) LSCATTER_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) LSCATTER_EXCLUDES(mutex_);

  /// Thread-sharded counter (obs/sharded.hpp) for call sites hit
  /// concurrently by many workers. Reported under the same namespace as
  /// plain counters, pre-merged; a name should be sharded or plain, not
  /// both (if both exist, reports show their sum).
  ShardedCounter& sharded_counter(const std::string& name)
      LSCATTER_EXCLUDES(mutex_);

  /// Snapshot of registered names, sorted (for deterministic reports).
  /// counter_names() is the union of plain and sharded counters.
  std::vector<std::string> counter_names() const LSCATTER_EXCLUDES(mutex_);
  std::vector<std::string> gauge_names() const LSCATTER_EXCLUDES(mutex_);
  std::vector<std::string> histogram_names() const
      LSCATTER_EXCLUDES(mutex_);

  /// Lookup without creating; nullptr when absent. find_counter sees
  /// only plain counters — exporters read counter_value(), which merges
  /// the sharded cells.
  const Counter* find_counter(const std::string& name) const
      LSCATTER_EXCLUDES(mutex_);
  const Gauge* find_gauge(const std::string& name) const
      LSCATTER_EXCLUDES(mutex_);
  const Histogram* find_histogram(const std::string& name) const
      LSCATTER_EXCLUDES(mutex_);
  const ShardedCounter* find_sharded_counter(const std::string& name) const
      LSCATTER_EXCLUDES(mutex_);

  /// Report-side counter read: plain value plus the merged sharded sum
  /// under the same name (0 when neither exists).
  std::uint64_t counter_value(const std::string& name) const
      LSCATTER_EXCLUDES(mutex_);

  /// Zero every metric (tests / multi-phase benches). Does not
  /// unregister: cached call-site references stay valid.
  void reset_all() LSCATTER_EXCLUDES(mutex_);

 private:
  Registry() = default;

  mutable lscatter::Mutex mutex_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LSCATTER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      LSCATTER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      LSCATTER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<ShardedCounter>> sharded_counters_
      LSCATTER_GUARDED_BY(mutex_);
};

}  // namespace lscatter::obs
