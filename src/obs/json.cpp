#include "obs/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace lscatter::obs::json {

Value& Object::operator[](const std::string& key) {
  auto it = members_.find(key);
  if (it == members_.end()) {
    it = members_.emplace(key, std::make_shared<Value>()).first;
    order_.push_back(key);
  }
  return *it->second;
}

const Value* Object::find(const std::string& key) const {
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : it->second.get();
}

const Array& Value::as_array() const {
  assert(kind_ == Kind::kArray && arr_);
  return *arr_;
}

Array& Value::as_array() {
  assert(kind_ == Kind::kArray && arr_);
  return *arr_;
}

const Object& Value::as_object() const {
  assert(kind_ == Kind::kObject && obj_);
  return *obj_;
}

Object& Value::as_object() {
  assert(kind_ == Kind::kObject && obj_);
  return *obj_;
}

Object& Value::make_object() {
  if (kind_ != Kind::kObject) {
    kind_ = Kind::kObject;
    obj_ = std::make_shared<Object>();
  }
  return *obj_;
}

Array& Value::make_array() {
  if (kind_ != Kind::kArray) {
    kind_ = Kind::kArray;
    arr_ = std::make_shared<Array>();
  }
  return *arr_;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void format_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan; reports treat null as "n/a"
    return;
  }
  // Integers (the common case: counters) print without a fraction.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Shortest representation that round-trips.
  for (int prec = 6; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    if (std::strtod(probe, nullptr) == d) {
      std::memcpy(buf, probe, sizeof(probe));
      break;
    }
  }
  out += buf;
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: format_number(out, v.as_number()); break;
    case Value::Kind::kString:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Value::Kind::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        dump_value(a[i], out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      const Object& o = v.as_object();
      if (o.size() == 0) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& key : o.keys()) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += escape(key);
        out += "\":";
        if (indent >= 0) out += ' ';
        dump_value(*o.find(key), out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

struct Parser {
  // Containers nest recursively; bound the depth so hostile input cannot
  // overflow the stack (reports nest a handful of levels).
  static constexpr int kMaxDepth = 256;

  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;
  int depth = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(
               static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    if (pos >= text.size()) {
      ok = false;
      return {};
    }
    const char c = text[pos];
    if (c == '{' || c == '[') {
      if (++depth > kMaxDepth) {
        ok = false;
        return {};
      }
      Value v = c == '{' ? parse_object() : parse_array();
      --depth;
      return v;
    }
    if (c == '"') return parse_string();
    if (literal("true")) return Value(true);
    if (literal("false")) return Value(false);
    if (literal("null")) return Value(nullptr);
    return parse_number();
  }

  Value parse_object() {
    Object obj;
    consume('{');
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (ok) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"') {
        ok = false;
        break;
      }
      const Value key = parse_string();
      if (!ok || !consume(':')) {
        ok = false;
        break;
      }
      obj[key.as_string()] = parse_value();
      if (consume(',')) continue;
      if (consume('}')) break;
      ok = false;
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    Array arr;
    consume('[');
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (ok) {
      arr.push_back(parse_value());
      if (consume(',')) continue;
      if (consume(']')) break;
      ok = false;
    }
    return Value(std::move(arr));
  }

  Value parse_string() {
    ++pos;  // opening quote
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        // RFC 8259: control characters must be escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          ok = false;
          return {};
        }
        out += c;
        continue;
      }
      if (pos >= text.size()) {
        ok = false;
        return {};
      }
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) {
            ok = false;
            return {};
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else { ok = false; return {}; }
          }
          // BMP-only (the writer never emits surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          ok = false;
          return {};
      }
    }
    if (pos >= text.size()) {
      ok = false;
      return {};
    }
    ++pos;  // closing quote
    return Value(std::move(out));
  }

  bool digits() {
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return pos > start;
  }

  Value parse_number() {
    // Strict RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos < text.size() && text[pos] == '0') {
      ++pos;  // a leading zero must stand alone
      if (pos < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ok = false;
        return {};
      }
    } else if (!digits()) {
      ok = false;
      return {};
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) {
        ok = false;
        return {};
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) {
        ok = false;
        return {};
      }
    }
    const std::string token(text.substr(start, pos - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

std::optional<Value> parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value();
  p.skip_ws();
  if (!p.ok || p.pos != text.size()) return std::nullopt;
  return v;
}

}  // namespace lscatter::obs::json
