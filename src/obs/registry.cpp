#include "obs/registry.hpp"

#include <cmath>
#include <limits>

#include "dsp/stats.hpp"

namespace lscatter::obs {

std::size_t Histogram::bucket_index(double v) {
  // log10(v) in [kMinDecade, kMaxDecade) maps linearly onto the buckets.
  const double l = std::log10(v);
  const double pos = (l - kMinDecade) * kBucketsPerDecade;
  if (pos < 0.0) return 0;
  const auto idx = static_cast<std::size_t>(pos);
  return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
}

double Histogram::lower_edge(std::size_t i) {
  return std::pow(10.0, kMinDecade + static_cast<double>(i) /
                                         kBucketsPerDecade);
}

double Histogram::upper_edge(std::size_t i) {
  return std::pow(10.0, kMinDecade + static_cast<double>(i + 1) /
                                         kBucketsPerDecade);
}

void Histogram::record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; relaxed is fine, sums are reporting
  // only.
  sum_.fetch_add(v, std::memory_order_relaxed);

  if (!has_minmax_.load(std::memory_order_relaxed)) {
    // Benign race: first writers may both initialize; the CAS loops below
    // converge to the true extrema regardless.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    has_minmax_.store(true, std::memory_order_relaxed);
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }

  if (!(v > 0.0)) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return has_minmax_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : std::numeric_limits<double>::infinity();
}

double Histogram::max() const {
  return has_minmax_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : -std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double p) const {
  std::vector<dsp::BucketSpan> spans;
  return quantile(p, spans);
}

double Histogram::quantile(double p,
                           std::vector<dsp::BucketSpan>& spans) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();

  // Build the non-empty bucket list, clamping the outermost edges to the
  // observed extrema so single-bucket histograms interpolate tightly,
  // then defer to the shared estimator in dsp/stats.
  spans.clear();
  const std::uint64_t uf = underflow();
  if (uf > 0) {
    spans.push_back({std::min(0.0, min()), 0.0, uf});
  }
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    spans.push_back({std::max(lower_edge(i), std::min(min(), upper_edge(i))),
                     std::min(upper_edge(i), max()), c});
  }
  return dsp::quantile_from_buckets(spans, p);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_minmax_.store(false, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* const registry = new Registry();  // never destroyed:
  // metrics may be hit from static destructors of client code.
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  lscatter::LockGuard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  lscatter::LockGuard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  lscatter::LockGuard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

ShardedCounter& Registry::sharded_counter(const std::string& name) {
  lscatter::LockGuard lock(mutex_);
  auto& slot = sharded_counters_[name];
  if (!slot) slot = std::make_unique<ShardedCounter>();
  return *slot;
}

namespace {
template <typename Map>
std::vector<std::string> keys_of(const Map& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(k);
  return out;  // std::map iterates sorted
}

template <typename Map>
auto find_in(const Map& m, const std::string& name) ->
    decltype(m.begin()->second.get()) {
  const auto it = m.find(name);
  return it == m.end() ? nullptr : it->second.get();
}
}  // namespace

std::vector<std::string> Registry::counter_names() const {
  lscatter::LockGuard lock(mutex_);
  if (sharded_counters_.empty()) return keys_of(counters_);
  // Sorted union: both maps iterate in order, so a merge keeps the
  // deterministic-report contract without a post-sort.
  std::vector<std::string> out;
  out.reserve(counters_.size() + sharded_counters_.size());
  auto a = counters_.begin();
  auto b = sharded_counters_.begin();
  while (a != counters_.end() || b != sharded_counters_.end()) {
    if (b == sharded_counters_.end() ||
        (a != counters_.end() && a->first < b->first)) {
      out.push_back((a++)->first);
    } else if (a == counters_.end() || b->first < a->first) {
      out.push_back((b++)->first);
    } else {  // same name registered both ways: one row, summed on read
      out.push_back((a++)->first);
      ++b;
    }
  }
  return out;
}

std::vector<std::string> Registry::gauge_names() const {
  lscatter::LockGuard lock(mutex_);
  return keys_of(gauges_);
}

std::vector<std::string> Registry::histogram_names() const {
  lscatter::LockGuard lock(mutex_);
  return keys_of(histograms_);
}

const Counter* Registry::find_counter(const std::string& name) const {
  lscatter::LockGuard lock(mutex_);
  return find_in(counters_, name);
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  lscatter::LockGuard lock(mutex_);
  return find_in(gauges_, name);
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  lscatter::LockGuard lock(mutex_);
  return find_in(histograms_, name);
}

const ShardedCounter* Registry::find_sharded_counter(
    const std::string& name) const {
  lscatter::LockGuard lock(mutex_);
  return find_in(sharded_counters_, name);
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  lscatter::LockGuard lock(mutex_);
  std::uint64_t v = 0;
  if (const Counter* c = find_in(counters_, name)) v += c->value();
  if (const ShardedCounter* s = find_in(sharded_counters_, name)) {
    v += s->value();
  }
  return v;
}

void Registry::reset_all() {
  lscatter::LockGuard lock(mutex_);
  for (auto& [k, c] : counters_) c->reset();
  for (auto& [k, g] : gauges_) g->reset();
  for (auto& [k, h] : histograms_) h->reset();
  for (auto& [k, s] : sharded_counters_) s->reset();
}

}  // namespace lscatter::obs
