#pragma once
// Run-report exporters: serialize the Registry and the SpanSink into a
// JSON document (schema in DESIGN.md §7) or a compact text table, plus
// the `LSCATTER_OBS_JSON=<path>` environment hook benches and examples
// call on exit.
//
// Report schema (top-level object):
//   schema          "lscatter.obs/1"
//   report          free-form run name
//   counters        { name: integer }
//   gauges          { name: number }
//   histograms      { name: {count,sum,mean,min,max,p50,p90,p99,
//                            underflow, buckets:[{le,count},...]} }
//   spans           { total, dropped,
//                     events:[{name,start_ns,dur_ns,depth,thread,seq,
//                              parent_seq|null},...] }
//   extra           caller-provided object (bench rows, config echo)

#include <optional>
#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace lscatter::obs {

struct ReportOptions {
  /// Cap on exported span events (most recent kept). 0 = omit spans.
  std::size_t max_span_events = 4096;

  /// Export only the non-empty buckets of each histogram.
  bool include_buckets = true;
};

/// Defaults overridden by `LSCATTER_OBS_SPANS=<n>` (span-event cap) and
/// `LSCATTER_OBS_BUCKETS=0|1` — how scripts/bench_baseline.sh shrinks the
/// committed baselines to names + quantiles without a recompile.
ReportOptions report_options_from_env();

/// Snapshot the process-wide registry + span sink into a JSON value.
/// `extra`, when provided, is attached verbatim under "extra".
json::Value build_report(const std::string& report_name,
                         const ReportOptions& options = {},
                         const json::Value* extra = nullptr);

/// Human-readable table of the same snapshot (counters, gauges, and
/// histogram p50/p90/p99) for stderr/stdout diagnostics.
std::string format_text_report(const std::string& report_name);

/// Serialize `report` to `path` (pretty-printed). False on I/O failure.
bool write_json_file(const json::Value& report, const std::string& path);

/// If `LSCATTER_OBS_JSON` is set (or `default_path` is non-empty), write
/// the current report there and return the path written. Benches call
/// this once after their workload. Returns nullopt when no destination
/// is configured or the write failed. Additionally honors
/// `LSCATTER_OBS_TRACE=<path>`: dumps the span sink as Chrome
/// trace-event JSON (obs/trace_export.hpp) — independent of whether a
/// report destination is configured — and the ReportOptions env knobs
/// above.
std::optional<std::string> write_report_from_env(
    const std::string& report_name, const std::string& default_path = "",
    const json::Value* extra = nullptr);

}  // namespace lscatter::obs
