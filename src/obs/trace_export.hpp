#pragma once
// Chrome trace-event / Perfetto export of the span ring buffer: every
// finished SpanEvent becomes a `"ph":"X"` complete event on a per-thread
// track, so a demodulation run opens directly in ui.perfetto.dev or
// chrome://tracing. Two sources are supported: the live SpanSink (used
// by the `LSCATTER_OBS_TRACE=<path>` hook in write_report_from_env) and
// the `spans.events` array of an already-written `lscatter.obs/1` report
// (used by `lscatter-obs trace`).
//
// Mapping (DESIGN.md §7/§12): trace `ts`/`dur` are microseconds
// (doubles, so ns precision survives), `pid` is always 1, `tid` is the
// dense span thread ordinal, and `seq`/`parent_seq`/`depth` ride along
// under `args` so the nesting can be rebuilt from the trace alone. A
// `"ph":"M"` thread_name metadata record labels each track. Spans that
// share a non-zero SpanEvent::flow_id additionally get Chrome flow
// events (`ph:"s"/"t"/"f"`, `cat:"flow"`, `id` = the flow id) so one
// cross-thread operation renders as a connected arc in Perfetto.

#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace lscatter::obs {

/// Build a trace-event JSON document from finished span events.
/// Events may be in any order; output is sorted by start time per the
/// trace-event convention.
json::Value trace_from_events(const std::vector<SpanEvent>& events);

/// Build a trace-event JSON document from the `spans.events` array of a
/// parsed `lscatter.obs/1` report. Returns nullopt when the report has
/// no spans section (e.g. written with max_span_events = 0).
std::optional<json::Value> trace_from_report(const json::Value& report);

/// Snapshot the live SpanSink and write a trace file to `path`.
/// False on I/O failure.
bool write_trace_file(const std::string& path);

}  // namespace lscatter::obs
