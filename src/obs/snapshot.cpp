#include "obs/snapshot.hpp"

#include <cstdio>

namespace lscatter::obs {

SnapshotSeries::SnapshotSeries() : SnapshotSeries(Options{}) {}

SnapshotSeries::SnapshotSeries(Options options)
    : every_(options.every == 0 ? 1 : options.every),
      capacity_(options.capacity == 0 ? 1 : options.capacity) {}

void SnapshotSeries::add_counter(const std::string& name) {
  Channel ch;
  ch.kind = Channel::Kind::kCounter;
  ch.label = name;
  ch.counter = &Registry::instance().counter(name);
  ch.sharded = &Registry::instance().sharded_counter(name);
  channels_.push_back(std::move(ch));
}

void SnapshotSeries::add_gauge(const std::string& name) {
  Channel ch;
  ch.kind = Channel::Kind::kGauge;
  ch.label = name;
  ch.gauge = &Registry::instance().gauge(name);
  channels_.push_back(std::move(ch));
}

void SnapshotSeries::add_histogram_quantile(const std::string& name,
                                            double q) {
  Channel ch;
  ch.kind = Channel::Kind::kHistQuantile;
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".p%g", q * 100.0);
  ch.label = name + suffix;
  ch.histogram = &Registry::instance().histogram(name);
  ch.q = q;
  channels_.push_back(std::move(ch));
}

void SnapshotSeries::add_histogram_count(const std::string& name) {
  Channel ch;
  ch.kind = Channel::Kind::kHistCount;
  ch.label = name + ".count";
  ch.histogram = &Registry::instance().histogram(name);
  channels_.push_back(std::move(ch));
}

double SnapshotSeries::read_channel(const Channel& ch) {
  switch (ch.kind) {
    case Channel::Kind::kCounter:
      return static_cast<double>(ch.counter->value() +
                                 ch.sharded->value());
    case Channel::Kind::kGauge:
      return ch.gauge->value();
    case Channel::Kind::kHistQuantile:
      return ch.histogram->quantile(ch.q, quantile_scratch_);
    case Channel::Kind::kHistCount:
      return static_cast<double>(ch.histogram->count());
  }
  return 0.0;
}

void SnapshotSeries::sample(double sim_time) {
  const std::size_t row_width = 1 + channels_.size();
  if (ring_.empty()) {
    // Warm-up: size the ring and quantile scratch once. Channels must
    // not be added after this point (rows would misalign).
    ring_.resize(capacity_ * row_width);
    quantile_scratch_.reserve(Histogram::kNumBuckets + 1);
  }
  double* row = ring_.data() + head_ * row_width;
  row[0] = sim_time;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    row[1 + c] = read_channel(channels_[c]);
  }
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++total_samples_;
}

json::Value SnapshotSeries::to_json() const {
  json::Value root;
  root["schema"] = json::Value("lscatter.obs-series/1");
  root["every"] = json::Value(static_cast<std::uint64_t>(every_));
  root["capacity"] = json::Value(static_cast<std::uint64_t>(capacity_));
  root["total_samples"] = json::Value(total_samples_);
  root["dropped"] = json::Value(dropped());

  json::Array channels;
  channels.reserve(channels_.size());
  for (const Channel& ch : channels_) {
    channels.push_back(json::Value(ch.label));
  }
  root["channels"] = json::Value(std::move(channels));

  const std::size_t row_width = 1 + channels_.size();
  const std::size_t oldest =
      size_ < capacity_ ? 0 : head_;  // ring start once wrapped
  json::Array times;
  times.reserve(size_);
  std::vector<json::Array> series(channels_.size());
  for (auto& s : series) s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t r = (oldest + i) % capacity_;
    const double* row = ring_.data() + r * row_width;
    times.push_back(json::Value(row[0]));
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      series[c].push_back(json::Value(row[1 + c]));
    }
  }
  root["t"] = json::Value(std::move(times));
  json::Array cols;
  cols.reserve(series.size());
  for (auto& s : series) cols.push_back(json::Value(std::move(s)));
  root["series"] = json::Value(std::move(cols));
  return root;
}

}  // namespace lscatter::obs
