#include "obs/span.hpp"

#include <atomic>

namespace lscatter::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanSink& SpanSink::instance() {
  static SpanSink* const sink = new SpanSink(kDefaultCapacity);
  return *sink;
}

void SpanSink::record(const SpanEvent& ev) {
  lscatter::LockGuard lock(mutex_);
  ++total_;
  if (ring_.empty()) return;
  ring_[head_] = ev;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

std::vector<SpanEvent> SpanSink::snapshot() const {
  lscatter::LockGuard lock(mutex_);
  std::vector<SpanEvent> out;
  out.reserve(size_);
  const std::size_t cap = ring_.size();
  const std::size_t first = (head_ + cap - size_) % (cap == 0 ? 1 : cap);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % cap]);
  }
  return out;
}

std::uint64_t SpanSink::total_recorded() const {
  lscatter::LockGuard lock(mutex_);
  return total_;
}

std::uint64_t SpanSink::dropped() const {
  lscatter::LockGuard lock(mutex_);
  return total_ - size_;
}

void SpanSink::clear() {
  lscatter::LockGuard lock(mutex_);
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

void SpanSink::set_capacity(std::size_t capacity) {
  lscatter::LockGuard lock(mutex_);
  ring_.assign(capacity, SpanEvent{});
  head_ = 0;
  size_ = 0;
}

namespace {

// Per-thread nesting state. seq is globally unique (atomic) so events
// from different threads never alias parents.
struct ThreadSpanState {
  std::uint32_t depth = 0;
  std::uint64_t open_seq = SpanEvent::kNoParent;  // innermost open span
  std::uint32_t thread_id = next_thread_id();

  static std::uint32_t next_thread_id() {
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }
};

ThreadSpanState& thread_state() {
  thread_local ThreadSpanState state;
  return state;
}

std::uint64_t next_seq() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// Declared in obs/sharded.hpp: the sharded-counter cells reuse the span
// layer's dense thread ordinal, so a worker's shard index and its trace
// track (SpanEvent::thread_id) agree.
std::uint32_t thread_ordinal() { return thread_state().thread_id; }

ScopedSpan::ScopedSpan(const char* name, Histogram* latency,
                       std::uint64_t flow_id)
    : name_(name),
      latency_(latency),
      start_ns_(now_ns()),
      seq_(next_seq()),
      parent_seq_(thread_state().open_seq),
      depth_(thread_state().depth),
      thread_id_(thread_state().thread_id),
      flow_id_(flow_id) {
  ThreadSpanState& st = thread_state();
  ++st.depth;
  st.open_seq = seq_;
}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t end = now_ns();
  ThreadSpanState& st = thread_state();
  --st.depth;
  st.open_seq = parent_seq_;

  SpanEvent ev;
  ev.name = name_;
  ev.start_ns = start_ns_;
  ev.duration_ns = end - start_ns_;
  ev.depth = depth_;
  ev.thread_id = thread_id_;
  ev.seq = seq_;
  ev.parent_seq = parent_seq_;
  ev.flow_id = flow_id_;
  SpanSink::instance().record(ev);

  if (latency_ != nullptr) {
    latency_->record(static_cast<double>(ev.duration_ns) * 1e-9);
  }
}

std::uint32_t ScopedSpan::current_depth() { return thread_state().depth; }

}  // namespace lscatter::obs
