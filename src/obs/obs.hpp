#pragma once
// Instrumentation facade. Every call site in the pipeline goes through
// these macros so the whole observability layer can be compiled out:
//
//   #define LSCATTER_OBS_ENABLED 0   (per TU, or -DLSCATTER_OBS=OFF via
//                                     CMake for the whole build)
//
// turns each macro into a no-op statement — no registry lookups, no
// clocks, no atomics; the optimizer erases them entirely. With the layer
// enabled (the default), each macro caches its metric pointer in a
// function-local static, so steady-state cost is one relaxed atomic RMW
// (counters/gauges) or two steady_clock reads (timers/spans).
//
// Metric names are string literals following `subsystem.stage.metric`
// (DESIGN.md §7). Spans additionally record into `<name>.seconds`.
//
// IMPORTANT: because each call site caches its metric by name, the name
// argument must be the same every time that line executes — pass a
// literal, never a ternary or a variable. Branch first, then call the
// macro with a fixed literal in each branch.

#ifndef LSCATTER_OBS_ENABLED
#define LSCATTER_OBS_ENABLED 1
#endif

#if LSCATTER_OBS_ENABLED

#include "obs/registry.hpp"
#include "obs/span.hpp"

#define LSCATTER_OBS_CONCAT_INNER(a, b) a##b
#define LSCATTER_OBS_CONCAT(a, b) LSCATTER_OBS_CONCAT_INNER(a, b)

/// Add `delta` to the named counter.
#define LSCATTER_OBS_COUNTER_ADD(name, delta)                             \
  do {                                                                    \
    static ::lscatter::obs::Counter& lscatter_obs_counter_ =              \
        ::lscatter::obs::Registry::instance().counter(name);              \
    lscatter_obs_counter_.add(                                            \
        static_cast<std::uint64_t>(delta));                               \
  } while (0)

/// Increment the named counter by one.
#define LSCATTER_OBS_COUNTER_INC(name) LSCATTER_OBS_COUNTER_ADD(name, 1)

/// Add `delta` to a thread-sharded counter (obs/sharded.hpp): the family
/// is resolved once per call site and the calling thread's cell pointer
/// is cached in a thread_local, so steady state is one TLS load plus one
/// *uncontended* relaxed RMW. Use instead of LSCATTER_OBS_COUNTER_ADD on
/// call sites hammered concurrently by worker pools.
#define LSCATTER_OBS_SHARDED_COUNTER_ADD(name, delta)                     \
  do {                                                                    \
    static ::lscatter::obs::ShardedCounter& lscatter_obs_sharded_ =       \
        ::lscatter::obs::Registry::instance().sharded_counter(name);      \
    thread_local std::atomic<std::uint64_t>* const                        \
        lscatter_obs_sharded_cell_ = &lscatter_obs_sharded_.cell();       \
    lscatter_obs_sharded_cell_->fetch_add(                                \
        static_cast<std::uint64_t>(delta), std::memory_order_relaxed);    \
  } while (0)

/// Increment a thread-sharded counter by one.
#define LSCATTER_OBS_SHARDED_COUNTER_INC(name) \
  LSCATTER_OBS_SHARDED_COUNTER_ADD(name, 1)

/// Set the named gauge to `value` (last write wins).
#define LSCATTER_OBS_GAUGE_SET(name, value)                               \
  do {                                                                    \
    static ::lscatter::obs::Gauge& lscatter_obs_gauge_ =                  \
        ::lscatter::obs::Registry::instance().gauge(name);                \
    lscatter_obs_gauge_.set(static_cast<double>(value));                  \
  } while (0)

/// Raise the named gauge to `value` if higher (high-water mark).
#define LSCATTER_OBS_GAUGE_MAX(name, value)                               \
  do {                                                                    \
    static ::lscatter::obs::Gauge& lscatter_obs_gauge_ =                  \
        ::lscatter::obs::Registry::instance().gauge(name);                \
    lscatter_obs_gauge_.update_max(static_cast<double>(value));           \
  } while (0)

/// Record `value` into the named histogram.
#define LSCATTER_OBS_HISTOGRAM_RECORD(name, value)                        \
  do {                                                                    \
    static ::lscatter::obs::Histogram& lscatter_obs_histogram_ =          \
        ::lscatter::obs::Registry::instance().histogram(name);            \
    lscatter_obs_histogram_.record(static_cast<double>(value));           \
  } while (0)

/// Time the rest of the enclosing scope into the `<name>.seconds`
/// histogram AND append a nested span event to the ring-buffer sink.
#define LSCATTER_OBS_SPAN(name)                                           \
  static ::lscatter::obs::Histogram&                                      \
      LSCATTER_OBS_CONCAT(lscatter_obs_span_hist_, __LINE__) =            \
          ::lscatter::obs::Registry::instance().histogram(               \
              name ".seconds");                                           \
  ::lscatter::obs::ScopedSpan LSCATTER_OBS_CONCAT(lscatter_obs_span_,     \
                                                  __LINE__)(              \
      name, &LSCATTER_OBS_CONCAT(lscatter_obs_span_hist_, __LINE__))

/// Like LSCATTER_OBS_SPAN, but stamps the span with a cross-thread flow
/// correlation id (nonzero uint64; see SpanEvent::flow_id). Spans that
/// share a flow id are linked by Chrome flow events in trace_export, so
/// one logical operation hopping across threads renders as a connected
/// arc in Perfetto.
#define LSCATTER_OBS_SPAN_FLOW(name, flow)                                \
  static ::lscatter::obs::Histogram&                                      \
      LSCATTER_OBS_CONCAT(lscatter_obs_span_hist_, __LINE__) =            \
          ::lscatter::obs::Registry::instance().histogram(               \
              name ".seconds");                                           \
  ::lscatter::obs::ScopedSpan LSCATTER_OBS_CONCAT(lscatter_obs_span_,     \
                                                  __LINE__)(              \
      name, &LSCATTER_OBS_CONCAT(lscatter_obs_span_hist_, __LINE__),      \
      static_cast<std::uint64_t>(flow))

/// Time the rest of the enclosing scope into the `<name>.seconds`
/// histogram only (no span event) — for very hot call sites.
#define LSCATTER_OBS_TIMER(name)                                          \
  static ::lscatter::obs::Histogram&                                      \
      LSCATTER_OBS_CONCAT(lscatter_obs_timer_hist_, __LINE__) =           \
          ::lscatter::obs::Registry::instance().histogram(               \
              name ".seconds");                                           \
  ::lscatter::obs::ScopedTimer LSCATTER_OBS_CONCAT(lscatter_obs_timer_,   \
                                                   __LINE__)(             \
      LSCATTER_OBS_CONCAT(lscatter_obs_timer_hist_, __LINE__))

#else  // !LSCATTER_OBS_ENABLED

// Disabled build: macros execute nothing. Value arguments appear inside
// sizeof (an unevaluated context) so variables computed only for
// instrumentation don't trip -Wunused, yet no code runs.

#define LSCATTER_OBS_COUNTER_ADD(name, delta) \
  do {                                        \
    (void)sizeof(delta);                      \
  } while (0)
#define LSCATTER_OBS_COUNTER_INC(name) \
  do {                                 \
  } while (0)
#define LSCATTER_OBS_SHARDED_COUNTER_ADD(name, delta) \
  do {                                                \
    (void)sizeof(delta);                              \
  } while (0)
#define LSCATTER_OBS_SHARDED_COUNTER_INC(name) \
  do {                                         \
  } while (0)
#define LSCATTER_OBS_GAUGE_SET(name, value) \
  do {                                      \
    (void)sizeof(value);                    \
  } while (0)
#define LSCATTER_OBS_GAUGE_MAX(name, value) \
  do {                                      \
    (void)sizeof(value);                    \
  } while (0)
#define LSCATTER_OBS_HISTOGRAM_RECORD(name, value) \
  do {                                             \
    (void)sizeof(value);                           \
  } while (0)
#define LSCATTER_OBS_SPAN(name) \
  do {                          \
  } while (0)
#define LSCATTER_OBS_SPAN_FLOW(name, flow) \
  do {                                     \
    (void)sizeof(flow);                    \
  } while (0)
#define LSCATTER_OBS_TIMER(name) \
  do {                           \
  } while (0)

#endif  // LSCATTER_OBS_ENABLED
