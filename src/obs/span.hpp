#pragma once
// Scoped tracing: RAII spans that time a region, maintain a per-thread
// nesting stack, feed a per-name latency histogram, and append finished
// span events to a bounded ring buffer the exporter can turn into a tree.
//
// Use through the macros in obs.hpp (LSCATTER_OBS_SPAN / _TIMER) so the
// whole mechanism compiles to nothing when LSCATTER_OBS_ENABLED=0.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/thread_safety.hpp"
#include "obs/registry.hpp"

namespace lscatter::obs {

/// Monotonic nanoseconds since process-local epoch.
std::uint64_t now_ns();

/// One finished span. `parent_seq` is the per-thread sequence number of
/// the enclosing span (kNoParent at top level); `seq` numbers spans per
/// thread in *start* order so exporters can rebuild the nesting.
/// `flow_id` (0 = none) is a cross-thread correlation key: spans sharing
/// a non-zero flow id describe one logical operation hopping between
/// threads (a drop's enqueue → worker execute → in-order delivery), and
/// trace_export links them with Chrome flow events.
struct SpanEvent {
  static constexpr std::uint64_t kNoParent = ~0ull;

  const char* name = nullptr;  // must point at a string literal
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;
  std::uint32_t thread_id = 0;  // dense per-process thread ordinal
  std::uint64_t seq = 0;
  std::uint64_t parent_seq = kNoParent;
  std::uint64_t flow_id = 0;  // 0 = not part of any flow
};

/// Bounded global sink. When full, the oldest events are overwritten and
/// `dropped()` counts them — tracing must never grow without bound in a
/// long-running receiver.
class SpanSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  static SpanSink& instance();

  void record(const SpanEvent& ev) LSCATTER_EXCLUDES(mutex_);

  /// Events currently retained, in record order (oldest first).
  std::vector<SpanEvent> snapshot() const LSCATTER_EXCLUDES(mutex_);

  std::uint64_t total_recorded() const LSCATTER_EXCLUDES(mutex_);
  std::uint64_t dropped() const LSCATTER_EXCLUDES(mutex_);

  void clear() LSCATTER_EXCLUDES(mutex_);

  /// Resize (drops current contents). Capacity 0 disables retention but
  /// keeps counting.
  void set_capacity(std::size_t capacity) LSCATTER_EXCLUDES(mutex_);

 private:
  explicit SpanSink(std::size_t capacity) : ring_(capacity) {}

  mutable lscatter::Mutex mutex_{"obs.span_sink"};
  std::vector<SpanEvent> ring_ LSCATTER_GUARDED_BY(mutex_);
  std::size_t head_ LSCATTER_GUARDED_BY(mutex_) = 0;   // next write slot
  std::size_t size_ LSCATTER_GUARDED_BY(mutex_) = 0;   // valid entries
  std::uint64_t total_ LSCATTER_GUARDED_BY(mutex_) = 0;
};

/// RAII span: times the enclosed scope, records a SpanEvent and (when a
/// histogram is supplied — the macros cache one per call site) a latency
/// sample, so per-stage timing survives ring overflow in long runs.
/// `name` must be a string literal (stored by pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency = nullptr,
                      std::uint64_t flow_id = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Current nesting depth of the calling thread (0 = no open span).
  static std::uint32_t current_depth();

 private:
  const char* name_;
  Histogram* latency_;
  std::uint64_t start_ns_;
  std::uint64_t seq_;
  std::uint64_t parent_seq_;
  std::uint32_t depth_;
  std::uint32_t thread_id_;
  std::uint64_t flow_id_;
};

/// RAII timer: histogram only (no ring-buffer event) — the cheaper choice
/// for call sites that fire thousands of times per packet. Accumulates
/// into the Histogram passed at construction; pair with the registry
/// lookup caching in the macros.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_ns_(now_ns()) {}
  ~ScopedTimer() {
    histogram_.record(static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

/// Manual stopwatch for accumulating split timings across non-contiguous
/// regions (e.g. "all preamble-search work inside one packet").
class Stopwatch {
 public:
  void start() { t0_ = now_ns(); }
  void stop() { elapsed_ns_ += now_ns() - t0_; }
  double elapsed_s() const {
    return static_cast<double>(elapsed_ns_) * 1e-9;
  }
  std::uint64_t elapsed_ns() const { return elapsed_ns_; }

 private:
  std::uint64_t t0_ = 0;
  std::uint64_t elapsed_ns_ = 0;
};

}  // namespace lscatter::obs
