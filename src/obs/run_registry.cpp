#include "obs/run_registry.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/thread_safety.hpp"
#include "dsp/stats.hpp"

namespace lscatter::obs {

namespace {

/// Create the directories above `path` when it has any. Returns false
/// only on a real filesystem error (EEXIST is success).
bool ensure_parent_dirs(const std::string& path, std::string* error) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create directory " + parent.string() + ": " +
               ec.message();
    }
    return false;
  }
  return true;
}

const json::Value* find_object(const json::Value& v,
                               const std::string& key) {
  const json::Value* m = v.find(key);
  return m != nullptr && m->is_object() ? m : nullptr;
}

std::string string_field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string{};
}

double number_field(const json::Value& obj, const char* key,
                    double fallback = 0.0) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

/// 16-hex-digit encode/decode for config_hash: a double loses integer
/// precision past 2^53, so the 64-bit hash travels as a string.
std::string hash_to_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::uint64_t hash_from_hex(const std::string& s) {
  if (s.empty()) return 0;
  return std::strtoull(s.c_str(), nullptr, 16);
}

}  // namespace

std::string registry_path_from_env(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("LSCATTER_OBS_REGISTRY")) {
    if (env[0] != '\0') return env;
  }
  return kDefaultRegistryPath;
}

std::string local_hostname() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? buf : "unknown";
}

json::Value canonicalize(const json::Value& v) {
  switch (v.kind()) {
    case json::Value::Kind::kObject: {
      std::vector<std::string> keys = v.as_object().keys();
      std::sort(keys.begin(), keys.end());
      json::Value out;
      out.make_object();
      for (const auto& key : keys) {
        out[key] = canonicalize(*v.find(key));
      }
      return out;
    }
    case json::Value::Kind::kArray: {
      json::Array out;
      out.reserve(v.as_array().size());
      for (const auto& elem : v.as_array()) {
        out.push_back(canonicalize(elem));
      }
      return json::Value(std::move(out));
    }
    default:
      return v;
  }
}

std::uint64_t config_hash(const json::Value& config) {
  const std::string text = canonicalize(config).dump(-1);
  // SplitMix64 over the byte stream: golden-gamma step per byte, then
  // the Steele et al. finalizer — same constants as dsp::derive_seed so
  // the avalanche properties are the proven ones.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const unsigned char c : text) {
    h = (h ^ c) * 0xbf58476d1ce4e5b9ULL;
    h += 0x9e3779b97f4a7c15ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

json::Value compact_report(const json::Value& report) {
  if (!report.is_object()) return report;
  json::Value out;
  out.make_object();
  for (const auto& key : report.as_object().keys()) {
    const json::Value& member = *report.find(key);
    if (key == "spans") continue;
    if (key == "histograms" && member.is_object()) {
      json::Value hists;
      hists.make_object();
      for (const auto& hname : member.as_object().keys()) {
        const json::Value& h = *member.find(hname);
        if (!h.is_object()) {
          hists[hname] = h;
          continue;
        }
        json::Value slim;
        slim.make_object();
        for (const auto& field : h.as_object().keys()) {
          if (field == "buckets") continue;
          slim[field] = *h.find(field);
        }
        hists[hname] = std::move(slim);
      }
      out[key] = std::move(hists);
      continue;
    }
    out[key] = member;
  }
  return out;
}

json::Value RunRecord::to_json() const {
  json::Value v;
  v["schema"] = json::Value(kRunRecordSchema);
  json::Value prov;
  prov["bench"] = json::Value(provenance.bench);
  prov["git_sha"] = json::Value(provenance.git_sha);
  prov["dirty"] = json::Value(provenance.dirty);
  prov["config_hash"] = json::Value(hash_to_hex(provenance.config_hash));
  prov["hostname"] = json::Value(provenance.hostname);
  prov["threads"] = json::Value(provenance.threads);
  prov["simd_tier"] = json::Value(provenance.simd_tier);
  prov["unix_time_s"] = json::Value(provenance.unix_time_s);
  v["provenance"] = std::move(prov);
  v["report"] = report;
  return v;
}

std::optional<RunRecord> RunRecord::from_json(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  const json::Value* schema = v.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kRunRecordSchema) {
    return std::nullopt;
  }
  const json::Value* prov = find_object(v, "provenance");
  const json::Value* report = find_object(v, "report");
  if (prov == nullptr || report == nullptr) return std::nullopt;

  RunRecord rec;
  rec.provenance.bench = string_field(*prov, "bench");
  rec.provenance.git_sha = string_field(*prov, "git_sha");
  const json::Value* dirty = prov->find("dirty");
  rec.provenance.dirty = dirty != nullptr &&
                         dirty->kind() == json::Value::Kind::kBool &&
                         dirty->as_bool();
  rec.provenance.config_hash =
      hash_from_hex(string_field(*prov, "config_hash"));
  rec.provenance.hostname = string_field(*prov, "hostname");
  // Clamp before the cast: double -> uint64 of a negative, non-finite,
  // or out-of-range value is UB (the registry fuzzer feeds all three).
  const double threads = number_field(*prov, "threads");
  rec.provenance.threads =
      std::isfinite(threads) && threads > 0.0 && threads <= 9.0e18
          ? static_cast<std::uint64_t>(threads)
          : 0;
  rec.provenance.simd_tier = string_field(*prov, "simd_tier");
  rec.provenance.unix_time_s = number_field(*prov, "unix_time_s");
  rec.report = *report;
  return rec;
}

std::optional<RunRecord> parse_record_line(std::string_view line) {
  // Tolerate the trailing '\r' of a registry that crossed a Windows
  // checkout; everything else must parse strictly.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return std::nullopt;
  const auto parsed = json::parse(line);
  if (!parsed) return std::nullopt;
  return RunRecord::from_json(*parsed);
}

namespace {

// Serializes in-process appenders (a bench self-recording while the gate
// records the same run, or concurrent sweeps sharing one registry). The
// kernel's O_APPEND already serializes cross-process writers; this mutex
// keeps same-process writers from interleaving open/write/close errno
// handling, and gives the append path a capability the thread-safety
// lane can reason about. It guards an IO critical section, not a data
// member, hence the guarded-mutex waiver.
lscatter::Mutex& append_mutex() {
  static lscatter::Mutex m{"obs.run_registry.append"};  // lint-ok: guarded-mutex
  return m;
}

}  // namespace

bool append_record(const std::string& path, const RunRecord& record,
                   std::string* error) {
  lscatter::LockGuard lock(append_mutex());
  if (!ensure_parent_dirs(path, error)) return false;
  std::string line = record.to_json().dump(-1);
  if (line.find('\n') != std::string::npos) {
    // A compact dump must be one physical line; embedded newlines would
    // tear the JSONL framing. json::escape makes this unreachable, but
    // a registry must never be corrupted by a future writer bug.
    if (error != nullptr) *error = "record serialized with embedded newline";
    return false;
  }
  line += '\n';

  // "ab" => O_APPEND: the kernel serializes concurrent appends, and the
  // single fwrite below lands the whole record (stdio buffer is larger
  // than any compacted record, so it reaches write() in one call).
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for append: " +
               std::strerror(errno);
    }
    return false;
  }
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), f) == line.size();
  const bool closed = std::fclose(f) == 0;
  if ((!ok || !closed) && error != nullptr) {
    *error = "short write to " + path;
  }
  return ok && closed;
}

std::vector<RunRecord> read_records(const std::string& path,
                                    ReadStats* stats) {
  std::vector<RunRecord> out;
  ReadStats local;
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line == "\r") continue;
      ++local.total_lines;
      auto rec = parse_record_line(line);
      if (rec) {
        out.push_back(std::move(*rec));
      } else {
        ++local.corrupt_lines;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<RunRecord> filter_records(std::vector<RunRecord> records,
                                      const RecordFilter& filter) {
  auto rejected = [&filter](const RunRecord& r) {
    if (!filter.bench.empty() && r.provenance.bench != filter.bench) {
      return true;
    }
    if (!filter.git_sha.empty() &&
        r.provenance.git_sha.rfind(filter.git_sha, 0) != 0) {
      return true;
    }
    // Like-for-like gating: a record that predates the field (empty
    // tier / zero threads) matches any filter, so old registries keep
    // working; a record that *does* carry the field must match exactly.
    if (!filter.simd_tier.empty() && !r.provenance.simd_tier.empty() &&
        r.provenance.simd_tier != filter.simd_tier) {
      return true;
    }
    if (filter.threads != 0 && r.provenance.threads != 0 &&
        r.provenance.threads != filter.threads) {
      return true;
    }
    return false;
  };
  records.erase(
      std::remove_if(records.begin(), records.end(), rejected),
      records.end());
  if (filter.last > 0 && records.size() > filter.last) {
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(filter.last));
  }
  return records;
}

namespace {

constexpr const char* kHistogramFields[] = {"count", "mean", "p50", "p90",
                                            "p99"};

}  // namespace

std::vector<std::string> metric_names(const json::Value& report) {
  std::vector<std::string> out;
  for (const char* section : {"counters", "gauges"}) {
    const json::Value* s = find_object(report, section);
    if (s == nullptr) continue;
    for (const auto& name : s->as_object().keys()) {
      const json::Value* v = s->find(name);
      if (v != nullptr && v->is_number()) {
        out.push_back(std::string(section) + "." + name);
      }
    }
  }
  const json::Value* hists = find_object(report, "histograms");
  if (hists != nullptr) {
    for (const auto& hname : hists->as_object().keys()) {
      const json::Value* h = hists->find(hname);
      if (h == nullptr || !h->is_object()) continue;
      for (const char* field : kHistogramFields) {
        const json::Value* v = h->find(field);
        if (v != nullptr && v->is_number()) {
          out.push_back("histograms." + hname + "." + field);
        }
      }
    }
  }
  return out;
}

std::optional<double> metric_value(const json::Value& report,
                                   const std::string& metric) {
  // Split on the FIRST dot only for the section; histogram names contain
  // dots themselves, so the field is the suffix after the LAST dot.
  const std::size_t first_dot = metric.find('.');
  if (first_dot == std::string::npos) return std::nullopt;
  const std::string section = metric.substr(0, first_dot);
  const std::string rest = metric.substr(first_dot + 1);
  const json::Value* s = find_object(report, section);
  if (s == nullptr) return std::nullopt;

  const json::Value* v = nullptr;
  if (section == "histograms") {
    const std::size_t last_dot = rest.rfind('.');
    if (last_dot == std::string::npos) return std::nullopt;
    const json::Value* h = s->find(rest.substr(0, last_dot));
    if (h == nullptr || !h->is_object()) return std::nullopt;
    v = h->find(rest.substr(last_dot + 1));
  } else {
    v = s->find(rest);
  }
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::vector<TrendRow> trend_rows(const std::vector<RunRecord>& records,
                                 const std::string& metric_filter,
                                 const DiffOptions& options) {
  // Union of metric paths across all records, in first-seen order.
  std::vector<std::string> metrics;
  for (const RunRecord& rec : records) {
    for (auto& name : metric_names(rec.report)) {
      if (std::find(metrics.begin(), metrics.end(), name) ==
          metrics.end()) {
        metrics.push_back(std::move(name));
      }
    }
  }

  std::vector<TrendRow> out;
  for (const std::string& metric : metrics) {
    if (!metric_filter.empty() &&
        metric.find(metric_filter) == std::string::npos) {
      continue;
    }
    TrendRow row;
    row.metric = metric;
    std::vector<double> values;
    for (const RunRecord& rec : records) {
      const auto v = metric_value(rec.report, metric);
      if (v) values.push_back(*v);
    }
    if (values.empty()) continue;
    row.n = values.size();
    row.first = values.front();
    row.last = values.back();
    const dsp::QuantileSummary q = dsp::summary_quantiles(values);
    row.p50 = q.p50;
    row.p90 = q.p90;
    row.p99 = q.p99;

    // Regression flag: newest value vs the median of everything before
    // it, same thresholds and noise floor as obs::diff, and — like diff
    // — only for histogram latency quantiles, where growth is bad by
    // construction. Counters/gauges stay informational.
    const bool is_p50 = metric.size() > 4 &&
                        metric.rfind(".p50") == metric.size() - 4;
    const bool is_tail =
        metric.size() > 4 && (metric.rfind(".p90") == metric.size() - 4 ||
                              metric.rfind(".p99") == metric.size() - 4);
    if (values.size() >= 2 &&
        metric.rfind("histograms.", 0) == 0 && (is_p50 || is_tail)) {
      std::vector<double> priors(values.begin(), values.end() - 1);
      const double base = dsp::median(std::move(priors));
      if (std::isfinite(base) && base >= options.min_base_quantile &&
          base > 0.0) {
        row.last_over_median = row.last / base;
        const double threshold = is_p50
                                     ? options.regression_threshold
                                     : options.tail_regression_threshold;
        row.regressed = !std::isfinite(row.last) ||
                        row.last_over_median > 1.0 + threshold;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

json::Value median_report(const std::vector<RunRecord>& records) {
  json::Value base;
  base["schema"] = json::Value("lscatter.obs/1");
  base["report"] = json::Value("registry-median");

  // Majority vote on the metric set: a metric present in more than half
  // the records is part of the baseline; stragglers from one odd run
  // (e.g. a crashed bench that never registered its gauges) are not.
  const std::size_t quorum = records.size() / 2 + 1;

  struct Entry {
    std::string metric;
    std::vector<double> values;
  };
  std::vector<Entry> entries;
  for (const RunRecord& rec : records) {
    for (const auto& name : metric_names(rec.report)) {
      const auto v = metric_value(rec.report, name);
      if (!v) continue;
      auto it = std::find_if(
          entries.begin(), entries.end(),
          [&name](const Entry& e) { return e.metric == name; });
      if (it == entries.end()) {
        entries.push_back({name, {*v}});
      } else {
        it->values.push_back(*v);
      }
    }
  }

  json::Value counters, gauges, histograms;
  counters.make_object();
  gauges.make_object();
  histograms.make_object();
  for (const Entry& e : entries) {
    if (e.values.size() < quorum) continue;
    const double med = dsp::median(e.values);
    const std::size_t first_dot = e.metric.find('.');
    const std::string section = e.metric.substr(0, first_dot);
    const std::string rest = e.metric.substr(first_dot + 1);
    if (section == "counters") {
      counters[rest] = json::Value(med);
    } else if (section == "gauges") {
      gauges[rest] = json::Value(med);
    } else if (section == "histograms") {
      const std::size_t last_dot = rest.rfind('.');
      histograms[rest.substr(0, last_dot)][rest.substr(last_dot + 1)] =
          json::Value(med);
    }
  }
  base["counters"] = std::move(counters);
  base["gauges"] = std::move(gauges);
  base["histograms"] = std::move(histograms);
  return base;
}

}  // namespace lscatter::obs
