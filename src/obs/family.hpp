#pragma once
// Labeled metric families: one logical metric broken out by a single
// label dimension (per-tag decode counters, per-stage latency
// histograms, per-slot collision counts). Cells are ordinary Registry
// metrics registered under the flattened name
//
//     name{label=value}        e.g. core.multi_tag.packets_ok{tag=7}
//
// so every existing consumer — build_report, lscatter-obs
// diff/trend/regress, the run registry — sees labeled rows as plain
// metric names and keeps working unchanged (`lscatter.obs/1` schema is
// untouched; a labeled report diffs against an unlabeled baseline as
// added metric rows, not as a schema break).
//
// Cardinality is bounded: a family accepts at most `max_cells` distinct
// label values (default kDefaultMaxCells). Past the cap, new values
// collapse into one shared overflow cell `name{label=__other__}` and the
// process-wide counter `obs.labels.dropped` counts each collapsed
// value — a cell-scale run with thousands of tags degrades to aggregate
// accounting instead of unbounded registry growth.
//
// Hot-path discipline (enforced by the lscatter-lint `obs-loop` rule):
// resolve cells OUTSIDE loops — `cell()` takes a family mutex and a map
// lookup — cache the returned reference, and hit the cached cell inside
// the loop. Cell addresses are stable for the process lifetime (they
// live in the Registry), so caching is always safe.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "core/thread_safety.hpp"
#include "obs/registry.hpp"

namespace lscatter::obs {

inline constexpr std::size_t kDefaultMaxCells = 64;

/// Counts label values collapsed into `{...=__other__}` overflow cells,
/// across all families in the process.
inline constexpr const char* kLabelsDroppedCounter = "obs.labels.dropped";

/// Label value used for the shared overflow cell of a saturated family.
inline constexpr const char* kOverflowLabel = "__other__";

namespace detail {

/// `name{key=value}` with the value sanitized so the flattened string
/// parses back unambiguously: '{', '}', '=', '"', ',' and control bytes
/// become '_'. Defined in family.cpp.
std::string flatten_label(const std::string& name, const std::string& key,
                          std::string_view value);

// One overload per metric kind so Family<M> below stays a single
// template instead of three near-identical classes.
inline Counter& family_metric(Registry& reg, const std::string& flat,
                              Counter*) {
  return reg.counter(flat);
}
inline Gauge& family_metric(Registry& reg, const std::string& flat,
                            Gauge*) {
  return reg.gauge(flat);
}
inline Histogram& family_metric(Registry& reg, const std::string& flat,
                                Histogram*) {
  return reg.histogram(flat);
}

}  // namespace detail

/// A family of `Metric` cells keyed by one label. Thread-safe; cell()
/// is amortized one mutex + one hash lookup, so cache the reference on
/// hot paths (see file comment).
template <typename Metric>
class Family {
 public:
  /// `name` and `label_key` follow the `subsystem.stage.metric` naming
  /// scheme (DESIGN.md §7/§12). `max_cells` bounds distinct label
  /// values; the overflow cell does not count against it.
  Family(std::string name, std::string label_key,
         std::size_t max_cells = kDefaultMaxCells)
      : name_(std::move(name)),
        label_key_(std::move(label_key)),
        max_cells_(max_cells == 0 ? 1 : max_cells) {}

  Family(const Family&) = delete;
  Family& operator=(const Family&) = delete;

  /// Cell for `label_value`, creating (and registering) it on first
  /// use. Past the cardinality cap, returns the shared overflow cell
  /// and bumps `obs.labels.dropped` once per rejected value.
  /// Lock rank: the family mutex is acquired BEFORE the registry mutex
  /// (cell registration calls into Registry under our lock); nothing in
  /// the registry ever calls back into a family, so the order is acyclic.
  Metric& cell(std::string_view label_value) LSCATTER_EXCLUDES(mutex_) {
    lscatter::LockGuard lock(mutex_);
    const auto it = cells_.find(label_value);
    if (it != cells_.end()) return *it->second;
    if (cells_.size() >= max_cells_) {
      return overflow_locked(label_value);
    }
    Metric& m = detail::family_metric(
        Registry::instance(),
        detail::flatten_label(name_, label_key_, label_value),
        static_cast<Metric*>(nullptr));
    cells_.emplace(std::string(label_value), &m);
    return m;
  }

  /// Integer-label convenience (tag indices, slots, thread ordinals).
  Metric& cell(std::uint64_t label_value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(label_value));
    return cell(std::string_view(buf));
  }

  /// Distinct label values currently held (overflow cell excluded).
  std::size_t size() const LSCATTER_EXCLUDES(mutex_) {
    lscatter::LockGuard lock(mutex_);
    return cells_.size();
  }

  std::size_t max_cells() const { return max_cells_; }
  const std::string& name() const { return name_; }
  const std::string& label_key() const { return label_key_; }

 private:
  // Heterogeneous lookup so cell(string_view) never allocates for the
  // hit path.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  Metric& overflow_locked(std::string_view rejected_value)
      LSCATTER_REQUIRES(mutex_) {
    // Each *distinct* rejected value counts once; repeat hits on an
    // already-collapsed value route straight to the overflow cell.
    if (dropped_.insert(std::string(rejected_value)).second) {
      Registry::instance().counter(kLabelsDroppedCounter).add(1);
    }
    if (overflow_ == nullptr) {
      overflow_ = &detail::family_metric(
          Registry::instance(),
          detail::flatten_label(name_, label_key_, kOverflowLabel),
          static_cast<Metric*>(nullptr));
    }
    return *overflow_;
  }

  std::string name_;
  std::string label_key_;
  std::size_t max_cells_;
  mutable lscatter::Mutex mutex_{"obs.family"};
  std::unordered_map<std::string, Metric*, Hash, Eq> cells_
      LSCATTER_GUARDED_BY(mutex_);
  // Rejected values already counted in obs.labels.dropped.
  std::unordered_set<std::string, Hash, Eq> dropped_
      LSCATTER_GUARDED_BY(mutex_);
  Metric* overflow_ LSCATTER_GUARDED_BY(mutex_) = nullptr;
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;
using HistogramFamily = Family<Histogram>;

}  // namespace lscatter::obs
