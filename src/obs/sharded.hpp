#pragma once
// Thread-sharded counter cells for hot paths shared by many workers.
//
// A plain obs::Counter is a single atomic: every worker RMWs the same
// cache line, so at 8 threads the increment itself costs more than the
// work being measured (bench/bench_micro_obs.cpp quantifies this). A
// ShardedCounter spreads the count across cacheline-aligned per-thread
// cells: each thread claims its cell once (dense thread ordinal, shared
// with the span layer so trace tids and shard indices agree) and every
// subsequent increment is an uncontended relaxed RMW on a line no other
// thread touches. Reads merge the cells — reporting pays the sum, the
// hot path pays nothing.
//
// Register through `Registry::sharded_counter(name)` (or the
// LSCATTER_OBS_SHARDED_COUNTER_* macros in obs.hpp, which additionally
// cache the calling thread's cell pointer in a thread_local): the name
// appears in reports exactly like a plain counter, already merged, so
// lscatter-obs diff/trend/registry consumers never see the sharding.
// A name should be either sharded or plain, not both; if both exist the
// report shows their sum.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lscatter::obs {

/// Dense per-process ordinal of the calling thread (0, 1, 2, ... in
/// first-use order). The same ordinal the span layer stamps into
/// SpanEvent::thread_id, so a worker's shard index and its trace track
/// refer to the same thread. Defined in span.cpp.
std::uint32_t thread_ordinal();

/// Monotonic uint64 counter sharded across cacheline-aligned cells.
/// Threads map onto cells by ordinal; with more than kShards live
/// threads cells are shared (still correct — the cells are atomics —
/// just contended again).
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 64;  // power of two (mask below)

  /// The calling thread's cell. Hot call sites cache the returned
  /// reference in a thread_local (see LSCATTER_OBS_SHARDED_COUNTER_ADD)
  /// so steady state is one TLS load plus one uncontended relaxed RMW.
  std::atomic<std::uint64_t>& cell() {
    return shards_[thread_ordinal() & (kShards - 1)].value;
  }

  void add(std::uint64_t delta) {
    cell().fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Merged value: sum over all cells. Relaxed per-cell loads — exact
  /// once writers are quiescent, momentarily stale (never torn) while
  /// they are not, same contract as Counter::value().
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards] = {};
};

}  // namespace lscatter::obs
