#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "obs/report.hpp"

namespace lscatter::obs {

namespace {

// Source-agnostic span row: trace_from_events reads the live SpanSink
// (literal names), trace_from_report reads parsed JSON (owned strings),
// both funnel through build_trace.
struct TraceRow {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;
  std::uint32_t thread = 0;
  std::uint64_t seq = 0;
  std::uint64_t parent_seq = SpanEvent::kNoParent;
  std::uint64_t flow = 0;  // 0 = not part of any flow
};

json::Value build_trace(std::vector<TraceRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const TraceRow& a, const TraceRow& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.seq < b.seq;
            });

  json::Value root;
  root["displayTimeUnit"] = json::Value("ns");
  json::Array events;
  events.reserve(rows.size());

  // One thread_name metadata record per track, emitted first so viewers
  // label tracks before any slice lands on them.
  std::set<std::uint32_t> threads;
  for (const TraceRow& r : rows) threads.insert(r.thread);
  for (const std::uint32_t t : threads) {
    json::Value m;
    m["ph"] = json::Value("M");
    m["pid"] = json::Value(std::uint64_t{1});
    m["tid"] = json::Value(static_cast<std::uint64_t>(t));
    m["name"] = json::Value("thread_name");
    char label[32];
    std::snprintf(label, sizeof(label), "span thread %u", t);
    m["args"]["name"] = json::Value(label);
    events.push_back(std::move(m));
  }

  for (const TraceRow& r : rows) {
    json::Value e;
    e["name"] = json::Value(r.name);
    e["ph"] = json::Value("X");
    e["pid"] = json::Value(std::uint64_t{1});
    e["tid"] = json::Value(static_cast<std::uint64_t>(r.thread));
    e["ts"] = json::Value(static_cast<double>(r.start_ns) * 1e-3);
    e["dur"] = json::Value(static_cast<double>(r.dur_ns) * 1e-3);
    e["args"]["seq"] = json::Value(r.seq);
    e["args"]["parent_seq"] = r.parent_seq == SpanEvent::kNoParent
                                  ? json::Value(nullptr)
                                  : json::Value(r.parent_seq);
    e["args"]["depth"] = json::Value(static_cast<std::uint64_t>(r.depth));
    if (r.flow != 0) e["args"]["flow"] = json::Value(r.flow);
    events.push_back(std::move(e));
  }

  // Flow events: spans sharing a non-zero flow id become one connected
  // arc (`ph:"s"` on the first slice, `"t"` on each middle slice, `"f"`
  // with `bp:"e"` on the last). Each event's ts/tid sit at the start of
  // the slice it binds to, so Perfetto attaches the arrowheads to the
  // slices themselves. Flows with a single slice get no arc — there is
  // nothing to connect.
  std::map<std::uint64_t, std::vector<const TraceRow*>> flows;
  for (const TraceRow& r : rows) {
    if (r.flow != 0) flows[r.flow].push_back(&r);
  }
  for (const auto& [flow_id, slices] : flows) {
    if (slices.size() < 2) continue;
    // `rows` is already sorted by (start_ns, seq), so slices are too.
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const TraceRow& r = *slices[i];
      json::Value e;
      e["name"] = json::Value(slices.front()->name);
      e["cat"] = json::Value("flow");
      e["ph"] = json::Value(i == 0 ? "s"
                            : i + 1 == slices.size() ? "f"
                                                     : "t");
      if (i + 1 == slices.size()) e["bp"] = json::Value("e");
      e["id"] = json::Value(flow_id);
      e["pid"] = json::Value(std::uint64_t{1});
      e["tid"] = json::Value(static_cast<std::uint64_t>(r.thread));
      e["ts"] = json::Value(static_cast<double>(r.start_ns) * 1e-3);
      events.push_back(std::move(e));
    }
  }

  root["traceEvents"] = json::Value(std::move(events));
  return root;
}

std::uint64_t u64_field(const json::Value& obj, const std::string& key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number()
             ? static_cast<std::uint64_t>(v->as_number())
             : 0;
}

}  // namespace

json::Value trace_from_events(const std::vector<SpanEvent>& events) {
  std::vector<TraceRow> rows;
  rows.reserve(events.size());
  for (const SpanEvent& ev : events) {
    TraceRow r;
    r.name = ev.name == nullptr ? "" : ev.name;
    r.start_ns = ev.start_ns;
    r.dur_ns = ev.duration_ns;
    r.depth = ev.depth;
    r.thread = ev.thread_id;
    r.seq = ev.seq;
    r.parent_seq = ev.parent_seq;
    r.flow = ev.flow_id;
    rows.push_back(std::move(r));
  }
  return build_trace(std::move(rows));
}

std::optional<json::Value> trace_from_report(const json::Value& report) {
  const json::Value* spans = report.find("spans");
  if (spans == nullptr) return std::nullopt;
  const json::Value* events = spans->find("events");
  if (events == nullptr || !events->is_array()) return std::nullopt;

  std::vector<TraceRow> rows;
  rows.reserve(events->as_array().size());
  for (const json::Value& e : events->as_array()) {
    if (!e.is_object()) continue;
    TraceRow r;
    const json::Value* name = e.find("name");
    if (name != nullptr && name->is_string()) r.name = name->as_string();
    r.start_ns = u64_field(e, "start_ns");
    r.dur_ns = u64_field(e, "dur_ns");
    r.depth = static_cast<std::uint32_t>(u64_field(e, "depth"));
    r.thread = static_cast<std::uint32_t>(u64_field(e, "thread"));
    r.seq = u64_field(e, "seq");
    const json::Value* parent = e.find("parent_seq");
    r.parent_seq = parent != nullptr && parent->is_number()
                       ? static_cast<std::uint64_t>(parent->as_number())
                       : SpanEvent::kNoParent;
    r.flow = u64_field(e, "flow");  // optional; absent -> 0 (no flow)
    rows.push_back(std::move(r));
  }
  return build_trace(std::move(rows));
}

bool write_trace_file(const std::string& path) {
  const json::Value trace =
      trace_from_events(SpanSink::instance().snapshot());
  return write_json_file(trace, path);
}

}  // namespace lscatter::obs
