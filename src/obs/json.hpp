#pragma once
// Minimal dependency-free JSON value / writer / parser for the
// observability exporters. Deliberately small: objects keep insertion
// order (reports stay diff-friendly), numbers are doubles, and the parser
// accepts exactly the subset the writer emits (RFC 8259 without \u
// surrogate pairs) — enough for round-trip tests and external tooling.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lscatter::obs::json {

class Value;
using Array = std::vector<Value>;

/// Order-preserving object: lookup map plus insertion-ordered key list.
class Object {
 public:
  Value& operator[](const std::string& key);
  const Value* find(const std::string& key) const;
  const std::vector<std::string>& keys() const { return order_; }
  std::size_t size() const { return order_.size(); }

 private:
  std::map<std::string, std::shared_ptr<Value>> members_;
  std::vector<std::string> order_;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int i) : kind_(Kind::kNumber), num_(i) {}
  Value(std::int64_t i) : kind_(Kind::kNumber),
                          num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : kind_(Kind::kNumber),
                           num_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(Array a) : kind_(Kind::kArray),
                   arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : kind_(Kind::kObject),
                    obj_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Make this value an object/array in place (idempotent).
  Object& make_object();
  Array& make_array();

  /// Convenience: member access on objects; asserts on other kinds.
  Value& operator[](const std::string& key) {
    return make_object()[key];
  }
  const Value* find(const std::string& key) const {
    return is_object() ? as_object().find(key) : nullptr;
  }

  /// Serialize. `indent` < 0 means compact single-line output.
  std::string dump(int indent = 2) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse a JSON document. Returns nullopt on malformed input (the
/// round-trip tests rely on strictness, not recovery).
std::optional<Value> parse(std::string_view text);

/// Escape a string for embedding in JSON (quotes not included).
std::string escape(std::string_view s);

}  // namespace lscatter::obs::json
