#pragma once
// Structural diff of two `lscatter.obs/1` run reports — the read side of
// the bench regression gate (scripts/bench_gate.sh, `lscatter-obs diff`).
//
// Two failure classes, deliberately separate:
//   * drift       — the metric *set* changed (schema version mismatch, or
//                   a counter/gauge/histogram name added or removed).
//                   Always a failure: a renamed metric silently breaks
//                   every downstream consumer, so the gate has no
//                   threshold for it.
//   * regression  — a histogram quantile (p50/p90/p99) grew past a
//                   relative threshold. Timing-sensitive, so it can be
//                   disabled (`compare_quantiles = false`, the gate's
//                   --smoke mode) and tuned (`regression_threshold`);
//                   machines vary.
// Everything else (counter deltas, improvements) is reported as info so
// `lscatter-obs diff` output doubles as a run-to-run changelog.

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace lscatter::obs {

enum class DiffSeverity { kInfo, kDrift, kRegression };

struct DiffFinding {
  DiffSeverity severity = DiffSeverity::kInfo;
  std::string kind;     // schema_mismatch | metric_added | metric_removed
                        // | counter_delta | quantile_regression
                        // | quantile_improvement | quantile_non_finite
  std::string section;  // counters | gauges | histograms | (schema: "")
  std::string name;     // metric name, ".p50"-suffixed for quantiles
  double base = 0.0;
  double current = 0.0;
  std::string detail;   // one human-readable line
};

struct DiffOptions {
  /// Relative growth that fails the median: 0.25 means current p50 may
  /// be at most 1.25x base.
  double regression_threshold = 0.25;

  /// Separate (looser) growth allowance for p90/p99. Short bench runs
  /// put few samples in the tail, and the log-bucketed histograms
  /// quantize at ~1.33x per bucket, so tails legitimately jump 1.5-1.8x
  /// between identical runs; the default tolerates that while still
  /// catching order-of-magnitude tail blowups.
  double tail_regression_threshold = 1.5;

  /// Compare histogram quantiles at all. Off = schema-drift check only
  /// (the gate's --smoke mode for committed cross-machine baselines).
  bool compare_quantiles = true;

  /// Quantiles below this (seconds for .seconds histograms) are
  /// clock-resolution / bucket-granularity noise — a 200 ns stage p50
  /// moves a whole 1.33x log-bucket on scheduler jitter alone. Skip the
  /// ratio test for them rather than flake.
  ///
  /// Non-finite values (the parser accepts 1e999 -> inf; in-memory
  /// reports can carry NaN): a non-finite *base* quantile is skipped —
  /// no ratio is meaningful against it — while a non-finite *current*
  /// quantile over a comparable base is always a regression
  /// (quantile_non_finite); NaN must not slip through the gate by
  /// failing every comparison. Locked by tests/test_obs_diff.cpp.
  double min_base_quantile = 1e-6;

  /// Demote metric_added from drift to info. For curated committed
  /// baselines (default off) a new metric means the baseline needs
  /// regenerating, so it must fail. Against a *historical* baseline —
  /// `lscatter-obs regress` gating a fresh run on the registry median —
  /// a freshly instrumented metric would otherwise fail every nightly
  /// until the median catches up (majority vote), so regress turns this
  /// on. metric_removed stays drift in both modes: a metric vanishing
  /// breaks downstream consumers no matter which baseline it came from.
  bool ignore_added_metrics = false;
};

struct DiffResult {
  std::vector<DiffFinding> findings;

  bool has_drift() const;
  bool has_regression() const;
  /// True when the gate should pass: no drift, no regression.
  bool ok() const { return !has_drift() && !has_regression(); }

  /// Machine-readable verdict: {ok, drift, regression, findings:[...]}.
  json::Value to_json() const;
  /// One finding per line, severities tagged, for terminal output.
  std::string format_text() const;
};

/// Diff `current` against `base` (both parsed `lscatter.obs/1` reports).
/// Malformed inputs (wrong/missing schema) yield a schema_mismatch drift
/// finding rather than a crash — the gate must fail loudly, not throw.
DiffResult diff_reports(const json::Value& base, const json::Value& current,
                        const DiffOptions& options = {});

}  // namespace lscatter::obs
