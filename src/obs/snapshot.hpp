#pragma once
// Time-resolved telemetry: a SnapshotSeries periodically samples selected
// counters / gauges / histogram quantiles from the live registry into a
// bounded ring, so long replays (bench_fig16/21 whole-day studies, the
// streaming-daemon soak of ROADMAP item 3) emit latency-over-simulated-
// time curves instead of one terminal aggregate (DESIGN.md §11).
//
// Cost discipline matches the rest of obs:
//   * channel registration resolves each metric to its stable registry
//     pointer once, up front;
//   * the ring and the quantile scratch are sized on the first tick
//     (warm-up); after that a sample is pointer-chasing plus relaxed
//     atomic loads — ZERO heap allocations (tests/test_obs_snapshot.cpp
//     proves it with the operator-new hook from the PR 5 alloc tests);
//   * when the ring is full the oldest sample is overwritten and counted
//     as dropped — a day-long replay can tick millions of times without
//     growing;
//   * under -DLSCATTER_OBS=OFF tick() compiles to nothing and to_json()
//     reports an empty series, like every other obs surface.
//
// Driving convention: the owner calls tick(sim_time) once per unit of
// simulated progress (a drop, a subframe, an hour sample); `every` picks
// each Nth tick as a sample. Simulated time is supplied by the caller —
// the library never reads a wall clock.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace lscatter::obs {

class SnapshotSeries {
 public:
  struct Options {
    /// Ring capacity in samples; oldest overwritten past this.
    std::size_t capacity = 1024;
    /// Take a sample every Nth tick (1 = every tick).
    std::size_t every = 1;
  };

  // Two constructors instead of one defaulted-argument constructor:
  // gcc rejects `Options options = {}` here because the nested class's
  // member initializers are not usable until SnapshotSeries is complete.
  SnapshotSeries();
  explicit SnapshotSeries(Options options);

  /// Channel registration — call before the first tick. Each channel
  /// resolves its registry metric once (creating it if absent, so a
  /// series can be declared ahead of the instrumented code running).
  void add_counter(const std::string& name);
  void add_gauge(const std::string& name);
  /// Samples histogram `name` at quantile q; the channel is labelled
  /// `<name>.p<q*100>` (e.g. "core.link.run.seconds.p99").
  void add_histogram_quantile(const std::string& name, double q);
  /// Samples histogram `name`'s cumulative count ("<name>.count").
  void add_histogram_count(const std::string& name);

  /// Advance simulated time; samples on every Nth call. No-op when the
  /// obs layer is compiled out.
  void tick(double sim_time) {
#if LSCATTER_OBS_ENABLED
    if (++ticks_ % every_ == 0) sample(sim_time);
#else
    (void)sim_time;
#endif
  }

  std::size_t channel_count() const { return channels_.size(); }
  /// Samples currently retained (<= capacity).
  std::size_t size() const { return size_; }
  std::uint64_t total_samples() const { return total_samples_; }
  /// Samples overwritten because the ring was full.
  std::uint64_t dropped() const {
    return total_samples_ - static_cast<std::uint64_t>(size_);
  }

  /// Retained samples, oldest first:
  ///   { schema: "lscatter.obs-series/1", every, capacity,
  ///     total_samples, dropped, channels: [names...],
  ///     t: [...], series: [[per-channel values...], ...] }
  /// `series` is columnar (one array per channel, parallel to `t`) so a
  /// plotting script slices a metric without touching the others.
  json::Value to_json() const;

 private:
  struct Channel {
    enum class Kind { kCounter, kGauge, kHistQuantile, kHistCount };
    Kind kind = Kind::kCounter;
    std::string label;
    const Counter* counter = nullptr;
    // Counter channels read plain + sharded cells under the same name
    // (both resolved up front), mirroring Registry::counter_value —
    // sampling stays a pointer chase, no registry lock per tick.
    const ShardedCounter* sharded = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    double q = 0.0;
  };

  void sample(double sim_time);
  double read_channel(const Channel& ch);

  std::size_t every_ = 1;
  std::size_t capacity_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t total_samples_ = 0;

  std::vector<Channel> channels_;
  /// Row-major ring: row i holds [t, ch0, ch1, ...] — one flat
  /// preallocated block, no per-sample node allocations.
  std::vector<double> ring_;
  std::size_t head_ = 0;  // next row to write
  std::size_t size_ = 0;  // valid rows
  std::vector<dsp::BucketSpan> quantile_scratch_;
};

}  // namespace lscatter::obs
