#include "obs/report.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "dsp/fft.hpp"
#include "obs/trace_export.hpp"

namespace lscatter::obs {

namespace {

// An exporter destination like LSCATTER_OBS_JSON=results/day1/report.json
// must work without the caller pre-creating results/day1/ — a silently
// dropped report is the worst observability failure mode. Directory
// creation failure falls through to fopen, whose errno names the cause.
void create_parent_dirs(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
}

// dsp sits below obs and cannot register metrics itself, so the FFT plan
// cache and workspace accounting live as plain atomics in dsp and get
// published here at report time. Counters are cumulative per process;
// deltas since the last publish keep repeated report writes (multi-phase
// benches) from double-counting. Processes that never ran an FFT publish
// nothing, so reports without DSP activity keep their metric set stable.
void publish_fft_stats() {
  const dsp::FftRuntimeStats stats = dsp::fft_runtime_stats();
  if (stats.plan_cache_hits == 0 && stats.plan_cache_misses == 0 &&
      stats.workspace_bytes_peak == 0) {
    return;
  }
  static std::uint64_t published_hits = 0;
  static std::uint64_t published_misses = 0;
  Registry& reg = Registry::instance();
  reg.counter("dsp.fft.plan_cache_hits")
      .add(stats.plan_cache_hits - published_hits);
  reg.counter("dsp.fft.plan_cache_misses")
      .add(stats.plan_cache_misses - published_misses);
  published_hits = stats.plan_cache_hits;
  published_misses = stats.plan_cache_misses;
  reg.gauge("dsp.fft.workspace_bytes")
      .set(static_cast<double>(stats.workspace_bytes));
  reg.gauge("dsp.fft.workspace_bytes_peak")
      .set(static_cast<double>(stats.workspace_bytes_peak));
}

json::Value histogram_json(const Histogram& h, bool include_buckets) {
  json::Value v;
  v["count"] = json::Value(h.count());
  v["sum"] = json::Value(h.sum());
  v["mean"] = json::Value(h.mean());
  v["min"] = json::Value(h.count() == 0 ? 0.0 : h.min());
  v["max"] = json::Value(h.count() == 0 ? 0.0 : h.max());
  v["p50"] = json::Value(h.quantile(0.50));
  v["p90"] = json::Value(h.quantile(0.90));
  v["p99"] = json::Value(h.quantile(0.99));
  if (h.underflow() > 0) v["underflow"] = json::Value(h.underflow());
  if (include_buckets) {
    json::Array buckets;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t c = h.bucket_count(i);
      if (c == 0) continue;
      json::Value b;
      b["le"] = json::Value(Histogram::upper_edge(i));
      b["count"] = json::Value(c);
      buckets.push_back(std::move(b));
    }
    v["buckets"] = json::Value(std::move(buckets));
  }
  return v;
}

}  // namespace

ReportOptions report_options_from_env() {
  ReportOptions options;
  if (const char* spans = std::getenv("LSCATTER_OBS_SPANS")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(spans, &end, 10);
    if (end != spans && *end == '\0') {
      options.max_span_events = static_cast<std::size_t>(n);
    }
  }
  if (const char* buckets = std::getenv("LSCATTER_OBS_BUCKETS")) {
    options.include_buckets =
        !(buckets[0] == '0' && buckets[1] == '\0');
  }
  return options;
}

json::Value build_report(const std::string& report_name,
                         const ReportOptions& options,
                         const json::Value* extra) {
  Registry& reg = Registry::instance();
  json::Value root;
  root["schema"] = json::Value("lscatter.obs/1");
  root["report"] = json::Value(report_name);

  json::Value counters;
  counters.make_object();
  for (const auto& name : reg.counter_names()) {
    // counter_value merges thread-sharded cells under the same name, so
    // sharding is invisible to every report consumer.
    counters[name] = json::Value(reg.counter_value(name));
  }
  root["counters"] = std::move(counters);

  json::Value gauges;
  gauges.make_object();
  for (const auto& name : reg.gauge_names()) {
    gauges[name] = json::Value(reg.find_gauge(name)->value());
  }
  root["gauges"] = std::move(gauges);

  json::Value histograms;
  histograms.make_object();
  for (const auto& name : reg.histogram_names()) {
    histograms[name] =
        histogram_json(*reg.find_histogram(name), options.include_buckets);
  }
  root["histograms"] = std::move(histograms);

  if (options.max_span_events > 0) {
    const SpanSink& sink = SpanSink::instance();
    auto events = sink.snapshot();
    const std::size_t keep =
        std::min(events.size(), options.max_span_events);
    json::Value spans;
    spans["total"] = json::Value(sink.total_recorded());
    spans["dropped"] =
        json::Value(sink.total_recorded() -
                    static_cast<std::uint64_t>(keep));
    json::Array arr;
    arr.reserve(keep);
    for (std::size_t i = events.size() - keep; i < events.size(); ++i) {
      const SpanEvent& ev = events[i];
      json::Value e;
      e["name"] = json::Value(ev.name == nullptr ? "" : ev.name);
      e["start_ns"] = json::Value(ev.start_ns);
      e["dur_ns"] = json::Value(ev.duration_ns);
      e["depth"] = json::Value(static_cast<std::uint64_t>(ev.depth));
      e["thread"] = json::Value(static_cast<std::uint64_t>(ev.thread_id));
      e["seq"] = json::Value(ev.seq);
      e["parent_seq"] = ev.parent_seq == SpanEvent::kNoParent
                            ? json::Value(nullptr)
                            : json::Value(ev.parent_seq);
      if (ev.flow_id != 0) e["flow"] = json::Value(ev.flow_id);
      arr.push_back(std::move(e));
    }
    spans["events"] = json::Value(std::move(arr));
    root["spans"] = std::move(spans);
  }

  if (extra != nullptr) root["extra"] = *extra;
  return root;
}

std::string format_text_report(const std::string& report_name) {
  Registry& reg = Registry::instance();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "== obs report: %s ==\n",
                report_name.c_str());
  out += line;

  const auto counter_names = reg.counter_names();
  if (!counter_names.empty()) {
    out += "-- counters --\n";
    for (const auto& name : counter_names) {
      std::snprintf(line, sizeof(line), "%-44s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(
                        reg.counter_value(name)));
      out += line;
    }
  }
  const auto gauge_names = reg.gauge_names();
  if (!gauge_names.empty()) {
    out += "-- gauges --\n";
    for (const auto& name : gauge_names) {
      std::snprintf(line, sizeof(line), "%-44s %12.6g\n", name.c_str(),
                    reg.find_gauge(name)->value());
      out += line;
    }
  }
  const auto histogram_names = reg.histogram_names();
  if (!histogram_names.empty()) {
    out += "-- histograms (count / mean / p50 / p90 / p99) --\n";
    for (const auto& name : histogram_names) {
      const Histogram& h = *reg.find_histogram(name);
      std::snprintf(line, sizeof(line),
                    "%-44s %9llu %10.3e %10.3e %10.3e %10.3e\n",
                    name.c_str(),
                    static_cast<unsigned long long>(h.count()), h.mean(),
                    h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
      out += line;
    }
  }
  return out;
}

bool write_json_file(const json::Value& report, const std::string& path) {
  create_parent_dirs(path);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const std::string text = report.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                      text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

std::optional<std::string> write_report_from_env(
    const std::string& report_name, const std::string& default_path,
    const json::Value* extra) {
  if (const char* trace = std::getenv("LSCATTER_OBS_TRACE")) {
    if (trace[0] != '\0' && !write_trace_file(trace)) {
      std::fprintf(stderr,
                   "obs: failed to write Chrome trace to %s "
                   "(LSCATTER_OBS_TRACE)\n",
                   trace);
    }
  }
  const char* env = std::getenv("LSCATTER_OBS_JSON");
  std::string path = env != nullptr ? env : default_path;
  if (path.empty()) return std::nullopt;
  publish_fft_stats();
  const json::Value report =
      build_report(report_name, report_options_from_env(), extra);
  if (!write_json_file(report, path)) {
    std::fprintf(stderr, "obs: failed to write report to %s\n",
                 path.c_str());
    return std::nullopt;
  }
  return path;
}

}  // namespace lscatter::obs
