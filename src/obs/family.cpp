#include "obs/family.hpp"

namespace lscatter::obs::detail {

std::string flatten_label(const std::string& name, const std::string& key,
                          std::string_view value) {
  std::string flat;
  flat.reserve(name.size() + key.size() + value.size() + 3);
  flat += name;
  flat += '{';
  flat += key;
  flat += '=';
  for (const char c : value) {
    const bool unsafe = c == '{' || c == '}' || c == '=' || c == ',' ||
                        c == '"' || static_cast<unsigned char>(c) < 0x20;
    flat += unsafe ? '_' : c;
  }
  flat += '}';
  return flat;
}

}  // namespace lscatter::obs::detail
