#pragma once
// Append-only run registry: the longitudinal store behind `lscatter-obs
// record/query/trend/regress` and the bench gate's registry-median
// fallback (DESIGN.md §11).
//
// One run = one line of JSONL. Each line is a `lscatter.obs-run/1`
// envelope wrapping a *compacted* `lscatter.obs/1` report (spans and
// histogram bucket arrays stripped — quantiles survive) plus provenance:
//
//   { "schema": "lscatter.obs-run/1",
//     "provenance": { "bench", "git_sha", "dirty", "config_hash",
//                     "hostname", "threads", "unix_time_s" },
//     "report": { ...compacted lscatter.obs/1... } }
//
// Design rules:
//   * Appends are crash-safe: the whole record is serialized to a single
//     '\n'-terminated line and handed to the kernel in one O_APPEND
//     write, so a crashed or concurrent writer can at worst leave one
//     torn *trailing* line — never interleave two records.
//   * The reader is strict per line but lenient per file: a line that is
//     not valid `lscatter.obs-run/1` is skipped and counted, never
//     fatal. A registry survives torn tails, hand edits, and version
//     skew. (Fuzzed in fuzz/fuzz_obs_registry.cpp.)
//   * No wall clocks in this library. `Provenance::unix_time_s` is
//     stamped by the caller (the CLI or the bench binary) so library
//     code stays deterministic and testable.
//
// Default location: `.lscatter/registry.jsonl` relative to the working
// directory, overridden by the `LSCATTER_OBS_REGISTRY` env var or an
// explicit path argument.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace lscatter::obs {

inline constexpr const char* kRunRecordSchema = "lscatter.obs-run/1";
inline constexpr const char* kDefaultRegistryPath =
    ".lscatter/registry.jsonl";

/// Resolve the registry path: `explicit_path` when non-empty, else the
/// `LSCATTER_OBS_REGISTRY` env var, else kDefaultRegistryPath.
std::string registry_path_from_env(const std::string& explicit_path = "");

/// Who/what/when of one recorded run. `unix_time_s` must be injected by
/// the caller — see the no-wall-clock rule above.
struct Provenance {
  std::string bench;       // run/report name, e.g. "bench_micro_dsp"
  std::string git_sha;     // empty when unknown
  bool dirty = false;      // uncommitted changes at record time
  std::uint64_t config_hash = 0;  // config_hash() of the bench config
  std::string hostname;    // local_hostname() or caller-supplied
  std::uint64_t threads = 0;
  /// Resolved SIMD dispatch tier at record time (dsp::to_string of
  /// dsp::simd_tier(), e.g. "avx2" / "sse2" / "scalar"); empty when
  /// unknown (records predating the field). Lets trend/regress compare
  /// like-for-like: a scalar-forced CI row must not poison the median
  /// for AVX2 boxes.
  std::string simd_tier;
  double unix_time_s = 0.0;
};

/// gethostname() wrapper; "unknown" when the syscall fails.
std::string local_hostname();

/// Recursively sort object keys (arrays keep order). Two configs that
/// differ only in member order canonicalize identically — the basis of
/// config_hash().
json::Value canonicalize(const json::Value& v);

/// SplitMix64-style hash over the compact dump of canonicalize(config):
/// each byte perturbs the state, then two xor-multiply finalizer rounds
/// avalanche it (same constants as dsp::derive_seed). Stable across
/// processes and platforms; hash of two configs matches iff their
/// canonical forms match.
std::uint64_t config_hash(const json::Value& config);

/// Shrink an `lscatter.obs/1` report for registry storage: drop the
/// `spans` section and every histogram's `buckets` array, keep
/// counters/gauges/quantiles/extra verbatim. Idempotent.
json::Value compact_report(const json::Value& report);

struct RunRecord {
  Provenance provenance;
  json::Value report;  // compacted lscatter.obs/1 document

  json::Value to_json() const;
  /// Strict decode of one envelope; nullopt when the schema tag,
  /// provenance object, or report object is missing/mistyped.
  static std::optional<RunRecord> from_json(const json::Value& v);
};

/// Parse one registry line (no trailing newline required). nullopt on
/// any corruption — the reader counts these, the fuzz harness hammers
/// this entry point.
std::optional<RunRecord> parse_record_line(std::string_view line);

/// Append one record as a single JSONL line, creating parent directories
/// as needed. On failure returns false and, when `error` is non-null,
/// stores a human-readable reason including the path.
bool append_record(const std::string& path, const RunRecord& record,
                   std::string* error = nullptr);

struct ReadStats {
  std::size_t total_lines = 0;    // non-empty lines seen
  std::size_t corrupt_lines = 0;  // skipped (not valid lscatter.obs-run/1)
};

/// Read every valid record, oldest first. A missing file is an empty
/// registry, not an error. Corrupt lines are skipped and counted.
std::vector<RunRecord> read_records(const std::string& path,
                                    ReadStats* stats = nullptr);

struct RecordFilter {
  std::string bench;    // exact match on provenance.bench; empty = any
  std::string git_sha;  // prefix match on provenance.git_sha; empty = any
  /// Exact match on provenance.simd_tier; empty = any. Records with no
  /// recorded tier (pre-field registries) match any requested tier, so
  /// an upgraded CLI keeps reading old registries.
  std::string simd_tier;
  /// Exact match on provenance.threads; 0 = any. Like simd_tier,
  /// records with no recorded thread count (0) always match.
  std::uint64_t threads = 0;
  std::size_t last = 0;  // after filtering keep the newest K; 0 = all
};

std::vector<RunRecord> filter_records(std::vector<RunRecord> records,
                                      const RecordFilter& filter);

/// Flattened numeric metric paths of one report, in report order:
/// "counters.<name>", "gauges.<name>", and
/// "histograms.<name>.{count,mean,p50,p90,p99}".
std::vector<std::string> metric_names(const json::Value& report);

/// Value at a flattened metric path; nullopt when absent or non-numeric.
std::optional<double> metric_value(const json::Value& report,
                                   const std::string& metric);

/// One metric's trajectory across a record sequence (append order).
struct TrendRow {
  std::string metric;
  std::size_t n = 0;       // records carrying this metric
  double first = 0.0;      // oldest value
  double last = 0.0;       // newest value
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  // across the sequence
  /// newest vs median-of-priors ratio; 0 when not computable.
  double last_over_median = 0.0;
  /// Histogram-quantile metric whose newest value grew past the
  /// obs::diff thresholds relative to the median of the prior records.
  bool regressed = false;
};

/// Per-metric p50/p90/p99 across `records` plus monotone regression
/// flagging using the same thresholds as obs::diff (p50 paths use
/// `regression_threshold`, p90/p99 paths `tail_regression_threshold`;
/// counters and gauges are informational, never flagged). Metrics are
/// the union over all records; `metric_filter` (substring, empty = all)
/// narrows the output.
std::vector<TrendRow> trend_rows(const std::vector<RunRecord>& records,
                                 const std::string& metric_filter = "",
                                 const DiffOptions& options = {});

/// Synthesize an `lscatter.obs/1` baseline from a record set: every
/// metric present in more than half of the records contributes the
/// median of its present values (majority vote keeps one odd run with a
/// foreign metric set from spraying drift findings). Feed the result to
/// diff_reports() as the base — that is `lscatter-obs regress`.
json::Value median_report(const std::vector<RunRecord>& records);

}  // namespace lscatter::obs
