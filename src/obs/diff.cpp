#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace lscatter::obs {

namespace {

const char* severity_tag(DiffSeverity s) {
  switch (s) {
    case DiffSeverity::kInfo: return "info";
    case DiffSeverity::kDrift: return "drift";
    case DiffSeverity::kRegression: return "regression";
  }
  return "?";
}

std::string schema_of(const json::Value& report) {
  const json::Value* s = report.find("schema");
  return s != nullptr && s->is_string() ? s->as_string() : "<missing>";
}

/// Keys of a section object ("counters"/"gauges"/"histograms"); empty
/// when the section is absent (valid for reports from -DLSCATTER_OBS=OFF
/// builds, where the registry is simply empty).
std::vector<std::string> section_keys(const json::Value& report,
                                      const std::string& section) {
  const json::Value* v = report.find(section);
  if (v == nullptr || !v->is_object()) return {};
  std::vector<std::string> keys = v->as_object().keys();
  std::sort(keys.begin(), keys.end());
  return keys;
}

double number_at(const json::Value& report, const std::string& section,
                 const std::string& name) {
  const json::Value* s = report.find(section);
  if (s == nullptr) return 0.0;
  const json::Value* v = s->find(name);
  return v != nullptr && v->is_number() ? v->as_number() : 0.0;
}

void add_finding(DiffResult& result, DiffSeverity severity,
                 std::string kind, std::string section, std::string name,
                 double base, double current, std::string detail) {
  DiffFinding f;
  f.severity = severity;
  f.kind = std::move(kind);
  f.section = std::move(section);
  f.name = std::move(name);
  f.base = base;
  f.current = current;
  f.detail = std::move(detail);
  result.findings.push_back(std::move(f));
}

void diff_metric_names(DiffResult& result, const json::Value& base,
                       const json::Value& current,
                       const std::string& section,
                       const DiffOptions& options) {
  const auto base_keys = section_keys(base, section);
  const auto cur_keys = section_keys(current, section);
  for (const auto& name : base_keys) {
    if (!std::binary_search(cur_keys.begin(), cur_keys.end(), name)) {
      add_finding(result, DiffSeverity::kDrift, "metric_removed", section,
                  name, 0.0, 0.0,
                  section + "." + name + " present in base, missing in new");
    }
  }
  const DiffSeverity added_severity = options.ignore_added_metrics
                                          ? DiffSeverity::kInfo
                                          : DiffSeverity::kDrift;
  for (const auto& name : cur_keys) {
    if (!std::binary_search(base_keys.begin(), base_keys.end(), name)) {
      add_finding(result, added_severity, "metric_added", section,
                  name, 0.0, 0.0,
                  section + "." + name + " missing in base, present in new");
    }
  }
}

void diff_counters(DiffResult& result, const json::Value& base,
                   const json::Value& current) {
  for (const auto& name : section_keys(base, "counters")) {
    const json::Value* cur = current.find("counters");
    if (cur == nullptr || cur->find(name) == nullptr) continue;
    const double b = number_at(base, "counters", name);
    const double c = number_at(current, "counters", name);
    if (b == c) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "counter %s: %.0f -> %.0f (%+.0f)",
                  name.c_str(), b, c, c - b);
    add_finding(result, DiffSeverity::kInfo, "counter_delta", "counters",
                name, b, c, line);
  }
}

void diff_quantiles(DiffResult& result, const json::Value& base,
                    const json::Value& current,
                    const DiffOptions& options) {
  static constexpr const char* kQuantiles[] = {"p50", "p90", "p99"};
  const json::Value* cur_hists = current.find("histograms");
  const json::Value* base_hists = base.find("histograms");
  if (cur_hists == nullptr || base_hists == nullptr) return;

  for (const auto& name : section_keys(base, "histograms")) {
    const json::Value* bh = base_hists->find(name);
    const json::Value* ch = cur_hists->find(name);
    if (bh == nullptr || ch == nullptr) continue;
    for (const char* q : kQuantiles) {
      const json::Value* bq = bh->find(q);
      const json::Value* cq = ch->find(q);
      if (bq == nullptr || cq == nullptr || !bq->is_number() ||
          !cq->is_number()) {
        continue;
      }
      const double b = bq->as_number();
      const double c = cq->as_number();
      // Below the noise floor (or empty histogram: quantile 0) a ratio
      // is meaningless; same for a non-finite base (a 1e999 literal in a
      // hand-edited baseline parses to inf) — nothing can regress
      // against it.
      if (!(b > 0.0) || b < options.min_base_quantile ||
          !std::isfinite(b)) {
        continue;
      }
      const double threshold = std::strcmp(q, "p50") == 0
                                   ? options.regression_threshold
                                   : options.tail_regression_threshold;
      const double ratio = c / b;
      const std::string qualified = name + "." + q;
      char line[256];
      // A non-finite current quantile against a comparable base is a
      // regression, never noise: NaN would otherwise fail every ratio
      // comparison silently and slip through the gate.
      if (!std::isfinite(c)) {
        std::snprintf(line, sizeof(line),
                      "%s %s: %.3e -> non-finite (%f)", name.c_str(), q,
                      b, c);
        add_finding(result, DiffSeverity::kRegression,
                    "quantile_non_finite", "histograms", qualified, b, c,
                    line);
        continue;
      }
      if (ratio > 1.0 + threshold) {
        std::snprintf(line, sizeof(line),
                      "%s %s: %.3e -> %.3e (%.2fx > %.2fx allowed)",
                      name.c_str(), q, b, c, ratio, 1.0 + threshold);
        add_finding(result, DiffSeverity::kRegression,
                    "quantile_regression", "histograms", qualified, b, c,
                    line);
      } else if (ratio < 1.0 - std::min(threshold, 0.99)) {
        std::snprintf(line, sizeof(line), "%s %s: %.3e -> %.3e (%.2fx)",
                      name.c_str(), q, b, c, ratio);
        add_finding(result, DiffSeverity::kInfo, "quantile_improvement",
                    "histograms", qualified, b, c, line);
      }
    }
  }
}

}  // namespace

bool DiffResult::has_drift() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const DiffFinding& f) {
                       return f.severity == DiffSeverity::kDrift;
                     });
}

bool DiffResult::has_regression() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const DiffFinding& f) {
                       return f.severity == DiffSeverity::kRegression;
                     });
}

json::Value DiffResult::to_json() const {
  json::Value root;
  root["ok"] = json::Value(ok());
  root["drift"] = json::Value(has_drift());
  root["regression"] = json::Value(has_regression());
  json::Array arr;
  arr.reserve(findings.size());
  for (const DiffFinding& f : findings) {
    json::Value j;
    j["severity"] = json::Value(severity_tag(f.severity));
    j["kind"] = json::Value(f.kind);
    j["section"] = json::Value(f.section);
    j["name"] = json::Value(f.name);
    j["base"] = json::Value(f.base);
    j["current"] = json::Value(f.current);
    j["detail"] = json::Value(f.detail);
    arr.push_back(std::move(j));
  }
  root["findings"] = json::Value(std::move(arr));
  return root;
}

std::string DiffResult::format_text() const {
  std::string out;
  for (const DiffFinding& f : findings) {
    out += '[';
    out += severity_tag(f.severity);
    out += "] ";
    out += f.detail;
    out += '\n';
  }
  char line[128];
  std::snprintf(line, sizeof(line),
                "verdict: %s (%zu finding%s, drift=%s, regression=%s)\n",
                ok() ? "OK" : "FAIL", findings.size(),
                findings.size() == 1 ? "" : "s",
                has_drift() ? "yes" : "no",
                has_regression() ? "yes" : "no");
  out += line;
  return out;
}

DiffResult diff_reports(const json::Value& base, const json::Value& current,
                        const DiffOptions& options) {
  DiffResult result;

  const std::string base_schema = schema_of(base);
  const std::string cur_schema = schema_of(current);
  if (base_schema != "lscatter.obs/1" || cur_schema != "lscatter.obs/1") {
    add_finding(result, DiffSeverity::kDrift, "schema_mismatch", "",
                "schema", 0.0, 0.0,
                "schema: base=\"" + base_schema + "\" new=\"" + cur_schema +
                    "\" (want \"lscatter.obs/1\")");
    return result;  // nothing below is meaningful on foreign documents
  }

  for (const char* section : {"counters", "gauges", "histograms"}) {
    diff_metric_names(result, base, current, section, options);
  }
  diff_counters(result, base, current);
  if (options.compare_quantiles) {
    diff_quantiles(result, base, current, options);
  }
  return result;
}

}  // namespace lscatter::obs
