#pragma once
// Counting-allocator hook for zero-allocation enforcement (DESIGN.md
// §15). Including this header DEFINES the global operator new/delete for
// the including binary, so it must appear in exactly ONE translation
// unit of a test or bench executable — never in a library TU. The hooks
// forward to malloc/free, so they compose with the sanitizer
// interceptors and run unchanged in the ASan/TSan lanes.
//
// Usage (bench_soak_day, test_core_stream_alloc):
//
//   #include "obs/alloc_probe.hpp"
//   ...
//   const auto before = lscatter::obs::alloc_probe_count();
//   hot_path();
//   const auto delta = lscatter::obs::alloc_probe_count() - before;
//   // delta must be 0 for a warm hot path
//
// The count is process-global and includes every thread's allocations —
// exactly what a steady-state soak needs: any allocation anywhere in the
// pipeline after warmup is a regression.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace lscatter::obs {
namespace alloc_probe_detail {
inline std::atomic<std::uint64_t> g_allocations{0};
}  // namespace alloc_probe_detail

/// Number of global operator new / new[] calls since process start.
inline std::uint64_t alloc_probe_count() {
  return alloc_probe_detail::g_allocations.load(std::memory_order_relaxed);
}

}  // namespace lscatter::obs

void* operator new(std::size_t size) {
  lscatter::obs::alloc_probe_detail::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  lscatter::obs::alloc_probe_detail::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
