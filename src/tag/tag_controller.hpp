#pragma once
// Tag-side modulation scheduling (paper §3.2).
//
// Per OFDM symbol the tag emits a square wave whose cycle equals the basic
// timing unit Ts = 1/fs; each cycle's initial phase (0 or pi) encodes one
// bit ('1' -> 0, '0' -> pi). In the complex-baseband equivalent the
// scattered signal in unit n is x_n * (+1) for '1' and x_n * (-1) for '0'
// (Eq. 4 with theta in {0, pi}).
//
// Schedule within a symbol (paper Fig. 10): skip the CP, center the N_sc
// useful modulation units inside the K-sample useful window so the
// residual sync error can shift the window by up to (K - N_sc)/2 units in
// either direction without clipping; everything else is filler '1'
// (continuous square waves, theta = 0).
//
// Schedule across symbols: PSS and SSS symbols of subframes 0/5 are never
// modulated (paper §3.1); the first modulated symbol of each packet
// carries the preamble; one subframe in every `resync_period` is spent
// listening (sync maintenance) rather than modulating.

#include <array>
#include <cstdint>
#include <vector>

#include "lte/cell_config.hpp"

namespace lscatter::tag {

struct TagScheduleConfig {
  /// The tag re-listens for PSS one subframe out of every this many.
  /// 1 in 10 lands the 20 MHz PHY rate at ~13.6 Mbps, matching §4.3.1.
  std::size_t resync_period_subframes = 10;

  /// Number of leading modulated symbols per packet used as preamble.
  std::size_t preamble_symbols = 1;

  /// One packet spans this many subframes (preamble included).
  std::size_t packet_subframes = 1;

  /// Cap on modulated *data* symbols per packet (0 = use every available
  /// symbol). Small caps give short packets whose CRC survives the
  /// per-unit BER floor — used by low-rate applications (Fig. 33).
  std::size_t max_data_symbols_per_packet = 0;

  /// Repetition factor: each data bit occupies this many consecutive
  /// basic timing units; the UE soft-combines them before slicing. r = 1
  /// is the paper's scheme; r > 1 trades rate for diversity against the
  /// OFDM-envelope BER floor (library extension; see the ablation bench).
  std::size_t repetition = 1;

  /// Shift of the modulation window from its centered position (units).
  /// 0 = the paper's placement, (K - N_sc)/2 into the useful part.
  /// Negative values push modulated units into the cyclic prefix, where
  /// the UE's FFT window discards them — the §3.2.3 failure mode the
  /// centered placement avoids (see the ablation bench).
  std::ptrdiff_t window_offset_units = 0;
};

/// What the tag does in one OFDM symbol.
struct SymbolPlan {
  enum class Kind : std::uint8_t {
    kFiller,    // continuous '1' square waves (also used over PSS/SSS)
    kPreamble,  // known pattern, N_sc bits
    kData,      // payload bits, N_sc bits
  };
  Kind kind = Kind::kFiller;
  std::vector<std::uint8_t> bits;  // size N_sc for preamble/data
};

/// What the tag does in one subframe.
struct SubframePlan {
  std::size_t subframe_index = 0;
  bool listening = false;  // sync maintenance: no modulation at all
  std::array<SymbolPlan, lte::kSymbolsPerSubframe> symbols;
};

class TagController {
 public:
  TagController(const lte::CellConfig& cell, const TagScheduleConfig& cfg);

  const TagScheduleConfig& schedule() const { return cfg_; }
  const lte::CellConfig& cell() const { return cell_; }

  /// Modulated units per symbol (= N_sc).
  std::size_t units_per_symbol() const { return cell_.n_subcarriers(); }

  /// *Information* bits per data symbol (= N_sc / repetition).
  std::size_t bits_per_symbol() const {
    return cell_.n_subcarriers() / cfg_.repetition;
  }

  /// True if the tag spends this subframe listening for PSS.
  bool is_listening_subframe(std::size_t subframe_index) const;

  /// True if symbol `l` of this subframe may be modulated (excludes
  /// PSS/SSS symbols of sync subframes).
  bool symbol_modulatable(std::size_t subframe_index, std::size_t l) const;

  /// Indices of the modulatable symbols of a subframe, in order. The first
  /// `preamble_symbols` of them carry the preamble in a packet's first
  /// subframe.
  std::vector<std::size_t> modulatable_symbols(
      std::size_t subframe_index) const;

  /// Payload bit capacity of a packet starting at `subframe_index`
  /// (preamble excluded, CRC-32 *not* yet subtracted).
  std::size_t packet_raw_bits(std::size_t subframe_index) const;

  /// Build the plan for one subframe of a packet. `symbol_payloads` are
  /// the *information* bit patterns for the data symbols in order (each
  /// exactly bits_per_symbol() long; repetition expansion to unit
  /// patterns happens inside); the preamble pattern is inserted
  /// automatically for the packet's first `preamble_symbols` symbols when
  /// `first_subframe_of_packet`.
  SubframePlan plan_subframe(
      std::size_t subframe_index, bool first_subframe_of_packet,
      const std::vector<std::vector<std::uint8_t>>& symbol_payloads) const;

  /// The fixed preamble pattern (N_sc bits, Gold-sequence derived).
  const std::vector<std::uint8_t>& preamble_pattern() const {
    return preamble_;
  }

  /// First modulated unit relative to the useful-window start:
  /// (K - N_sc) / 2 plus the configured window offset.
  std::ptrdiff_t modulation_start_unit() const {
    return static_cast<std::ptrdiff_t>(
               (cell_.fft_size() - cell_.n_subcarriers()) / 2) +
           cfg_.window_offset_units;
  }

  /// One-sided residual-sync tolerance in units (= samples) at the
  /// centered placement.
  std::size_t offset_tolerance_units() const {
    return (cell_.fft_size() - cell_.n_subcarriers()) / 2;
  }

 private:
  lte::CellConfig cell_;
  TagScheduleConfig cfg_;
  std::vector<std::uint8_t> preamble_;
};

/// Expand a SubframePlan into the per-sample bit pattern (1 = theta 0,
/// 0 = theta pi) on the tag's own timeline; samples_per_subframe() long.
/// Filler (and the CP / margin regions) are '1'. `window_offset` shifts
/// the modulation window (TagScheduleConfig::window_offset_units).
std::vector<std::uint8_t> expand_to_units(const lte::CellConfig& cell,
                                          const SubframePlan& plan,
                                          std::ptrdiff_t window_offset = 0);

}  // namespace lscatter::tag
