#pragma once
// Turns the analog front end's comparator edges into PSS timing estimates.
//
// The comparator fires a fixed (calibratable) latency after the true PSS
// start: RC rise time to the threshold plus the comparator's propagation
// delay. The FPGA subtracts that nominal latency; what is left is the
// residual synchronization error the modulation-offset margin must absorb
// (paper §3.1/§3.2.3, Fig. 31).
//
// The detector also enforces the 5 ms PSS cadence: edges that arrive far
// from the predicted next PSS are rejected as data-symbol false alarms.

#include <optional>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "dsp/units.hpp"

namespace lscatter::tag {

struct SyncDetectorConfig {
  double pss_period_s = 5e-3;

  /// Nominal detection latency compensated by the FPGA [s]. Calibrated to
  /// the analog front end defaults (see bench_fig31): RC rise to the
  /// comparator threshold plus the 12 us propagation delay, with the PBCH
  /// region shaping the subframe-0 envelope bump.
  double nominal_latency_s = 15e-6;

  /// Edges closer than this to the previous accepted edge are ignored
  /// (comparator chatter / SSS+PSS double bumps).
  double refractory_s = 2e-3;

  /// Once locked, accept only edges within this window of the prediction.
  double tracking_window_s = 1.5e-3;

  /// Edges needed at the right cadence to declare lock.
  int edges_to_lock = 2;

  /// Number of recent edges averaged into the timing estimate. One
  /// comparator edge jitters by ~+-20 us (the threshold crossing depends
  /// on the neighbouring data symbols); the FPGA's ring-buffer mean over
  /// the 5 ms cadence shrinks the residual into the +-13.8 us
  /// modulation-offset window (sigma / sqrt(8) ~ 5 us).
  std::size_t average_window_edges = 8;
};

class SyncDetector {
 public:
  explicit SyncDetector(const SyncDetectorConfig& config);

  /// Feed comparator rising-edge times (absolute, seconds, increasing
  /// across calls).
  void feed_edges(std::span<const double> edge_times);

  /// Digital-tag variant of the analog comparator path: correlate raw IQ
  /// against a time-domain PSS replica (dsp::fast_correlate, overlap-save
  /// FFT) and feed every normalized peak above `threshold` through the
  /// same cadence tracker as feed_edges. `t0_s` is the absolute time of
  /// samples[0]. Peaks within the configured refractory window of a
  /// stronger one are suppressed before they reach the tracker. Returns
  /// the number of detections fed. Unlike the comparator, correlation has
  /// no analog latency — callers of this path should run with
  /// nominal_latency_s = 0.
  std::size_t feed_iq(std::span<const dsp::cf32> samples,
                      std::span<const dsp::cf32> pss_replica, double t0_s,
                      dsp::Hz sample_rate, float threshold = 0.5f);

  bool locked() const { return locked_; }

  /// Latest latency-compensated PSS time estimate.
  std::optional<double> last_pss_estimate_s() const;

  /// Predicted time of the next PSS (estimate + k * 5 ms).
  std::optional<double> predict_next_pss_s(double now_s) const;

  const SyncDetectorConfig& config() const { return config_; }

 private:
  SyncDetectorConfig config_;
  bool locked_ = false;
  int consistent_edges_ = 0;
  std::optional<double> last_edge_s_;
  std::optional<double> estimate_s_;
  double anchor_s_ = 0.0;
  std::vector<double> phases_;  // ring buffer of edge phases vs anchor
};

/// Statistical stand-in for (analog front end + SyncDetector), used by the
/// long-running throughput benches: residual timing error after latency
/// compensation, drawn per re-sync event, plus tag clock drift between
/// re-syncs.
struct StatisticalSync {
  /// Residual error distribution (seconds). The paper's Fig. 31 shows raw
  /// detection latencies of 30-40 us; after subtracting the nominal 35 us
  /// the residual is a few microseconds.
  double bias_s = 0.0;
  double sigma_s = 2e-6;

  /// Tag clock offset in parts-per-million (drift between re-syncs).
  double clock_ppm = 10.0;

  /// Draw a residual error for one re-sync event.
  double sample_error_s(dsp::Rng& rng) const {
    return bias_s + sigma_s * rng.normal();
  }

  /// Error accumulated `dt` after a re-sync that started at `error0`.
  double drifted_error_s(double error0_s, double dt_s) const {
    return error0_s + clock_ppm * 1e-6 * dt_s;
  }
};

}  // namespace lscatter::tag
