#include "tag/modulator.hpp"

#include "obs/obs.hpp"

namespace lscatter::tag {

using dsp::cf32;
using dsp::cvec;

cvec apply_pattern(std::span<const cf32> rf_in,
                   std::span<const std::uint8_t> pattern,
                   std::ptrdiff_t timing_error_units, cf32 gain) {
  LSCATTER_OBS_TIMER("tag.modulator.apply_pattern");
  LSCATTER_OBS_COUNTER_ADD("tag.modulator.units_scattered", rf_in.size());
  cvec out(rf_in.size());
  const auto n_pat = static_cast<std::ptrdiff_t>(pattern.size());
  for (std::size_t n = 0; n < rf_in.size(); ++n) {
    const std::ptrdiff_t idx =
        static_cast<std::ptrdiff_t>(n) - timing_error_units;
    const bool one = (idx < 0 || idx >= n_pat) ? true : pattern[idx] != 0;
    const cf32 v = gain * rf_in[n];
    out[n] = one ? v : -v;
  }
  return out;
}

}  // namespace lscatter::tag
