#include "tag/sync_detector.hpp"

#include <cmath>
#include <numeric>

#include "obs/obs.hpp"

namespace lscatter::tag {

SyncDetector::SyncDetector(const SyncDetectorConfig& config)
    : config_(config) {}

void SyncDetector::feed_edges(std::span<const double> edge_times) {
  LSCATTER_OBS_COUNTER_ADD("tag.sync.edges_fed", edge_times.size());
  for (const double t : edge_times) {
    if (last_edge_s_ && t - *last_edge_s_ < config_.refractory_s) {
      LSCATTER_OBS_COUNTER_INC("tag.sync.edges_refractory");
      continue;
    }

    const double raw = t - config_.nominal_latency_s;
    if (!last_edge_s_) {
      last_edge_s_ = t;
      consistent_edges_ = 1;
      anchor_s_ = raw;
      phases_.assign(1, 0.0);
      estimate_s_ = raw;
      continue;
    }

    const double dt = t - *last_edge_s_;
    // How close is dt to an integer number of PSS periods?
    const double periods = std::round(dt / config_.pss_period_s);
    const double deviation =
        std::abs(dt - periods * config_.pss_period_s);

    if (periods >= 1.0 && deviation <= config_.tracking_window_s) {
      LSCATTER_OBS_COUNTER_INC("tag.sync.pss_accepted");
      ++consistent_edges_;
      if (consistent_edges_ >= config_.edges_to_lock && !locked_) {
        locked_ = true;
        LSCATTER_OBS_COUNTER_INC("tag.sync.locks");
      }
      last_edge_s_ = t;

      // FPGA ring buffer: phase of this edge relative to the anchor's
      // 5 ms grid, averaged over the last few edges.
      const double slots = std::round((raw - anchor_s_) /
                                      config_.pss_period_s);
      const double phase =
          raw - anchor_s_ - slots * config_.pss_period_s;
      phases_.push_back(phase);
      while (phases_.size() > config_.average_window_edges) {
        phases_.erase(phases_.begin());
      }
      const double mean_phase =
          std::accumulate(phases_.begin(), phases_.end(), 0.0) /
          static_cast<double>(phases_.size());
      estimate_s_ =
          anchor_s_ + slots * config_.pss_period_s + mean_phase;
    } else if (deviation > config_.tracking_window_s && !locked_) {
      // Unlocked and off-cadence: restart from this edge.
      LSCATTER_OBS_COUNTER_INC("tag.sync.restarts");
      last_edge_s_ = t;
      consistent_edges_ = 1;
      anchor_s_ = raw;
      phases_.assign(1, 0.0);
      estimate_s_ = raw;
    } else {
      // Locked and off-cadence: ignore (data-symbol false alarm).
      LSCATTER_OBS_COUNTER_INC("tag.sync.false_triggers");
    }
  }
}

std::optional<double> SyncDetector::last_pss_estimate_s() const {
  return estimate_s_;
}

std::optional<double> SyncDetector::predict_next_pss_s(double now_s) const {
  if (!estimate_s_) return std::nullopt;
  const double k =
      std::ceil((now_s - *estimate_s_) / config_.pss_period_s);
  return *estimate_s_ + std::max(k, 0.0) * config_.pss_period_s;
}

}  // namespace lscatter::tag
