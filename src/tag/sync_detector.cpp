#include "tag/sync_detector.hpp"

#include <cmath>
#include <numeric>

#include "core/contracts.hpp"
#include "dsp/correlate.hpp"
#include "obs/obs.hpp"

namespace lscatter::tag {

SyncDetector::SyncDetector(const SyncDetectorConfig& config)
    : config_(config) {}

void SyncDetector::feed_edges(std::span<const double> edge_times) {
  LSCATTER_OBS_COUNTER_ADD("tag.sync.edges_fed", edge_times.size());
  for (const double t : edge_times) {
    if (last_edge_s_ && t - *last_edge_s_ < config_.refractory_s) {
      LSCATTER_OBS_COUNTER_INC("tag.sync.edges_refractory");
      continue;
    }

    const double raw = t - config_.nominal_latency_s;
    if (!last_edge_s_) {
      last_edge_s_ = t;
      consistent_edges_ = 1;
      anchor_s_ = raw;
      phases_.assign(1, 0.0);
      estimate_s_ = raw;
      continue;
    }

    const double dt = t - *last_edge_s_;
    // How close is dt to an integer number of PSS periods?
    const double periods = std::round(dt / config_.pss_period_s);
    const double deviation =
        std::abs(dt - periods * config_.pss_period_s);

    if (periods >= 1.0 && deviation <= config_.tracking_window_s) {
      LSCATTER_OBS_COUNTER_INC("tag.sync.pss_accepted");
      ++consistent_edges_;
      if (consistent_edges_ >= config_.edges_to_lock && !locked_) {
        locked_ = true;
        LSCATTER_OBS_COUNTER_INC("tag.sync.locks");
      }
      last_edge_s_ = t;

      // FPGA ring buffer: phase of this edge relative to the anchor's
      // 5 ms grid, averaged over the last few edges.
      const double slots = std::round((raw - anchor_s_) /
                                      config_.pss_period_s);
      const double phase =
          raw - anchor_s_ - slots * config_.pss_period_s;
      phases_.push_back(phase);
      while (phases_.size() > config_.average_window_edges) {
        phases_.erase(phases_.begin());
      }
      const double mean_phase =
          std::accumulate(phases_.begin(), phases_.end(), 0.0) /
          static_cast<double>(phases_.size());
      estimate_s_ =
          anchor_s_ + slots * config_.pss_period_s + mean_phase;
    } else if (deviation > config_.tracking_window_s && !locked_) {
      // Unlocked and off-cadence: restart from this edge.
      LSCATTER_OBS_COUNTER_INC("tag.sync.restarts");
      last_edge_s_ = t;
      consistent_edges_ = 1;
      anchor_s_ = raw;
      phases_.assign(1, 0.0);
      estimate_s_ = raw;
    } else {
      // Locked and off-cadence: ignore (data-symbol false alarm).
      LSCATTER_OBS_COUNTER_INC("tag.sync.false_triggers");
    }
  }
}

std::size_t SyncDetector::feed_iq(std::span<const dsp::cf32> samples,
                                  std::span<const dsp::cf32> pss_replica,
                                  double t0_s, dsp::Hz sample_rate,
                                  float threshold) {
  LSCATTER_EXPECT(!pss_replica.empty(), "PSS replica must be non-empty");
  LSCATTER_EXPECT(sample_rate.value() > 0.0,
                  "sample rate must be positive");
  if (samples.size() < pss_replica.size()) return 0;
  LSCATTER_OBS_TIMER("tag.sync.feed_iq");

  // Per-thread metric buffer: feed_iq is called every few subframes in the
  // streaming receiver, so the correlation output must not churn the heap.
  thread_local std::vector<float> metric;
  const std::size_t lags = samples.size() - pss_replica.size() + 1;
  if (metric.size() < lags) metric.resize(lags);
  const std::span<float> m(metric.data(), lags);
  dsp::fast_normalized_correlation_into(samples, pss_replica, m);

  // Greedy peak picking: take local maxima above threshold, suppressing
  // anything within the refractory window of a stronger earlier pick.
  // Scanning left-to-right with the refractory check matches what the
  // comparator hardware does (first crossing wins, then dead time).
  const double dt = 1.0 / sample_rate.value();
  const auto refractory_lags =
      static_cast<std::size_t>(config_.refractory_s / dt);
  thread_local std::vector<double> edges;
  edges.clear();
  std::size_t last_pick = 0;
  bool have_pick = false;
  for (std::size_t i = 0; i < lags; ++i) {
    if (m[i] < threshold) continue;
    const bool rising = i == 0 || m[i - 1] <= m[i];
    const bool falling = i + 1 >= lags || m[i + 1] < m[i];
    if (!(rising && falling)) continue;  // not a local max
    if (have_pick && i - last_pick < refractory_lags) {
      LSCATTER_OBS_COUNTER_INC("tag.sync.iq_peaks_refractory");
      continue;
    }
    edges.push_back(t0_s + static_cast<double>(i) * dt);
    last_pick = i;
    have_pick = true;
  }
  LSCATTER_OBS_COUNTER_ADD("tag.sync.iq_detections", edges.size());
  feed_edges(edges);
  return edges.size();
}

std::optional<double> SyncDetector::last_pss_estimate_s() const {
  return estimate_s_;
}

std::optional<double> SyncDetector::predict_next_pss_s(double now_s) const {
  if (!estimate_s_) return std::nullopt;
  const double k =
      std::ceil((now_s - *estimate_s_) / config_.pss_period_s);
  return *estimate_s_ + std::max(k, 0.0) * config_.pss_period_s;
}

}  // namespace lscatter::tag
