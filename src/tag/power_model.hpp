#pragma once
// Tag power model (paper §4.8). Reproduces the component-level energy
// budget of the LScatter tag: the MAX931-class comparator in the sync
// circuit, the ADG902 RF switch (consumption linear in channel bandwidth),
// the Igloo Nano AGLN250 FPGA baseband with Flash-Freeze, and the clock
// source (crystal oscillator per-datasheet, or a HitchHike/Interscatter
// ring oscillator).

#include <string>
#include <vector>

#include "lte/cell_config.hpp"

namespace lscatter::tag {

enum class ClockSource {
  kCrystal,        // LTC6990 @1.92 MHz .. CSX-252F @30.72 MHz
  kRingOscillator  // IC-design option, HitchHike/Interscatter style
};

struct PowerBreakdown {
  double sync_comparator_uw = 0.0;
  double rf_switch_uw = 0.0;
  double baseband_fpga_uw = 0.0;
  double clock_uw = 0.0;

  double total_uw() const {
    return sync_comparator_uw + rf_switch_uw + baseband_fpga_uw + clock_uw;
  }
};

struct PowerModel {
  // Datasheet anchors from the paper.
  double comparator_uw = 10.0;          // MAX931 [35]
  double rf_switch_uw_at_20mhz = 57.0;  // ADG902, linear in bandwidth [55]
  double fpga_uw = 82.0;                // AGLN250 with 80% Flash-Freeze
  double crystal_uw_at_1_92mhz = 588.0; // LTC6990 [10]
  double crystal_uw_at_30_72mhz = 4500.0;  // CSX-252F [9]
  double ring_osc_uw_at_30mhz = 4.0;       // HitchHike [53]
  double ring_osc_uw_at_35_75mhz = 9.69;   // Interscatter [23]

  /// Required tag clock rate for a bandwidth: the LTE sample rate (the
  /// square-wave cycle equals the basic timing unit 1/fs).
  double clock_rate_hz(lte::Bandwidth bw) const;

  PowerBreakdown breakdown(lte::Bandwidth bw, ClockSource clock) const;
};

/// Pretty row for the bench output.
std::string format_power_row(lte::Bandwidth bw, ClockSource clock,
                             const PowerBreakdown& p);

/// RF energy harvesting from the ambient LTE signal itself (library
/// extension): whether the tag can be battery-free at a given distance.
/// Typical CMOS rectifiers: ~30% conversion above a ~-20 dBm sensitivity
/// knee, nothing below it.
struct HarvestModel {
  double efficiency = 0.30;
  double sensitivity_dbm = -20.0;  // lint-ok: units — harvest curve parameter; model keeps raw doubles

  /// Harvested power [uW] from `incident_dbm` at the tag antenna.
  double harvested_uw(double incident_dbm) const;  // lint-ok: units — harvest curve input; model keeps raw doubles

  /// Fraction of time the tag can run from harvest alone (capped at 1):
  /// harvested / consumed. >= 1 means fully battery-free.
  double sustainable_duty_cycle(double incident_dbm,  // lint-ok: units — harvest curve input; model keeps raw doubles
                                const PowerBreakdown& consumption) const;
};

}  // namespace lscatter::tag
