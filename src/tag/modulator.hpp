#pragma once
// The RF switch, in complex-baseband form.
//
// Physically the tag multiplies the incident RF by a square wave of period
// Ts whose first harmonic shifts the scatter to f_c ± 1/Ts (paper Eq. 3/4);
// the per-cycle initial phase theta in {0, pi} rides along. A receiver
// tuned to f_c + 1/Ts therefore sees, in basic timing unit n,
//
//     (2/pi) * Gamma * x_n * e^{j theta_n}
//
// which is what apply_pattern() computes: sample-wise sign flips with the
// conversion amplitude folded into `gain`. The un-cancelled image at
// f_c - 1/Ts is `image_rejection_db` below the wanted sideband and is
// handled at the link level as added interference.

#include "dsp/types.hpp"

namespace lscatter::tag {

/// Square-wave first-harmonic amplitude relative to an ideal mixer: 2/pi.
inline constexpr double kSquareWaveFirstHarmonic = 2.0 / 3.14159265358979323846;

/// Scatter `rf_in` (the eNodeB signal as seen at the tag) according to the
/// unit pattern. `pattern` lives on the tag's own timeline, which lags the
/// true signal timeline by `timing_error_units` (positive = tag late):
/// output[n] = gain * rf_in[n] * sign(pattern[n - timing_error_units]).
/// Pattern indices out of range behave as filler '1'.
dsp::cvec apply_pattern(std::span<const dsp::cf32> rf_in,
                        std::span<const std::uint8_t> pattern,
                        std::ptrdiff_t timing_error_units, dsp::cf32 gain);

}  // namespace lscatter::tag
