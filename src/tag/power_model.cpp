#include "tag/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dsp/db.hpp"

namespace lscatter::tag {

double PowerModel::clock_rate_hz(lte::Bandwidth bw) const {
  lte::CellConfig cfg;
  cfg.bandwidth = bw;
  return cfg.sample_rate_hz();
}

PowerBreakdown PowerModel::breakdown(lte::Bandwidth bw,
                                     ClockSource clock) const {
  PowerBreakdown p;
  p.sync_comparator_uw = comparator_uw;

  const double bw_hz = lte::bandwidth_hz(bw);  // lint-ok: units — power-model coefficient, not link-budget math
  p.rf_switch_uw = rf_switch_uw_at_20mhz * (bw_hz / 20e6);

  p.baseband_fpga_uw = fpga_uw;

  const double f = clock_rate_hz(bw);
  if (clock == ClockSource::kCrystal) {
    // Interpolate the two datasheet anchors linearly in frequency — CMOS
    // oscillator power scales ~linearly with f.
    const double f0 = 1.92e6;
    const double f1 = 30.72e6;
    const double t = (f - f0) / (f1 - f0);
    p.clock_uw = crystal_uw_at_1_92mhz +
                 t * (crystal_uw_at_30_72mhz - crystal_uw_at_1_92mhz);
  } else {
    // Ring oscillator anchors (4 uW @ 30 MHz, 9.69 uW @ 35.75 MHz) —
    // scale linearly through the origin from the 30 MHz point.
    p.clock_uw = ring_osc_uw_at_30mhz * (f / 30e6);
  }
  return p;
}

std::string format_power_row(lte::Bandwidth bw, ClockSource clock,
                             const PowerBreakdown& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-7s clock=%-8s comparator=%6.1fuW switch=%6.1fuW "
                "fpga=%6.1fuW clock=%7.1fuW total=%8.1fuW",
                lte::to_string(bw).c_str(),
                clock == ClockSource::kCrystal ? "crystal" : "ring-osc",
                p.sync_comparator_uw, p.rf_switch_uw, p.baseband_fpga_uw,
                p.clock_uw, p.total_uw());
  return buf;
}

double HarvestModel::harvested_uw(double incident_dbm) const {  // lint-ok: units — harvest curve input; model keeps raw doubles
  if (incident_dbm < sensitivity_dbm) return 0.0;
  return efficiency * dsp::dbm_to_mw(incident_dbm) * 1e3;  // mW -> uW
}

double HarvestModel::sustainable_duty_cycle(
    double incident_dbm, const PowerBreakdown& consumption) const {  // lint-ok: units — harvest curve input; model keeps raw doubles
  const double total = consumption.total_uw();
  if (total <= 0.0) return 1.0;
  return std::min(1.0, harvested_uw(incident_dbm) / total);
}

}  // namespace lscatter::tag
