#pragma once
// Numerical simulation of the paper's Figure-7 synchronization circuit:
//
//   antenna -> matching network (C1/L1, narrowband around the carrier)
//           -> envelope detector D1/C2/R1 (fast charge, slow discharge)
//           -> averaging circuit R2/C3/R3 (slow one-pole)
//           -> voltage comparator (threshold = average, with hysteresis
//              and the MAX931's ~12 us propagation delay)
//
// The matching network is tuned at the carrier with ~1 MHz bandwidth, so
// the detector effectively sees the energy of the central 0.93 MHz of the
// LTE signal — exactly the band PSS/SSS occupy. During PSS/SSS symbols the
// center band is fully occupied (and power-boosted), while in data symbols
// the center RBs are only intermittently scheduled; that contrast is what
// makes the PSS "outstanding" in the paper's Figure 8 RC-filter trace.
//
// The simulation runs on a decimated envelope stream (the RC stages have
// kHz..MHz bandwidth; simulating them at 30.72 Msps would be waste).

#include <cstddef>
#include <vector>

#include "dsp/fir.hpp"
#include "dsp/types.hpp"

namespace lscatter::tag {

struct AnalogFrontendConfig {
  /// Envelope-stream decimation relative to the cell sample rate.
  std::size_t decimation = 16;

  /// Matching-network bandwidth [Hz] (one-sided cutoff of the equivalent
  /// baseband lowpass).
  double matching_bw_hz = 0.6e6;  // lint-ok: units — analog component value, not link-budget math
  std::size_t matching_taps = 129;

  /// D1/C2/R1 stage. Near-symmetric taus make this a mean-envelope
  /// detector (~70 us ripple filter; also integrates the 143 us PSS+SSS double bump that single data symbols cannot match): a peak detector (fast charge, slow
  /// discharge) would ride the Rayleigh tail of the bursty OFDM envelope
  /// and erase the PSS contrast, because the PSS ZC sequence has a
  /// *constant* envelope while data symbols spike above their mean.
  double charge_tau_s = 80e-6;
  double discharge_tau_s = 80e-6;

  /// Averaging stage time constant (R2/C3/R3). Must be >> 5 ms features.
  double average_tau_s = 4e-3;

  /// Comparator trips when rc > threshold_ratio * average (relative
  /// hysteresis keeps it from chattering); output is delayed by the
  /// MAX931-class propagation delay.
  double threshold_ratio = 2.5;
  double hysteresis_ratio = 0.1;
  double comparator_delay_s = 12e-6;

  /// Power-on settle: the comparator output is gated off until the
  /// averaging circuit has charged (a real tag waits a few RC constants
  /// after power-up before arming the FPGA).
  double settle_s = 10e-3;
};

/// Stage-by-stage outputs over one processed buffer — the data behind the
/// paper's Figure 8.
struct AnalogTrace {
  double dt_s = 0.0;  // envelope-stream sample period
  dsp::fvec rc;       // RC filter output
  dsp::fvec average;  // averaging-circuit output
  std::vector<std::uint8_t> comparator;  // 0/1, delay applied
};

class AnalogFrontend {
 public:
  AnalogFrontend(const AnalogFrontendConfig& config, double sample_rate_hz);  // lint-ok: units — sample-domain boundary like cell_config

  /// Process a contiguous stretch of complex baseband input (at the cell
  /// sample rate, any amplitude scale). State persists across calls so
  /// multi-subframe streams can be fed in chunks.
  AnalogTrace process(std::span<const dsp::cf32> rf_samples);

  /// Rising-edge times [s] of the comparator output in the given trace,
  /// measured from the *start of that trace's buffer*.
  static std::vector<double> rising_edges(const AnalogTrace& trace);

  const AnalogFrontendConfig& config() const { return config_; }
  double envelope_rate_hz() const { return env_rate_hz_; }

 private:
  AnalogFrontendConfig config_;
  double sample_rate_hz_;
  double env_rate_hz_;
  dsp::fvec matching_taps_;
  dsp::DiodeRc rc_;
  dsp::OnePole average_;
  bool comp_state_ = false;
  double elapsed_s_ = 0.0;  // total processed time (for state continuity)
};

}  // namespace lscatter::tag
