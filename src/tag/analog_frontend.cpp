#include "tag/analog_frontend.hpp"

#include <cassert>
#include <cmath>

#include "obs/obs.hpp"

namespace lscatter::tag {

using dsp::cf32;

AnalogFrontend::AnalogFrontend(const AnalogFrontendConfig& config,
                               double sample_rate_hz)  // lint-ok: units — sample-domain boundary like cell_config
    : config_(config),
      sample_rate_hz_(sample_rate_hz),
      env_rate_hz_(sample_rate_hz / static_cast<double>(config.decimation)),
      matching_taps_(dsp::design_lowpass(
          config.matching_bw_hz / sample_rate_hz, config.matching_taps)),
      rc_(config.charge_tau_s, config.discharge_tau_s, 1.0 / env_rate_hz_),
      average_(config.average_tau_s, 1.0 / env_rate_hz_) {
  assert(config.decimation >= 1);
}

AnalogTrace AnalogFrontend::process(std::span<const cf32> rf_samples) {
  LSCATTER_OBS_TIMER("tag.frontend.process");
  LSCATTER_OBS_COUNTER_ADD("tag.frontend.rf_samples", rf_samples.size());
  const std::size_t dec = config_.decimation;
  const std::size_t n_env = rf_samples.size() / dec;
  AnalogTrace trace;
  trace.dt_s = 1.0 / env_rate_hz_;
  trace.rc.resize(n_env);
  trace.average.resize(n_env);
  trace.comparator.resize(n_env);

  // Matching network: narrowband filter evaluated only at the decimated
  // output instants (polyphase-style direct evaluation).
  const std::size_t half = matching_taps_.size() / 2;
  const auto delay_env = static_cast<std::size_t>(
      std::llround(config_.comparator_delay_s * env_rate_hz_));

  std::vector<std::uint8_t> raw_comp(n_env);
  bool warm_started = elapsed_s_ > 0.0;
  for (std::size_t i = 0; i < n_env; ++i) {
    const std::size_t center = i * dec + dec / 2;
    dsp::cf64 acc{};
    for (std::size_t t = 0; t < matching_taps_.size(); ++t) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(center + half) -
                                 static_cast<std::ptrdiff_t>(t);
      if (idx < 0 ||
          idx >= static_cast<std::ptrdiff_t>(rf_samples.size()))
        continue;
      const cf32 v = rf_samples[static_cast<std::size_t>(idx)];
      acc += dsp::cf64{v.real(), v.imag()} *
             static_cast<double>(matching_taps_[t]);
    }
    const float envelope = static_cast<float>(std::abs(acc));

    if (!warm_started) {
      // A real circuit has been powered for many RC constants before the
      // FPGA looks at it; start the integrators at the ambient level
      // instead of letting a multi-ms settle transient trip the
      // comparator.
      rc_.reset(envelope);
      average_.reset(envelope);
      warm_started = true;
    }

    const float rc_out = rc_.step(envelope);
    const float avg_out = average_.step(rc_out);
    trace.rc[i] = rc_out;
    trace.average[i] = avg_out;

    // Comparator with relative hysteresis.
    const float on_level =
        avg_out * static_cast<float>(config_.threshold_ratio);
    const float off_level =
        avg_out * static_cast<float>(config_.threshold_ratio *
                                     (1.0 - config_.hysteresis_ratio));
    if (!comp_state_ && rc_out > on_level) comp_state_ = true;
    if (comp_state_ && rc_out < off_level) comp_state_ = false;
    raw_comp[i] = comp_state_ ? 1 : 0;
  }

  // Propagation delay: the logic output trails the analog crossing. The
  // settle gate keeps cold-start transients from reaching the FPGA.
  const double t0 = elapsed_s_;
  for (std::size_t i = 0; i < n_env; ++i) {
    const double t = t0 + static_cast<double>(i) * trace.dt_s;
    if (t < config_.settle_s || i < delay_env) {
      trace.comparator[i] = 0;
    } else {
      trace.comparator[i] = raw_comp[i - delay_env];
    }
  }

  elapsed_s_ += static_cast<double>(rf_samples.size()) / sample_rate_hz_;

#if LSCATTER_OBS_ENABLED
  // Comparator activity: rising edges are the energy events the FPGA
  // wakes up for, the per-buffer envelope energy tracks what the
  // harvesting/matching stage actually absorbed.
  std::size_t edges = 0;
  double envelope_energy = 0.0;
  for (std::size_t i = 0; i < n_env; ++i) {
    envelope_energy += static_cast<double>(trace.rc[i]) *
                       static_cast<double>(trace.rc[i]);
    if (i > 0 && trace.comparator[i] && !trace.comparator[i - 1]) ++edges;
  }
  LSCATTER_OBS_COUNTER_ADD("tag.frontend.comparator_edges", edges);
  LSCATTER_OBS_HISTOGRAM_RECORD("tag.frontend.envelope_energy",
                                envelope_energy);
#endif
  return trace;
}

std::vector<double> AnalogFrontend::rising_edges(const AnalogTrace& trace) {
  std::vector<double> edges;
  for (std::size_t i = 1; i < trace.comparator.size(); ++i) {
    if (trace.comparator[i] && !trace.comparator[i - 1]) {
      edges.push_back(static_cast<double>(i) * trace.dt_s);
    }
  }
  return edges;
}

}  // namespace lscatter::tag
