#include "tag/tag_controller.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "lte/ofdm.hpp"
#include "lte/sequences.hpp"
#include "lte/signal_map.hpp"
#include "obs/obs.hpp"

namespace lscatter::tag {

TagController::TagController(const lte::CellConfig& cell,
                             const TagScheduleConfig& cfg)
    : cell_(cell), cfg_(cfg) {
  LSCATTER_EXPECT(cfg.resync_period_subframes >= 2,
                  "resync period must leave room for data subframes");
  LSCATTER_EXPECT(cfg.preamble_symbols >= 1,
                  "a packet needs at least one preamble symbol");
  LSCATTER_EXPECT(cfg.packet_subframes >= 1,
                  "a packet spans at least one subframe");
  LSCATTER_EXPECT(cfg.repetition >= 1 &&
                      cfg.repetition <= cell.n_subcarriers() / 33,
                  "repetition factor outside the usable unit budget");
  // Fixed pseudo-random preamble with good autocorrelation, from the LTE
  // Gold generator (c_init chosen as a constant known to tag and UE).
  preamble_ = lte::gold_sequence(0x5CA77E51u & 0x7FFFFFFFu,
                                 cell.n_subcarriers());
}

bool TagController::is_listening_subframe(std::size_t subframe_index) const {
  return subframe_index % cfg_.resync_period_subframes ==
         cfg_.resync_period_subframes - 1;
}

bool TagController::symbol_modulatable(std::size_t subframe_index,
                                       std::size_t l) const {
  if (lte::is_sync_subframe(subframe_index) &&
      (l == lte::kPssSymbolIndex || l == lte::kSssSymbolIndex)) {
    return false;
  }
  return true;
}

std::vector<std::size_t> TagController::modulatable_symbols(
    std::size_t subframe_index) const {
  std::vector<std::size_t> out;
  out.reserve(lte::kSymbolsPerSubframe);
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    if (symbol_modulatable(subframe_index, l)) out.push_back(l);
  }
  return out;
}

std::size_t TagController::packet_raw_bits(std::size_t subframe_index) const {
  // Counts via symbol_modulatable directly (not modulatable_symbols):
  // this sits on the streaming receiver's per-packet hot path, which must
  // stay heap-allocation-free (DESIGN.md §15).
  std::size_t n_symbols = 0;
  for (std::size_t s = 0; s < cfg_.packet_subframes; ++s) {
    const std::size_t sf = subframe_index + s;
    if (is_listening_subframe(sf)) continue;
    for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
      if (symbol_modulatable(sf, l)) ++n_symbols;
    }
  }
  if (n_symbols <= cfg_.preamble_symbols) return 0;
  std::size_t data_symbols = n_symbols - cfg_.preamble_symbols;
  if (cfg_.max_data_symbols_per_packet > 0) {
    data_symbols =
        std::min(data_symbols, cfg_.max_data_symbols_per_packet);
  }
  return data_symbols * bits_per_symbol();
}

SubframePlan TagController::plan_subframe(
    std::size_t subframe_index, bool first_subframe_of_packet,
    const std::vector<std::vector<std::uint8_t>>& symbol_payloads) const {
  SubframePlan plan;
  plan.subframe_index = subframe_index;
  plan.listening = is_listening_subframe(subframe_index);
  LSCATTER_OBS_COUNTER_INC("tag.controller.subframes_planned");
  if (plan.listening) {
    LSCATTER_OBS_COUNTER_INC("tag.controller.listening_subframes");
    return plan;
  }

  std::size_t next_payload = 0;
  std::size_t preambles_placed = 0;
  for (const std::size_t l : modulatable_symbols(subframe_index)) {
    SymbolPlan& sp = plan.symbols[l];
    if (first_subframe_of_packet &&
        preambles_placed < cfg_.preamble_symbols) {
      sp.kind = SymbolPlan::Kind::kPreamble;
      sp.bits = preamble_;
      ++preambles_placed;
      LSCATTER_OBS_COUNTER_INC("tag.controller.preamble_symbols");
      continue;
    }
    if (next_payload < symbol_payloads.size()) {
      LSCATTER_OBS_COUNTER_INC("tag.controller.data_symbols");
      LSCATTER_ASSERT(
          symbol_payloads[next_payload].size() == bits_per_symbol(),
          "per-symbol payload must match bits_per_symbol()");
      sp.kind = SymbolPlan::Kind::kData;
      // Repetition expansion: each info bit fills `repetition`
      // consecutive units; leftover units are filler '1'.
      const auto& info = symbol_payloads[next_payload++];
      sp.bits.assign(units_per_symbol(), 1);
      for (std::size_t i = 0; i < info.size(); ++i) {
        for (std::size_t r = 0; r < cfg_.repetition; ++r) {
          sp.bits[i * cfg_.repetition + r] = info[i];
        }
      }
    }
    // else: leave filler.
  }
  return plan;
}

std::vector<std::uint8_t> expand_to_units(const lte::CellConfig& cell,
                                          const SubframePlan& plan,
                                          std::ptrdiff_t window_offset) {
  std::vector<std::uint8_t> units(cell.samples_per_subframe(), 1);
  if (plan.listening) return units;

  const std::size_t n_sc = cell.n_subcarriers();
  const std::ptrdiff_t start_unit =
      static_cast<std::ptrdiff_t>((cell.fft_size() - n_sc) / 2) +
      window_offset;
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    const SymbolPlan& sp = plan.symbols[l];
    if (sp.kind == SymbolPlan::Kind::kFiller) continue;
    LSCATTER_ASSERT(sp.bits.size() == n_sc,
                    "modulation pattern must span the 1200-unit window");
    const std::ptrdiff_t useful = static_cast<std::ptrdiff_t>(
        lte::symbol_offset_in_subframe(cell, l) +
        cell.cp_length(l % lte::kSymbolsPerSlot));
    for (std::size_t n = 0; n < n_sc; ++n) {
      const std::ptrdiff_t idx =
          useful + start_unit + static_cast<std::ptrdiff_t>(n);
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(units.size())) {
        units[static_cast<std::size_t>(idx)] = sp.bits[n];
      }
    }
  }
  return units;
}

}  // namespace lscatter::tag
