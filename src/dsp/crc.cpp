#include "dsp/crc.hpp"

#include <algorithm>
#include <cassert>

namespace lscatter::dsp {

std::uint32_t crc_value(std::span<const std::uint8_t> bits,
                        std::uint32_t poly, std::size_t n_crc_bits) {
  assert(n_crc_bits > 0 && n_crc_bits <= 32);
  // Bit-serial long division over GF(2) with zero-padded message.
  std::uint32_t reg = 0;
  const std::uint32_t top = 1u << (n_crc_bits - 1);
  const std::uint32_t mask =
      n_crc_bits == 32 ? 0xFFFFFFFFu : ((1u << n_crc_bits) - 1u);
  auto shift_in = [&](std::uint8_t bit) {
    const bool feedback = (reg & top) != 0;
    reg = ((reg << 1) | bit) & mask;
    if (feedback) reg ^= poly & mask;
  };
  for (const std::uint8_t b : bits) shift_in(b & 1u);
  for (std::size_t i = 0; i < n_crc_bits; ++i) shift_in(0);
  return reg;
}

std::vector<std::uint8_t> crc_bits(std::span<const std::uint8_t> bits,
                                   std::uint32_t poly,
                                   std::size_t n_crc_bits) {
  const std::uint32_t reg = crc_value(bits, poly, n_crc_bits);
  std::vector<std::uint8_t> out(n_crc_bits);
  for (std::size_t i = 0; i < n_crc_bits; ++i) {
    out[i] = static_cast<std::uint8_t>((reg >> (n_crc_bits - 1 - i)) & 1u);
  }
  return out;
}

std::vector<std::uint8_t> crc24a(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, 0x864CFBu, 24);
}

std::vector<std::uint8_t> crc16(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, 0x1021u, 16);
}

std::vector<std::uint8_t> crc32(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, 0x04C11DB7u, 32);
}

namespace {
std::vector<std::uint8_t> attach(
    std::span<const std::uint8_t> bits,
    std::vector<std::uint8_t> (*fn)(std::span<const std::uint8_t>)) {
  std::vector<std::uint8_t> out(bits.begin(), bits.end());
  const auto crc = fn(bits);
  out.insert(out.end(), crc.begin(), crc.end());
  return out;
}

// Allocation-free: compare the register value bit-by-bit against the
// trailing check bits so the streaming hot path (check_crc32 per packet)
// never touches the heap.
bool check(std::span<const std::uint8_t> bits_with_crc, std::size_t n_crc,
           std::uint32_t poly) {
  if (bits_with_crc.size() < n_crc) return false;
  const auto payload = bits_with_crc.first(bits_with_crc.size() - n_crc);
  const std::uint32_t reg = crc_value(payload, poly, n_crc);
  const auto tail = bits_with_crc.last(n_crc);
  for (std::size_t i = 0; i < n_crc; ++i) {
    const std::uint8_t expect =
        static_cast<std::uint8_t>((reg >> (n_crc - 1 - i)) & 1u);
    if ((tail[i] & 1u) != expect) return false;
  }
  return true;
}
}  // namespace

std::vector<std::uint8_t> attach_crc24a(std::span<const std::uint8_t> bits) {
  return attach(bits, crc24a);
}
std::vector<std::uint8_t> attach_crc16(std::span<const std::uint8_t> bits) {
  return attach(bits, crc16);
}
std::vector<std::uint8_t> attach_crc32(std::span<const std::uint8_t> bits) {
  return attach(bits, crc32);
}

bool check_crc24a(std::span<const std::uint8_t> bits_with_crc) {
  return check(bits_with_crc, 24, 0x864CFBu);
}
bool check_crc16(std::span<const std::uint8_t> bits_with_crc) {
  return check(bits_with_crc, 16, 0x1021u);
}
bool check_crc32(std::span<const std::uint8_t> bits_with_crc) {
  return check(bits_with_crc, 32, 0x04C11DB7u);
}

}  // namespace lscatter::dsp
