#include "dsp/crc.hpp"

#include <algorithm>
#include <cassert>

namespace lscatter::dsp {

std::vector<std::uint8_t> crc_bits(std::span<const std::uint8_t> bits,
                                   std::uint32_t poly,
                                   std::size_t n_crc_bits) {
  assert(n_crc_bits > 0 && n_crc_bits <= 32);
  // Bit-serial long division over GF(2) with zero-padded message.
  std::uint32_t reg = 0;
  const std::uint32_t top = 1u << (n_crc_bits - 1);
  const std::uint32_t mask =
      n_crc_bits == 32 ? 0xFFFFFFFFu : ((1u << n_crc_bits) - 1u);
  auto shift_in = [&](std::uint8_t bit) {
    const bool feedback = (reg & top) != 0;
    reg = ((reg << 1) | bit) & mask;
    if (feedback) reg ^= poly & mask;
  };
  for (const std::uint8_t b : bits) shift_in(b & 1u);
  for (std::size_t i = 0; i < n_crc_bits; ++i) shift_in(0);

  std::vector<std::uint8_t> out(n_crc_bits);
  for (std::size_t i = 0; i < n_crc_bits; ++i) {
    out[i] = static_cast<std::uint8_t>((reg >> (n_crc_bits - 1 - i)) & 1u);
  }
  return out;
}

std::vector<std::uint8_t> crc24a(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, 0x864CFBu, 24);
}

std::vector<std::uint8_t> crc16(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, 0x1021u, 16);
}

std::vector<std::uint8_t> crc32(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, 0x04C11DB7u, 32);
}

namespace {
std::vector<std::uint8_t> attach(
    std::span<const std::uint8_t> bits,
    std::vector<std::uint8_t> (*fn)(std::span<const std::uint8_t>)) {
  std::vector<std::uint8_t> out(bits.begin(), bits.end());
  const auto crc = fn(bits);
  out.insert(out.end(), crc.begin(), crc.end());
  return out;
}

bool check(std::span<const std::uint8_t> bits_with_crc, std::size_t n_crc,
           std::vector<std::uint8_t> (*fn)(std::span<const std::uint8_t>)) {
  if (bits_with_crc.size() < n_crc) return false;
  const auto payload = bits_with_crc.first(bits_with_crc.size() - n_crc);
  const auto expect = fn(payload);
  return std::equal(expect.begin(), expect.end(),
                    bits_with_crc.end() - static_cast<std::ptrdiff_t>(n_crc));
}
}  // namespace

std::vector<std::uint8_t> attach_crc24a(std::span<const std::uint8_t> bits) {
  return attach(bits, crc24a);
}
std::vector<std::uint8_t> attach_crc16(std::span<const std::uint8_t> bits) {
  return attach(bits, crc16);
}
std::vector<std::uint8_t> attach_crc32(std::span<const std::uint8_t> bits) {
  return attach(bits, crc32);
}

bool check_crc24a(std::span<const std::uint8_t> bits_with_crc) {
  return check(bits_with_crc, 24, crc24a);
}
bool check_crc16(std::span<const std::uint8_t> bits_with_crc) {
  return check(bits_with_crc, 16, crc16);
}
bool check_crc32(std::span<const std::uint8_t> bits_with_crc) {
  return check(bits_with_crc, 32, crc32);
}

}  // namespace lscatter::dsp
