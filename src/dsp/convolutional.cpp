#include "dsp/convolutional.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lscatter::dsp {

namespace {

constexpr std::size_t kStates = 1u << (kConvConstraint - 1);  // 64

inline std::uint8_t parity(std::uint32_t x) {
  x ^= x >> 16;
  x ^= x >> 8;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return static_cast<std::uint8_t>(x & 1u);
}

// Output pair for (state, input). State holds the most recent 6 bits,
// newest in the MSB position of the 7-bit shift register.
inline void outputs(std::uint32_t state, std::uint8_t in, std::uint8_t& o0,
                    std::uint8_t& o1) {
  const std::uint32_t reg = (static_cast<std::uint32_t>(in) << 6) | state;
  o0 = parity(reg & kConvG0);
  o1 = parity(reg & kConvG1);
}

inline std::uint32_t next_state(std::uint32_t state, std::uint8_t in) {
  return ((static_cast<std::uint32_t>(in) << 6) | state) >> 1;
}

}  // namespace

std::vector<std::uint8_t> conv_encode(std::span<const std::uint8_t> info) {
  std::vector<std::uint8_t> coded;
  coded.reserve(conv_encoded_bits(info.size()));
  std::uint32_t state = 0;
  auto push = [&](std::uint8_t bit) {
    std::uint8_t o0 = 0;
    std::uint8_t o1 = 0;
    outputs(state, bit, o0, o1);
    coded.push_back(o0);
    coded.push_back(o1);
    state = next_state(state, bit);
  };
  for (const std::uint8_t b : info) push(b & 1u);
  for (std::size_t i = 0; i < kConvTailBits; ++i) push(0);
  return coded;
}

namespace {

// Shared Viterbi over a per-step branch metric lambda: metric(o0, o1,
// step) returns the metric *added* for emitting (o0, o1) at trellis step
// `step` (higher = better).
template <typename Metric>
std::vector<std::uint8_t> viterbi(std::size_t n_steps, std::size_t n_info,
                                  Metric&& metric) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::vector<float> path(kStates, kNegInf);
  std::vector<float> next(kStates, kNegInf);
  path[0] = 0.0f;  // encoder starts in state 0

  // Survivor bits, one per (step, state).
  std::vector<std::uint8_t> survivor_in(n_steps * kStates);
  std::vector<std::uint32_t> survivor_prev(n_steps * kStates);

  for (std::size_t t = 0; t < n_steps; ++t) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (std::uint32_t s = 0; s < kStates; ++s) {
      if (path[s] == kNegInf) continue;
      for (std::uint8_t in = 0; in <= 1; ++in) {
        if (t >= n_info && in == 1) continue;  // tail forces zeros
        std::uint8_t o0 = 0;
        std::uint8_t o1 = 0;
        outputs(s, in, o0, o1);
        const std::uint32_t ns = next_state(s, in);
        const float m = path[s] + metric(o0, o1, t);
        if (m > next[ns]) {
          next[ns] = m;
          survivor_in[t * kStates + ns] = in;
          survivor_prev[t * kStates + ns] = s;
        }
      }
    }
    std::swap(path, next);
  }

  // Traceback from state 0 (tail-terminated).
  std::vector<std::uint8_t> info(n_info);
  std::uint32_t state = 0;
  for (std::size_t t = n_steps; t-- > 0;) {
    const std::uint8_t in = survivor_in[t * kStates + state];
    if (t < n_info) info[t] = in;
    state = survivor_prev[t * kStates + state];
  }
  return info;
}

}  // namespace

std::vector<std::uint8_t> conv_decode_hard(
    std::span<const std::uint8_t> coded, std::size_t n_info) {
  const std::size_t n_steps = n_info + kConvTailBits;
  assert(coded.size() == 2 * n_steps);
  return viterbi(n_steps, n_info,
                 [&](std::uint8_t o0, std::uint8_t o1, std::size_t t) {
                   float m = 0.0f;
                   if ((coded[2 * t] & 1u) == o0) m += 1.0f;
                   if ((coded[2 * t + 1] & 1u) == o1) m += 1.0f;
                   return m;
                 });
}

std::vector<std::uint8_t> conv_decode_soft(std::span<const float> soft,
                                           std::size_t n_info) {
  const std::size_t n_steps = n_info + kConvTailBits;
  assert(soft.size() == 2 * n_steps);
  return viterbi(n_steps, n_info,
                 [&](std::uint8_t o0, std::uint8_t o1, std::size_t t) {
                   // LLR convention: positive soft value = bit 1.
                   const float s0 = soft[2 * t];
                   const float s1 = soft[2 * t + 1];
                   return (o0 ? s0 : -s0) + (o1 ? s1 : -s1);
                 });
}

}  // namespace lscatter::dsp
