// Scalar tier of the SIMD kernel table (dsp/simd.hpp, DESIGN.md §14).
//
// This TU is the reference implementation: every vector tier must match
// it to the equivalence-suite tolerance (bit-exactly for the QAM hard
// decisions). It is also the only tier on non-x86 targets and under
// -DLSCATTER_SIMD=OFF, so it carries the same no-alias/real-arithmetic
// discipline as the pre-SIMD hot loops it absorbed (see the radix2 note
// below).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "dsp/simd_tables.hpp"

namespace lscatter::dsp::detail {
namespace {

// Iterative radix-2 DIT on double-precision working buffers (moved here
// verbatim from fft.cpp).
//
// The butterflies spell out the complex multiply in real arithmetic:
// std::complex<double> operator* otherwise goes through the IEEE-pedantic
// inf/NaN rescue path (__muldc3); inputs here are finite by construction,
// so the four-multiply formula is safe. The buffers are __restrict
// pointers, not spans: without the no-alias guarantee the compiler must
// reload the twiddle after every butterfly store, which measures ~5x
// slower than this form at n = 1024.
void fft_radix2(cf64* __restrict a, std::size_t n,
                const cf64* __restrict twiddle,
                const std::uint32_t* __restrict rev, bool invert) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  // Twiddles are stored for the forward transform; the inverse conjugates
  // them. Folding the conjugation into a sign keeps the inner loop
  // branch-free (multiplying by ±1.0 is exact, so this cannot perturb
  // the forward path's bits).
  const double s = invert ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cf64 w = twiddle[k * step];
        const double wr = w.real();
        const double wi = s * w.imag();
        const cf64 y = a[i + k + half];
        const double vr = y.real() * wr - y.imag() * wi;
        const double vi = y.real() * wi + y.imag() * wr;
        const cf64 x = a[i + k];
        a[i + k] = cf64{x.real() + vr, x.imag() + vi};
        a[i + k + half] = cf64{x.real() - vr, x.imag() - vi};
      }
    }
  }
}

void corr_mac(const cf32* s, const cf32* p, std::size_t m, double* ar,
              double* ai) {
  double acc_re = 0.0;
  double acc_im = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const cf32 sv = s[k];
    const cf32 pv = p[k];
    // s * conj(p), accumulated in double.
    acc_re += static_cast<double>(sv.real()) * pv.real() +
              static_cast<double>(sv.imag()) * pv.imag();
    acc_im += static_cast<double>(sv.imag()) * pv.real() -
              static_cast<double>(sv.real()) * pv.imag();
  }
  *ar += acc_re;
  *ai += acc_im;
}

void cmul64(cf64* x, const cf64* h, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const cf64 a = x[i];
    const cf64 b = h[i];
    x[i] = cf64{a.real() * b.real() - a.imag() * b.imag(),
                a.real() * b.imag() + a.imag() * b.real()};
  }
}

void conj_mul(const cf32* a, const cf32* b, cf32* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const cf32 av = a[i];
    const cf32 bv = b[i];
    z[i] = cf32{av.real() * bv.real() + av.imag() * bv.imag(),
                av.imag() * bv.real() - av.real() * bv.imag()};
  }
}

void sum_abs(const cf32* v, std::size_t n, double* ar, double* ai,
             double* abs_sum) {
  double re = 0.0;
  double im = 0.0;
  double mag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = v[i].real();
    const double q = v[i].imag();
    re += r;
    im += q;
    mag += std::sqrt(r * r + q * q);
  }
  *ar += re;
  *ai += im;
  *abs_sum += mag;
}

void pattern_sums(const cf32* v, const std::uint8_t* pattern, std::size_t n,
                  double* sel_r, double* sel_i, double* all_r, double* all_i,
                  double* abs_sum) {
  double sr = 0.0;
  double si = 0.0;
  double tr = 0.0;
  double ti = 0.0;
  double mag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = v[i].real();
    const double q = v[i].imag();
    tr += r;
    ti += q;
    mag += std::sqrt(r * r + q * q);
    if (pattern[i] != 0) {
      sr += r;
      si += q;
    }
  }
  *sel_r += sr;
  *sel_i += si;
  *all_r += tr;
  *all_i += ti;
  *abs_sum += mag;
}

void qam_demap_qpsk(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  for (std::size_t i = 0; i < n; ++i) {
    bits[2 * i + 0] = sym[i].real() < 0.0f ? 1 : 0;
    bits[2 * i + 1] = sym[i].imag() < 0.0f ? 1 : 0;
  }
}

inline void demap_axis16(float v, std::uint8_t& b_hi, std::uint8_t& b_lo) {
  b_hi = v < 0.0f ? 1 : 0;
  b_lo = std::abs(v) > kQam16Thresh ? 1 : 0;
}

void qam_demap16(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* b = bits + 4 * i;
    demap_axis16(sym[i].real(), b[0], b[2]);
    demap_axis16(sym[i].imag(), b[1], b[3]);
  }
}

inline void demap_axis64(float v, std::uint8_t& b_hi, std::uint8_t& b_mid,
                         std::uint8_t& b_lo) {
  b_hi = v < 0.0f ? 1 : 0;
  const float a = std::abs(v);
  b_mid = a > kQam64ThreshMid ? 1 : 0;
  // Inner pair {1,3}: b_lo=1 selects the outer of the pair on each side of 4.
  b_lo = std::abs(a - kQam64ThreshMid) > kQam64ThreshLo ? 1 : 0;
}

void qam_demap64(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* b = bits + 6 * i;
    demap_axis64(sym[i].real(), b[0], b[2], b[4]);
    demap_axis64(sym[i].imag(), b[1], b[3], b[5]);
  }
}

}  // namespace

const SimdKernels kScalarKernels = {
    SimdTier::kScalar, &fft_radix2,   &corr_mac,    &cmul64,
    &conj_mul,         &sum_abs,      &pattern_sums, &qam_demap_qpsk,
    &qam_demap16,      &qam_demap64,
};

}  // namespace lscatter::dsp::detail
