#pragma once
// Private glue between the dispatcher (simd.cpp) and the per-tier kernel
// translation units (kernels_scalar.cpp / kernels_sse2.cpp /
// kernels_avx2.cpp). Not installed into the public API — include only
// from dsp/ kernel TUs.
//
// Each tier TU defines one extern table. The SSE2/AVX2 TUs are compiled
// with per-file -msse2 / -mavx2 -mfma flags (src/CMakeLists.txt) and
// exist only when LSCATTER_SIMD_X86 is defined; on other targets (or
// -DLSCATTER_SIMD=OFF) the dispatcher sees only the scalar table.

#include "dsp/simd.hpp"

namespace lscatter::dsp::detail {

extern const SimdKernels kScalarKernels;
#if defined(LSCATTER_SIMD_X86)
extern const SimdKernels kSse2Kernels;
extern const SimdKernels kAvx2Kernels;
#endif

// QAM hard-decision thresholds shared by every tier (and by lte/qam.cpp,
// whose constellation constants these must match bit-for-bit so the
// demappers stay bit-exact across tiers): TS 36.211 unit-average-power
// grids put the 16QAM axis decision at 2/sqrt(10) and the 64QAM axis
// decisions at 4/sqrt(42) and 2/sqrt(42).
inline constexpr double kQamSqrt10 = 3.16227766016837952;
inline constexpr double kQamSqrt42 = 6.48074069840786023;
inline constexpr float kQam16Thresh = static_cast<float>(2.0 / kQamSqrt10);
inline constexpr float kQam64ThreshMid = static_cast<float>(4.0 / kQamSqrt42);
inline constexpr float kQam64ThreshLo = static_cast<float>(2.0 / kQamSqrt42);

}  // namespace lscatter::dsp::detail
