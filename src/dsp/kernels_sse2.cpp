// SSE2 tier of the SIMD kernel table (dsp/simd.hpp, DESIGN.md §14).
//
// SSE2 is baseline on x86-64, so this tier is what `LSCATTER_SIMD=sse2`
// (or a pre-AVX2 CPU under `auto`) runs. It works half a vector at a
// time relative to AVX2 and has neither FMA nor the SSE3 addsub/moveldup
// forms, so the alternating-sign steps use explicit xor-with-sign-mask;
// the win over scalar is real but modest — the tier mainly guarantees a
// vector path (and exercises the clamping logic) everywhere dispatch can
// land. Unaligned loads/stores throughout; same equivalence contract as
// every tier (bit-exact QAM, tolerance-bounded sums).

#if defined(LSCATTER_SIMD_X86) && defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "dsp/simd_tables.hpp"

namespace lscatter::dsp::detail {
namespace {

/// x * w for one cf64 in [re, im] layout; wr/wi pre-broadcast, wi
/// sign-folded. neglo flips the low lane of the cross term to build
/// re = xr*wr − xi*wi, im = xi*wr + xr*wi without SSE3's addsub.
inline __m128d cmul1(__m128d x, __m128d wr, __m128d wi) {
  const __m128d neglo = _mm_set_pd(0.0, -0.0);
  const __m128d xswap = _mm_shuffle_pd(x, x, 0b01);
  const __m128d cross = _mm_xor_pd(_mm_mul_pd(xswap, wi), neglo);
  return _mm_add_pd(_mm_mul_pd(x, wr), cross);
}

void fft_radix2(cf64* a, std::size_t n, const cf64* twiddle,
                const std::uint32_t* rev, bool invert) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) {
      const cf64 t = a[i];
      a[i] = a[j];
      a[j] = t;
    }
  }
  auto* d = reinterpret_cast<double*>(a);
  const double s = invert ? -1.0 : 1.0;
  const __m128d sign = _mm_set1_pd(s);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const __m128d w = _mm_loadu_pd(
            reinterpret_cast<const double*>(twiddle + k * step));
        const __m128d wr = _mm_unpacklo_pd(w, w);
        const __m128d wi = _mm_mul_pd(_mm_unpackhi_pd(w, w), sign);
        const __m128d x = _mm_loadu_pd(d + 2 * (i + k));
        const __m128d y = _mm_loadu_pd(d + 2 * (i + k + half));
        const __m128d v = cmul1(y, wr, wi);
        _mm_storeu_pd(d + 2 * (i + k), _mm_add_pd(x, v));
        _mm_storeu_pd(d + 2 * (i + k + half), _mm_sub_pd(x, v));
      }
    }
  }
}

void corr_mac(const cf32* s, const cf32* p, std::size_t m, double* ar,
              double* ai) {
  const __m128d neghi = _mm_set_pd(-0.0, 0.0);
  __m128d acc_r = _mm_setzero_pd();  // [Σ sr·pr, Σ si·pi]
  __m128d acc_i = _mm_setzero_pd();  // [Σ si·pr, −Σ sr·pi]
  for (std::size_t k = 0; k < m; ++k) {
    const __m128d sv = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s + k))));
    const __m128d pv = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p + k))));
    acc_r = _mm_add_pd(acc_r, _mm_mul_pd(sv, pv));
    const __m128d sswap = _mm_shuffle_pd(sv, sv, 0b01);
    acc_i = _mm_add_pd(acc_i,
                       _mm_xor_pd(_mm_mul_pd(sswap, pv), neghi));
  }
  *ar += _mm_cvtsd_f64(acc_r) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(acc_r, acc_r));
  *ai += _mm_cvtsd_f64(acc_i) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(acc_i, acc_i));
}

void cmul64(cf64* x, const cf64* h, std::size_t n) {
  auto* xd = reinterpret_cast<double*>(x);
  const auto* hd = reinterpret_cast<const double*>(h);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d xv = _mm_loadu_pd(xd + 2 * i);
    const __m128d hv = _mm_loadu_pd(hd + 2 * i);
    const __m128d hr = _mm_unpacklo_pd(hv, hv);
    const __m128d hi = _mm_unpackhi_pd(hv, hv);
    _mm_storeu_pd(xd + 2 * i, cmul1(xv, hr, hi));
  }
}

void conj_mul(const cf32* a, const cf32* b, cf32* z, std::size_t n) {
  const auto* af = reinterpret_cast<const float*>(a);
  const auto* bf = reinterpret_cast<const float*>(b);
  auto* zf = reinterpret_cast<float*>(z);
  // Negate the odd (imag) lanes of the cross term: re = ar·br + ai·bi,
  // im = ai·br − ar·bi for the two packed cf32.
  const __m128 negodd = _mm_set_ps(-0.0f, 0.0f, -0.0f, 0.0f);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 av = _mm_loadu_ps(af + 2 * i);
    const __m128 bv = _mm_loadu_ps(bf + 2 * i);
    const __m128 br = _mm_shuffle_ps(bv, bv, _MM_SHUFFLE(2, 2, 0, 0));
    const __m128 bi = _mm_shuffle_ps(bv, bv, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128 aswap = _mm_shuffle_ps(av, av, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 cross = _mm_xor_ps(_mm_mul_ps(aswap, bi), negodd);
    _mm_storeu_ps(zf + 2 * i, _mm_add_ps(_mm_mul_ps(av, br), cross));
  }
  for (; i < n; ++i) {
    const cf32 av = a[i];
    const cf32 bv = b[i];
    z[i] = cf32{av.real() * bv.real() + av.imag() * bv.imag(),
                av.imag() * bv.real() - av.real() * bv.imag()};
  }
}

void sum_abs(const cf32* v, std::size_t n, double* ar, double* ai,
             double* abs_sum) {
  __m128d acc = _mm_setzero_pd();  // [Σ re, Σ im]
  __m128d mag = _mm_setzero_pd();  // low lane accumulates Σ |v|
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d x = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(v + i))));
    acc = _mm_add_pd(acc, x);
    const __m128d sq = _mm_mul_pd(x, x);
    const __m128d nrm = _mm_add_sd(sq, _mm_unpackhi_pd(sq, sq));
    mag = _mm_add_sd(mag, _mm_sqrt_sd(nrm, nrm));
  }
  *ar += _mm_cvtsd_f64(acc);
  *ai += _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
  *abs_sum += _mm_cvtsd_f64(mag);
}

void pattern_sums(const cf32* v, const std::uint8_t* pattern, std::size_t n,
                  double* sel_r, double* sel_i, double* all_r, double* all_i,
                  double* abs_sum) {
  __m128d all = _mm_setzero_pd();
  __m128d sel = _mm_setzero_pd();
  __m128d mag = _mm_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d x = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(v + i))));
    all = _mm_add_pd(all, x);
    const __m128d sq = _mm_mul_pd(x, x);
    const __m128d nrm = _mm_add_sd(sq, _mm_unpackhi_pd(sq, sq));
    mag = _mm_add_sd(mag, _mm_sqrt_sd(nrm, nrm));
    // Exact 0/1 multiply keeps the selected sum bit-identical to a branch.
    sel = _mm_add_pd(
        sel, _mm_mul_pd(x, _mm_set1_pd(pattern[i] != 0 ? 1.0 : 0.0)));
  }
  *all_r += _mm_cvtsd_f64(all);
  *all_i += _mm_cvtsd_f64(_mm_unpackhi_pd(all, all));
  *sel_r += _mm_cvtsd_f64(sel);
  *sel_i += _mm_cvtsd_f64(_mm_unpackhi_pd(sel, sel));
  *abs_sum += _mm_cvtsd_f64(mag);
}

// QAM demappers: same compare/movemask scheme as the AVX2 tier at half
// width — SSE2's cmplt/cmpgt are the ordered non-signaling compares, so
// the NaN/−0.0 behaviour matches the scalar </> exactly.

// 8 movemask bits -> 8 bytes of 0/1, using only SSE2 (broadcast the
// mask byte, AND with per-byte single-bit masks, compare-equal). The
// demappers below produce their bit bytes this way instead of a scalar
// shift/and/store chain per bit.
inline __m128i expand8(int mask) {
  const __m128i w = _mm_set1_epi8(static_cast<char>(mask));
  const __m128i bitm = _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64,
                                     static_cast<char>(-128), 0, 0, 0, 0, 0,
                                     0, 0, 0);
  const __m128i hit = _mm_cmpeq_epi8(_mm_and_si128(w, bitm), bitm);
  return _mm_and_si128(hit, _mm_set1_epi8(1));
}

void qam_demap_qpsk(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  const auto* sf = reinterpret_cast<const float*>(sym);
  const __m128 zero = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v0 = _mm_loadu_ps(sf + 2 * i);
    const __m128 v1 = _mm_loadu_ps(sf + 2 * i + 4);
    const int neg = _mm_movemask_ps(_mm_cmplt_ps(v0, zero)) |
                    (_mm_movemask_ps(_mm_cmplt_ps(v1, zero)) << 4);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(bits + 2 * i),
                     expand8(neg));
  }
  for (; i < n; ++i) {
    bits[2 * i + 0] = sym[i].real() < 0.0f ? 1 : 0;
    bits[2 * i + 1] = sym[i].imag() < 0.0f ? 1 : 0;
  }
}

void qam_demap16(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  const auto* sf = reinterpret_cast<const float*>(sym);
  const __m128 zero = _mm_setzero_ps();
  const __m128 absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  const __m128 thresh = _mm_set1_ps(kQam16Thresh);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v0 = _mm_loadu_ps(sf + 2 * i);
    const __m128 v1 = _mm_loadu_ps(sf + 2 * i + 4);
    const int hi = _mm_movemask_ps(_mm_cmplt_ps(v0, zero)) |
                   (_mm_movemask_ps(_mm_cmplt_ps(v1, zero)) << 4);
    const __m128 a0 = _mm_and_ps(v0, absmask);
    const __m128 a1 = _mm_and_ps(v1, absmask);
    const int lo = _mm_movemask_ps(_mm_cmpgt_ps(a0, thresh)) |
                   (_mm_movemask_ps(_mm_cmpgt_ps(a1, thresh)) << 4);
    // Byte pattern per symbol is [hi, hi, lo, lo]; the 16-bit unpack of
    // the two broadcast mask bytes produces exactly that period.
    const __m128i h16 = _mm_set1_epi16(static_cast<short>(hi * 0x0101));
    const __m128i l16 = _mm_set1_epi16(static_cast<short>(lo * 0x0101));
    const __m128i w = _mm_unpacklo_epi16(h16, l16);
    const __m128i bitm =
        _mm_setr_epi8(1, 2, 1, 2, 4, 8, 4, 8, 16, 32, 16, 32, 64,
                      static_cast<char>(-128), 64, static_cast<char>(-128));
    const __m128i hit = _mm_cmpeq_epi8(_mm_and_si128(w, bitm), bitm);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bits + 4 * i),
                     _mm_and_si128(hit, _mm_set1_epi8(1)));
  }
  for (; i < n; ++i) {
    std::uint8_t* b = bits + 4 * i;
    const float re = sym[i].real();
    const float im = sym[i].imag();
    b[0] = re < 0.0f ? 1 : 0;
    b[1] = im < 0.0f ? 1 : 0;
    b[2] = std::abs(re) > kQam16Thresh ? 1 : 0;
    b[3] = std::abs(im) > kQam16Thresh ? 1 : 0;
  }
}

void qam_demap64(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  const auto* sf = reinterpret_cast<const float*>(sym);
  const __m128 zero = _mm_setzero_ps();
  const __m128 absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  const __m128 tmid = _mm_set1_ps(kQam64ThreshMid);
  const __m128 tlo = _mm_set1_ps(kQam64ThreshLo);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 v = _mm_loadu_ps(sf + 2 * i);
    const int hi = _mm_movemask_ps(_mm_cmplt_ps(v, zero));
    const __m128 a = _mm_and_ps(v, absmask);
    const int mid = _mm_movemask_ps(_mm_cmpgt_ps(a, tmid));
    const __m128 d = _mm_and_ps(_mm_sub_ps(a, tmid), absmask);
    const int lo = _mm_movemask_ps(_mm_cmpgt_ps(d, tlo));
    // The 6-byte-per-symbol pattern has no SSE2 unpack form, so expand
    // each symbol's 6 bits branch-free in a 64-bit register instead:
    // replicate into 6 bytes (x * 0x0101...), isolate bit i in byte i,
    // then +0x7F pushes nonzero bytes past bit 7 (no inter-byte carry:
    // max byte is 0x20 + 0x7F) and the shift/AND normalizes to 0/1.
    for (int k = 0; k < 2; ++k) {
      const unsigned s = ((static_cast<unsigned>(hi) >> (2 * k)) & 3u) |
                         (((static_cast<unsigned>(mid) >> (2 * k)) & 3u)
                          << 2) |
                         (((static_cast<unsigned>(lo) >> (2 * k)) & 3u)
                          << 4);
      const std::uint64_t y =
          ((s * 0x010101010101ULL) & 0x201008040201ULL) +
          0x7F7F7F7F7F7FULL;
      const std::uint64_t out = (y >> 7) & 0x010101010101ULL;
      std::memcpy(bits + 6 * (i + static_cast<std::size_t>(k)), &out, 6);
    }
  }
  for (; i < n; ++i) {
    std::uint8_t* b = bits + 6 * i;
    const float re = sym[i].real();
    const float im = sym[i].imag();
    b[0] = re < 0.0f ? 1 : 0;
    b[1] = im < 0.0f ? 1 : 0;
    const float are = std::abs(re);
    const float aim = std::abs(im);
    b[2] = are > kQam64ThreshMid ? 1 : 0;
    b[3] = aim > kQam64ThreshMid ? 1 : 0;
    b[4] = std::abs(are - kQam64ThreshMid) > kQam64ThreshLo ? 1 : 0;
    b[5] = std::abs(aim - kQam64ThreshMid) > kQam64ThreshLo ? 1 : 0;
  }
}

}  // namespace

const SimdKernels kSse2Kernels = {
    SimdTier::kSse2, &fft_radix2,   &corr_mac,    &cmul64,
    &conj_mul,       &sum_abs,      &pattern_sums, &qam_demap_qpsk,
    &qam_demap16,    &qam_demap64,
};

}  // namespace lscatter::dsp::detail

#endif  // LSCATTER_SIMD_X86 && __SSE2__
