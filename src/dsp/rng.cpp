#include "dsp/rng.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::dsp {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64: advance by the golden gamma, then finalize (variant 13).
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint32_t Rng::uniform_int(std::uint32_t n) {
  assert(n > 0);
  // Debiased modulo (Lemire-style rejection).
  const std::uint32_t threshold = (-n) % n;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; u1 is kept away from zero for the log.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

cf32 Rng::complex_normal(double variance) {
  const double s = std::sqrt(variance / 2.0);
  return cf32{static_cast<float>(s * normal()),
              static_cast<float>(s * normal())};
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

std::vector<std::uint8_t> Rng::bits(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u32() & 1u);
  return out;
}

Rng Rng::fork() { return Rng(next_u64(), next_u64() | 1u); }

}  // namespace lscatter::dsp
