// AVX2+FMA tier of the SIMD kernel table (dsp/simd.hpp, DESIGN.md §14).
//
// Compiled with per-file -mavx2 -mfma (src/CMakeLists.txt) — nothing in
// this TU may be reachable unless runtime dispatch confirmed AVX2+FMA,
// which is why only the table symbol is exported and every function is
// file-local. All loads/stores are unaligned (loadu/storeu): callers pass
// plain std::vector storage with no alignment contract.
//
// Complex layouts used throughout:
//   __m256d = 2 × cf64  [re0, im0, re1, im1]
//   __m256  = 4 × cf32  [re0, im0, re1, im1, re2, im2, re3, im3]
// Complex multiplies pair a re/im broadcast (movedup / moveldup+movehdup)
// with a lane swap (permute 0b0101 / 0xB1) and one fused
// multiply-add/sub whose alternating sign pattern lands the +/− of the
// four-multiply formula on the right lanes.

#if defined(LSCATTER_SIMD_X86) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "dsp/simd_tables.hpp"

namespace lscatter::dsp::detail {
namespace {

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// y * w for two packed cf64, given wr = [w0r,w0r,w1r,w1r] and the
/// sign-folded wi = [w0i,w0i,w1i,w1i]: fmaddsub puts re = yr*wr − yi*wi
/// on even lanes and im = yi*wr + yr*wi on odd lanes.
inline __m256d cmul2(__m256d y, __m256d wr, __m256d wi) {
  const __m256d yswap = _mm256_permute_pd(y, 0b0101);
  return _mm256_fmaddsub_pd(y, wr, _mm256_mul_pd(yswap, wi));
}

void fft_radix2(cf64* a, std::size_t n, const cf64* twiddle,
                const std::uint32_t* rev, bool invert) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) {
      const cf64 t = a[i];
      a[i] = a[j];
      a[j] = t;
    }
  }
  if (n < 2) return;
  auto* d = reinterpret_cast<double*>(a);
  const double s = invert ? -1.0 : 1.0;
  // len == 2: twiddle is 1, so each butterfly is x ± y on the adjacent
  // pair — one register holds both [x, y]; the swap + blend computes
  // [x+y, x−y] without ever splitting lanes.
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const __m256d v = _mm256_loadu_pd(d + 2 * i);
    const __m256d t = _mm256_permute2f128_pd(v, v, 0x01);
    const __m256d r = _mm256_blend_pd(_mm256_add_pd(v, t),
                                      _mm256_sub_pd(t, v), 0b1100);
    _mm256_storeu_pd(d + 2 * i, r);
  }
  // Inverse transforms conjugate the stored forward twiddles; folding the
  // conjugation into the imaginary broadcast (±1 multiply, exact) keeps
  // the loop branch-free, as in the scalar tier.
  const __m256d sign = _mm256_set1_pd(s);
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::size_t half = len / 2;  // >= 2, so k always steps by 2
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; k += 2) {
        const __m128d w0 =
            _mm_loadu_pd(reinterpret_cast<const double*>(twiddle + k * step));
        const __m128d w1 = _mm_loadu_pd(
            reinterpret_cast<const double*>(twiddle + (k + 1) * step));
        const __m256d w = _mm256_set_m128d(w1, w0);
        const __m256d wr = _mm256_movedup_pd(w);
        const __m256d wi =
            _mm256_mul_pd(_mm256_permute_pd(w, 0b1111), sign);
        const __m256d x = _mm256_loadu_pd(d + 2 * (i + k));
        const __m256d y = _mm256_loadu_pd(d + 2 * (i + k + half));
        const __m256d v = cmul2(y, wr, wi);
        _mm256_storeu_pd(d + 2 * (i + k), _mm256_add_pd(x, v));
        _mm256_storeu_pd(d + 2 * (i + k + half), _mm256_sub_pd(x, v));
      }
    }
  }
}

void corr_mac(const cf32* s, const cf32* p, std::size_t m, double* ar,
              double* ai) {
  const auto* sf = reinterpret_cast<const float*>(s);
  const auto* pf = reinterpret_cast<const float*>(p);
  // Two independent accumulator pairs hide the FMA latency chain; the
  // samples are widened to double before accumulation so the vector sum
  // matches the scalar tier's double MACs to rounding-order only.
  __m256d acc_r0 = _mm256_setzero_pd();
  __m256d acc_r1 = _mm256_setzero_pd();
  __m256d acc_i0 = _mm256_setzero_pd();
  __m256d acc_i1 = _mm256_setzero_pd();
  const __m256d alt = _mm256_setr_pd(1.0, -1.0, 1.0, -1.0);
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    const __m256d sv0 = _mm256_cvtps_pd(_mm_loadu_ps(sf + 2 * k));
    const __m256d pv0 = _mm256_cvtps_pd(_mm_loadu_ps(pf + 2 * k));
    const __m256d sv1 = _mm256_cvtps_pd(_mm_loadu_ps(sf + 2 * k + 4));
    const __m256d pv1 = _mm256_cvtps_pd(_mm_loadu_ps(pf + 2 * k + 4));
    // re: Σ sr·pr + si·pi — every lane of sv·pv contributes positively.
    acc_r0 = _mm256_fmadd_pd(sv0, pv0, acc_r0);
    acc_r1 = _mm256_fmadd_pd(sv1, pv1, acc_r1);
    // im: Σ si·pr − sr·pi — swap s, negate odd lanes of p, one FMA.
    acc_i0 = _mm256_fmadd_pd(_mm256_permute_pd(sv0, 0b0101),
                             _mm256_mul_pd(pv0, alt), acc_i0);
    acc_i1 = _mm256_fmadd_pd(_mm256_permute_pd(sv1, 0b0101),
                             _mm256_mul_pd(pv1, alt), acc_i1);
  }
  double re = hsum(_mm256_add_pd(acc_r0, acc_r1));
  double im = hsum(_mm256_add_pd(acc_i0, acc_i1));
  for (; k < m; ++k) {
    const cf32 sv = s[k];
    const cf32 pv = p[k];
    re += static_cast<double>(sv.real()) * pv.real() +
          static_cast<double>(sv.imag()) * pv.imag();
    im += static_cast<double>(sv.imag()) * pv.real() -
          static_cast<double>(sv.real()) * pv.imag();
  }
  *ar += re;
  *ai += im;
}

void cmul64(cf64* x, const cf64* h, std::size_t n) {
  auto* xd = reinterpret_cast<double*>(x);
  const auto* hd = reinterpret_cast<const double*>(h);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
    const __m256d hv = _mm256_loadu_pd(hd + 2 * i);
    const __m256d hr = _mm256_movedup_pd(hv);
    const __m256d hi = _mm256_permute_pd(hv, 0b1111);
    _mm256_storeu_pd(xd + 2 * i, cmul2(xv, hr, hi));
  }
  for (; i < n; ++i) {
    const cf64 a = x[i];
    const cf64 b = h[i];
    x[i] = cf64{a.real() * b.real() - a.imag() * b.imag(),
                a.real() * b.imag() + a.imag() * b.real()};
  }
}

void conj_mul(const cf32* a, const cf32* b, cf32* z, std::size_t n) {
  const auto* af = reinterpret_cast<const float*>(a);
  const auto* bf = reinterpret_cast<const float*>(b);
  auto* zf = reinterpret_cast<float*>(z);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 av = _mm256_loadu_ps(af + 2 * i);
    const __m256 bv = _mm256_loadu_ps(bf + 2 * i);
    const __m256 br = _mm256_moveldup_ps(bv);
    const __m256 bi = _mm256_movehdup_ps(bv);
    const __m256 aswap = _mm256_permute_ps(av, 0xB1);
    // a·conj(b): fmsubadd puts re = ar·br + ai·bi on even lanes and
    // im = ai·br − ar·bi on odd lanes.
    const __m256 zv =
        _mm256_fmsubadd_ps(av, br, _mm256_mul_ps(aswap, bi));
    _mm256_storeu_ps(zf + 2 * i, zv);
  }
  for (; i < n; ++i) {
    const cf32 av = a[i];
    const cf32 bv = b[i];
    z[i] = cf32{av.real() * bv.real() + av.imag() * bv.imag(),
                av.imag() * bv.real() - av.real() * bv.imag()};
  }
}

void sum_abs(const cf32* v, std::size_t n, double* ar, double* ai,
             double* abs_sum) {
  const auto* vf = reinterpret_cast<const float*>(v);
  __m256d acc = _mm256_setzero_pd();
  __m256d mag2 = _mm256_setzero_pd();  // each |v| lands twice; halve at end
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(vf + 2 * i));
    acc = _mm256_add_pd(acc, x);
    const __m256d sq = _mm256_mul_pd(x, x);
    const __m256d nrm =
        _mm256_add_pd(sq, _mm256_permute_pd(sq, 0b0101));
    mag2 = _mm256_add_pd(mag2, _mm256_sqrt_pd(nrm));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double re = lanes[0] + lanes[2];
  double im = lanes[1] + lanes[3];
  double mag = 0.5 * hsum(mag2);
  for (; i < n; ++i) {
    const double r = v[i].real();
    const double q = v[i].imag();
    re += r;
    im += q;
    mag += std::sqrt(r * r + q * q);
  }
  *ar += re;
  *ai += im;
  *abs_sum += mag;
}

void pattern_sums(const cf32* v, const std::uint8_t* pattern, std::size_t n,
                  double* sel_r, double* sel_i, double* all_r, double* all_i,
                  double* abs_sum) {
  const auto* vf = reinterpret_cast<const float*>(v);
  __m256d all = _mm256_setzero_pd();
  __m256d sel = _mm256_setzero_pd();
  __m256d mag2 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(vf + 2 * i));
    all = _mm256_add_pd(all, x);
    const __m256d sq = _mm256_mul_pd(x, x);
    const __m256d nrm =
        _mm256_add_pd(sq, _mm256_permute_pd(sq, 0b0101));
    mag2 = _mm256_add_pd(mag2, _mm256_sqrt_pd(nrm));
    // Select by multiplying with an exact 0/1 mask — cheaper than an
    // integer widen/compare for two bytes, and bit-identical to a branch.
    const double m0 = pattern[i] != 0 ? 1.0 : 0.0;
    const double m1 = pattern[i + 1] != 0 ? 1.0 : 0.0;
    sel = _mm256_fmadd_pd(x, _mm256_setr_pd(m0, m0, m1, m1), sel);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, all);
  double tr = lanes[0] + lanes[2];
  double ti = lanes[1] + lanes[3];
  _mm256_store_pd(lanes, sel);
  double sr = lanes[0] + lanes[2];
  double si = lanes[1] + lanes[3];
  double mag = 0.5 * hsum(mag2);
  for (; i < n; ++i) {
    const double r = v[i].real();
    const double q = v[i].imag();
    tr += r;
    ti += q;
    mag += std::sqrt(r * r + q * q);
    if (pattern[i] != 0) {
      sr += r;
      si += q;
    }
  }
  *sel_r += sr;
  *sel_i += si;
  *all_r += tr;
  *all_i += ti;
  *abs_sum += mag;
}

// QAM demappers: one ordered compare per decision bit, movemask to pull
// all 8 float lanes' verdicts into a byte, then unpack in lane order
// (lane 2k = re of symbol k, lane 2k+1 = im — exactly the b[re],b[im]
// interleave of the scalar demapper). _CMP_LT_OQ / _CMP_GT_OQ reproduce
// the scalar </> exactly, including NaN → 0 and −0.0 < 0.0 → false, so
// all tiers are bit-exact.

// Movemask bits back to one 0/1 byte per bit, entirely in SIMD: pshufb
// replicates the mask byte holding each output's bit across the output
// bytes, then AND + compare-equal against a per-byte single-bit mask
// turns "bit set" into 0xFF and a final AND 1 into the 0/1 byte the
// demap contract requires. One multi-byte store replaces the scalar
// shift/and/store chain per bit that used to dominate the demappers.

// 8 movemask bits -> 8 bytes (one XMM half-store).
inline __m128i expand8(int mask) {
  const __m128i w = _mm_set1_epi8(static_cast<char>(mask));
  const __m128i bitm = _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64,
                                     static_cast<char>(-128), 0, 0, 0, 0, 0,
                                     0, 0, 0);
  const __m128i hit = _mm_cmpeq_epi8(_mm_and_si128(w, bitm), bitm);
  return _mm_and_si128(hit, _mm_set1_epi8(1));
}

void qam_demap_qpsk(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  const auto* sf = reinterpret_cast<const float*>(sym);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 v = _mm256_loadu_ps(sf + 2 * i);
    const int neg =
        _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(bits + 2 * i),
                     expand8(neg));
  }
  for (; i < n; ++i) {
    bits[2 * i + 0] = sym[i].real() < 0.0f ? 1 : 0;
    bits[2 * i + 1] = sym[i].imag() < 0.0f ? 1 : 0;
  }
}

void qam_demap16(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  const auto* sf = reinterpret_cast<const float*>(sym);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 thresh = _mm256_set1_ps(kQam16Thresh);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 v = _mm256_loadu_ps(sf + 2 * i);
    const int hi = _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ));
    const __m256 a = _mm256_and_ps(v, absmask);
    const int lo = _mm256_movemask_ps(_mm256_cmp_ps(a, thresh, _CMP_GT_OQ));
    // Per symbol k the four output bytes read bits {2k, 2k+1} of `hi`
    // then of `lo`: select the mask byte (hi = byte 0, lo = byte 1 of
    // `w`), isolate the bit, normalize to 0/1, one 16-byte store.
    const __m128i w =
        _mm_set1_epi32(static_cast<int>(hi | (static_cast<unsigned>(lo) << 8)));
    const __m128i sel =
        _mm_setr_epi8(0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1);
    const __m128i bitm =
        _mm_setr_epi8(1, 2, 1, 2, 4, 8, 4, 8, 16, 32, 16, 32, 64,
                      static_cast<char>(-128), 64, static_cast<char>(-128));
    const __m128i x = _mm_and_si128(_mm_shuffle_epi8(w, sel), bitm);
    const __m128i hit = _mm_cmpeq_epi8(x, bitm);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bits + 4 * i),
                     _mm_and_si128(hit, _mm_set1_epi8(1)));
  }
  for (; i < n; ++i) {
    std::uint8_t* b = bits + 4 * i;
    const float re = sym[i].real();
    const float im = sym[i].imag();
    b[0] = re < 0.0f ? 1 : 0;
    b[1] = im < 0.0f ? 1 : 0;
    b[2] = std::abs(re) > kQam16Thresh ? 1 : 0;
    b[3] = std::abs(im) > kQam16Thresh ? 1 : 0;
  }
}

void qam_demap64(const cf32* sym, std::size_t n, std::uint8_t* bits) {
  const auto* sf = reinterpret_cast<const float*>(sym);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 tmid = _mm256_set1_ps(kQam64ThreshMid);
  const __m256 tlo = _mm256_set1_ps(kQam64ThreshLo);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 v = _mm256_loadu_ps(sf + 2 * i);
    const int hi = _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ));
    const __m256 a = _mm256_and_ps(v, absmask);
    const int mid = _mm256_movemask_ps(_mm256_cmp_ps(a, tmid, _CMP_GT_OQ));
    const __m256 d = _mm256_and_ps(_mm256_sub_ps(a, tmid), absmask);
    const int lo = _mm256_movemask_ps(_mm256_cmp_ps(d, tlo, _CMP_GT_OQ));
    // 24 output bytes from the three 8-bit masks packed into one dword
    // (hi = byte 0, mid = byte 1, lo = byte 2), broadcast so the in-lane
    // pshufb reaches every mask byte from both 128-bit lanes. Stores:
    // 16 bytes from the low lane + 8 from the high.
    const __m256i w = _mm256_set1_epi32(static_cast<int>(
        static_cast<unsigned>(hi) | (static_cast<unsigned>(mid) << 8) |
        (static_cast<unsigned>(lo) << 16)));
    const __m256i sel = _mm256_setr_epi8(
        0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2, 0, 0, 1, 1,  //
        2, 2, 0, 0, 1, 1, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0);
    const __m256i bitm = _mm256_setr_epi8(
        1, 2, 1, 2, 1, 2, 4, 8, 4, 8, 4, 8, 16, 32, 16, 32,  //
        16, 32, 64, static_cast<char>(-128), 64, static_cast<char>(-128),
        64, static_cast<char>(-128), 0, 0, 0, 0, 0, 0, 0, 0);
    const __m256i x = _mm256_and_si256(_mm256_shuffle_epi8(w, sel), bitm);
    const __m256i out = _mm256_and_si256(_mm256_cmpeq_epi8(x, bitm),
                                         _mm256_set1_epi8(1));
    std::uint8_t* b = bits + 6 * i;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b),
                     _mm256_castsi256_si128(out));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(b + 16),
                     _mm256_extracti128_si256(out, 1));
  }
  for (; i < n; ++i) {
    std::uint8_t* b = bits + 6 * i;
    const float re = sym[i].real();
    const float im = sym[i].imag();
    b[0] = re < 0.0f ? 1 : 0;
    b[1] = im < 0.0f ? 1 : 0;
    const float are = std::abs(re);
    const float aim = std::abs(im);
    b[2] = are > kQam64ThreshMid ? 1 : 0;
    b[3] = aim > kQam64ThreshMid ? 1 : 0;
    b[4] = std::abs(are - kQam64ThreshMid) > kQam64ThreshLo ? 1 : 0;
    b[5] = std::abs(aim - kQam64ThreshMid) > kQam64ThreshLo ? 1 : 0;
  }
}

}  // namespace

const SimdKernels kAvx2Kernels = {
    SimdTier::kAvx2, &fft_radix2,   &corr_mac,    &cmul64,
    &conj_mul,       &sum_abs,      &pattern_sums, &qam_demap_qpsk,
    &qam_demap16,    &qam_demap64,
};

}  // namespace lscatter::dsp::detail

#endif  // LSCATTER_SIMD_X86 && __AVX2__ && __FMA__
