#pragma once
// Deterministic random number generation.
//
// Everything stochastic in the simulator (payload bits, fading taps,
// shadowing, traffic bursts, AWGN) draws from this generator so that every
// test and bench is reproducible from a printed seed. The core is a PCG32
// stream (O'Neill 2014): tiny state, excellent statistical quality, and —
// unlike std::mt19937 — identical output across standard libraries.

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace lscatter::dsp {

/// Derive the seed for drop `index` of a Monte-Carlo sweep rooted at
/// `base_seed`. SplitMix64-style finalizer (Steele et al. 2014): the
/// golden-gamma step decorrelates consecutive indices and the two
/// xor-multiply rounds avalanche every input bit across the output, so
/// distinct drops get statistically independent PCG32 streams. Pure
/// function of (base_seed, index) — the foundation of the sim pool's
/// bit-identical-at-any-thread-count guarantee (DESIGN.md §9).
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32 random bits.
  std::uint32_t next_u32();

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint32_t uniform_int(std::uint32_t n);

  /// Standard normal (Box-Muller, cached second deviate).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  cf32 complex_normal(double variance = 1.0);

  /// Bernoulli with probability p of returning true.
  bool bernoulli(double p);

  /// Exponential with given mean.
  double exponential(double mean);

  /// n random bits packed one per element (0/1).
  std::vector<std::uint8_t> bits(std::size_t n);

  /// Fork a statistically independent child generator. Used to give each
  /// subsystem (noise, fading, traffic, ...) its own stream so that adding
  /// draws in one subsystem never perturbs another.
  Rng fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lscatter::dsp
