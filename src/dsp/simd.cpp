#include "dsp/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/contracts.hpp"
#include "dsp/simd_tables.hpp"

namespace lscatter::dsp {
namespace {

constexpr int kUnresolved = -1;

// Active tier, resolved once from LSCATTER_SIMD on first use. Relaxed is
// enough: the value is an index into immutable tables, and a racing first
// resolution on two threads computes the same answer.
std::atomic<int> g_tier{kUnresolved};

SimdTier clamp_to_supported(SimdTier t) {
  while (t != SimdTier::kScalar && !simd_tier_supported(t)) {
    t = static_cast<SimdTier>(static_cast<std::uint8_t>(t) - 1);
  }
  return t;
}

}  // namespace

const char* to_string(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "?";
}

SimdTier simd_best_supported() {
#if defined(LSCATTER_SIMD_X86)
  // The vector TUs are compiled with their own -m flags, so reachability
  // is purely a runtime question answered by cpuid.
  static const SimdTier best = [] {
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return SimdTier::kAvx2;
    }
    if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
    return SimdTier::kScalar;
  }();
  return best;
#else
  return SimdTier::kScalar;
#endif
}

bool simd_tier_supported(SimdTier t) {
  return static_cast<std::uint8_t>(t) <=
         static_cast<std::uint8_t>(simd_best_supported());
}

SimdTier resolve_simd_tier(const char* spec) {
  if (spec == nullptr || spec[0] == '\0' ||
      std::strcmp(spec, "auto") == 0) {
    return simd_best_supported();
  }
  if (std::strcmp(spec, "scalar") == 0) return SimdTier::kScalar;
  if (std::strcmp(spec, "sse2") == 0) {
    return clamp_to_supported(SimdTier::kSse2);
  }
  if (std::strcmp(spec, "avx2") == 0) {
    return clamp_to_supported(SimdTier::kAvx2);
  }
  LSCATTER_EXPECT(false,
                  "LSCATTER_SIMD must be scalar, sse2, avx2, or auto");
  return simd_best_supported();
}

SimdTier simd_tier() {
  int t = g_tier.load(std::memory_order_relaxed);
  if (t == kUnresolved) {
    const SimdTier resolved =
        resolve_simd_tier(std::getenv("LSCATTER_SIMD"));
    t = static_cast<int>(resolved);
    g_tier.store(t, std::memory_order_relaxed);
  }
  return static_cast<SimdTier>(t);
}

SimdTier set_simd_tier(SimdTier t) {
  const SimdTier installed = clamp_to_supported(t);
  g_tier.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

const SimdKernels& simd_kernels(SimdTier t) {
  LSCATTER_EXPECT(simd_tier_supported(t),
                  "requested SIMD tier is not supported on this host");
#if defined(LSCATTER_SIMD_X86)
  switch (t) {
    case SimdTier::kAvx2: return detail::kAvx2Kernels;
    case SimdTier::kSse2: return detail::kSse2Kernels;
    case SimdTier::kScalar: break;
  }
#else
  (void)t;
#endif
  return detail::kScalarKernels;
}

const SimdKernels& simd_kernels() { return simd_kernels(simd_tier()); }

}  // namespace lscatter::dsp
