#include "dsp/types.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::dsp {

double energy(std::span<const cf32> x) {
  double e = 0.0;
  for (const cf32 v : x) e += static_cast<double>(std::norm(v));
  return e;
}

double mean_power(std::span<const cf32> x) {
  if (x.empty()) return 0.0;
  return energy(x) / static_cast<double>(x.size());
}

double rms(std::span<const cf32> x) { return std::sqrt(mean_power(x)); }

void normalize_power(std::span<cf32> x, double target_power) {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const float s = static_cast<float>(std::sqrt(target_power / p));
  for (cf32& v : x) v *= s;
}

cvec multiply(std::span<const cf32> a, std::span<const cf32> b) {
  assert(a.size() == b.size());
  cvec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

cvec multiply_conj(std::span<const cf32> a, std::span<const cf32> b) {
  assert(a.size() == b.size());
  cvec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * std::conj(b[i]);
  return out;
}

void scale(std::span<cf32> x, float s) {
  for (cf32& v : x) v *= s;
}

void scale(std::span<cf32> x, cf32 s) {
  for (cf32& v : x) v *= s;
}

cf32 sum(std::span<const cf32> x) {
  cf64 acc{0.0, 0.0};
  for (const cf32 v : x) acc += cf64{v.real(), v.imag()};
  return cf32{static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
}

cf32 inner_product(std::span<const cf32> a, std::span<const cf32> b) {
  assert(a.size() == b.size());
  cf64 acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    const cf64 av{a[i].real(), a[i].imag()};
    const cf64 bv{b[i].real(), -b[i].imag()};
    acc += av * bv;
  }
  return cf32{static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
}

}  // namespace lscatter::dsp
