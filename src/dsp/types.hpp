#pragma once
// Fundamental numeric types and constants shared by all lscatter modules.
//
// All sample streams are complex single-precision baseband ("cf32"); any
// numerically sensitive intermediate math (FFT twiddles, phase
// accumulators) is carried out in double precision.

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace lscatter::dsp {

using cf32 = std::complex<float>;
using cf64 = std::complex<double>;
using cvec = std::vector<cf32>;
using fvec = std::vector<float>;
using dvec = std::vector<double>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Speed of light [m/s]; used by free-space path loss.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Thermal noise power spectral density at 290 K [dBm/Hz].
inline constexpr double kThermalNoiseDbmHz = -174.0;

/// Feet to meters (the paper reports all distances in feet).
inline constexpr double kFeetToMeters = 0.3048;

inline double feet_to_meters(double feet) { return feet * kFeetToMeters; }
inline double meters_to_feet(double m) { return m / kFeetToMeters; }

/// Total energy of a complex vector: sum |x|^2.
double energy(std::span<const cf32> x);

/// Mean power of a complex vector: energy / size. Returns 0 for empty input.
double mean_power(std::span<const cf32> x);

/// Root-mean-square amplitude.
double rms(std::span<const cf32> x);

/// Scale a vector in place so its mean power equals `target_power`.
void normalize_power(std::span<cf32> x, double target_power = 1.0);

/// Element-wise a .* b (sizes must match).
cvec multiply(std::span<const cf32> a, std::span<const cf32> b);  // lint-ok: into — setup/test convenience, hot paths multiply in place

/// Element-wise a .* conj(b) (sizes must match).
cvec multiply_conj(std::span<const cf32> a, std::span<const cf32> b);  // lint-ok: into — setup/test convenience, hot paths multiply in place

/// In-place scalar multiply.
void scale(std::span<cf32> x, float s);
void scale(std::span<cf32> x, cf32 s);

/// Sum of elements.
cf32 sum(std::span<const cf32> x);

/// Inner product <a, b> = sum a_i * conj(b_i).
cf32 inner_product(std::span<const cf32> a, std::span<const cf32> b);

}  // namespace lscatter::dsp
