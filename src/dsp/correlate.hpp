#pragma once
// Cross-correlation utilities, used by LTE cell search (PSS correlation),
// backscatter preamble alignment, and the baseline WiFi detector.
//
// Two kernels compute the same thing:
//   cross_correlate       direct O(N·M) — exact reference, fine for short
//                         patterns / windows.
//   fast_correlate        overlap-save FFT correlation, O(N log M) — the
//                         hot-path kernel for PSS-length patterns. Matches
//                         the direct kernel to ~1e-5 relative (both
//                         accumulate in double and round once to cf32);
//                         falls back to the direct kernel when the
//                         pattern or lag count is too small to amortize
//                         the transforms.
// The `_into` variants write into a caller-provided buffer of exactly
// signal.size() - pattern.size() + 1 lags and do not heap-allocate after
// the calling thread's scratch has warmed up (DESIGN.md §10).

#include <cstddef>

#include "dsp/types.hpp"

namespace lscatter::dsp {

/// Sliding cross-correlation of `signal` against `pattern`:
///   out[d] = sum_n signal[d + n] * conj(pattern[n])
/// for d in [0, signal.size() - pattern.size()]. Direct method.
cvec cross_correlate(std::span<const cf32> signal,
                     std::span<const cf32> pattern);
void cross_correlate_into(std::span<const cf32> signal,
                          std::span<const cf32> pattern,
                          std::span<cf32> out);

/// FFT-based (overlap-save) cross-correlation: identical contract and
/// output layout as cross_correlate, O(N log M) instead of O(N·M).
cvec fast_correlate(std::span<const cf32> signal,
                    std::span<const cf32> pattern);
void fast_correlate_into(std::span<const cf32> signal,
                         std::span<const cf32> pattern,
                         std::span<cf32> out);

/// Matched-filter bank: correlate one signal against several same-length
/// patterns, sharing each overlap-save segment's forward FFT across the
/// bank (1 + P transforms per block instead of 2P). Exactly equivalent
/// to P independent fast_correlate_into calls; falls back to the direct
/// kernel per pattern below the fast-path thresholds. outs[b] must hold
/// signal.size() - pattern.size() + 1 lags.
void fast_correlate_batch_into(std::span<const cf32> signal,
                               std::span<const std::span<const cf32>> patterns,
                               std::span<const std::span<cf32>> outs);

/// Normalized correlation magnitude in [0, 1]:
///   |corr[d]| / (||signal window|| * ||pattern||)
/// Direct numerator.
fvec normalized_correlation(std::span<const cf32> signal,
                            std::span<const cf32> pattern);

/// Same metric with the numerator computed by fast_correlate — what the
/// PSS searches use.
fvec fast_normalized_correlation(std::span<const cf32> signal,
                                 std::span<const cf32> pattern);
void fast_normalized_correlation_into(std::span<const cf32> signal,
                                      std::span<const cf32> pattern,
                                      std::span<float> out);

/// Banked variant of fast_normalized_correlation_into over same-length
/// patterns (the PSS search correlates all three NID2 replicas against
/// one window): numerators come from fast_correlate_batch_into, so the
/// per-segment signal FFT is computed once for the whole bank.
void fast_normalized_correlation_batch_into(
    std::span<const cf32> signal,
    std::span<const std::span<const cf32>> patterns,
    std::span<const std::span<float>> outs);

struct Peak {
  std::size_t index = 0;
  float value = 0.0f;
};

/// Index / value of max |x|. Precondition: x non-empty.
Peak peak_abs(std::span<const cf32> x);

/// Index / value of max x. Precondition: x non-empty.
Peak peak(std::span<const float> x);

}  // namespace lscatter::dsp
