#pragma once
// Cross-correlation utilities, used by LTE cell search (PSS correlation),
// backscatter preamble alignment, and the baseline WiFi detector.

#include <cstddef>

#include "dsp/types.hpp"

namespace lscatter::dsp {

/// Sliding cross-correlation of `signal` against `pattern`:
///   out[d] = sum_n signal[d + n] * conj(pattern[n])
/// for d in [0, signal.size() - pattern.size()]. Uses the direct method
/// (the searches in this codebase have short patterns / windows).
cvec cross_correlate(std::span<const cf32> signal,
                     std::span<const cf32> pattern);

/// Normalized correlation magnitude in [0, 1]:
///   |corr[d]| / (||signal window|| * ||pattern||)
fvec normalized_correlation(std::span<const cf32> signal,
                            std::span<const cf32> pattern);

struct Peak {
  std::size_t index = 0;
  float value = 0.0f;
};

/// Index / value of max |x|. Precondition: x non-empty.
Peak peak_abs(std::span<const cf32> x);

/// Index / value of max x. Precondition: x non-empty.
Peak peak(std::span<const float> x);

}  // namespace lscatter::dsp
