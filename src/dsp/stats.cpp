#include "dsp/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace lscatter::dsp {

double mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double stddev(const std::vector<double>& x) { return std::sqrt(variance(x)); }

double minimum(const std::vector<double>& x) {
  assert(!x.empty());
  return *std::min_element(x.begin(), x.end());
}

double maximum(const std::vector<double>& x) {
  assert(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> x, double q) {
  std::sort(x.begin(), x.end());
  return quantile_sorted(x, q);
}

double percentile(std::vector<double> x, double p) {
  assert(!x.empty());
  assert(p >= 0.0 && p <= 100.0);
  return quantile(std::move(x), p / 100.0);
}

double median(std::vector<double> x) { return percentile(std::move(x), 50.0); }

QuantileSummary summary_quantiles(std::vector<double> x) {
  std::sort(x.begin(), x.end());
  QuantileSummary s;
  s.p50 = quantile_sorted(x, 0.50);
  s.p90 = quantile_sorted(x, 0.90);
  s.p99 = quantile_sorted(x, 0.99);
  return s;
}

double quantile_from_buckets(std::span<const BucketSpan> buckets, double q) {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t total = 0;
  for (const auto& b : buckets) total += b.count;
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  double seen = 0.0;
  for (const auto& b : buckets) {
    if (b.count == 0) continue;
    const double next = seen + static_cast<double>(b.count);
    if (next >= target) {
      const double frac =
          b.count == 0 ? 0.0
                       : (target - seen) / static_cast<double>(b.count);
      if (b.lower > 0.0 && b.upper > b.lower) {
        return b.lower * std::pow(b.upper / b.lower, frac);
      }
      return b.lower + frac * (b.upper - b.lower);
    }
    seen = next;
  }
  return buckets.empty() ? 0.0 : buckets.back().upper;
}

BoxStats box_stats(std::vector<double> x) {
  assert(!x.empty());
  std::sort(x.begin(), x.end());
  BoxStats b;
  auto pct = [&](double p) { return quantile_sorted(x, p / 100.0); };
  b.min = x.front();
  b.max = x.back();
  b.q1 = pct(25.0);
  b.median = pct(50.0);
  b.q3 = pct(75.0);
  const double iqr = b.q3 - b.q1;
  b.whisker_lo = b.q1 - 1.5 * iqr;
  b.whisker_hi = b.q3 + 1.5 * iqr;
  b.n_outliers = 0;
  for (double v : x) {
    if (v < b.whisker_lo || v > b.whisker_hi) ++b.n_outliers;
  }
  return b;
}

std::string format_box(const BoxStats& b, const char* unit) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "q1=%.3f med=%.3f q3=%.3f min=%.3f max=%.3f outliers=%zu %s",
                b.q1, b.median, b.q3, b.min, b.max, b.n_outliers, unit);
  return buf;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::evaluate(double v) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  assert(!sorted_.empty());
  assert(p >= 0.0 && p <= 1.0);
  return quantile_sorted(sorted_, p);
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(
    double lo, double hi, std::size_t points) const {
  assert(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(points - 1);
    out.emplace_back(x, evaluate(x));
  }
  return out;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0) {
  assert(hi_ > lo_ && bins > 0);
}

void Histogram::add(double v) {
  if (v < lo) v = lo;
  if (v >= hi) v = std::nexttoward(hi, lo);
  const auto bin = static_cast<std::size_t>(
      (v - lo) / (hi - lo) * static_cast<double>(counts.size()));
  counts[std::min(bin, counts.size() - 1)]++;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

}  // namespace lscatter::dsp
