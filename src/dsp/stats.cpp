#include "dsp/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace lscatter::dsp {

double mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double stddev(const std::vector<double>& x) { return std::sqrt(variance(x)); }

double minimum(const std::vector<double>& x) {
  assert(!x.empty());
  return *std::min_element(x.begin(), x.end());
}

double maximum(const std::vector<double>& x) {
  assert(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

double percentile(std::vector<double> x, double p) {
  assert(!x.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(x.begin(), x.end());
  const double pos = p / 100.0 * static_cast<double>(x.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return x[lo] + frac * (x[hi] - x[lo]);
}

double median(std::vector<double> x) { return percentile(std::move(x), 50.0); }

BoxStats box_stats(std::vector<double> x) {
  assert(!x.empty());
  std::sort(x.begin(), x.end());
  BoxStats b;
  auto pct = [&](double p) {
    const double pos = p / 100.0 * static_cast<double>(x.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return x[lo] + frac * (x[hi] - x[lo]);
  };
  b.min = x.front();
  b.max = x.back();
  b.q1 = pct(25.0);
  b.median = pct(50.0);
  b.q3 = pct(75.0);
  const double iqr = b.q3 - b.q1;
  b.whisker_lo = b.q1 - 1.5 * iqr;
  b.whisker_hi = b.q3 + 1.5 * iqr;
  b.n_outliers = 0;
  for (double v : x) {
    if (v < b.whisker_lo || v > b.whisker_hi) ++b.n_outliers;
  }
  return b;
}

std::string format_box(const BoxStats& b, const char* unit) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "q1=%.3f med=%.3f q3=%.3f min=%.3f max=%.3f outliers=%zu %s",
                b.q1, b.median, b.q3, b.min, b.max, b.n_outliers, unit);
  return buf;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::evaluate(double v) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  assert(!sorted_.empty());
  assert(p >= 0.0 && p <= 1.0);
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(
    double lo, double hi, std::size_t points) const {
  assert(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(points - 1);
    out.emplace_back(x, evaluate(x));
  }
  return out;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0) {
  assert(hi_ > lo_ && bins > 0);
}

void Histogram::add(double v) {
  if (v < lo) v = lo;
  if (v >= hi) v = std::nexttoward(hi, lo);
  const auto bin = static_cast<std::size_t>(
      (v - lo) / (hi - lo) * static_cast<double>(counts.size()));
  counts[std::min(bin, counts.size() - 1)]++;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

}  // namespace lscatter::dsp
