#include "dsp/fir.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::dsp {

fvec hamming_window(std::size_t n) {
  fvec w(n);
  if (n == 1) {
    w[0] = 1.0f;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(
        0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) /
                               static_cast<double>(n - 1)));
  }
  return w;
}

fvec hann_window(std::size_t n) {
  fvec w(n);
  if (n == 1) {
    w[0] = 1.0f;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(
        0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) /
                             static_cast<double>(n - 1)));
  }
  return w;
}

fvec design_lowpass(double cutoff_norm, std::size_t ntaps) {
  assert(cutoff_norm > 0.0 && cutoff_norm < 0.5);
  if (ntaps % 2 == 0) ++ntaps;
  const auto mid = static_cast<double>(ntaps - 1) / 2.0;
  const fvec w = hamming_window(ntaps);
  fvec taps(ntaps);
  double sum = 0.0;
  for (std::size_t i = 0; i < ntaps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double x = kTwoPi * cutoff_norm * t;
    const double sinc = (std::abs(t) < 1e-12) ? 1.0 : std::sin(x) / x;
    taps[i] = static_cast<float>(sinc * w[i]);
    sum += taps[i];
  }
  for (auto& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

cvec design_bandpass(double center_norm, double bw_norm, std::size_t ntaps) {
  const fvec lp = design_lowpass(bw_norm / 2.0, ntaps);
  const auto mid = static_cast<double>(lp.size() - 1) / 2.0;
  cvec taps(lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    const double ang = kTwoPi * center_norm * (static_cast<double>(i) - mid);
    taps[i] = cf32{static_cast<float>(lp[i] * std::cos(ang)),
                   static_cast<float>(lp[i] * std::sin(ang))};
  }
  return taps;
}

namespace {
template <typename Tap>
cvec filter_same_impl(std::span<const cf32> x, std::span<const Tap> taps) {
  assert(!taps.empty());
  const std::size_t n = x.size();
  const std::size_t delay = (taps.size() - 1) / 2;
  cvec out(n, cf32{});
  for (std::size_t i = 0; i < n; ++i) {
    cf64 acc{};
    // out[i] = sum_k x[i + delay - k] * taps[k]
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const std::ptrdiff_t idx =
          static_cast<std::ptrdiff_t>(i + delay) -
          static_cast<std::ptrdiff_t>(k);
      if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(n)) continue;
      const cf32 xv = x[static_cast<std::size_t>(idx)];
      if constexpr (std::is_same_v<Tap, float>) {
        acc += cf64{xv.real(), xv.imag()} * static_cast<double>(taps[k]);
      } else {
        acc += cf64{xv.real(), xv.imag()} *
               cf64{taps[k].real(), taps[k].imag()};
      }
    }
    out[i] = cf32{static_cast<float>(acc.real()),
                  static_cast<float>(acc.imag())};
  }
  return out;
}
}  // namespace

cvec filter_same(std::span<const cf32> x, std::span<const float> taps) {
  return filter_same_impl<float>(x, taps);
}

cvec filter_same(std::span<const cf32> x, std::span<const cf32> taps) {
  return filter_same_impl<cf32>(x, taps);
}

OnePole::OnePole(double tau_s, double sample_period_s)
    : a_(std::exp(-sample_period_s / tau_s)) {
  assert(tau_s > 0.0 && sample_period_s > 0.0);
}

float OnePole::step(float x) {
  y_ = static_cast<float>(a_ * y_ + (1.0 - a_) * x);
  return y_;
}

DiodeRc::DiodeRc(double charge_tau_s, double discharge_tau_s,
                 double sample_period_s)
    : a_charge_(std::exp(-sample_period_s / charge_tau_s)),
      a_discharge_(std::exp(-sample_period_s / discharge_tau_s)) {
  assert(charge_tau_s > 0.0 && discharge_tau_s > 0.0);
}

float DiodeRc::step(float x) {
  const double a = (x > y_) ? a_charge_ : a_discharge_;
  y_ = static_cast<float>(a * y_ + (1.0 - a) * x);
  return y_;
}

}  // namespace lscatter::dsp
