#pragma once
// FIR filter design (windowed sinc) and application. Used for the tag's
// band-limited envelope (matching-network model) and for spectrum surveys.

#include <cstddef>

#include "dsp/types.hpp"

namespace lscatter::dsp {

/// Hamming window of length n.
fvec hamming_window(std::size_t n);

/// Hann window of length n.
fvec hann_window(std::size_t n);

/// Windowed-sinc lowpass prototype. `cutoff_norm` is the -6 dB cutoff as a
/// fraction of the sample rate (0 < cutoff_norm < 0.5). Taps are normalized
/// to unity DC gain. `ntaps` should be odd for a symmetric (linear-phase)
/// filter; it is bumped to odd if even.
fvec design_lowpass(double cutoff_norm, std::size_t ntaps);

/// Complex bandpass centered at `center_norm` (fraction of fs, may be
/// negative), bandwidth `bw_norm`. Built by heterodyning a lowpass.
cvec design_bandpass(double center_norm, double bw_norm, std::size_t ntaps);  // lint-ok: into — taps built once at setup, never per-sample

/// Convolve `x` with real taps, "same" length output (group delay
/// compensated for symmetric taps).
cvec filter_same(std::span<const cf32> x, std::span<const float> taps);  // lint-ok: into — analog-frontend model path, not a per-symbol loop

/// Convolve `x` with complex taps, "same" length output.
cvec filter_same(std::span<const cf32> x, std::span<const cf32> taps);  // lint-ok: into — analog-frontend model path, not a per-symbol loop

/// Streaming one-pole IIR: y[n] = a*y[n-1] + (1-a)*x[n]. The building block
/// of the tag's RC circuit simulation.
class OnePole {
 public:
  /// tau and sample period in the same unit (seconds).
  OnePole(double tau_s, double sample_period_s);

  float step(float x);
  void reset(float y0 = 0.0f) { y_ = y0; }
  float value() const { return y_; }
  double alpha() const { return a_; }

 private:
  double a_;
  float y_ = 0.0f;
};

/// Diode-RC envelope stage: charges fast through the diode (small series
/// resistance) and discharges through R with time constant tau. This is the
/// D1/C2/R1 stage of the paper's Figure 7.
class DiodeRc {
 public:
  DiodeRc(double charge_tau_s, double discharge_tau_s,
          double sample_period_s);

  float step(float x);
  void reset(float y0 = 0.0f) { y_ = y0; }
  float value() const { return y_; }

 private:
  double a_charge_;
  double a_discharge_;
  float y_ = 0.0f;
};

}  // namespace lscatter::dsp
