#pragma once
// Zero-cost strong types for the physical quantities that flow through the
// link-budget math (DESIGN.md §8). Each wraps one double (or int64 for
// SampleIndex); every operation is constexpr and inlines to the bare
// arithmetic, but only *physically meaningful* combinations compile:
//
//   Db  + Db  = Db      gains/losses chain
//   Dbm + Db  = Dbm     power through a gain
//   Dbm - Dbm = Db      power ratio
//   Dbm + Dbm           does not compile (adding two absolute powers in
//                       log domain is a unit error, the classic one)
//   Hz * Seconds        = dimensionless cycle/sample count
//
// Construction is explicit (Dbm{10.0}); raw doubles are recovered with
// .value(). User-defined literals live in lscatter::dsp::unit_literals:
// 10.0_dbm, 3.0_db, 20.0_mhz, 66.7_us, ...

#include <cmath>
#include <compare>
#include <cstdint>

namespace lscatter::dsp {

/// A relative level or gain/loss in decibels (10 log10 of a power ratio).
class Db {
 public:
  constexpr Db() = default;
  constexpr explicit Db(double v) : v_(v) {}
  constexpr double value() const { return v_; }

  /// Linear power ratio.
  double linear() const { return std::pow(10.0, v_ / 10.0); }
  /// Linear amplitude ratio (20 log10 convention).
  double amplitude() const { return std::pow(10.0, v_ / 20.0); }

  static Db from_linear(double ratio) { return Db{10.0 * std::log10(ratio)}; }

  constexpr Db operator+(Db o) const { return Db{v_ + o.v_}; }
  constexpr Db operator-(Db o) const { return Db{v_ - o.v_}; }
  constexpr Db operator-() const { return Db{-v_}; }
  constexpr Db operator*(double s) const { return Db{v_ * s}; }
  constexpr Db operator/(double s) const { return Db{v_ / s}; }
  constexpr Db& operator+=(Db o) { v_ += o.v_; return *this; }
  constexpr Db& operator-=(Db o) { v_ -= o.v_; return *this; }
  constexpr auto operator<=>(const Db&) const = default;

 private:
  double v_ = 0.0;
};

constexpr Db operator*(double s, Db d) { return d * s; }

/// An absolute power level referenced to 1 mW.
class Dbm {
 public:
  constexpr Dbm() = default;
  constexpr explicit Dbm(double v) : v_(v) {}
  constexpr double value() const { return v_; }

  /// Linear power in milliwatts.
  double milliwatts() const { return std::pow(10.0, v_ / 10.0); }
  static Dbm from_milliwatts(double mw) {
    return Dbm{10.0 * std::log10(mw)};
  }

  constexpr Dbm operator+(Db gain) const { return Dbm{v_ + gain.value()}; }
  constexpr Dbm operator-(Db loss) const { return Dbm{v_ - loss.value()}; }
  constexpr Db operator-(Dbm o) const { return Db{v_ - o.v_}; }
  constexpr Dbm& operator+=(Db gain) { v_ += gain.value(); return *this; }
  constexpr Dbm& operator-=(Db loss) { v_ -= loss.value(); return *this; }
  constexpr auto operator<=>(const Dbm&) const = default;

 private:
  double v_ = 0.0;
};

constexpr Dbm operator+(Db gain, Dbm p) { return p + gain; }

/// A frequency or bandwidth.
class Hz {
 public:
  constexpr Hz() = default;
  constexpr explicit Hz(double v) : v_(v) {}
  constexpr double value() const { return v_; }

  constexpr Hz operator+(Hz o) const { return Hz{v_ + o.v_}; }
  constexpr Hz operator-(Hz o) const { return Hz{v_ - o.v_}; }
  constexpr Hz operator*(double s) const { return Hz{v_ * s}; }
  constexpr Hz operator/(double s) const { return Hz{v_ / s}; }
  /// Ratio of two frequencies is dimensionless.
  constexpr double operator/(Hz o) const { return v_ / o.v_; }
  constexpr auto operator<=>(const Hz&) const = default;

 private:
  double v_ = 0.0;
};

constexpr Hz operator*(double s, Hz f) { return f * s; }

/// A duration.
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : v_(v) {}
  constexpr double value() const { return v_; }

  constexpr Seconds operator+(Seconds o) const { return Seconds{v_ + o.v_}; }
  constexpr Seconds operator-(Seconds o) const { return Seconds{v_ - o.v_}; }
  constexpr Seconds operator*(double s) const { return Seconds{v_ * s}; }
  constexpr Seconds operator/(double s) const { return Seconds{v_ / s}; }
  constexpr double operator/(Seconds o) const { return v_ / o.v_; }
  constexpr auto operator<=>(const Seconds&) const = default;

 private:
  double v_ = 0.0;
};

constexpr Seconds operator*(double s, Seconds t) { return t * s; }

/// Duration x bandwidth = dimensionless count (cycles, samples).
constexpr double operator*(Seconds t, Hz f) { return t.value() * f.value(); }
constexpr double operator*(Hz f, Seconds t) { return t * f; }
/// Period of a frequency.
constexpr Seconds period(Hz f) { return Seconds{1.0 / f.value()}; }

/// A position on a sample timeline (signed: sync errors go both ways).
class SampleIndex {
 public:
  constexpr SampleIndex() = default;
  constexpr explicit SampleIndex(std::int64_t v) : v_(v) {}
  constexpr std::int64_t value() const { return v_; }

  constexpr SampleIndex operator+(std::int64_t n) const {
    return SampleIndex{v_ + n};
  }
  constexpr SampleIndex operator-(std::int64_t n) const {
    return SampleIndex{v_ - n};
  }
  /// Difference of two positions is a (dimensionless) sample count.
  constexpr std::int64_t operator-(SampleIndex o) const { return v_ - o.v_; }
  constexpr SampleIndex& operator+=(std::int64_t n) { v_ += n; return *this; }
  constexpr SampleIndex& operator-=(std::int64_t n) { v_ -= n; return *this; }
  constexpr auto operator<=>(const SampleIndex&) const = default;

 private:
  std::int64_t v_ = 0;
};

/// Typed siblings of the db.hpp helpers.
inline double to_mw(Dbm p) { return p.milliwatts(); }
inline Dbm from_mw(double mw) { return Dbm::from_milliwatts(mw); }

namespace unit_literals {
constexpr Db operator""_db(long double v) {
  return Db{static_cast<double>(v)};
}
constexpr Db operator""_db(unsigned long long v) {
  return Db{static_cast<double>(v)};
}
constexpr Dbm operator""_dbm(long double v) {
  return Dbm{static_cast<double>(v)};
}
constexpr Dbm operator""_dbm(unsigned long long v) {
  return Dbm{static_cast<double>(v)};
}
constexpr Hz operator""_hz(long double v) {
  return Hz{static_cast<double>(v)};
}
constexpr Hz operator""_hz(unsigned long long v) {
  return Hz{static_cast<double>(v)};
}
constexpr Hz operator""_khz(long double v) {
  return Hz{static_cast<double>(v) * 1e3};
}
constexpr Hz operator""_khz(unsigned long long v) {
  return Hz{static_cast<double>(v) * 1e3};
}
constexpr Hz operator""_mhz(long double v) {
  return Hz{static_cast<double>(v) * 1e6};
}
constexpr Hz operator""_mhz(unsigned long long v) {
  return Hz{static_cast<double>(v) * 1e6};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_us(long double v) {
  return Seconds{static_cast<double>(v) * 1e-6};
}
constexpr Seconds operator""_us(unsigned long long v) {
  return Seconds{static_cast<double>(v) * 1e-6};
}
}  // namespace unit_literals

}  // namespace lscatter::dsp
