#pragma once
// Tiny dense complex linear algebra for the channel-estimation problems in
// the receiver (L <= ~16 unknowns): Gaussian elimination with partial
// pivoting. Not a general-purpose BLAS; sized for estimator use.

#include <vector>

#include "dsp/types.hpp"

namespace lscatter::dsp {

/// Solve A x = b for dense complex A (n x n, row-major). Returns empty on
/// (numerical) singularity.
std::vector<cf64> solve_dense(std::vector<cf64> a, std::vector<cf64> b);

/// Least squares fit of a length-`taps` FIR h such that
/// conv(u, h) ~ r over the valid range: solves the normal equations
/// (U^H U) h = U^H r built from the regressor u. u and r must be the same
/// length (>= 4 * taps for a stable fit).
std::vector<cf64> fir_least_squares(std::span<const cf32> u,
                                    std::span<const cf32> r,
                                    std::size_t taps);

}  // namespace lscatter::dsp
