#pragma once
// Cyclic redundancy checks. CRC-24A is LTE's transport-block CRC
// (TS 36.212 §5.1.1); CRC-32 (IEEE) and CRC-16-CCITT protect LScatter's
// own backscatter packets.
//
// Bit-level API: bits are one-per-byte (0/1), MSB-first, matching how the
// rest of the PHY pipelines handle payloads.

#include <cstdint>
#include <span>
#include <vector>

namespace lscatter::dsp {

/// CRC register value over a bit sequence with the given generator
/// polynomial (implicit leading 1): the `n_crc_bits` check bits packed
/// MSB-first into the low bits of the result. Allocation-free — the core
/// of crc_bits()/check_*() and the form hot paths should call.
std::uint32_t crc_value(std::span<const std::uint8_t> bits,
                        std::uint32_t poly, std::size_t n_crc_bits);

/// CRC over a bit sequence with the given generator polynomial (implicit
/// leading 1), producing `crc_bits` check bits, MSB first.
std::vector<std::uint8_t> crc_bits(std::span<const std::uint8_t> bits,
                                   std::uint32_t poly,
                                   std::size_t n_crc_bits);

/// LTE CRC-24A, poly 0x1864CFB.
std::vector<std::uint8_t> crc24a(std::span<const std::uint8_t> bits);

/// CRC-16-CCITT, poly 0x1021.
std::vector<std::uint8_t> crc16(std::span<const std::uint8_t> bits);

/// CRC-32 (IEEE 802.3 polynomial 0x04C11DB7, no reflection — bit-serial
/// form used by LTE-style systems).
std::vector<std::uint8_t> crc32(std::span<const std::uint8_t> bits);

/// Append CRC to a copy of `bits`.
std::vector<std::uint8_t> attach_crc24a(std::span<const std::uint8_t> bits);
std::vector<std::uint8_t> attach_crc16(std::span<const std::uint8_t> bits);
std::vector<std::uint8_t> attach_crc32(std::span<const std::uint8_t> bits);

/// True if the trailing CRC over the leading payload checks out.
bool check_crc24a(std::span<const std::uint8_t> bits_with_crc);
bool check_crc16(std::span<const std::uint8_t> bits_with_crc);
bool check_crc32(std::span<const std::uint8_t> bits_with_crc);

}  // namespace lscatter::dsp
