#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd.hpp"

namespace lscatter::dsp {

namespace {

/// Below these sizes two FFT passes per block cost more than the direct
/// kernel; fast_correlate falls back.
constexpr std::size_t kFastMinPattern = 32;
constexpr std::size_t kFastMinLags = 32;

/// Per-thread overlap-save scratch: the frequency-domain kernel(s), one
/// segment buffer, and (batch path only) one product buffer, grown to
/// the largest FFT length / pattern bank seen and then reused (zero heap
/// allocations after warm-up).
struct CorrScratch {
  std::vector<cf64> kernel_fft;
  std::vector<cf64> seg;
  std::vector<cf64> prod;
};

CorrScratch& corr_scratch() {
  thread_local CorrScratch s;
  return s;
}

}  // namespace

cvec cross_correlate(std::span<const cf32> signal,
                     std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  cvec out(signal.size() - pattern.size() + 1);
  cross_correlate_into(signal, pattern, out);
  return out;
}

void cross_correlate_into(std::span<const cf32> signal,
                          std::span<const cf32> pattern,
                          std::span<cf32> out) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - pattern.size() + 1;
  LSCATTER_EXPECT(out.size() == lags,
                  "output must hold exactly signal - pattern + 1 lags");
  // s * conj(p) per lag through the dispatched MAC kernel (double
  // accumulation in every tier; the scalar tier keeps the real-arithmetic
  // form that avoids __muldc3).
  const SimdKernels& k = simd_kernels();
  for (std::size_t d = 0; d < lags; ++d) {
    double ar = 0.0;
    double ai = 0.0;
    k.corr_mac(signal.data() + d, pattern.data(), pattern.size(), &ar, &ai);
    out[d] = cf32{static_cast<float>(ar), static_cast<float>(ai)};
  }
}

cvec fast_correlate(std::span<const cf32> signal,
                    std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  cvec out(signal.size() - pattern.size() + 1);
  fast_correlate_into(signal, pattern, out);
  return out;
}

void fast_correlate_into(std::span<const cf32> signal,
                         std::span<const cf32> pattern,
                         std::span<cf32> out) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t m = pattern.size();
  const std::size_t n = signal.size();
  const std::size_t lags = n - m + 1;
  LSCATTER_EXPECT(out.size() == lags,
                  "output must hold exactly signal - pattern + 1 lags");
  if (m < kFastMinPattern || lags < kFastMinLags) {
    cross_correlate_into(signal, pattern, out);
    return;
  }

  // Overlap-save. Correlation is convolution with the conjugated,
  // time-reversed pattern: with kernel k[j] = conj(p[m-1-j]),
  //   out[d] = (signal * k)[d + m - 1].
  // Each length-f circular block yields f - m + 1 valid linear outputs
  // (indices m-1 .. f-1). f = 4·m balances transform cost against the
  // fraction of each block that is usable.
  const std::size_t f = next_power_of_two(4 * m);
  const std::size_t step = f - m + 1;
  const FftPlan& plan = cached_fft_plan(f);

  CorrScratch& scratch = corr_scratch();
  if (scratch.kernel_fft.size() < f) scratch.kernel_fft.resize(f);
  if (scratch.seg.size() < f) scratch.seg.resize(f);
  const std::span<cf64> kfft(scratch.kernel_fft.data(), f);
  const std::span<cf64> seg(scratch.seg.data(), f);

  for (std::size_t j = 0; j < m; ++j) {
    const cf32 p = pattern[m - 1 - j];
    kfft[j] = cf64{p.real(), -p.imag()};
  }
  std::fill(kfft.begin() + static_cast<std::ptrdiff_t>(m), kfft.end(),
            cf64{});
  plan.forward_inplace64(kfft);

  for (std::size_t d0 = 0; d0 < lags; d0 += step) {
    // Block input covers signal[d0 .. d0+f-1] (zero-padded past the end);
    // valid outputs land at seg[m-1 .. m-1+count-1] after the inverse.
    const std::size_t avail = n - d0;  // d0 < lags <= n
    const std::size_t fill = f < avail ? f : avail;
    for (std::size_t i = 0; i < fill; ++i) {
      const cf32 s = signal[d0 + i];
      seg[i] = cf64{s.real(), s.imag()};
    }
    std::fill(seg.begin() + static_cast<std::ptrdiff_t>(fill), seg.end(),
              cf64{});
    plan.forward_inplace64(seg);
    simd_kernels().cmul64(seg.data(), kfft.data(), f);
    plan.inverse_inplace64(seg);
    const std::size_t count = step < lags - d0 ? step : lags - d0;
    for (std::size_t i = 0; i < count; ++i) {
      const cf64 v = seg[m - 1 + i];
      out[d0 + i] = cf32{static_cast<float>(v.real()),
                         static_cast<float>(v.imag())};
    }
  }
}

void fast_correlate_batch_into(std::span<const cf32> signal,
                               std::span<const std::span<const cf32>> patterns,
                               std::span<const std::span<cf32>> outs) {
  LSCATTER_EXPECT(patterns.size() == outs.size(),
                  "one output span per pattern");
  if (patterns.empty()) return;
  const std::size_t m = patterns[0].size();
  LSCATTER_EXPECT(m > 0, "correlation needs non-empty patterns");
  for (const auto& p : patterns) {
    LSCATTER_EXPECT(p.size() == m, "batched patterns must share one length");
  }
  LSCATTER_EXPECT(signal.size() >= m,
                  "signal must be at least as long as the pattern");
  const std::size_t n = signal.size();
  const std::size_t lags = n - m + 1;
  for (const auto& o : outs) {
    LSCATTER_EXPECT(o.size() == lags,
                    "output must hold exactly signal - pattern + 1 lags");
  }
  if (m < kFastMinPattern || lags < kFastMinLags) {
    for (std::size_t b = 0; b < patterns.size(); ++b) {
      cross_correlate_into(signal, patterns[b], outs[b]);
    }
    return;
  }

  // Matched-filter bank over one signal: the overlap-save segment FFT is
  // shared across the bank, so each block costs 1 + P transforms instead
  // of the 2P of P independent fast_correlate_into calls (the kernel
  // FFTs are per-pattern either way).
  const std::size_t f = next_power_of_two(4 * m);
  const std::size_t step = f - m + 1;
  const FftPlan& plan = cached_fft_plan(f);
  const std::size_t nbatch = patterns.size();

  CorrScratch& scratch = corr_scratch();
  if (scratch.kernel_fft.size() < f * nbatch) {
    scratch.kernel_fft.resize(f * nbatch);
  }
  if (scratch.seg.size() < f) scratch.seg.resize(f);
  if (scratch.prod.size() < f) scratch.prod.resize(f);
  const std::span<cf64> seg(scratch.seg.data(), f);
  const std::span<cf64> prod(scratch.prod.data(), f);

  for (std::size_t b = 0; b < nbatch; ++b) {
    const std::span<cf64> kfft(scratch.kernel_fft.data() + b * f, f);
    const std::span<const cf32> pattern = patterns[b];
    for (std::size_t j = 0; j < m; ++j) {
      const cf32 p = pattern[m - 1 - j];
      kfft[j] = cf64{p.real(), -p.imag()};
    }
    std::fill(kfft.begin() + static_cast<std::ptrdiff_t>(m), kfft.end(),
              cf64{});
    plan.forward_inplace64(kfft);
  }

  const SimdKernels& k = simd_kernels();
  for (std::size_t d0 = 0; d0 < lags; d0 += step) {
    const std::size_t avail = n - d0;
    const std::size_t fill = f < avail ? f : avail;
    for (std::size_t i = 0; i < fill; ++i) {
      const cf32 s = signal[d0 + i];
      seg[i] = cf64{s.real(), s.imag()};
    }
    std::fill(seg.begin() + static_cast<std::ptrdiff_t>(fill), seg.end(),
              cf64{});
    plan.forward_inplace64(seg);
    const std::size_t count = step < lags - d0 ? step : lags - d0;
    for (std::size_t b = 0; b < nbatch; ++b) {
      const cf64* kfft = scratch.kernel_fft.data() + b * f;
      std::copy(seg.begin(), seg.end(), prod.begin());
      k.cmul64(prod.data(), kfft, f);
      plan.inverse_inplace64(prod);
      const std::span<cf32> out = outs[b];
      for (std::size_t i = 0; i < count; ++i) {
        const cf64 v = prod[m - 1 + i];
        out[d0 + i] = cf32{static_cast<float>(v.real()),
                           static_cast<float>(v.imag())};
      }
    }
  }
}

namespace {

/// Shared denominator walk for the normalized variants: running window
/// energy against the fixed pattern energy.
template <typename Numerator>
void normalized_from_numerator(std::span<const cf32> signal,
                               std::span<const cf32> pattern,
                               std::span<float> out, Numerator&& num_at) {
  const std::size_t lags = signal.size() - pattern.size() + 1;
  const double pat_energy = energy(pattern);
  double win_energy = 0.0;
  for (std::size_t n = 0; n < pattern.size(); ++n)
    win_energy += std::norm(signal[n]);
  for (std::size_t d = 0; d < lags; ++d) {
    const double denom = std::sqrt(win_energy * pat_energy);
    out[d] = denom > 0.0 ? static_cast<float>(num_at(d) / denom) : 0.0f;
    if (d + 1 < lags) {
      win_energy -= std::norm(signal[d]);
      win_energy += std::norm(signal[d + pattern.size()]);
      if (win_energy < 0.0) win_energy = 0.0;
    }
  }
}

}  // namespace

fvec normalized_correlation(std::span<const cf32> signal,
                            std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - pattern.size() + 1;
  fvec out(lags);
  const SimdKernels& k = simd_kernels();
  normalized_from_numerator(signal, pattern, out, [&](std::size_t d) {
    double ar = 0.0;
    double ai = 0.0;
    k.corr_mac(signal.data() + d, pattern.data(), pattern.size(), &ar, &ai);
    return std::hypot(ar, ai);
  });
  return out;
}

fvec fast_normalized_correlation(std::span<const cf32> signal,
                                 std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  fvec out(signal.size() - pattern.size() + 1);
  fast_normalized_correlation_into(signal, pattern, out);
  return out;
}

void fast_normalized_correlation_into(std::span<const cf32> signal,
                                      std::span<const cf32> pattern,
                                      std::span<float> out) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - pattern.size() + 1;
  LSCATTER_EXPECT(out.size() == lags,
                  "output must hold exactly signal - pattern + 1 lags");
  // Numerator via the FFT kernel into per-thread scratch, magnitudes
  // normalized by the same running-energy denominator as the direct
  // variant.
  thread_local cvec numerator;
  if (numerator.size() < lags) numerator.resize(lags);
  fast_correlate_into(signal, pattern,
                      std::span<cf32>(numerator.data(), lags));
  normalized_from_numerator(
      signal, pattern, out, [&](std::size_t d) {
        return static_cast<double>(std::abs(numerator[d]));
      });
}

void fast_normalized_correlation_batch_into(
    std::span<const cf32> signal,
    std::span<const std::span<const cf32>> patterns,
    std::span<const std::span<float>> outs) {
  LSCATTER_EXPECT(patterns.size() == outs.size(),
                  "one output span per pattern");
  if (patterns.empty()) return;
  const std::size_t m = patterns[0].size();
  LSCATTER_EXPECT(m > 0, "correlation needs non-empty patterns");
  LSCATTER_EXPECT(signal.size() >= m,
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - m + 1;
  // Numerators for the whole bank share each segment's forward FFT; the
  // running-energy denominator walk is per-pattern (pattern energies
  // differ) but O(N) next to the transforms.
  thread_local cvec numerators;
  thread_local std::vector<std::span<cf32>> num_spans;
  if (numerators.size() < lags * patterns.size()) {
    numerators.resize(lags * patterns.size());
  }
  num_spans.clear();
  for (std::size_t b = 0; b < patterns.size(); ++b) {
    num_spans.emplace_back(numerators.data() + b * lags, lags);
  }
  fast_correlate_batch_into(signal, patterns,
                            std::span<const std::span<cf32>>(num_spans));
  for (std::size_t b = 0; b < patterns.size(); ++b) {
    const std::span<const cf32> num = num_spans[b];
    normalized_from_numerator(
        signal, patterns[b], outs[b], [&](std::size_t d) {
          return static_cast<double>(std::abs(num[d]));
        });
  }
}

Peak peak_abs(std::span<const cf32> x) {
  LSCATTER_EXPECT(!x.empty(), "peak search needs a non-empty input");
  Peak best{0, std::abs(x[0])};
  for (std::size_t i = 1; i < x.size(); ++i) {
    const float v = std::abs(x[i]);
    if (v > best.value) best = Peak{i, v};
  }
  return best;
}

Peak peak(std::span<const float> x) {
  LSCATTER_EXPECT(!x.empty(), "peak search needs a non-empty input");
  Peak best{0, x[0]};
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > best.value) best = Peak{i, x[i]};
  }
  return best;
}

}  // namespace lscatter::dsp
