#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"

namespace lscatter::dsp {

namespace {

/// Below these sizes two FFT passes per block cost more than the direct
/// kernel; fast_correlate falls back.
constexpr std::size_t kFastMinPattern = 32;
constexpr std::size_t kFastMinLags = 32;

/// Per-thread overlap-save scratch: the frequency-domain kernel and one
/// segment buffer, grown to the largest FFT length seen and then reused
/// (zero heap allocations after warm-up).
struct CorrScratch {
  std::vector<cf64> kernel_fft;
  std::vector<cf64> seg;
};

CorrScratch& corr_scratch() {
  thread_local CorrScratch s;
  return s;
}

}  // namespace

cvec cross_correlate(std::span<const cf32> signal,
                     std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  cvec out(signal.size() - pattern.size() + 1);
  cross_correlate_into(signal, pattern, out);
  return out;
}

void cross_correlate_into(std::span<const cf32> signal,
                          std::span<const cf32> pattern,
                          std::span<cf32> out) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - pattern.size() + 1;
  LSCATTER_EXPECT(out.size() == lags,
                  "output must hold exactly signal - pattern + 1 lags");
  // s * conj(p), accumulated in double and spelled out in real
  // arithmetic (std::complex operator* would call the __muldc3 rescue
  // path per sample; inputs are finite by construction).
  for (std::size_t d = 0; d < lags; ++d) {
    double ar = 0.0;
    double ai = 0.0;
    for (std::size_t n = 0; n < pattern.size(); ++n) {
      const cf32 s = signal[d + n];
      const cf32 p = pattern[n];
      const double sr = s.real(), si = s.imag();
      const double pr = p.real(), pi = p.imag();
      ar += sr * pr + si * pi;
      ai += si * pr - sr * pi;
    }
    out[d] = cf32{static_cast<float>(ar), static_cast<float>(ai)};
  }
}

cvec fast_correlate(std::span<const cf32> signal,
                    std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  cvec out(signal.size() - pattern.size() + 1);
  fast_correlate_into(signal, pattern, out);
  return out;
}

void fast_correlate_into(std::span<const cf32> signal,
                         std::span<const cf32> pattern,
                         std::span<cf32> out) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t m = pattern.size();
  const std::size_t n = signal.size();
  const std::size_t lags = n - m + 1;
  LSCATTER_EXPECT(out.size() == lags,
                  "output must hold exactly signal - pattern + 1 lags");
  if (m < kFastMinPattern || lags < kFastMinLags) {
    cross_correlate_into(signal, pattern, out);
    return;
  }

  // Overlap-save. Correlation is convolution with the conjugated,
  // time-reversed pattern: with kernel k[j] = conj(p[m-1-j]),
  //   out[d] = (signal * k)[d + m - 1].
  // Each length-f circular block yields f - m + 1 valid linear outputs
  // (indices m-1 .. f-1). f = 4·m balances transform cost against the
  // fraction of each block that is usable.
  const std::size_t f = next_power_of_two(4 * m);
  const std::size_t step = f - m + 1;
  const FftPlan& plan = cached_fft_plan(f);

  CorrScratch& scratch = corr_scratch();
  if (scratch.kernel_fft.size() < f) scratch.kernel_fft.resize(f);
  if (scratch.seg.size() < f) scratch.seg.resize(f);
  const std::span<cf64> kfft(scratch.kernel_fft.data(), f);
  const std::span<cf64> seg(scratch.seg.data(), f);

  for (std::size_t j = 0; j < m; ++j) {
    const cf32 p = pattern[m - 1 - j];
    kfft[j] = cf64{p.real(), -p.imag()};
  }
  std::fill(kfft.begin() + static_cast<std::ptrdiff_t>(m), kfft.end(),
            cf64{});
  plan.forward_inplace64(kfft);

  for (std::size_t d0 = 0; d0 < lags; d0 += step) {
    // Block input covers signal[d0 .. d0+f-1] (zero-padded past the end);
    // valid outputs land at seg[m-1 .. m-1+count-1] after the inverse.
    const std::size_t avail = n - d0;  // d0 < lags <= n
    const std::size_t fill = f < avail ? f : avail;
    for (std::size_t i = 0; i < fill; ++i) {
      const cf32 s = signal[d0 + i];
      seg[i] = cf64{s.real(), s.imag()};
    }
    std::fill(seg.begin() + static_cast<std::ptrdiff_t>(fill), seg.end(),
              cf64{});
    plan.forward_inplace64(seg);
    // Spectral product spelled out in real arithmetic — std::complex
    // operator* would emit a __muldc3 call per bin.
    for (std::size_t i = 0; i < f; ++i) {
      const cf64 x = seg[i];
      const cf64 h = kfft[i];
      seg[i] = cf64{x.real() * h.real() - x.imag() * h.imag(),
                    x.real() * h.imag() + x.imag() * h.real()};
    }
    plan.inverse_inplace64(seg);
    const std::size_t count = step < lags - d0 ? step : lags - d0;
    for (std::size_t i = 0; i < count; ++i) {
      const cf64 v = seg[m - 1 + i];
      out[d0 + i] = cf32{static_cast<float>(v.real()),
                         static_cast<float>(v.imag())};
    }
  }
}

namespace {

/// Shared denominator walk for the normalized variants: running window
/// energy against the fixed pattern energy.
template <typename Numerator>
void normalized_from_numerator(std::span<const cf32> signal,
                               std::span<const cf32> pattern,
                               std::span<float> out, Numerator&& num_at) {
  const std::size_t lags = signal.size() - pattern.size() + 1;
  const double pat_energy = energy(pattern);
  double win_energy = 0.0;
  for (std::size_t n = 0; n < pattern.size(); ++n)
    win_energy += std::norm(signal[n]);
  for (std::size_t d = 0; d < lags; ++d) {
    const double denom = std::sqrt(win_energy * pat_energy);
    out[d] = denom > 0.0 ? static_cast<float>(num_at(d) / denom) : 0.0f;
    if (d + 1 < lags) {
      win_energy -= std::norm(signal[d]);
      win_energy += std::norm(signal[d + pattern.size()]);
      if (win_energy < 0.0) win_energy = 0.0;
    }
  }
}

}  // namespace

fvec normalized_correlation(std::span<const cf32> signal,
                            std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - pattern.size() + 1;
  fvec out(lags);
  normalized_from_numerator(signal, pattern, out, [&](std::size_t d) {
    double ar = 0.0;
    double ai = 0.0;
    for (std::size_t n = 0; n < pattern.size(); ++n) {
      const cf32 s = signal[d + n];
      const cf32 p = pattern[n];
      const double sr = s.real(), si = s.imag();
      const double pr = p.real(), pi = p.imag();
      ar += sr * pr + si * pi;
      ai += si * pr - sr * pi;
    }
    return std::hypot(ar, ai);
  });
  return out;
}

fvec fast_normalized_correlation(std::span<const cf32> signal,
                                 std::span<const cf32> pattern) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  fvec out(signal.size() - pattern.size() + 1);
  fast_normalized_correlation_into(signal, pattern, out);
  return out;
}

void fast_normalized_correlation_into(std::span<const cf32> signal,
                                      std::span<const cf32> pattern,
                                      std::span<float> out) {
  LSCATTER_EXPECT(!pattern.empty(), "correlation needs a non-empty pattern");
  LSCATTER_EXPECT(signal.size() >= pattern.size(),
                  "signal must be at least as long as the pattern");
  const std::size_t lags = signal.size() - pattern.size() + 1;
  LSCATTER_EXPECT(out.size() == lags,
                  "output must hold exactly signal - pattern + 1 lags");
  // Numerator via the FFT kernel into per-thread scratch, magnitudes
  // normalized by the same running-energy denominator as the direct
  // variant.
  thread_local cvec numerator;
  if (numerator.size() < lags) numerator.resize(lags);
  fast_correlate_into(signal, pattern,
                      std::span<cf32>(numerator.data(), lags));
  normalized_from_numerator(
      signal, pattern, out, [&](std::size_t d) {
        return static_cast<double>(std::abs(numerator[d]));
      });
}

Peak peak_abs(std::span<const cf32> x) {
  LSCATTER_EXPECT(!x.empty(), "peak search needs a non-empty input");
  Peak best{0, std::abs(x[0])};
  for (std::size_t i = 1; i < x.size(); ++i) {
    const float v = std::abs(x[i]);
    if (v > best.value) best = Peak{i, v};
  }
  return best;
}

Peak peak(std::span<const float> x) {
  LSCATTER_EXPECT(!x.empty(), "peak search needs a non-empty input");
  Peak best{0, x[0]};
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > best.value) best = Peak{i, x[i]};
  }
  return best;
}

}  // namespace lscatter::dsp
