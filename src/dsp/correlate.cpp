#include "dsp/correlate.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::dsp {

cvec cross_correlate(std::span<const cf32> signal,
                     std::span<const cf32> pattern) {
  assert(!pattern.empty());
  assert(signal.size() >= pattern.size());
  const std::size_t lags = signal.size() - pattern.size() + 1;
  cvec out(lags);
  for (std::size_t d = 0; d < lags; ++d) {
    cf64 acc{};
    for (std::size_t n = 0; n < pattern.size(); ++n) {
      const cf32 s = signal[d + n];
      const cf32 p = pattern[n];
      acc += cf64{s.real(), s.imag()} * cf64{p.real(), -p.imag()};
    }
    out[d] = cf32{static_cast<float>(acc.real()),
                  static_cast<float>(acc.imag())};
  }
  return out;
}

fvec normalized_correlation(std::span<const cf32> signal,
                            std::span<const cf32> pattern) {
  assert(!pattern.empty());
  assert(signal.size() >= pattern.size());
  const std::size_t lags = signal.size() - pattern.size() + 1;
  const double pat_energy = energy(pattern);
  fvec out(lags);

  // Running window energy for the denominator.
  double win_energy = 0.0;
  for (std::size_t n = 0; n < pattern.size(); ++n)
    win_energy += std::norm(signal[n]);

  for (std::size_t d = 0; d < lags; ++d) {
    cf64 acc{};
    for (std::size_t n = 0; n < pattern.size(); ++n) {
      const cf32 s = signal[d + n];
      const cf32 p = pattern[n];
      acc += cf64{s.real(), s.imag()} * cf64{p.real(), -p.imag()};
    }
    const double denom = std::sqrt(win_energy * pat_energy);
    out[d] = denom > 0.0
                 ? static_cast<float>(std::abs(acc) / denom)
                 : 0.0f;
    if (d + 1 < lags) {
      win_energy -= std::norm(signal[d]);
      win_energy += std::norm(signal[d + pattern.size()]);
      if (win_energy < 0.0) win_energy = 0.0;
    }
  }
  return out;
}

Peak peak_abs(std::span<const cf32> x) {
  assert(!x.empty());
  Peak best{0, std::abs(x[0])};
  for (std::size_t i = 1; i < x.size(); ++i) {
    const float v = std::abs(x[i]);
    if (v > best.value) best = Peak{i, v};
  }
  return best;
}

Peak peak(std::span<const float> x) {
  assert(!x.empty());
  Peak best{0, x[0]};
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > best.value) best = Peak{i, x[i]};
  }
  return best;
}

}  // namespace lscatter::dsp
