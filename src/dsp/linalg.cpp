#include "dsp/linalg.hpp"

#include <cassert>
#include <cmath>

namespace lscatter::dsp {

std::vector<cf64> solve_dense(std::vector<cf64> a, std::vector<cf64> b) {
  const std::size_t n = b.size();
  assert(a.size() == n * n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double v = std::abs(a[row * n + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (best < 1e-30) return {};
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[pivot * n + k], a[col * n + k]);
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const cf64 factor = a[row * n + col] / a[col * n + col];
      if (factor == cf64{}) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<cf64> x(n);
  for (std::size_t i = n; i-- > 0;) {
    cf64 acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i * n + k] * x[k];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

std::vector<cf64> fir_least_squares(std::span<const cf32> u,
                                    std::span<const cf32> r,
                                    std::size_t taps) {
  assert(u.size() == r.size());
  assert(taps >= 1);
  const std::size_t n = u.size();
  if (n < 4 * taps) return {};

  // Normal equations: A[l][m] = sum_k u[k-l]^* u[k-m], b[l] = sum_k
  // u[k-l]^* r[k], valid range k in [taps-1, n).
  std::vector<cf64> a(taps * taps, cf64{});
  std::vector<cf64> b(taps, cf64{});
  for (std::size_t k = taps - 1; k < n; ++k) {
    for (std::size_t l = 0; l < taps; ++l) {
      const cf32 ul = u[k - l];
      const cf64 ulc{ul.real(), -ul.imag()};
      b[l] += ulc * cf64{r[k].real(), r[k].imag()};
      for (std::size_t m = 0; m < taps; ++m) {
        const cf32 um = u[k - m];
        a[l * taps + m] += ulc * cf64{um.real(), um.imag()};
      }
    }
  }
  return solve_dense(std::move(a), std::move(b));
}

}  // namespace lscatter::dsp
