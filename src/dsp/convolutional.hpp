#pragma once
// Rate-1/2 convolutional code, constraint length 7, generators 133/171
// (octal) — the classic Voyager/802.11/LTE-control code — with a
// soft-decision Viterbi decoder. Used by the LScatter link as an
// alternative to repetition coding: ~5 dB of coding gain at rate 1/2
// instead of a diversity-order trade at rate 1/r.
//
// Termination: the encoder appends 6 tail zeros, so the decoder starts
// and ends in state 0. encode() therefore emits 2*(n + 6) bits.

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace lscatter::dsp {

inline constexpr std::size_t kConvConstraint = 7;
inline constexpr std::size_t kConvTailBits = kConvConstraint - 1;
inline constexpr std::uint32_t kConvG0 = 0133;  // octal
inline constexpr std::uint32_t kConvG1 = 0171;

/// Encoded size for n info bits (tail included).
constexpr std::size_t conv_encoded_bits(std::size_t n_info) {
  return 2 * (n_info + kConvTailBits);
}

/// Info capacity for a coded budget (largest n with encoded size <=
/// n_coded).
constexpr std::size_t conv_info_capacity(std::size_t n_coded) {
  return n_coded / 2 > kConvTailBits ? n_coded / 2 - kConvTailBits : 0;
}

/// Encode bits (one per byte) -> coded bits, tail-terminated.
std::vector<std::uint8_t> conv_encode(std::span<const std::uint8_t> info);

/// Hard-decision Viterbi decode of exactly conv_encoded_bits(n_info)
/// coded bits back to n_info info bits.
std::vector<std::uint8_t> conv_decode_hard(
    std::span<const std::uint8_t> coded, std::size_t n_info);

/// Soft-decision Viterbi: `soft[i]` is the log-likelihood-ratio-like
/// metric of coded bit i — positive means bit 1 (matching the LScatter
/// slicer convention Re(z conj(g)) for '1' = theta 0).
std::vector<std::uint8_t> conv_decode_soft(std::span<const float> soft,
                                           std::size_t n_info);

}  // namespace lscatter::dsp
