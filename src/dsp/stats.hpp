#pragma once
// Descriptive statistics used by the evaluation harness: percentiles for
// the paper's box plots, empirical CDFs for Fig. 4c / 31 / 32, and simple
// aggregates.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lscatter::dsp {

double mean(const std::vector<double>& x);
double variance(const std::vector<double>& x);  // population variance
double stddev(const std::vector<double>& x);
double minimum(const std::vector<double>& x);
double maximum(const std::vector<double>& x);

/// Linear-interpolated quantile of *already sorted* data, q in [0, 1]
/// (clamped). Returns 0.0 for empty input; a single element is every
/// quantile of itself. The shared kernel behind percentile(), median(),
/// box_stats(), and EmpiricalCdf::quantile().
double quantile_sorted(std::span<const double> sorted, double q);

/// Linear-interpolated quantile, q in [0, 1]; sorts a copy. Empty input
/// yields 0.0.
double quantile(std::vector<double> x, double q);

/// Linear-interpolated percentile, p in [0, 100]. Precondition: non-empty.
double percentile(std::vector<double> x, double p);

double median(std::vector<double> x);

/// The three quantiles every run report tabulates.
struct QuantileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// p50/p90/p99 in one sort; zeros for empty input.
QuantileSummary summary_quantiles(std::vector<double> x);

/// One bucket of a pre-aggregated histogram: `count` samples somewhere in
/// (lower, upper].
struct BucketSpan {
  double lower = 0.0;
  double upper = 0.0;
  std::uint64_t count = 0;
};

/// Approximate quantile (q in [0, 1], clamped) of data summarized as
/// ascending log-spaced buckets, interpolating geometrically inside the
/// selected bucket — the estimator the observability histogram exporter
/// uses. Buckets with non-positive bounds fall back to linear
/// interpolation. Returns 0.0 when all counts are zero.
double quantile_from_buckets(std::span<const BucketSpan> buckets, double q);

/// The five-number summary the paper's box plots show, plus whisker bounds
/// at 1.5 IQR and the count of outliers beyond them.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double whisker_lo = 0.0;
  double whisker_hi = 0.0;
  std::size_t n_outliers = 0;
};

BoxStats box_stats(std::vector<double> x);

/// Render a BoxStats row like "q1=.. med=.. q3=.." for bench output.
std::string format_box(const BoxStats& b, const char* unit = "");

/// Empirical CDF over the samples; evaluate() returns P[X <= v].
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  double evaluate(double v) const;
  /// Inverse CDF (quantile), p in [0, 1].
  double quantile(double p) const;
  std::size_t size() const { return sorted_.size(); }

  /// Sample the CDF at `points` evenly spaced values across [lo, hi];
  /// returns (x, F(x)) pairs — the series a plot of Fig. 4c needs.
  std::vector<std::pair<double, double>> series(double lo, double hi,
                                                std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double lo_, double hi_, std::size_t bins);
  void add(double v);
  std::size_t total() const;
};

}  // namespace lscatter::dsp
