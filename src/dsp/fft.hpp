#pragma once
// Fast Fourier transform.
//
// LTE needs FFT sizes {128, 256, 512, 1024, 1536, 2048}. All but 1536 are
// powers of two and use an iterative radix-2 Cooley-Tukey kernel with
// precomputed double-precision twiddles. 1536 (the 15 MHz numerology) and
// any other size go through Bluestein's chirp-z algorithm, which reduces an
// arbitrary-length DFT to a power-of-two convolution.
//
// Conventions: forward() computes X_k = sum_n x_n e^{-j2πnk/N} (no
// scaling); inverse() computes x_n = (1/N) sum_k X_k e^{+j2πnk/N}, so
// inverse(forward(x)) == x.
//
// Hot-path memory discipline (DESIGN.md §10): the transforms work on
// double-precision scratch held in a Workspace — either one the caller
// owns (make_workspace()) or, for the convenience overloads without a
// Workspace argument, a per-thread scratch that grows to the largest size
// seen and is then reused. After warm-up no in-place transform heap-
// allocates. The plan itself is immutable after construction, so one plan
// may be shared by any number of threads, each with its own Workspace.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "dsp/types.hpp"

namespace lscatter::dsp {

class FftPlan {
 public:
  /// Reusable transform scratch: the cf64 working buffer plus the
  /// Bluestein convolution buffer. One Workspace serves plans of any
  /// size (it grows to the largest plan it has been used with and never
  /// shrinks); it must not be shared between threads concurrently.
  class Workspace {
   public:
    Workspace();
    ~Workspace();
    Workspace(Workspace&&) noexcept;
    Workspace& operator=(Workspace&&) noexcept;
    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

    /// Bytes of scratch currently held.
    std::size_t bytes() const;

   private:
    friend class FftPlan;
    /// Grow (never shrink) to serve an n-point transform whose Bluestein
    /// convolution length is m (0 for power-of-two plans). Allocates only
    /// when capacity actually grows; updates the process-wide
    /// fft_runtime_stats() byte accounting.
    void reserve(std::size_t n, std::size_t m);

    std::vector<cf64> a_;         // conversion / working buffer (>= n)
    std::vector<cf64> u_;         // Bluestein u(m) buffer (>= m)
    std::size_t accounted_ = 0;   // bytes currently charged to the gauge
  };

  /// Builds a plan for length n (any n >= 1).
  explicit FftPlan(std::size_t n);
  ~FftPlan();

  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  std::size_t size() const { return n_; }

  /// A Workspace pre-sized for this plan (no further allocation when used
  /// with transforms of this plan only).
  Workspace make_workspace() const;

  /// Out-of-place transforms. `in.size()` must equal size().
  cvec forward(std::span<const cf32> in) const;  // lint-ok: into — use forward_inplace
  cvec inverse(std::span<const cf32> in) const;  // lint-ok: into — use inverse_inplace

  /// In-place transforms on a buffer of exactly size() elements, using
  /// the calling thread's shared scratch (allocation-free after the
  /// thread's first call at this size class).
  void forward_inplace(std::span<cf32> data) const;
  void inverse_inplace(std::span<cf32> data) const;

  /// Same, with caller-owned scratch — for tight loops that want
  /// deterministic memory ownership (DESIGN.md §10).
  void forward_inplace(std::span<cf32> data, Workspace& ws) const;
  void inverse_inplace(std::span<cf32> data, Workspace& ws) const;

  /// Double-precision transforms operating directly on the caller's
  /// buffer — no cf32 conversion, no scratch at all. Power-of-two plans
  /// only (the radix-2 kernel runs truly in place); used by the FFT
  /// correlator. inverse_inplace64 applies the 1/N scaling.
  void forward_inplace64(std::span<cf64> data) const;
  void inverse_inplace64(std::span<cf64> data) const;

 private:
  void run_with(std::span<cf32> data, Workspace& ws, bool invert) const;

  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot helpers (plan cached per size in a small internal table).
cvec fft(std::span<const cf32> in);   // lint-ok: into — one-shot helper allocates by design
cvec ifft(std::span<const cf32> in);  // lint-ok: into — one-shot helper allocates by design

/// The process-wide per-size plan cache behind fft()/ifft(). The read
/// path takes a shared lock only, so concurrent sim_pool workers hitting
/// a warm cache never serialize; a miss upgrades to an exclusive lock to
/// build the plan. The returned reference stays valid for the process
/// lifetime.
const FftPlan& cached_fft_plan(std::size_t n);

/// Cumulative runtime statistics for the plan cache and the transform
/// workspaces. dsp sits *below* the obs layer, so these are plain
/// atomics here; obs publishes them as `dsp.fft.plan_cache_{hits,misses}`
/// counters and the `dsp.fft.workspace_bytes` gauge at report time
/// (src/obs/report.cpp).
struct FftRuntimeStats {
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t workspace_bytes = 0;       // live scratch, all workspaces
  std::uint64_t workspace_bytes_peak = 0;  // high-water of the above
};
FftRuntimeStats fft_runtime_stats();

/// True if n is a power of two.
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// Circularly shift a spectrum so DC moves to the center (like fftshift).
cvec fftshift(std::span<const cf32> in);  // lint-ok: into — plotting/debug helper, not a hot path

}  // namespace lscatter::dsp
