#pragma once
// Fast Fourier transform.
//
// LTE needs FFT sizes {128, 256, 512, 1024, 1536, 2048}. All but 1536 are
// powers of two and use an iterative radix-2 Cooley-Tukey kernel with
// precomputed double-precision twiddles. 1536 (the 15 MHz numerology) and
// any other size go through Bluestein's chirp-z algorithm, which reduces an
// arbitrary-length DFT to a power-of-two convolution.
//
// Conventions: forward() computes X_k = sum_n x_n e^{-j2πnk/N} (no
// scaling); inverse() computes x_n = (1/N) sum_k X_k e^{+j2πnk/N}, so
// inverse(forward(x)) == x.

#include <cstddef>
#include <memory>

#include "dsp/types.hpp"

namespace lscatter::dsp {

class FftPlan {
 public:
  /// Builds a plan for length n (any n >= 1).
  explicit FftPlan(std::size_t n);
  ~FftPlan();

  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  std::size_t size() const { return n_; }

  /// Out-of-place transforms. `in.size()` must equal size().
  cvec forward(std::span<const cf32> in) const;
  cvec inverse(std::span<const cf32> in) const;

  /// In-place transforms on a buffer of exactly size() elements.
  void forward_inplace(std::span<cf32> data) const;
  void inverse_inplace(std::span<cf32> data) const;

 private:
  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot helpers (plan cached per size in a small internal table).
cvec fft(std::span<const cf32> in);
cvec ifft(std::span<const cf32> in);

/// True if n is a power of two.
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// Circularly shift a spectrum so DC moves to the center (like fftshift).
cvec fftshift(std::span<const cf32> in);

}  // namespace lscatter::dsp
