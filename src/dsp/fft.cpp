#include "dsp/fft.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/contracts.hpp"
#include "core/thread_safety.hpp"
#include "dsp/simd.hpp"

namespace lscatter::dsp {
namespace {

// Process-wide runtime stats (plain atomics: dsp sits below obs, so the
// registry cannot be referenced from here; obs pulls these at report
// time via fft_runtime_stats()).
std::atomic<std::uint64_t> g_plan_cache_hits{0};
std::atomic<std::uint64_t> g_plan_cache_misses{0};
std::atomic<std::uint64_t> g_workspace_bytes{0};
std::atomic<std::uint64_t> g_workspace_bytes_peak{0};

void raise_workspace_peak(std::uint64_t v) {
  std::uint64_t cur = g_workspace_bytes_peak.load(std::memory_order_relaxed);
  while (v > cur && !g_workspace_bytes_peak.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

// Iterative radix-2 DIT on double-precision working buffers, dispatched
// through the SIMD kernel table (dsp/simd.hpp): the scalar reference
// lives in kernels_scalar.cpp, the vector tiers in kernels_{sse2,avx2}
// .cpp. The indirect call costs one relaxed atomic load per transform —
// noise next to n·log n butterflies.
inline void radix2(cf64* a, std::size_t n, const cf64* twiddle,
                   const std::uint32_t* rev, bool invert) {
  simd_kernels().fft_radix2(a, n, twiddle, rev, invert);
}

std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> rev(n, 0);
  std::uint32_t log2n = 0;
  while ((1ull << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t x = static_cast<std::uint32_t>(i);
    std::uint32_t r = 0;
    for (std::uint32_t b = 0; b < log2n; ++b) {
      r = (r << 1) | (x & 1u);
      x >>= 1;
    }
    rev[i] = r;
  }
  return rev;
}

std::vector<cf64> make_twiddles(std::size_t n) {
  std::vector<cf64> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    tw[k] = cf64{std::cos(ang), std::sin(ang)};
  }
  return tw;
}

/// Per-thread scratch behind the Workspace-less transform overloads. Each
/// thread grows its own scratch to the largest plan it touches, then every
/// later transform is allocation-free. Freed (and un-accounted) when the
/// thread exits.
FftPlan::Workspace& thread_workspace() {
  thread_local FftPlan::Workspace ws;
  return ws;
}

}  // namespace

// ---- Workspace ----------------------------------------------------------

FftPlan::Workspace::Workspace() = default;

FftPlan::Workspace::~Workspace() {
  if (accounted_ > 0) {
    g_workspace_bytes.fetch_sub(accounted_, std::memory_order_relaxed);
  }
}

FftPlan::Workspace::Workspace(Workspace&& other) noexcept
    : a_(std::move(other.a_)),
      u_(std::move(other.u_)),
      accounted_(other.accounted_) {
  other.a_.clear();
  other.u_.clear();
  other.accounted_ = 0;
}

FftPlan::Workspace& FftPlan::Workspace::operator=(Workspace&& other) noexcept {
  if (this != &other) {
    if (accounted_ > 0) {
      g_workspace_bytes.fetch_sub(accounted_, std::memory_order_relaxed);
    }
    a_ = std::move(other.a_);
    u_ = std::move(other.u_);
    accounted_ = other.accounted_;
    other.a_.clear();
    other.u_.clear();
    other.accounted_ = 0;
  }
  return *this;
}

std::size_t FftPlan::Workspace::bytes() const {
  return (a_.capacity() + u_.capacity()) * sizeof(cf64);
}

void FftPlan::Workspace::reserve(std::size_t n, std::size_t m) {
  if (a_.size() < n) a_.resize(n);
  if (m > 0 && u_.size() < m) u_.resize(m);
  const std::size_t now = bytes();
  if (now != accounted_) {
    // Capacity only ever grows here, so the delta is non-negative.
    const std::uint64_t total =
        g_workspace_bytes.fetch_add(now - accounted_,
                                    std::memory_order_relaxed) +
        (now - accounted_);
    accounted_ = now;
    raise_workspace_peak(total);
  }
}

// ---- FftPlan ------------------------------------------------------------

struct FftPlan::Impl {
  // Power-of-two path.
  std::vector<cf64> twiddle;
  std::vector<std::uint32_t> bitrev;

  // Bluestein path (empty when n is a power of two).
  std::size_t m = 0;                 // convolution length (power of two)
  std::vector<cf64> chirp;           // b_n = e^{+jπ n^2 / N}
  std::vector<cf64> chirp_fft;       // FFT_m of zero-padded, wrapped chirp
  std::vector<cf64> m_twiddle;
  std::vector<std::uint32_t> m_bitrev;

  /// Transform `a` (length n) using scratch `u` (length m; unused and may
  /// be empty on the power-of-two path). Heap-allocation-free.
  void run(std::span<cf64> a, std::span<cf64> u, bool invert) const {
    if (m == 0) {
      radix2(a.data(), a.size(), twiddle.data(), bitrev.data(), invert);
      return;
    }
    // Bluestein: X_k = conj(b_k) * sum_n [a_n conj(b_n)] b_{k-n}
    // (complex products spelled out in real arithmetic — see radix2).
    const std::size_t n = a.size();
    LSCATTER_ASSERT(!invert,
                    "Bluestein inverse must go through the conjugate "
                    "identity (see run_with)");
    for (std::size_t i = 0; i < n; ++i) {
      const cf64 c = chirp[i];  // multiply by conj(c)
      const cf64 x = a[i];
      u[i] = cf64{x.real() * c.real() + x.imag() * c.imag(),
                  x.imag() * c.real() - x.real() * c.imag()};
    }
    std::fill(u.begin() + static_cast<std::ptrdiff_t>(n), u.end(), cf64{});
    radix2(u.data(), m, m_twiddle.data(), m_bitrev.data(), false);
    simd_kernels().cmul64(u.data(), chirp_fft.data(), m);
    radix2(u.data(), m, m_twiddle.data(), m_bitrev.data(), true);
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) {
      const cf64 x = u[k];
      const cf64 c = chirp[k];  // multiply by inv_m * conj(c)
      a[k] = cf64{(x.real() * c.real() + x.imag() * c.imag()) * inv_m,
                  (x.imag() * c.real() - x.real() * c.imag()) * inv_m};
    }
  }
};

FftPlan::FftPlan(std::size_t n) : n_(n), impl_(std::make_unique<Impl>()) {
  LSCATTER_EXPECT(n >= 1, "FFT length must be at least 1");
  if (is_power_of_two(n)) {
    impl_->twiddle = make_twiddles(n);
    impl_->bitrev = make_bitrev(n);
    return;
  }
  // Bluestein setup.
  const std::size_t m = next_power_of_two(2 * n - 1);
  impl_->m = m;
  impl_->m_twiddle = make_twiddles(m);
  impl_->m_bitrev = make_bitrev(m);
  impl_->chirp.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Use (i*i mod 2n) to keep the argument small and exact.
    const std::size_t q = (i * i) % (2 * n);
    const double ang = kPi * static_cast<double>(q) / static_cast<double>(n);
    impl_->chirp[i] = cf64{std::cos(ang), std::sin(ang)};
  }
  std::vector<cf64> b(m, cf64{});
  b[0] = impl_->chirp[0];
  for (std::size_t i = 1; i < n; ++i) {
    b[i] = impl_->chirp[i];
    b[m - i] = impl_->chirp[i];
  }
  radix2(b.data(), m, impl_->m_twiddle.data(), impl_->m_bitrev.data(), false);
  impl_->chirp_fft = std::move(b);
}

FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan&&) noexcept = default;
FftPlan& FftPlan::operator=(FftPlan&&) noexcept = default;

FftPlan::Workspace FftPlan::make_workspace() const {
  Workspace ws;
  ws.reserve(n_, impl_->m);
  return ws;
}

cvec FftPlan::forward(std::span<const cf32> in) const {
  LSCATTER_EXPECT(in.size() == n_, "input length must match the plan size");
  cvec out(in.begin(), in.end());
  forward_inplace(out);
  return out;
}

cvec FftPlan::inverse(std::span<const cf32> in) const {
  LSCATTER_EXPECT(in.size() == n_, "input length must match the plan size");
  cvec out(in.begin(), in.end());
  inverse_inplace(out);
  return out;
}

void FftPlan::run_with(std::span<cf32> data, Workspace& ws,
                       bool invert) const {
  LSCATTER_EXPECT(data.size() == n_, "buffer length must match the plan size");
  ws.reserve(n_, impl_->m);
  const std::span<cf64> a(ws.a_.data(), n_);
  const std::span<cf64> u(ws.u_.data(), impl_->m);
  if (!invert) {
    for (std::size_t i = 0; i < n_; ++i)
      a[i] = cf64{data[i].real(), data[i].imag()};
    impl_->run(a, u, false);
    for (std::size_t i = 0; i < n_; ++i)
      data[i] = cf32{static_cast<float>(a[i].real()),
                     static_cast<float>(a[i].imag())};
    return;
  }
  // IDFT(x) = conj(DFT(conj(x))) / N — valid for both kernels.
  for (std::size_t i = 0; i < n_; ++i)
    a[i] = cf64{data[i].real(), -data[i].imag()};
  impl_->run(a, u, false);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i)
    data[i] = cf32{static_cast<float>(a[i].real() * inv_n),
                   static_cast<float>(-a[i].imag() * inv_n)};
}

void FftPlan::forward_inplace(std::span<cf32> data) const {
  run_with(data, thread_workspace(), false);
}

void FftPlan::inverse_inplace(std::span<cf32> data) const {
  run_with(data, thread_workspace(), true);
}

void FftPlan::forward_inplace(std::span<cf32> data, Workspace& ws) const {
  run_with(data, ws, false);
}

void FftPlan::inverse_inplace(std::span<cf32> data, Workspace& ws) const {
  run_with(data, ws, true);
}

void FftPlan::forward_inplace64(std::span<cf64> data) const {
  LSCATTER_EXPECT(data.size() == n_, "buffer length must match the plan size");
  LSCATTER_EXPECT(impl_->m == 0,
                  "the double-precision path needs a power-of-two plan");
  radix2(data.data(), data.size(), impl_->twiddle.data(),
         impl_->bitrev.data(), false);
}

void FftPlan::inverse_inplace64(std::span<cf64> data) const {
  LSCATTER_EXPECT(data.size() == n_, "buffer length must match the plan size");
  LSCATTER_EXPECT(impl_->m == 0,
                  "the double-precision path needs a power-of-two plan");
  radix2(data.data(), data.size(), impl_->twiddle.data(),
         impl_->bitrev.data(), true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (cf64& v : data) v *= inv_n;
}

// ---- plan cache ---------------------------------------------------------

namespace {

// Read-mostly plan cache behind a reader-writer capability: the steady
// state is concurrent shared-mode lookups; the first request for a new
// size upgrades to exclusive by RELEASING the shared lock and
// re-acquiring exclusive (never while still holding shared — an in-place
// upgrade attempt is the textbook reader/reader deadlock, and the
// lock-order validator would flag the same-thread re-acquisition). The
// double-checked find under the exclusive lock covers the window between
// the two acquisitions. Plans are immutable once constructed and never
// destroyed, so references returned from under the lock stay valid.
struct PlanCache {
  lscatter::SharedMutex mutex{"dsp.fft.plan_cache"};
  std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> plans
      LSCATTER_GUARDED_BY(mutex);
};

PlanCache& plan_cache() {
  static PlanCache* const cache = new PlanCache();  // never destroyed:
  // fft() may be called from static destructors of client code.
  return *cache;
}

}  // namespace

const FftPlan& cached_fft_plan(std::size_t n) {
  PlanCache& cache = plan_cache();
  {
    lscatter::SharedLockGuard lock(cache.mutex);
    const auto it = std::as_const(cache.plans).find(n);
    if (it != std::as_const(cache.plans).cend()) {
      g_plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return *it->second;
    }
  }
  lscatter::ExclusiveLockGuard lock(cache.mutex);
  auto it = cache.plans.find(n);
  if (it != cache.plans.end()) {
    // Another thread built it between our two lock acquisitions.
    g_plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return *it->second;
  }
  g_plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
  it = cache.plans.emplace(n, std::make_unique<FftPlan>(n)).first;
  return *it->second;
}

FftRuntimeStats fft_runtime_stats() {
  FftRuntimeStats s;
  s.plan_cache_hits = g_plan_cache_hits.load(std::memory_order_relaxed);
  s.plan_cache_misses = g_plan_cache_misses.load(std::memory_order_relaxed);
  s.workspace_bytes = g_workspace_bytes.load(std::memory_order_relaxed);
  s.workspace_bytes_peak =
      g_workspace_bytes_peak.load(std::memory_order_relaxed);
  return s;
}

cvec fft(std::span<const cf32> in) {
  return cached_fft_plan(in.size()).forward(in);
}

cvec ifft(std::span<const cf32> in) {
  return cached_fft_plan(in.size()).inverse(in);
}

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

cvec fftshift(std::span<const cf32> in) {
  const std::size_t n = in.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = in[(i + half) % n];
  return out;
}

}  // namespace lscatter::dsp
