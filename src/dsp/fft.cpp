#include "dsp/fft.hpp"

#include <cmath>
#include <mutex>
#include <unordered_map>

#include "core/contracts.hpp"

namespace lscatter::dsp {
namespace {

// Iterative radix-2 DIT on double-precision working buffers.
void radix2(std::vector<cf64>& a, const std::vector<cf64>& twiddle,
            const std::vector<std::uint32_t>& rev, bool invert) {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        cf64 w = twiddle[k * step];
        if (invert) w = std::conj(w);
        const cf64 u = a[i + k];
        const cf64 v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> rev(n, 0);
  std::uint32_t log2n = 0;
  while ((1ull << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t x = static_cast<std::uint32_t>(i);
    std::uint32_t r = 0;
    for (std::uint32_t b = 0; b < log2n; ++b) {
      r = (r << 1) | (x & 1u);
      x >>= 1;
    }
    rev[i] = r;
  }
  return rev;
}

std::vector<cf64> make_twiddles(std::size_t n) {
  std::vector<cf64> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    tw[k] = cf64{std::cos(ang), std::sin(ang)};
  }
  return tw;
}

}  // namespace

struct FftPlan::Impl {
  // Power-of-two path.
  std::vector<cf64> twiddle;
  std::vector<std::uint32_t> bitrev;

  // Bluestein path (empty when n is a power of two).
  std::size_t m = 0;                 // convolution length (power of two)
  std::vector<cf64> chirp;           // b_n = e^{+jπ n^2 / N}
  std::vector<cf64> chirp_fft;       // FFT_m of zero-padded, wrapped chirp
  std::vector<cf64> m_twiddle;
  std::vector<std::uint32_t> m_bitrev;

  void run(std::vector<cf64>& a, bool invert) const {
    if (m == 0) {
      radix2(a, twiddle, bitrev, invert);
      return;
    }
    // Bluestein: X_k = conj(b_k) * sum_n [a_n conj(b_n)] b_{k-n}
    const std::size_t n = a.size();
    std::vector<cf64> u(m, cf64{});
    for (std::size_t i = 0; i < n; ++i) {
      cf64 c = chirp[i];
      if (invert) c = std::conj(c);
      u[i] = a[i] * std::conj(c);
    }
    radix2(u, m_twiddle, m_bitrev, false);
    if (!invert) {
      for (std::size_t i = 0; i < m; ++i) u[i] *= chirp_fft[i];
    } else {
      // The inverse DFT is the forward DFT with conjugated chirp; the
      // convolution kernel conjugates accordingly. Using the identity
      // IDFT(x) = conj(DFT(conj(x)))/N is simpler and exact:
      // handled by caller; this branch is unreachable.
      LSCATTER_ASSERT(false, "Bluestein inverse must go through the conjugate identity");
    }
    radix2(u, m_twiddle, m_bitrev, true);
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) {
      a[k] = u[k] * inv_m * std::conj(chirp[k]);
    }
  }
};

FftPlan::FftPlan(std::size_t n) : n_(n), impl_(std::make_unique<Impl>()) {
  LSCATTER_EXPECT(n >= 1, "FFT length must be at least 1");
  if (is_power_of_two(n)) {
    impl_->twiddle = make_twiddles(n);
    impl_->bitrev = make_bitrev(n);
    return;
  }
  // Bluestein setup.
  const std::size_t m = next_power_of_two(2 * n - 1);
  impl_->m = m;
  impl_->m_twiddle = make_twiddles(m);
  impl_->m_bitrev = make_bitrev(m);
  impl_->chirp.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Use (i*i mod 2n) to keep the argument small and exact.
    const std::size_t q = (i * i) % (2 * n);
    const double ang = kPi * static_cast<double>(q) / static_cast<double>(n);
    impl_->chirp[i] = cf64{std::cos(ang), std::sin(ang)};
  }
  std::vector<cf64> b(m, cf64{});
  b[0] = impl_->chirp[0];
  for (std::size_t i = 1; i < n; ++i) {
    b[i] = impl_->chirp[i];
    b[m - i] = impl_->chirp[i];
  }
  radix2(b, impl_->m_twiddle, impl_->m_bitrev, false);
  impl_->chirp_fft = std::move(b);
}

FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan&&) noexcept = default;
FftPlan& FftPlan::operator=(FftPlan&&) noexcept = default;

cvec FftPlan::forward(std::span<const cf32> in) const {
  LSCATTER_EXPECT(in.size() == n_, "input length must match the plan size");
  cvec out(in.begin(), in.end());
  forward_inplace(out);
  return out;
}

cvec FftPlan::inverse(std::span<const cf32> in) const {
  LSCATTER_EXPECT(in.size() == n_, "input length must match the plan size");
  cvec out(in.begin(), in.end());
  inverse_inplace(out);
  return out;
}

void FftPlan::forward_inplace(std::span<cf32> data) const {
  LSCATTER_EXPECT(data.size() == n_, "buffer length must match the plan size");
  std::vector<cf64> a(n_);
  for (std::size_t i = 0; i < n_; ++i)
    a[i] = cf64{data[i].real(), data[i].imag()};
  impl_->run(a, false);
  for (std::size_t i = 0; i < n_; ++i)
    data[i] = cf32{static_cast<float>(a[i].real()),
                   static_cast<float>(a[i].imag())};
}

void FftPlan::inverse_inplace(std::span<cf32> data) const {
  LSCATTER_EXPECT(data.size() == n_, "buffer length must match the plan size");
  // IDFT(x) = conj(DFT(conj(x))) / N — valid for both kernels.
  std::vector<cf64> a(n_);
  for (std::size_t i = 0; i < n_; ++i)
    a[i] = cf64{data[i].real(), -data[i].imag()};
  impl_->run(a, false);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i)
    data[i] = cf32{static_cast<float>(a[i].real() * inv_n),
                   static_cast<float>(-a[i].imag() * inv_n)};
}

namespace {
std::unordered_map<std::size_t, std::unique_ptr<FftPlan>>& plan_cache() {
  static std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> cache;
  return cache;
}
std::mutex& plan_mutex() {
  static std::mutex m;
  return m;
}
const FftPlan& cached_plan(std::size_t n) {
  std::lock_guard<std::mutex> lock(plan_mutex());
  auto& cache = plan_cache();
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<FftPlan>(n)).first;
  }
  return *it->second;
}
}  // namespace

cvec fft(std::span<const cf32> in) { return cached_plan(in.size()).forward(in); }

cvec ifft(std::span<const cf32> in) { return cached_plan(in.size()).inverse(in); }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

cvec fftshift(std::span<const cf32> in) {
  const std::size_t n = in.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = in[(i + half) % n];
  return out;
}

}  // namespace lscatter::dsp
