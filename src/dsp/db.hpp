#pragma once
// Decibel conversion helpers. Power quantities throughout the codebase are
// linear milliwatts unless the name says otherwise (`*_dbm`, `*_db`).

#include <cmath>

namespace lscatter::dsp {

/// Power ratio -> dB.
inline double lin_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// dB -> power ratio.
inline double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Power in mW -> dBm.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// dBm -> power in mW.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Amplitude ratio -> dB (20 log10).
inline double amp_to_db(double ratio) { return 20.0 * std::log10(ratio); }

/// dB -> amplitude ratio.
inline double db_to_amp(double db) { return std::pow(10.0, db / 20.0); }

}  // namespace lscatter::dsp
