#pragma once
// Runtime-dispatched SIMD kernel layer for the DSP hot loops
// (DESIGN.md §14).
//
// The four hot kernels of the receive chain — the radix-2 FFT
// butterflies, the correlation MACs, QAM demapping, and the per-unit
// phase/accumulation machinery of the Eq. 7 offset search — are compiled
// three times (scalar, SSE2, AVX2+FMA) into one binary and selected once
// at runtime from a cached function-pointer table:
//
//   const SimdKernels& k = simd_kernels();   // active tier's table
//   k.corr_mac(sig, pat, m, &ar, &ai);
//
// Tier selection: the first simd_kernels()/simd_tier() call resolves the
// LSCATTER_SIMD env var (scalar | sse2 | avx2 | auto; auto and unset pick
// the best tier this CPU supports, a named tier is clamped down to the
// best supported tier not above it). Tests and benches may switch tiers
// programmatically with set_simd_tier(). The vector tiers exist only on
// x86 builds with the LSCATTER_SIMD CMake option ON; everywhere else the
// table degenerates to the scalar tier and dispatch stays valid.
//
// Contracts shared by every tier of every kernel:
//   * identical mathematical results; floating-point sums may differ in
//     association only, bounded by the scalar-vs-SIMD equivalence suites
//     (<= 1e-4 relative on random + Zadoff-Chu inputs, bit-exact for the
//     QAM hard decisions);
//   * no alignment requirement — all tiers issue unaligned loads/stores,
//     so std::vector / span buffers need no special allocator (32-byte
//     alignment still helps AVX2 throughput; see DESIGN.md §14);
//   * no heap allocation, no locks, no global state.

#include <cstddef>
#include <cstdint>

#include "dsp/types.hpp"

namespace lscatter::dsp {

enum class SimdTier : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* to_string(SimdTier t);

/// Hot-loop kernel table. One instance per tier; all entries non-null.
struct SimdKernels {
  SimdTier tier = SimdTier::kScalar;

  /// Iterative radix-2 DIT FFT on interleaved cf64. `twiddle` holds the
  /// n/2 forward twiddles, `rev` the bit-reversal permutation; `invert`
  /// conjugates the twiddles via a folded sign (exact for the forward
  /// path). Power-of-two n only.
  void (*fft_radix2)(cf64* a, std::size_t n, const cf64* twiddle,
                     const std::uint32_t* rev, bool invert) = nullptr;

  /// Correlation MAC: *ar/*ai += sum_k s[k] * conj(p[k]), accumulated in
  /// double.
  void (*corr_mac)(const cf32* s, const cf32* p, std::size_t m, double* ar,
                   double* ai) = nullptr;

  /// Elementwise spectral product x[k] *= h[k] on cf64 (overlap-save
  /// frequency-domain multiply).
  void (*cmul64)(cf64* x, const cf64* h, std::size_t n) = nullptr;

  /// Per-unit conjugate product z[k] = a[k] * conj(b[k]) on cf32 — the
  /// tag demod chain's rx * conj(ambient) step.
  void (*conj_mul)(const cf32* a, const cf32* b, cf32* z,
                   std::size_t n) = nullptr;

  /// *ar/*ai += sum_k v[k]; *abs_sum += sum_k |v[k]| (double accumulate).
  void (*sum_abs)(const cf32* v, std::size_t n, double* ar, double* ai,
                  double* abs_sum) = nullptr;

  /// Pattern-masked sums for the Eq. 7 offset search: *sel_r/*sel_i +=
  /// sum over k with pattern[k] != 0 of v[k]; *all_r/*all_i += sum_k
  /// v[k]; *abs_sum += sum_k |v[k]|. The ±1-signed preamble correlation
  /// is then 2*sel - all.
  void (*pattern_sums)(const cf32* v, const std::uint8_t* pattern,
                       std::size_t n, double* sel_r, double* sel_i,
                       double* all_r, double* all_i,
                       double* abs_sum) = nullptr;

  /// Hard-decision QAM demappers (TS 36.211 §7.1 constellations, unit
  /// average power): n symbols in, bits_per_symbol * n bits out (one bit
  /// per byte, values 0/1). Bit-exact across tiers.
  void (*qam_demap_qpsk)(const cf32* sym, std::size_t n,
                         std::uint8_t* bits) = nullptr;
  void (*qam_demap16)(const cf32* sym, std::size_t n,
                      std::uint8_t* bits) = nullptr;
  void (*qam_demap64)(const cf32* sym, std::size_t n,
                      std::uint8_t* bits) = nullptr;
};

/// Highest tier this binary + CPU can run (scalar when the vector TUs
/// were compiled out: -DLSCATTER_SIMD=OFF or a non-x86 target).
SimdTier simd_best_supported();

/// True if `t` can run here (scalar always can).
bool simd_tier_supported(SimdTier t);

/// Resolve an LSCATTER_SIMD-style spec to a runnable tier. nullptr, ""
/// and "auto" pick simd_best_supported(); "scalar"/"sse2"/"avx2" are
/// clamped down to the best supported tier not above the named one. Any
/// other value is a contract violation (and resolves to auto so log-mode
/// contracts stay usable).
SimdTier resolve_simd_tier(const char* spec);

/// Active tier: the first call resolves the LSCATTER_SIMD env var; later
/// calls return the cached choice (or whatever set_simd_tier installed).
SimdTier simd_tier();

/// Force the active tier (clamped to supported; returns the tier actually
/// installed). Takes effect for subsequent simd_kernels() calls on all
/// threads — meant for tests and benches, not for flipping mid-pipeline.
SimdTier set_simd_tier(SimdTier t);

/// Kernel table of the active tier.
const SimdKernels& simd_kernels();

/// Kernel table of an explicit tier (must be supported).
const SimdKernels& simd_kernels(SimdTier t);

}  // namespace lscatter::dsp
