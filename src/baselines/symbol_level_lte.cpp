#include "baselines/symbol_level_lte.hpp"

#include <cmath>

#include "channel/awgn.hpp"
#include "dsp/db.hpp"
#include "lte/ofdm.hpp"
#include "lte/signal_map.hpp"
#include "obs/obs.hpp"

namespace lscatter::baselines {

using dsp::cf32;
using dsp::cvec;

SymbolLevelLteLink::SymbolLevelLteLink(const SymbolLevelLteConfig& config)
    : config_(config),
      enodeb_(config.enodeb),
      rng_(config.seed, 0x5151515151ULL) {}

double SymbolLevelLteLink::instantaneous_rate_bps() const {
  // 14 symbols/ms; 2 of 10 subframes lose 2 symbols to PSS/SSS; 1 bit per
  // 2 symbols.
  const double symbols_per_s = (14.0 * 10.0 - 2.0 * 2.0) / 10.0 * 1000.0;
  return symbols_per_s / 2.0;
}

core::LinkMetrics SymbolLevelLteLink::run(std::size_t n_subframes) {
  LSCATTER_OBS_SPAN("baselines.symbol_level.run");
  LSCATTER_OBS_COUNTER_ADD("baselines.symbol_level.subframes", n_subframes);
  dsp::Rng drop_rng = rng_.fork();
  dsp::Rng noise_rng = rng_.fork();
  const auto& cell = config_.enodeb.cell;
  const dsp::Hz f{cell.carrier_hz};

  const dsp::Db pl1 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.enb_tag_ft), f, drop_rng);
  const dsp::Db pl2 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.tag_ue_ft), f, drop_rng);
  const dsp::Dbm rx_dbm = config_.budget.backscatter_rx_dbm(pl1, pl2);
  const dsp::Hz occupied =
      static_cast<double>(cell.n_subcarriers()) *
      dsp::Hz{lte::kSubcarrierSpacingHz};
  const double noise_mw = dsp::to_mw(channel::noise_floor_dbm(
      occupied, config_.budget.noise_figure_db));

  const auto draw_fade = [&]() -> cf32 {
    if (!config_.los) return drop_rng.complex_normal(1.0);
    const double k = config_.rician_k_db.linear();
    return cf32{static_cast<float>(std::sqrt(k / (k + 1.0))), 0.0f} +
           drop_rng.complex_normal(1.0 / (k + 1.0));
  };
  const cf32 gain = draw_fade() * draw_fade() *
                    static_cast<float>(channel::amplitude(rx_dbm));

  core::LinkMetrics m;
  m.elapsed_s = static_cast<double>(n_subframes) * 1e-3;

  // FreeRider-style codewords: one bit per *pair* of modulatable symbols —
  // the pair (s, s) carries '1', (s, -s) carries '0'. The UE integrates
  // r * conj(x) over each useful part and compares within the pair.
  bool pair_open = false;     // first symbol of the pair seen
  float ref_sign = 1.0f;
  cf32 ref_g{};
  std::uint8_t pending_bit = 1;

  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const lte::SubframeTx tx = enodeb_.next_subframe();
    for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
      const bool sync_symbol =
          lte::is_sync_subframe(sf) &&
          (l == lte::kPssSymbolIndex || l == lte::kSssSymbolIndex);
      if (sync_symbol) continue;  // tag idles over PSS/SSS

      const std::size_t off = lte::symbol_offset_in_subframe(cell, l);
      const std::size_t cp = cell.cp_length(l % lte::kSymbolsPerSlot);
      const std::size_t k = cell.fft_size();

      float sign = 1.0f;
      if (pair_open) {
        pending_bit = static_cast<std::uint8_t>(rng_.next_u32() & 1u);
        sign = pending_bit ? ref_sign : -ref_sign;
      }

      // Integrate r * conj(x) over the useful part, with noise.
      dsp::cf64 acc{};
      for (std::size_t n = 0; n < k; ++n) {
        const cf32 x = tx.samples[off + cp + n];
        const cf32 r =
            gain * sign * x + noise_rng.complex_normal(noise_mw);
        acc += dsp::cf64{r.real(), r.imag()} *
               dsp::cf64{x.real(), -x.imag()};
      }
      const cf32 g{static_cast<float>(acc.real()),
                   static_cast<float>(acc.imag())};

      if (!pair_open) {
        pair_open = true;
        ref_sign = sign;
        ref_g = g;
        continue;
      }
      const cf32 d = g * std::conj(ref_g);
      const std::uint8_t decided = d.real() >= 0.0f ? 1 : 0;
      m.bits_sent += 1;
      if (decided != pending_bit) m.bit_errors += 1;
      pair_open = false;
    }
  }
  m.packets_sent = 1;
  m.packets_detected = 1;
  const std::size_t correct = m.bits_sent - m.bit_errors;
  m.bits_delivered =
      correct > m.bit_errors ? correct - m.bit_errors : 0;
  if (m.bit_errors == 0) {
    m.packets_ok = 1;
    m.bits_crc_ok = m.bits_sent;
  }
  return m;
}

}  // namespace lscatter::baselines
