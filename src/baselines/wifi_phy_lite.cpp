#include "baselines/wifi_phy_lite.hpp"

#include <cmath>

namespace lscatter::baselines {

using dsp::cf32;
using dsp::cvec;

WifiPhy::WifiPhy(const WifiPhyConfig& config)
    : config_(config), plan_(WifiPhyConfig::kFftSize) {}

cvec WifiPhy::generate_burst(std::size_t n_symbols, dsp::Rng& rng) const {
  constexpr std::size_t kN = WifiPhyConfig::kFftSize;
  constexpr std::size_t kCp = WifiPhyConfig::kCpLen;
  const float inv_sqrt2 = static_cast<float>(1.0 / std::sqrt(2.0));

  cvec out;
  out.reserve(n_symbols * (kN + kCp));
  cvec bins(kN);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    std::fill(bins.begin(), bins.end(), cf32{});
    // Subcarriers -26..-1, 1..26 (DC and the outer guards empty); pilots
    // at +/-7, +/-21.
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      const std::size_t bin = k > 0 ? static_cast<std::size_t>(k)
                                    : kN + static_cast<std::size_t>(k);
      const bool pilot = (k == 7 || k == -7 || k == 21 || k == -21);
      if (pilot) {
        bins[bin] = cf32{1.0f, 0.0f};
      } else {
        bins[bin] = cf32{(rng.next_u32() & 1u) ? inv_sqrt2 : -inv_sqrt2,
                         (rng.next_u32() & 1u) ? inv_sqrt2 : -inv_sqrt2};
      }
    }
    cvec t = plan_.inverse(bins);
    // Scale to unit mean power: IFFT(1/N) of 52 unit REs.
    const float scale = static_cast<float>(
        std::sqrt(static_cast<double>(kN) * kN /
                  static_cast<double>(WifiPhyConfig::kUsedSubcarriers)));
    for (auto& v : t) v *= scale;
    out.insert(out.end(), t.end() - kCp, t.end());
    out.insert(out.end(), t.begin(), t.end());
  }
  return out;
}

}  // namespace lscatter::baselines
