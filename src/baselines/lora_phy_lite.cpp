#include "baselines/lora_phy_lite.hpp"

#include <cassert>
#include <cmath>

#include "dsp/correlate.hpp"

namespace lscatter::baselines {

using dsp::cf32;
using dsp::cvec;

LoraPhy::LoraPhy(const LoraPhyConfig& config)
    : config_(config), plan_(config.chips_per_symbol()) {
  const std::size_t n = config_.chips_per_symbol();
  base_upchirp_.resize(n);
  // Chirp phase: f(t) sweeps -BW/2 .. +BW/2 over the symbol;
  // phi(k) = pi * k^2 / n - pi * k (sampled at the chip rate).
  for (std::size_t k = 0; k < n; ++k) {
    const double kk = static_cast<double>(k);
    const double nn = static_cast<double>(n);
    const double phase = dsp::kPi * kk * kk / nn - dsp::kPi * kk;
    base_upchirp_[k] = cf32{static_cast<float>(std::cos(phase)),
                            static_cast<float>(std::sin(phase))};
  }
}

cvec LoraPhy::modulate_symbol(std::uint32_t value) const {
  const std::size_t n = config_.chips_per_symbol();
  assert(value < n);
  cvec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = base_upchirp_[(k + value) % n];
  }
  return out;
}

cvec LoraPhy::modulate(std::span<const std::uint32_t> values) const {
  cvec out;
  out.reserve(values.size() * config_.chips_per_symbol());
  for (const std::uint32_t v : values) {
    const cvec s = modulate_symbol(v);
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

std::uint32_t LoraPhy::demodulate_symbol(
    std::span<const cf32> samples) const {
  const std::size_t n = config_.chips_per_symbol();
  assert(samples.size() >= n);
  cvec dechirped(n);
  for (std::size_t k = 0; k < n; ++k) {
    dechirped[k] = samples[k] * std::conj(base_upchirp_[k]);
  }
  plan_.forward_inplace(dechirped);
  return static_cast<std::uint32_t>(dsp::peak_abs(dechirped).index);
}

}  // namespace lscatter::baselines
