#pragma once
// Minimal 802.11a/g OFDM excitation source for the WiFi-backscatter
// baseline: 64-point FFT at 20 Msps, 52 used subcarriers (48 data + 4
// pilots), 16-sample CP (4 us symbols), QPSK data. Enough structure for a
// FreeRider-style symbol-level backscatter study; no scrambler/FEC/MAC.

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace lscatter::baselines {

struct WifiPhyConfig {
  static constexpr std::size_t kFftSize = 64;
  static constexpr std::size_t kCpLen = 16;
  static constexpr std::size_t kUsedSubcarriers = 52;
  double sample_rate_hz = 20e6;  // lint-ok: units — PHY-lite config stays raw at the baseline boundary
  double carrier_hz = 2.437e9;  // channel 6  // lint-ok: units — PHY-lite config stays raw at the baseline boundary

  static constexpr std::size_t samples_per_symbol() {
    return kFftSize + kCpLen;
  }
  double symbol_duration_s() const {
    return static_cast<double>(samples_per_symbol()) / sample_rate_hz;
  }
};

class WifiPhy {
 public:
  explicit WifiPhy(const WifiPhyConfig& config = {});

  /// Generate `n_symbols` OFDM data symbols (QPSK on 48 data subcarriers,
  /// BPSK pilots), unit mean power, CP included. Also returns them via
  /// out-param grid-free: the backscatter baseline only needs the
  /// waveform.
  dsp::cvec generate_burst(std::size_t n_symbols, dsp::Rng& rng) const;

  const WifiPhyConfig& config() const { return config_; }

 private:
  WifiPhyConfig config_;
  dsp::FftPlan plan_;
};

}  // namespace lscatter::baselines
