#include "baselines/taxonomy.hpp"

namespace lscatter::baselines {

const std::array<BackscatterSystem, 16>& table1_systems() {
  static const std::array<BackscatterSystem, 16> kSystems = {{
      {"NICScatter", "WiFi NIC", true, false, false},
      {"ReMix", "in-body reader", false, false, false},
      {"PLoRa", "LoRa", true, false, false},
      {"LoRa backscatter", "single tone", false, true, false},
      {"Netscatter", "single tone", false, true, false},
      {"FlipTracer", "RFID reader", false, false, false},
      {"FS-Backscatter", "WiFi/BLE", true, false, false},
      {"WiFi backscatter", "WiFi", true, false, false},
      {"MOXcatter", "WiFi OFDM", true, false, false},
      {"X-Tandem", "WiFi", true, false, false},
      {"FreeRider", "WiFi/BLE/ZigBee", true, false, false},
      {"HitchHike", "WiFi 802.11b", true, false, false},
      {"BackFi", "WiFi (full duplex AP)", false, true, false},
      {"Passive WiFi", "single tone", false, true, false},
      {"Interscatter", "BLE->WiFi", false, true, false},
      {"LScatter", "ambient LTE", true, true, true},
  }};
  return kSystems;
}

}  // namespace lscatter::baselines
