#pragma once
// Minimal LoRa CSS PHY for the PLoRa-style baseline: up-chirp symbol
// generation (spreading factors 7..12 at 125 kHz), dechirp + FFT
// demodulation. The LoRa backscatter baseline mostly exists to show the
// paper's point: with ~2% ambient occupancy the achievable backscatter
// throughput is effectively zero.

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace lscatter::baselines {

struct LoraPhyConfig {
  unsigned spreading_factor = 8;  // 7..12
  double bandwidth_hz = 125e3;  // lint-ok: units — PHY-lite config stays raw at the baseline boundary
  double carrier_hz = 915e6;  // lint-ok: units — PHY-lite config stays raw at the baseline boundary

  std::size_t chips_per_symbol() const { return 1u << spreading_factor; }
  double symbol_duration_s() const {
    return static_cast<double>(chips_per_symbol()) / bandwidth_hz;
  }
};

class LoraPhy {
 public:
  explicit LoraPhy(const LoraPhyConfig& config = {});

  /// One CSS symbol carrying `value` in [0, 2^SF): an up-chirp cyclically
  /// shifted by `value` chips, sampled at `bandwidth_hz`.
  dsp::cvec modulate_symbol(std::uint32_t value) const;

  /// Modulate a symbol sequence.
  dsp::cvec modulate(std::span<const std::uint32_t> values) const;

  /// Dechirp-and-FFT demodulation of one symbol.
  std::uint32_t demodulate_symbol(std::span<const dsp::cf32> samples) const;

  const LoraPhyConfig& config() const { return config_; }

 private:
  LoraPhyConfig config_;
  dsp::cvec base_upchirp_;
  dsp::FftPlan plan_;
};

}  // namespace lscatter::baselines
