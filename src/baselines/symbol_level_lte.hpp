#pragma once
// "Symbol-level LTE backscatter" baseline (paper §4.4.2): applies the
// existing WiFi backscatters' symbol-level codeword technique to the LTE
// waveform. One differential bit per two 71.4 us LTE symbols = 7 kbps at
// any bandwidth — this is precisely the low-throughput trap LScatter's
// basic-timing-unit modulation escapes, and the comparison curve of
// Figs. 23/24/28/29. Because each decision integrates a whole symbol
// (~2200 samples of processing gain) it keeps working at lower SNR than
// LScatter, which is why it crosses above WiFi backscatter at long range
// (680 MHz vs 2.4 GHz) in the paper.

#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "core/metrics.hpp"
#include "lte/enodeb.hpp"

namespace lscatter::baselines {

struct SymbolLevelLteConfig {
  lte::Enodeb::Config enodeb;
  channel::PathLossModel pathloss;
  channel::LinkBudget budget;
  double enb_tag_ft = 3.0;
  double tag_ue_ft = 3.0;
  dsp::Db rician_k_db{8.0};
  bool los = true;
  std::uint64_t seed = 11;
};

class SymbolLevelLteLink {
 public:
  explicit SymbolLevelLteLink(const SymbolLevelLteConfig& config);

  /// 1 bit / 2 LTE symbols, PSS/SSS symbols excluded: 6.86 kbps long-run.
  double instantaneous_rate_bps() const;

  /// Simulate `n_subframes` of continuous operation (one drop).
  core::LinkMetrics run(std::size_t n_subframes);

 private:
  SymbolLevelLteConfig config_;
  lte::Enodeb enodeb_;
  dsp::Rng rng_;
};

}  // namespace lscatter::baselines
