#pragma once
// FreeRider-style ambient WiFi backscatter baseline (paper §4.1).
//
// Symbol-level codeword modulation: the tag flips (or not) the phase of
// whole WiFi OFDM symbols; one payload bit is differential over two
// consecutive symbols, giving 1 bit / 8 us = 125 kbps while a burst is in
// the air. The UE demodulates by integrating r*conj(x) over each symbol
// and comparing consecutive symbols' phases.
//
// The paper's enhanced detector (a USRP X300 triggering the tag) is
// modelled as perfect burst-boundary knowledge gated by the bursty
// traffic model — i.e. this baseline is, as in the paper, *better* than a
// deployable FreeRider, and LScatter still dominates it.

#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "baselines/wifi_phy_lite.hpp"
#include "core/metrics.hpp"
#include "dsp/rng.hpp"

namespace lscatter::baselines {

struct WifiBackscatterConfig {
  WifiPhyConfig phy;
  channel::PathLossModel pathloss;
  channel::LinkBudget budget;
  double enb_tag_ft = 3.0;  // WiFi sender -> tag ("enb" naming for symmetry)
  double tag_ue_ft = 3.0;
  dsp::Db rician_k_db{8.0};
  bool los = true;
  /// Fraction of detected bursts the tag can actually ride (trigger
  /// latency, partial bursts).
  double burst_utilization = 0.95;
  std::uint64_t seed = 7;
};

class WifiBackscatterLink {
 public:
  explicit WifiBackscatterLink(const WifiBackscatterConfig& config);

  /// Symbol-level instantaneous bit rate while a burst is on the air.
  double instantaneous_rate_bps() const;

  /// Simulate `n_bits` differential bits over one channel drop; returns
  /// BER-oriented metrics (elapsed_s covers only on-air time).
  core::LinkMetrics run_burst(std::size_t n_bits);

  /// Expected throughput [bit/s] at traffic occupancy `occupancy`,
  /// using the measured BER of a fresh drop: occupancy * utilization *
  /// inst_rate * (1 - 2*BER), floored at 0 (chance-corrected, same
  /// convention as LinkMetrics).
  double hourly_throughput_bps(double occupancy, std::size_t probe_bits);

  dsp::Db backscatter_snr_db() const;

 private:
  WifiBackscatterConfig config_;
  WifiPhy phy_;
  dsp::Rng rng_;
};

}  // namespace lscatter::baselines
