#include "baselines/day_study.hpp"

#include "baselines/wifi_backscatter.hpp"
#include "core/link_simulator.hpp"
#include "traffic/occupancy_model.hpp"

namespace lscatter::baselines {

namespace {

// The WiFi-backscatter testbed shares the site with the LScatter one:
// 2.437 GHz carrier, same geometry, similar antennas. Path-loss exponents
// are the site's.
WifiBackscatterConfig wifi_config_for(const core::LinkConfig& base,
                                                 std::uint64_t seed) {
  WifiBackscatterConfig cfg;
  cfg.pathloss = base.env.pathloss;
  cfg.budget = base.env.budget;
  cfg.enb_tag_ft = base.geometry.enb_tag_ft;
  cfg.tag_ue_ft = base.geometry.tag_ue_ft;
  cfg.rician_k_db = base.env.fading.rician_k_db;
  cfg.los = base.env.fading.los;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

std::vector<HourResult> run_day_study(const DayStudyConfig& config) {
  dsp::Rng rng(config.seed, 0xDA15DA15ULL);

  const traffic::Site site = core::scene_site(config.scene);
  const traffic::OccupancyModel wifi_occ(traffic::Technology::kWifi, site);
  const traffic::OccupancyModel lte_occ(traffic::Technology::kLte, site);
  const traffic::OccupancyModel lora_occ(traffic::Technology::kLora, site);

  std::vector<HourResult> out;
  for (std::size_t hour = config.hour_begin; hour < config.hour_end;
       ++hour) {
    HourResult hr;
    hr.hour = hour;
    hr.wifi_occupancy_mean = wifi_occ.mean_occupancy(hour);
    hr.lte_occupancy_mean = lte_occ.mean_occupancy(hour);
    hr.lora_occupancy_mean = lora_occ.mean_occupancy(hour);

    std::vector<double> wifi_bps;
    std::vector<double> ls_bps;
    for (std::size_t s = 0; s < config.samples_per_hour; ++s) {
      const std::uint64_t sample_seed = rng.next_u64();

      // LScatter: LTE is always there; throughput varies only with the
      // channel drop.
      core::ScenarioOptions opt;
      opt.seed = sample_seed;
      core::LinkConfig link = core::make_scenario(config.scene, opt);
      core::LinkSimulator sim(link);
      ls_bps.push_back(
          sim.run(config.lscatter_subframes_per_sample).throughput_bps());

      // WiFi backscatter: gated by this hour's sampled occupancy.
      const double occ = wifi_occ.sample_occupancy(hour, rng);
      WifiBackscatterLink wifi(
          wifi_config_for(link, sample_seed ^ 0xF00D));
      wifi_bps.push_back(
          wifi.hourly_throughput_bps(occ, config.wifi_probe_bits));

      if (config.snapshot != nullptr) {
        const double sim_time_s =
            (static_cast<double>(hour) +
             static_cast<double>(s) /
                 static_cast<double>(config.samples_per_hour)) *
            3600.0;
        config.snapshot->tick(sim_time_s);
      }
    }
    hr.wifi_backscatter_bps = dsp::box_stats(wifi_bps);
    hr.lscatter_bps = dsp::box_stats(ls_bps);
    out.push_back(hr);
  }
  return out;
}

namespace {
double mean_of(const std::vector<HourResult>& results,
               double (*pick)(const HourResult&)) {
  if (results.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : results) s += pick(r);
  return s / static_cast<double>(results.size());
}
}  // namespace

double mean_of_medians_wifi(const std::vector<HourResult>& results) {
  return mean_of(results, [](const HourResult& r) {
    return r.wifi_backscatter_bps.median;
  });
}

double mean_of_medians_lscatter(const std::vector<HourResult>& results) {
  return mean_of(results,
                 [](const HourResult& r) { return r.lscatter_bps.median; });
}

}  // namespace lscatter::baselines
