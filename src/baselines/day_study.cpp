#include "baselines/day_study.hpp"

#include "baselines/wifi_backscatter.hpp"
#include "core/link_simulator.hpp"
#include "core/sim_pool.hpp"
#include "traffic/occupancy_model.hpp"

namespace lscatter::baselines {

namespace {

// The WiFi-backscatter testbed shares the site with the LScatter one:
// 2.437 GHz carrier, same geometry, similar antennas. Path-loss exponents
// are the site's.
WifiBackscatterConfig wifi_config_for(const core::LinkConfig& base,
                                                 std::uint64_t seed) {
  WifiBackscatterConfig cfg;
  cfg.pathloss = base.env.pathloss;
  cfg.budget = base.env.budget;
  cfg.enb_tag_ft = base.geometry.enb_tag_ft;
  cfg.tag_ue_ft = base.geometry.tag_ue_ft;
  cfg.rician_k_db = base.env.fading.rician_k_db;
  cfg.los = base.env.fading.los;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

std::vector<HourResult> run_day_study(const DayStudyConfig& config) {
  dsp::Rng rng(config.seed, 0xDA15DA15ULL);

  const traffic::Site site = core::scene_site(config.scene);
  const traffic::OccupancyModel wifi_occ(traffic::Technology::kWifi, site);
  const traffic::OccupancyModel lte_occ(traffic::Technology::kLte, site);
  const traffic::OccupancyModel lora_occ(traffic::Technology::kLora, site);

  std::vector<HourResult> out;
  for (std::size_t hour = config.hour_begin; hour < config.hour_end;
       ++hour) {
    HourResult hr;
    hr.hour = hour;
    hr.wifi_occupancy_mean = wifi_occ.mean_occupancy(hour);
    hr.lte_occupancy_mean = lte_occ.mean_occupancy(hour);
    hr.lora_occupancy_mean = lora_occ.mean_occupancy(hour);

    // Draw this hour's per-sample randomness up front, in the exact
    // interleaved order the serial loop used (sample seed, then that
    // sample's wifi occupancy), so the rng stream — and every number
    // below — is unchanged by the pooled execution.
    struct SampleDraw {
      std::uint64_t seed = 0;
      double wifi_occupancy = 0.0;
    };
    std::vector<SampleDraw> draws(config.samples_per_hour);
    for (SampleDraw& d : draws) {
      d.seed = rng.next_u64();
      d.wifi_occupancy = wifi_occ.sample_occupancy(hour, rng);
    }

    // LScatter: LTE is always there; throughput varies only with the
    // channel drop. Samples fan out across the drop pool (each is an
    // independent LinkSimulator run); delivery is in sample order, so
    // the box stats and snapshot ticks see the serial sequence.
    std::vector<double> ls_bps;
    ls_bps.reserve(config.samples_per_hour);
    core::for_each_drop(
        config.samples_per_hour, config.lscatter_subframes_per_sample,
        core::PoolOptions{},
        [&config, &draws](std::size_t s) {
          core::ScenarioOptions opt;
          opt.seed = draws[s].seed;
          return core::make_scenario(config.scene, opt);
        },
        [&config, &ls_bps, hour](const core::DropOutcome& outcome) {
          ls_bps.push_back(outcome.metrics.throughput_bps());
          if (config.snapshot != nullptr) {
            const double sim_time_s =
                (static_cast<double>(hour) +
                 static_cast<double>(outcome.drop_index) /
                     static_cast<double>(config.samples_per_hour)) *
                3600.0;
            config.snapshot->tick(sim_time_s);
          }
        });

    // WiFi backscatter: gated by each sample's drawn occupancy. Pure in
    // (seed, occupancy), so it runs after the pool without changing any
    // value.
    std::vector<double> wifi_bps;
    wifi_bps.reserve(config.samples_per_hour);
    for (std::size_t s = 0; s < config.samples_per_hour; ++s) {
      core::ScenarioOptions opt;
      opt.seed = draws[s].seed;
      const core::LinkConfig link = core::make_scenario(config.scene, opt);
      WifiBackscatterLink wifi(wifi_config_for(link, draws[s].seed ^ 0xF00D));
      wifi_bps.push_back(wifi.hourly_throughput_bps(
          draws[s].wifi_occupancy, config.wifi_probe_bits));
    }
    hr.wifi_backscatter_bps = dsp::box_stats(wifi_bps);
    hr.lscatter_bps = dsp::box_stats(ls_bps);
    out.push_back(hr);
  }
  return out;
}

namespace {
double mean_of(const std::vector<HourResult>& results,
               double (*pick)(const HourResult&)) {
  if (results.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : results) s += pick(r);
  return s / static_cast<double>(results.size());
}
}  // namespace

double mean_of_medians_wifi(const std::vector<HourResult>& results) {
  return mean_of(results, [](const HourResult& r) {
    return r.wifi_backscatter_bps.median;
  });
}

double mean_of_medians_lscatter(const std::vector<HourResult>& results) {
  return mean_of(results,
                 [](const HourResult& r) { return r.lscatter_bps.median; });
}

}  // namespace lscatter::baselines
