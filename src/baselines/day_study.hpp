#pragma once
// Shared harness for the paper's hour-of-day studies (Figs. 16/17 smart
// home, 21/22 mall, 26/27 outdoor): for every hour, draw several
// measurement runs of the LScatter link and of the WiFi-backscatter
// baseline under that hour's ambient-traffic occupancy, and summarize
// them as the paper's box plots.

#include <vector>

#include "core/scenario.hpp"
#include "dsp/stats.hpp"
#include "obs/snapshot.hpp"

namespace lscatter::baselines {

struct DayStudyConfig {
  core::Scene scene = core::Scene::kSmartHome;
  std::size_t hour_begin = 0;   // inclusive
  std::size_t hour_end = 24;    // exclusive (mall study: 10..22)
  std::size_t samples_per_hour = 10;
  std::size_t lscatter_subframes_per_sample = 10;
  std::size_t wifi_probe_bits = 1500;
  std::uint64_t seed = 1234;

  /// When set, ticked once per measurement sample with the simulated
  /// time of day in seconds (hour*3600 + intra-hour offset), so the
  /// day benches emit metric-over-simulated-time series (DESIGN.md §11)
  /// instead of only terminal aggregates. Not owned. Ticks fire at
  /// in-order sample delivery from the drop pool; the throughput stats
  /// are bit-identical at any thread count, but with >1 pool worker a
  /// tick can observe live metrics from samples executing ahead, so the
  /// sampled series is exact only at LSCATTER_THREADS=1.
  obs::SnapshotSeries* snapshot = nullptr;
};

struct HourResult {
  std::size_t hour = 0;
  dsp::BoxStats wifi_backscatter_bps;
  dsp::BoxStats lscatter_bps;
  double wifi_occupancy_mean = 0.0;
  double lte_occupancy_mean = 1.0;
  double lora_occupancy_mean = 0.0;
};

std::vector<HourResult> run_day_study(const DayStudyConfig& config);

/// Mean across hours of the box-plot medians (the paper's "average
/// throughput" figures: 13.63 Mbps / 37 kbps home, 16.9 kbps outdoor).
double mean_of_medians_wifi(const std::vector<HourResult>& results);
double mean_of_medians_lscatter(const std::vector<HourResult>& results);

}  // namespace lscatter::baselines
