#include "baselines/lora_backscatter.hpp"

#include <cmath>

#include "channel/awgn.hpp"
#include "dsp/db.hpp"

namespace lscatter::baselines {

using dsp::cf32;
using dsp::cvec;

LoraBackscatterLink::LoraBackscatterLink(const LoraBackscatterConfig& config)
    : config_(config), phy_(config.phy), rng_(config.seed, 0x10ca10caULL) {}

double LoraBackscatterLink::instantaneous_rate_bps() const {
  return 1.0 / config_.phy.symbol_duration_s();
}

core::LinkMetrics LoraBackscatterLink::run_burst(std::size_t n_bits) {
  dsp::Rng drop_rng = rng_.fork();
  dsp::Rng noise_rng = rng_.fork();
  const dsp::Hz f{config_.phy.carrier_hz};

  const dsp::Db pl1 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.enb_tag_ft), f, drop_rng);
  const dsp::Db pl2 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.tag_ue_ft), f, drop_rng);
  const dsp::Dbm rx_dbm = config_.budget.backscatter_rx_dbm(pl1, pl2);
  const double noise_mw = dsp::to_mw(channel::noise_floor_dbm(
      dsp::Hz{config_.phy.bandwidth_hz}, config_.budget.noise_figure_db));
  const float amp = static_cast<float>(channel::amplitude(rx_dbm));

  const auto bits = rng_.bits(n_bits);
  const std::size_t n = config_.phy.chips_per_symbol();

  core::LinkMetrics m;
  m.bits_sent = n_bits;
  m.packets_sent = 1;
  m.packets_detected = 1;
  m.elapsed_s =
      static_cast<double>(n_bits) * config_.phy.symbol_duration_s();

  // OOK per chirp: bit 1 -> reflected chirp present, bit 0 -> absent.
  // Detection: dechirp-FFT peak vs. energy threshold.
  cvec rx(n);
  const cvec chirp = phy_.modulate_symbol(0);
  double peak_ref = 0.0;
  {
    // Noise-free reference peak for the threshold.
    for (std::size_t k = 0; k < n; ++k) rx[k] = amp * chirp[k];
    cvec d(n);
    for (std::size_t k = 0; k < n; ++k) d[k] = rx[k] * std::conj(chirp[k]);
    peak_ref = std::abs(dsp::sum(d));
  }
  const double threshold = 0.5 * peak_ref;

  for (std::size_t i = 0; i < n_bits; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      rx[k] = bits[i] ? amp * chirp[k] : cf32{};
      rx[k] += noise_rng.complex_normal(noise_mw);
    }
    cvec d(n);
    for (std::size_t k = 0; k < n; ++k) d[k] = rx[k] * std::conj(chirp[k]);
    const double peak = std::abs(dsp::sum(d));
    const std::uint8_t decided = peak > threshold ? 1 : 0;
    if (decided != bits[i]) ++m.bit_errors;
  }
  const std::size_t correct = n_bits - m.bit_errors;
  m.bits_delivered = correct > m.bit_errors ? correct - m.bit_errors : 0;
  if (m.bit_errors == 0) {
    m.packets_ok = 1;
    m.bits_crc_ok = n_bits;
  }
  return m;
}

double LoraBackscatterLink::hourly_throughput_bps(double occupancy,
                                                  std::size_t probe_bits) {
  const core::LinkMetrics m = run_burst(probe_bits);
  const double eff = std::max(0.0, 1.0 - 2.0 * m.ber());
  return occupancy * instantaneous_rate_bps() * eff;
}

}  // namespace lscatter::baselines
