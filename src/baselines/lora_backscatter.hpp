#pragma once
// PLoRa-style ambient LoRa backscatter baseline.
//
// The tag ON/OFF-keys whole LoRa chirp symbols onto an adjacent channel
// (1 bit per chirp symbol ~ SF8/125 kHz -> ~488 bit/s instantaneous). The
// decisive factor in the paper's evaluation is not this PHY but the ~0.02
// ambient LoRa occupancy: there is essentially never a carrier to ride,
// so measured throughput is 0 in every site (§4.2 end).

#include "baselines/lora_phy_lite.hpp"
#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "core/metrics.hpp"

namespace lscatter::baselines {

struct LoraBackscatterConfig {
  LoraPhyConfig phy;
  channel::PathLossModel pathloss;
  channel::LinkBudget budget;
  double enb_tag_ft = 3.0;
  double tag_ue_ft = 3.0;
  std::uint64_t seed = 23;
};

class LoraBackscatterLink {
 public:
  explicit LoraBackscatterLink(const LoraBackscatterConfig& config);

  /// 1 bit per chirp symbol while a LoRa frame is on the air.
  double instantaneous_rate_bps() const;

  /// OOK-per-chirp burst simulation (one drop).
  core::LinkMetrics run_burst(std::size_t n_bits);

  /// occupancy * inst_rate * (1 - 2 BER): with ~2% LoRa occupancy this is
  /// single-digit bit/s, i.e. "always 0" at the paper's plot scales.
  double hourly_throughput_bps(double occupancy, std::size_t probe_bits);

 private:
  LoraBackscatterConfig config_;
  LoraPhy phy_;
  dsp::Rng rng_;
};

}  // namespace lscatter::baselines
