#pragma once
// Generalization of LScatter's basic-timing-unit modulation to WiFi OFDM
// (paper §6: "these techniques can be applied to any other OFDM signal
// based protocols"). The 802.11a/g symbol has K = 64 units of 50 ns at
// 20 Msps; the tag centers 52 modulated units in the useful window
// (matching the 52 used subcarriers), fills the rest with '1', and the
// receiver runs the same conjugate-product demodulation.
//
// Instantaneous rate: 52 bits / 4 us = 13 Mbps — comparable to LScatter
// at 20 MHz — but the *average* rate is gated by the bursty WiFi
// occupancy, which is precisely why the paper builds on LTE instead.

#include "baselines/wifi_phy_lite.hpp"
#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "core/metrics.hpp"

namespace lscatter::baselines {

struct WifiUnitLevelConfig {
  WifiPhyConfig phy;
  channel::PathLossModel pathloss;
  channel::LinkBudget budget;
  double enb_tag_ft = 3.0;
  double tag_ue_ft = 3.0;
  dsp::Db rician_k_db{8.0};
  /// Residual tag/burst timing error in units (the WiFi "preamble
  /// detection + trigger" path of §4.1), searched by the receiver.
  std::ptrdiff_t timing_error_units = 2;
  std::uint64_t seed = 77;
};

class WifiUnitLevelLink {
 public:
  explicit WifiUnitLevelLink(const WifiUnitLevelConfig& config);

  /// 52 bits per 4 us symbol while a burst is on the air.
  double instantaneous_rate_bps() const;

  /// One burst of `n_symbols` OFDM symbols (first symbol = preamble).
  core::LinkMetrics run_burst(std::size_t n_symbols);

  /// occupancy-gated average throughput, like the symbol-level baseline.
  double hourly_throughput_bps(double occupancy, std::size_t probe_symbols);

 private:
  WifiUnitLevelConfig config_;
  WifiPhy phy_;
  dsp::Rng rng_;
  std::vector<std::uint8_t> preamble_;
};

}  // namespace lscatter::baselines
