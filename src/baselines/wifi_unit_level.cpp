#include "baselines/wifi_unit_level.hpp"

#include <cmath>

#include "channel/awgn.hpp"
#include "core/modulation_offset.hpp"
#include "core/phase_offset.hpp"
#include "dsp/db.hpp"
#include "lte/sequences.hpp"

namespace lscatter::baselines {

using dsp::cf32;
using dsp::cvec;

namespace {
constexpr std::size_t kUnitsPerSymbol = 52;  // = used subcarriers
constexpr std::size_t kStartUnit =
    (WifiPhyConfig::kFftSize - kUnitsPerSymbol) / 2;  // 6
}  // namespace

WifiUnitLevelLink::WifiUnitLevelLink(const WifiUnitLevelConfig& config)
    : config_(config),
      phy_(config.phy),
      rng_(config.seed, 0xF00F00ULL),
      preamble_(lte::gold_sequence(0x1CEB00D & 0x7FFFFFFF,
                                   kUnitsPerSymbol)) {}

double WifiUnitLevelLink::instantaneous_rate_bps() const {
  return static_cast<double>(kUnitsPerSymbol) /
         config_.phy.symbol_duration_s();
}

core::LinkMetrics WifiUnitLevelLink::run_burst(std::size_t n_symbols) {
  dsp::Rng drop_rng = rng_.fork();
  dsp::Rng noise_rng = rng_.fork();
  const dsp::Hz f{config_.phy.carrier_hz};

  const dsp::Db pl1 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.enb_tag_ft), f, drop_rng);
  const dsp::Db pl2 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.tag_ue_ft), f, drop_rng);
  const dsp::Dbm rx_dbm = config_.budget.backscatter_rx_dbm(pl1, pl2);
  const double noise_mw = dsp::to_mw(channel::noise_floor_dbm(
      dsp::Hz{16.6e6}, config_.budget.noise_figure_db));

  const double k = config_.rician_k_db.linear();
  const auto fade = [&]() -> cf32 {
    return cf32{static_cast<float>(std::sqrt(k / (k + 1.0))), 0.0f} +
           drop_rng.complex_normal(1.0 / (k + 1.0));
  };
  const cf32 gain = fade() * fade() *
                    static_cast<float>(channel::amplitude(rx_dbm));

  const cvec ambient = phy_.generate_burst(n_symbols, rng_);
  constexpr std::size_t kSps = WifiPhyConfig::samples_per_symbol();
  constexpr std::size_t kCp = WifiPhyConfig::kCpLen;

  // Tag pattern: preamble symbol then data symbols, units centered in
  // each useful window.
  const std::size_t n_data_bits = (n_symbols - 1) * kUnitsPerSymbol;
  const auto data_bits = rng_.bits(n_data_bits);
  std::vector<std::uint8_t> pattern(ambient.size(), 1);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    for (std::size_t u = 0; u < kUnitsPerSymbol; ++u) {
      const std::uint8_t bit =
          s == 0 ? preamble_[u]
                 : data_bits[(s - 1) * kUnitsPerSymbol + u];
      pattern[s * kSps + kCp + kStartUnit + u] = bit;
    }
  }

  // Scatter with the timing error, add noise.
  cvec rx(ambient.size());
  const auto err = config_.timing_error_units;
  for (std::size_t n = 0; n < rx.size(); ++n) {
    const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(n) - err;
    const bool one = (idx < 0 ||
                      idx >= static_cast<std::ptrdiff_t>(pattern.size()))
                         ? true
                         : pattern[static_cast<std::size_t>(idx)] != 0;
    rx[n] = gain * ambient[n] * (one ? 1.0f : -1.0f);
    rx[n] += noise_rng.complex_normal(noise_mw);
  }

  core::LinkMetrics m;
  m.bits_sent = n_data_bits;
  m.packets_sent = 1;
  m.elapsed_s =
      static_cast<double>(n_symbols) * config_.phy.symbol_duration_s();

  // Receiver: products on the preamble symbol, offset search, then
  // per-symbol slicing — the LScatter §3.3 pipeline on a 64-unit symbol.
  const auto products = [&](std::size_t s) {
    cvec z(WifiPhyConfig::kFftSize);
    for (std::size_t n = 0; n < z.size(); ++n) {
      const std::size_t i = s * kSps + kCp + n;
      z[n] = rx[i] * std::conj(ambient[i]);
    }
    return z;
  };

  core::OffsetSearch search;
  search.range_units = kStartUnit;  // +-6 units of slack
  const cvec z0 = products(0);
  const auto found =
      core::find_modulation_offset(z0, preamble_, kStartUnit, search);
  if (!found) {
    m.bit_errors = n_data_bits / 2;
    return m;
  }
  m.packets_detected = 1;

  for (std::size_t s = 1; s < n_symbols; ++s) {
    const cvec z = products(s);
    // Phase from the whole-symbol sum is biased by the data; use the
    // preamble gain (short bursts, static channel).
    const cf32 g = found->gain;
    const cf32 unit = std::conj(g) / std::abs(g);
    for (std::size_t u = 0; u < kUnitsPerSymbol; ++u) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(kStartUnit) +
                                 found->offset_units +
                                 static_cast<std::ptrdiff_t>(u);
      cf32 v{};
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(z.size())) {
        v = z[static_cast<std::size_t>(idx)] * unit;
      }
      const std::uint8_t decided = v.real() >= 0.0f ? 1 : 0;
      if (decided != data_bits[(s - 1) * kUnitsPerSymbol + u]) {
        ++m.bit_errors;
      }
    }
  }
  const std::size_t correct = m.bits_sent - m.bit_errors;
  m.bits_delivered = correct > m.bit_errors ? correct - m.bit_errors : 0;
  if (m.bit_errors == 0) {
    m.packets_ok = 1;
    m.bits_crc_ok = m.bits_sent;
  }
  return m;
}

double WifiUnitLevelLink::hourly_throughput_bps(double occupancy,
                                                std::size_t probe_symbols) {
  const core::LinkMetrics m = run_burst(probe_symbols);
  const double eff = std::max(0.0, 1.0 - 2.0 * m.ber());
  return occupancy * instantaneous_rate_bps() * eff;
}

}  // namespace lscatter::baselines
