#pragma once
// The Table 1 taxonomy: which published backscatter systems use an
// excitation signal that is ambient / continuous / ubiquitous. Reproduced
// as data so the bench binary regenerates the table.

#include <array>
#include <string_view>

namespace lscatter::baselines {

struct BackscatterSystem {
  std::string_view name;
  std::string_view carrier;  // what it backscatters
  bool ambient;
  bool continuous;
  bool ubiquitous;
};

/// The 16 rows of Table 1, in paper order.
const std::array<BackscatterSystem, 16>& table1_systems();

}  // namespace lscatter::baselines
