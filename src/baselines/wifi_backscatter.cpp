#include "baselines/wifi_backscatter.hpp"

#include <cmath>

#include "channel/awgn.hpp"
#include "dsp/db.hpp"

namespace lscatter::baselines {

using dsp::cf32;
using dsp::cvec;

WifiBackscatterLink::WifiBackscatterLink(const WifiBackscatterConfig& config)
    : config_(config), phy_(config.phy), rng_(config.seed, 0x77a1b2c3ULL) {}

double WifiBackscatterLink::instantaneous_rate_bps() const {
  // 1 bit per 2 OFDM symbols (FreeRider codeword scheme).
  return 1.0 / (2.0 * config_.phy.symbol_duration_s());
}

dsp::Db WifiBackscatterLink::backscatter_snr_db() const {
  const dsp::Hz f{config_.phy.carrier_hz};
  const dsp::Db pl1 = config_.pathloss.median_db(
      dsp::feet_to_meters(config_.enb_tag_ft), f);
  const dsp::Db pl2 = config_.pathloss.median_db(
      dsp::feet_to_meters(config_.tag_ue_ft), f);
  return config_.budget.backscatter_snr_db(pl1, pl2, dsp::Hz{16.6e6});
}

core::LinkMetrics WifiBackscatterLink::run_burst(std::size_t n_bits) {
  dsp::Rng drop_rng = rng_.fork();
  dsp::Rng noise_rng = rng_.fork();
  const dsp::Hz f{config_.phy.carrier_hz};

  const dsp::Db pl1 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.enb_tag_ft), f, drop_rng);
  const dsp::Db pl2 = config_.pathloss.sample_db(
      dsp::feet_to_meters(config_.tag_ue_ft), f, drop_rng);
  const dsp::Dbm rx_dbm = config_.budget.backscatter_rx_dbm(pl1, pl2);
  const double noise_mw = dsp::to_mw(channel::noise_floor_dbm(
      dsp::Hz{16.6e6}, config_.budget.noise_figure_db));

  const auto draw_fade = [&]() -> cf32 {
    if (!config_.los) return drop_rng.complex_normal(1.0);
    const double k = config_.rician_k_db.linear();
    return cf32{static_cast<float>(std::sqrt(k / (k + 1.0))), 0.0f} +
           drop_rng.complex_normal(1.0 / (k + 1.0));
  };
  const cf32 gain = draw_fade() * draw_fade() *
                    static_cast<float>(channel::amplitude(rx_dbm));

  const std::size_t n_symbols = 2 * n_bits;
  const cvec ambient = phy_.generate_burst(n_symbols, rng_);
  const std::size_t sps = WifiPhyConfig::samples_per_symbol();

  // Tag: differential symbol-level flips. sign_0 = +1; bit b makes
  // sign_{2i+1} = sign_{2i} (b=1) or -sign_{2i} (b=0).
  const auto bits = rng_.bits(n_bits);
  std::vector<float> sign(n_symbols, 1.0f);
  for (std::size_t i = 0; i < n_bits; ++i) {
    sign[2 * i + 1] = bits[i] ? sign[2 * i] : -sign[2 * i];
  }

  cvec rx(ambient.size());
  for (std::size_t s = 0; s < n_symbols; ++s) {
    for (std::size_t n = 0; n < sps; ++n) {
      rx[s * sps + n] = gain * sign[s] * ambient[s * sps + n];
    }
  }
  channel::add_awgn(rx, noise_mw, noise_rng);

  // UE: per-symbol coherent integration, then differential decisions.
  std::vector<cf32> g_hat(n_symbols);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    dsp::cf64 acc{};
    for (std::size_t n = WifiPhyConfig::kCpLen; n < sps; ++n) {
      const cf32 r = rx[s * sps + n];
      const cf32 x = ambient[s * sps + n];
      acc += dsp::cf64{r.real(), r.imag()} * dsp::cf64{x.real(), -x.imag()};
    }
    g_hat[s] = cf32{static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag())};
  }

  core::LinkMetrics m;
  m.bits_sent = n_bits;
  m.packets_sent = 1;
  m.packets_detected = 1;
  m.elapsed_s = static_cast<double>(n_symbols) *
                config_.phy.symbol_duration_s();
  for (std::size_t i = 0; i < n_bits; ++i) {
    const cf32 d = g_hat[2 * i + 1] * std::conj(g_hat[2 * i]);
    const std::uint8_t decided = d.real() >= 0.0f ? 1 : 0;
    if (decided != bits[i]) ++m.bit_errors;
  }
  const std::size_t correct = n_bits - m.bit_errors;
  m.bits_delivered = correct > m.bit_errors ? correct - m.bit_errors : 0;
  if (m.bit_errors == 0) {
    m.packets_ok = 1;
    m.bits_crc_ok = n_bits;
  }
  return m;
}

double WifiBackscatterLink::hourly_throughput_bps(double occupancy,
                                                  std::size_t probe_bits) {
  const core::LinkMetrics m = run_burst(probe_bits);
  // FreeRider's codeword scheme needs the commodity WiFi receiver to still
  // decode the hybrid packet; a drop whose backscatter BER is high loses
  // whole packets, not just bits.
  const double eff = m.ber() < 0.05
                         ? std::max(0.0, 1.0 - 2.0 * m.ber())
                         : 0.0;
  return occupancy * config_.burst_utilization * instantaneous_rate_bps() *
         eff;
}

}  // namespace lscatter::baselines
