// lscatter-lint: project-specific static checks that clang-tidy cannot
// express (DESIGN.md §8). Runs from scripts/check.sh and CI; exits
// non-zero if any rule fires. Rules:
//
//   units      a `double`/`float` parameter or member whose name carries a
//              unit suffix (_db, _dbm, _hz) in src/ must use the strong
//              type from dsp/units.hpp — or carry an inline waiver.
//   rng        no rand()/srand()/std::mt19937/std::random_device outside
//              src/dsp/rng.*: every random draw must flow through the
//              seeded PCG32 so runs stay reproducible.
//   float-dsp  no single-precision libm calls (sqrtf, cosf, ...) in src/:
//              accumulate in double, cast to float at the boundary.
//   include    headers start with #pragma once; no <bits/...> includes;
//              a .cpp's first include is its own header.
//   into       a cvec-returning function in a src/dsp or src/lte header
//              must have an allocation-free `<name>_into` counterpart
//              (DESIGN.md §10) — hot-path callers need a way to reuse
//              buffers. One-shot helpers carry an inline waiver.
//   obs-loop   no registry name lookups (`Registry::instance().counter(…)`
//              et al.) inside loop bodies in src/: each lookup takes the
//              registry mutex plus a map walk, so loops must hit a
//              cached handle (function-local static, obs.hpp macro) or a
//              pre-resolved family cell (obs/family.hpp) instead.
//   raw-mutex  no raw std synchronization primitives (std::mutex,
//              std::shared_mutex, std::lock_guard, ...) in src/ outside
//              core/thread_safety.hpp: every lock must go through the
//              annotated lscatter:: wrappers so it participates in both
//              the clang thread-safety analysis and the runtime
//              lock-order validator (DESIGN.md §13).
//   guarded-mutex  a lscatter::Mutex / SharedMutex member or field needs
//              at least one sibling LSCATTER_GUARDED_BY(<name>) in the
//              same file — a mutex protecting nothing the analysis can
//              see is usually an annotation gap, not a design choice.
//
// A finding can be waived on its line with: // lint-ok: <rule>
//
// Usage: lscatter-lint <repo-root>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void report(const fs::path& file, std::size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file.string(), line, rule, message});
}

bool waived(const std::string& line, const std::string& rule) {
  const auto pos = line.find("// lint-ok:");
  if (pos == std::string::npos) return false;
  return line.find(rule, pos) != std::string::npos;
}

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string l;
  while (std::getline(in, l)) lines.push_back(l);
  return lines;
}

// Strip // comments and string literals so rules don't fire on prose.
std::string code_only(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
        continue;
      }
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    out += c;
  }
  return out;
}

bool is_under(const fs::path& p, const std::string& dir) {
  for (const auto& part : p) {
    if (part == dir) return true;
  }
  return false;
}

// --- rule: units ---------------------------------------------------------
// `double foo_db`, `float bar_hz`, ... in src/ headers and sources. The
// regex keys on the declaration shape so locals named e.g. `snr_db` that
// hold a plain double still get flagged — that is the point: the value
// should be a dsp::Db all the way through.
const std::regex kRawUnitDecl(
    R"((?:\b(?:double|float)\s+)([A-Za-z_][A-Za-z0-9_]*_(?:db|dbm|hz))\b(?!\s*\())");

void check_units(const fs::path& file,
                 const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (waived(lines[i], "units")) continue;
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (std::regex_search(code, m, kRawUnitDecl)) {
      report(file, i + 1, "units",
             "'" + m[1].str() +
                 "' carries a unit suffix but is a raw double/float; use "
                 "dsp::Db / dsp::Dbm / dsp::Hz (dsp/units.hpp)");
    }
  }
}

// --- rule: rng -----------------------------------------------------------
const std::regex kBannedRng(
    R"(\b(?:std::)?(rand|srand)\s*\(|\bstd::(mt19937(?:_64)?|minstd_rand0?|random_device)\b)");

void check_rng(const fs::path& file, const std::vector<std::string>& lines) {
  if (file.filename().string().rfind("rng", 0) == 0 &&
      is_under(file, "dsp")) {
    return;  // dsp/rng.* is the one place randomness may originate
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (waived(lines[i], "rng")) continue;
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (std::regex_search(code, m, kBannedRng)) {
      report(file, i + 1, "rng",
             "unseeded/global RNG; draw through dsp::Rng (PCG32) so runs "
             "stay reproducible");
    }
  }
}

// --- rule: float-dsp -----------------------------------------------------
const std::regex kSinglePrecLibm(
    R"(\b(sqrtf|cosf|sinf|tanf|powf|expf|logf|log10f|log2f|atan2f|fabsf|floorf|ceilf|roundf|hypotf|fmodf)\s*\()");

void check_float_dsp(const fs::path& file,
                     const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (waived(lines[i], "float-dsp")) continue;
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (std::regex_search(code, m, kSinglePrecLibm)) {
      report(file, i + 1, "float-dsp",
             "single-precision libm call '" + m[1].str() +
                 "'; compute in double and cast at the boundary");
    }
  }
}

// --- rule: include -------------------------------------------------------
void check_includes(const fs::path& file,
                    const std::vector<std::string>& lines,
                    const fs::path& rel) {
  const bool is_header = file.extension() == ".hpp";
  bool pragma_seen = false;
  std::string first_include;
  std::size_t first_include_line = 0;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (waived(l, "include")) continue;
    if (l.rfind("#pragma once", 0) == 0) pragma_seen = true;
    if (l.rfind("#include", 0) == 0) {
      if (l.find("<bits/") != std::string::npos) {
        report(file, i + 1, "include",
               "never include <bits/...> internals");
      }
      if (first_include.empty()) {
        first_include = l;
        first_include_line = i + 1;
      }
    }
  }

  if (is_header && !pragma_seen) {
    report(file, 1, "include", "header is missing #pragma once");
  }

  // Self-include-first for src/ implementation files: "a/b.cpp" must
  // include "a/b.hpp" before anything else (when that header exists).
  if (!is_header && !first_include.empty()) {
    fs::path hdr = rel;
    hdr.replace_extension(".hpp");
    const std::string expect = "#include \"" + hdr.generic_string() + "\"";
    if (fs::exists(file.parent_path() /
                   hdr.filename()) &&  // header exists beside the .cpp
        first_include.rfind(expect, 0) != 0) {
      report(file, first_include_line, "include",
             "first include must be the file's own header (" +
                 hdr.generic_string() + ")");
    }
  }
}

// --- rule: into ----------------------------------------------------------
// `cvec foo(...)` declared in a src/dsp or src/lte header needs a
// `foo_into` (or `foo_inplace`) counterpart somewhere in the same header
// so hot loops can avoid the per-call allocation. Scoped to declarations,
// not member-initializer lists: the regex keys on the return-type shape.
const std::regex kCvecReturningFn(
    R"(^\s*(?:(?:virtual|static|inline|constexpr|\[\[nodiscard\]\])\s+)*(?:dsp::)?cvec\s+([A-Za-z_][A-Za-z0-9_]*)\s*\()");

void check_into(const fs::path& file,
                const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Declarations often wrap; accept the waiver on the line itself or on
    // a comment line directly above it.
    if (waived(lines[i], "into") ||
        (i > 0 && waived(lines[i - 1], "into"))) {
      continue;
    }
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (!std::regex_search(code, m, kCvecReturningFn)) continue;
    const std::string name = m[1].str();
    if (name.size() >= 5 && name.rfind("_into") == name.size() - 5) {
      continue;  // already the _into variant itself
    }
    const std::string into = name + "_into";
    const std::string inplace = name + "_inplace";
    bool has_counterpart = false;
    for (const std::string& l : lines) {
      if (l.find(into) != std::string::npos ||
          l.find(inplace) != std::string::npos) {
        has_counterpart = true;
        break;
      }
    }
    if (!has_counterpart) {
      report(file, i + 1, "into",
             "'" + name +
                 "' returns cvec with no '" + into +
                 "' counterpart; add one for buffer reuse (DESIGN.md §10) "
                 "or waive with // lint-ok: into");
    }
  }
}

// --- rule: obs-loop ------------------------------------------------------
// A registry name lookup costs the registry mutex plus a map walk; in a
// loop body that lands per iteration and (worse) serializes concurrent
// workers on the registry lock. The obs.hpp macros and function-local
// `static Metric& m = Registry::instance()...` initializers resolve the
// name exactly once, so any line carrying `static` (or continuing a
// `static` initializer from the previous line) is exempt.
const std::regex kRegistryLookup(
    R"((?:Registry::instance\s*\(\s*\)|\bregistry\s*\(\s*\))\s*\.\s*(counter|gauge|histogram|sharded_counter)\s*\()");
const std::regex kLoopKeyword(R"(\b(?:for|while|do)\b)");

void check_obs_loop(const fs::path& file,
                    const std::vector<std::string>& lines) {
  int depth = 0;
  int parens = 0;
  bool pending_loop = false;       // saw a loop keyword, body not yet open
  std::vector<int> loop_depths;    // brace depths that are loop bodies
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string code = code_only(lines[i]);
    const bool exempt =
        waived(lines[i], "obs-loop") ||
        code.find("static") != std::string::npos ||
        (i > 0 &&
         code_only(lines[i - 1]).find("static") != std::string::npos);
    if (!loop_depths.empty() && !exempt) {
      std::smatch m;
      if (std::regex_search(code, m, kRegistryLookup)) {
        report(file, i + 1, "obs-loop",
               "registry ." + m[1].str() +
                   "() name lookup inside a loop body; resolve once "
                   "before the loop (cached static handle or family "
                   "cell) or waive with // lint-ok: obs-loop");
      }
    }
    if (std::regex_search(code, kLoopKeyword)) pending_loop = true;
    for (const char c : code) {
      if (c == '{') {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
      } else if (c == '}') {
        if (!loop_depths.empty() && loop_depths.back() == depth) {
          loop_depths.pop_back();
        }
        --depth;
      } else if (c == '(') {
        ++parens;
      } else if (c == ')') {
        if (parens > 0) --parens;
      } else if (c == ';' && parens == 0) {
        pending_loop = false;  // brace-less loop body ended
      }
    }
  }
}

// --- rule: raw-mutex -----------------------------------------------------
// Every lock in src/ must be a core/thread_safety.hpp wrapper: raw std
// primitives are invisible to both the clang -Wthread-safety lane and the
// debug lock-order validator, so a deadlock they participate in is only
// found the hard way. thread_safety.hpp itself is the one legitimate home
// of the raw types (it wraps them).
const std::regex kRawSyncPrimitive(
    R"(\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable(?:_any)?)\b)");

void check_raw_mutex(const fs::path& file,
                     const std::vector<std::string>& lines) {
  if (file.filename() == "thread_safety.hpp") return;  // the wrapper home
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (waived(lines[i], "raw-mutex")) continue;
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (std::regex_search(code, m, kRawSyncPrimitive)) {
      report(file, i + 1, "raw-mutex",
             "raw std::" + m[1].str() +
                 "; use the annotated wrapper from core/thread_safety.hpp "
                 "(lscatter::Mutex / LockGuard / CondVar ...) so the "
                 "thread-safety analysis and the lock-order validator see "
                 "it, or waive with // lint-ok: raw-mutex");
    }
  }
}

// --- rule: guarded-mutex -------------------------------------------------
// A declared lscatter::Mutex / lscatter::SharedMutex should guard
// something: require at least one LSCATTER_GUARDED_BY(<that name>) in the
// same file. A mutex that serializes a code path rather than protecting
// data (e.g. an append-file critical section) is legitimate but rare
// enough to deserve an explicit waiver explaining itself.
const std::regex kWrapperMutexDecl(
    R"(\blscatter::(?:Shared)?Mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*[{;=])");

void check_guarded_mutex(const fs::path& file,
                         const std::vector<std::string>& lines) {
  if (file.filename() == "thread_safety.hpp") return;
  std::string all;
  for (const std::string& l : lines) {
    all += code_only(l);
    all += '\n';
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (waived(lines[i], "guarded-mutex")) continue;
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (!std::regex_search(code, m, kWrapperMutexDecl)) continue;
    const std::string guarded = "LSCATTER_GUARDED_BY(" + m[1].str() + ")";
    if (all.find(guarded) == std::string::npos) {
      report(file, i + 1, "guarded-mutex",
             "mutex '" + m[1].str() + "' has no sibling " + guarded +
                 " in this file; annotate the data it protects or waive "
                 "with // lint-ok: guarded-mutex (with a comment saying "
                 "what it serializes)");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: lscatter-lint <repo-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "lscatter-lint: %s is not a repo root\n", argv[1]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(src)) {
    if (!e.is_regular_file()) continue;
    const auto ext = e.path().extension();
    if (ext == ".cpp" || ext == ".hpp") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());

  for (const auto& f : files) {
    const auto lines = read_lines(f);
    const fs::path rel = fs::relative(f, src);
    check_units(f, lines);
    check_rng(f, lines);
    check_float_dsp(f, lines);
    check_includes(f, lines, rel);
    check_obs_loop(f, lines);
    check_raw_mutex(f, lines);
    check_guarded_mutex(f, lines);
    if (f.extension() == ".hpp" &&
        (is_under(f, "dsp") || is_under(f, "lte"))) {
      check_into(f, lines);
    }
  }

  // RNG discipline also matters in tests/ and bench/ (reproducibility),
  // but unit/float rules stay scoped to src/ where the types live.
  for (const auto& dir : {root / "tests", root / "bench"}) {
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> extra;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file() && e.path().extension() == ".cpp") {
        extra.push_back(e.path());
      }
    }
    std::sort(extra.begin(), extra.end());
    for (const auto& f : extra) check_rng(f, read_lines(f));
  }

  for (const auto& fnd : g_findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", fnd.file.c_str(), fnd.line,
                 fnd.rule.c_str(), fnd.message.c_str());
  }
  if (!g_findings.empty()) {
    std::fprintf(stderr, "lscatter-lint: %zu finding(s)\n",
                 g_findings.size());
    return 1;
  }
  std::printf("lscatter-lint: clean (%zu files)\n", files.size());
  return 0;
}
