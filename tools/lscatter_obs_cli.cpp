// lscatter-obs: command-line consumer of `lscatter.obs/1` run reports
// (the JSON every bench/example writes via LSCATTER_OBS_JSON).
//
//   lscatter-obs summarize <report.json>
//       Text table of counters, gauges, and histogram quantiles —
//       format_text_report, but for a file instead of the live registry.
//
//   lscatter-obs diff <base.json> <new.json> [--threshold PCT]
//                     [--tail-threshold PCT] [--schema-only] [--json]
//       Structural diff (obs/diff.hpp). Exit 0 = clean, 1 = metric-name
//       drift or quantile regression, 2 = usage/input error. --threshold
//       is the allowed relative p50 growth in percent (default 25);
//       --tail-threshold bounds p90/p99 (default 150 — tails of short
//       runs are log-bucket-quantized and noisy); --schema-only skips
//       quantile comparison entirely (the bench gate's smoke mode);
//       --json prints the machine-readable verdict.
//
//   lscatter-obs trace <report.json> -o <out.json>
//       Convert the report's span events to Chrome trace-event JSON for
//       ui.perfetto.dev / chrome://tracing (obs/trace_export.hpp).
//
// Works identically on reports from -DLSCATTER_OBS=OFF builds — those
// just have empty metric sections.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"

namespace {

using namespace lscatter;

int usage() {
  std::fprintf(
      stderr,
      "usage: lscatter-obs <command> ...\n"
      "  summarize <report.json>\n"
      "  diff <base.json> <new.json> [--threshold PCT]"
      " [--tail-threshold PCT] [--schema-only] [--json]\n"
      "  trace <report.json> -o <out.json>\n");
  return 2;
}

std::optional<obs::json::Value> load_report(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "lscatter-obs: cannot open %s\n", path);
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto parsed = obs::json::parse(text);
  if (!parsed) {
    std::fprintf(stderr, "lscatter-obs: %s is not valid JSON\n", path);
  }
  return parsed;
}

double field_or(const obs::json::Value& obj, const char* key,
                double fallback) {
  const obs::json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

void print_section_scalars(const obs::json::Value& report,
                           const char* section, const char* heading,
                           const char* fmt) {
  const obs::json::Value* s = report.find(section);
  if (s == nullptr || !s->is_object() || s->as_object().size() == 0) return;
  std::printf("-- %s --\n", heading);
  for (const auto& name : s->as_object().keys()) {
    const obs::json::Value* v = s->find(name);
    if (v == nullptr || !v->is_number()) continue;
    std::printf(fmt, name.c_str(), v->as_number());
  }
}

int cmd_summarize(int argc, char** argv) {
  if (argc != 1) return usage();
  const auto report = load_report(argv[0]);
  if (!report) return 2;

  const obs::json::Value* name = report->find("report");
  std::printf("== obs report: %s (%s) ==\n",
              name != nullptr && name->is_string()
                  ? name->as_string().c_str()
                  : "<unnamed>",
              argv[0]);
  print_section_scalars(*report, "counters", "counters", "%-44s %12.0f\n");
  print_section_scalars(*report, "gauges", "gauges", "%-44s %12.6g\n");

  const obs::json::Value* hists = report->find("histograms");
  if (hists != nullptr && hists->is_object() &&
      hists->as_object().size() > 0) {
    std::printf("-- histograms (count / mean / p50 / p90 / p99) --\n");
    for (const auto& hname : hists->as_object().keys()) {
      const obs::json::Value* h = hists->find(hname);
      if (h == nullptr || !h->is_object()) continue;
      std::printf("%-44s %9.0f %10.3e %10.3e %10.3e %10.3e\n",
                  hname.c_str(), field_or(*h, "count", 0.0),
                  field_or(*h, "mean", 0.0), field_or(*h, "p50", 0.0),
                  field_or(*h, "p90", 0.0), field_or(*h, "p99", 0.0));
    }
  }

  const obs::json::Value* spans = report->find("spans");
  if (spans != nullptr && spans->is_object()) {
    std::printf("-- spans --\ntotal %.0f, dropped %.0f, exported %zu\n",
                field_or(*spans, "total", 0.0),
                field_or(*spans, "dropped", 0.0),
                spans->find("events") != nullptr &&
                        spans->find("events")->is_array()
                    ? spans->find("events")->as_array().size()
                    : std::size_t{0});
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  const char* base_path = nullptr;
  const char* new_path = nullptr;
  obs::DiffOptions options;
  bool as_json = false;

  const auto parse_pct = [&](int& i, double& out) {
    if (i + 1 >= argc) return false;
    char* end = nullptr;
    const double pct = std::strtod(argv[++i], &end);
    if (end == argv[i] || *end != '\0' || pct < 0.0) {
      std::fprintf(stderr, "lscatter-obs: bad threshold %s\n", argv[i]);
      return false;
    }
    out = pct / 100.0;
    return true;
  };

  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (!parse_pct(i, options.regression_threshold)) return 2;
    } else if (std::strcmp(argv[i], "--tail-threshold") == 0) {
      if (!parse_pct(i, options.tail_regression_threshold)) return 2;
    } else if (std::strcmp(argv[i], "--schema-only") == 0) {
      options.compare_quantiles = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return usage();
    }
  }
  if (base_path == nullptr || new_path == nullptr) return usage();

  const auto base = load_report(base_path);
  const auto current = load_report(new_path);
  if (!base || !current) return 2;

  const obs::DiffResult result = obs::diff_reports(*base, *current, options);
  if (as_json) {
    std::printf("%s\n", result.to_json().dump(2).c_str());
  } else {
    std::printf("%s", result.format_text().c_str());
  }
  return result.ok() ? 0 : 1;
}

int cmd_trace(int argc, char** argv) {
  const char* in_path = nullptr;
  const char* out_path = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (in_path == nullptr) {
      in_path = argv[i];
    } else {
      return usage();
    }
  }
  if (in_path == nullptr || out_path == nullptr) return usage();

  const auto report = load_report(in_path);
  if (!report) return 2;
  const auto trace = obs::trace_from_report(*report);
  if (!trace) {
    std::fprintf(stderr,
                 "lscatter-obs: %s has no spans section (written with "
                 "max_span_events=0?)\n",
                 in_path);
    return 2;
  }
  if (!obs::write_json_file(*trace, out_path)) {
    std::fprintf(stderr, "lscatter-obs: cannot write %s\n", out_path);
    return 2;
  }
  const std::size_t n = trace->find("traceEvents")->as_array().size();
  std::printf("wrote %s (%zu trace events) — open in ui.perfetto.dev\n",
              out_path, n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "summarize") == 0) {
    return cmd_summarize(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "diff") == 0) return cmd_diff(argc - 2, argv + 2);
  if (std::strcmp(cmd, "trace") == 0) return cmd_trace(argc - 2, argv + 2);
  return usage();
}
