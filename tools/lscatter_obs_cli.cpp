// lscatter-obs: command-line consumer of `lscatter.obs/1` run reports
// (the JSON every bench/example writes via LSCATTER_OBS_JSON) and of the
// append-only run registry (`lscatter.obs-run/1` JSONL, DESIGN.md §11).
//
//   lscatter-obs summarize <report.json>
//       Text table of counters, gauges, and histogram quantiles —
//       format_text_report, but for a file instead of the live registry.
//
//   lscatter-obs diff <base.json> <new.json> [--threshold PCT]
//                     [--tail-threshold PCT] [--schema-only] [--json]
//       Structural diff (obs/diff.hpp). Exit 0 = clean, 1 = metric-name
//       drift or quantile regression, 2 = usage/input error. --threshold
//       is the allowed relative p50 growth in percent (default 25);
//       --tail-threshold bounds p90/p99 (default 150 — tails of short
//       runs are log-bucket-quantized and noisy); --schema-only skips
//       quantile comparison entirely (the bench gate's smoke mode);
//       --json prints the machine-readable verdict.
//
//   lscatter-obs trace <report.json> -o <out.json>
//       Convert the report's span events to Chrome trace-event JSON for
//       ui.perfetto.dev / chrome://tracing (obs/trace_export.hpp).
//
//   lscatter-obs record <report.json> [--registry PATH] [--bench NAME]
//                       [--sha SHA] [--dirty 0|1] [--threads N]
//                       [--time SECONDS]
//       Compact the report (drop spans + bucket arrays), stamp
//       provenance — bench name (default: the report's own name), git
//       sha/dirty (callers pass them; the CLI never shells out),
//       SplitMix64 hash of the canonicalized `extra.params` config,
//       hostname, wall-clock time (stamped HERE: the library never
//       reads clocks) — and append one JSONL line to the registry.
//
//   lscatter-obs query [--registry PATH] [--bench NAME] [--sha PREFIX]
//                      [--metric PATH] [--last K] [--json]
//       List matching records, oldest first. --metric adds one flattened
//       metric column (e.g. histograms.lte.ofdm.modulate.seconds.p50).
//
//   lscatter-obs trend [--registry PATH] [--bench NAME]
//                      [--metric SUBSTR] [--last K] [--threshold PCT]
//                      [--tail-threshold PCT] [--json]
//       Per-metric first/last/p50/p90/p99 across the matching records,
//       with histogram-quantile metrics flagged REGRESSED when the
//       newest value grew past the obs::diff thresholds relative to the
//       median of the prior records.
//
//   lscatter-obs regress <fresh.json> [--registry PATH] [--bench NAME]
//                        [--last K] [--min-records N] [--threshold PCT]
//                        [--tail-threshold PCT] [--schema-only] [--json]
//       Gate a fresh report against the registry: synthesize the
//       per-metric median baseline (obs::median_report) from the
//       matching records and diff the fresh report against it. Exit 0 =
//       clean (including "fewer than --min-records [default 2] prior
//       runs" — a young registry must not block the gate; the fresh
//       report is still schema-validated), 1 = drift or regression,
//       2 = usage/input error.
//
//   lscatter-obs stamp <report.json> [--sha SHA] [--dirty 0|1]
//                      [--compiler ID] [--time SECONDS]
//       Rewrite the report in place with a `provenance` object, so
//       committed baselines (scripts/bench_baseline.sh) carry the
//       commit/compiler that produced them. obs::diff ignores the key.
//
// Works identically on reports from -DLSCATTER_OBS=OFF builds — those
// just have empty metric sections.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>
#include <vector>

#include "dsp/simd.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/run_registry.hpp"
#include "obs/trace_export.hpp"

namespace {

using namespace lscatter;

int usage() {
  std::fprintf(
      stderr,
      "usage: lscatter-obs <command> ...\n"
      "  summarize <report.json>\n"
      "  diff <base.json> <new.json> [--threshold PCT]"
      " [--tail-threshold PCT] [--schema-only] [--json]\n"
      "  trace <report.json> -o <out.json>\n"
      "  record <report.json> [--registry PATH] [--bench NAME]"
      " [--sha SHA] [--dirty 0|1] [--threads N] [--simd TIER]"
      " [--time S]\n"
      "  query [--registry PATH] [--bench NAME] [--sha PREFIX]"
      " [--simd TIER|any] [--threads N] [--metric PATH] [--last K]"
      " [--json]\n"
      "  trend [--registry PATH] [--bench NAME] [--metric SUBSTR]"
      " [--simd TIER|any] [--threads N] [--last K] [--threshold PCT]"
      " [--tail-threshold PCT] [--json]\n"
      "  regress <fresh.json> [--registry PATH] [--bench NAME]"
      " [--simd TIER|any (default: current tier)] [--threads N]"
      " [--last K] [--min-records N] [--threshold PCT]"
      " [--tail-threshold PCT] [--schema-only] [--json]\n"
      "  stamp <report.json> [--sha SHA] [--dirty 0|1] [--compiler ID]"
      " [--time S]\n");
  return 2;
}

std::optional<obs::json::Value> load_report(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "lscatter-obs: cannot open %s\n", path);
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto parsed = obs::json::parse(text);
  if (!parsed) {
    std::fprintf(stderr, "lscatter-obs: %s is not valid JSON\n", path);
  }
  return parsed;
}

bool is_obs_report(const obs::json::Value& report) {
  const obs::json::Value* s = report.find("schema");
  return s != nullptr && s->is_string() &&
         s->as_string() == "lscatter.obs/1";
}

double field_or(const obs::json::Value& obj, const char* key,
                double fallback) {
  const obs::json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string report_name_of(const obs::json::Value& report) {
  const obs::json::Value* v = report.find("report");
  return v != nullptr && v->is_string() ? v->as_string() : std::string{};
}

/// Registry-command flag state shared by record/query/trend/regress.
struct RegistryArgs {
  std::string registry;   // resolved path
  std::string bench;
  std::string sha;
  std::string simd;  // tier name, "any", or empty (per-command default)
  bool dirty = false;
  std::uint64_t threads = 0;
  double time_s = -1.0;   // < 0 = stamp now
  std::string metric;
  std::size_t last = 0;
  std::size_t min_records = 2;
  std::string compiler;
  obs::DiffOptions diff;
  bool as_json = false;
  std::vector<const char*> positional;
};

/// Parse the shared flags; returns false (after a message) on bad input.
bool parse_registry_args(int argc, char** argv, RegistryArgs& out) {
  std::string registry_flag;
  const auto value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  const auto parse_pct = [&](int& i, double& pct_out) {
    const char* s = value(i);
    if (s == nullptr) return false;
    char* end = nullptr;
    const double pct = std::strtod(s, &end);
    if (end == s || *end != '\0' || pct < 0.0) {
      std::fprintf(stderr, "lscatter-obs: bad threshold %s\n", s);
      return false;
    }
    pct_out = pct / 100.0;
    return true;
  };
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (std::strcmp(a, "--registry") == 0) {
      if ((v = value(i)) == nullptr) return false;
      registry_flag = v;
    } else if (std::strcmp(a, "--bench") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.bench = v;
    } else if (std::strcmp(a, "--sha") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.sha = v;
    } else if (std::strcmp(a, "--dirty") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.dirty = !(v[0] == '0' && v[1] == '\0');
    } else if (std::strcmp(a, "--threads") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.threads = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--simd") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.simd = v;
    } else if (std::strcmp(a, "--time") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.time_s = std::strtod(v, nullptr);
    } else if (std::strcmp(a, "--metric") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.metric = v;
    } else if (std::strcmp(a, "--last") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.last = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--min-records") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.min_records = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--compiler") == 0) {
      if ((v = value(i)) == nullptr) return false;
      out.compiler = v;
    } else if (std::strcmp(a, "--threshold") == 0) {
      if (!parse_pct(i, out.diff.regression_threshold)) return false;
    } else if (std::strcmp(a, "--tail-threshold") == 0) {
      if (!parse_pct(i, out.diff.tail_regression_threshold)) return false;
    } else if (std::strcmp(a, "--schema-only") == 0) {
      out.diff.compare_quantiles = false;
    } else if (std::strcmp(a, "--json") == 0) {
      out.as_json = true;
    } else if (a[0] == '-' && a[1] == '-') {
      std::fprintf(stderr, "lscatter-obs: unknown flag %s\n", a);
      return false;
    } else {
      out.positional.push_back(a);
    }
  }
  out.registry = obs::registry_path_from_env(registry_flag);
  return true;
}

/// The one place the CLI reads a wall clock: provenance time stamps.
double stamp_time(const RegistryArgs& args) {
  if (args.time_s >= 0.0) return args.time_s;
  return static_cast<double>(std::time(nullptr));
}

std::vector<obs::RunRecord> load_filtered(const RegistryArgs& args,
                                          obs::ReadStats* stats) {
  obs::RecordFilter filter;
  filter.bench = args.bench;
  filter.git_sha = args.sha;
  // "any" (or empty) disables the like-for-like tier gate; a concrete
  // tier name matches exactly (records without the field still pass).
  if (!args.simd.empty() && args.simd != "any") {
    filter.simd_tier = args.simd;
  }
  filter.threads = args.threads;
  filter.last = args.last;
  return obs::filter_records(obs::read_records(args.registry, stats),
                             filter);
}

void warn_corrupt(const RegistryArgs& args, const obs::ReadStats& stats) {
  if (stats.corrupt_lines > 0) {
    std::fprintf(stderr,
                 "lscatter-obs: %s: skipped %zu corrupt line(s) of %zu\n",
                 args.registry.c_str(), stats.corrupt_lines,
                 stats.total_lines);
  }
}

void print_section_scalars(const obs::json::Value& report,
                           const char* section, const char* heading,
                           const char* fmt) {
  const obs::json::Value* s = report.find(section);
  if (s == nullptr || !s->is_object() || s->as_object().size() == 0) return;
  std::printf("-- %s --\n", heading);
  for (const auto& name : s->as_object().keys()) {
    const obs::json::Value* v = s->find(name);
    if (v == nullptr || !v->is_number()) continue;
    std::printf(fmt, name.c_str(), v->as_number());
  }
}

int cmd_summarize(int argc, char** argv) {
  if (argc != 1) return usage();
  const auto report = load_report(argv[0]);
  if (!report) return 2;

  const obs::json::Value* name = report->find("report");
  std::printf("== obs report: %s (%s) ==\n",
              name != nullptr && name->is_string()
                  ? name->as_string().c_str()
                  : "<unnamed>",
              argv[0]);
  print_section_scalars(*report, "counters", "counters", "%-44s %12.0f\n");
  print_section_scalars(*report, "gauges", "gauges", "%-44s %12.6g\n");

  const obs::json::Value* hists = report->find("histograms");
  if (hists != nullptr && hists->is_object() &&
      hists->as_object().size() > 0) {
    std::printf("-- histograms (count / mean / p50 / p90 / p99) --\n");
    for (const auto& hname : hists->as_object().keys()) {
      const obs::json::Value* h = hists->find(hname);
      if (h == nullptr || !h->is_object()) continue;
      std::printf("%-44s %9.0f %10.3e %10.3e %10.3e %10.3e\n",
                  hname.c_str(), field_or(*h, "count", 0.0),
                  field_or(*h, "mean", 0.0), field_or(*h, "p50", 0.0),
                  field_or(*h, "p90", 0.0), field_or(*h, "p99", 0.0));
    }
  }

  const obs::json::Value* spans = report->find("spans");
  if (spans != nullptr && spans->is_object()) {
    std::printf("-- spans --\ntotal %.0f, dropped %.0f, exported %zu\n",
                field_or(*spans, "total", 0.0),
                field_or(*spans, "dropped", 0.0),
                spans->find("events") != nullptr &&
                        spans->find("events")->is_array()
                    ? spans->find("events")->as_array().size()
                    : std::size_t{0});
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  RegistryArgs args;
  if (!parse_registry_args(argc, argv, args)) return 2;
  if (args.positional.size() != 2) return usage();

  const auto base = load_report(args.positional[0]);
  const auto current = load_report(args.positional[1]);
  if (!base || !current) return 2;

  const obs::DiffResult result =
      obs::diff_reports(*base, *current, args.diff);
  if (args.as_json) {
    std::printf("%s\n", result.to_json().dump(2).c_str());
  } else {
    std::printf("%s", result.format_text().c_str());
  }
  return result.ok() ? 0 : 1;
}

int cmd_trace(int argc, char** argv) {
  const char* in_path = nullptr;
  const char* out_path = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (in_path == nullptr) {
      in_path = argv[i];
    } else {
      return usage();
    }
  }
  if (in_path == nullptr || out_path == nullptr) return usage();

  const auto report = load_report(in_path);
  if (!report) return 2;
  const auto trace = obs::trace_from_report(*report);
  if (!trace) {
    std::fprintf(stderr,
                 "lscatter-obs: %s has no spans section (written with "
                 "max_span_events=0?)\n",
                 in_path);
    return 2;
  }
  if (!obs::write_json_file(*trace, out_path)) {
    std::fprintf(stderr, "lscatter-obs: cannot write %s\n", out_path);
    return 2;
  }
  const std::size_t n = trace->find("traceEvents")->as_array().size();
  std::printf("wrote %s (%zu trace events) — open in ui.perfetto.dev\n",
              out_path, n);
  return 0;
}

int cmd_record(int argc, char** argv) {
  RegistryArgs args;
  if (!parse_registry_args(argc, argv, args)) return 2;
  if (args.positional.size() != 1) return usage();

  const auto report = load_report(args.positional[0]);
  if (!report) return 2;
  if (!is_obs_report(*report)) {
    std::fprintf(stderr, "lscatter-obs: %s is not an lscatter.obs/1 report\n",
                 args.positional[0]);
    return 2;
  }

  obs::RunRecord rec;
  rec.report = obs::compact_report(*report);
  rec.provenance.bench =
      !args.bench.empty() ? args.bench : report_name_of(*report);
  rec.provenance.git_sha = args.sha;
  rec.provenance.dirty = args.dirty;
  rec.provenance.hostname = obs::local_hostname();
  // Defaults mirror what the bench child resolved: the CLI shares
  // LSCATTER_SIMD / LSCATTER_THREADS with the bench it is recording, so
  // dsp::simd_tier() here matches the tier the bench dispatched to.
  rec.provenance.threads = args.threads;
  if (rec.provenance.threads == 0) {
    if (const char* env = std::getenv("LSCATTER_THREADS")) {
      rec.provenance.threads = std::strtoull(env, nullptr, 10);
    }
  }
  rec.provenance.simd_tier = !args.simd.empty() && args.simd != "any"
                                 ? args.simd
                                 : dsp::to_string(dsp::simd_tier());
  rec.provenance.unix_time_s = stamp_time(args);
  // The bench's own parameters (seed, drops, sizes) are the config; the
  // hash keys longitudinal queries, so insertion-order differences must
  // not split a trajectory — hence the canonicalized hash.
  const obs::json::Value* extra = report->find("extra");
  const obs::json::Value* params =
      extra != nullptr ? extra->find("params") : nullptr;
  rec.provenance.config_hash =
      obs::config_hash(params != nullptr ? *params : obs::json::Value{});

  std::string error;
  if (!obs::append_record(args.registry, rec, &error)) {
    std::fprintf(stderr, "lscatter-obs: %s\n", error.c_str());
    return 2;
  }
  obs::ReadStats stats;
  const auto all = obs::read_records(args.registry, &stats);
  std::printf("recorded %s (config %016llx) -> %s (%zu records)\n",
              rec.provenance.bench.c_str(),
              static_cast<unsigned long long>(rec.provenance.config_hash),
              args.registry.c_str(), all.size());
  warn_corrupt(args, stats);
  return 0;
}

int cmd_query(int argc, char** argv) {
  RegistryArgs args;
  if (!parse_registry_args(argc, argv, args)) return 2;
  if (!args.positional.empty()) return usage();

  obs::ReadStats stats;
  const auto records = load_filtered(args, &stats);
  warn_corrupt(args, stats);

  if (args.as_json) {
    obs::json::Array arr;
    arr.reserve(records.size());
    for (const auto& rec : records) {
      obs::json::Value v = rec.to_json();
      if (!args.metric.empty()) {
        const auto m = obs::metric_value(rec.report, args.metric);
        v["metric"] = obs::json::Value(args.metric);
        v["value"] = m ? obs::json::Value(*m) : obs::json::Value(nullptr);
      }
      arr.push_back(std::move(v));
    }
    std::printf("%s\n", obs::json::Value(std::move(arr)).dump(2).c_str());
    return 0;
  }

  std::printf("%-4s %-12s %-24s %-10s %-5s %-16s %-8s %-7s", "#", "time",
              "bench", "sha", "dirty", "config", "threads", "simd");
  if (!args.metric.empty()) std::printf(" %s", args.metric.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::Provenance& p = records[i].provenance;
    std::printf("%-4zu %-12.0f %-24s %-10.10s %-5s %016llx %-8llu %-7s",
                i, p.unix_time_s, p.bench.c_str(),
                p.git_sha.empty() ? "-" : p.git_sha.c_str(),
                p.dirty ? "yes" : "no",
                static_cast<unsigned long long>(p.config_hash),
                static_cast<unsigned long long>(p.threads),
                p.simd_tier.empty() ? "-" : p.simd_tier.c_str());
    if (!args.metric.empty()) {
      const auto m = obs::metric_value(records[i].report, args.metric);
      if (m) {
        std::printf(" %.6g", *m);
      } else {
        std::printf(" -");
      }
    }
    std::printf("\n");
  }
  std::printf("%zu record(s) in %s\n", records.size(),
              args.registry.c_str());
  return 0;
}

int cmd_trend(int argc, char** argv) {
  RegistryArgs args;
  if (!parse_registry_args(argc, argv, args)) return 2;
  if (!args.positional.empty()) return usage();

  obs::ReadStats stats;
  const auto records = load_filtered(args, &stats);
  warn_corrupt(args, stats);
  if (records.empty()) {
    std::fprintf(stderr, "lscatter-obs: no matching records in %s\n",
                 args.registry.c_str());
    return 2;
  }

  const auto rows = obs::trend_rows(records, args.metric, args.diff);
  if (args.as_json) {
    obs::json::Array arr;
    arr.reserve(rows.size());
    for (const auto& row : rows) {
      obs::json::Value v;
      v["metric"] = obs::json::Value(row.metric);
      v["n"] = obs::json::Value(static_cast<std::uint64_t>(row.n));
      v["first"] = obs::json::Value(row.first);
      v["last"] = obs::json::Value(row.last);
      v["p50"] = obs::json::Value(row.p50);
      v["p90"] = obs::json::Value(row.p90);
      v["p99"] = obs::json::Value(row.p99);
      v["last_over_median"] = obs::json::Value(row.last_over_median);
      v["regressed"] = obs::json::Value(row.regressed);
      arr.push_back(std::move(v));
    }
    std::printf("%s\n", obs::json::Value(std::move(arr)).dump(2).c_str());
    return 0;
  }

  std::printf("== trend over %zu record(s)%s%s ==\n", records.size(),
              args.bench.empty() ? "" : ", bench=",
              args.bench.c_str());
  std::printf("%-52s %4s %10s %10s %10s %10s %10s %s\n", "metric", "n",
              "first", "last", "p50", "p90", "p99", "flag");
  std::size_t regressed = 0;
  for (const auto& row : rows) {
    std::printf("%-52s %4zu %10.4g %10.4g %10.4g %10.4g %10.4g %s\n",
                row.metric.c_str(), row.n, row.first, row.last, row.p50,
                row.p90, row.p99,
                row.regressed ? "REGRESSED" : "");
    if (row.regressed) ++regressed;
  }
  std::printf("%zu metric(s), %zu regressed\n", rows.size(), regressed);
  return 0;
}

int cmd_regress(int argc, char** argv) {
  RegistryArgs args;
  if (!parse_registry_args(argc, argv, args)) return 2;
  if (args.positional.size() != 1) return usage();

  const auto fresh = load_report(args.positional[0]);
  if (!fresh) return 2;
  if (!is_obs_report(*fresh)) {
    std::fprintf(stderr, "lscatter-obs: %s is not an lscatter.obs/1 report\n",
                 args.positional[0]);
    return 2;
  }
  if (args.bench.empty()) args.bench = report_name_of(*fresh);
  // Like-for-like by default: gate a fresh run only against prior runs
  // of the same SIMD tier (a scalar-forced CI row must not poison the
  // median for an AVX2 box). --simd any restores the old behavior.
  if (args.simd.empty()) args.simd = dsp::to_string(dsp::simd_tier());

  obs::ReadStats stats;
  const auto records = load_filtered(args, &stats);
  warn_corrupt(args, stats);
  if (records.size() < args.min_records) {
    std::printf(
        "regress: %zu prior record(s) for %s in %s (< %zu); nothing to "
        "gate against — pass\n",
        records.size(), args.bench.c_str(), args.registry.c_str(),
        args.min_records);
    return 0;
  }

  // The median baseline is historical, not curated: metrics added by a
  // newer build would fail as drift until the registry majority catches
  // up, so regress reports them as info only. Removals still gate.
  obs::DiffOptions diff = args.diff;
  diff.ignore_added_metrics = true;
  const obs::json::Value base = obs::median_report(records);
  const obs::DiffResult result = obs::diff_reports(base, *fresh, diff);
  if (args.as_json) {
    std::printf("%s\n", result.to_json().dump(2).c_str());
  } else {
    std::printf("== regress vs median of %zu record(s) for %s ==\n%s",
                records.size(), args.bench.c_str(),
                result.format_text().c_str());
  }
  return result.ok() ? 0 : 1;
}

int cmd_stamp(int argc, char** argv) {
  RegistryArgs args;
  if (!parse_registry_args(argc, argv, args)) return 2;
  if (args.positional.size() != 1) return usage();
  const char* path = args.positional[0];

  auto report = load_report(path);
  if (!report) return 2;
  if (!is_obs_report(*report)) {
    std::fprintf(stderr, "lscatter-obs: %s is not an lscatter.obs/1 report\n",
                 path);
    return 2;
  }

  obs::json::Value prov;
  prov["git_sha"] = obs::json::Value(args.sha);
  prov["dirty"] = obs::json::Value(args.dirty);
  prov["compiler"] = obs::json::Value(args.compiler);
  prov["hostname"] = obs::json::Value(obs::local_hostname());
  prov["unix_time_s"] = obs::json::Value(stamp_time(args));
  (*report)["provenance"] = std::move(prov);

  if (!obs::write_json_file(*report, path)) {
    std::fprintf(stderr, "lscatter-obs: cannot rewrite %s\n", path);
    return 2;
  }
  std::printf("stamped %s (sha %s%s)\n", path,
              args.sha.empty() ? "<none>" : args.sha.c_str(),
              args.dirty ? ", dirty" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "summarize") == 0) {
    return cmd_summarize(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "diff") == 0) return cmd_diff(argc - 2, argv + 2);
  if (std::strcmp(cmd, "trace") == 0) return cmd_trace(argc - 2, argv + 2);
  if (std::strcmp(cmd, "record") == 0) {
    return cmd_record(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "query") == 0) return cmd_query(argc - 2, argv + 2);
  if (std::strcmp(cmd, "trend") == 0) return cmd_trend(argc - 2, argv + 2);
  if (std::strcmp(cmd, "regress") == 0) {
    return cmd_regress(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "stamp") == 0) return cmd_stamp(argc - 2, argv + 2);
  return usage();
}
