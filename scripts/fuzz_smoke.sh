#!/usr/bin/env bash
# Fuzz smoke: build the harnesses and give each a bounded budget.
#
# With clang (CI): real libFuzzer runs, ~15 s per target over the seed
# corpus — enough to catch shallow regressions in the parser/decoder
# without holding the pipeline hostage.
# With gcc only: the harnesses compile as corpus-replay drivers and replay
# every seed, so the targets and corpora stay healthy on any toolchain.
#
# Usage: scripts/fuzz_smoke.sh [seconds-per-target]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
budget="${1:-15}"
build="$repo/build-fuzz"

# Fail with one clear line when cmake is absent instead of a bare
# "command not found" from the configure step below. clang is optional
# (gcc falls back to corpus replay), so only cmake is load-bearing.
if ! command -v cmake >/dev/null 2>&1; then
  echo "fuzz_smoke.sh: required tool 'cmake' not found in PATH —" \
       "install CMake and re-run" >&2
  exit 1
fi

cmake_args=(-DLSCATTER_FUZZ=ON)
have_libfuzzer=0
if command -v clang++ >/dev/null 2>&1; then
  cmake_args+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
  have_libfuzzer=1
fi

cmake -B "$build" -S "$repo" "${cmake_args[@]}"
cmake --build "$build" -j "$jobs" \
  --target fuzz_obs_json fuzz_obs_registry fuzz_framing

run_target() {
  local bin="$build/fuzz/$1" corpus="$repo/fuzz/corpus/$2"
  if [[ "$have_libfuzzer" == 1 ]]; then
    echo "== fuzz: $1 (libFuzzer, ${budget}s) =="
    "$bin" -max_total_time="$budget" -timeout=5 -print_final_stats=1 \
      "$corpus"
  else
    echo "== fuzz: $1 (corpus replay; clang not found) =="
    find "$corpus" -type f -print0 | xargs -0 "$bin"
  fi
}

run_target fuzz_obs_json obs_json
run_target fuzz_obs_registry obs_registry
run_target fuzz_framing framing

echo "== fuzz_smoke.sh: no crashes =="
