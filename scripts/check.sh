#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite —
# first in the default configuration (plus the bench gate's schema-drift
# smoke check, so an accidentally renamed/dropped metric fails here),
# then rebuilt under AddressSanitizer + UndefinedBehaviorSanitizer
# (-DLSCATTER_SANITIZE=address,undefined), and finally the span-sink and
# sim-pool stress tests alone under ThreadSanitizer
# (-DLSCATTER_SANITIZE=thread; TSan and ASan cannot share a build).
# ctest runs with --timeout 300 (a hung pool must fail, not wedge the
# pipeline) and writes a JUnit XML (ctest-junit.xml in the build dir)
# that CI uploads on failure.
# After the default build it runs the static layer: tools/lscatter-lint
# (project rules: unit suffixes, RNG discipline, float-in-DSP, include
# hygiene, raw-mutex/guarded-mutex lock discipline) always, clang-tidy
# when installed, and a clang -Wthread-safety build
# (-DLSCATTER_THREAD_SAFETY=ON) when clang++ is installed. Locally a
# gcc-only box soft-skips the clang lanes; under CI (the CI env var) a
# missing clang-tidy fails loudly so the lint lane can never become a
# silent no-op.
#
# Usage: scripts/check.sh [--no-sanitize]
# Exits non-zero on the first failure.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_sanitized=1
[[ "${1:-}" == "--no-sanitize" ]] && run_sanitized=0

# Required tools up front: a missing cmake must fail here with one clear
# line, not as a bare "command not found" halfway through the pipeline
# (set -o pipefail above makes any later stage's nonzero exit fatal, but
# the message would point at the wrong place).
for tool in cmake ctest; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    echo "check.sh: required tool '$tool' not found in PATH —" \
         "install CMake (provides cmake and ctest) and re-run" >&2
    exit 1
  fi
done

# The SIMD dispatch honors LSCATTER_SIMD in every child process (tests,
# benches, the gate). Announce a forced tier so a scalar-lane log is
# self-describing.
if [[ -n "${LSCATTER_SIMD:-}" ]]; then
  echo "== SIMD tier forced: LSCATTER_SIMD=$LSCATTER_SIMD =="
fi

ctest_args=(--output-on-failure -j "$jobs" --timeout 300
            --output-junit ctest-junit.xml)

echo "== tier-1: default build =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" "${ctest_args[@]}"

echo "== tier-1: bench gate (schema-drift smoke) =="
"$repo/scripts/bench_gate.sh" --smoke "$repo/build"

echo "== tier-1: run-registry smoke (record / trend / regress) =="
cmake --build "$repo/build" -j "$jobs" --target lscatter-obs \
  bench_micro_dsp
obs="$repo/build/tools/lscatter-obs"
reg="$repo/build/registry-smoke"
rm -rf "$reg" && mkdir -p "$reg"
for i in 1 2 3; do
  LSCATTER_OBS_JSON="$reg/run$i.json" LSCATTER_OBS_SPANS=0 \
    LSCATTER_OBS_BUCKETS=0 LSCATTER_OBS_REGISTRY= \
    "$repo/build/bench/bench_micro_dsp" --benchmark_min_time=0.02 \
    > /dev/null
  "$obs" record "$reg/run$i.json" --registry "$reg/registry.jsonl" \
    --time "$i"
done
"$obs" trend --registry "$reg/registry.jsonl" --bench bench_micro_dsp
# Timings vary by machine, so the smoke regress gates schema only.
"$obs" regress "$reg/run3.json" --registry "$reg/registry.jsonl" \
  --schema-only
# The reader must skip (and count) a torn/corrupt line, never fail.
printf 'garbage not a record\n' >> "$reg/registry.jsonl"
"$obs" query --registry "$reg/registry.jsonl" --bench bench_micro_dsp \
  | grep -q '3 record(s)'

echo "== static: lscatter-lint =="
cmake --build "$repo/build" -j "$jobs" --target lscatter-lint
"$repo/build/tools/lscatter-lint" "$repo"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== static: clang-tidy =="
  # compile_commands.json is exported by the default configure
  # (CMAKE_EXPORT_COMPILE_COMMANDS ON in CMakeLists.txt).
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$repo/build" "$repo/src/.*\.cpp$"
  else
    find "$repo/src" -name '*.cpp' -print0 |
      xargs -0 clang-tidy -quiet -p "$repo/build"
  fi
elif [[ -n "${CI:-}" ]]; then
  # In CI a missing clang-tidy means the lint lane is silently checking
  # nothing — fail loudly instead of shipping a green no-op.
  echo "== static: clang-tidy requested in CI but not installed ==" >&2
  exit 1
else
  echo "== static: clang-tidy not installed; skipped (CI runs it) =="
fi

# Clang thread-safety analysis lane: build-only, promotes the capability
# annotations (core/thread_safety.hpp) to errors. Requires clang — the
# annotations are no-ops under gcc, so there is nothing to check there.
# CI runs this as its own job; locally it runs whenever clang is around.
if command -v clang++ >/dev/null 2>&1; then
  echo "== static: clang -Wthread-safety build =="
  cmake -B "$repo/build-tsa" -S "$repo" \
    -DCMAKE_CXX_COMPILER=clang++ -DLSCATTER_THREAD_SAFETY=ON
  cmake --build "$repo/build-tsa" -j "$jobs"
elif [[ -n "${CI:-}" && -n "${LSCATTER_REQUIRE_TSA:-}" ]]; then
  echo "== static: thread-safety lane requires clang++ ==" >&2
  exit 1
else
  echo "== static: clang++ not installed; thread-safety lane skipped (CI runs it) =="
fi

if [[ "$run_sanitized" == 1 ]]; then
  echo "== tier-1: ASan + UBSan build =="
  cmake -B "$repo/build-san" -S "$repo" \
    -DLSCATTER_SANITIZE=address,undefined
  cmake --build "$repo/build-san" -j "$jobs"
  ctest --test-dir "$repo/build-san" "${ctest_args[@]}"

  echo "== tier-1: TSan span + sim-pool stress + shared FFT plan cache =="
  cmake -B "$repo/build-tsan" -S "$repo" -DLSCATTER_SANITIZE=thread
  cmake --build "$repo/build-tsan" -j "$jobs" \
    --target test_obs_stress test_core_pool_stress test_dsp_correlate \
      test_core_stream_ring test_core_pipeline
  "$repo/build-tsan/tests/test_obs_stress"
  "$repo/build-tsan/tests/test_core_pool_stress"
  # test_dsp_correlate carries the 8-thread fast_correlate determinism
  # test: concurrent readers of the shared_mutex FFT plan cache.
  "$repo/build-tsan/tests/test_dsp_correlate"
  # The streaming lane: the StreamRing SPSC producer/consumer stress and
  # the multi-worker DecodePipeline determinism suite (DESIGN.md §15) —
  # the two places a memory-ordering bug in the ring protocol would show.
  "$repo/build-tsan/tests/test_core_stream_ring"
  "$repo/build-tsan/tests/test_core_pipeline"
fi

echo "== check.sh: all green =="
