#!/usr/bin/env bash
# Regenerate the committed micro-benchmark reference report,
# bench/baselines/BENCH_micro.json: a short bench_micro_rx run whose
# observability snapshot (per-stage demod timings, tag sync counters,
# span summary) documents the expected report shape and metric set.
# Timings vary by machine — the baseline is for schema/metric-name
# diffing, not for absolute-performance comparison.
#
# Usage: scripts/bench_baseline.sh [build-dir]   (default: build)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
  --target bench_micro_rx

out="$repo/bench/baselines/BENCH_micro.json"
mkdir -p "$repo/bench/baselines"
LSCATTER_OBS_JSON="$out" "$build/bench/bench_micro_rx" \
  --benchmark_min_time=0.05

echo "wrote $out"
