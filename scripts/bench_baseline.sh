#!/usr/bin/env bash
# Regenerate the committed micro-benchmark reference reports under
# bench/baselines/: each bench_<name> writes BENCH_<name>.json (so
# bench_micro_rx -> BENCH_micro_rx.json, bench_micro_dsp ->
# BENCH_micro_dsp.json — no per-bench filename exceptions; bench_gate.sh
# derives the same path). bench_micro_pool and bench_soak_day
# deliberately have no committed baseline — bench_gate.sh gates them
# against the run registry's per-metric median instead (DESIGN.md §11).
#
# Re-run this script whenever a bench gains or loses a benchmark case —
# e.g. bench_micro_rx's BM_StreamingAcquire — otherwise the gate's
# schema-drift check fails on the name mismatch. Commit the regenerated
# JSON together with the bench change.
# The baselines exist for scripts/bench_gate.sh — which diffs metric
# names and quantiles, not raw span dumps — so they are written with
# LSCATTER_OBS_SPANS=0 and LSCATTER_OBS_BUCKETS=0 (no span events, no
# bucket arrays). Timings vary by machine; the gate's schema-drift check
# is machine-independent, the timing thresholds are only meaningful
# against a baseline from the same machine.
#
# Each regenerated baseline is stamped (`lscatter-obs stamp`) with the
# git sha, dirty flag, and compiler id that produced it, so a reviewer
# can always answer "which commit and toolchain is this baseline from?".
# obs::diff ignores the provenance key — stamping never affects gating.
#
# Usage: scripts/bench_baseline.sh [build-dir]   (default: build)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

benches=(bench_micro_rx bench_micro_dsp)

cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
  --target "${benches[@]}" lscatter-obs

obs="$build/tools/lscatter-obs"
git_sha="$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo "")"
git_dirty=0
if [[ -n "$git_sha" ]] && \
   ! git -C "$repo" diff --quiet HEAD -- 2>/dev/null; then
  git_dirty=1
fi
# Compiler id from the CMake cache — the build dir knows what built it.
compiler="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
              "$build/CMakeCache.txt" 2>/dev/null | head -n1)"
compiler="${compiler:-unknown}"

mkdir -p "$repo/bench/baselines"
for bench in "${benches[@]}"; do
  out="$repo/bench/baselines/BENCH_${bench#bench_}.json"
  LSCATTER_OBS_JSON="$out" LSCATTER_OBS_SPANS=0 LSCATTER_OBS_BUCKETS=0 \
    "$build/bench/$bench" --benchmark_min_time=0.05
  "$obs" stamp "$out" --sha "$git_sha" --dirty "$git_dirty" \
    --compiler "$compiler"
  echo "wrote $out"
done
