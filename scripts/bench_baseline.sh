#!/usr/bin/env bash
# Regenerate the committed micro-benchmark reference reports under
# bench/baselines/: BENCH_micro.json (bench_micro_rx), BENCH_micro_dsp
# .json (bench_micro_dsp), and BENCH_micro_pool.json (bench_micro_pool).
# The baselines exist for scripts/bench_gate.sh — which diffs metric
# names and quantiles, not raw span dumps — so they are written with
# LSCATTER_OBS_SPANS=0 and LSCATTER_OBS_BUCKETS=0 (no span events, no
# bucket arrays). Timings vary by machine; the gate's schema-drift check
# is machine-independent, the timing thresholds are only meaningful
# against a baseline from the same machine.
#
# Usage: scripts/bench_baseline.sh [build-dir]   (default: build)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

benches=(bench_micro_rx bench_micro_dsp bench_micro_pool)

cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
  --target "${benches[@]}"

mkdir -p "$repo/bench/baselines"
for bench in "${benches[@]}"; do
  case "$bench" in
    bench_micro_rx) out="$repo/bench/baselines/BENCH_micro.json" ;;
    *) out="$repo/bench/baselines/BENCH_${bench#bench_}.json" ;;
  esac
  bench_args=()
  case "$bench" in
    bench_micro_pool) bench_args=(--drops=4 --subframes=2) ;;
    *) bench_args=(--benchmark_min_time=0.05) ;;
  esac
  LSCATTER_OBS_JSON="$out" LSCATTER_OBS_SPANS=0 LSCATTER_OBS_BUCKETS=0 \
    "$build/bench/$bench" "${bench_args[@]}"
  echo "wrote $out"
done
