#!/usr/bin/env bash
# Bench regression gate: run the micro benches with fresh observability
# reports and diff each against its committed baseline in
# bench/baselines/ using `lscatter-obs diff`. Metric-name drift (a
# renamed or dropped counter/gauge/histogram) always fails; histogram
# quantile regressions fail only past --threshold, because absolute
# timings vary by machine. --smoke restricts the diff to schema drift —
# that is the mode scripts/check.sh and CI run, so committed baselines
# from one machine never fail another machine on timing.
#
# A bench without a committed baseline yet (bench_micro_pool until
# scripts/bench_baseline.sh regenerates) is schema-checked on its own:
# the fresh report must parse as lscatter.obs/1 (`lscatter-obs
# summarize`), but nothing is diffed.
#
# Usage: scripts/bench_gate.sh [--smoke] [--threshold PCT]
#                               [--tail-threshold PCT] [build-dir]
#   --smoke               schema-drift check only (no timing thresholds)
#   --threshold PCT       allowed relative p50 growth (default 25)
#   --tail-threshold PCT  allowed relative p90/p99 growth (default 150)
# Env: BENCH_GATE_KEEP_DIR=<dir> keeps the fresh reports and Chrome
# traces there instead of a temp dir — CI uploads it on failure.
# Exits non-zero if any bench drifts or regresses.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
smoke=0
threshold=25
tail_threshold=150
build="$repo/build"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --threshold)
      threshold="$2"
      shift
      ;;
    --tail-threshold)
      tail_threshold="$2"
      shift
      ;;
    *) build="$1" ;;
  esac
  shift
done

benches=(bench_micro_rx bench_micro_dsp bench_micro_pool)

cmake --build "$build" -j "$jobs" --target "${benches[@]}" lscatter-obs

if [[ -n "${BENCH_GATE_KEEP_DIR:-}" ]]; then
  tmp="$BENCH_GATE_KEEP_DIR"
  mkdir -p "$tmp"
else
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
fi

gate_args=(--threshold "$threshold" --tail-threshold "$tail_threshold")
[[ "$smoke" == 1 ]] && gate_args+=(--schema-only)

fail=0
for bench in "${benches[@]}"; do
  case "$bench" in
    bench_micro_rx) baseline="$repo/bench/baselines/BENCH_micro.json" ;;
    *) baseline="$repo/bench/baselines/BENCH_${bench#bench_}.json" ;;
  esac

  bench_args=()
  case "$bench" in
    bench_micro_pool) bench_args=(--drops=4 --subframes=2) ;;
    *) bench_args=(--benchmark_min_time=0.05) ;;
  esac

  fresh="$tmp/$bench.json"
  # Baselines carry metric names + quantiles only, so export the fresh
  # run the same way (no span dump, no bucket arrays). The Chrome trace
  # rides along for failure triage when the keep dir is set.
  LSCATTER_OBS_JSON="$fresh" LSCATTER_OBS_SPANS=0 LSCATTER_OBS_BUCKETS=0 \
    LSCATTER_OBS_TRACE="$tmp/$bench.trace.json" \
    "$build/bench/$bench" "${bench_args[@]}" > /dev/null

  if [[ ! -f "$baseline" ]]; then
    echo "== bench_gate: $bench has no committed baseline;" \
         "schema-checking the fresh report only =="
    if ! "$build/tools/lscatter-obs" summarize "$fresh" > /dev/null; then
      echo "bench_gate: $bench fresh report is not valid lscatter.obs/1" >&2
      fail=1
    else
      echo "   ok — regenerate baselines with scripts/bench_baseline.sh" \
           "to start diffing"
    fi
    continue
  fi

  echo "== bench_gate: $bench vs ${baseline#"$repo"/} =="
  if ! "$build/tools/lscatter-obs" diff "$baseline" "$fresh" \
       "${gate_args[@]}"; then
    fail=1
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "bench_gate: FAIL (see findings above)" >&2
  exit 1
fi
echo "bench_gate: all benches clean"
