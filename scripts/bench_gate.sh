#!/usr/bin/env bash
# Bench regression gate: run the micro benches with fresh observability
# reports and diff each against its committed baseline in
# bench/baselines/ using `lscatter-obs diff`. Metric-name drift (a
# renamed or dropped counter/gauge/histogram) always fails; histogram
# quantile regressions fail only past --threshold, because absolute
# timings vary by machine. --smoke restricts the diff to schema drift —
# that is the mode scripts/check.sh and CI run, so committed baselines
# from one machine never fail another machine on timing.
#
# A bench without a committed baseline (bench_micro_pool and
# bench_micro_obs, deliberately — their thread-scaling and contention
# numbers are too machine-shaped to commit) falls back to the run
# registry:
# `lscatter-obs regress` synthesizes a per-metric median baseline from
# the bench's prior recorded runs and gates against that. A young
# registry (< 2 prior runs) passes with a note — it never blocks.
#
# Every gated run is then recorded to the registry (regress BEFORE
# record, so a fresh run never biases its own baseline), stamped with
# the git sha/dirty flag computed here — bench binaries and the CLI
# never shell out to git themselves.
#
# Usage: scripts/bench_gate.sh [--smoke] [--threshold PCT]
#                               [--tail-threshold PCT] [--no-record]
#                               [build-dir]
#   --smoke               schema-drift check only (no timing thresholds)
#   --threshold PCT       allowed relative p50 growth (default 25)
#   --tail-threshold PCT  allowed relative p90/p99 growth (default 150)
#   --no-record           gate only; do not append to the run registry
# Env: BENCH_GATE_KEEP_DIR=<dir> keeps the fresh reports and Chrome
# traces there instead of a temp dir — CI uploads it on failure.
# LSCATTER_OBS_REGISTRY overrides the registry path (default:
# .lscatter/registry.jsonl at the repo root).
# Exits non-zero if any bench drifts or regresses.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
smoke=0
threshold=25
tail_threshold=150
record=1
build="$repo/build"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --threshold)
      threshold="$2"
      shift
      ;;
    --tail-threshold)
      tail_threshold="$2"
      shift
      ;;
    --no-record) record=0 ;;
    *) build="$1" ;;
  esac
  shift
done

benches=(bench_micro_rx bench_micro_dsp bench_micro_pool bench_micro_obs bench_soak_day)

cmake --build "$build" -j "$jobs" --target "${benches[@]}" lscatter-obs

obs="$build/tools/lscatter-obs"
registry="${LSCATTER_OBS_REGISTRY:-$repo/.lscatter/registry.jsonl}"

# Provenance for the registry: computed once here, passed down. Benches
# see it via env (bench_common.hpp reads LSCATTER_GIT_SHA/_DIRTY).
git_sha="$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo "")"
git_dirty=0
if [[ -n "$git_sha" ]] && \
   ! git -C "$repo" diff --quiet HEAD -- 2>/dev/null; then
  git_dirty=1
fi
export LSCATTER_GIT_SHA="$git_sha"
export LSCATTER_GIT_DIRTY="$git_dirty"

if [[ -n "${BENCH_GATE_KEEP_DIR:-}" ]]; then
  tmp="$BENCH_GATE_KEEP_DIR"
  mkdir -p "$tmp"
else
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
fi

gate_args=(--threshold "$threshold" --tail-threshold "$tail_threshold")
[[ "$smoke" == 1 ]] && gate_args+=(--schema-only)

fail=0
for bench in "${benches[@]}"; do
  baseline="$repo/bench/baselines/BENCH_${bench#bench_}.json"

  bench_args=()
  case "$bench" in
    bench_micro_pool) bench_args=(--drops=4 --subframes=2) ;;
    bench_micro_obs) bench_args=(--iters=200000) ;;
    # Soak smoke: a thin 24h day (8 subframes/hour, ~30 s). The
    # zero-allocation and CRC gates stay armed (they are deterministic);
    # the realtime gate is disabled — CI machine timing is gated against
    # the registry median below, like every other metric.
    bench_soak_day) bench_args=(--sph=8 --min-realtime=0) ;;
    *) bench_args=(--benchmark_min_time=0.05) ;;
  esac

  fresh="$tmp/$bench.json"
  # Baselines carry metric names + quantiles only, so export the fresh
  # run the same way (no span dump, no bucket arrays). The Chrome trace
  # rides along for failure triage when the keep dir is set.
  # LSCATTER_OBS_REGISTRY is blanked so a BenchReport bench can't
  # self-record before this script's regress — the fresh run must never
  # feed its own median baseline.
  LSCATTER_OBS_JSON="$fresh" LSCATTER_OBS_SPANS=0 LSCATTER_OBS_BUCKETS=0 \
    LSCATTER_OBS_TRACE="$tmp/$bench.trace.json" LSCATTER_OBS_REGISTRY= \
    "$build/bench/$bench" "${bench_args[@]}" > /dev/null

  if [[ -f "$baseline" ]]; then
    echo "== bench_gate: $bench vs ${baseline#"$repo"/} =="
    if ! "$obs" diff "$baseline" "$fresh" "${gate_args[@]}"; then
      fail=1
    fi
  else
    echo "== bench_gate: $bench has no committed baseline;" \
         "gating against the run-registry median =="
    if ! "$obs" regress "$fresh" --registry "$registry" \
         "${gate_args[@]}"; then
      fail=1
    fi
  fi

  # Record after gating so this run never feeds its own median baseline.
  if [[ "$record" == 1 ]]; then
    "$obs" record "$fresh" --registry "$registry" \
      --sha "$git_sha" --dirty "$git_dirty" --threads "$jobs"
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "bench_gate: FAIL (see findings above)" >&2
  exit 1
fi
echo "bench_gate: all benches clean"
