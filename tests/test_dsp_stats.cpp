// Statistics helpers: percentiles, box stats, empirical CDFs, histograms.

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "dsp/stats.hpp"

namespace {

using namespace lscatter::dsp;

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
  EXPECT_DOUBLE_EQ(variance(x), 2.0);
  EXPECT_NEAR(stddev(x), std::sqrt(2.0), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> x = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(x, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(x, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(x, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 100.0}), 2.0);
}

TEST(Stats, BoxStatsQuartilesAndOutliers) {
  std::vector<double> x;
  for (int i = 1; i <= 100; ++i) x.push_back(i);
  x.push_back(1000.0);  // an outlier
  const BoxStats b = box_stats(x);
  EXPECT_NEAR(b.median, 51.0, 1.0);
  EXPECT_LT(b.q1, b.median);
  EXPECT_LT(b.median, b.q3);
  EXPECT_EQ(b.max, 1000.0);
  EXPECT_GE(b.n_outliers, 1u);
}

TEST(Stats, EmpiricalCdfEvaluateAndQuantile) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.evaluate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Stats, CdfOfNormalSamplesMatchesTheory) {
  Rng rng(5);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = rng.normal();
  EmpiricalCdf cdf(std::move(samples));
  EXPECT_NEAR(cdf.evaluate(0.0), 0.5, 0.01);
  EXPECT_NEAR(cdf.evaluate(1.0), 0.8413, 0.01);
  EXPECT_NEAR(cdf.evaluate(-1.0), 0.1587, 0.01);
}

TEST(Stats, CdfSeriesIsMonotone) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 5.0, 4.0});
  const auto series = cdf.series(0.0, 6.0, 13);
  EXPECT_EQ(series.size(), 13u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Stats, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[9], 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, FormatBoxMentionsQuartiles) {
  const BoxStats b = box_stats({1.0, 2.0, 3.0});
  const std::string s = format_box(b, "Mbps");
  EXPECT_NE(s.find("med="), std::string::npos);
  EXPECT_NE(s.find("Mbps"), std::string::npos);
}

}  // namespace
