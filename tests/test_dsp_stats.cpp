// Statistics helpers: percentiles, box stats, empirical CDFs, histograms.

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "dsp/stats.hpp"

namespace {

using namespace lscatter::dsp;

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
  EXPECT_DOUBLE_EQ(variance(x), 2.0);
  EXPECT_NEAR(stddev(x), std::sqrt(2.0), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> x = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(x, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(x, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(x, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 100.0}), 2.0);
}

TEST(Stats, BoxStatsQuartilesAndOutliers) {
  std::vector<double> x;
  for (int i = 1; i <= 100; ++i) x.push_back(i);
  x.push_back(1000.0);  // an outlier
  const BoxStats b = box_stats(x);
  EXPECT_NEAR(b.median, 51.0, 1.0);
  EXPECT_LT(b.q1, b.median);
  EXPECT_LT(b.median, b.q3);
  EXPECT_EQ(b.max, 1000.0);
  EXPECT_GE(b.n_outliers, 1u);
}

TEST(Stats, EmpiricalCdfEvaluateAndQuantile) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.evaluate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Stats, CdfOfNormalSamplesMatchesTheory) {
  Rng rng(5);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = rng.normal();
  EmpiricalCdf cdf(std::move(samples));
  EXPECT_NEAR(cdf.evaluate(0.0), 0.5, 0.01);
  EXPECT_NEAR(cdf.evaluate(1.0), 0.8413, 0.01);
  EXPECT_NEAR(cdf.evaluate(-1.0), 0.1587, 0.01);
}

TEST(Stats, CdfSeriesIsMonotone) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 5.0, 4.0});
  const auto series = cdf.series(0.0, 6.0, 13);
  EXPECT_EQ(series.size(), 13u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Stats, QuantileSortedEdgeCases) {
  // Empty input: defined as 0 (callers feed possibly-empty samples).
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);

  // Single element: every quantile is that element.
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 1.0), 42.0);

  // Ties: runs of equal values pin the quantile to the tied value.
  const std::vector<double> ties = {1.0, 2.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(ties, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(ties, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(ties, 0.75), 2.0);

  // Out-of-range q clamps instead of indexing out of bounds.
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(x, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(x, 2.0), 3.0);

  // Linear interpolation between order statistics.
  const std::vector<double> y = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(y, 0.5), 15.0);
}

TEST(Stats, QuantileUnsortedAndSummary) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.9), 0.0);

  std::vector<double> x;
  for (int i = 1; i <= 101; ++i) x.push_back(static_cast<double>(i));
  const QuantileSummary s = summary_quantiles(x);
  EXPECT_DOUBLE_EQ(s.p50, 51.0);
  EXPECT_DOUBLE_EQ(s.p90, 91.0);
  EXPECT_DOUBLE_EQ(s.p99, 100.0);

  const QuantileSummary empty = summary_quantiles({});
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

TEST(Stats, QuantileFromBuckets) {
  // No counts: 0.
  EXPECT_DOUBLE_EQ(quantile_from_buckets({}, 0.5), 0.0);
  const std::vector<BucketSpan> zero = {{1.0, 2.0, 0}};
  EXPECT_DOUBLE_EQ(quantile_from_buckets(zero, 0.5), 0.0);

  // All mass in one positive bucket: geometric interpolation inside it.
  const std::vector<BucketSpan> one = {{1.0, 100.0, 2}};
  EXPECT_NEAR(quantile_from_buckets(one, 0.5), 10.0, 1e-9);
  EXPECT_NEAR(quantile_from_buckets(one, 1.0), 100.0, 1e-9);

  // Mass split across buckets: the median falls on the boundary.
  const std::vector<BucketSpan> two = {{1.0, 2.0, 5}, {2.0, 4.0, 5}};
  EXPECT_NEAR(quantile_from_buckets(two, 0.5), 2.0, 1e-9);
  EXPECT_GT(quantile_from_buckets(two, 0.9), 2.0);

  // Bucket touching zero falls back to linear interpolation.
  const std::vector<BucketSpan> lin = {{0.0, 10.0, 2}};
  EXPECT_NEAR(quantile_from_buckets(lin, 0.5), 5.0, 1e-9);
}

TEST(Stats, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[9], 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, FormatBoxMentionsQuartiles) {
  const BoxStats b = box_stats({1.0, 2.0, 3.0});
  const std::string s = format_box(b, "Mbps");
  EXPECT_NE(s.find("med="), std::string::npos);
  EXPECT_NE(s.find("Mbps"), std::string::npos);
}

}  // namespace
