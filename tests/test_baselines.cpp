// Baseline systems: WiFi PHY + backscatter, symbol-level LTE, LoRa PHY +
// backscatter, and the Table 1 taxonomy.

#include <gtest/gtest.h>

#include "baselines/lora_backscatter.hpp"
#include "baselines/lora_phy_lite.hpp"
#include "baselines/symbol_level_lte.hpp"
#include "baselines/taxonomy.hpp"
#include "baselines/wifi_backscatter.hpp"
#include "baselines/wifi_phy_lite.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;

TEST(WifiPhy, BurstHasUnitPowerAndCorrectLength) {
  baselines::WifiPhy phy;
  dsp::Rng rng(1);
  const auto burst = phy.generate_burst(20, rng);
  EXPECT_EQ(burst.size(), 20 * baselines::WifiPhyConfig::samples_per_symbol());
  EXPECT_NEAR(dsp::mean_power(burst), 1.0, 0.15);
}

TEST(WifiPhy, SymbolDurationIsFourMicroseconds) {
  const baselines::WifiPhyConfig cfg;
  EXPECT_NEAR(cfg.symbol_duration_s(), 4e-6, 1e-12);
}

TEST(WifiBackscatter, RateIs125kbps) {
  baselines::WifiBackscatterLink link({});
  EXPECT_NEAR(link.instantaneous_rate_bps(), 125e3, 1.0);
}

TEST(WifiBackscatter, CloseRangeIsErrorFree) {
  baselines::WifiBackscatterConfig cfg;
  cfg.pathloss.exponent = 2.0;
  cfg.enb_tag_ft = 3.0;
  cfg.tag_ue_ft = 3.0;
  baselines::WifiBackscatterLink link(cfg);
  const auto m = link.run_burst(2000);
  EXPECT_EQ(m.bit_errors, 0u);
  EXPECT_EQ(m.bits_sent, 2000u);
}

TEST(WifiBackscatter, ThroughputScalesWithOccupancy) {
  baselines::WifiBackscatterConfig cfg;
  cfg.pathloss.exponent = 2.0;
  baselines::WifiBackscatterLink link(cfg);
  const double t_low = link.hourly_throughput_bps(0.1, 500);
  const double t_high = link.hourly_throughput_bps(0.6, 500);
  EXPECT_NEAR(t_high / t_low, 6.0, 0.5);
  // Even at full occupancy it is bounded by the symbol-level ceiling.
  EXPECT_LT(link.hourly_throughput_bps(1.0, 500), 126e3);
}

TEST(WifiBackscatter, FarLinkLosesWholePackets) {
  baselines::WifiBackscatterConfig cfg;
  cfg.pathloss.exponent = 3.2;
  cfg.enb_tag_ft = 10.0;
  cfg.tag_ue_ft = 250.0;
  cfg.los = false;
  baselines::WifiBackscatterLink link(cfg);
  EXPECT_NEAR(link.hourly_throughput_bps(0.5, 800), 0.0, 1.0);
}

TEST(SymbolLevelLte, RateIsAbout7kbps) {
  baselines::SymbolLevelLteConfig cfg;
  baselines::SymbolLevelLteLink link(cfg);
  EXPECT_NEAR(link.instantaneous_rate_bps(), 6800.0, 1.0);
}

TEST(SymbolLevelLte, CleanAtCloseRangeAndCountsBits) {
  baselines::SymbolLevelLteConfig cfg;
  cfg.pathloss.exponent = 2.0;
  baselines::SymbolLevelLteLink link(cfg);
  const auto m = link.run(10);
  // 10 subframes: 140 symbols - 4 PSS/SSS = 136 -> 68 codeword pairs.
  EXPECT_EQ(m.bits_sent, 68u);
  EXPECT_EQ(m.bit_errors, 0u);
}

TEST(SymbolLevelLte, SurvivesLowerSnrThanUnitLevel) {
  // At a distance where LScatter's per-unit decisions are marginal, the
  // whole-symbol integration (~33 dB of processing gain) stays clean.
  baselines::SymbolLevelLteConfig cfg;
  cfg.pathloss.exponent = 2.2;
  cfg.enb_tag_ft = 15.0;
  cfg.tag_ue_ft = 150.0;
  baselines::SymbolLevelLteLink link(cfg);
  const auto m = link.run(10);
  EXPECT_LT(m.ber(), 0.05);
}

class LoraRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(LoraRoundTrip, ModulateDemodulateAllSymbols) {
  baselines::LoraPhyConfig cfg;
  cfg.spreading_factor = GetParam();
  baselines::LoraPhy phy(cfg);
  dsp::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const std::uint32_t v =
        rng.uniform_int(static_cast<std::uint32_t>(cfg.chips_per_symbol()));
    const auto s = phy.modulate_symbol(v);
    EXPECT_EQ(phy.demodulate_symbol(s), v);
  }
}

INSTANTIATE_TEST_SUITE_P(SpreadingFactors, LoraRoundTrip,
                         ::testing::Values(7u, 8u, 10u, 12u));

TEST(LoraPhy, ChirpHasConstantEnvelope) {
  baselines::LoraPhy phy;
  const auto s = phy.modulate_symbol(13);
  for (const auto v : s) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-4);
  }
}

TEST(LoraBackscatter, OccupancyGatedThroughputIsNegligible) {
  baselines::LoraBackscatterConfig cfg;
  cfg.pathloss.exponent = 2.0;
  baselines::LoraBackscatterLink link(cfg);
  // At the paper's 2% LoRa occupancy the throughput is single-digit bit/s
  // — "always 0" at plot scale.
  const double bps = link.hourly_throughput_bps(0.02, 200);
  EXPECT_LT(bps, 20.0);
  EXPECT_GE(bps, 0.0);
}

TEST(LoraBackscatter, OokDemodulationWorksUpClose) {
  baselines::LoraBackscatterConfig cfg;
  cfg.pathloss.exponent = 2.0;
  baselines::LoraBackscatterLink link(cfg);
  const auto m = link.run_burst(200);
  EXPECT_EQ(m.bit_errors, 0u);
}

TEST(Taxonomy, OnlyLScatterChecksAllThreeBoxes) {
  std::size_t winners = 0;
  for (const auto& s : baselines::table1_systems()) {
    if (s.ambient && s.continuous && s.ubiquitous) {
      ++winners;
      EXPECT_EQ(s.name, "LScatter");
    }
  }
  EXPECT_EQ(winners, 1u);
  EXPECT_EQ(baselines::table1_systems().size(), 16u);
}

}  // namespace
