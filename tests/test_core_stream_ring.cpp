// StreamRing: the lock-free SPSC chunk ring behind the decode pipeline.
// Covers wrap-around at capacity, the drop-oldest backpressure policy,
// counter/gauge bookkeeping after drops, and an SPSC stress loop that the
// TSan lane uses to validate the atomic protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <thread>

#include "core/stream_ring.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

// A chunk whose samples encode (stream position + offset), so any torn
// or misattributed copy is detectable by value.
cvec stamped(std::uint64_t stream_pos, std::size_t n) {
  cvec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = cf32{static_cast<float>(stream_pos + i), 0.0f};
  }
  return v;
}

TEST(StreamRing, WrapsAroundAtCapacityLosslesslyWhenDrained) {
  core::StreamRing ring(/*chunk_samples=*/8, /*chunks=*/4);
  core::StreamRing::Chunk out;
  std::uint64_t expect_pos = 0;
  // 5 laps of the 4-slot ring, popping every chunk: no drops, positions
  // and payloads exact across every wrap.
  for (int lap = 0; lap < 5; ++lap) {
    for (int k = 0; k < 4; ++k) {
      const cvec rx = stamped(expect_pos, 8);
      const cvec am = stamped(expect_pos + 1000000, 8);
      EXPECT_EQ(ring.push(rx, am, 0.5), 8u);
      ASSERT_TRUE(ring.pop(out));
      EXPECT_EQ(out.stream_pos, expect_pos);
      EXPECT_EQ(out.size, 8u);
      EXPECT_EQ(out.push_time_s, 0.5);
      for (std::size_t i = 0; i < out.size; ++i) {
        EXPECT_EQ(out.rx[i].real(), static_cast<float>(expect_pos + i));
        EXPECT_EQ(out.ambient[i].real(),
                  static_cast<float>(expect_pos + 1000000 + i));
      }
      expect_pos += 8;
    }
  }
  EXPECT_EQ(ring.dropped_samples(), 0u);
  EXPECT_EQ(ring.push_rejected(), 0u);
  EXPECT_FALSE(ring.pop(out));
}

TEST(StreamRing, SplitsOversizedPushAcrossSlots) {
  core::StreamRing ring(4, 8);
  const cvec rx = stamped(0, 10);
  EXPECT_EQ(ring.push(rx, rx, 0.0), 10u);
  EXPECT_EQ(ring.fill(), 3u);  // 4 + 4 + 2
  core::StreamRing::Chunk out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.stream_pos, 0u);
  EXPECT_EQ(out.size, 4u);
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.stream_pos, 4u);
  EXPECT_EQ(out.size, 4u);
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.stream_pos, 8u);
  EXPECT_EQ(out.size, 2u);
  EXPECT_EQ(ring.producer_position(), 10u);
}

TEST(StreamRing, DropsOldestUnderOverrun) {
  const std::uint64_t dropped_before =
      obs::Registry::instance().counter_value("core.stream.dropped");

  core::StreamRing ring(8, 4);
  // 10 chunks into a 4-slot ring with no consumer: the 6 oldest are
  // dropped, the newest 4 survive, in order.
  for (std::uint64_t k = 0; k < 10; ++k) {
    const cvec rx = stamped(k * 8, 8);
    EXPECT_EQ(ring.push(rx, rx, 0.0), 8u);
  }
  EXPECT_EQ(ring.fill(), 4u);
  EXPECT_EQ(ring.pushed_samples(), 80u);
  EXPECT_EQ(ring.dropped_samples(), 48u);
  EXPECT_EQ(ring.push_rejected(), 0u);
  EXPECT_EQ(ring.high_water_chunks(), 4u);

  core::StreamRing::Chunk out;
  for (std::uint64_t k = 6; k < 10; ++k) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.stream_pos, k * 8);
    for (std::size_t i = 0; i < out.size; ++i) {
      EXPECT_EQ(out.rx[i].real(), static_cast<float>(k * 8 + i));
    }
  }
  EXPECT_FALSE(ring.pop(out));

#if LSCATTER_OBS_ENABLED
  // The drop counter saw exactly the 48 lost samples; the high-water
  // gauge saw the full ring.
  EXPECT_EQ(
      obs::Registry::instance().counter_value("core.stream.dropped"),
      dropped_before + 48u);
  const obs::Gauge* hw = obs::Registry::instance().find_gauge(
      "core.stream.ring_high_water");
  ASSERT_NE(hw, nullptr);
  EXPECT_GE(hw->value(), 4.0);
#else
  (void)dropped_before;
#endif
}

TEST(StreamRing, GapBetweenPopsEqualsDroppedSamples) {
  core::StreamRing ring(8, 2);
  core::StreamRing::Chunk out;
  // Fill, drain one, then overrun: the consumer-visible position jump
  // must equal dropped_samples() exactly — that is the pipeline's gap
  // detection contract.
  for (std::uint64_t k = 0; k < 2; ++k) {
    const cvec rx = stamped(k * 8, 8);
    ring.push(rx, rx, 0.0);
  }
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.stream_pos, 0u);
  for (std::uint64_t k = 2; k < 6; ++k) {
    const cvec rx = stamped(k * 8, 8);
    ring.push(rx, rx, 0.0);
  }
  ASSERT_TRUE(ring.pop(out));
  const std::uint64_t gap = out.stream_pos - 8;  // expected next was 8
  EXPECT_EQ(gap, ring.dropped_samples());
}

TEST(StreamRing, SpscStressKeepsEverySampleAccountedFor) {
  // One real producer thread against one consumer thread, ring small
  // enough to force constant overruns. Under TSan this hammers the
  // head_/tail_/reading_ protocol; in any build it checks the conservation
  // law pushed = popped + dropped and per-chunk payload integrity.
  core::StreamRing ring(64, 8);
  constexpr std::uint64_t kChunks = 20000;
  std::atomic<bool> done{false};

  std::thread producer([&ring, &done] {
    const cvec all = stamped(0, kChunks * 64);
    for (std::uint64_t k = 0; k < kChunks; ++k) {
      const std::span<const cf32> s(all.data() + k * 64, 64);
      ring.push(s, s, static_cast<double>(k));
    }
    done.store(true, std::memory_order_release);
  });

  core::StreamRing::Chunk out;
  std::uint64_t popped = 0;
  std::uint64_t last_end = 0;
  bool ordered = true;
  bool payload_ok = true;
  while (true) {
    if (!ring.pop(out)) {
      if (done.load(std::memory_order_acquire) && ring.fill() == 0) break;
      std::this_thread::yield();
      continue;
    }
    ordered = ordered && out.stream_pos >= last_end;
    last_end = out.stream_pos + out.size;
    for (std::size_t i = 0; i < out.size; i += 17) {
      payload_ok = payload_ok &&
                   out.rx[i].real() ==
                       static_cast<float>(out.stream_pos + i);
    }
    popped += out.size;
  }
  producer.join();

  EXPECT_TRUE(ordered);
  EXPECT_TRUE(payload_ok);
  // Conservation: every sample was either popped or counted dropped
  // (lap-drops and rejected pushes both land in dropped_samples()).
  EXPECT_EQ(popped + ring.dropped_samples(), kChunks * 64);
  EXPECT_EQ(ring.pushed_samples(), kChunks * 64 - 64 * ring.push_rejected());
}

}  // namespace
