// Run registry (obs/run_registry.hpp): append/read round trips, the
// strict-per-line lenient-per-file reader, canonicalized config hashing,
// report compaction, filtering, metric flattening, trend regression
// flagging, and the majority-vote median baseline behind `lscatter-obs
// regress`.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/run_registry.hpp"

namespace {

using namespace lscatter;

std::string temp_registry(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

// Minimal compacted lscatter.obs/1 report; p50 scales the quantiles so
// trend/median tests can dial a trajectory with one knob.
obs::json::Value make_report(double p50, double packets = 100.0) {
  obs::json::Value r;
  r["schema"] = "lscatter.obs/1";
  r["report"] = "unit";
  r["counters"]["test.reg.packets"] = packets;
  r["gauges"]["test.reg.hwm"] = 7.0;
  obs::json::Value& h = r["histograms"]["test.reg.demod.seconds"];
  h["count"] = 1000.0;
  h["mean"] = p50;
  h["p50"] = p50;
  h["p90"] = p50 * 2.0;
  h["p99"] = p50 * 3.0;
  return r;
}

obs::RunRecord make_record(double p50, const std::string& bench = "unit",
                           double time_s = 1.0) {
  obs::RunRecord rec;
  rec.report = make_report(p50);
  rec.provenance.bench = bench;
  rec.provenance.git_sha = "0123456789abcdef0123";
  rec.provenance.dirty = false;
  rec.provenance.config_hash = obs::config_hash(rec.report);
  rec.provenance.hostname = "unit-host";
  rec.provenance.threads = 4;
  rec.provenance.unix_time_s = time_s;
  return rec;
}

TEST(RunRegistry, AppendReadRoundTrip) {
  const std::string path = temp_registry("lscatter_registry_rt.jsonl");
  std::string error;
  ASSERT_TRUE(obs::append_record(path, make_record(1e-4, "a", 1.0), &error))
      << error;
  ASSERT_TRUE(obs::append_record(path, make_record(2e-4, "b", 2.0), &error))
      << error;

  obs::ReadStats stats;
  const auto records = obs::read_records(path, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.total_lines, 2u);
  EXPECT_EQ(stats.corrupt_lines, 0u);

  const obs::Provenance& p = records[0].provenance;
  EXPECT_EQ(p.bench, "a");
  EXPECT_EQ(p.git_sha, "0123456789abcdef0123");
  EXPECT_FALSE(p.dirty);
  EXPECT_EQ(p.hostname, "unit-host");
  EXPECT_EQ(p.threads, 4u);
  EXPECT_DOUBLE_EQ(p.unix_time_s, 1.0);
  // The 64-bit hash must survive the JSON trip bit-exactly (it travels
  // as a hex string precisely because doubles can't carry it).
  EXPECT_EQ(p.config_hash, obs::config_hash(records[0].report));
  const auto v =
      obs::metric_value(records[1].report,
                        "histograms.test.reg.demod.seconds.p50");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 2e-4);
}

TEST(RunRegistry, MissingFileIsEmptyRegistry) {
  obs::ReadStats stats;
  const auto records = obs::read_records(
      temp_registry("lscatter_registry_missing.jsonl"), &stats);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(stats.total_lines, 0u);
}

TEST(RunRegistry, CorruptLinesAreSkippedAndCounted) {
  const std::string path = temp_registry("lscatter_registry_corrupt.jsonl");
  ASSERT_TRUE(obs::append_record(path, make_record(1e-4)));
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    // A hand edit, a torn tail, and a foreign-schema line.
    std::fputs("total garbage\n", f);
    std::fputs("{\"schema\":\"lscatter.obs-run/1\",\"prov", f);
    std::fputs("\n{\"schema\":\"someone-else/9\"}\n", f);
    std::fclose(f);
  }
  ASSERT_TRUE(obs::append_record(path, make_record(2e-4)));

  obs::ReadStats stats;
  const auto records = obs::read_records(path, &stats);
  ASSERT_EQ(records.size(), 2u);  // both real records survive
  EXPECT_EQ(stats.total_lines, 5u);
  EXPECT_EQ(stats.corrupt_lines, 3u);
}

TEST(RunRegistry, ParseRecordLineToleratesTrailingNewlineAndCr) {
  const std::string line = make_record(1e-4).to_json().dump(-1);
  EXPECT_TRUE(obs::parse_record_line(line).has_value());
  EXPECT_TRUE(obs::parse_record_line(line + "\n").has_value());
  EXPECT_TRUE(obs::parse_record_line(line + "\r\n").has_value());
  EXPECT_FALSE(obs::parse_record_line("").has_value());
  EXPECT_FALSE(obs::parse_record_line("\n").has_value());
  EXPECT_FALSE(obs::parse_record_line("[1,2,3]").has_value());
}

TEST(RunRegistry, AppendCreatesParentDirectories) {
  const std::string path =
      ::testing::TempDir() + "lscatter_reg_subdir/deeper/registry.jsonl";
  std::remove(path.c_str());  // earlier runs of this binary append too
  std::string error;
  ASSERT_TRUE(obs::append_record(path, make_record(1e-4), &error)) << error;
  EXPECT_EQ(obs::read_records(path).size(), 1u);
}

TEST(RunRegistry, ConfigHashIsKeyOrderIndependent) {
  obs::json::Value a;
  a["seed"] = 42.0;
  a["drops"] = 8.0;
  a["nested"]["x"] = 1.0;
  a["nested"]["y"] = 2.0;
  obs::json::Value b;
  b["nested"]["y"] = 2.0;
  b["nested"]["x"] = 1.0;
  b["drops"] = 8.0;
  b["seed"] = 42.0;
  EXPECT_EQ(obs::config_hash(a), obs::config_hash(b));

  // One changed value must move the hash. (Built fresh: json::Value
  // copies are shallow — objects share state through shared_ptr.)
  obs::json::Value c;
  c["seed"] = 43.0;
  c["drops"] = 8.0;
  c["nested"]["x"] = 1.0;
  c["nested"]["y"] = 2.0;
  EXPECT_NE(obs::config_hash(a), obs::config_hash(c));
  obs::json::Value arr1, arr2;
  arr1["v"].make_array().push_back(obs::json::Value(1.0));
  arr1["v"].as_array().push_back(obs::json::Value(2.0));
  arr2["v"].make_array().push_back(obs::json::Value(2.0));
  arr2["v"].as_array().push_back(obs::json::Value(1.0));
  EXPECT_NE(obs::config_hash(arr1), obs::config_hash(arr2));
}

TEST(RunRegistry, CompactReportDropsSpansAndBuckets) {
  obs::json::Value r = make_report(1e-4);
  r["spans"]["total"] = 10.0;
  obs::json::Value& h = r["histograms"]["test.reg.demod.seconds"];
  h["buckets"].make_array().push_back(obs::json::Value(1.0));
  r["extra"]["params"]["seed"] = 42.0;

  const obs::json::Value compact = obs::compact_report(r);
  EXPECT_EQ(compact.find("spans"), nullptr);
  const obs::json::Value* ch =
      compact.find("histograms")->find("test.reg.demod.seconds");
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->find("buckets"), nullptr);
  EXPECT_DOUBLE_EQ(ch->find("p50")->as_number(), 1e-4);
  // extra (params included) survives verbatim; compaction is idempotent.
  EXPECT_NE(compact.find("extra"), nullptr);
  EXPECT_EQ(obs::compact_report(compact).dump(-1), compact.dump(-1));
}

TEST(RunRegistry, FilterByBenchShaPrefixAndLast) {
  std::vector<obs::RunRecord> records;
  for (int i = 0; i < 4; ++i) {
    obs::RunRecord rec = make_record(1e-4, i % 2 == 0 ? "even" : "odd",
                                     static_cast<double>(i));
    rec.provenance.git_sha = i < 2 ? "aaa111" : "bbb222";
    records.push_back(std::move(rec));
  }

  obs::RecordFilter f;
  f.bench = "even";
  EXPECT_EQ(obs::filter_records(records, f).size(), 2u);
  f.bench.clear();
  f.git_sha = "bbb";
  EXPECT_EQ(obs::filter_records(records, f).size(), 2u);
  f.git_sha.clear();
  f.last = 3;
  const auto last3 = obs::filter_records(records, f);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_DOUBLE_EQ(last3.front().provenance.unix_time_s, 1.0);
  EXPECT_DOUBLE_EQ(last3.back().provenance.unix_time_s, 3.0);
}

TEST(RunRegistry, MetricNamesAndValuesFlatten) {
  const obs::json::Value r = make_report(1e-4, 33.0);
  const auto names = obs::metric_names(r);
  // counters + gauges first, then the five histogram fields.
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "counters.test.reg.packets");
  EXPECT_EQ(names[1], "gauges.test.reg.hwm");
  EXPECT_EQ(names[2], "histograms.test.reg.demod.seconds.count");

  EXPECT_DOUBLE_EQ(*obs::metric_value(r, "counters.test.reg.packets"),
                   33.0);
  EXPECT_DOUBLE_EQ(
      *obs::metric_value(r, "histograms.test.reg.demod.seconds.p99"),
      3e-4);
  EXPECT_FALSE(obs::metric_value(r, "histograms.test.reg.demod.seconds")
                   .has_value());
  EXPECT_FALSE(obs::metric_value(r, "counters.nope").has_value());
  EXPECT_FALSE(obs::metric_value(r, "nodot").has_value());
}

TEST(RunRegistry, TrendFlagsQuantileGrowthOnly) {
  // Three stable runs then a 3x p50 jump; the packets counter jumps too
  // but counters are informational, never flagged.
  std::vector<obs::RunRecord> records;
  for (const double p50 : {1e-4, 1e-4, 1e-4, 3e-4}) {
    obs::RunRecord rec = make_record(p50);
    rec.report["counters"]["test.reg.packets"] =
        obs::json::Value(p50 * 1e6);
    records.push_back(std::move(rec));
  }

  const auto rows = obs::trend_rows(records);
  const auto find_row = [&rows](const std::string& m) {
    for (const auto& row : rows) {
      if (row.metric == m) return row;
    }
    return obs::TrendRow{};
  };

  const auto p50 = find_row("histograms.test.reg.demod.seconds.p50");
  EXPECT_EQ(p50.n, 4u);
  EXPECT_DOUBLE_EQ(p50.first, 1e-4);
  EXPECT_DOUBLE_EQ(p50.last, 3e-4);
  EXPECT_DOUBLE_EQ(p50.last_over_median, 3.0);
  EXPECT_TRUE(p50.regressed);  // 3.0x > 1.25x default

  // p99 grew 3x as well but sits inside the 2.5x tail allowance ceiling?
  // No: 3x > 2.5x, so it regresses too; p90 at 3x likewise.
  EXPECT_TRUE(find_row("histograms.test.reg.demod.seconds.p99").regressed);
  EXPECT_FALSE(find_row("counters.test.reg.packets").regressed);
  EXPECT_FALSE(find_row("histograms.test.reg.demod.seconds.count")
                   .regressed);

  // Substring filter narrows the rows.
  const auto only_p50 = obs::trend_rows(records, ".p50");
  ASSERT_EQ(only_p50.size(), 1u);
  EXPECT_EQ(only_p50[0].metric, "histograms.test.reg.demod.seconds.p50");
}

TEST(RunRegistry, TrendStableSeriesDoesNotRegress) {
  std::vector<obs::RunRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back(make_record(1e-4));
  for (const auto& row : obs::trend_rows(records)) {
    EXPECT_FALSE(row.regressed) << row.metric;
  }
}

TEST(RunRegistry, MedianReportTakesMajorityVote) {
  // Five runs; one odd run carries a foreign gauge that must NOT reach
  // the baseline (4+1 runs, quorum = 3, the gauge appears once).
  std::vector<obs::RunRecord> records;
  for (const double p50 : {1e-4, 2e-4, 3e-4, 4e-4, 5e-4}) {
    records.push_back(make_record(p50));
  }
  records[2].report["gauges"]["test.reg.stray"] = obs::json::Value(1.0);

  const obs::json::Value base = obs::median_report(records);
  EXPECT_EQ(base.find("schema")->as_string(), "lscatter.obs/1");
  EXPECT_DOUBLE_EQ(
      *obs::metric_value(base, "histograms.test.reg.demod.seconds.p50"),
      3e-4);
  EXPECT_FALSE(obs::metric_value(base, "gauges.test.reg.stray")
                   .has_value());
  EXPECT_TRUE(obs::metric_value(base, "gauges.test.reg.hwm").has_value());

  // The synthesized baseline is a legal diff base: a clean faster run
  // diffs ok against it (the `lscatter-obs regress` happy path). The
  // stray-gauge run would read as drift — which is the point of the
  // majority vote: ONE odd run must not poison the baseline, but a
  // fresh run that still carries the stray metric is flagged.
  EXPECT_TRUE(obs::diff_reports(base, records[1].report).ok());
  EXPECT_TRUE(obs::diff_reports(base, records[2].report).has_drift());
}

TEST(RunRegistry, RegistryPathPrecedence) {
  EXPECT_EQ(obs::registry_path_from_env("explicit.jsonl"),
            "explicit.jsonl");
  ASSERT_EQ(setenv("LSCATTER_OBS_REGISTRY", "/tmp/env.jsonl", 1), 0);
  EXPECT_EQ(obs::registry_path_from_env(), "/tmp/env.jsonl");
  EXPECT_EQ(obs::registry_path_from_env("explicit.jsonl"),
            "explicit.jsonl");
  ASSERT_EQ(unsetenv("LSCATTER_OBS_REGISTRY"), 0);
  EXPECT_EQ(obs::registry_path_from_env(),
            std::string(obs::kDefaultRegistryPath));
}

}  // namespace
