// FIR design and the RC building blocks behind the tag's analog circuit.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fir.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter::dsp;

TEST(Fir, LowpassHasUnityDcGain) {
  const fvec taps = design_lowpass(0.1, 63);
  double sum = 0.0;
  for (const float t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Fir, LowpassPassesDcAndRejectsHighFrequency) {
  const fvec taps = design_lowpass(0.05, 127);
  const std::size_t n = 1024;
  cvec dc(n, cf32{1.0f, 0.0f});
  cvec hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    hi[i] = cf32{static_cast<float>(std::cos(kTwoPi * 0.4 * t)),
                 static_cast<float>(std::sin(kTwoPi * 0.4 * t))};
  }
  const cvec dc_out = filter_same(dc, std::span<const float>(taps));
  const cvec hi_out = filter_same(hi, std::span<const float>(taps));
  // Check away from the edges.
  EXPECT_NEAR(std::abs(dc_out[n / 2]), 1.0, 1e-3);
  EXPECT_LT(std::abs(hi_out[n / 2]), 1e-3);
}

TEST(Fir, BandpassCentersOnRequestedFrequency) {
  const double f0 = 0.2;
  const cvec taps = design_bandpass(f0, 0.05, 129);
  const std::size_t n = 2048;
  cvec tone(n);
  cvec off_tone(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    tone[i] = cf32{static_cast<float>(std::cos(kTwoPi * f0 * t)),
                   static_cast<float>(std::sin(kTwoPi * f0 * t))};
    off_tone[i] = cf32{static_cast<float>(std::cos(kTwoPi * 0.35 * t)),
                       static_cast<float>(std::sin(kTwoPi * 0.35 * t))};
  }
  const cvec in_band = filter_same(tone, std::span<const cf32>(taps));
  const cvec out_band = filter_same(off_tone, std::span<const cf32>(taps));
  EXPECT_GT(std::abs(in_band[n / 2]), 0.9);
  EXPECT_LT(std::abs(out_band[n / 2]), 0.01);
}

TEST(Fir, EvenTapCountIsBumpedToOdd) {
  const fvec taps = design_lowpass(0.1, 64);
  EXPECT_EQ(taps.size() % 2, 1u);
}

TEST(OnePole, StepResponseReachesTauFraction) {
  // After one time constant the step response is 1 - 1/e.
  const double fs = 1e6;
  OnePole p(1e-3, 1.0 / fs);
  float y = 0.0f;
  for (int i = 0; i < 1000; ++i) y = p.step(1.0f);  // exactly tau
  EXPECT_NEAR(y, 1.0 - std::exp(-1.0), 0.01);
}

TEST(OnePole, ConvergesToInput) {
  OnePole p(1e-4, 1e-6);
  float y = 0.0f;
  for (int i = 0; i < 2000; ++i) y = p.step(3.0f);
  EXPECT_NEAR(y, 3.0, 1e-3);
}

TEST(DiodeRc, AsymmetricChargeDischarge) {
  const double fs = 1e6;
  DiodeRc d(1e-5, 1e-3, 1.0 / fs);  // fast charge, slow discharge
  // Charge quickly...
  for (int i = 0; i < 100; ++i) d.step(1.0f);
  const float charged = d.value();
  EXPECT_GT(charged, 0.99f);
  // ...then discharge slowly: after the same 100 us only ~10% is lost.
  for (int i = 0; i < 100; ++i) d.step(0.0f);
  EXPECT_GT(d.value(), 0.85f);
}

TEST(Windows, HammingAndHannEndpoints) {
  const fvec ham = hamming_window(51);
  const fvec han = hann_window(51);
  EXPECT_NEAR(ham.front(), 0.08, 1e-3);
  EXPECT_NEAR(han.front(), 0.0, 1e-6);
  EXPECT_NEAR(ham[25], 1.0, 1e-6);
  EXPECT_NEAR(han[25], 1.0, 1e-6);
}

}  // namespace
