// Calibrated scenarios and the day-study harness.

#include <gtest/gtest.h>

#include "baselines/day_study.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;

class ScenePerBandwidth
    : public ::testing::TestWithParam<
          std::tuple<core::Scene, lte::Bandwidth>> {};

TEST_P(ScenePerBandwidth, ScenarioIsInternallyConsistent) {
  const auto [scene, bw] = GetParam();
  core::ScenarioOptions opt;
  opt.bandwidth = bw;
  const core::LinkConfig cfg = core::make_scenario(scene, opt);

  EXPECT_EQ(cfg.enodeb.cell.bandwidth, bw);
  EXPECT_NEAR(cfg.enodeb.cell.carrier_hz, 680e6, 1.0);
  EXPECT_GT(cfg.env.pathloss.exponent, 1.0);
  EXPECT_LT(cfg.env.pathloss.exponent, 4.0);
  EXPECT_GT(cfg.env.acir_db.value(), 40.0);
  EXPECT_EQ(cfg.env.budget.tx_power_dbm, cfg.enodeb.tx_power_dbm);
  // The default geometry is the paper's close-range setup.
  EXPECT_EQ(cfg.geometry.enb_tag_ft, 3.0);
  EXPECT_EQ(cfg.geometry.tag_ue_ft, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenePerBandwidth,
    ::testing::Combine(::testing::Values(core::Scene::kSmartHome,
                                         core::Scene::kMall,
                                         core::Scene::kOutdoor),
                       ::testing::Values(lte::Bandwidth::kMHz1_4,
                                         lte::Bandwidth::kMHz20)));

TEST(Scenario, NlosAddsLossAndRayleigh) {
  core::ScenarioOptions los;
  core::ScenarioOptions nlos;
  nlos.line_of_sight = false;
  const auto a = core::make_scenario(core::Scene::kSmartHome, los);
  const auto b = core::make_scenario(core::Scene::kSmartHome, nlos);
  EXPECT_GT(b.env.pathloss.extra_loss_db, a.env.pathloss.extra_loss_db);
  EXPECT_TRUE(a.env.fading.los);
  EXPECT_FALSE(b.env.fading.los);
}

TEST(Scenario, OutdoorHasTwoRayBreakpoint) {
  const auto cfg = core::make_scenario(core::Scene::kOutdoor);
  EXPECT_GT(cfg.env.pathloss.breakpoint_m, 1.0);
  EXPECT_GT(cfg.env.pathloss.beyond_exponent,
            cfg.env.pathloss.exponent);
}

TEST(Scenario, SceneNamesAndSites) {
  EXPECT_STREQ(core::to_string(core::Scene::kMall), "Mall");
  EXPECT_EQ(core::scene_site(core::Scene::kOutdoor),
            traffic::Site::kOutdoor);
  EXPECT_EQ(core::scene_site(core::Scene::kSmartHome),
            traffic::Site::kHome);
}

TEST(DayStudy, SmokeRunHasExpectedShape) {
  baselines::DayStudyConfig cfg;
  cfg.hour_begin = 18;
  cfg.hour_end = 20;
  cfg.samples_per_hour = 3;
  cfg.lscatter_subframes_per_sample = 4;
  cfg.wifi_probe_bits = 300;
  const auto results = baselines::run_day_study(cfg);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.lte_occupancy_mean, 1.0);
    EXPECT_GT(r.wifi_occupancy_mean, 0.0);
    EXPECT_LT(r.wifi_occupancy_mean, 1.0);
    // LScatter is orders of magnitude above WiFi backscatter.
    EXPECT_GT(r.lscatter_bps.median,
              50.0 * r.wifi_backscatter_bps.median);
  }
  EXPECT_GT(baselines::mean_of_medians_lscatter(results), 10e6);
}

}  // namespace
